// Unit + stress coverage for the epoch-reclamation domain
// (util/epoch.hpp) and the epoch-guarded canonical cache
// (service/canonical_cache.hpp).  The stress test is the TSan target:
// reader threads hammer the lock-free probe while a writer inserts,
// evicts, replaces and clears; every probe must observe either a miss
// or a fully published entry whose value is consistent with its key,
// and no retired entry may be freed while a reader can still reach it
// (TSan/ASan would flag the use-after-free or the race).
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/canonical_cache.hpp"
#include "util/epoch.hpp"

namespace xt {
namespace {

CacheKey key_of(std::uint64_t i) {
  CacheKey k;
  k.canonical_hash = 0x9e3779b97f4a7c15ULL * (i + 1);
  k.num_nodes = static_cast<NodeId>(i % 1000 + 1);
  k.theorem = Theorem::kT1;
  k.load = 16;
  return k;
}

/// The stress invariant: the value stored under key i is always
/// derived from i, so a torn or stale read is detectable.
CachedEmbedding value_of(std::uint64_t i) {
  CachedEmbedding v;
  v.canonical_assign = {static_cast<VertexId>(i), static_cast<VertexId>(i + 1)};
  v.host_vertices = static_cast<VertexId>(i + 2);
  v.host_height = static_cast<std::int32_t>(i % 97);
  v.dilation = 3;
  v.load_factor = 16;
  return v;
}

bool value_matches(const CachedEmbedding& v, std::uint64_t i) {
  return v.canonical_assign.size() == 2 &&
         v.canonical_assign[0] == static_cast<VertexId>(i) &&
         v.canonical_assign[1] == static_cast<VertexId>(i + 1) &&
         v.host_vertices == static_cast<VertexId>(i + 2) &&
         v.host_height == static_cast<std::int32_t>(i % 97);
}

TEST(EpochDomain, RetireeSurvivesWhileAReaderIsPinned) {
  EpochDomain d;
  bool freed = false;
  {
    const EpochDomain::Guard g = d.pin();
    ASSERT_TRUE(g.active());
    d.retire(&freed, [](void* p) { *static_cast<bool*>(p) = true; });
    // A reader pinned at the current epoch permits one advance (it
    // frees the *previous* bucket) but blocks the second — the one
    // that would free our retiree's bucket.
    EXPECT_TRUE(d.try_advance());
    EXPECT_FALSE(d.try_advance());
    EXPECT_FALSE(freed);
  }
  d.synchronize();
  EXPECT_TRUE(freed);
  EXPECT_EQ(d.limbo_size(), 0u);
}

TEST(EpochDomain, SynchronizeFreesEverythingRetired) {
  EpochDomain d;
  std::atomic<int> freed{0};
  for (int i = 0; i < 100; ++i) {
    auto* p = new std::pair<std::atomic<int>*, int>{&freed, i};
    d.retire(p, [](void* q) {
      auto* pr = static_cast<std::pair<std::atomic<int>*, int>*>(q);
      pr->first->fetch_add(1);
      delete pr;
    });
  }
  d.synchronize();
  EXPECT_EQ(freed.load(), 100);
  EXPECT_EQ(d.limbo_size(), 0u);
}

TEST(EpochDomain, OverflowPinsBeyondTheSlotArrayStillProtect) {
  EpochDomain d;
  // More guards than reader slots: the tail pins go through the
  // shared overflow counters and must block reclamation just the same.
  std::vector<EpochDomain::Guard> guards;
  guards.reserve(70);
  for (int i = 0; i < 70; ++i) guards.push_back(d.pin());
  for (const EpochDomain::Guard& g : guards) EXPECT_TRUE(g.active());

  bool freed = false;
  d.retire(&freed, [](void* p) { *static_cast<bool*>(p) = true; });
  EXPECT_TRUE(d.try_advance());
  EXPECT_FALSE(d.try_advance());
  EXPECT_FALSE(freed);

  guards.clear();
  d.synchronize();
  EXPECT_TRUE(freed);
}

TEST(EpochDomain, DestructorDrainsTheLimbo) {
  std::atomic<int> freed{0};
  {
    EpochDomain d;
    for (int i = 0; i < 5; ++i) {
      d.retire(&freed, [](void* p) {
        static_cast<std::atomic<int>*>(p)->fetch_add(1);
      });
    }
  }
  EXPECT_EQ(freed.load(), 5);
}

TEST(CanonicalCache, WithEntryHitRunsTheCallbackPinned) {
  CanonicalCache cache(8);
  cache.insert(key_of(1), value_of(1));

  bool ran = false;
  EXPECT_TRUE(cache.with_entry(key_of(1), [&](const CanonicalCache::Entry& e) {
    ran = true;
    EXPECT_EQ(e.key(), key_of(1));
    EXPECT_TRUE(value_matches(e.value(), 1));
  }));
  EXPECT_TRUE(ran);
  EXPECT_FALSE(cache.with_entry(
      key_of(2), [](const CanonicalCache::Entry&) { FAIL(); }));

  const CanonicalCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.insertions, 1u);
}

TEST(CanonicalCache, EncodedBodyMemoPublishesExactlyOnce) {
  CanonicalCache cache(8);
  cache.insert(key_of(7), value_of(7));
  cache.with_entry(key_of(7), [&](const CanonicalCache::Entry& e) {
    EXPECT_EQ(e.encoded_body(), nullptr);
    e.publish_encoded_body("first");
    ASSERT_NE(e.encoded_body(), nullptr);
    EXPECT_EQ(*e.encoded_body(), "first");
    e.publish_encoded_body("second");  // loser: discarded
    EXPECT_EQ(*e.encoded_body(), "first");
  });
}

TEST(CanonicalCache, SecondChanceEvictsTheUntouchedEntry) {
  CanonicalCache cache(2);
  cache.insert(key_of(1), value_of(1));
  cache.insert(key_of(2), value_of(2));
  // Touch 1 (sets its second-chance ref bit), then overflow with 3:
  // the untouched 2 is the victim, exactly as LRU would pick.
  EXPECT_TRUE(cache.with_entry(key_of(1),
                               [](const CanonicalCache::Entry&) {}));
  cache.insert(key_of(3), value_of(3));

  EXPECT_TRUE(cache.with_entry(key_of(1),
                               [](const CanonicalCache::Entry&) {}));
  EXPECT_FALSE(cache.with_entry(key_of(2),
                                [](const CanonicalCache::Entry&) {}));
  EXPECT_TRUE(cache.with_entry(key_of(3),
                               [](const CanonicalCache::Entry&) {}));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(CanonicalCache, ReplacingAKeyRetiresTheOldEntry) {
  CanonicalCache cache(4);
  cache.insert(key_of(1), value_of(1));
  cache.insert(key_of(1), value_of(41));
  EXPECT_EQ(cache.size(), 1u);
  cache.with_entry(key_of(1), [&](const CanonicalCache::Entry& e) {
    EXPECT_TRUE(value_matches(e.value(), 41));
  });
  cache.synchronize_epochs();  // old entry must free cleanly (ASan)
}

TEST(CanonicalCache, SnapshotsSurviveClear) {
  CanonicalCache cache(4);
  cache.insert(key_of(1), value_of(1));
  cache.insert(key_of(2), value_of(2));
  const std::shared_ptr<const CachedEmbedding> snap = cache.lookup(key_of(1));
  ASSERT_NE(snap, nullptr);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.with_entry(key_of(1),
                                [](const CanonicalCache::Entry&) {}));
  EXPECT_EQ(cache.counters().evictions, 2u);
  // The shared_ptr snapshot outlives the entry.
  EXPECT_TRUE(value_matches(*snap, 1));
  cache.synchronize_epochs();
  EXPECT_TRUE(value_matches(*snap, 1));
}

TEST(CanonicalCache, ChurnForcesEvictionAndTableRebuild) {
  CanonicalCache cache(4);
  for (std::uint64_t i = 0; i < 200; ++i) {
    cache.insert(key_of(i), value_of(i));
  }
  EXPECT_LE(cache.size(), 4u);
  const CanonicalCache::Counters c = cache.counters();
  EXPECT_EQ(c.insertions, 200u);
  EXPECT_EQ(c.evictions, 200u - cache.size());
  // Whatever survived must still be findable and consistent.
  std::size_t found = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    cache.with_entry(key_of(i), [&](const CanonicalCache::Entry& e) {
      ++found;
      EXPECT_TRUE(value_matches(e.value(), i));
    });
  }
  EXPECT_EQ(found, cache.size());
  cache.synchronize_epochs();
}

// The TSan lane's main course: N readers probe lock-free while one
// writer inserts / replaces / evicts / clears.  Readers assert that a
// hit is always a fully published entry consistent with its key and
// that the memo, when present, matches too.
TEST(CanonicalCache, ConcurrentReadersSurviveWriterChurn) {
  constexpr std::uint64_t kKeySpace = 128;
  constexpr std::uint64_t kWriterIters = 30000;
  constexpr int kReaders = 4;
  CanonicalCache cache(64);  // smaller than the key space: real churn

  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::atomic<std::uint64_t> reader_hits{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t x = 88172645463325252ULL + static_cast<std::uint64_t>(r);
      while (!done.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t i = x % kKeySpace;
        cache.with_entry(key_of(i), [&](const CanonicalCache::Entry& e) {
          reader_hits.fetch_add(1, std::memory_order_relaxed);
          if (!(e.key() == key_of(i)) || !value_matches(e.value(), i)) {
            failed.store(true, std::memory_order_relaxed);
          }
          const std::string* memo = e.encoded_body();
          if (memo == nullptr) {
            e.publish_encoded_body(std::to_string(i));
            memo = e.encoded_body();
          }
          if (memo == nullptr || *memo != std::to_string(i)) {
            failed.store(true, std::memory_order_relaxed);
          }
        });
      }
    });
  }

  for (std::uint64_t i = 0; i < kWriterIters; ++i) {
    cache.insert(key_of(i % kKeySpace), value_of(i % kKeySpace));
    if (i % 5000 == 4999) cache.clear();
  }
  done.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(failed.load());
  EXPECT_GT(reader_hits.load(), 0u);
  const CanonicalCache::Counters c = cache.counters();
  EXPECT_EQ(c.insertions, kWriterIters);
  cache.synchronize_epochs();
  cache.clear();
  cache.synchronize_epochs();
}

}  // namespace
}  // namespace xt
