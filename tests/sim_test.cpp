#include <gtest/gtest.h>

#include "btree/generators.hpp"
#include "core/xtree_embedder.hpp"
#include "sim/network_sim.hpp"
#include "sim/workloads.hpp"
#include "topology/xtree.hpp"
#include "topology/xtree_router.hpp"

#include <memory>
#include <utility>

#include "util/rng.hpp"

namespace xt {
namespace {

TEST(NetworkSim, SingleNodeWorkloads) {
  const BinaryTree guest = BinaryTree::single();
  GraphBuilder b(1);
  const Graph host = b.build();
  const Embedding id = identity_embedding(guest);
  NetworkSim sim(host, guest, id);
  EXPECT_EQ(sim.run_reduction().cycles, 1);
  EXPECT_EQ(sim.run_broadcast().cycles, 1);
}

TEST(NetworkSim, MakeOwnedSurvivesTemporariesAndMoves) {
  // The reference-retaining constructor would dangle here: every
  // input is a temporary or dead local by the time the sim runs.
  Rng rng(82);
  auto build = [&] {
    BinaryTree guest = make_random_tree(50, rng);
    auto res = XTreeEmbedder::embed(guest);
    const XTree xtree(res.stats.height);
    return NetworkSim::make_owned(xtree.to_graph(), std::move(guest),
                                  std::move(res.embedding));
  };
  NetworkSim sim = build();          // inputs out of scope, sim owns copies
  NetworkSim moved = std::move(sim); // and stays valid across moves
  const SimResult r = moved.run_reduction();
  EXPECT_EQ(r.messages, 49);
  EXPECT_GT(r.cycles, 0);
}

TEST(NetworkSim, MakeOwnedMatchesReferenceConstructor) {
  Rng rng(83);
  const BinaryTree guest = make_random_tree(100, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree xtree(res.stats.height);
  const Graph host = xtree.to_graph();
  NetworkSim by_ref(host, guest, res.embedding);
  NetworkSim owned = NetworkSim::make_owned(host, guest, res.embedding);
  const SimResult a = by_ref.run_reduction();
  const SimResult b = owned.run_reduction();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_hops, b.total_hops);
}

TEST(NetworkSim, IdealReductionOnCompleteTree) {
  // On a dedicated machine, each tree level costs one execution cycle
  // plus one transfer cycle: exec(leaf)=1, exec(v)=max(children)+2.
  for (std::int32_t h : {1, 2, 3, 4}) {
    const BinaryTree guest = make_complete_tree(h);
    EXPECT_EQ(ideal_reduction_cycles(guest), 2 * h + 1) << "h=" << h;
    EXPECT_EQ(ideal_broadcast_cycles(guest), 2 * h + 1) << "h=" << h;
  }
}

TEST(NetworkSim, ReductionDeliversEverything) {
  Rng rng(80);
  const BinaryTree guest = make_random_tree(200, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree xtree(res.stats.height);
  const Graph host = xtree.to_graph();
  NetworkSim sim(host, guest, res.embedding);
  const SimResult r = sim.run_reduction();
  // Every non-root node sends exactly one message.
  EXPECT_EQ(r.messages, guest.num_nodes() - 1);
  EXPECT_GT(r.cycles, 0);
}

TEST(NetworkSim, LoadSixteenCostsAtLeastProcessorSerialisation) {
  // 16 guests per processor with proc_capacity 1 must take at least
  // 16 cycles just to execute one vertex's residents.
  Rng rng(81);
  const BinaryTree guest = make_random_tree(16 * 7, rng);  // r = 2 exact
  const auto res = XTreeEmbedder::embed(guest);
  const XTree xtree(res.stats.height);
  const Graph host = xtree.to_graph();
  NetworkSim sim(host, guest, res.embedding);
  EXPECT_GE(sim.run_reduction().cycles, 16);
}

TEST(NetworkSim, HigherProcCapacityIsFaster) {
  Rng rng(82);
  const BinaryTree guest = make_random_tree(16 * 15, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree xtree(res.stats.height);
  const Graph host = xtree.to_graph();
  SimConfig slow{1, 1};
  SimConfig fast{16, 4};
  NetworkSim sim_slow(host, guest, res.embedding, slow);
  NetworkSim sim_fast(host, guest, res.embedding, fast);
  EXPECT_LE(sim_fast.run_reduction().cycles, sim_slow.run_reduction().cycles);
}

TEST(NetworkSim, DivideAndConquerIsBroadcastPlusReduction) {
  Rng rng(83);
  const BinaryTree guest = make_random_tree(100, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree xtree(res.stats.height);
  const Graph host = xtree.to_graph();
  NetworkSim sim(host, guest, res.embedding);
  const auto d = sim.run_divide_and_conquer();
  const auto b = sim.run_broadcast();
  const auto r = sim.run_reduction();
  EXPECT_EQ(d.cycles, b.cycles + r.cycles);
  EXPECT_EQ(d.messages, b.messages + r.messages);
}

TEST(Workloads, SlowdownReportIsConsistent) {
  Rng rng(84);
  const BinaryTree guest = make_random_tree(16 * 7, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree xtree(res.stats.height);
  const Graph host = xtree.to_graph();
  for (Workload w : all_workloads()) {
    const auto rep = measure_slowdown(host, guest, res.embedding, w);
    EXPECT_GT(rep.ideal, 0) << workload_name(w);
    // Co-located neighbours hand values over inside one processor
    // (one cycle instead of the ideal machine's execute+transfer two),
    // so the slowdown can dip below 1 — but never below 1/2.
    EXPECT_GE(rep.slowdown, 0.5) << workload_name(w);
    EXPECT_GT(rep.measured.cycles, 0) << workload_name(w);
  }
}

TEST(NetworkSim, XTreeRouterRoutesMatchBfsResults) {
  // Plugging the oracle-driven X-tree router into the simulator must
  // give exactly the same makespan as BFS routing (both route along
  // shortest paths; contention patterns may differ only through path
  // choice, so compare against path-length invariants).
  Rng rng(86);
  const BinaryTree guest = make_random_tree(16 * 7, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree xtree(res.stats.height);
  const Graph host = xtree.to_graph();

  NetworkSim bfs_sim(host, guest, res.embedding);
  const auto bfs_out = bfs_sim.run_reduction();

  NetworkSim routed_sim(host, guest, res.embedding);
  auto router = std::make_shared<XTreeRouter>(xtree);
  routed_sim.set_route_fn([router](VertexId a, VertexId b) {
    return router->route(a, b);
  });
  const auto routed_out = routed_sim.run_reduction();

  EXPECT_EQ(routed_out.messages, bfs_out.messages);
  EXPECT_EQ(routed_out.total_hops, bfs_out.total_hops);  // same path lengths
  // Cycle counts can differ by contention on different shortest paths,
  // but only within a small constant factor.
  EXPECT_LE(routed_out.cycles, 2 * bfs_out.cycles);
  EXPECT_LE(bfs_out.cycles, 2 * routed_out.cycles);
}

TEST(NetworkSim, UnicastBatchDeliversEverything) {
  Rng rng(87);
  const BinaryTree guest = make_random_tree(16 * 7, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree xtree(res.stats.height);
  const Graph host = xtree.to_graph();
  NetworkSim sim(host, guest, res.embedding);
  // A random permutation of guest nodes.
  std::vector<std::pair<NodeId, NodeId>> messages;
  std::vector<NodeId> perm(static_cast<std::size_t>(guest.num_nodes()));
  for (NodeId v = 0; v < guest.num_nodes(); ++v)
    perm[static_cast<std::size_t>(v)] = v;
  for (std::size_t i = perm.size(); i > 1; --i)
    std::swap(perm[i - 1], perm[rng.below(i)]);
  for (NodeId v = 0; v < guest.num_nodes(); ++v)
    messages.emplace_back(v, perm[static_cast<std::size_t>(v)]);
  const SimResult out = sim.run_unicast_batch(messages);
  EXPECT_EQ(out.messages, guest.num_nodes());
  EXPECT_GT(out.cycles, 0);
  // Makespan at least the longest route, at most hops (full serial).
  EXPECT_LE(out.cycles, out.total_hops);
}

TEST(NetworkSim, UnicastBatchCoLocatedIsFree) {
  const BinaryTree guest = make_path_tree(5);
  GraphBuilder b(1);
  const Graph host = b.build();
  Embedding emb(5, 1);
  for (NodeId v = 0; v < 5; ++v) emb.place(v, 0);
  NetworkSim sim(host, guest, emb);
  const SimResult out =
      sim.run_unicast_batch({{0, 4}, {1, 3}, {2, 2}});
  EXPECT_EQ(out.cycles, 0);  // everything co-located
  EXPECT_EQ(out.total_hops, 0);
}

TEST(NetworkSim, UnicastBatchContentionSerialises) {
  // Two messages over the same single link: the second waits a cycle.
  BinaryTree guest = BinaryTree::single();
  guest.add_child(0);
  guest.add_child(0);
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph host = b.build();
  Embedding emb(3, 2);
  emb.place(0, 0);
  emb.place(1, 0);
  emb.place(2, 1);
  NetworkSim sim(host, guest, emb);
  const SimResult out = sim.run_unicast_batch({{0, 2}, {1, 2}});
  EXPECT_EQ(out.cycles, 2);
  EXPECT_EQ(out.max_link_wait, 1);
}

TEST(Workloads, IdentityEmbeddingHasSlowdownOne) {
  Rng rng(85);
  const BinaryTree guest = make_random_tree(64, rng);
  const Graph host = guest_as_graph(guest);
  const Embedding id = identity_embedding(guest);
  for (Workload w : all_workloads()) {
    const auto rep = measure_slowdown(host, guest, id, w);
    EXPECT_DOUBLE_EQ(rep.slowdown, 1.0) << workload_name(w);
  }
}

// --- property sweep: every family x every workload ------------------------

struct SimCase {
  std::string family;
  Workload workload;
};

class SimSweep : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimSweep, ConservationAndBoundedSlowdown) {
  const auto& param = GetParam();
  Rng rng(param.family.size() * 100 + static_cast<int>(param.workload));
  const BinaryTree guest = make_family_tree(param.family, 16 * 15, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree xtree(res.stats.height);
  const Graph host = xtree.to_graph();
  const auto rep = measure_slowdown(host, guest, res.embedding,
                                    param.workload);
  // Message conservation: reduction sends n-1, broadcast n-1, D&C both.
  const std::int64_t expect_messages =
      param.workload == Workload::kDivideAndConquer
          ? 2 * (guest.num_nodes() - 1)
          : guest.num_nodes() - 1;
  EXPECT_EQ(rep.measured.messages, expect_messages);
  // Slowdown stays a small constant for the paper embedding.
  EXPECT_GE(rep.slowdown, 0.5);
  EXPECT_LE(rep.slowdown, 16.0);
}

std::vector<SimCase> sim_cases() {
  std::vector<SimCase> cases;
  for (const auto& family : tree_family_names()) {
    for (Workload w : all_workloads()) cases.push_back({family, w});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesByWorkloads, SimSweep, ::testing::ValuesIn(sim_cases()),
    [](const ::testing::TestParamInfo<SimCase>& param_info) {
      return param_info.param.family + "_" +
             workload_name(param_info.param.workload);
    });

}  // namespace
}  // namespace xt

