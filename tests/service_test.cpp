// End-to-end tests of the embedding service engine (src/service/):
// correctness of served embeddings, cache hits via canonical remap,
// batch coalescing, explicit backpressure, deadlines, priorities,
// shutdown semantics and the stats surface.  Deterministic scheduling
// comes from ServiceConfig::start_paused + pause()/resume().
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "btree/generators.hpp"
#include "embedding/metrics.hpp"
#include "service/service.hpp"
#include "topology/hypercube.hpp"
#include "topology/xtree.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

using namespace std::chrono_literals;

EmbedRequest request_for(BinaryTree tree, Theorem theorem = Theorem::kT1,
                         std::int32_t priority = 0) {
  EmbedRequest req;
  req.tree = std::move(tree);
  req.theorem = theorem;
  req.priority = priority;
  return req;
}

TEST(EmbeddingService, ServesValidTheorem1Embedding) {
  Rng rng(700);
  const BinaryTree tree = make_random_tree(16 * 31, rng);  // r = 4 exact
  ServiceConfig cfg;
  cfg.num_shards = 2;
  EmbeddingService svc(cfg);
  auto fut = svc.submit(request_for(tree));
  const EmbedResponse res = fut.get();
  ASSERT_EQ(res.status, RequestStatus::kOk) << res.reason;
  ASSERT_TRUE(res.embedding.has_value());
  EXPECT_LE(res.dilation, 3);
  EXPECT_LE(res.load_factor, 16);
  EXPECT_FALSE(res.cache_hit);
  EXPECT_GE(res.latency_ms, 0.0);
  validate_embedding(tree, *res.embedding, 16);
  const XTree host(res.host_height);
  EXPECT_EQ(dilation_xtree(tree, *res.embedding, host).max, res.dilation);
}

TEST(EmbeddingService, Theorem2IsInjective) {
  Rng rng(701);
  const BinaryTree tree = make_random_tree(300, rng);
  ServiceConfig cfg;
  cfg.num_shards = 1;
  EmbeddingService svc(cfg);
  const EmbedResponse res = svc.submit(request_for(tree, Theorem::kT2)).get();
  ASSERT_EQ(res.status, RequestStatus::kOk) << res.reason;
  EXPECT_EQ(res.load_factor, 1);  // injective
  EXPECT_LE(res.dilation, 11);
  validate_embedding(tree, *res.embedding, 1);
}

TEST(EmbeddingService, Theorem3HitsHypercube) {
  Rng rng(702);
  const BinaryTree tree = make_random_tree(16 * 15, rng);
  ServiceConfig cfg;
  cfg.num_shards = 1;
  EmbeddingService svc(cfg);
  const EmbedResponse res = svc.submit(request_for(tree, Theorem::kT3)).get();
  ASSERT_EQ(res.status, RequestStatus::kOk) << res.reason;
  EXPECT_LE(res.dilation, 4);
  validate_embedding(tree, *res.embedding, 16);
  const Hypercube host(res.host_height);
  EXPECT_EQ(dilation_hypercube(tree, *res.embedding, host).max, res.dilation);
}

TEST(EmbeddingService, CacheHitsOnIsomorphicRepeat) {
  // Batching off so the second submit is served by the cache, not
  // coalesced with the first.
  Rng rng(703);
  const BinaryTree tree = make_random_tree(496, rng);
  // An isomorphic variant: mirror every node by rebuilding with child
  // order swapped.
  BinaryTree mirror = BinaryTree::single();
  {
    std::vector<std::pair<NodeId, NodeId>> stack{{tree.root(), mirror.root()}};
    while (!stack.empty()) {
      const auto [ov, nv] = stack.back();
      stack.pop_back();
      for (int w : {0, 1}) {
        const NodeId c = tree.child(ov, w);
        if (c != kInvalidNode) stack.emplace_back(c, mirror.add_child(nv));
      }
    }
  }
  ServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.enable_batching = false;
  EmbeddingService svc(cfg);
  const EmbedResponse first = svc.submit(request_for(tree)).get();
  ASSERT_EQ(first.status, RequestStatus::kOk) << first.reason;
  EXPECT_FALSE(first.cache_hit);

  const EmbedResponse again = svc.submit(request_for(tree)).get();
  ASSERT_EQ(again.status, RequestStatus::kOk) << again.reason;
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.dilation, first.dilation);
  validate_embedding(tree, *again.embedding, 16);

  const EmbedResponse iso = svc.submit(request_for(mirror)).get();
  ASSERT_EQ(iso.status, RequestStatus::kOk) << iso.reason;
  EXPECT_TRUE(iso.cache_hit);
  EXPECT_EQ(iso.dilation, first.dilation);
  validate_embedding(mirror, *iso.embedding, 16);

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_insertions, 1u);
}

TEST(EmbeddingService, VerifyHitsModeRevalidates) {
  Rng rng(704);
  const BinaryTree tree = make_random_tree(200, rng);
  ServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.enable_batching = false;
  cfg.verify_hits = true;
  EmbeddingService svc(cfg);
  ASSERT_EQ(svc.submit(request_for(tree)).get().status, RequestStatus::kOk);
  const EmbedResponse hit = svc.submit(request_for(tree)).get();
  ASSERT_EQ(hit.status, RequestStatus::kOk) << hit.reason;
  EXPECT_TRUE(hit.cache_hit);
}

TEST(EmbeddingService, BatchingCoalescesSameShape) {
  // Queue five identical shapes while paused; one resume must produce
  // exactly one embed (one miss) and four coalesced responses.
  Rng rng(705);
  const BinaryTree tree = make_random_tree(300, rng);
  ServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.cache_capacity = 0;  // isolate the batcher
  cfg.enable_batching = true;
  cfg.start_paused = true;
  EmbeddingService svc(cfg);
  std::vector<std::future<EmbedResponse>> futs;
  for (int i = 0; i < 5; ++i) futs.push_back(svc.submit(request_for(tree)));
  svc.resume();
  int coalesced = 0;
  for (auto& f : futs) {
    const EmbedResponse res = f.get();
    ASSERT_EQ(res.status, RequestStatus::kOk) << res.reason;
    validate_embedding(tree, *res.embedding, 16);
    coalesced += res.coalesced ? 1 : 0;
  }
  EXPECT_EQ(coalesced, 4);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.coalesced, 4u);
  EXPECT_EQ(stats.completed, 5u);
}

TEST(EmbeddingService, BackpressureRejectsExplicitly) {
  // Paused service, capacity 3: submits 4 and 5 must come back already
  // resolved as kRejectedQueueFull with a reason, and the accounting
  // must show zero silent drops.
  Rng rng(706);
  std::vector<std::string> diags;
  ServiceConfig cfg;
  cfg.queue_capacity = 3;
  cfg.num_shards = 1;
  cfg.start_paused = true;
  cfg.diagnostic_sink = [&diags](const std::string& line) {
    diags.push_back(line);
  };
  EmbeddingService svc(cfg);
  std::vector<std::future<EmbedResponse>> futs;
  for (int i = 0; i < 5; ++i)
    futs.push_back(svc.submit(request_for(make_random_tree(50, rng))));
  int rejected = 0;
  for (std::size_t i = 3; i < 5; ++i) {
    ASSERT_EQ(futs[i].wait_for(0s), std::future_status::ready);
    const EmbedResponse res = futs[i].get();
    EXPECT_EQ(res.status, RequestStatus::kRejectedQueueFull);
    EXPECT_NE(res.reason.find("queue full"), std::string::npos) << res.reason;
    ++rejected;
  }
  EXPECT_EQ(rejected, 2);
  EXPECT_FALSE(diags.empty());

  svc.resume();
  std::uint64_t answered = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(futs[i].get().status, RequestStatus::kOk);
    ++answered;
  }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.rejected_full, 2u);
  EXPECT_EQ(stats.completed, answered);
  // Every submitted request is accounted for — nothing silently lost.
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected_full +
                                 stats.rejected_shutdown + stats.expired +
                                 stats.failed);
}

TEST(EmbeddingService, BulkAdmissionReservesHeadroom) {
  // Capacity 4 with bulk_queue_reserve 2: bulk-flagged submits admit
  // only while depth < 2, so two queue slots always stay open for
  // interactive traffic; rejected_bulk counts the bulk subset of
  // rejected_full without disturbing the accounting identity.
  Rng rng(712);
  ServiceConfig cfg;
  cfg.queue_capacity = 4;
  cfg.bulk_queue_reserve = 2;
  cfg.num_shards = 1;
  cfg.start_paused = true;
  EmbeddingService svc(cfg);

  const auto bulk_request = [](BinaryTree t) {
    EmbedRequest req = request_for(std::move(t));
    req.bulk = true;
    return req;
  };

  std::vector<std::future<EmbedResponse>> admitted;
  admitted.push_back(svc.submit(bulk_request(make_random_tree(40, rng))));
  admitted.push_back(svc.submit(bulk_request(make_random_tree(41, rng))));
  // Depth is now 2 == bulk capacity: the next bulk submit is rejected
  // with a reason naming the admission policy...
  auto bulk_rejected = svc.submit(bulk_request(make_random_tree(42, rng)));
  ASSERT_EQ(bulk_rejected.wait_for(0s), std::future_status::ready);
  const EmbedResponse res = bulk_rejected.get();
  EXPECT_EQ(res.status, RequestStatus::kRejectedQueueFull);
  EXPECT_NE(res.reason.find("bulk admission"), std::string::npos)
      << res.reason;
  // ...while interactive requests still see the reserved headroom.
  admitted.push_back(svc.submit(request_for(make_random_tree(43, rng))));
  admitted.push_back(svc.submit(request_for(make_random_tree(44, rng))));
  // Depth 4 == capacity: now full for everyone.
  auto full = svc.submit(request_for(make_random_tree(45, rng)));
  ASSERT_EQ(full.wait_for(0s), std::future_status::ready);
  EXPECT_EQ(full.get().status, RequestStatus::kRejectedQueueFull);

  svc.resume();
  for (auto& fut : admitted)
    EXPECT_EQ(fut.get().status, RequestStatus::kOk);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.rejected_full, 2u);
  EXPECT_EQ(stats.rejected_bulk, 1u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected_full +
                                 stats.rejected_shutdown + stats.expired +
                                 stats.failed);
}

TEST(EmbeddingService, DeadlineExpiresInQueue) {
  Rng rng(707);
  ServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.start_paused = true;
  EmbeddingService svc(cfg);
  EmbedRequest req = request_for(make_random_tree(50, rng));
  req.deadline = ServiceClock::now() - 1ms;  // already past
  auto fut = svc.submit(std::move(req));
  svc.resume();
  const EmbedResponse res = fut.get();
  EXPECT_EQ(res.status, RequestStatus::kExpiredDeadline);
  EXPECT_FALSE(res.reason.empty());
  EXPECT_EQ(svc.stats().expired, 1u);
}

TEST(EmbeddingService, PriorityOrdersService) {
  // One shard, paused: queue low/high/mid, then resume.  served_seq
  // must follow priority order (high=3, mid=2, low=1).
  Rng rng(708);
  ServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.enable_batching = false;
  cfg.start_paused = true;
  EmbeddingService svc(cfg);
  auto low = svc.submit(request_for(make_random_tree(40, rng), Theorem::kT1, 0));
  auto high =
      svc.submit(request_for(make_random_tree(41, rng), Theorem::kT1, 9));
  auto mid =
      svc.submit(request_for(make_random_tree(42, rng), Theorem::kT1, 5));
  svc.resume();
  const std::uint64_t s_high = high.get().served_seq;
  const std::uint64_t s_mid = mid.get().served_seq;
  const std::uint64_t s_low = low.get().served_seq;
  EXPECT_LT(s_high, s_mid);
  EXPECT_LT(s_mid, s_low);
}

TEST(EmbeddingService, AbortShutdownAnswersEveryPending) {
  Rng rng(709);
  ServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.start_paused = true;
  EmbeddingService svc(cfg);
  std::vector<std::future<EmbedResponse>> futs;
  for (int i = 0; i < 4; ++i)
    futs.push_back(svc.submit(request_for(make_random_tree(60, rng))));
  svc.shutdown(/*drain=*/false);
  for (auto& f : futs) {
    const EmbedResponse res = f.get();
    EXPECT_EQ(res.status, RequestStatus::kRejectedShutdown);
    EXPECT_FALSE(res.reason.empty());
  }
  EXPECT_EQ(svc.stats().rejected_shutdown, 4u);
  // Submitting after shutdown is answered immediately, never queued.
  const EmbedResponse late =
      svc.submit(request_for(make_random_tree(10, rng))).get();
  EXPECT_EQ(late.status, RequestStatus::kRejectedShutdown);
}

TEST(EmbeddingService, DrainShutdownServesEveryPending) {
  Rng rng(710);
  std::vector<std::future<EmbedResponse>> futs;
  {
    ServiceConfig cfg;
    cfg.num_shards = 2;
    cfg.start_paused = true;
    EmbeddingService svc(cfg);
    for (int i = 0; i < 6; ++i)
      futs.push_back(svc.submit(request_for(make_random_tree(80, rng))));
    svc.resume();
    // Destructor drains.
  }
  for (auto& f : futs) EXPECT_EQ(f.get().status, RequestStatus::kOk);
}

TEST(EmbeddingService, StatsJsonCarriesTheSurface) {
  Rng rng(711);
  ServiceConfig cfg;
  cfg.num_shards = 1;
  EmbeddingService svc(cfg);
  ASSERT_EQ(svc.submit(request_for(make_random_tree(100, rng))).get().status,
            RequestStatus::kOk);
  const std::string json = svc.stats_json();
  // The complete to_json surface: the HTTP /stats endpoint, xt_serve's
  // shutdown summary and bench_service all embed this object verbatim,
  // so renaming a field is a wire-format break and must fail here.
  for (const char* key :
       {"\"submitted\"", "\"completed\"", "\"rejected_full\"",
        "\"rejected_bulk\"", "\"rejected_shutdown\"", "\"expired\"",
        "\"failed\"", "\"cache_hits\"", "\"cache_misses\"",
        "\"cache_hit_rate\"", "\"cache_insertions\"", "\"cache_evictions\"",
        "\"cache_size\"", "\"coalesced\"", "\"queue_depth\"",
        "\"queue_capacity\"", "\"pool_queue_depth\"", "\"num_shards\"",
        "\"p50_ms\"", "\"p99_ms\"", "\"mean_ms\"", "\"max_ms\"",
        "\"uptime_s\"", "\"throughput_rps\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing\n"
                                                 << json;
  }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_GT(stats.throughput_rps, 0.0);
  EXPECT_GE(stats.p99_ms, stats.p50_ms);
}

TEST(EmbeddingService, ManyConcurrentMixedRequests) {
  // A burst across all three theorems and several shapes; everything
  // must come back kOk and structurally valid.
  Rng rng(712);
  ServiceConfig cfg;
  cfg.queue_capacity = 512;
  cfg.num_shards = 3;
  EmbeddingService svc(cfg);
  struct Item {
    BinaryTree tree;
    Theorem theorem;
    std::future<EmbedResponse> fut;
  };
  std::vector<Item> items;
  const Theorem theorems[] = {Theorem::kT1, Theorem::kT2, Theorem::kT3};
  for (int i = 0; i < 24; ++i) {
    BinaryTree tree = make_random_tree(60 + 10 * (i % 5), rng);
    const Theorem theorem = theorems[i % 3];
    auto fut = svc.submit(request_for(tree, theorem));
    items.push_back({std::move(tree), theorem, std::move(fut)});
  }
  for (auto& item : items) {
    const EmbedResponse res = item.fut.get();
    ASSERT_EQ(res.status, RequestStatus::kOk) << res.reason;
    validate_embedding(item.tree, *res.embedding,
                       item.theorem == Theorem::kT2 ? 1 : 16);
  }
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.completed, 24u);
  EXPECT_EQ(stats.submitted,
            stats.completed + stats.rejected_full + stats.rejected_shutdown +
                stats.expired + stats.failed);
}

TEST(EmbeddingService, ParallelIntraEmbedUnderLoad) {
  // Nested composition under load: every shard borrows shared-pool
  // slots for its embeds' SPLIT sweeps (intra_embed_parallelism > 1)
  // while the same pool carries the dilation audits and the other
  // shards' sweeps.  The waits-point-down-the-DAG discipline plus the
  // caller-runs future wait must keep this deadlock-free, and the
  // service must account for every request exactly once:
  //   submitted == completed + rejected + expired + failed.
  Rng rng(713);
  ServiceConfig cfg;
  cfg.queue_capacity = 48;  // small enough that the burst overflows
  cfg.num_shards = 3;
  cfg.intra_embed_parallelism = 4;  // explicit, not auto
  cfg.cache_capacity = 8;
  EmbeddingService svc(cfg);
  EXPECT_EQ(svc.config().intra_embed_parallelism, 4);

  std::vector<std::future<EmbedResponse>> futs;
  for (int i = 0; i < 96; ++i) {
    // Exact-form r=4 trees (496 nodes): the later SPLIT rounds clear
    // the sequential cutoff, so the parallel path genuinely runs.
    // Five shapes cycle so the cache and batcher both see repeats.
    Rng shape(714 + static_cast<std::uint64_t>(i % 5));
    EmbedRequest req = request_for(make_random_tree(16 * 31, shape));
    if (i % 16 == 15) req.deadline = ServiceClock::now() - 1ms;
    req.priority = static_cast<std::int32_t>(rng.below(3));
    futs.push_back(svc.submit(std::move(req)));
  }
  std::uint64_t ok = 0, rejected = 0, expired = 0, failed = 0;
  for (auto& f : futs) {
    const EmbedResponse res = f.get();  // hangs forever on a deadlock
    switch (res.status) {
      case RequestStatus::kOk:
        ASSERT_TRUE(res.embedding.has_value());
        EXPECT_LE(res.dilation, 3);
        ++ok;
        break;
      case RequestStatus::kRejectedQueueFull:
      case RequestStatus::kRejectedShutdown: ++rejected; break;
      case RequestStatus::kExpiredDeadline: ++expired; break;
      case RequestStatus::kFailed: FAIL() << res.reason; ++failed; break;
    }
  }
  EXPECT_GT(ok, 0u);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 96u);
  EXPECT_EQ(stats.completed, ok);
  EXPECT_EQ(stats.rejected_full + stats.rejected_shutdown, rejected);
  EXPECT_EQ(stats.expired, expired);
  EXPECT_EQ(stats.failed, failed);
  EXPECT_EQ(stats.submitted, stats.completed + stats.rejected_full +
                                 stats.rejected_shutdown + stats.expired +
                                 stats.failed);
}

TEST(EmbeddingService, ParallelBudgetsServeIdenticalPlacements) {
  // The parallel cache-miss path must serve byte-identical placements
  // to the sequential one for the same guest: budget is a throughput
  // knob, never a result knob.
  Rng rng(715);
  const BinaryTree tree = make_random_tree(16 * 31, rng);
  std::vector<std::vector<VertexId>> hosts;
  for (int budget : {1, 4}) {
    ServiceConfig cfg;
    cfg.num_shards = 1;
    cfg.intra_embed_parallelism = budget;
    EmbeddingService svc(cfg);
    const EmbedResponse res = svc.submit(request_for(tree)).get();
    ASSERT_EQ(res.status, RequestStatus::kOk) << res.reason;
    std::vector<VertexId> host(static_cast<std::size_t>(tree.num_nodes()));
    for (NodeId v = 0; v < tree.num_nodes(); ++v)
      host[static_cast<std::size_t>(v)] = res.embedding->host_of(v);
    hosts.push_back(std::move(host));
  }
  EXPECT_EQ(hosts[0], hosts[1]);
}

TEST(ServiceVocabulary, TheoremNamesRoundTrip) {
  for (Theorem t : {Theorem::kT1, Theorem::kT2, Theorem::kT3}) {
    const auto parsed = parse_theorem(theorem_name(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(parse_theorem("T9").has_value());
}

TEST(CanonicalCache, LruEvictsLeastRecentlyUsed) {
  CanonicalCache cache(2);
  const CacheKey a{1, 10, Theorem::kT1, 16};
  const CacheKey b{2, 10, Theorem::kT1, 16};
  const CacheKey c{3, 10, Theorem::kT1, 16};
  CachedEmbedding entry;
  entry.host_vertices = 1;
  cache.insert(a, entry);
  cache.insert(b, entry);
  ASSERT_NE(cache.lookup(a), nullptr);  // refreshes a; b is now LRU
  cache.insert(c, entry);               // evicts b
  EXPECT_NE(cache.lookup(a), nullptr);
  EXPECT_EQ(cache.lookup(b), nullptr);
  EXPECT_NE(cache.lookup(c), nullptr);
  const auto counters = cache.counters();
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.insertions, 3u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CanonicalCache, KeyDiscriminatesTheoremAndLoad) {
  CanonicalCache cache(8);
  CachedEmbedding entry;
  cache.insert({7, 10, Theorem::kT1, 16}, entry);
  EXPECT_EQ(cache.lookup({7, 10, Theorem::kT2, 16}), nullptr);
  EXPECT_EQ(cache.lookup({7, 10, Theorem::kT1, 8}), nullptr);
  EXPECT_EQ(cache.lookup({7, 11, Theorem::kT1, 16}), nullptr);
  EXPECT_NE(cache.lookup({7, 10, Theorem::kT1, 16}), nullptr);
}

}  // namespace
}  // namespace xt
