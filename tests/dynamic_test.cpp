// Tests for the online (dynamic) embedding extension: growth, the
// batched-growth contract, and the snapshot projection.  Mutation
// (remove/move/repair/escalate) is covered by tests/mutation_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "btree/generators.hpp"
#include "core/dynamic_embedder.hpp"
#include "core/xtree_embedder.hpp"
#include "embedding/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

TEST(DynamicEmbedder, StartsWithRootOnHostRoot) {
  DynamicEmbedder dyn(3);
  EXPECT_EQ(dyn.num_live(), 1);
  EXPECT_EQ(dyn.host_of(0), dyn.host().root());
  EXPECT_EQ(dyn.free_capacity(), 16 * 15 - 1);
}

TEST(DynamicEmbedder, GrowsValidEmbeddings) {
  Rng rng(301);
  DynamicEmbedder dyn(4);
  std::vector<NodeId> open{0};
  while (dyn.free_capacity() > 0 && !open.empty()) {
    const std::size_t pick = rng.below(open.size());
    const NodeId parent = open[pick];
    const NodeId leaf = dyn.add_leaf(parent);
    if (dyn.num_children(parent) == 2) {
      open[pick] = open.back();
      open.pop_back();
    }
    open.push_back(leaf);
  }
  const auto snap = dyn.snapshot();
  validate_embedding(snap.tree, snap.embedding, 16);
  EXPECT_EQ(dyn.num_live(), 16 * 31);  // machine exactly full
}

TEST(DynamicEmbedder, RefusesGrowthWhenFull) {
  DynamicEmbedder dyn(0);  // one vertex, 16 slots
  NodeId tip = 0;
  for (int i = 1; i < 16; ++i) tip = dyn.add_leaf(tip);
  EXPECT_EQ(dyn.free_capacity(), 0);
  EXPECT_THROW(dyn.add_leaf(tip), check_error);
}

TEST(DynamicEmbedder, TryAddLeafReportsHostFullWithoutMutation) {
  for (std::int32_t r : {0, 1}) {  // the full-host path at small r
    DynamicEmbedder dyn(r);
    NodeId tip = 0;
    while (dyn.free_capacity() > 0) tip = dyn.add_leaf(tip);
    const NodeId n_before = dyn.num_live();
    const auto res = dyn.try_add_leaf(tip);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.error, DynamicEmbedder::GrowthError::kHostFull);
    EXPECT_EQ(res.leaf, kInvalidNode);
    // A failed growth leaves the embedder untouched and still valid.
    EXPECT_EQ(dyn.num_live(), n_before);
    EXPECT_EQ(dyn.free_capacity(), 0);
    const auto snap = dyn.snapshot();
    validate_embedding(snap.tree, snap.embedding, 16);
  }
}

TEST(DynamicEmbedder, TryAddLeafReportsParentSlotsFull) {
  DynamicEmbedder dyn(2);
  const NodeId a = dyn.add_leaf(0);
  dyn.add_leaf(0);  // root now has two children
  const auto res = dyn.try_add_leaf(0);
  EXPECT_EQ(res.error, DynamicEmbedder::GrowthError::kParentSlotsFull);
  EXPECT_EQ(res.leaf, kInvalidNode);
  EXPECT_THROW(dyn.add_leaf(0), check_error);
  // A parent with a free slot still grows fine afterwards.
  EXPECT_TRUE(dyn.try_add_leaf(a).ok());
}

TEST(DynamicEmbedder, TryAddLeafReportsInvalidParent) {
  DynamicEmbedder dyn(2);
  for (const NodeId bad : {NodeId{-1}, NodeId{7}, NodeId{1000}}) {
    const auto res = dyn.try_add_leaf(bad);
    EXPECT_EQ(res.error, DynamicEmbedder::GrowthError::kInvalidParent);
    EXPECT_EQ(res.leaf, kInvalidNode);
  }
  EXPECT_THROW(dyn.add_leaf(99), check_error);
  EXPECT_EQ(dyn.num_live(), 1);
}

TEST(DynamicEmbedder, BalancedGrowthKeepsDilationModerate) {
  // Breadth-first growth (a balanced divide & conquer) stays at a
  // moderate dilation under the greedy online rule — well below the
  // host diameter (2r-1 = 9 here), though above the offline optimum
  // of 3 (that gap is what bench_ablation / EXPERIMENTS.md report).
  DynamicEmbedder dyn(5);
  const std::int64_t headroom = dyn.free_capacity() / 10;  // keep 10% free
  std::vector<NodeId> frontier{0};
  while (dyn.free_capacity() > headroom) {
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      for (int w = 0; w < 2 && dyn.free_capacity() > headroom; ++w)
        next.push_back(dyn.add_leaf(v));
    }
    frontier = std::move(next);
  }
  EXPECT_LE(dyn.current_dilation(), 8);
  // Filling the very last slots costs extra distance — the expected
  // behaviour of any online rule on a full machine.
  while (dyn.free_capacity() > 0) {
    std::vector<NodeId> open;
    for (NodeId v = 0; v < dyn.num_ids(); ++v) {
      if (dyn.num_children(v) < 2) open.push_back(v);
    }
    dyn.add_leaf(open.front());
  }
  const auto snap = dyn.snapshot();
  validate_embedding(snap.tree, snap.embedding, 16);
}

TEST(DynamicEmbedder, PathGrowthDegradesGracefully) {
  // A pure chain is the online worst case: the greedy rule cannot
  // reserve capacity ahead, so dilation grows — but placement stays
  // valid and every node lands somewhere.
  DynamicEmbedder dyn(4);
  NodeId tip = 0;
  while (dyn.free_capacity() > 0) tip = dyn.add_leaf(tip);
  const auto snap = dyn.snapshot();
  validate_embedding(snap.tree, snap.embedding, 16);
}

TEST(DynamicEmbedder, MaintainedMetricsMatchSnapshotTruth) {
  // current_dilation() / current_max_load() come from histograms the
  // mutations maintain; they must agree with the O(n) recount over
  // the snapshot at every probe.
  Rng rng(304);
  DynamicEmbedder dyn(4);
  for (int step = 0; step < 300; ++step) {
    const NodeId p =
        static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(
            dyn.num_ids())));
    dyn.try_add_leaf(p);
    if (step % 37 != 0) continue;
    const auto snap = dyn.snapshot();
    const auto rep = dilation_xtree(snap.tree, snap.embedding, dyn.host());
    EXPECT_EQ(dyn.current_dilation(), rep.max);
    EXPECT_EQ(dyn.current_max_load(), snap.embedding.load_factor());
  }
}

TEST(DynamicEmbedder, BatchedGrowthMatchesOneAtATime) {
  // try_add_leaves is pinned to the sequential semantics: identical
  // placements and identical per-entry outcomes, including failures
  // mid-batch that must not stop later entries.
  Rng rng(303);
  std::vector<NodeId> parents{0, 0, 0};  // third one fails: slots full
  {
    // Generate against a simulator so every id names a node that will
    // exist when the replayed embedders reach that entry.
    DynamicEmbedder sim(4);
    for (NodeId p : parents) sim.try_add_leaf(p);
    for (int step = 0; step < 400; ++step) {
      const NodeId p = static_cast<NodeId>(
          rng.below(static_cast<std::uint64_t>(sim.num_ids())));
      parents.push_back(p);
      sim.try_add_leaf(p);
    }
  }

  DynamicEmbedder batched(4);
  DynamicEmbedder serial(4);
  // Feed the same parent ids in chunks to the batched embedder and one
  // at a time to the reference; growth failures leave the guest
  // unchanged, so surviving ids line up between the two.
  std::vector<DynamicEmbedder::GrowthResult> batched_results;
  std::vector<DynamicEmbedder::GrowthResult> serial_results;
  const std::size_t chunk = 37;  // deliberately not a divisor
  for (std::size_t at = 0; at < parents.size(); at += chunk) {
    const std::size_t len = std::min(chunk, parents.size() - at);
    const std::span<const NodeId> slice(parents.data() + at, len);
    const auto part = batched.try_add_leaves(slice);
    batched_results.insert(batched_results.end(), part.begin(), part.end());
    for (NodeId p : slice) serial_results.push_back(serial.try_add_leaf(p));
  }

  ASSERT_EQ(batched_results.size(), parents.size());
  std::size_t failures = 0;
  for (std::size_t i = 0; i < parents.size(); ++i) {
    EXPECT_EQ(batched_results[i].error, serial_results[i].error) << i;
    EXPECT_EQ(batched_results[i].leaf, serial_results[i].leaf) << i;
    if (!batched_results[i].ok()) ++failures;
  }
  EXPECT_GE(failures, 1u);  // the third entry above must have failed

  ASSERT_EQ(batched.num_live(), serial.num_live());
  for (NodeId v = 0; v < batched.num_ids(); ++v)
    EXPECT_EQ(batched.host_of(v), serial.host_of(v)) << "node " << v;
  const auto snap = batched.snapshot();
  validate_embedding(snap.tree, snap.embedding, 16);
}

TEST(DynamicEmbedder, TryAddLeavesEmptySpanIsANoOp) {
  DynamicEmbedder dyn(2);
  const auto before = dyn.mutation_stats().applied;
  const auto results = dyn.try_add_leaves({});
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(dyn.num_live(), 1);
  EXPECT_EQ(dyn.mutation_stats().applied, before);
}

TEST(DynamicEmbedder, TryAddLeavesDuplicateParentFillsThenRejects) {
  // The same parent three times: the first two land as its children,
  // the third sees the state the first two left behind — the
  // documented non-transactional contract.
  DynamicEmbedder dyn(2);
  const std::vector<NodeId> parents{0, 0, 0};
  const auto results = dyn.try_add_leaves(parents);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_EQ(results[2].error, DynamicEmbedder::GrowthError::kParentSlotsFull);
  EXPECT_EQ(dyn.num_live(), 3);
  EXPECT_EQ(dyn.num_children(0), 2);
  // And a failed entry mid-batch does not stop later entries: the
  // fourth entry may parent a leaf created by the first.
  const std::vector<NodeId> again{0, results[0].leaf};
  const auto more = dyn.try_add_leaves(again);
  EXPECT_EQ(more[0].error, DynamicEmbedder::GrowthError::kParentSlotsFull);
  EXPECT_TRUE(more[1].ok());
}

TEST(DynamicEmbedder, GrowthFeedsTheMutationAccounting) {
  DynamicEmbedder dyn(2);
  ASSERT_TRUE(dyn.try_add_leaf(0).ok());
  ASSERT_TRUE(dyn.try_add_leaf(0).ok());
  ASSERT_FALSE(dyn.try_add_leaf(0).ok());
  const auto& stats = dyn.mutation_stats();  // asserts the identity
  EXPECT_EQ(stats.applied, 3);
  EXPECT_EQ(stats.repaired, 2);
  EXPECT_EQ(stats.escalated, 0);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.nodes_touched, 2);
}

TEST(DynamicEmbedder, OfflineBeatsOnlineOnAdversarialGrowth) {
  // Re-running the offline Theorem 1 algorithm on the final tree must
  // not be worse than the online assignment (it usually wins big).
  Rng rng(302);
  DynamicEmbedder dyn(4);
  NodeId tip = 0;
  while (dyn.free_capacity() > 0) {
    tip = dyn.add_leaf(tip);  // adversarial chain
  }
  const auto snap = dyn.snapshot();
  const auto offline = XTreeEmbedder::embed(snap.tree);
  const XTree host(offline.stats.height);
  const auto off_dil = dilation_xtree(snap.tree, offline.embedding, host);
  EXPECT_LE(off_dil.max, dyn.current_dilation());
  EXPECT_LE(off_dil.max, 3);
}

}  // namespace
}  // namespace xt
