// Deeper metric-layer properties: histogram accounting, congestion
// determinism and conservation, expansion arithmetic, and consistency
// between the three dilation implementations.
#include <gtest/gtest.h>

#include "btree/generators.hpp"
#include "core/xtree_embedder.hpp"
#include "embedding/metrics.hpp"
#include "graph/bfs.hpp"
#include "topology/hypercube.hpp"
#include "topology/xtree.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

TEST(DilationReport, HistogramSumsToEdgeCount) {
  Rng rng(201);
  const BinaryTree guest = make_random_tree(16 * 15, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree host(res.stats.height);
  const auto rep = dilation_xtree(guest, res.embedding, host);
  EXPECT_EQ(rep.num_edges, guest.num_nodes() - 1);
  std::uint64_t total = 0;
  for (std::size_t d = 0; d <= rep.histogram.max_observed(); ++d)
    total += rep.histogram.count(d);
  EXPECT_EQ(total, static_cast<std::uint64_t>(rep.num_edges));
  EXPECT_EQ(static_cast<std::int32_t>(rep.histogram.max_observed()), rep.max);
}

TEST(DilationReport, MeanIsHistogramWeightedAverage) {
  Rng rng(202);
  const BinaryTree guest = make_random_tree(300, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree host(res.stats.height);
  const auto rep = dilation_xtree(guest, res.embedding, host);
  double weighted = 0;
  for (std::size_t d = 0; d <= rep.histogram.max_observed(); ++d)
    weighted += static_cast<double>(d) * static_cast<double>(rep.histogram.count(d));
  EXPECT_NEAR(rep.mean, weighted / static_cast<double>(rep.num_edges), 1e-9);
}

TEST(DilationProfile, PerEdgeFollowsGuestEdgeOrder) {
  Rng rng(204);
  const BinaryTree guest = make_random_tree(512, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree host(res.stats.height);
  const auto profile = dilation_profile_xtree(guest, res.embedding, host);
  const auto edges = guest.edges();
  ASSERT_EQ(profile.per_edge.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto& [u, v] = edges[i];
    EXPECT_EQ(profile.per_edge[i],
              host.distance(res.embedding.host_of(u),
                            res.embedding.host_of(v)));
  }
}

TEST(DilationProfile, BitIdenticalForAnyWorkerCount) {
  // The batched path fans queries across the pool but reduces serially
  // in guest-edge order, so every field — including the double mean —
  // must be bit-identical with 1 and N workers, and match the serial
  // dilation() implementation.
  Rng rng(205);
  const BinaryTree guest = make_random_tree(16 * 31, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree host(res.stats.height);
  const auto serial = dilation(
      guest, res.embedding,
      [&host](VertexId a, VertexId b) { return host.distance(a, b); });
  const auto p1 = dilation_profile_xtree(guest, res.embedding, host, 1);
  const auto p8 = dilation_profile_xtree(guest, res.embedding, host, 8);
  EXPECT_EQ(p1.per_edge, p8.per_edge);
  EXPECT_EQ(p1.report.max, p8.report.max);
  EXPECT_EQ(p1.report.num_edges, p8.report.num_edges);
  // Bitwise double equality is the point: same summation order.
  EXPECT_EQ(p1.report.mean, p8.report.mean);
  EXPECT_EQ(p1.report.mean, serial.mean);
  EXPECT_EQ(p1.report.max, serial.max);
  for (std::size_t d = 0; d <= serial.histogram.max_observed(); ++d) {
    EXPECT_EQ(p1.report.histogram.count(d), serial.histogram.count(d));
    EXPECT_EQ(p8.report.histogram.count(d), serial.histogram.count(d));
  }
}

TEST(DilationImplementations, AgreeOnHypercubeHosts) {
  Rng rng(203);
  const BinaryTree guest = make_random_tree(100, rng);
  const Hypercube q(6);
  Embedding emb(guest.num_nodes(), q.num_vertices());
  for (NodeId v = 0; v < guest.num_nodes(); ++v)
    emb.place(v, static_cast<VertexId>(rng.below(q.num_vertices())));
  const auto closed = dilation_hypercube(guest, emb, q);
  const auto generic = dilation_graph(guest, emb, q.to_graph());
  EXPECT_EQ(closed.max, generic.max);
  EXPECT_DOUBLE_EQ(closed.mean, generic.mean);
}

TEST(Congestion, ConservationOfHops) {
  // Total traffic over all host edges equals the sum of the routed
  // path lengths, which is the total dilation of non-co-located edges.
  Rng rng(204);
  const BinaryTree guest = make_random_tree(240, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree xtree(res.stats.height);
  const Graph host = xtree.to_graph();
  const auto dil = dilation_xtree(guest, res.embedding, xtree);
  const auto cong = congestion(guest, res.embedding, host);
  const double total_traffic = cong.mean * static_cast<double>(cong.used_edges);
  const double total_dilation = dil.mean * static_cast<double>(dil.num_edges);
  EXPECT_NEAR(total_traffic, total_dilation, 1e-6);
}

TEST(Congestion, DeterministicAcrossCalls) {
  Rng rng(205);
  const BinaryTree guest = make_random_tree(200, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree xtree(res.stats.height);
  const Graph host = xtree.to_graph();
  const auto a = congestion(guest, res.embedding, host);
  const auto b = congestion(guest, res.embedding, host);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.used_edges, b.used_edges);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
}

TEST(Congestion, BoundedByLoadTimesDegreeArgument) {
  // With dilation <= 3 and load 16, any host edge carries at most the
  // guest edges whose endpoints map within distance 3 of it: a crude
  // bound of (ball size) * 16 * 3 edges.  The observed congestion is
  // far below; this guards against pathological routing regressions.
  Rng rng(206);
  const BinaryTree guest = make_random_tree(16 * 31, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree xtree(res.stats.height);
  const auto cong = congestion(guest, res.embedding, xtree.to_graph());
  EXPECT_LE(cong.max, 16 * 3 * 21);
  EXPECT_GT(cong.max, 0);
}

TEST(Expansion, MatchesHostOverGuestRatio) {
  Embedding e(10, 25);
  EXPECT_DOUBLE_EQ(e.expansion(), 2.5);
}

TEST(Loads, SumEqualsPlacedCount) {
  Rng rng(207);
  const BinaryTree guest = make_random_tree(500, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const auto loads = res.embedding.loads();
  NodeId total = 0;
  for (NodeId l : loads) total += l;
  EXPECT_EQ(total, guest.num_nodes());
}

}  // namespace
}  // namespace xt
