#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "topology/xtree.hpp"
#include "topology/xtree_router.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

TEST(XTreeRouter, NextHopIsNeighborAndCloser) {
  const XTree x(6);
  const XTreeRouter router(x);
  Rng rng(1);
  std::vector<VertexId> nbr;
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = static_cast<VertexId>(rng.below(x.num_vertices()));
    const auto b = static_cast<VertexId>(rng.below(x.num_vertices()));
    if (a == b) {
      EXPECT_EQ(router.next_hop(a, b), a);
      continue;
    }
    const VertexId h = router.next_hop(a, b);
    nbr.clear();
    x.neighbors(a, nbr);
    EXPECT_NE(std::find(nbr.begin(), nbr.end(), h), nbr.end());
    EXPECT_EQ(x.distance(h, b), x.distance(a, b) - 1);
  }
}

TEST(XTreeRouter, RoutesAreShortestPaths) {
  const XTree x(7);
  const XTreeRouter router(x);
  const Graph g = x.to_graph();
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<VertexId>(rng.below(x.num_vertices()));
    const auto b = static_cast<VertexId>(rng.below(x.num_vertices()));
    const auto path = router.route(a, b);
    ASSERT_GE(path.size(), 1u);
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), b);
    EXPECT_EQ(static_cast<std::int32_t>(path.size()) - 1,
              bfs_distance(g, a, b));
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
      EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
}

TEST(XTreeRouter, DeterministicAcrossInstances) {
  const XTree x(5);
  const XTreeRouter r1(x);
  const XTreeRouter r2(x);
  for (VertexId a = 0; a < x.num_vertices(); a += 3) {
    for (VertexId b = 0; b < x.num_vertices(); b += 5) {
      EXPECT_EQ(r1.route(a, b), r2.route(a, b));
    }
  }
}

TEST(XTreeRouter, CachedVariantMatches) {
  const XTree x(6);
  XTreeRouter router(x);
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = static_cast<VertexId>(rng.below(x.num_vertices()));
    const auto b = static_cast<VertexId>(rng.below(x.num_vertices()));
    const auto& cached = router.route_cached(a, b);
    EXPECT_EQ(cached, router.route(a, b));
    // Second lookup returns the same object.
    EXPECT_EQ(&router.route_cached(a, b), &cached);
  }
}

TEST(XTreeRouter, ExhaustiveSmallHeights) {
  for (std::int32_t r : {1, 2, 3, 4}) {
    const XTree x(r);
    const XTreeRouter router(x);
    const Graph g = x.to_graph();
    for (VertexId a = 0; a < x.num_vertices(); ++a) {
      const auto dist = bfs_distances(g, a);
      for (VertexId b = 0; b < x.num_vertices(); ++b) {
        EXPECT_EQ(static_cast<std::int32_t>(router.route(a, b).size()) - 1,
                  dist[static_cast<std::size_t>(b)]);
      }
    }
  }
}

}  // namespace
}  // namespace xt
