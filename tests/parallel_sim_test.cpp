// The parallel simulator must match the sequential one on every
// counter, for every worker count — the machine model is well-defined
// independent of execution strategy.
#include <gtest/gtest.h>

#include "btree/generators.hpp"
#include "core/xtree_embedder.hpp"
#include "sim/network_sim.hpp"
#include "sim/parallel_sim.hpp"
#include "topology/xtree.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

void expect_equal(const SimResult& a, const SimResult& b,
                  const char* context) {
  EXPECT_EQ(a.cycles, b.cycles) << context;
  EXPECT_EQ(a.messages, b.messages) << context;
  EXPECT_EQ(a.total_hops, b.total_hops) << context;
  EXPECT_EQ(a.max_link_wait, b.max_link_wait) << context;
}

TEST(ParallelSim, MatchesSequentialOnRandomTrees) {
  Rng rng(501);
  for (int trial = 0; trial < 6; ++trial) {
    const auto n = static_cast<NodeId>(50 + rng.below(800));
    const BinaryTree guest = make_random_tree(n, rng);
    const auto res = XTreeEmbedder::embed(guest);
    const XTree xtree(res.stats.height);
    const Graph host = xtree.to_graph();

    NetworkSim seq(host, guest, res.embedding);
    ParallelNetworkSim par(host, guest, res.embedding, {}, 4);
    expect_equal(par.run_reduction(), seq.run_reduction(), "reduction");
    expect_equal(par.run_broadcast(), seq.run_broadcast(), "broadcast");
  }
}

TEST(ParallelSim, IdenticalAcrossWorkerCounts) {
  Rng rng(502);
  const BinaryTree guest = make_random_tree(16 * 15, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree xtree(res.stats.height);
  const Graph host = xtree.to_graph();
  SimResult reference;
  bool first = true;
  for (unsigned workers : {1u, 2u, 3u, 8u}) {
    ParallelNetworkSim sim(host, guest, res.embedding, {}, workers);
    const SimResult out = sim.run_reduction();
    if (first) {
      reference = out;
      first = false;
    } else {
      expect_equal(out, reference, "workers");
    }
  }
}

TEST(ParallelSim, MatchesSequentialUnderContentionConfigs) {
  Rng rng(503);
  const BinaryTree guest = make_random_tree(16 * 31, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree xtree(res.stats.height);
  const Graph host = xtree.to_graph();
  for (const SimConfig config : {SimConfig{1, 1}, SimConfig{4, 1},
                                 SimConfig{1, 2}, SimConfig{16, 4}}) {
    NetworkSim seq(host, guest, res.embedding, config);
    ParallelNetworkSim par(host, guest, res.embedding, config, 4);
    expect_equal(par.run_reduction(), seq.run_reduction(), "config");
  }
}

TEST(ParallelSim, PathGuestWorstCase) {
  // A path guest maximises message chains (fully serial dependency).
  const BinaryTree guest = make_path_tree(16 * 7);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree xtree(res.stats.height);
  const Graph host = xtree.to_graph();
  NetworkSim seq(host, guest, res.embedding);
  ParallelNetworkSim par(host, guest, res.embedding);
  expect_equal(par.run_reduction(), seq.run_reduction(), "path");
}

}  // namespace
}  // namespace xt
