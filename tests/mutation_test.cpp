// Differential mutation oracle (ISSUE 9 satellite 1): randomized
// mutation sequences against DynamicEmbedder where EVERY step is
// checked against ground truth — certificate validity, metric
// recounts, accounting, and bit-identity of escalations with fresh
// offline XTreeEmbedder runs.  Plus the shrinker/replay harness's own
// self-tests (a seeded failure must be caught and minimised).
#include "verify/mutation_fuzz.hpp"

#include <gtest/gtest.h>

#include <string>

#include "embedding/metrics.hpp"

namespace xt {
namespace {

TEST(MutationOracleTest, TwoThousandStepRandomSequenceHoldsEveryInvariant) {
  MutationFuzzOptions options;
  options.seed = 0xA11CE;
  options.steps = 2000;
  options.height = 5;
  options.load = 4;
  options.policy = MutationPolicy{/*max_repair_nodes=*/16,
                                  /*max_dilation=*/3};
  const MutationScript script = generate_mutation_script(options, /*trial=*/0);
  ASSERT_EQ(script.ops.size(), 2000u);
  EXPECT_EQ(mutation_property(script), "");
}

TEST(MutationOracleTest, TightPolicyForcesEscalationsAndTheyMatchOffline) {
  // max_repair_nodes = 0 disables local repair entirely: every
  // over-bound placement escalates, so this run exercises the
  // bit-identity check many times.
  MutationFuzzOptions options;
  options.seed = 0xBEEF;
  options.steps = 400;
  options.height = 4;
  options.load = 2;
  options.policy = MutationPolicy{/*max_repair_nodes=*/0,
                                  /*max_dilation=*/1};
  const MutationScript script = generate_mutation_script(options, /*trial=*/1);
  EXPECT_EQ(mutation_property(script), "");

  // The property only proves escalations match the oracle; prove the
  // script actually triggered some, or this test pins nothing.
  DynamicEmbedder dyn(options.height, options.load, options.policy);
  for (const MutationOp& op : script.ops) {
    switch (op.kind) {
      case MutationOpKind::kAddLeaf: (void)dyn.try_add_leaf(op.a); break;
      case MutationOpKind::kRemoveLeaf: (void)dyn.try_remove_leaf(op.a); break;
      case MutationOpKind::kRemoveSubtree:
        (void)dyn.try_remove_subtree(op.a);
        break;
      case MutationOpKind::kMoveSubtree:
        (void)dyn.try_move_subtree(op.a, op.b);
        break;
    }
  }
  EXPECT_GT(dyn.mutation_stats().escalated, 0);
}

TEST(MutationFuzzTest, CleanRunReportsNoViolations) {
  MutationFuzzOptions options;
  options.trials = 8;
  options.steps = 120;
  const MutationFuzzReport report = run_mutation_fuzz(options);
  EXPECT_EQ(report.trials, 8);
  EXPECT_TRUE(report.ok()) << report.violations.front().failure;
}

TEST(MutationFuzzTest, ScriptsAreDeterministicInSeedAndTrial) {
  MutationFuzzOptions options;
  options.steps = 60;
  const MutationScript a = generate_mutation_script(options, 3);
  const MutationScript b = generate_mutation_script(options, 3);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  EXPECT_TRUE(a.ops == b.ops);
  const MutationScript c = generate_mutation_script(options, 4);
  EXPECT_FALSE(a.ops == c.ops);
}

TEST(MutationFuzzTest, ShrinkerMinimisesASeededFailure) {
  // Property rigged to fail whenever the script still contains a
  // remove-subtree op; the minimal failing script is exactly one op.
  MutationFuzzOptions options;
  options.steps = 200;
  MutationScript script = generate_mutation_script(options, 0);
  bool has_marker = false;
  for (const MutationOp& op : script.ops)
    has_marker |= op.kind == MutationOpKind::kRemoveSubtree;
  ASSERT_TRUE(has_marker) << "generator produced no remove-subtree in 200 ops";

  const auto rigged = [](const MutationScript& s) -> std::string {
    for (const MutationOp& op : s.ops)
      if (op.kind == MutationOpKind::kRemoveSubtree) return "seeded failure";
    return "";
  };
  int steps = 0, evals = 0;
  const MutationScript shrunk =
      shrink_mutation_script(script, rigged, 4000, &steps, &evals);
  EXPECT_EQ(shrunk.ops.size(), 1u);
  EXPECT_EQ(shrunk.ops[0].kind, MutationOpKind::kRemoveSubtree);
  EXPECT_GT(steps, 0);
  EXPECT_LE(evals, 4000);
  // Headers survive shrinking, so the repro is self-contained.
  EXPECT_EQ(shrunk.height, options.height);
  EXPECT_EQ(shrunk.load, options.load);
}

TEST(MutationFuzzTest, ReplayCommandRoundTripsThroughTheParser) {
  MutationScript script;
  script.height = 4;
  script.load = 2;
  script.max_repair_nodes = 8;
  script.max_dilation = 2;
  script.ops = {{MutationOpKind::kAddLeaf, 0, kInvalidNode},
                {MutationOpKind::kMoveSubtree, 1, 0}};
  const std::string cmd = mutation_replay_command(script);
  // Extract the quoted inline script and turn ';' back into lines —
  // exactly what xt_fuzz --mutations --replay does.
  const std::size_t open = cmd.find('\'');
  const std::size_t close = cmd.rfind('\'');
  ASSERT_NE(open, std::string::npos);
  ASSERT_GT(close, open);
  std::string inline_script = cmd.substr(open + 1, close - open - 1);
  for (char& c : inline_script)
    if (c == ';') c = '\n';
  MutationScript parsed;
  std::string error;
  ASSERT_TRUE(parse_mutation_script(inline_script, &parsed, &error)) << error;
  EXPECT_EQ(parsed.height, 4);
  EXPECT_EQ(parsed.load, 2);
  EXPECT_EQ(parsed.max_repair_nodes, 8);
  EXPECT_EQ(parsed.max_dilation, 2);
  EXPECT_TRUE(parsed.ops == script.ops);
}

TEST(MutationScriptTest, ParserRejectsMalformedLinesWithLineNumbers) {
  MutationScript script;
  std::string error;
  EXPECT_FALSE(parse_mutation_script("add 0\nfrobnicate 3\n", &script, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_FALSE(parse_mutation_script("add\n", &script, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_FALSE(parse_mutation_script("move 1\n", &script, &error));
  EXPECT_FALSE(parse_mutation_script("add 0 extra\n", &script, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
  EXPECT_FALSE(parse_mutation_script("host 30 16\n", &script, &error));
}

TEST(MutationScriptTest, FormatParsesBackToTheSameScript) {
  MutationScript script;
  script.height = 5;
  script.load = 4;
  script.ops = {{MutationOpKind::kAddLeaf, 0, kInvalidNode},
                {MutationOpKind::kRemoveLeaf, 1, kInvalidNode},
                {MutationOpKind::kRemoveSubtree, 2, kInvalidNode},
                {MutationOpKind::kMoveSubtree, 3, 4}};
  const std::string text = format_mutation_script(script);
  MutationScript parsed;
  std::string error;
  ASSERT_TRUE(parse_mutation_script(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.height, script.height);
  EXPECT_EQ(parsed.load, script.load);
  EXPECT_TRUE(parsed.ops == script.ops);
}

}  // namespace
}  // namespace xt
