#include <gtest/gtest.h>

#include "btree/generators.hpp"
#include "embedding/embedding.hpp"
#include "embedding/metrics.hpp"
#include "topology/xtree.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

TEST(Embedding, PlaceAndQuery) {
  Embedding e(3, 4);
  EXPECT_FALSE(e.complete());
  e.place(0, 2);
  e.place(1, 2);
  e.place(2, 0);
  EXPECT_TRUE(e.complete());
  EXPECT_EQ(e.host_of(0), 2);
  EXPECT_EQ(e.load_factor(), 2);
  EXPECT_FALSE(e.injective());
  EXPECT_DOUBLE_EQ(e.expansion(), 4.0 / 3.0);
  const auto on2 = e.guests_on(2);
  ASSERT_EQ(on2.size(), 2u);
}

TEST(Embedding, RejectsDoublePlacementAndBadIds) {
  Embedding e(2, 2);
  e.place(0, 0);
  EXPECT_THROW(e.place(0, 1), check_error);
  EXPECT_THROW(e.place(1, 5), check_error);
  EXPECT_THROW(e.place(9, 0), check_error);
}

TEST(Metrics, DilationOnIdentityLikeEmbedding) {
  // Path guest on a path-shaped host region of X(2) level 2.
  const BinaryTree guest = make_path_tree(4);
  const XTree host(2);
  Embedding e(4, host.num_vertices());
  // Place consecutively along level 2: dilation 1.
  for (NodeId v = 0; v < 4; ++v)
    e.place(v, XTree::id_of({2, v}));
  const auto rep = dilation_xtree(guest, e, host);
  EXPECT_EQ(rep.max, 1);
  EXPECT_DOUBLE_EQ(rep.mean, 1.0);
  EXPECT_EQ(rep.num_edges, 3);
  EXPECT_EQ(rep.histogram.count(1), 3u);
}

TEST(Metrics, GraphDilationMatchesXtreeDilation) {
  Rng rng(9);
  const BinaryTree guest = make_random_tree(100, rng);
  const XTree host(3);
  Embedding e(guest.num_nodes(), host.num_vertices());
  for (NodeId v = 0; v < guest.num_nodes(); ++v)
    e.place(v, static_cast<VertexId>(rng.below(host.num_vertices())));
  const auto a = dilation_xtree(guest, e, host);
  const auto b = dilation_graph(guest, e, host.to_graph());
  EXPECT_EQ(a.max, b.max);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
}

TEST(Metrics, DilationRequiresCompleteEmbedding) {
  const BinaryTree guest = make_path_tree(3);
  const XTree host(1);
  Embedding e(3, host.num_vertices());
  e.place(0, 0);
  EXPECT_THROW(dilation_xtree(guest, e, host), check_error);
}

TEST(Metrics, CongestionOnSharedLink) {
  // Star-ish guest: root with two children, all guests at the two
  // endpoints of one host edge.
  BinaryTree guest = BinaryTree::single();
  guest.add_child(0);
  guest.add_child(0);
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph host = b.build();
  Embedding e(3, 2);
  e.place(0, 0);
  e.place(1, 1);
  e.place(2, 1);
  const auto rep = congestion(guest, e, host);
  EXPECT_EQ(rep.max, 2);  // both guest edges cross the single link
  EXPECT_EQ(rep.used_edges, 1);
}

TEST(Metrics, CongestionIgnoresCoLocatedEdges) {
  BinaryTree guest = BinaryTree::single();
  guest.add_child(0);
  GraphBuilder b(2);
  b.add_edge(0, 1);
  Embedding e(2, 2);
  e.place(0, 0);
  e.place(1, 0);
  const auto rep = congestion(guest, e, b.build());
  EXPECT_EQ(rep.max, 0);
  EXPECT_EQ(rep.used_edges, 0);
}

TEST(Metrics, ValidateEmbeddingEnforcesLoad) {
  const BinaryTree guest = make_path_tree(4);
  Embedding e(4, 2);
  for (NodeId v = 0; v < 4; ++v) e.place(v, 0);
  EXPECT_EQ(validate_embedding(guest, e, 4), 4);
  EXPECT_THROW(validate_embedding(guest, e, 3), check_error);
}

}  // namespace
}  // namespace xt
