// Golden corpus replay: every checked-in reproducer / starter tree in
// tests/corpus/ must run the full certificate chain clean.  The corpus
// holds theorem-exact sizes and their +-1 neighbours, structurally
// extreme families, and any minimized reproducer the nightly fuzzer
// ever uploads — once a failure lands here it can never regress
// silently.  XT_CORPUS_DIR is injected by the build (tests/CMakeLists).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "btree/binary_tree.hpp"
#include "verify/fuzzer.hpp"

namespace xt {
namespace {

struct CorpusEntry {
  std::string name;
  std::string paren;
};

std::vector<CorpusEntry> load_corpus() {
  std::vector<CorpusEntry> out;
  for (const auto& entry :
       std::filesystem::directory_iterator(XT_CORPUS_DIR)) {
    if (entry.path().extension() != ".tree") continue;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      out.push_back({entry.path().filename().string(), line});
      break;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) {
              return a.name < b.name;
            });
  return out;
}

TEST(Corpus, HasTheStarterSet) {
  const auto corpus = load_corpus();
  EXPECT_GE(corpus.size(), 16u);
  for (const char* required :
       {"single.tree", "load-boundary-17.tree", "exact-48.tree",
        "exact-112-plus1.tree", "path-200.tree", "complete-h5.tree"}) {
    const bool found =
        std::any_of(corpus.begin(), corpus.end(),
                    [&](const CorpusEntry& e) { return e.name == required; });
    EXPECT_TRUE(found) << required << " missing from tests/corpus";
  }
}

TEST(Corpus, EveryTreeParsesAndValidates) {
  for (const CorpusEntry& entry : load_corpus()) {
    SCOPED_TRACE(entry.name);
    BinaryTree tree;
    ASSERT_NO_THROW(tree = BinaryTree::from_paren(entry.paren));
    ASSERT_NO_THROW(tree.validate());
    EXPECT_EQ(tree.to_paren(), entry.paren) << "paren round trip";
  }
}

TEST(Corpus, EveryTreeRunsTheChainClean) {
  const auto corpus = load_corpus();
  ASSERT_FALSE(corpus.empty());
  FuzzOptions opt;  // default chain: T1 + T2 + T3, load 16
  for (const CorpusEntry& entry : corpus) {
    SCOPED_TRACE(entry.name + "  (replay: xt_fuzz --replay '" + entry.paren +
                 "')");
    const BinaryTree tree = BinaryTree::from_paren(entry.paren);
    EXPECT_EQ(replay_tree(tree, opt), "");
  }
}

TEST(Corpus, SmallTreesAlsoClearTheUniversalLink) {
  // The T4 link is expensive (G_n construction), so the corpus-wide
  // test skips it; cover it on the small entries.
  FuzzOptions opt;
  opt.chain.include_t4 = true;
  for (const CorpusEntry& entry : load_corpus()) {
    const BinaryTree tree = BinaryTree::from_paren(entry.paren);
    if (tree.num_nodes() > 120) continue;
    SCOPED_TRACE(entry.name);
    EXPECT_EQ(replay_tree(tree, opt), "");
  }
}

}  // namespace
}  // namespace xt
