// Theorem 4: the degree-415 universal graph for binary trees with
// n = 2^t - 16 nodes.
#include <gtest/gtest.h>

#include "btree/generators.hpp"
#include "core/nset.hpp"
#include "core/universal_graph.hpp"
#include "graph/bfs.hpp"
#include "topology/xtree.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

TEST(Theorem4, SizesMatchTheExactForm) {
  for (std::int32_t r : {1, 2, 3}) {
    const UniversalGraph u = build_universal_graph(r);
    // n = 16*(2^{r+1}-1) = 2^{r+5} - 16.
    EXPECT_EQ(u.num_nodes, (std::int64_t{1} << (r + 5)) - 16);
    EXPECT_EQ(u.graph.num_vertices(), u.num_nodes);
  }
}

TEST(Theorem4, DegreeBoundedBy415) {
  for (std::int32_t r : {1, 2, 3, 4}) {
    const UniversalGraph u = build_universal_graph(r);
    EXPECT_LE(u.graph.max_degree(), 415u) << "r=" << r;
  }
  // The bound is essentially attained for tall enough hosts.
  const UniversalGraph u = build_universal_graph(5);
  EXPECT_LE(u.graph.max_degree(), 415u);
  EXPECT_GE(u.graph.max_degree(), 350u);
}

TEST(Theorem4, GraphIsConnected) {
  const UniversalGraph u = build_universal_graph(2);
  EXPECT_TRUE(is_connected(u.graph));
}

TEST(Theorem4, SlotCliquesPresent) {
  const UniversalGraph u = build_universal_graph(1);
  for (std::int32_t s = 0; s < 16; ++s) {
    for (std::int32_t t = s + 1; t < 16; ++t)
      EXPECT_TRUE(u.graph.has_edge(u.vertex_of(0, s), u.vertex_of(0, t)));
  }
}

class Theorem4Sweep : public ::testing::TestWithParam<std::string> {};

TEST_P(Theorem4Sweep, EveryTreeIsASpanningSubgraph) {
  Rng rng(60);
  for (std::int32_t r : {1, 2, 3}) {
    const UniversalGraph u = build_universal_graph(r);
    const BinaryTree guest = make_family_tree(GetParam(), u.num_nodes, rng);
    std::int64_t outside = -1;
    const Embedding emb = universal_spanning_embedding(guest, u, &outside);
    EXPECT_TRUE(emb.injective());
    EXPECT_TRUE(emb.complete());
    EXPECT_EQ(outside, 0) << GetParam() << " r=" << r
                          << ": a guest edge missed G_n — the embedding "
                             "violated condition (3') somewhere";
  }
}

INSTANTIATE_TEST_SUITE_P(Families, Theorem4Sweep,
                         ::testing::ValuesIn(tree_family_names()));

TEST(Theorem4, ManyRandomTreesSpan) {
  Rng rng(61);
  const UniversalGraph u = build_universal_graph(2);
  for (int trial = 0; trial < 10; ++trial) {
    const BinaryTree guest = make_random_tree(u.num_nodes, rng);
    std::int64_t outside = -1;
    universal_spanning_embedding(guest, u, &outside);
    EXPECT_EQ(outside, 0) << "trial " << trial;
  }
}

TEST(Theorem4Extension, SubgraphUniversalityForArbitraryN) {
  // The paper's future-work remark: universality for arbitrary n.
  const UniversalGraph u = build_universal_graph(2);  // 112 slots
  Rng rng(62);
  for (NodeId n : {1, 2, 17, 50, 100, 111, 112}) {
    const BinaryTree guest = make_random_tree(n, rng);
    std::int64_t outside = -1;
    const Embedding emb = universal_subgraph_embedding(guest, u, &outside);
    EXPECT_TRUE(emb.injective());
    EXPECT_TRUE(emb.complete());
    EXPECT_EQ(outside, 0) << "n=" << n;
  }
}

TEST(Theorem4Extension, SubgraphUniversalityAllFamilies) {
  const UniversalGraph u = build_universal_graph(2);
  Rng rng(63);
  for (const auto& family : tree_family_names()) {
    const BinaryTree guest = make_family_tree(family, 90, rng);
    std::int64_t outside = -1;
    universal_subgraph_embedding(guest, u, &outside);
    EXPECT_EQ(outside, 0) << family;
  }
}

TEST(Theorem4Extension, HeightForAnyN) {
  EXPECT_EQ(universal_height_for(1), 1);
  EXPECT_EQ(universal_height_for(48), 1);   // 2^6 - 16 = 48
  EXPECT_EQ(universal_height_for(49), 2);
  EXPECT_EQ(universal_height_for(112), 2);  // 2^7 - 16
  EXPECT_EQ(universal_height_for(113), 3);
}

TEST(Theorem4Extension, RejectsOversizedGuest) {
  const UniversalGraph u = build_universal_graph(1);
  const BinaryTree guest = make_path_tree(u.num_nodes + 1);
  EXPECT_THROW(universal_subgraph_embedding(guest, u, nullptr), check_error);
}

TEST(Theorem4, EdgesMatchTheNRelationExactly) {
  // Structural identity: (a,s)~(b,t) in G_n iff a = b (slot clique) or
  // b in N(a) or a in N(b).
  const std::int32_t r = 2;
  const UniversalGraph u = build_universal_graph(r);
  const XTree x(r);
  for (VertexId a = 0; a < x.num_vertices(); ++a) {
    for (VertexId b = 0; b < x.num_vertices(); ++b) {
      const bool expect_edge =
          (a == b) || in_n_set(x, a, b) || in_n_set(x, b, a);
      // Check one representative slot pair (the construction is
      // slot-complete; slot-completeness itself is checked below).
      const bool has = u.graph.has_edge(u.vertex_of(a, 3),
                                        u.vertex_of(b, 11));
      EXPECT_EQ(has, expect_edge)
          << x.label_of(a) << " vs " << x.label_of(b);
    }
  }
  // Slot completeness between one N-related pair.
  const VertexId va = x.vertex_of_label("0");
  const VertexId vb = x.vertex_of_label("00");
  for (std::int32_t s = 0; s < 16; ++s) {
    for (std::int32_t t = 0; t < 16; ++t)
      EXPECT_TRUE(u.graph.has_edge(u.vertex_of(va, s), u.vertex_of(vb, t)));
  }
}

TEST(Theorem4, DegreeFormulaDecomposition) {
  // At a deep interior vertex: 15 siblings + 16 * |N(a) u N^{-1}(a)|.
  const std::int32_t r = 6;
  const UniversalGraph u = build_universal_graph(r);
  const XTree x(r);
  for (VertexId a : {x.vertex_of_label("0101"), x.vertex_of_label("10010")}) {
    const auto sym = n_set_symmetric(x, a);
    EXPECT_EQ(u.graph.degree(u.vertex_of(a, 0)), 15 + 16 * sym.size());
  }
}

TEST(Theorem4, RejectsWrongGuestSize) {
  const UniversalGraph u = build_universal_graph(1);
  const BinaryTree guest = make_path_tree(10);
  EXPECT_THROW(universal_spanning_embedding(guest, u, nullptr), check_error);
}

}  // namespace
}  // namespace xt
