// Property tests for the Lemma 1 / Lemma 2 separation engine — the
// machinery underlying every balance bound in the paper.
#include <gtest/gtest.h>

#include <algorithm>

#include "btree/generators.hpp"
#include "separator/piece.hpp"
#include "separator/splitter.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

// Piece covering a whole tree, with designated nodes faked at the
// given guest nodes (as if their neighbours were embedded elsewhere).
Piece whole_tree_piece(const BinaryTree& t, NodeId d0, NodeId d1) {
  Piece p;
  p.nodes.resize(static_cast<std::size_t>(t.num_nodes()));
  for (NodeId v = 0; v < t.num_nodes(); ++v)
    p.nodes[static_cast<std::size_t>(v)] = v;
  if (d0 != kInvalidNode) p.add_designated(d0);
  if (d1 != kInvalidNode) p.add_designated(d1);
  return p;
}

TEST(PieceView, RootedStructure) {
  const BinaryTree t = make_complete_tree(3);
  const Piece p = whole_tree_piece(t, 0, kInvalidNode);
  const PieceView view(t, p);
  EXPECT_EQ(view.size(), 15);
  EXPECT_EQ(view.global_of(view.root()), 0);
  EXPECT_EQ(view.subtree_size(view.root()), 15);
  EXPECT_EQ(view.parent(view.root()), -1);
  EXPECT_EQ(view.preorder().size(), 15u);
}

TEST(PieceView, LcaAndMedian) {
  //      0
  //     / \.
  //    1   2
  //   / \.
  //  3   4
  BinaryTree t = BinaryTree::single();
  const NodeId n1 = t.add_child(0);
  const NodeId n2 = t.add_child(0);
  const NodeId n3 = t.add_child(n1);
  const NodeId n4 = t.add_child(n1);
  const Piece p = whole_tree_piece(t, 0, kInvalidNode);
  const PieceView view(t, p);
  const auto l = [&](NodeId g) { return view.local_of(g); };
  EXPECT_EQ(view.lca(l(n3), l(n4)), l(n1));
  EXPECT_EQ(view.lca(l(n3), l(n2)), l(0));
  EXPECT_EQ(view.median(l(n3), l(n4), l(n2)), l(n1));
  EXPECT_EQ(view.median(l(n3), l(n4), l(n1)), l(n1));
}

TEST(PieceView, RejectsDisconnectedPiece) {
  const BinaryTree t = make_complete_tree(2);
  Piece p;
  p.nodes = {1, 2};  // the two children of the root, not adjacent
  p.add_designated(1);
  EXPECT_THROW(PieceView(t, p), check_error);
}

TEST(CollectPieces, PartitionsComplement) {
  const BinaryTree t = make_complete_tree(3);
  std::vector<char> embedded(15, 0);
  embedded[0] = 1;  // root embedded
  const auto pieces = collect_pieces(t, embedded);
  ASSERT_EQ(pieces.size(), 2u);
  NodeId total = 0;
  for (const auto& p : pieces) {
    total += p.size();
    EXPECT_EQ(p.num_designated(), 1);
    validate_piece(t, embedded, p);
  }
  EXPECT_EQ(total, 14);
}

TEST(CollectPieces, TwoDesignatedInterval) {
  const BinaryTree t = make_path_tree(10);
  std::vector<char> embedded(10, 0);
  embedded[0] = 1;
  embedded[9] = 1;
  const auto pieces = collect_pieces(t, embedded);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].num_designated(), 2);  // an "interval"
  validate_piece(t, embedded, pieces[0]);
}

TEST(ExtractWholePiece, EmbedsDesignatedAndRepieces) {
  const BinaryTree t = make_complete_tree(3);
  const Piece p = whole_tree_piece(t, 0, 14);
  const SplitResult res = extract_whole_piece(t, p);
  EXPECT_EQ(res.extract_total, 15);
  EXPECT_EQ(res.remain_total, 0);
  EXPECT_EQ(res.embed_extract.size(), 2u);
  EXPECT_TRUE(res.embed_remain.empty());
  validate_split(t, p, res);
}

// --- parameterised property sweep over families, sizes, targets ------------

struct SplitCase {
  std::string family;
  NodeId n;
  std::uint64_t seed;
};

class SplitProperty : public ::testing::TestWithParam<SplitCase> {};

TEST_P(SplitProperty, Lemma2BalanceBoundaryCollinearity) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  const BinaryTree t = make_family_tree(param.family, param.n, rng);
  // Sweep designated choices and targets.
  for (int variant = 0; variant < 8; ++variant) {
    const NodeId d0 = static_cast<NodeId>(rng.below(t.num_nodes()));
    NodeId d1 = static_cast<NodeId>(rng.below(t.num_nodes()));
    if (variant % 3 == 0) d1 = d0;  // single designated node
    const Piece piece = whole_tree_piece(t, d0, d1 == d0 ? kInvalidNode : d1);

    for (NodeId delta :
         {NodeId{1}, NodeId{2}, static_cast<NodeId>(param.n / 7 + 1),
          static_cast<NodeId>(param.n / 3 + 1),
          static_cast<NodeId>(param.n / 2)}) {
      if (delta < 1 || delta >= t.num_nodes()) continue;
      const SplitResult res =
          split_piece(t, piece, delta, SplitQuality::kLemma2);
      validate_split(t, piece, res);
      // Balance: the paper's Lemma 2 bound applies when the
      // precondition |P| > 4*delta/3 holds and a real split happened.
      if (3 * static_cast<std::int64_t>(t.num_nodes()) > 4 * delta &&
          res.remain_total > 0) {
        EXPECT_LE(std::abs(res.extract_total - delta),
                  std::max<NodeId>(lemma2_tolerance(delta), 1))
            << param.family << " n=" << param.n << " delta=" << delta;
      }
      // Boundary budgets: |S_i| <= 4 plus at most the recorded median
      // promotions.
      EXPECT_LE(static_cast<int>(res.embed_extract.size()),
                4 + res.median_fixes);
      EXPECT_LE(static_cast<int>(res.embed_remain.size()),
                4 + res.median_fixes);
      EXPECT_LE(res.num_cuts, 2);
    }
  }
}

TEST_P(SplitProperty, Lemma1SingleCut) {
  const auto& param = GetParam();
  Rng rng(param.seed ^ 0xabcdef);
  const BinaryTree t = make_family_tree(param.family, param.n, rng);
  const NodeId d0 = static_cast<NodeId>(rng.below(t.num_nodes()));
  const Piece piece = whole_tree_piece(t, d0, kInvalidNode);
  for (NodeId delta : {static_cast<NodeId>(param.n / 4 + 1),
                       static_cast<NodeId>(param.n / 2)}) {
    if (delta < 1 || delta >= t.num_nodes()) continue;
    const SplitResult res = split_piece(t, piece, delta, SplitQuality::kLemma1);
    validate_split(t, piece, res);
    EXPECT_LE(res.num_cuts, 1);
    if (3 * static_cast<std::int64_t>(t.num_nodes()) > 4 * delta &&
        res.remain_total > 0) {
      EXPECT_LE(std::abs(res.extract_total - delta), lemma1_tolerance(delta))
          << param.family << " n=" << param.n << " delta=" << delta;
    }
  }
}

std::vector<SplitCase> split_cases() {
  std::vector<SplitCase> cases;
  std::uint64_t seed = 1;
  for (const auto& family : tree_family_names()) {
    for (NodeId n : {8, 31, 100, 500}) {
      cases.push_back({family, n, seed++});
    }
  }
  return cases;
}

std::string split_case_name(const ::testing::TestParamInfo<SplitCase>& info) {
  return info.param.family + "_n" + std::to_string(info.param.n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplitProperty,
                         ::testing::ValuesIn(split_cases()), split_case_name);

TEST_P(SplitProperty, Find2MatchesLemma2Grade) {
  // The literal find2 keeps every boundary at <= 4 and the balance
  // within the Lemma 2 tolerance on large random instances.
  const auto& param = GetParam();
  Rng rng(param.seed ^ 0x2222);
  const BinaryTree t = make_family_tree(param.family, param.n, rng);
  for (int variant = 0; variant < 6; ++variant) {
    const NodeId d0 = static_cast<NodeId>(rng.below(t.num_nodes()));
    NodeId d1 = static_cast<NodeId>(rng.below(t.num_nodes()));
    if (variant % 2 == 0) d1 = d0;
    const Piece piece = whole_tree_piece(t, d0, d1 == d0 ? kInvalidNode : d1);
    for (NodeId delta :
         {NodeId{1}, static_cast<NodeId>(param.n / 5 + 1),
          static_cast<NodeId>(param.n / 2),
          static_cast<NodeId>(param.n - 1)}) {
      if (delta < 1 || delta >= t.num_nodes()) continue;
      const SplitResult res = split_piece_find2(t, piece, delta);
      validate_split(t, piece, res);
      // |S_i| <= 4 except when a collinearity ("node y") promotion is
      // forced — a detail the extended abstract omits; the promotions
      // are counted and stay rare (see bench_lemmas / EXPERIMENTS.md).
      EXPECT_LE(static_cast<int>(res.embed_extract.size()),
                4 + res.median_fixes)
          << param.family << " delta=" << delta;
      EXPECT_LE(static_cast<int>(res.embed_remain.size()),
                4 + res.median_fixes)
          << param.family << " delta=" << delta;
      EXPECT_LE(res.median_fixes, 2) << param.family << " delta=" << delta;
      if (res.remain_total > 0 && res.extract_total > 0) {
        EXPECT_LE(std::abs(res.extract_total - delta),
                  std::max<NodeId>(lemma2_tolerance(delta), 1))
            << param.family << " n=" << param.n << " delta=" << delta
            << " extract=" << res.extract_total;
      }
    }
  }
}

// Every SplitResult field must match between the value-returning API
// and the scratch-reusing API, with one scratch threaded across all
// calls the way the embedder threads it.
void expect_same_split(const SplitResult& want, const SplitResult& got,
                       const std::string& where) {
  EXPECT_EQ(want.embed_extract, got.embed_extract) << where;
  EXPECT_EQ(want.embed_remain, got.embed_remain) << where;
  EXPECT_EQ(want.extract_total, got.extract_total) << where;
  EXPECT_EQ(want.remain_total, got.remain_total) << where;
  EXPECT_EQ(want.num_cuts, got.num_cuts) << where;
  EXPECT_EQ(want.median_fixes, got.median_fixes) << where;
  ASSERT_EQ(want.pieces_extract.size(), got.pieces_extract.size()) << where;
  ASSERT_EQ(want.pieces_remain.size(), got.pieces_remain.size()) << where;
  for (std::size_t i = 0; i < want.pieces_extract.size(); ++i) {
    EXPECT_EQ(want.pieces_extract[i].nodes, got.pieces_extract[i].nodes)
        << where << " extract piece " << i;
    EXPECT_EQ(want.pieces_extract[i].designated,
              got.pieces_extract[i].designated)
        << where << " extract piece " << i;
  }
  for (std::size_t i = 0; i < want.pieces_remain.size(); ++i) {
    EXPECT_EQ(want.pieces_remain[i].nodes, got.pieces_remain[i].nodes)
        << where << " remain piece " << i;
    EXPECT_EQ(want.pieces_remain[i].designated,
              got.pieces_remain[i].designated)
        << where << " remain piece " << i;
  }
}

TEST_P(SplitProperty, ScratchApiMatchesValueApi) {
  const auto& param = GetParam();
  Rng rng(param.seed ^ 0x5ca7c4);
  const BinaryTree t = make_family_tree(param.family, param.n, rng);
  SplitScratch scratch;  // reused across every call, like the embedder
  SplitResult out;
  for (int variant = 0; variant < 6; ++variant) {
    const NodeId d0 = static_cast<NodeId>(rng.below(t.num_nodes()));
    NodeId d1 = static_cast<NodeId>(rng.below(t.num_nodes()));
    if (variant % 2 == 0) d1 = d0;
    const Piece piece = whole_tree_piece(t, d0, d1 == d0 ? kInvalidNode : d1);
    const std::string tag = param.family + " variant=" + std::to_string(variant);

    for (NodeId delta :
         {NodeId{1}, static_cast<NodeId>(param.n / 5 + 1),
          static_cast<NodeId>(param.n / 2),
          static_cast<NodeId>(param.n - 1)}) {
      if (delta < 1 || delta >= t.num_nodes()) continue;
      const std::string where = tag + " delta=" + std::to_string(delta);

      const SplitResult w2 = split_piece(t, piece, delta, SplitQuality::kLemma2);
      split_piece(t, piece, delta, SplitQuality::kLemma2, scratch, out);
      expect_same_split(w2, out, where + " lemma2");

      const SplitResult wf = split_piece_find2(t, piece, delta);
      split_piece_find2(t, piece, delta, scratch, out);
      expect_same_split(wf, out, where + " find2");

      const SplitResult w1 = split_piece(t, piece, delta, SplitQuality::kLemma1);
      split_piece(t, piece, delta, SplitQuality::kLemma1, scratch, out);
      expect_same_split(w1, out, where + " lemma1");
      // Recycle like the embedder does, so later calls hand out reused
      // node buffers — the path under test.
      scratch.recycle(std::move(out));
    }

    const SplitResult we = extract_whole_piece(t, piece);
    extract_whole_piece(t, piece, scratch, out);
    expect_same_split(we, out, tag + " extract_whole");
    scratch.recycle(std::move(out));
  }
}

TEST(PieceView, RebuildMatchesFreshConstruction) {
  // One view re-rooted across many pieces must agree field-by-field
  // with a freshly constructed view of each piece.
  Rng rng(9090);
  PieceView reused;
  for (int round = 0; round < 20; ++round) {
    const NodeId n = static_cast<NodeId>(20 + rng.below(200));
    const BinaryTree t = make_random_tree(n, rng);
    const NodeId d0 = static_cast<NodeId>(rng.below(n));
    NodeId d1 = static_cast<NodeId>(rng.below(n));
    if (round % 3 == 0) d1 = d0;
    const Piece piece = whole_tree_piece(t, d0, d1 == d0 ? kInvalidNode : d1);
    reused.rebuild(t, piece);
    const PieceView fresh(t, piece);
    ASSERT_EQ(reused.size(), fresh.size());
    EXPECT_EQ(reused.root(), fresh.root());
    EXPECT_EQ(reused.preorder(), fresh.preorder());
    for (std::int32_t v = 0; v < reused.size(); ++v) {
      EXPECT_EQ(reused.parent(v), fresh.parent(v));
      EXPECT_EQ(reused.depth(v), fresh.depth(v));
      EXPECT_EQ(reused.subtree_size(v), fresh.subtree_size(v));
      const auto rc = reused.children(v);
      const auto fc = fresh.children(v);
      ASSERT_EQ(rc.size(), fc.size());
      EXPECT_TRUE(std::equal(rc.begin(), rc.end(), fc.begin()));
      EXPECT_EQ(reused.global_of(v), fresh.global_of(v));
    }
    for (NodeId g = 0; g < n; ++g)
      EXPECT_EQ(reused.local_of(g), fresh.local_of(g));
    // Stale globals from an earlier (larger) round must miss.
    EXPECT_EQ(reused.local_of(n - 1), fresh.local_of(n - 1));
  }
}

TEST(SplitPiece, RejectsBadTargets) {
  const BinaryTree t = make_complete_tree(2);
  const Piece piece = whole_tree_piece(t, 0, kInvalidNode);
  EXPECT_THROW(split_piece(t, piece, 0, SplitQuality::kLemma2), check_error);
  EXPECT_THROW(split_piece(t, piece, t.num_nodes(), SplitQuality::kLemma2),
               check_error);
}

TEST(SplitPiece, TinyPieces) {
  // Exhaustive small cases: every path length 2..6, every target.
  for (NodeId n = 2; n <= 6; ++n) {
    const BinaryTree t = make_path_tree(n);
    const Piece piece = whole_tree_piece(t, 0, n - 1);
    for (NodeId delta = 1; delta < n; ++delta) {
      const SplitResult res =
          split_piece(t, piece, delta, SplitQuality::kLemma2);
      validate_split(t, piece, res);
    }
  }
}

}  // namespace
}  // namespace xt
