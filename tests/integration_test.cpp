// End-to-end flows across modules: Theorem 1 -> Theorem 2 lift,
// Theorem 1 -> Lemma 3 -> Theorem 3, embeddings driven through the
// network simulator, and cross-metric consistency.
#include <gtest/gtest.h>

#include "baseline/naive_xtree.hpp"
#include "btree/generators.hpp"
#include "core/hypercube_embedding.hpp"
#include "core/injective_lift.hpp"
#include "core/nset.hpp"
#include "core/xtree_embedder.hpp"
#include "embedding/metrics.hpp"
#include "sim/workloads.hpp"
#include "topology/hypercube.hpp"
#include "topology/xtree.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

NodeId exact_n(std::int32_t r) {
  return static_cast<NodeId>(16 * ((std::int64_t{2} << r) - 1));
}

TEST(Integration, FullTheoremChainOnOneTree) {
  Rng rng(90);
  const std::int32_t r = 3;
  const BinaryTree guest = make_random_tree(exact_n(r), rng);

  // Theorem 1.
  const auto t1 = XTreeEmbedder::embed(guest);
  const XTree xtree(t1.stats.height);
  validate_embedding(guest, t1.embedding, 16);
  const auto d1 = dilation_xtree(guest, t1.embedding, xtree);

  // Theorem 2 on top of the same run.
  const auto t2 = lift_injective(guest, t1.embedding, xtree);
  const XTree lifted(t2.host_height);
  const auto d2 = dilation_xtree(guest, t2.embedding, lifted);
  EXPECT_LE(d2.max, d1.max + 8);  // 4 down + base + 4 up

  // Theorem 3 via Lemma 3 (a fresh exact-form size).
  const BinaryTree cube_guest =
      make_random_tree(static_cast<NodeId>(16 * ((std::int64_t{1} << r) - 1)),
                       rng);
  const auto t3 = embed_hypercube_load16(cube_guest);
  const Hypercube q(t3.dimension);
  const auto d3 = dilation_hypercube(cube_guest, t3.embedding, q);
  EXPECT_LE(d3.max, 4);
}

TEST(Integration, Condition3PrimeHoldsOnEmbeddedEdges) {
  // The dilation discipline (3'): for every guest edge, the deeper
  // image lies in N(shallower image).  This is what Theorem 4 needs.
  Rng rng(91);
  const BinaryTree guest = make_random_tree(exact_n(3), rng);
  const auto t1 = XTreeEmbedder::embed(guest);
  const XTree xtree(t1.stats.height);
  std::int64_t violations = 0;
  for (const auto& [u, v] : guest.edges()) {
    VertexId a = t1.embedding.host_of(u);
    VertexId b = t1.embedding.host_of(v);
    if (xtree.level_of(a) > xtree.level_of(b)) std::swap(a, b);
    if (!in_n_set(xtree, a, b)) ++violations;
  }
  EXPECT_EQ(violations, 0);
}

TEST(Integration, SimulatedSlowdownTracksDilationTimesLoad) {
  // The whole point of Theorem 1: constant dilation + constant load
  // => constant-factor simulation.  The simulator must agree: the
  // measured slowdown stays bounded while n grows.
  Rng rng(92);
  double worst = 0;
  for (std::int32_t r : {2, 3, 4}) {
    const BinaryTree guest = make_random_tree(exact_n(r), rng);
    const auto t1 = XTreeEmbedder::embed(guest);
    const XTree xtree(t1.stats.height);
    const auto rep = measure_slowdown(xtree.to_graph(), guest, t1.embedding,
                                      Workload::kReduction);
    worst = std::max(worst, rep.slowdown);
  }
  // Load 16 serialisation plus dilation 3 routing plus congestion:
  // generous constant bound, but a constant.
  EXPECT_LT(worst, 200.0);
}

TEST(Integration, Theorem1BeatsBaselinesOnDilation) {
  Rng rng(93);
  const std::int32_t r = 4;
  const BinaryTree guest = make_random_tree(exact_n(r), rng);
  const auto t1 = XTreeEmbedder::embed(guest);
  const XTree xtree(t1.stats.height);
  const auto paper = dilation_xtree(guest, t1.embedding, xtree);
  for (BaselineKind kind :
       {BaselineKind::kBfsOrder, BaselineKind::kRandom}) {
    Embedding base = embed_baseline(guest, xtree, 16, kind, rng);
    const auto d = dilation_xtree(guest, base, xtree);
    EXPECT_LT(paper.max, d.max) << baseline_name(kind);
  }
}

TEST(Integration, RepeatedSizesAcrossSeeds) {
  // Stability: many random trees of one exact-form size, all embed
  // with load 16 and small dilation.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    const BinaryTree guest = make_random_tree(exact_n(2), rng);
    const auto t1 = XTreeEmbedder::embed(guest);
    validate_embedding(guest, t1.embedding, 16);
    const XTree xtree(t1.stats.height);
    EXPECT_LE(dilation_xtree(guest, t1.embedding, xtree).max, 3)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace xt
