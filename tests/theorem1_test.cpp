// Theorem 1: every binary tree with n = 16*(2^{r+1}-1) nodes embeds
// into X(r) with load factor 16, dilation 3 and optimal expansion.
//
// The extended abstract omits parts of the construction; these tests
// pin down what the implementation guarantees unconditionally (valid
// complete embedding, load <= 16) and measure the dilation against
// the paper's bound (see EXPERIMENTS.md for the measured-vs-claimed
// discussion).
#include <gtest/gtest.h>

#include "btree/generators.hpp"
#include "core/xtree_embedder.hpp"
#include "embedding/metrics.hpp"
#include "topology/xtree.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

NodeId exact_n(std::int32_t r) {
  return static_cast<NodeId>(16 * ((std::int64_t{2} << r) - 1));
}

TEST(OptimalHeight, MatchesCapacityFormula) {
  EXPECT_EQ(XTreeEmbedder::optimal_height(1, 16), 0);
  EXPECT_EQ(XTreeEmbedder::optimal_height(16, 16), 0);
  EXPECT_EQ(XTreeEmbedder::optimal_height(17, 16), 1);
  EXPECT_EQ(XTreeEmbedder::optimal_height(48, 16), 1);
  EXPECT_EQ(XTreeEmbedder::optimal_height(49, 16), 2);
  EXPECT_EQ(XTreeEmbedder::optimal_height(exact_n(5), 16), 5);
  EXPECT_EQ(XTreeEmbedder::optimal_height(exact_n(5) + 1, 16), 6);
}

TEST(Theorem1, TinyTreesFitInRoot) {
  Rng rng(3);
  for (NodeId n : {1, 2, 15, 16}) {
    const BinaryTree guest = make_random_tree(n, rng);
    const auto res = XTreeEmbedder::embed(guest);
    EXPECT_EQ(res.stats.height, 0);
    validate_embedding(guest, res.embedding, 16);
  }
}

struct T1Case {
  std::string family;
  std::int32_t r;
  std::uint64_t seed;
};

class Theorem1Sweep : public ::testing::TestWithParam<T1Case> {};

TEST_P(Theorem1Sweep, ExactFormLoad16CompleteLowDilation) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  const BinaryTree guest = make_family_tree(param.family, exact_n(param.r), rng);

  // Both balancing-cut engines must meet the theorem: the literal
  // find2 (default) and the generic carve-and-refine splitter.
  for (const bool use_find2 : {true, false}) {
    XTreeEmbedder::Options opt;
    opt.audit_rounds = true;
    opt.paper_find2 = use_find2;
    const auto res = XTreeEmbedder::embed(guest, opt);
    EXPECT_EQ(res.stats.height, param.r);

    // Unconditional contract: complete, load exactly 16 everywhere
    // (exact-form input + optimal host), i.e. optimal expansion.
    validate_embedding(guest, res.embedding, 16);
    const XTree host(param.r);
    const auto loads = res.embedding.loads();
    for (NodeId l : loads) EXPECT_EQ(l, 16);

    // Dilation: the paper claims 3; the reproduction tracks the
    // measured value and requires it to stay a small constant
    // independent of n.
    const auto rep = dilation_xtree(guest, res.embedding, host);
    EXPECT_LE(rep.max, 3) << "family=" << param.family << " r=" << param.r
                          << " find2=" << use_find2
                          << " repairs=" << res.stats.repair_placements;
  }
}

std::vector<T1Case> t1_cases() {
  std::vector<T1Case> cases;
  std::uint64_t seed = 100;
  for (const auto& family : tree_family_names()) {
    for (std::int32_t r : {1, 2, 3, 4, 5}) {
      cases.push_back({family, r, seed++});
    }
  }
  return cases;
}

std::string t1_name(const ::testing::TestParamInfo<T1Case>& info) {
  return info.param.family + "_r" + std::to_string(info.param.r);
}

INSTANTIATE_TEST_SUITE_P(Families, Theorem1Sweep,
                         ::testing::ValuesIn(t1_cases()), t1_name);

TEST(Theorem1, NonExactSizesStillEmbedWithinLoad) {
  Rng rng(77);
  for (NodeId n : {17, 100, 333, 1000}) {
    const BinaryTree guest = make_random_tree(n, rng);
    const auto res = XTreeEmbedder::embed(guest);
    validate_embedding(guest, res.embedding, 16);
    const XTree host(res.stats.height);
    const auto rep = dilation_xtree(guest, res.embedding, host);
    EXPECT_LE(rep.max, 6) << "n=" << n;  // padded inputs may pay repair
  }
}

TEST(Theorem1, ForcedTallerHostStillValid) {
  Rng rng(8);
  const BinaryTree guest = make_random_tree(200, rng);
  XTreeEmbedder::Options opt;
  opt.height = 6;  // far more capacity than needed
  const auto res = XTreeEmbedder::embed(guest, opt);
  validate_embedding(guest, res.embedding, 16);
}

TEST(Theorem1, AlternativeLoadCaps) {
  // Ablation: the machinery is parameterised in the load; the theorem
  // constant 16 is what the paper proves, but the algorithm must stay
  // structurally sound for other caps.
  Rng rng(21);
  for (NodeId load : {8, 16, 32}) {
    const NodeId n = static_cast<NodeId>(load * ((std::int64_t{2} << 3) - 1));
    const BinaryTree guest = make_random_tree(n, rng);
    XTreeEmbedder::Options opt;
    opt.load = load;
    const auto res = XTreeEmbedder::embed(guest, opt);
    validate_embedding(guest, res.embedding, load);
  }
}

TEST(Theorem1, StatsAreCoherent) {
  Rng rng(55);
  const BinaryTree guest = make_random_tree(exact_n(4), rng);
  XTreeEmbedder::Options opt;
  opt.record_trace = true;
  const auto res = XTreeEmbedder::embed(guest, opt);
  EXPECT_EQ(res.stats.imbalance_trace.size(), 4u);  // rounds 1..r
  EXPECT_GT(res.stats.split_calls, 0);
  EXPECT_GE(res.stats.max_observed_embed_distance, 1);
}

TEST(Theorem1, AblationsStillProduceValidEmbeddings) {
  // The ablation switches degrade dilation, never validity.
  Rng rng(31);
  const BinaryTree guest = make_random_tree(exact_n(4), rng);
  for (int which = 0; which < 3; ++which) {
    XTreeEmbedder::Options opt;
    if (which == 0) opt.lemma1_only = true;
    if (which == 1) opt.disable_level_fill = true;
    if (which == 2) opt.disable_adjust = true;
    const auto res = XTreeEmbedder::embed(guest, opt);
    validate_embedding(guest, res.embedding, 16);
  }
}

TEST(Theorem1, DisablingAdjustHurtsHardFamilies) {
  // ADJUST is the mechanism that exploits the horizontal edges; for a
  // path guest, removing it must visibly increase repair pressure.
  const BinaryTree guest = make_path_tree(exact_n(5));
  XTreeEmbedder::Options off;
  off.disable_adjust = true;
  const auto without = XTreeEmbedder::embed(guest, off);
  const auto with = XTreeEmbedder::embed(guest);
  EXPECT_GT(without.stats.repair_placements + without.stats.peel_fills,
            with.stats.repair_placements);
  const XTree host(with.stats.height);
  const auto dil_with = dilation_xtree(guest, with.embedding, host);
  const auto dil_without = dilation_xtree(guest, without.embedding, host);
  EXPECT_LE(dil_with.max, dil_without.max);
}

TEST(Theorem1, RejectsImpossibleCapacity) {
  const BinaryTree guest = make_path_tree(100);
  XTreeEmbedder::Options opt;
  opt.height = 1;  // capacity 48 < 100
  EXPECT_THROW(XTreeEmbedder::embed(guest, opt), check_error);
  opt.height = 0;
  opt.load = 4;
  EXPECT_THROW(XTreeEmbedder::embed(guest, opt), check_error);
}

TEST(Theorem1, DistanceOracleIsThreadSafe) {
  // The dilation metric and the parallel benches query XTree::distance
  // concurrently; the oracle is stateless per call.
  const XTree x(10);
  Rng seed_rng(7);
  std::vector<std::pair<VertexId, VertexId>> q;
  std::vector<std::int32_t> expected;
  for (int i = 0; i < 64; ++i) {
    q.emplace_back(static_cast<VertexId>(seed_rng.below(x.num_vertices())),
                   static_cast<VertexId>(seed_rng.below(x.num_vertices())));
    expected.push_back(x.distance(q.back().first, q.back().second));
  }
  std::vector<std::int32_t> got(q.size(), -1);
  parallel_for(0, static_cast<std::int64_t>(q.size()), [&](std::int64_t i) {
    got[static_cast<std::size_t>(i)] =
        x.distance(q[static_cast<std::size_t>(i)].first,
                   q[static_cast<std::size_t>(i)].second);
  }, 8);
  for (std::size_t i = 0; i < q.size(); ++i)
    EXPECT_EQ(got[i], expected[i]);
}

TEST(Theorem1, LargeScaleMillionNodeClass) {
  // r = 12: 131k nodes — the asymptotics in practice.  Discipline
  // checking off (it calls the distance oracle per placement); the
  // final metrics are exact regardless.
  Rng rng(2);
  const BinaryTree guest = make_random_tree(exact_n(12), rng);
  XTreeEmbedder::Options opt;
  opt.check_discipline = false;
  const auto res = XTreeEmbedder::embed(guest, opt);
  validate_embedding(guest, res.embedding, 16);
  const XTree host(12);
  EXPECT_LE(dilation_xtree(guest, res.embedding, host).max, 3);
  EXPECT_EQ(res.stats.repair_placements, 0);
}

TEST(Theorem1, DeterministicForSameInput) {
  Rng rng1(123);
  Rng rng2(123);
  const BinaryTree g1 = make_random_tree(exact_n(3), rng1);
  const BinaryTree g2 = make_random_tree(exact_n(3), rng2);
  const auto r1 = XTreeEmbedder::embed(g1);
  const auto r2 = XTreeEmbedder::embed(g2);
  for (NodeId v = 0; v < g1.num_nodes(); ++v)
    EXPECT_EQ(r1.embedding.host_of(v), r2.embedding.host_of(v));
}

}  // namespace
}  // namespace xt
