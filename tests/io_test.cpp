// Serialization and certificate round trips, plus the structured
// parse-error surface (fed by the tests/corpus files via
// XT_CORPUS_DIR).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "btree/generators.hpp"
#include "core/xtree_embedder.hpp"
#include "io/certificate.hpp"
#include "io/serialize.hpp"
#include "io/svg.hpp"
#include "topology/xtree.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

TEST(Serialize, TreeRoundTrip) {
  Rng rng(401);
  for (NodeId n : {1, 2, 17, 300}) {
    const BinaryTree t = make_random_tree(n, rng);
    std::stringstream ss;
    save_tree(ss, t);
    const BinaryTree back = load_tree(ss);
    EXPECT_EQ(back.to_paren(), t.to_paren());
  }
}

TEST(Serialize, EmbeddingRoundTrip) {
  Rng rng(402);
  const BinaryTree guest = make_random_tree(240, rng);
  const auto res = XTreeEmbedder::embed(guest);
  std::stringstream ss;
  save_embedding(ss, res.embedding);
  const Embedding back = load_embedding(ss);
  EXPECT_EQ(back.num_guest_nodes(), res.embedding.num_guest_nodes());
  EXPECT_EQ(back.num_host_vertices(), res.embedding.num_host_vertices());
  for (NodeId v = 0; v < guest.num_nodes(); ++v)
    EXPECT_EQ(back.host_of(v), res.embedding.host_of(v));
}

TEST(Serialize, RejectsMalformedStreams) {
  {
    std::stringstream ss("not-an-embedding v9 3 3\n");
    EXPECT_THROW(load_embedding(ss), check_error);
  }
  {
    std::stringstream ss("xtreesim-embedding v1 3 2\n0 0\n1 1\n");  // truncated
    EXPECT_THROW(load_embedding(ss), check_error);
  }
  {
    std::stringstream ss("xtreesim-embedding v1 2 2\n0 0\n0 1\n");  // dup guest
    EXPECT_THROW(load_embedding(ss), check_error);
  }
  {
    std::stringstream ss("xtreesim-embedding v1 2 2\n0 0\n1 7\n");  // bad host
    EXPECT_THROW(load_embedding(ss), check_error);
  }
  {
    std::stringstream empty("");
    EXPECT_THROW(load_tree(empty), check_error);
  }
}

TEST(Serialize, RejectsIncompleteSave) {
  Embedding emb(3, 2);
  emb.place(0, 0);
  std::stringstream ss;
  EXPECT_THROW(save_embedding(ss, emb), check_error);
}

TEST(Serialize, FileRoundTrip) {
  Rng rng(403);
  const BinaryTree t = make_random_tree(50, rng);
  const std::string path = "/tmp/xtreesim_io_test_tree.txt";
  save_tree_file(path, t);
  EXPECT_EQ(load_tree_file(path).to_paren(), t.to_paren());
}

TEST(TryParseTree, AcceptsEveryCorpusTree) {
  std::size_t parsed_count = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(XT_CORPUS_DIR)) {
    if (entry.path().extension() != ".tree") continue;
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      const TreeParseResult r = try_parse_tree(line);
      ASSERT_TRUE(r.ok())
          << entry.path() << ": " << tree_parse_status_name(r.status)
          << " at offset " << r.offset << ": " << r.message;
      // Agrees with the throwing loader on the same file.
      std::ifstream again(entry.path());
      EXPECT_EQ(r.tree.to_paren(), load_tree(again).to_paren());
      ++parsed_count;
      break;
    }
  }
  EXPECT_GE(parsed_count, 16u);
}

TEST(TryParseTree, ReportsStatusAndOffset) {
  const auto expect_fail = [](std::string_view text, TreeParseStatus status,
                              std::size_t offset, NodeId max_nodes = 0) {
    const TreeParseResult r = try_parse_tree(text, max_nodes);
    EXPECT_FALSE(r.ok()) << text;
    EXPECT_EQ(r.status, status)
        << text << " -> " << tree_parse_status_name(r.status);
    EXPECT_EQ(r.offset, offset) << text;
    EXPECT_FALSE(r.message.empty()) << text;
  };
  expect_fail("", TreeParseStatus::kEmptyInput, 0);
  expect_fail("   \t  ", TreeParseStatus::kEmptyInput, 6);
  expect_fail("(x.)", TreeParseStatus::kBadCharacter, 1);
  expect_fail("(..))", TreeParseStatus::kUnbalanced, 4);
  expect_fail(".", TreeParseStatus::kUnbalanced, 0);
  expect_fail("((..)", TreeParseStatus::kTruncated, 5);
  expect_fail("(..)(..)", TreeParseStatus::kMultipleRoots, 4);
  expect_fail("(...)", TreeParseStatus::kTooManyChildren, 3);
  expect_fail("((..)(..)(..))", TreeParseStatus::kTooManyChildren, 9);
  expect_fail("((..)(..))", TreeParseStatus::kTooLarge, 5,
              /*max_nodes=*/2);
}

TEST(TryParseTree, TrimsSurroundingWhitespace) {
  const TreeParseResult r = try_parse_tree("  ((..).)\t \n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.tree.num_nodes(), 2);
  EXPECT_EQ(r.tree.to_paren(), "((..).)");
}

TEST(LoadTree, SkipsCommentsAndNamesTheStatusOnFailure) {
  {
    std::stringstream ss("# header comment\n\n   \n((..).)\n(..)\n");
    EXPECT_EQ(load_tree(ss).to_paren(), "((..).)");
    // The stream is left positioned at the next record.
    EXPECT_EQ(load_tree(ss).to_paren(), "(..)");
  }
  {
    std::stringstream ss("# only a comment\n(.x)\n");
    try {
      load_tree(ss);
      FAIL() << "expected check_error";
    } catch (const check_error& e) {
      // The structured status and offset surface in the message.
      EXPECT_NE(std::string(e.what()).find("bad-character"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("offset 2"), std::string::npos)
          << e.what();
    }
  }
}

TEST(Certificate, IssueAndVerify) {
  Rng rng(404);
  const BinaryTree guest = make_random_tree(16 * 15, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const auto cert =
      issue_certificate(guest, res.embedding, res.stats.height);
  EXPECT_LE(cert.dilation, 3);
  EXPECT_EQ(cert.load_factor, 16);
  EXPECT_TRUE(verify_certificate(cert, guest, res.embedding));
}

TEST(Certificate, DetectsTamperedClaims) {
  Rng rng(405);
  const BinaryTree guest = make_random_tree(112, rng);
  const auto res = XTreeEmbedder::embed(guest);
  auto cert = issue_certificate(guest, res.embedding, res.stats.height);
  auto tampered = cert;
  tampered.dilation -= 1;
  EXPECT_FALSE(verify_certificate(tampered, guest, res.embedding));
  tampered = cert;
  tampered.load_factor = 15;
  EXPECT_FALSE(verify_certificate(tampered, guest, res.embedding));
  // Every remaining field is bound too: fingerprints, node count, and
  // the host the distances were measured in.
  tampered = cert;
  tampered.guest_fingerprint ^= 1;
  EXPECT_FALSE(verify_certificate(tampered, guest, res.embedding));
  tampered = cert;
  tampered.assignment_fingerprint ^= 1;
  EXPECT_FALSE(verify_certificate(tampered, guest, res.embedding));
  tampered = cert;
  tampered.guest_nodes += 1;
  EXPECT_FALSE(verify_certificate(tampered, guest, res.embedding));
  tampered = cert;
  tampered.host_height += 1;  // taller X-tree: distances change
  EXPECT_FALSE(verify_certificate(tampered, guest, res.embedding));
}

TEST(Certificate, FingerprintHelpersDiscriminate) {
  // The exported hashes (shared with verify/certificate_chain) must
  // move under any structural or placement change.
  const BinaryTree a = BinaryTree::from_paren("((..)(..))");
  const BinaryTree b = BinaryTree::from_paren("(((..).).)");
  EXPECT_EQ(guest_fingerprint(a), guest_fingerprint(a));
  EXPECT_NE(guest_fingerprint(a), guest_fingerprint(b));

  Embedding e1(3, 4);
  Embedding e2(3, 4);
  for (NodeId v = 0; v < 3; ++v) {
    e1.place(v, v);
    e2.place(v, v == 2 ? 3 : v);  // one relocation
  }
  EXPECT_EQ(assignment_fingerprint(e1), assignment_fingerprint(e1));
  EXPECT_NE(assignment_fingerprint(e1), assignment_fingerprint(e2));
}

TEST(Certificate, DetectsDifferentGuestOrAssignment) {
  Rng rng(406);
  const BinaryTree guest = make_random_tree(112, rng);
  const BinaryTree other = make_random_tree(112, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const auto cert =
      issue_certificate(guest, res.embedding, res.stats.height);
  // Different tree of the same size.
  EXPECT_FALSE(verify_certificate(cert, other, res.embedding));
  // Different (but valid) assignment.
  const auto res_other = XTreeEmbedder::embed(other);
  EXPECT_FALSE(verify_certificate(cert, guest, res_other.embedding));
}

TEST(Certificate, TextRoundTrip) {
  Rng rng(407);
  const BinaryTree guest = make_random_tree(48, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const auto cert =
      issue_certificate(guest, res.embedding, res.stats.height);
  const auto back = certificate_from_string(certificate_to_string(cert));
  EXPECT_EQ(back.guest_fingerprint, cert.guest_fingerprint);
  EXPECT_EQ(back.assignment_fingerprint, cert.assignment_fingerprint);
  EXPECT_EQ(back.dilation, cert.dilation);
  EXPECT_EQ(back.load_factor, cert.load_factor);
  EXPECT_TRUE(verify_certificate(back, guest, res.embedding));
  EXPECT_THROW(certificate_from_string("garbage"), check_error);
}

TEST(Svg, Figure1Renders) {
  const XTree x(3);
  const std::string svg = xtree_to_svg(x);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // All 15 vertex labels appear (root is "e").
  EXPECT_NE(svg.find(">e<"), std::string::npos);
  EXPECT_NE(svg.find(">000<"), std::string::npos);
  EXPECT_NE(svg.find(">111<"), std::string::npos);
  // 25 edges: 14 tree lines + 11 dashed cross lines.
  std::size_t lines = 0;
  for (std::size_t pos = svg.find("<line"); pos != std::string::npos;
       pos = svg.find("<line", pos + 1))
    ++lines;
  EXPECT_EQ(lines, 25u);
}

TEST(Svg, EmbeddingHeatRenders) {
  Rng rng(408);
  const BinaryTree guest = make_random_tree(112, rng);
  const auto res = XTreeEmbedder::embed(guest);
  const XTree host(res.stats.height);
  const std::string svg = embedding_to_svg(host, guest, res.embedding);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find(">16<"), std::string::npos);  // loads shown
  EXPECT_THROW(embedding_to_svg(XTree(9), guest, res.embedding),
               check_error);  // wrong host size
}

}  // namespace
}  // namespace xt
