// Pure-parser tests for the network edge (no sockets): xtn1 frame
// round-trips and corruption handling, the HTTP/1.1 request parser's
// limits and error statuses, and the shared response JSON.  Every
// split/truncation case is also fed byte-at-a-time — the parsers must
// be insensitive to delivery granularity (the fuzzer replays the same
// corpus via xt_fuzz --replay @wire:FILE).
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "btree/binary_tree.hpp"
#include "embedding/embedding.hpp"
#include "net/http.hpp"
#include "net/wire.hpp"
#include "service/request.hpp"

namespace xt {
namespace {

WireFrame sample_frame() {
  WireFrame f;
  f.format = static_cast<std::uint8_t>(WireFormat::kParen);
  f.code = 1;  // theorem 2
  f.flags = kWireFlagWantEmbedding;
  f.priority = -3;
  f.deadline_ms = 250;
  f.request_id = 0xC0FFEEu;
  f.payload = "((.(..))(..))";
  return f;
}

void expect_equal(const WireFrame& a, const WireFrame& b) {
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.format, b.format);
  EXPECT_EQ(a.code, b.code);
  EXPECT_EQ(a.flags, b.flags);
  EXPECT_EQ(a.priority, b.priority);
  EXPECT_EQ(a.deadline_ms, b.deadline_ms);
  EXPECT_EQ(a.request_id, b.request_id);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(FrameParser, RoundTripsASingleFrame) {
  const WireFrame in = sample_frame();
  const std::string bytes = encode_frame(in);
  ASSERT_EQ(bytes.size(), kWireHeaderBytes + in.payload.size());

  FrameParser parser;
  parser.feed(bytes);
  WireFrame out;
  ASSERT_EQ(parser.next(&out), FrameParser::Result::kFrame);
  expect_equal(in, out);
  EXPECT_EQ(parser.next(&out), FrameParser::Result::kNeedMore);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameParser, ByteAtATimeDeliveryMatchesWholeBuffer) {
  const WireFrame in = sample_frame();
  const std::string bytes = encode_frame(in);

  FrameParser parser;
  WireFrame out;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    // Before the last byte every poll must report an incomplete frame.
    ASSERT_EQ(parser.next(&out), FrameParser::Result::kNeedMore)
        << "frame completed early at byte " << i;
    parser.feed(std::string_view(bytes.data() + i, 1));
  }
  ASSERT_EQ(parser.next(&out), FrameParser::Result::kFrame);
  expect_equal(in, out);
}

TEST(FrameParser, DecodesPipelinedFramesFromOneFeed) {
  WireFrame a = sample_frame();
  WireFrame b = sample_frame();
  b.request_id = 42;
  b.payload = "(..)";
  WireFrame c = sample_frame();
  c.request_id = 43;
  c.payload.clear();  // zero-length payloads are legal

  FrameParser parser;
  parser.feed(encode_frame(a) + encode_frame(b) + encode_frame(c));
  WireFrame out;
  ASSERT_EQ(parser.next(&out), FrameParser::Result::kFrame);
  expect_equal(a, out);
  ASSERT_EQ(parser.next(&out), FrameParser::Result::kFrame);
  expect_equal(b, out);
  ASSERT_EQ(parser.next(&out), FrameParser::Result::kFrame);
  expect_equal(c, out);
  EXPECT_EQ(parser.next(&out), FrameParser::Result::kNeedMore);
}

TEST(FrameParser, TruncatedHeaderNeverCompletes) {
  const std::string bytes = encode_frame(sample_frame());
  FrameParser parser;
  parser.feed(std::string_view(bytes).substr(0, kWireHeaderBytes - 1));
  WireFrame out;
  EXPECT_EQ(parser.next(&out), FrameParser::Result::kNeedMore);
  EXPECT_EQ(parser.buffered(), kWireHeaderBytes - 1);
}

TEST(FrameParser, BadMagicIsAStickyError) {
  std::string bytes = encode_frame(sample_frame());
  bytes[0] = 'X';
  FrameParser parser;
  parser.feed(bytes);
  WireFrame out;
  ASSERT_EQ(parser.next(&out), FrameParser::Result::kError);
  EXPECT_NE(parser.error().find("magic"), std::string::npos);
  // Feeding a pristine frame afterwards cannot resynchronise.
  parser.feed(encode_frame(sample_frame()));
  EXPECT_EQ(parser.next(&out), FrameParser::Result::kError);
}

TEST(FrameParser, RejectsUnknownVersion) {
  std::string bytes = encode_frame(sample_frame());
  bytes[4] = 9;
  FrameParser parser;
  parser.feed(bytes);
  WireFrame out;
  ASSERT_EQ(parser.next(&out), FrameParser::Result::kError);
  EXPECT_NE(parser.error().find("version"), std::string::npos);
}

TEST(FrameParser, RejectsOversizedPayloadFromHeaderAlone) {
  WireFrame big = sample_frame();
  big.payload.assign(256, 'x');
  FrameParser parser(/*max_payload=*/64);
  // Header alone declares the violation; the parser must not wait for
  // (or buffer) the oversized payload.
  parser.feed(std::string_view(encode_frame(big)).substr(0, kWireHeaderBytes));
  WireFrame out;
  ASSERT_EQ(parser.next(&out), FrameParser::Result::kError);
  EXPECT_NE(parser.error().find("payload"), std::string::npos);
}

TEST(FrameParser, RejectsChecksumMismatch) {
  std::string bytes = encode_frame(sample_frame());
  bytes[bytes.size() - 1] ^= 0x5A;  // corrupt payload, keep stored hash
  FrameParser parser;
  parser.feed(bytes);
  WireFrame out;
  ASSERT_EQ(parser.next(&out), FrameParser::Result::kError);
  EXPECT_NE(parser.error().find("checksum"), std::string::npos);
}

TEST(FrameParser, BufferStaysBoundedAcrossManyFrames) {
  WireFrame f = sample_frame();
  const std::string bytes = encode_frame(f);
  FrameParser parser;
  WireFrame out;
  for (int i = 0; i < 2000; ++i) {
    parser.feed(bytes);
    ASSERT_EQ(parser.next(&out), FrameParser::Result::kFrame);
  }
  // Lazy compaction must not let consumed bytes accumulate without
  // bound: after draining, residue is less than one frame.
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(Xtb1Record, RoundTripsATree) {
  const BinaryTree tree = BinaryTree::from_paren("((.(..))((..).))");
  const std::string payload = encode_xtb1_record(tree);
  std::string error;
  const BinaryTree back = decode_xtb1_record(payload, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(back.num_nodes(), tree.num_nodes());
  EXPECT_EQ(back.to_paren(), tree.to_paren());
}

TEST(Xtb1Record, RejectsTruncatedAndCorruptPayloads) {
  const std::string payload =
      encode_xtb1_record(BinaryTree::from_paren("((..)(..))"));
  std::string error;
  (void)decode_xtb1_record(payload.substr(0, payload.size() - 3), &error);
  EXPECT_FALSE(error.empty());

  error.clear();
  (void)decode_xtb1_record(std::string_view("abc"), &error);
  EXPECT_FALSE(error.empty());

  // Structurally invalid record (parent/child tables disagree).
  std::string mangled = payload;
  mangled[mangled.size() - 1] ^= 0x7F;
  error.clear();
  (void)decode_xtb1_record(mangled, &error);
  EXPECT_FALSE(error.empty());
}

TEST(WireStatusMapping, CoversEveryStatus) {
  EXPECT_STREQ(wire_status_name(WireStatus::kOk), "ok");
  EXPECT_EQ(wire_status_of(RequestStatus::kOk), WireStatus::kOk);
  EXPECT_EQ(wire_status_of(RequestStatus::kRejectedQueueFull),
            WireStatus::kRejectedQueueFull);
  EXPECT_EQ(wire_status_of(RequestStatus::kRejectedShutdown),
            WireStatus::kRejectedShutdown);
  EXPECT_EQ(wire_status_of(RequestStatus::kExpiredDeadline),
            WireStatus::kExpiredDeadline);
  EXPECT_EQ(wire_status_of(RequestStatus::kFailed), WireStatus::kFailed);

  EXPECT_EQ(http_status_of(WireStatus::kOk), 200);
  EXPECT_EQ(http_status_of(WireStatus::kRejectedQueueFull), 429);
  EXPECT_EQ(http_status_of(WireStatus::kOverloaded), 429);
  EXPECT_EQ(http_status_of(WireStatus::kRejectedShutdown), 503);
  EXPECT_EQ(http_status_of(WireStatus::kExpiredDeadline), 504);
  EXPECT_EQ(http_status_of(WireStatus::kFailed), 500);
  EXPECT_EQ(http_status_of(WireStatus::kBadRequest), 400);
}

TEST(EmbedResponseJson, CarriesOutcomeAndOptionalEmbedding) {
  EmbedResponse response;
  response.status = RequestStatus::kOk;
  response.host_height = 4;
  response.dilation = 6;
  response.load_factor = 1;
  response.cache_hit = true;
  response.served_seq = 7;
  response.latency_ms = 0.25;
  Embedding emb(3, 4);
  emb.place(0, 0);
  emb.place(1, 2);
  emb.place(2, 3);
  response.embedding = emb;

  const std::string with = embed_response_json(response, true);
  EXPECT_NE(with.find("\"status\": \"ok\""), std::string::npos) << with;
  EXPECT_NE(with.find("\"embedding\": [0, 2, 3]"), std::string::npos) << with;
  const std::string without = embed_response_json(response, false);
  EXPECT_EQ(without.find("embedding"), std::string::npos) << without;

  EmbedResponse rejected;
  rejected.status = RequestStatus::kRejectedQueueFull;
  rejected.reason = "queue full \"now\"";
  const std::string json = embed_response_json(rejected, true);
  EXPECT_NE(json.find("\"status\": \"rejected_queue_full\""),
            std::string::npos)
      << json;
  // Reason strings are JSON-escaped.
  EXPECT_NE(json.find("queue full \\\"now\\\""), std::string::npos) << json;
}

// ---------------------------------------------------------------- HTTP

TEST(HttpParser, ParsesASimpleGetByteAtATime) {
  const std::string raw = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  HttpParser parser;
  HttpRequest out;
  for (std::size_t i = 0; i + 1 < raw.size(); ++i) {
    parser.feed(std::string_view(raw.data() + i, 1));
    ASSERT_EQ(parser.next(&out), HttpParser::Result::kNeedMore)
        << "request completed early at byte " << i;
  }
  parser.feed(std::string_view(raw.data() + raw.size() - 1, 1));
  ASSERT_EQ(parser.next(&out), HttpParser::Result::kRequest);
  EXPECT_EQ(out.method, "GET");
  EXPECT_EQ(out.target, "/healthz");
  EXPECT_EQ(out.version, "HTTP/1.1");
  EXPECT_EQ(out.header("host"), "x");
  EXPECT_TRUE(out.keep_alive());
}

TEST(HttpParser, ParsesPostBodyAndPipelinedRequestsInOneFeed) {
  const std::string raw =
      "POST /embed?theorem=t2 HTTP/1.1\r\nContent-Length: 5\r\n\r\n(...)"
      "GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n";
  HttpParser parser;
  parser.feed(raw);
  HttpRequest out;
  ASSERT_EQ(parser.next(&out), HttpParser::Result::kRequest);
  EXPECT_EQ(out.method, "POST");
  EXPECT_EQ(out.path(), "/embed");
  EXPECT_EQ(out.query(), "theorem=t2");
  EXPECT_EQ(out.body, "(...)");
  ASSERT_EQ(parser.next(&out), HttpParser::Result::kRequest);
  EXPECT_EQ(out.method, "GET");
  EXPECT_EQ(out.target, "/stats");
  EXPECT_FALSE(out.keep_alive());
  EXPECT_EQ(parser.next(&out), HttpParser::Result::kNeedMore);
}

TEST(HttpParser, ToleratesBareLfLineEndings) {
  HttpParser parser;
  parser.feed("GET /healthz HTTP/1.0\nHost: y\n\n");
  HttpRequest out;
  ASSERT_EQ(parser.next(&out), HttpParser::Result::kRequest);
  EXPECT_EQ(out.version, "HTTP/1.0");
  EXPECT_EQ(out.header("Host"), "y");
}

TEST(HttpParser, WaitsForTheFullBody) {
  HttpParser parser;
  parser.feed("POST /embed HTTP/1.1\r\nContent-Length: 10\r\n\r\n(..)");
  HttpRequest out;
  EXPECT_EQ(parser.next(&out), HttpParser::Result::kNeedMore);
  parser.feed("((..))");
  ASSERT_EQ(parser.next(&out), HttpParser::Result::kRequest);
  EXPECT_EQ(out.body, "(..)((..))");
}

TEST(HttpParser, OversizedHeadersAre431) {
  HttpParser parser(/*max_header_bytes=*/128);
  std::string raw = "GET / HTTP/1.1\r\nX-Pad: ";
  raw.append(200, 'a');
  parser.feed(raw);
  HttpRequest out;
  ASSERT_EQ(parser.next(&out), HttpParser::Result::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, OversizedBodyIs413) {
  HttpParser parser(kHttpDefaultMaxHeaderBytes, /*max_body_bytes=*/16);
  parser.feed("POST /embed HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
  HttpRequest out;
  ASSERT_EQ(parser.next(&out), HttpParser::Result::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParser, ChunkedTransferEncodingIs501) {
  HttpParser parser;
  parser.feed(
      "POST /embed HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  HttpRequest out;
  ASSERT_EQ(parser.next(&out), HttpParser::Result::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParser, MalformedInputIs400AndSticky) {
  {
    HttpParser parser;
    parser.feed("GARBAGE\r\n\r\n");
    HttpRequest out;
    ASSERT_EQ(parser.next(&out), HttpParser::Result::kError);
    EXPECT_EQ(parser.error_status(), 400);
    parser.feed("GET / HTTP/1.1\r\n\r\n");
    EXPECT_EQ(parser.next(&out), HttpParser::Result::kError);
  }
  {
    HttpParser parser;
    parser.feed("GET / HTTP/2\r\n\r\n");  // unsupported version
    HttpRequest out;
    EXPECT_EQ(parser.next(&out), HttpParser::Result::kError);
  }
  {
    HttpParser parser;
    parser.feed("POST / HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n");
    HttpRequest out;
    ASSERT_EQ(parser.next(&out), HttpParser::Result::kError);
    EXPECT_EQ(parser.error_status(), 400);
  }
}

TEST(HttpHelpers, QueryParamAndResponseFraming) {
  EXPECT_EQ(query_param("theorem=t2&priority=5", "theorem", "t1"), "t2");
  EXPECT_EQ(query_param("theorem=t2&priority=5", "priority", "0"), "5");
  EXPECT_EQ(query_param("theorem=t2", "deadline_ms", "0"), "0");
  EXPECT_EQ(query_param("", "x", "fallback"), "fallback");
  EXPECT_EQ(query_param("flag&x=1", "x", ""), "1");

  const std::string ok = http_response(200, "{}");
  EXPECT_EQ(ok.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(ok.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(ok.find("Content-Type: application/json\r\n"), std::string::npos);
  EXPECT_NE(ok.find("\r\n\r\n{}"), std::string::npos);

  const std::string busy = http_response(429, "{}", "application/json",
                                         false, {"Retry-After: 1"});
  EXPECT_EQ(busy.find("HTTP/1.1 429 Too Many Requests\r\n"), 0u);
  EXPECT_NE(busy.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(busy.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_STREQ(http_status_reason(503), "Service Unavailable");
}

}  // namespace
}  // namespace xt
