// Validation of the corridor-Dijkstra X-tree distance (the oracle
// behind every dilation number this repository reports): exhaustive
// against BFS for small heights, randomised for large ones.
#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "topology/xtree.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

class XTreeDistanceExhaustive : public ::testing::TestWithParam<std::int32_t> {
};

TEST_P(XTreeDistanceExhaustive, MatchesBfsOnAllPairs) {
  const std::int32_t r = GetParam();
  const XTree x(r);
  const Graph g = x.to_graph();
  for (VertexId a = 0; a < x.num_vertices(); ++a) {
    const auto d = bfs_distances(g, a);
    for (VertexId b = 0; b < x.num_vertices(); ++b) {
      ASSERT_EQ(x.distance(a, b), d[static_cast<std::size_t>(b)])
          << "a=" << x.label_of(a) << " b=" << x.label_of(b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Heights, XTreeDistanceExhaustive,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8));

TEST(XTreeDistance, RandomPairsMatchBfsHeight10) {
  const XTree x(10);
  const Graph g = x.to_graph();
  Rng rng(2026);
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = static_cast<VertexId>(rng.below(x.num_vertices()));
    const auto b = static_cast<VertexId>(rng.below(x.num_vertices()));
    ASSERT_EQ(x.distance(a, b), bfs_distance(g, a, b))
        << "a=" << x.label_of(a) << " b=" << x.label_of(b);
  }
}

TEST(XTreeDistance, SymmetricAndZeroOnDiagonal) {
  const XTree x(12);
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<VertexId>(rng.below(x.num_vertices()));
    const auto b = static_cast<VertexId>(rng.below(x.num_vertices()));
    EXPECT_EQ(x.distance(a, b), x.distance(b, a));
    EXPECT_EQ(x.distance(a, a), 0);
  }
}

TEST(XTreeDistance, TriangleInequalityOnRandomTriples) {
  const XTree x(11);
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<VertexId>(rng.below(x.num_vertices()));
    const auto b = static_cast<VertexId>(rng.below(x.num_vertices()));
    const auto c = static_cast<VertexId>(rng.below(x.num_vertices()));
    EXPECT_LE(x.distance(a, c), x.distance(a, b) + x.distance(b, c));
  }
}

TEST(XTreeDistance, AdjacentVerticesHaveDistanceOne) {
  const XTree x(9);
  Rng rng(5);
  std::vector<VertexId> nbr;
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<VertexId>(rng.below(x.num_vertices()));
    nbr.clear();
    x.neighbors(a, nbr);
    for (VertexId b : nbr) EXPECT_EQ(x.distance(a, b), 1);
  }
}

TEST(XTreeDistance, KnownValuesOnHeight3) {
  const XTree x(3);
  auto v = [&](const char* s) { return x.vertex_of_label(s); };
  EXPECT_EQ(x.distance(v(""), v("111")), 3);
  EXPECT_EQ(x.distance(v("000"), v("111")), 5);  // horizontal 7 vs climb
  EXPECT_EQ(x.distance(v("000"), v("001")), 1);
  EXPECT_EQ(x.distance(v("011"), v("100")), 1);  // cross-subtree link
  EXPECT_EQ(x.distance(v("0"), v("1")), 1);
  EXPECT_EQ(x.distance(v("00"), v("11")), 3);
}

TEST(XTreeDistance, KernelMatchesOracleOn100kPairsHeight20) {
  // The closed-form level-DP kernel (the default distance()) against
  // the corridor-Dijkstra oracle it replaced, on a tree far past the
  // exhaustive heights.  This is the acceptance gate for the kernel.
  const XTree x(20);
  Rng rng(31415);
  for (int trial = 0; trial < 100000; ++trial) {
    const auto a = static_cast<VertexId>(rng.below(x.num_vertices()));
    const auto b = static_cast<VertexId>(rng.below(x.num_vertices()));
    ASSERT_EQ(x.distance(a, b), x.distance_oracle(a, b))
        << "a=" << x.label_of(a) << " b=" << x.label_of(b);
  }
}

TEST(XTreeDistance, DistanceBoundedEarlyExitSemantics) {
  // distance_bounded returns the exact distance when it fits the
  // bound and -1 (never a partial value) when it does not; the oracle
  // form keeps the same contract.
  const XTree x(10);
  Rng rng(555);
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = static_cast<VertexId>(rng.below(x.num_vertices()));
    const auto b = static_cast<VertexId>(rng.below(x.num_vertices()));
    const std::int32_t d = x.distance(a, b);
    EXPECT_EQ(x.distance_bounded(a, b, d), d);
    EXPECT_EQ(x.distance_bounded(a, b, d + 3), d);
    EXPECT_EQ(x.distance_oracle_bounded(a, b, d), d);
    if (d > 0) {
      EXPECT_EQ(x.distance_bounded(a, b, d - 1), -1);
      EXPECT_EQ(x.distance_bounded(a, b, 0), -1);
      EXPECT_EQ(x.distance_oracle_bounded(a, b, d - 1), -1);
    } else {
      EXPECT_EQ(x.distance_bounded(a, b, 0), 0);
    }
  }
}

TEST(XTreeDistance, DistanceAtMostAgreesAcrossHeights) {
  // distance_at_most must agree with distance for every height the
  // embedder actually uses.
  for (std::int32_t r = 1; r <= 10; ++r) {
    const XTree x(r);
    Rng rng(700 + r);
    for (int trial = 0; trial < 64; ++trial) {
      const auto a = static_cast<VertexId>(rng.below(x.num_vertices()));
      const auto b = static_cast<VertexId>(rng.below(x.num_vertices()));
      const std::int32_t d = x.distance(a, b);
      EXPECT_TRUE(x.distance_at_most(a, b, d)) << "r=" << r;
      if (d > 0) {
        EXPECT_FALSE(x.distance_at_most(a, b, d - 1)) << "r=" << r;
      }
    }
  }
}

TEST(XTreeDistance, DistanceAtMostAgrees) {
  const XTree x(8);
  Rng rng(44);
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = static_cast<VertexId>(rng.below(x.num_vertices()));
    const auto b = static_cast<VertexId>(rng.below(x.num_vertices()));
    const std::int32_t d = x.distance(a, b);
    EXPECT_TRUE(x.distance_at_most(a, b, d));
    if (d > 0) {
      EXPECT_FALSE(x.distance_at_most(a, b, d - 1));
    }
  }
}

TEST(XTreeDistance, AdversarialCorridorCasesHeight12) {
  // Crafted pairs that stress the corridor restriction: cone
  // boundaries, power-of-two position offsets (where up-projections
  // shear), corners, and cross-subtree pairs.  Checked against BFS on
  // the materialised graph (8191 vertices).
  const XTree x(12);
  const Graph g = x.to_graph();
  std::vector<std::pair<VertexId, VertexId>> cases;
  const std::int64_t top = (std::int64_t{1} << 12) - 1;
  for (std::int32_t k = 0; k <= 11; ++k) {
    const std::int64_t p = std::int64_t{1} << k;  // subtree boundary
    for (std::int64_t d : {-2, -1, 0, 1, 2}) {
      const std::int64_t q = p + d;
      if (q < 0 || q > top) continue;
      cases.emplace_back(XTree::id_of({12, p - 1}), XTree::id_of({12, q}));
      cases.emplace_back(XTree::id_of({12, 0}), XTree::id_of({12, q}));
      cases.emplace_back(XTree::id_of({6, (p - 1) % 64}),
                         XTree::id_of({12, q}));
    }
  }
  cases.emplace_back(XTree::id_of({12, 0}), XTree::id_of({12, top}));
  cases.emplace_back(XTree::id_of({12, top / 2}),
                     XTree::id_of({12, top / 2 + 1}));
  cases.emplace_back(XTree::id_of({1, 0}), XTree::id_of({12, top}));
  for (const auto& [a, b] : cases) {
    ASSERT_EQ(x.distance(a, b), bfs_distance(g, a, b))
        << x.label_of(a) << " vs " << x.label_of(b);
  }
}

TEST(XTreeDistance, UpperBoundedByTreeRoute) {
  // Never worse than the pure complete-binary-tree path.
  const XTree x(10);
  Rng rng(123);
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = static_cast<VertexId>(rng.below(x.num_vertices()));
    const auto b = static_cast<VertexId>(rng.below(x.num_vertices()));
    // Tree distance via LCA on heap ids.
    VertexId u = a;
    VertexId v = b;
    std::int32_t d = 0;
    auto level = [&](VertexId w) { return x.level_of(w); };
    while (level(u) > level(v)) {
      u = x.parent(u);
      ++d;
    }
    while (level(v) > level(u)) {
      v = x.parent(v);
      ++d;
    }
    while (u != v) {
      u = x.parent(u);
      v = x.parent(v);
      d += 2;
    }
    EXPECT_LE(x.distance(a, b), d);
  }
}

TEST(XTreeDistance, DeepCornersOnTallTree) {
  // Far-apart leaves on X(16): distance must use the climb, and the
  // corridor must not overflow.
  const XTree x(16);
  const VertexId left = XTree::id_of({16, 0});
  const VertexId right = XTree::id_of({16, (std::int64_t{1} << 16) - 1});
  const std::int32_t d = x.distance(left, right);
  EXPECT_GE(d, 16);      // must climb at least near the root
  EXPECT_LE(d, 2 * 16);  // never worse than the pure tree route
}

}  // namespace
}  // namespace xt
