// The differential-verification subsystem (src/verify/): oracle
// against production kernels, per-theorem certificate chain, negative
// tampering paths, and the shrink-on-failure fuzzer harness.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "btree/generators.hpp"
#include "core/xtree_embedder.hpp"
#include "embedding/metrics.hpp"
#include "topology/xtree.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "verify/certificate_chain.hpp"
#include "verify/fuzzer.hpp"
#include "verify/oracle.hpp"

namespace xt {
namespace {

// ---------------------------------------------------------------- oracle

TEST(Oracle, XTreeDilationMatchesMetricLayer) {
  // The oracle (corridor Dijkstra per edge) and the production metric
  // layer (O(1) distance kernel, batched) are independent paths; they
  // must agree on every tree.
  Rng rng(0xA11CE);
  for (int trial = 0; trial < 12; ++trial) {
    const auto n = static_cast<NodeId>(2 + rng.below(400));
    const BinaryTree guest = make_random_tree(n, rng);
    const auto res = XTreeEmbedder::embed(guest);
    const XTree host(res.stats.height);
    const auto fast = dilation_xtree(guest, res.embedding, host);
    const auto slow = oracle_dilation_xtree(guest, res.embedding, host);
    ASSERT_EQ(fast.max, slow.max) << "n=" << n;
    ASSERT_EQ(fast.num_edges, slow.num_edges);
  }
}

TEST(Oracle, LoadFactorMatchesEmbeddingRecount) {
  Rng rng(0xA11CF);
  const BinaryTree guest = make_random_tree(300, rng);
  const auto res = XTreeEmbedder::embed(guest);
  EXPECT_EQ(oracle_load_factor(res.embedding),
            res.embedding.load_factor());
}

TEST(Oracle, PlacementCheckCatchesUnplacedNode) {
  const BinaryTree guest = BinaryTree::from_paren("((..)(..))");
  Embedding emb(guest.num_nodes(), 8);
  emb.place(0, 0);  // nodes 1, 2 left unplaced
  const std::string bad = oracle_check_placement(guest, emb);
  EXPECT_NE(bad.find("unplaced"), std::string::npos) << bad;
}

TEST(Oracle, PlacementCheckCatchesSizeMismatch) {
  const BinaryTree guest = BinaryTree::from_paren("((..)(..))");
  Embedding emb(guest.num_nodes() + 1, 8);
  EXPECT_FALSE(oracle_check_placement(guest, emb).empty());
}

// ----------------------------------------------------------- exact form

TEST(CertificateChain, ExactFormPredicate) {
  // n = 16 * (2^k - 1): 16, 48, 112, 240, 496 ...
  for (NodeId n : {16, 48, 112, 240, 496}) EXPECT_TRUE(is_exact_form(n, 16));
  for (NodeId n : {1, 15, 17, 47, 49, 111, 113, 495, 497})
    EXPECT_FALSE(is_exact_form(n, 16)) << n;
  EXPECT_TRUE(is_exact_form(8 * 7, 8));
  EXPECT_FALSE(is_exact_form(8 * 7, 16));
}

// ------------------------------------------------------------ the chain

TEST(CertificateChain, ExactFormPipelineVerifies) {
  Rng rng(0xC4A1);
  const BinaryTree guest = make_random_tree(16 * 31, rng);  // exact, r=4
  const CertifiedPipeline pipe = run_certified_pipeline(guest);
  ASSERT_EQ(pipe.links.size(), 4u);  // T1, T2, T3 x2 (T4 off by default)
  EXPECT_EQ(verify_pipeline(guest, pipe), "");

  const CertifiedEmbedding* t1 = pipe.find(ChainLink::kXTree);
  ASSERT_NE(t1, nullptr);
  EXPECT_LE(t1->cert.dilation, 3);  // theorem-exact bound
  EXPECT_EQ(t1->cert.load_factor, 16);

  const CertifiedEmbedding* t2 = pipe.find(ChainLink::kInjectiveXTree);
  ASSERT_NE(t2, nullptr);
  EXPECT_LE(t2->cert.dilation, 11);
  EXPECT_EQ(t2->cert.load_factor, 1);
  EXPECT_EQ(t2->cert.host_param, t1->cert.host_param + 4);

  const CertifiedEmbedding* c16 = pipe.find(ChainLink::kHypercubeLoad16);
  ASSERT_NE(c16, nullptr);
  EXPECT_LE(c16->cert.dilation, 4);

  const CertifiedEmbedding* cin = pipe.find(ChainLink::kHypercubeInjective);
  ASSERT_NE(cin, nullptr);
  EXPECT_LE(cin->cert.dilation, 8);
  EXPECT_EQ(cin->cert.host_param, c16->cert.host_param + 4);
}

TEST(CertificateChain, ArbitrarySizeAndUniversalLink) {
  Rng rng(0xC4A2);
  const BinaryTree guest = make_random_tree(77, rng);  // not exact form
  ChainOptions opt;
  opt.include_t4 = true;
  const CertifiedPipeline pipe = run_certified_pipeline(guest, opt);
  ASSERT_EQ(pipe.links.size(), 5u);
  EXPECT_EQ(verify_pipeline(guest, pipe), "");

  const CertifiedEmbedding* t4 = pipe.find(ChainLink::kUniversal);
  ASSERT_NE(t4, nullptr);
  EXPECT_EQ(t4->cert.edges_outside, 0);
  EXPECT_LE(t4->cert.host_degree, 415);
  EXPECT_EQ(t4->cert.load_factor, 1);
}

TEST(CertificateChain, SingleNodeAndTinyTrees) {
  for (const char* paren : {"(..)", "((..).)", "((..)(..))"}) {
    const BinaryTree guest = BinaryTree::from_paren(paren);
    const CertifiedPipeline pipe = run_certified_pipeline(guest);
    EXPECT_EQ(verify_pipeline(guest, pipe), "") << paren;
  }
}

TEST(CertificateChain, NonDefaultLoadSkipsFixedLoadTheorems) {
  Rng rng(0xC4A3);
  const BinaryTree guest = make_random_tree(120, rng);
  ChainOptions opt;
  opt.load = 8;
  const CertifiedPipeline pipe = run_certified_pipeline(guest, opt);
  ASSERT_EQ(pipe.links.size(), 1u);  // T2-T4 fix load 16
  EXPECT_EQ(pipe.links.front().cert.load_bound, 8);
  EXPECT_EQ(verify_pipeline(guest, pipe), "");
}

// ----------------------------------------------------- negative paths

class ChainTamperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(0x7A3);
    guest_ = make_random_tree(16 * 15, rng);  // exact: tight bounds
    ChainOptions opt;
    opt.include_t4 = true;
    pipe_ = run_certified_pipeline(guest_, opt);
    ASSERT_EQ(verify_pipeline(guest_, pipe_), "");
  }

  BinaryTree guest_;
  CertifiedPipeline pipe_;
};

TEST_F(ChainTamperTest, EveryClaimFieldIsBound) {
  // Tampering any numeric claim of any link must fail verification.
  for (std::size_t i = 0; i < pipe_.links.size(); ++i) {
    const char* name = chain_link_name(pipe_.links[i].cert.link);
    {
      CertifiedPipeline t = pipe_;
      t.links[i].cert.guest_fingerprint ^= 1;
      EXPECT_NE(verify_pipeline(guest_, t), "") << name << " guest fp";
    }
    {
      CertifiedPipeline t = pipe_;
      t.links[i].cert.assignment_fingerprint ^= 1;
      EXPECT_NE(verify_pipeline(guest_, t), "") << name << " assignment fp";
    }
    {
      CertifiedPipeline t = pipe_;
      t.links[i].cert.guest_nodes += 1;
      EXPECT_NE(verify_pipeline(guest_, t), "") << name << " guest_nodes";
    }
    {
      CertifiedPipeline t = pipe_;
      t.links[i].cert.load_factor += 1;
      EXPECT_NE(verify_pipeline(guest_, t), "") << name << " load_factor";
    }
    if (pipe_.links[i].cert.link != ChainLink::kUniversal) {
      CertifiedPipeline t = pipe_;
      t.links[i].cert.dilation -= 1;  // under-claim: oracle must differ
      EXPECT_NE(verify_pipeline(guest_, t), "") << name << " dilation";
    }
    {
      // Claiming a bound below the measured value must also fail, even
      // with the measurement left honest.
      CertifiedPipeline t = pipe_;
      t.links[i].cert.load_bound = t.links[i].cert.load_factor - 1;
      EXPECT_NE(verify_pipeline(guest_, t), "") << name << " load_bound";
    }
  }
}

TEST_F(ChainTamperTest, HostParamIsBound) {
  for (std::size_t i = 0; i < pipe_.links.size(); ++i) {
    if (pipe_.links[i].cert.link == ChainLink::kUniversal) continue;
    CertifiedPipeline t = pipe_;
    t.links[i].cert.host_param += 1;  // wrong host: vertex count differs
    EXPECT_NE(verify_pipeline(guest_, t), "")
        << chain_link_name(pipe_.links[i].cert.link);
  }
}

TEST_F(ChainTamperTest, RelocatedAssignmentIsCaught) {
  // Moving one guest node to another host vertex (without touching the
  // certificate) must trip the assignment fingerprint.
  CertifiedPipeline t = pipe_;
  Embedding& emb = t.links[0].embedding;
  Embedding moved(emb.num_guest_nodes(), emb.num_host_vertices());
  for (NodeId v = 0; v < emb.num_guest_nodes(); ++v) {
    VertexId h = emb.host_of(v);
    if (v == 1) h = h == 0 ? 1 : 0;
    moved.place(v, h);
  }
  t.links[0].embedding = std::move(moved);
  const std::string bad = verify_pipeline(guest_, t);
  EXPECT_NE(bad.find("fingerprint"), std::string::npos) << bad;
}

TEST_F(ChainTamperTest, WrongGuestIsCaught) {
  Rng rng(0x7A4);
  const BinaryTree other = make_random_tree(guest_.num_nodes(), rng);
  ASSERT_NE(other.to_paren(), guest_.to_paren());
  EXPECT_NE(verify_pipeline(other, pipe_), "");
}

TEST_F(ChainTamperTest, EmptyChainIsRejected) {
  EXPECT_EQ(verify_pipeline(guest_, CertifiedPipeline{}),
            "empty certificate chain");
}

// -------------------------------------------------------- serialization

TEST(CertificateChain, TextRoundTrip) {
  Rng rng(0x5E4);
  const BinaryTree guest = make_random_tree(112, rng);
  ChainOptions opt;
  opt.include_t4 = true;
  const CertifiedPipeline pipe = run_certified_pipeline(guest, opt);
  for (const CertifiedEmbedding& link : pipe.links) {
    const TheoremCertificate back =
        theorem_certificate_from_string(theorem_certificate_to_string(link.cert));
    EXPECT_EQ(back.link, link.cert.link);
    EXPECT_EQ(back.guest_fingerprint, link.cert.guest_fingerprint);
    EXPECT_EQ(back.assignment_fingerprint, link.cert.assignment_fingerprint);
    EXPECT_EQ(back.guest_nodes, link.cert.guest_nodes);
    EXPECT_EQ(back.host_param, link.cert.host_param);
    EXPECT_EQ(back.dilation, link.cert.dilation);
    EXPECT_EQ(back.load_factor, link.cert.load_factor);
    EXPECT_EQ(back.dilation_bound, link.cert.dilation_bound);
    EXPECT_EQ(back.load_bound, link.cert.load_bound);
    EXPECT_EQ(back.edges_outside, link.cert.edges_outside);
    EXPECT_EQ(back.host_degree, link.cert.host_degree);
    // The parsed certificate must still verify against the artifact.
    EXPECT_EQ(verify_theorem_certificate(back, guest, link.embedding), "");
  }
  EXPECT_THROW((void)theorem_certificate_from_string("garbage"),
               check_error);
  EXPECT_THROW((void)theorem_certificate_from_string("xtreesim-tcert v1 9 0 0"),
               check_error);
}

// -------------------------------------------------------------- fuzzer

TEST(Fuzzer, CleanRunFindsNothing) {
  FuzzOptions opt;
  opt.trials = 15;
  opt.max_nodes = 150;
  const FuzzReport report = run_fuzz(opt);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.trials, 15);
}

TEST(Fuzzer, InjectedOverloadShrinksToMinimalReproducer) {
  // The overload fault places every node on host vertex 0, so the
  // property fails exactly when n > 16: the shrinker must reach the
  // minimal reproducer of 17 nodes (well under the 20-node target).
  FuzzOptions opt;
  opt.trials = 3;
  opt.min_nodes = 60;
  opt.max_nodes = 200;
  opt.fault = FuzzFault::kOverloadRoot;
  const FuzzReport report = run_fuzz(opt);
  ASSERT_EQ(report.violations.size(), 3u);
  for (const FuzzViolation& v : report.violations) {
    EXPECT_EQ(v.shrunk_nodes, 17) << v.shrunk_paren;
    EXPECT_GT(v.shrink_steps, 0);
    EXPECT_NE(v.failure.find("load factor"), std::string::npos) << v.failure;
    EXPECT_NE(v.replay.find("--replay"), std::string::npos) << v.replay;
    EXPECT_NE(v.replay.find("--inject=overload-root"), std::string::npos);
    // The reproducer replays: same property, same failure class.
    const BinaryTree shrunk = BinaryTree::from_paren(v.shrunk_paren);
    EXPECT_NE(replay_tree(shrunk, opt), "");
    // ... and is minimal: one hoist below 17 nodes must pass.
    FuzzOptions pass = opt;
    const BinaryTree smaller = make_path_tree(16);
    EXPECT_EQ(replay_tree(smaller, pass), "");
  }
}

TEST(Fuzzer, InjectedTamperShrinksToSingleNode) {
  FuzzOptions opt;
  opt.trials = 1;
  opt.min_nodes = 40;
  opt.max_nodes = 120;
  opt.fault = FuzzFault::kTamperDilationClaim;
  const FuzzReport report = run_fuzz(opt);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].shrunk_nodes, 1);
  EXPECT_EQ(report.violations[0].shrunk_paren, "(..)");
}

TEST(Fuzzer, ShrinkIsDeterministic) {
  FuzzOptions opt;
  opt.fault = FuzzFault::kOverloadRoot;
  Rng rng(0xDE7);
  const BinaryTree tree = make_random_tree(90, rng);
  const auto prop = [&](const BinaryTree& t) { return chain_property(t, opt); };
  ASSERT_NE(prop(tree), "");
  const BinaryTree a = shrink_tree(tree, prop, 4000);
  const BinaryTree b = shrink_tree(tree, prop, 4000);
  EXPECT_EQ(a.to_paren(), b.to_paren());
  EXPECT_EQ(a.num_nodes(), 17);
}

TEST(Fuzzer, ShrinkRespectsEvalBudget) {
  FuzzOptions opt;
  opt.fault = FuzzFault::kOverloadRoot;
  Rng rng(0xDE8);
  const BinaryTree tree = make_random_tree(120, rng);
  int evals = 0;
  const BinaryTree out = shrink_tree(
      tree, [&](const BinaryTree& t) { return chain_property(t, opt); }, 10,
      nullptr, &evals);
  EXPECT_LE(evals, 10);
  EXPECT_LE(out.num_nodes(), tree.num_nodes());
}

TEST(Fuzzer, PersistsMinimizedReproducerToCorpus) {
  const std::string dir =
      std::filesystem::temp_directory_path() / "xt_fuzz_corpus_test";
  std::filesystem::remove_all(dir);
  FuzzOptions opt;
  opt.trials = 1;
  opt.min_nodes = 50;
  opt.max_nodes = 100;
  opt.fault = FuzzFault::kOverloadRoot;
  opt.corpus_dir = dir;
  const FuzzReport report = run_fuzz(opt);
  ASSERT_EQ(report.violations.size(), 1u);
  const FuzzViolation& v = report.violations[0];
  ASSERT_FALSE(v.corpus_file.empty());
  std::ifstream in(v.corpus_file);
  ASSERT_TRUE(in.good()) << v.corpus_file;
  std::string line;
  std::string tree_line;
  bool saw_replay_comment = false;
  while (std::getline(in, line)) {
    if (line.rfind("# replay:", 0) == 0) saw_replay_comment = true;
    if (!line.empty() && line[0] != '#') tree_line = line;
  }
  EXPECT_TRUE(saw_replay_comment);
  EXPECT_EQ(tree_line, v.shrunk_paren);
  EXPECT_EQ(BinaryTree::from_paren(tree_line).num_nodes(), v.shrunk_nodes);
  std::filesystem::remove_all(dir);
}

TEST(Fuzzer, FaultNamesRoundTrip) {
  for (FuzzFault f : {FuzzFault::kNone, FuzzFault::kTamperDilationClaim,
                      FuzzFault::kOverloadRoot}) {
    EXPECT_EQ(parse_fuzz_fault(fuzz_fault_name(f)), f);
  }
  EXPECT_EQ(parse_fuzz_fault(""), FuzzFault::kNone);
  EXPECT_THROW((void)parse_fuzz_fault("nonsense"), check_error);
}

TEST(Fuzzer, ReplayCommandEncodesChainOptions) {
  const BinaryTree tree = BinaryTree::from_paren("((..).)");
  FuzzOptions opt;
  opt.fault = FuzzFault::kOverloadRoot;
  opt.chain.include_t2 = false;
  opt.chain.include_t4 = true;
  const std::string cmd = replay_command(tree, opt);
  EXPECT_NE(cmd.find("--replay '((..).)'"), std::string::npos) << cmd;
  EXPECT_NE(cmd.find("--inject=overload-root"), std::string::npos);
  EXPECT_NE(cmd.find("--no-t2"), std::string::npos);
  EXPECT_NE(cmd.find("--t4"), std::string::npos);
  EXPECT_EQ(cmd.find("--no-t3"), std::string::npos);
}

}  // namespace
}  // namespace xt
