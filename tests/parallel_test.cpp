#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <functional>
#include <mutex>
#include <new>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "btree/generators.hpp"
#include "core/xtree_embedder.hpp"
#include "embedding/metrics.hpp"
#include "topology/xtree.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce) {
  for (unsigned workers : {1u, 2u, 3u, 8u}) {
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(0, 1000, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; },
                 workers);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  int count = 0;
  parallel_for(5, 5, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(7, 4, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(3, 4, [&](std::int64_t i) {
    EXPECT_EQ(i, 3);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, NonZeroBase) {
  std::atomic<std::int64_t> sum{0};
  parallel_for(100, 200, [&](std::int64_t i) { sum += i; }, 4);
  std::int64_t want = 0;
  for (std::int64_t i = 100; i < 200; ++i) want += i;
  EXPECT_EQ(sum.load(), want);
}

TEST(ParallelFor, DeterministicOutputPerIndex) {
  // Each index writes its own slot: result independent of workers.
  std::vector<std::int64_t> a(500), b(500);
  parallel_for(0, 500, [&](std::int64_t i) { a[static_cast<std::size_t>(i)] = i * i; }, 1);
  parallel_for(0, 500, [&](std::int64_t i) { b[static_cast<std::size_t>(i)] = i * i; }, 8);
  EXPECT_EQ(a, b);
}

TEST(ParallelFor, WorkerCountSane) {
  EXPECT_GE(parallel_workers(), 1u);
  EXPECT_LE(parallel_workers(), 16u);
}

TEST(ParallelFor, NestedCallsComplete) {
  // A worker body may itself call parallel_for; the caller always
  // claims blocks of its own job, so nesting cannot deadlock on the
  // shared pool.
  constexpr int kOuter = 24;
  constexpr int kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel_for(
      0, kOuter,
      [&](std::int64_t i) {
        parallel_for(
            0, kInner,
            [&](std::int64_t j) {
              ++hits[static_cast<std::size_t>(i * kInner + j)];
            },
            4);
      },
      4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ManySmallCallsReuseThePool) {
  // A long sequence of small parallel_for calls must not spawn threads
  // per call; this is a liveness/correctness smoke over the persistent
  // pool's job queue.
  std::atomic<std::int64_t> sum{0};
  for (int k = 0; k < 2000; ++k) {
    parallel_for(0, 64, [&](std::int64_t i) { sum += i; }, 4);
  }
  EXPECT_EQ(sum.load(), 2000 * (63 * 64 / 2));
}

TEST(ThreadPool, SharedSingletonIsStable) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_threads(), parallel_workers() - 1);
}

// ---------------------------------------------------------------------------
// Task system (submit / TaskFuture / work stealing).  Pools are sized
// explicitly so stealing paths run even on few-core CI machines.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTasks, SubmitReturnsValue) {
  for (unsigned threads : {0u, 1u, 3u}) {
    ThreadPool pool(threads);
    auto f = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(f.get(), 42);
    auto g = pool.submit([] { return std::string("steal me"); });
    EXPECT_EQ(g.get(), "steal me");
  }
}

TEST(ThreadPoolTasks, VoidTaskCompletes) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto f = pool.submit([&] { ++ran; });
  f.get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTasks, ZeroWorkerPoolRunsInlineOnWaiter) {
  // With no pool threads a task can only run when someone waits on it
  // (caller-runs); get() must not block forever.
  ThreadPool pool(0);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPoolTasks, ExceptionPropagatesToGet) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTasks, ManyTasksAllRunOnce) {
  for (unsigned threads : {0u, 2u, 7u}) {
    ThreadPool pool(threads);
    constexpr int kTasks = 500;
    std::vector<std::atomic<int>> hits(kTasks);
    std::vector<TaskFuture<void>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i)
      futures.push_back(pool.submit([&hits, i] { ++hits[static_cast<std::size_t>(i)]; }));
    for (auto& f : futures) f.get();
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTasks, NestedForkJoinFromInsideTasks) {
  // Tasks spawn subtasks and wait on them; caller-runs waits keep this
  // deadlock-free even when the pool has fewer threads than the
  // outstanding wait chain is deep.
  ThreadPool pool(2);
  std::function<std::int64_t(std::int64_t, std::int64_t)> sum_range =
      [&](std::int64_t lo, std::int64_t hi) -> std::int64_t {
    if (hi - lo <= 8) {
      std::int64_t s = 0;
      for (std::int64_t i = lo; i < hi; ++i) s += i;
      return s;
    }
    const std::int64_t mid = lo + (hi - lo) / 2;
    auto right = pool.submit([&, mid, hi] { return sum_range(mid, hi); });
    const std::int64_t left = sum_range(lo, mid);
    return left + right.get();
  };
  constexpr std::int64_t kN = 4000;
  EXPECT_EQ(sum_range(0, kN), kN * (kN - 1) / 2);
}

TEST(ThreadPoolTasks, QueueDepthCountsUnstartedTasks) {
  // With zero pool threads nothing dequeues until we wait, so the
  // gauge must report every submitted-but-unstarted task, and return
  // to zero once they have all run.
  ThreadPool pool(0);
  std::vector<TaskFuture<void>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(pool.submit([] {}));
  EXPECT_EQ(pool.queue_depth(), 5u);
  for (auto& f : futures) f.get();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTasks, QueueDepthDrainsUnderWorkers) {
  ThreadPool pool(3);
  std::vector<TaskFuture<void>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([] {
      volatile int x = 0;
      for (int k = 0; k < 1000; ++k) x = x + k;
    }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ParallelChunks, CoversRangeOnceAnyPoolSize) {
  for (unsigned threads : {0u, 1u, 7u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    parallel_chunks(pool, 0, 1000, 16,
                    [&](std::int64_t, std::int64_t lo, std::int64_t hi) {
                      for (std::int64_t i = lo; i < hi; ++i)
                        ++hits[static_cast<std::size_t>(i)];
                    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelChunks, PartitionIndependentOfPoolSize) {
  // The (chunk_index -> [lo, hi)) map must depend only on the range
  // and chunk count — this is what makes per-chunk reductions
  // bit-identical across worker counts.
  auto partition_of = [](unsigned threads, std::int64_t n, std::int64_t chunks) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<std::array<std::int64_t, 3>> out;
    parallel_chunks(pool, 0, n, chunks,
                    [&](std::int64_t c, std::int64_t lo, std::int64_t hi) {
                      std::lock_guard<std::mutex> lock(mu);
                      out.push_back({c, lo, hi});
                    });
    std::sort(out.begin(), out.end());
    return out;
  };
  for (std::int64_t n : {1, 5, 97, 1000}) {
    for (std::int64_t chunks : {1, 3, 8, 200}) {
      const auto seq = partition_of(0, n, chunks);
      EXPECT_EQ(seq, partition_of(2, n, chunks)) << n << "/" << chunks;
      EXPECT_EQ(seq, partition_of(7, n, chunks)) << n << "/" << chunks;
    }
  }
}

TEST(ParallelChunks, ChunkCountClampedToRange) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_chunks(pool, 0, 3, 100,
                  [&](std::int64_t, std::int64_t lo, std::int64_t hi) {
                    EXPECT_EQ(hi - lo, 1);
                    ++calls;
                  });
  EXPECT_EQ(calls.load(), 3);
}

// ---------------------------------------------------------------------------
// Parallel embed determinism: Options::intra_embed_parallelism must
// never change the output.  50 random trees spanning r = 8..10, each
// embedded with task budgets 1 (the sequential oracle), 2, and 8;
// placements, stats, and dilation profiles must be byte-identical.
// ---------------------------------------------------------------------------

TEST(EmbedderParallel, BitIdenticalPlacementsAcrossTaskBudgets) {
  Rng rng(0x5eed5eedULL);
  for (int t = 0; t < 50; ++t) {
    const std::int32_t r = 8 + (t % 3);
    const NodeId n = 16 * ((NodeId{2} << r) - 1);
    const BinaryTree tree = make_random_tree(n, rng);

    XTreeEmbedder::Options opt;
    // Live discipline checking stays on for a third of the trees: it
    // reads concurrent placements in the parallel sweep, so it is
    // exactly the path a data race would corrupt first.
    opt.check_discipline = (t % 3 == 0);

    std::vector<VertexId> oracle_assign;
    std::vector<std::int32_t> oracle_profile;
    XTreeEmbedder::Stats oracle_stats;
    for (const int budget : {1, 2, 8}) {
      opt.intra_embed_parallelism = budget;
      XTreeEmbedder::EmbedArena arena;
      const auto result = XTreeEmbedder::embed(tree, opt, arena);

      std::vector<VertexId> assign(static_cast<std::size_t>(n));
      for (NodeId v = 0; v < n; ++v)
        assign[static_cast<std::size_t>(v)] = result.embedding.host_of(v);
      const XTree host(result.stats.height);
      const DilationProfile profile =
          dilation_profile_xtree(tree, result.embedding, host);

      if (budget == 1) {
        oracle_assign = assign;
        oracle_profile = profile.per_edge;
        oracle_stats = result.stats;
        continue;
      }
      ASSERT_EQ(assign, oracle_assign) << "tree " << t << " budget " << budget;
      ASSERT_EQ(profile.per_edge, oracle_profile)
          << "tree " << t << " budget " << budget;
      EXPECT_EQ(result.stats.split_calls, oracle_stats.split_calls);
      EXPECT_EQ(result.stats.lemma_splits, oracle_stats.lemma_splits);
      EXPECT_EQ(result.stats.whole_moves, oracle_stats.whole_moves);
      EXPECT_EQ(result.stats.median_fixes, oracle_stats.median_fixes);
      EXPECT_EQ(result.stats.peel_fills, oracle_stats.peel_fills);
      EXPECT_EQ(result.stats.repair_placements,
                oracle_stats.repair_placements);
      EXPECT_EQ(result.stats.discipline_violations,
                oracle_stats.discipline_violations);
      EXPECT_EQ(result.stats.max_observed_embed_distance,
                oracle_stats.max_observed_embed_distance);
    }
  }
}

TEST(EmbedderParallel, ArenaReuseAcrossParallelEmbeds) {
  // One arena threaded through repeated parallel embeds (the service
  // shard pattern): per-chunk arenas persist and results stay equal to
  // fresh-arena runs.
  Rng rng(42);
  XTreeEmbedder::Options opt;
  opt.check_discipline = false;
  XTreeEmbedder::EmbedArena reused;
  for (int t = 0; t < 4; ++t) {
    const BinaryTree tree = make_random_tree(16 * 511, rng);
    opt.intra_embed_parallelism = 8;
    const auto warm = XTreeEmbedder::embed(tree, opt, reused);
    opt.intra_embed_parallelism = 1;
    const auto cold = XTreeEmbedder::embed(tree, opt);
    for (NodeId v = 0; v < tree.num_nodes(); ++v)
      ASSERT_EQ(warm.embedding.host_of(v), cold.embedding.host_of(v))
          << "embed " << t << " node " << v;
  }
}

TEST(ParallelChunks, MixesWithParallelForOnSharedPool) {
  // Block jobs and tasks share the worker loop; interleaving them must
  // not lose work or deadlock.
  ThreadPool& pool = ThreadPool::shared();
  std::atomic<std::int64_t> task_sum{0};
  std::atomic<std::int64_t> for_sum{0};
  parallel_chunks(pool, 0, 256, 16,
                  [&](std::int64_t, std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i) task_sum += i;
                    parallel_for(0, 32, [&](std::int64_t j) { for_sum += j; }, 2);
                  });
  EXPECT_EQ(task_sum.load(), 256 * 255 / 2);
  EXPECT_EQ(for_sum.load(), 16 * (32 * 31 / 2));
}

TEST(ParallelFor, BodyExceptionPropagatesToCaller) {
  // A throwing body must not terminate() a worker: the first exception
  // is captured and rethrown on the calling thread after the job
  // drains.  Blocks other than the throwing one still run in full;
  // within the throwing block, indices after the throw are skipped
  // (4 blocks of 16 over [0,64): the throw at 37 skips 38..47).
  std::atomic<int> ran{0};
  EXPECT_THROW(
      parallel_for(0, 64,
                   [&](std::int64_t i) {
                     if (i == 37) throw std::runtime_error("injected");
                     ++ran;
                   },
                   4),
      std::runtime_error);
  EXPECT_EQ(ran.load(), 64 - 1 - 10);
}

TEST(ParallelFor, PoolSurvivesBodyException) {
  // The shared pool stays fully usable after a propagated exception:
  // a subsequent clean job covers its range exactly once.
  EXPECT_THROW(
      parallel_for(0, 16, [](std::int64_t) { throw std::bad_alloc(); }, 2),
      std::bad_alloc);
  std::vector<std::atomic<int>> hits(128);
  parallel_for(0, 128, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, TaskExceptionRethrownAtFutureGet) {
  // The task path (submit/TaskFuture) carries exceptions through the
  // future, and the worker that ran the throwing body keeps serving.
  ThreadPool& pool = ThreadPool::shared();
  auto bad = pool.submit([]() -> int { throw std::logic_error("task down"); });
  EXPECT_THROW(bad.get(), std::logic_error);
  auto good = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(good.get(), 42);
}

}  // namespace
}  // namespace xt
