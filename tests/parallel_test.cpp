#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/parallel.hpp"

namespace xt {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce) {
  for (unsigned workers : {1u, 2u, 3u, 8u}) {
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(0, 1000, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; },
                 workers);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  int count = 0;
  parallel_for(5, 5, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(7, 4, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(3, 4, [&](std::int64_t i) {
    EXPECT_EQ(i, 3);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, NonZeroBase) {
  std::atomic<std::int64_t> sum{0};
  parallel_for(100, 200, [&](std::int64_t i) { sum += i; }, 4);
  std::int64_t want = 0;
  for (std::int64_t i = 100; i < 200; ++i) want += i;
  EXPECT_EQ(sum.load(), want);
}

TEST(ParallelFor, DeterministicOutputPerIndex) {
  // Each index writes its own slot: result independent of workers.
  std::vector<std::int64_t> a(500), b(500);
  parallel_for(0, 500, [&](std::int64_t i) { a[static_cast<std::size_t>(i)] = i * i; }, 1);
  parallel_for(0, 500, [&](std::int64_t i) { b[static_cast<std::size_t>(i)] = i * i; }, 8);
  EXPECT_EQ(a, b);
}

TEST(ParallelFor, WorkerCountSane) {
  EXPECT_GE(parallel_workers(), 1u);
  EXPECT_LE(parallel_workers(), 16u);
}

TEST(ParallelFor, NestedCallsComplete) {
  // A worker body may itself call parallel_for; the caller always
  // claims blocks of its own job, so nesting cannot deadlock on the
  // shared pool.
  constexpr int kOuter = 24;
  constexpr int kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel_for(
      0, kOuter,
      [&](std::int64_t i) {
        parallel_for(
            0, kInner,
            [&](std::int64_t j) {
              ++hits[static_cast<std::size_t>(i * kInner + j)];
            },
            4);
      },
      4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ManySmallCallsReuseThePool) {
  // A long sequence of small parallel_for calls must not spawn threads
  // per call; this is a liveness/correctness smoke over the persistent
  // pool's job queue.
  std::atomic<std::int64_t> sum{0};
  for (int k = 0; k < 2000; ++k) {
    parallel_for(0, 64, [&](std::int64_t i) { sum += i; }, 4);
  }
  EXPECT_EQ(sum.load(), 2000 * (63 * 64 / 2));
}

TEST(ThreadPool, SharedSingletonIsStable) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_threads(), parallel_workers() - 1);
}

}  // namespace
}  // namespace xt
