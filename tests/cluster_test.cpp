// Multi-process-shaped cluster tests, in one process: N embed shards
// (service + NetServer each) behind a consistent-hash Router fronted
// by its own NetServer — the xt_router deployment — driven over real
// loopback sockets.  Covers digest routing (global identity: the
// routed response is byte-for-byte the shard's response, isomorphic
// trees colocate), structured shard-down degradation with kill and
// restart, zero silent drops under overload with a shard down, and
// the NetClient connect timeout / bounded reconnect-backoff satellite
// (ISSUE 10).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "btree/binary_tree.hpp"
#include "btree/canonical.hpp"
#include "btree/generators.hpp"
#include "net/client.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

constexpr const char* kHost = "127.0.0.1";

/// One embed shard: service + server on a loopback port (0 = pick an
/// ephemeral one; a fixed port restarts a killed shard in place).
struct Shard {
  explicit Shard(std::uint16_t port = 0) {
    ServiceConfig service_config;
    service_config.num_shards = 1;
    service = std::make_unique<EmbeddingService>(service_config);
    NetServerConfig net_config;
    net_config.port = port;
    net_config.num_loops = 1;
    server = std::make_unique<NetServer>(*service, net_config);
    server->start();
  }
  ~Shard() { stop(); }

  void stop() {
    server->stop();
    service->shutdown(/*drain=*/true);
  }

  std::unique_ptr<EmbeddingService> service;
  std::unique_ptr<NetServer> server;
};

/// The full deployment: shards, router, and the router's own edge.
struct Cluster {
  explicit Cluster(std::size_t num_shards, RouterConfig router_config = {}) {
    for (std::size_t i = 0; i < num_shards; ++i)
      shards.push_back(std::make_unique<Shard>());
    for (const auto& shard : shards)
      router_config.shards.push_back(
          RouterShardAddress{kHost, shard->server->port()});
    // Tests want fast failure detection, not production patience.
    router_config.connect.attempts = 2;
    router_config.connect.connect_timeout_ms = 250;
    router_config.connect.backoff_initial_ms = 5;
    router_config.connect.backoff_max_ms = 20;
    router_config.down_cooldown_ms = 100;
    router = std::make_unique<Router>(std::move(router_config));
    router->start();
    NetServerConfig net_config;
    net_config.num_loops = 1;
    front = std::make_unique<NetServer>(*router, net_config);
    front->start();
  }
  ~Cluster() {
    front->stop();
    router->stop();
    for (auto& shard : shards) shard->stop();
  }

  [[nodiscard]] NetClient connect() const {
    NetClient client;
    std::string error;
    EXPECT_TRUE(client.connect(kHost, front->port(), &error)) << error;
    client.set_recv_timeout_ms(20000);
    return client;
  }

  /// Zero-silent-drops check: every submit was answered with exactly
  /// one terminal (a mid-call failure is answered kShardDown, so it
  /// is already inside shard_down_rejections).
  void expect_no_silent_drops() const {
    const RouterStats stats = router->stats();
    EXPECT_EQ(stats.submitted,
              stats.forwarded + stats.shard_down_rejections +
                  stats.overloaded_rejections + stats.shutdown_rejections);
  }

  std::vector<std::unique_ptr<Shard>> shards;
  std::unique_ptr<Router> router;
  std::unique_ptr<NetServer> front;
};

WireFrame paren_request(const std::string& paren, std::uint32_t id) {
  WireFrame f;
  f.format = static_cast<std::uint8_t>(WireFormat::kParen);
  f.code = 0;  // theorem 1
  f.request_id = id;
  f.payload = paren;
  return f;
}

/// Rebuilds `t` with the two children of every node swapped — an
/// isomorphic tree the canonical digest deliberately identifies.
BinaryTree mirrored(const BinaryTree& t) {
  BinaryTree out = BinaryTree::single();
  std::vector<std::pair<NodeId, NodeId>> stack{{t.root(), out.root()}};
  while (!stack.empty()) {
    const auto [ov, nv] = stack.back();
    stack.pop_back();
    // Insert the right child first so it lands in the new node's
    // first child slot.
    for (int w : {1, 0}) {
      const NodeId c = t.child(ov, w);
      if (c != kInvalidNode) stack.emplace_back(c, out.add_child(nv));
    }
  }
  return out;
}

/// The response bytes before the per-request tail (served_seq /
/// latency_ms) — the part that must be identical whenever the same
/// cache entry is served.
std::string cache_prefix(const std::string& payload) {
  const auto cut = payload.find("\"served_seq\"");
  EXPECT_NE(cut, std::string::npos) << payload;
  return payload.substr(0, cut);
}

TEST(Cluster, RoutesRequestsAcrossShardsWithGlobalIdentity) {
  Cluster cluster(3);
  NetClient client = cluster.connect();
  std::string error;

  Rng rng(611);
  std::vector<std::string> parens;
  for (int i = 0; i < 24; ++i)
    parens.push_back(make_random_tree(24, rng).to_paren());

  // Pass 1 warms the shard caches; pass 2 pins each entry's cache-hit
  // response; pass 3 must reproduce pass 2 byte-for-byte up to the
  // per-request tail — the routed response IS the owning shard's
  // response, stable across repeated routing.
  std::uint32_t next_id = 1;
  std::vector<std::string> reference;
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < parens.size(); ++i) {
      WireFrame response;
      ASSERT_TRUE(client.call(paren_request(parens[i], next_id++), &response,
                              &error))
          << error;
      ASSERT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk)
          << response.payload;
      if (pass == 0) continue;
      EXPECT_NE(response.payload.find("\"cache_hit\": true"),
                std::string::npos)
          << response.payload;
      if (pass == 1) {
        reference.push_back(cache_prefix(response.payload));
      } else {
        EXPECT_EQ(cache_prefix(response.payload), reference[i]);
      }
    }
  }

  // Isomorphic trees colocate: a mirrored tree digests identically,
  // so it routes to the same shard and hits the cache entry its twin
  // created — even though these exact bytes were never sent before.
  Rng mirror_rng(612);
  const BinaryTree twin = make_random_tree(24, mirror_rng);
  const BinaryTree twin_mirror = mirrored(twin);
  ASSERT_EQ(canonical_hash(twin), canonical_hash(twin_mirror));
  WireFrame response;
  ASSERT_TRUE(client.call(paren_request(twin.to_paren(), next_id++),
                          &response, &error))
      << error;
  ASSERT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);
  ASSERT_TRUE(client.call(paren_request(twin_mirror.to_paren(), next_id++),
                          &response, &error))
      << error;
  ASSERT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);
  EXPECT_NE(response.payload.find("\"cache_hit\": true"), std::string::npos)
      << "mirror tree should hit the owning shard's cache: "
      << response.payload;

  const RouterStats stats = cluster.router->stats();
  EXPECT_EQ(stats.submitted, stats.forwarded);
  EXPECT_EQ(stats.shard_down_rejections, 0u);
  EXPECT_EQ(stats.overloaded_rejections, 0u);
  // Work actually spread: with 24 distinct shapes on 3 shards every
  // shard should have seen traffic (the chance a working ring lands
  // all 24 on one shard is ~1e-11).
  std::size_t active = 0;
  for (const RouterShardStats& s : stats.shards)
    if (s.forwarded > 0) ++active;
  EXPECT_EQ(active, cluster.shards.size());
  cluster.expect_no_silent_drops();
}

TEST(Cluster, ShardDownIsStructuredAndRecoversAfterRestart) {
  Cluster cluster(2);
  NetClient client = cluster.connect();
  std::string error;

  // Find a tree owned by each shard (via the same ring the router
  // routes on).
  std::vector<std::string> owned_by_shard(2);
  Rng rng(613);
  while (owned_by_shard[0].empty() || owned_by_shard[1].empty()) {
    const BinaryTree t = make_random_tree(16, rng);
    const std::size_t shard = cluster.router->ring().lookup(canonical_hash(t));
    if (owned_by_shard[shard].empty()) owned_by_shard[shard] = t.to_paren();
  }

  // Both shards answer while up.
  for (const std::string& paren : owned_by_shard) {
    WireFrame response;
    ASSERT_TRUE(client.call(paren_request(paren, 1), &response, &error))
        << error;
    EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);
  }

  // Kill shard 0, keeping its port for the restart below.
  const std::uint16_t port0 = cluster.shards[0]->server->port();
  cluster.shards[0]->stop();

  // Shard 0's keyspace degrades to a structured kShardDown (the first
  // call may ride the poisoned connection, so allow a few rounds for
  // the breaker to trip); shard 1 is unaffected throughout.
  WireFrame response;
  bool down_seen = false;
  for (int attempt = 0; attempt < 50 && !down_seen; ++attempt) {
    ASSERT_TRUE(
        client.call(paren_request(owned_by_shard[0], 2), &response, &error))
        << error;
    down_seen =
        static_cast<WireStatus>(response.code) == WireStatus::kShardDown;
    if (!down_seen) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(down_seen) << "shard 0 never reported down";
  EXPECT_NE(response.payload.find("shard-down"), std::string::npos)
      << response.payload;
  ASSERT_TRUE(
      client.call(paren_request(owned_by_shard[1], 3), &response, &error))
      << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);

  // Restart shard 0 on the same port: once the breaker's cooldown
  // lapses the next job re-probes, reconnects, and the keyspace
  // serves again.
  cluster.shards[0] = std::make_unique<Shard>(port0);
  ASSERT_EQ(cluster.shards[0]->server->port(), port0);
  bool recovered = false;
  for (int attempt = 0; attempt < 100 && !recovered; ++attempt) {
    ASSERT_TRUE(
        client.call(paren_request(owned_by_shard[0], 4), &response, &error))
        << error;
    recovered = static_cast<WireStatus>(response.code) == WireStatus::kOk;
    if (!recovered) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(recovered) << "shard 0 never recovered after restart: "
                         << response.payload;

  const RouterStats stats = cluster.router->stats();
  EXPECT_GT(stats.shard_down_rejections, 0u);
  EXPECT_GT(stats.shards[0].reconnects, 0u);
  cluster.expect_no_silent_drops();
}

TEST(Cluster, OverloadWithShardDownDropsNothingSilently) {
  RouterConfig router_config;
  router_config.max_inflight_per_shard = 4;
  router_config.connections_per_shard = 2;
  Cluster cluster(2, router_config);
  cluster.shards[1]->stop();  // one shard down for the whole run

  constexpr int kClients = 4;
  constexpr int kPerClient = 32;
  std::atomic<int> ok{0}, shard_down{0}, overloaded{0}, other{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      NetClient client = cluster.connect();
      std::string error;
      Rng rng(700 + static_cast<std::uint64_t>(c));
      for (int i = 0; i < kPerClient; ++i) {
        const std::string paren = make_random_tree(16, rng).to_paren();
        WireFrame response;
        if (!client.call(paren_request(paren, static_cast<std::uint32_t>(i)),
                         &response, &error)) {
          ++other;  // a transport failure here would be a silent drop
          continue;
        }
        switch (static_cast<WireStatus>(response.code)) {
          case WireStatus::kOk: ++ok; break;
          case WireStatus::kShardDown: ++shard_down; break;
          case WireStatus::kOverloaded:
          case WireStatus::kRejectedQueueFull: ++overloaded; break;
          default: ++other; break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Every request got exactly one structured answer.
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok.load() + shard_down.load() + overloaded.load(),
            kClients * kPerClient);
  EXPECT_GT(ok.load(), 0);          // the live shard kept serving
  EXPECT_GT(shard_down.load(), 0);  // the dead keyspace answered 503s
  cluster.expect_no_silent_drops();
}

TEST(NetClientRetry, ConnectTimesOutInsteadOfHanging) {
  // A listener that never accepts, with a backlog of 1: once the
  // accept queue fills, the kernel drops further SYNs and connect
  // hangs in SYN-retry — exactly the case the timeout bounds.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listener, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener, 1), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  // The first couple of connects land in the accept queue; one soon
  // finds the queue full and must time out instead of hanging.
  std::vector<NetClient> fillers;
  bool timed_out = false;
  for (int i = 0; i < 16 && !timed_out; ++i) {
    NetClient client;
    std::string error;
    const auto t0 = std::chrono::steady_clock::now();
    if (client.connect(kHost, port, &error, /*timeout_ms=*/200)) {
      fillers.push_back(std::move(client));
      continue;
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);
    EXPECT_FALSE(error.empty());
    EXPECT_LT(elapsed.count(), 5000) << "timeout must bound the connect";
    timed_out = true;
  }
  EXPECT_TRUE(timed_out)
      << "no connect hit the full accept queue within 16 attempts";
  ::close(listener);
}

TEST(NetClientRetry, BoundedRetryFailsFastWhenNothingListens) {
  // Grab an ephemeral port nothing listens on by binding and closing.
  std::uint16_t dead_port = 0;
  {
    Shard probe;
    dead_port = probe.server->port();
  }
  NetClient client;
  NetClient::ConnectRetryPolicy policy;
  policy.attempts = 3;
  policy.connect_timeout_ms = 100;
  policy.backoff_initial_ms = 5;
  policy.backoff_max_ms = 10;
  std::string error;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(client.connect_retry(kHost, dead_port, policy, &error));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_FALSE(error.empty());
  EXPECT_LT(elapsed.count(), 2000) << "retry burst must be bounded";
}

TEST(NetClientRetry, ReconnectsAfterKillAndRestart) {
  // The loopback kill/restart drill: connect, kill the server, prove
  // the link fails fast, restart on the same port, reconnect with the
  // bounded backoff policy, and serve on the fresh connection.
  const std::string paren = make_complete_tree(3).to_paren();
  auto shard = std::make_unique<Shard>();
  const std::uint16_t port = shard->server->port();

  NetClient client;
  std::string error;
  ASSERT_TRUE(client.connect(kHost, port, &error)) << error;
  client.set_recv_timeout_ms(5000);
  WireFrame response;
  ASSERT_TRUE(client.call(paren_request(paren, 1), &response, &error))
      << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);

  shard->stop();
  shard.reset();
  EXPECT_FALSE(client.call(paren_request(paren, 2), &response, &error))
      << "call against a killed server must fail, not hang";
  client.close();

  // While the port is dark, a bounded retry burst gives up quickly...
  NetClient::ConnectRetryPolicy policy;
  policy.attempts = 2;
  policy.connect_timeout_ms = 100;
  policy.backoff_initial_ms = 5;
  policy.backoff_max_ms = 10;
  EXPECT_FALSE(client.connect_retry(kHost, port, policy, &error));

  // ...and once the server is back on the same port, a retry burst
  // lands and the connection serves.
  shard = std::make_unique<Shard>(port);
  ASSERT_EQ(shard->server->port(), port);
  policy.attempts = 5;
  ASSERT_TRUE(client.connect_retry(kHost, port, policy, &error)) << error;
  client.set_recv_timeout_ms(5000);
  ASSERT_TRUE(client.call(paren_request(paren, 3), &response, &error))
      << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);
}

}  // namespace
}  // namespace xt
