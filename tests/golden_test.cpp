// Golden regression tests: exact expected outputs for fixed inputs.
// These pin the deterministic behaviour of the pipeline so that
// refactors that change results (rather than merely code) are caught
// deliberately.
#include <gtest/gtest.h>

#include "btree/generators.hpp"
#include "core/lemma3.hpp"
#include "core/xtree_embedder.hpp"
#include "topology/xtree.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

TEST(Golden, RngStreamIsPinned) {
  Rng rng(42);
  // First outputs of xoshiro256** seeded via splitmix64(42).
  const std::uint64_t a = rng();
  const std::uint64_t b = rng();
  Rng rng2(42);
  EXPECT_EQ(rng2(), a);
  EXPECT_EQ(rng2(), b);
  EXPECT_NE(a, b);
}

TEST(Golden, ParenOfCompleteTreeHeightTwo) {
  EXPECT_EQ(make_complete_tree(2).to_paren(),
            "(((..)(..))((..)(..)))");
}

TEST(Golden, ParenOfPathFive) {
  EXPECT_EQ(make_path_tree(5).to_paren(), "(((((..).).).).)");
}

TEST(Golden, GoldenTreeShapeIsPinned) {
  // 10 nodes split 61.8/38.2 at every level.
  EXPECT_EQ(make_golden_tree(10).to_paren(),
            make_golden_tree(10).to_paren());
  const BinaryTree t = make_golden_tree(10);
  const auto sizes = t.subtree_sizes();
  EXPECT_EQ(sizes[static_cast<std::size_t>(t.child(0, 0))], 5);
  EXPECT_EQ(sizes[static_cast<std::size_t>(t.child(0, 1))], 4);
}

TEST(Golden, Lemma3MapOnXTree3) {
  const XTree x(3);
  // delta(alpha) = chi(alpha).1.0^{3-|alpha|}; root "" -> 1000.
  EXPECT_EQ(lemma3_map(x, x.vertex_of_label("")), 0b1000);
  EXPECT_EQ(lemma3_map(x, x.vertex_of_label("0")), 0b0100);
  EXPECT_EQ(lemma3_map(x, x.vertex_of_label("1")), 0b1100);
  EXPECT_EQ(lemma3_map(x, x.vertex_of_label("11")), 0b1010);
  EXPECT_EQ(lemma3_map(x, x.vertex_of_label("111")), 0b1001);  // chi(111)=100
}

TEST(Golden, EmbeddingOfFixedTreeIsPinned) {
  // A fixed 112-node caterpillar into X(2): spot-check specific
  // assignments (regression anchor for the whole pipeline).
  const BinaryTree guest = make_caterpillar_tree(112);
  const auto res = XTreeEmbedder::embed(guest);
  EXPECT_EQ(res.stats.height, 2);
  const XTree host(2);
  // Root seeds at the host root by construction.
  EXPECT_EQ(res.embedding.host_of(guest.root()), host.root());
  // All vertices carry exactly 16.
  for (NodeId l : res.embedding.loads()) EXPECT_EQ(l, 16);
  // The deterministic run always produces the same map.
  const auto res2 = XTreeEmbedder::embed(guest);
  for (NodeId v = 0; v < guest.num_nodes(); ++v)
    EXPECT_EQ(res.embedding.host_of(v), res2.embedding.host_of(v));
}

TEST(Golden, XTreeLabelsOfFirstVertices) {
  const XTree x(3);
  EXPECT_EQ(x.label_of(0), "");
  EXPECT_EQ(x.label_of(1), "0");
  EXPECT_EQ(x.label_of(2), "1");
  EXPECT_EQ(x.label_of(3), "00");
  EXPECT_EQ(x.label_of(7), "000");
  EXPECT_EQ(x.label_of(14), "111");
}

}  // namespace
}  // namespace xt
