#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace xt {
namespace {

TEST(Check, PassingCheckIsSilent) { XT_CHECK(1 + 1 == 2); }

TEST(Check, FailingCheckThrowsWithLocation) {
  try {
    XT_CHECK_MSG(false, "context " << 42);
    FAIL() << "expected check_error";
  } catch (const check_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Summary, PercentilesInterpolate) {
  Summary s;
  for (int i = 0; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(90), 90.0, 1e-9);
}

TEST(IntHistogram, CountsAndClamps) {
  IntHistogram h(4);
  h.add(0);
  h.add(2);
  h.add(2);
  h.add(99);  // clamps into last bucket
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.max_observed(), 4u);
}

TEST(Table, AlignsAndCounts) {
  Table t({"a", "long_header"});
  t.rowf(1, 2.5);
  t.rowf("xyz", 7);
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("long_header"), std::string::npos);
  EXPECT_NE(text.find("2.500"), std::string::npos);
  EXPECT_NE(text.find("xyz"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"only one"}), check_error);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--n=42", "--name", "tree", "pos1", "--flag"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 42);
  EXPECT_EQ(cli.get("name", ""), "tree");
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

}  // namespace
}  // namespace xt
