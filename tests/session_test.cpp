// SessionManager functional tests: lifecycle, serial-write ordering,
// versioned reads, backpressure, drop semantics, and the end-to-end
// mutation accounting identity.  Concurrency hammering lives in
// session_stress_test.cpp (TSan lane); this file is single-purpose
// correctness.
#include "service/session.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "embedding/metrics.hpp"

namespace xt {
namespace {

std::vector<MutationOp> ops_from_script(const std::string& text) {
  MutationScript script;
  std::string error;
  EXPECT_TRUE(parse_mutation_script(text, &script, &error)) << error;
  return script.ops;
}

TEST(SessionManagerTest, CreateQueryDropLifecycle) {
  SessionManager mgr;
  EXPECT_EQ(mgr.create("t1", 4, 16), SessionStatus::kOk);
  EXPECT_EQ(mgr.create("t1", 4, 16), SessionStatus::kAlreadyExists);

  std::uint64_t seen_version = 0;
  NodeId seen_n = 0;
  const auto status = mgr.with_snapshot(
      "t1", 0, [&](const EmbeddingSnapshot& snap) {
        seen_version = snap.version;
        seen_n = snap.tree.num_nodes();
        EXPECT_EQ(snapshot_checksum(snap), snap.checksum);
      });
  EXPECT_EQ(status, SessionStatus::kOk);
  EXPECT_EQ(seen_version, 1u);  // create publishes version 1
  EXPECT_EQ(seen_n, 1);         // single root

  EXPECT_EQ(mgr.drop("t1"), SessionStatus::kOk);
  EXPECT_EQ(mgr.drop("t1"), SessionStatus::kNotFound);
  EXPECT_EQ(mgr.with_snapshot("t1", 0, [](const EmbeddingSnapshot&) {}),
            SessionStatus::kNotFound);
}

TEST(SessionManagerTest, RejectsBadCreateArguments) {
  SessionManager mgr;
  std::string reason;
  EXPECT_EQ(mgr.create("", 4, 16, &reason), SessionStatus::kBadRequest);
  EXPECT_FALSE(reason.empty());
  EXPECT_EQ(mgr.create("has space", 4, 16), SessionStatus::kBadRequest);
  EXPECT_EQ(mgr.create(std::string(65, 'a'), 4, 16),
            SessionStatus::kBadRequest);
  EXPECT_EQ(mgr.create("ok", 26, 16), SessionStatus::kBadRequest);
  EXPECT_EQ(mgr.create("ok", 4, 0), SessionStatus::kBadRequest);
  EXPECT_EQ(mgr.create("ok-id_0.9", 4, 16), SessionStatus::kOk);
}

TEST(SessionManagerTest, EnforcesSessionCap) {
  SessionConfig config;
  config.max_sessions = 2;
  SessionManager mgr(config);
  EXPECT_EQ(mgr.create("a"), SessionStatus::kOk);
  EXPECT_EQ(mgr.create("b"), SessionStatus::kOk);
  EXPECT_EQ(mgr.create("c"), SessionStatus::kTooManySessions);
  EXPECT_EQ(mgr.drop("a"), SessionStatus::kOk);
  EXPECT_EQ(mgr.create("c"), SessionStatus::kOk);
}

TEST(SessionManagerTest, MutationsApplyInOrderAndPublishDenseVersions) {
  SessionManager mgr;
  ASSERT_EQ(mgr.create("t", 4, 16), SessionStatus::kOk);

  // Three batches; versions must come back 2, 3, 4 in order.
  auto o1 = mgr.mutate_sync("t", ops_from_script("add 0\nadd 0\n"));
  auto o2 = mgr.mutate_sync("t", ops_from_script("add 1\n"));
  auto o3 = mgr.mutate_sync("t", ops_from_script("remove-leaf 3\n"));
  ASSERT_EQ(o1.status, SessionStatus::kOk);
  ASSERT_EQ(o2.status, SessionStatus::kOk);
  ASSERT_EQ(o3.status, SessionStatus::kOk);
  EXPECT_EQ(o1.version, 2u);
  EXPECT_EQ(o2.version, 3u);
  EXPECT_EQ(o3.version, 4u);

  ASSERT_EQ(o1.records.size(), 2u);
  EXPECT_TRUE(o1.records[0].ok);
  EXPECT_EQ(o1.records[0].leaf, 1);
  EXPECT_TRUE(o1.records[1].ok);
  EXPECT_EQ(o1.records[1].leaf, 2);
  ASSERT_EQ(o2.records.size(), 1u);
  EXPECT_EQ(o2.records[0].leaf, 3);
  ASSERT_EQ(o3.records.size(), 1u);
  EXPECT_TRUE(o3.records[0].ok);

  // Latest snapshot reflects all of it: root + 2 children (leaf 3
  // came and went).
  mgr.with_snapshot("t", 0, [&](const EmbeddingSnapshot& snap) {
    EXPECT_EQ(snap.version, 4u);
    EXPECT_EQ(snap.tree.num_nodes(), 3);
    EXPECT_NO_THROW(validate_embedding(snap.tree, snap.embedding, 16));
  });
}

TEST(SessionManagerTest, FailedOpsAreRecordedNotFatal) {
  SessionManager mgr;
  ASSERT_EQ(mgr.create("t", 4, 16), SessionStatus::kOk);
  const auto out = mgr.mutate_sync(
      "t", ops_from_script("remove-leaf 0\nadd 99\nadd 0\nmove 1 1\n"));
  ASSERT_EQ(out.status, SessionStatus::kOk);
  ASSERT_EQ(out.records.size(), 4u);
  EXPECT_FALSE(out.records[0].ok);  // root is not removable
  EXPECT_EQ(out.records[0].error, "is_root");
  EXPECT_FALSE(out.records[1].ok);  // unknown parent
  EXPECT_EQ(out.records[1].error, "invalid_parent");
  EXPECT_TRUE(out.records[2].ok);
  EXPECT_FALSE(out.records[3].ok);  // move under itself
  EXPECT_EQ(out.records[3].error, "would_cycle");

  const auto stats = mgr.stats();
  EXPECT_EQ(stats.ops_applied, 4u);
  EXPECT_EQ(stats.ops_rejected, 3u);
  EXPECT_EQ(stats.ops_applied,
            stats.ops_repaired + stats.ops_escalated + stats.ops_rejected);
}

TEST(SessionManagerTest, VersionPinnedReadsSurviveNewPublishes) {
  SessionConfig config;
  config.max_versions_retained = 4;
  SessionManager mgr(config);
  ASSERT_EQ(mgr.create("t", 4, 16), SessionStatus::kOk);
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(mgr.mutate_sync("t", ops_from_script("add 0\nadd 0\n")).status,
              SessionStatus::kOk);
  // Versions 1..4 exist; all four are still in the ring.
  for (std::uint64_t v = 1; v <= 4; ++v) {
    const auto status =
        mgr.with_snapshot("t", v, [&](const EmbeddingSnapshot& snap) {
          EXPECT_EQ(snap.version, v);
          EXPECT_EQ(snapshot_checksum(snap), snap.checksum);
        });
    EXPECT_EQ(status, SessionStatus::kOk) << "version " << v;
  }
  // Publish one more; version 1's slot is recycled.
  ASSERT_EQ(mgr.mutate_sync("t", ops_from_script("add 0\n")).status,
            SessionStatus::kOk);
  EXPECT_EQ(mgr.with_snapshot("t", 1, [](const EmbeddingSnapshot&) {}),
            SessionStatus::kVersionGone);
  EXPECT_EQ(mgr.with_snapshot("t", 2, [](const EmbeddingSnapshot&) {}),
            SessionStatus::kOk);
  // Future versions are gone too, not a crash.
  EXPECT_EQ(mgr.with_snapshot("t", 99, [](const EmbeddingSnapshot&) {}),
            SessionStatus::kVersionGone);
}

TEST(SessionManagerTest, MutateUnknownSessionAnswersNotFound) {
  SessionManager mgr;
  std::atomic<int> called{0};
  mgr.mutate("nope", ops_from_script("add 0\n"), [&](MutateOutcome out) {
    EXPECT_EQ(out.status, SessionStatus::kNotFound);
    called.fetch_add(1);
  });
  EXPECT_EQ(called.load(), 1);  // rejection runs on the calling thread
}

TEST(SessionManagerTest, ShutdownWithoutDrainAnswersShutdown) {
  auto mgr = std::make_unique<SessionManager>();
  ASSERT_EQ(mgr->create("t", 4, 16), SessionStatus::kOk);
  mgr->shutdown(/*drain=*/false);
  const auto out = mgr->mutate_sync("t", ops_from_script("add 0\n"));
  EXPECT_EQ(out.status, SessionStatus::kShutdown);
}

TEST(SessionManagerTest, EscalationIsAccountedAndSnapshotStaysValid) {
  SessionConfig config;
  config.policy = MutationPolicy{/*max_repair_nodes=*/2,
                                 /*max_dilation=*/1};
  SessionManager mgr(config);
  ASSERT_EQ(mgr.create("t", 5, 2), SessionStatus::kOk);
  // Dense growth on a tight machine (load 2, dilation bound 1) must
  // trip repair or escalation somewhere in 200 adds.
  std::vector<MutationOp> ops;
  NodeId next = 1;
  for (int i = 0; i < 200; ++i) {
    ops.push_back({MutationOpKind::kAddLeaf,
                   static_cast<NodeId>(i == 0 ? 0 : (i / 2)), kInvalidNode});
    (void)next;
  }
  const auto out = mgr.mutate_sync("t", std::move(ops));
  ASSERT_EQ(out.status, SessionStatus::kOk);
  const auto stats = mgr.stats();
  EXPECT_EQ(stats.ops_applied, 200u);
  EXPECT_EQ(stats.ops_applied,
            stats.ops_repaired + stats.ops_escalated + stats.ops_rejected);
  // The snapshot after all that is still certificate-valid and its
  // metric fields match a recount.
  mgr.with_snapshot("t", 0, [&](const EmbeddingSnapshot& snap) {
    EXPECT_NO_THROW(validate_embedding(snap.tree, snap.embedding, 2));
    const XTree host(snap.host_height);
    EXPECT_EQ(snap.dilation,
              dilation_xtree(snap.tree, snap.embedding, host).max);
    EXPECT_EQ(snap.max_load, snap.embedding.load_factor());
  });
}

TEST(SessionManagerTest, StatsJsonCarriesQueueAndSessionGauges) {
  SessionManager mgr;
  ASSERT_EQ(mgr.create("a"), SessionStatus::kOk);
  ASSERT_EQ(mgr.create("b"), SessionStatus::kOk);
  const std::string json = mgr.stats_json();
  EXPECT_NE(json.find("\"sessions_active\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mutation_queue_capacity\": 256"), std::string::npos)
      << json;
  const auto ids = mgr.session_ids();
  EXPECT_EQ(ids.size(), 2u);
}

TEST(SessionJsonTest, EscapeShieldsHostileStrings) {
  EXPECT_EQ(json_escape("plain-id_0.9"), "plain-id_0.9");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01")+ "b"), "ab");  // dropped

  // A wire-supplied id ends up in MutateOutcome.reason; the body must
  // stay well-formed JSON even when the id carries quotes.
  MutateOutcome outcome;
  outcome.status = SessionStatus::kNotFound;
  outcome.reason = "unknown session '\"};evil'";
  const std::string body = mutate_outcome_json(outcome);
  EXPECT_NE(body.find("unknown session '\\\"};evil'"), std::string::npos)
      << body;
  EXPECT_EQ(body.find("'\"}"), std::string::npos) << body;
}

TEST(SessionManagerTest, EmbeddingJsonRoundTripsCoreFields) {
  SessionManager mgr;
  ASSERT_EQ(mgr.create("t", 4, 16), SessionStatus::kOk);
  ASSERT_EQ(mgr.mutate_sync("t", ops_from_script("add 0\nadd 0\n")).status,
            SessionStatus::kOk);
  std::string body;
  mgr.with_snapshot("t", 0, [&](const EmbeddingSnapshot& snap) {
    body = session_embedding_json("t", snap);
  });
  EXPECT_NE(body.find("\"id\": \"t\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"version\": 2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"n\": 3"), std::string::npos) << body;
  EXPECT_NE(body.find("\"stable\": [0, 1, 2]"), std::string::npos) << body;
}

}  // namespace
}  // namespace xt
