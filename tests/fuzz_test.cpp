// Randomised end-to-end fuzzing: arbitrary sizes (not just the
// theorems' exact forms), every family, many seeds — the pipeline must
// always produce a valid complete embedding within the load cap, and
// dilation must stay a small constant.
//
// XT_FUZZ_TRIALS / XT_FUZZ_SEED scale and steer the randomised suites
// (same contract as tools/xt_fuzz): CI nightlies export bigger trial
// counts, and a failing seed from any fuzzer run can be replayed here
// verbatim.  Every trial carries a SCOPED_TRACE with its replay
// command, so a red test prints its own reproduction line.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "btree/generators.hpp"
#include "core/injective_lift.hpp"
#include "core/xtree_embedder.hpp"
#include "embedding/metrics.hpp"
#include "sim/workloads.hpp"
#include "topology/xtree.hpp"
#include "util/rng.hpp"
#include "verify/fuzzer.hpp"

namespace xt {
namespace {

int env_trials(int fallback) {
  const char* raw = std::getenv("XT_FUZZ_TRIALS");
  if (raw == nullptr || *raw == '\0') return fallback;
  const long v = std::strtol(raw, nullptr, 0);
  return v > 0 ? static_cast<int>(v) : fallback;
}

std::uint64_t env_seed(std::uint64_t fallback) {
  const char* raw = std::getenv("XT_FUZZ_SEED");
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::strtoull(raw, nullptr, 0);
}

TEST(Fuzz, ArbitrarySizesAllFamilies) {
  Rng rng(env_seed(0xF00D));
  const int trials = env_trials(120);
  for (int trial = 0; trial < trials; ++trial) {
    const auto n = static_cast<NodeId>(1 + rng.below(900));
    const auto& families = tree_family_names();
    const std::string family =
        families[static_cast<std::size_t>(rng.below(families.size()))];
    const BinaryTree guest = make_family_tree(family, n, rng);
    SCOPED_TRACE("replay: xt_fuzz --replay '" + guest.to_paren() + "'");
    const auto res = XTreeEmbedder::embed(guest);
    validate_embedding(guest, res.embedding, 16);
    const XTree host(res.stats.height);
    const auto rep = dilation_xtree(guest, res.embedding, host);
    EXPECT_LE(rep.max, 6) << family << " n=" << n << " trial=" << trial;
  }
}

TEST(Fuzz, CertificateChainHoldsOnRandomTrees) {
  // The differential harness end to end: every certified claim of the
  // T1/T2/T3 pipeline re-checked through the oracle.  On failure the
  // SCOPED_TRACE line is a ready-to-run reproduction command.
  FuzzOptions opt;
  opt.seed = env_seed(opt.seed);
  opt.trials = env_trials(20);
  opt.max_nodes = 260;
  const FuzzReport report = run_fuzz(opt);
  EXPECT_EQ(report.trials, opt.trials);
  for (const FuzzViolation& v : report.violations) {
    SCOPED_TRACE(v.replay);
    ADD_FAILURE() << "trial " << v.trial << " (" << v.family
                  << "): " << v.failure << "\n  minimized ("
                  << v.shrunk_nodes << " nodes): " << v.shrunk_paren;
  }
}

TEST(Fuzz, ExactFormsStayAtDilationThree) {
  Rng rng(0xBEEF);
  for (int trial = 0; trial < 40; ++trial) {
    const auto r = static_cast<std::int32_t>(2 + rng.below(5));
    const auto n = static_cast<NodeId>(16 * ((std::int64_t{2} << r) - 1));
    const auto& families = tree_family_names();
    const std::string family =
        families[static_cast<std::size_t>(rng.below(families.size()))];
    const BinaryTree guest = make_family_tree(family, n, rng);
    const auto res = XTreeEmbedder::embed(guest);
    const XTree host(res.stats.height);
    EXPECT_LE(dilation_xtree(guest, res.embedding, host).max, 3)
        << family << " r=" << r << " trial=" << trial;
    EXPECT_EQ(res.embedding.load_factor(), 16);
  }
}

TEST(Fuzz, LiftsOfFuzzedEmbeddingsStayInjectiveAndBounded) {
  Rng rng(0xCAFE);
  for (int trial = 0; trial < 25; ++trial) {
    const auto n = static_cast<NodeId>(30 + rng.below(500));
    const BinaryTree guest = make_random_tree(n, rng);
    const auto base = XTreeEmbedder::embed(guest);
    const XTree base_host(base.stats.height);
    const auto lift = lift_injective(guest, base.embedding, base_host);
    const XTree lifted(lift.host_height);
    EXPECT_TRUE(lift.embedding.injective());
    EXPECT_LE(dilation_xtree(guest, lift.embedding, lifted).max, 14)
        << "n=" << n;
  }
}

TEST(Fuzz, SimulatorNeverWedgesOnFuzzedInputs) {
  Rng rng(0xD1CE);
  for (int trial = 0; trial < 15; ++trial) {
    const auto n = static_cast<NodeId>(10 + rng.below(300));
    const BinaryTree guest = make_random_tree(n, rng);
    const auto res = XTreeEmbedder::embed(guest);
    const XTree xtree(res.stats.height);
    const Graph host = xtree.to_graph();
    NetworkSim sim(host, guest, res.embedding);
    for (Workload w : all_workloads()) {
      const SimResult out = run_workload(sim, w);
      EXPECT_GT(out.cycles, 0);
      EXPECT_EQ(out.messages >= 0, true);
    }
  }
}

TEST(Fuzz, SeedStability) {
  // Same seed => identical tree and identical embedding, across all
  // families (regression guard for hidden global state).
  for (const auto& family : tree_family_names()) {
    Rng rng_a(99);
    Rng rng_b(99);
    const BinaryTree a = make_family_tree(family, 333, rng_a);
    const BinaryTree b = make_family_tree(family, 333, rng_b);
    ASSERT_EQ(a.to_paren(), b.to_paren()) << family;
    const auto ra = XTreeEmbedder::embed(a);
    const auto rb = XTreeEmbedder::embed(b);
    for (NodeId v = 0; v < a.num_nodes(); ++v)
      ASSERT_EQ(ra.embedding.host_of(v), rb.embedding.host_of(v)) << family;
  }
}

}  // namespace
}  // namespace xt
