// Exhaustive sweeps over ALL binary trees of small sizes — the
// strongest form of property coverage for the separator engine and the
// embedding pipeline.  Binary trees with distinguishable child slots
// are counted by the Catalan numbers (1, 2, 5, 14, 42, 132, 429 for
// n = 1..7), so full enumeration is cheap up to n ~ 8.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "btree/binary_tree.hpp"
#include "core/xtree_embedder.hpp"
#include "embedding/metrics.hpp"
#include "separator/piece.hpp"
#include "separator/splitter.hpp"
#include "topology/xtree.hpp"

namespace xt {
namespace {

// Enumerates all ordered binary trees with exactly n nodes as paren
// strings ("(LR)" with "." for an absent child).
std::vector<std::string> all_trees(NodeId n) {
  static std::vector<std::vector<std::string>> memo{{/* n = 0 */ "."}};
  while (static_cast<NodeId>(memo.size()) <= n) {
    const auto size = static_cast<NodeId>(memo.size());
    std::vector<std::string> result;
    for (NodeId left = 0; left < size; ++left) {
      for (const auto& l : memo[static_cast<std::size_t>(left)]) {
        for (const auto& r :
             memo[static_cast<std::size_t>(size - 1 - left)]) {
          result.push_back("(" + l + r + ")");
        }
      }
    }
    memo.push_back(std::move(result));
  }
  return memo[static_cast<std::size_t>(n)];
}

std::int64_t catalan(int n) {
  std::int64_t c = 1;
  for (int i = 0; i < n; ++i) c = c * 2 * (2 * i + 1) / (i + 2);
  return c;
}

TEST(Enumeration, CountsMatchCatalan) {
  for (NodeId n = 1; n <= 8; ++n)
    EXPECT_EQ(static_cast<std::int64_t>(all_trees(n).size()), catalan(n))
        << "n=" << n;
}

TEST(Enumeration, AllTreesParseAndValidate) {
  for (NodeId n = 1; n <= 7; ++n) {
    for (const auto& paren : all_trees(n)) {
      const BinaryTree t = BinaryTree::from_paren(paren);
      t.validate();
      EXPECT_EQ(t.num_nodes(), n);
      EXPECT_EQ(t.to_paren(), paren);
    }
  }
}

TEST(ExhaustiveSplitter, EveryTreeEveryDesignatedPairEveryTarget) {
  // All trees of 4..7 nodes, all (d0, d1) pairs, all legal deltas —
  // the full contract of validate_split on every instance.
  for (NodeId n = 4; n <= 7; ++n) {
    for (const auto& paren : all_trees(n)) {
      const BinaryTree t = BinaryTree::from_paren(paren);
      for (NodeId d0 = 0; d0 < n; ++d0) {
        for (NodeId d1 = d0; d1 < n; ++d1) {
          Piece piece;
          for (NodeId v = 0; v < n; ++v) piece.nodes.push_back(v);
          piece.add_designated(d0);
          if (d1 != d0) piece.add_designated(d1);
          for (NodeId delta = 1; delta < n; ++delta) {
            for (SplitQuality q :
                 {SplitQuality::kLemma1, SplitQuality::kLemma2}) {
              const SplitResult res = split_piece(t, piece, delta, q);
              validate_split(t, piece, res);
            }
          }
        }
      }
    }
  }
}

TEST(ExhaustiveSplitter, BalanceBoundOnAllSixNodeTrees) {
  // With the precondition 3n > 4*delta, the lemma tolerances hold on
  // every instance (no sampling gaps).
  const NodeId n = 6;
  for (const auto& paren : all_trees(n)) {
    const BinaryTree t = BinaryTree::from_paren(paren);
    Piece piece;
    for (NodeId v = 0; v < n; ++v) piece.nodes.push_back(v);
    piece.add_designated(0);
    for (NodeId delta = 1; 3 * n > 4 * delta; ++delta) {
      const SplitResult res =
          split_piece(t, piece, delta, SplitQuality::kLemma2);
      if (res.remain_total == 0) continue;
      EXPECT_LE(std::abs(res.extract_total - delta),
                std::max<NodeId>(lemma2_tolerance(delta), 1))
          << paren << " delta=" << delta;
    }
  }
}

TEST(ExhaustiveFind2, EveryTreeEveryDesignatedPairEveryTarget) {
  // The literal find2 case analysis on every instance: structural
  // contract plus the paper's |S_i| <= 4 boundary bound.
  for (NodeId n = 4; n <= 7; ++n) {
    for (const auto& paren : all_trees(n)) {
      const BinaryTree t = BinaryTree::from_paren(paren);
      for (NodeId d0 = 0; d0 < n; ++d0) {
        for (NodeId d1 = d0; d1 < n; ++d1) {
          Piece piece;
          for (NodeId v = 0; v < n; ++v) piece.nodes.push_back(v);
          piece.add_designated(d0);
          if (d1 != d0) piece.add_designated(d1);
          for (NodeId delta = 1; delta < n; ++delta) {
            const SplitResult res = split_piece_find2(t, piece, delta);
            validate_split(t, piece, res);
            EXPECT_LE(res.embed_extract.size(), 4u)
                << paren << " d=(" << d0 << "," << d1 << ") delta=" << delta;
            EXPECT_LE(res.embed_remain.size(), 4u)
                << paren << " d=(" << d0 << "," << d1 << ") delta=" << delta;
          }
        }
      }
    }
  }
}

TEST(ExhaustiveFind2, BalanceBoundOnAllSixNodeTrees) {
  const NodeId n = 6;
  for (const auto& paren : all_trees(n)) {
    const BinaryTree t = BinaryTree::from_paren(paren);
    for (NodeId d0 = 0; d0 < n; ++d0) {
      for (NodeId d1 = 0; d1 < n; ++d1) {
        Piece piece;
        for (NodeId v = 0; v < n; ++v) piece.nodes.push_back(v);
        piece.add_designated(d0);
        if (d1 != d0) piece.add_designated(d1);
        for (NodeId delta = 1; 3 * n > 4 * delta; ++delta) {
          const SplitResult res = split_piece_find2(t, piece, delta);
          if (res.remain_total == 0) continue;
          EXPECT_LE(std::abs(res.extract_total - delta),
                    std::max<NodeId>(lemma2_tolerance(delta), 1))
              << paren << " delta=" << delta;
        }
      }
    }
  }
}

TEST(ExhaustiveEmbedding, EveryTinyTreeEmbedsValidly) {
  // Every tree with up to 7 nodes goes through the full Theorem 1
  // pipeline (they all land in X(0), but exercise seeding and fill).
  for (NodeId n = 1; n <= 7; ++n) {
    for (const auto& paren : all_trees(n)) {
      const BinaryTree t = BinaryTree::from_paren(paren);
      const auto res = XTreeEmbedder::embed(t);
      validate_embedding(t, res.embedding, 16);
    }
  }
}

TEST(ExhaustiveEmbedding, AllFiveNodeTreesAcrossForcedHeights) {
  // Forcing taller hosts exercises the multi-round machinery even for
  // tiny guests (rounds with nearly-empty pools).
  for (const auto& paren : all_trees(5)) {
    const BinaryTree t = BinaryTree::from_paren(paren);
    for (std::int32_t height : {1, 2, 3}) {
      XTreeEmbedder::Options opt;
      opt.height = height;
      const auto res = XTreeEmbedder::embed(t, opt);
      validate_embedding(t, res.embedding, 16);
      const XTree host(height);
      EXPECT_LE(dilation_xtree(t, res.embedding, host).max, 3)
          << paren << " h=" << height;
    }
  }
}

}  // namespace
}  // namespace xt
