#include <gtest/gtest.h>

#include "graph/bfs.hpp"
#include "graph/graph.hpp"
#include "util/check.hpp"

namespace xt {
namespace {

Graph path_graph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph cycle_graph(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

TEST(Graph, BuildsCsrWithSortedNeighbors) {
  GraphBuilder b(4);
  b.add_edge(2, 0);
  b.add_edge(0, 1);
  b.add_edge(3, 0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 3u);
  const auto nbr = g.neighbors(0);
  ASSERT_EQ(nbr.size(), 3u);
  EXPECT_EQ(nbr[0], 1);
  EXPECT_EQ(nbr[1], 2);
  EXPECT_EQ(nbr[2], 3);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Graph, DeduplicatesParallelEdges) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, RejectsSelfLoop) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(1, 1), check_error);
}

TEST(Graph, HasEdgeAndEdgeList) {
  const Graph g = path_graph(4);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
  const auto edges = g.edge_list();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].first, 0);
  EXPECT_EQ(edges[0].second, 1);
}

TEST(Graph, DotOutputContainsEdges) {
  const Graph g = path_graph(3);
  const std::string dot = g.to_dot("P");
  EXPECT_NE(dot.find("graph P"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
}

TEST(Bfs, DistancesOnPath) {
  const Graph g = path_graph(5);
  const auto d = bfs_distances(g, 0);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(d[static_cast<std::size_t>(v)], v);
  EXPECT_EQ(bfs_distance(g, 0, 4), 4);
  EXPECT_EQ(bfs_distance(g, 4, 4), 0);
}

TEST(Bfs, UnreachableIsMarked) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(bfs_distance(g, 0, 2), kUnreachable);
  EXPECT_FALSE(is_connected(g));
}

TEST(Bfs, ShortestPathEndpoints) {
  const Graph g = cycle_graph(6);
  const auto path = bfs_shortest_path(g, 0, 3);
  ASSERT_EQ(path.size(), 4u);  // distance 3 on a 6-cycle
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 3);
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
}

TEST(Bfs, ShortestPathTrivialAndMissing) {
  const Graph g = path_graph(3);
  const auto self = bfs_shortest_path(g, 1, 1);
  ASSERT_EQ(self.size(), 1u);
  GraphBuilder b(2);
  const Graph disconnected = b.build();
  EXPECT_TRUE(bfs_shortest_path(disconnected, 0, 1).empty());
}

TEST(Bfs, EccentricityAndDiameter) {
  const Graph g = path_graph(7);
  EXPECT_EQ(eccentricity(g, 0), 6);
  EXPECT_EQ(eccentricity(g, 3), 3);
  EXPECT_EQ(diameter(g), 6);
  EXPECT_EQ(diameter(cycle_graph(8)), 4);
}

TEST(Bfs, WorkspaceMatchesOneShot) {
  const Graph g = cycle_graph(9);
  BfsWorkspace ws(g);
  for (VertexId s : {0, 4, 8}) {
    const auto& fast = ws.run(s);
    const auto slow = bfs_distances(g, s);
    EXPECT_EQ(fast, slow);
  }
}

}  // namespace
}  // namespace xt
