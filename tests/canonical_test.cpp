// Tests for the AHU-style canonical tree digest (btree/canonical.hpp)
// that keys the service cache: isomorphic trees must collide, distinct
// shapes must not, and the digest must be a pure function of the shape
// (stable across runs and processes).
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "btree/canonical.hpp"
#include "btree/generators.hpp"
#include "core/xtree_embedder.hpp"
#include "embedding/metrics.hpp"
#include "topology/xtree.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

// Rebuilds `t` with the two children of every node swapped.
BinaryTree mirrored(const BinaryTree& t) {
  BinaryTree out = BinaryTree::single();
  std::vector<std::pair<NodeId, NodeId>> stack{{t.root(), out.root()}};
  while (!stack.empty()) {
    const auto [ov, nv] = stack.back();
    stack.pop_back();
    // Insert the right child first so it lands in the new node's
    // first child slot.
    for (int w : {1, 0}) {
      const NodeId c = t.child(ov, w);
      if (c != kInvalidNode) stack.emplace_back(c, out.add_child(nv));
    }
  }
  return out;
}

// Rebuilds `t` with children randomly swapped per node.
BinaryTree shuffled(const BinaryTree& t, Rng& rng) {
  BinaryTree out = BinaryTree::single();
  std::vector<std::pair<NodeId, NodeId>> stack{{t.root(), out.root()}};
  while (!stack.empty()) {
    const auto [ov, nv] = stack.back();
    stack.pop_back();
    const bool swap = rng.below(2) == 1;
    for (int w : {1, 0}) {
      const NodeId c = t.child(ov, swap ? 1 - w : w);
      if (c != kInvalidNode) stack.emplace_back(c, out.add_child(nv));
    }
  }
  return out;
}

TEST(CanonicalHash, MirroredTreesCollide) {
  Rng rng(900);
  for (const auto& family : tree_family_names()) {
    const BinaryTree t = make_family_tree(family, 1008, rng);
    const BinaryTree m = mirrored(t);
    EXPECT_EQ(canonical_hash(t), canonical_hash(m)) << family;
  }
}

TEST(CanonicalHash, ChildOrderPermutationsCollide) {
  Rng rng(901);
  for (const auto& family : tree_family_names()) {
    const BinaryTree t = make_family_tree(family, 1008, rng);
    for (int trial = 0; trial < 3; ++trial) {
      const BinaryTree s = shuffled(t, rng);
      EXPECT_EQ(canonical_hash(t), canonical_hash(s))
          << family << " trial " << trial;
    }
  }
}

TEST(CanonicalHash, AllFamiliesDistinctAtLargeN) {
  // The 9 generator families at n ~ 1008 all have different unordered
  // shapes; their digests must be pairwise distinct.
  Rng rng(902);
  std::map<std::uint64_t, std::string> seen;
  for (const auto& family : tree_family_names()) {
    const BinaryTree t = make_family_tree(family, 1008, rng);
    const auto h = canonical_hash(t);
    const auto [it, inserted] = seen.emplace(h, family);
    EXPECT_TRUE(inserted) << family << " collides with " << it->second;
  }
  EXPECT_EQ(seen.size(), tree_family_names().size());
}

TEST(CanonicalHash, DistinguishesCloseShapes) {
  Rng rng(903);
  // Same node count, slightly different shape.
  EXPECT_NE(canonical_hash(make_comb_tree(1008, 2)),
            canonical_hash(make_comb_tree(1008, 3)));
  EXPECT_NE(canonical_hash(make_path_tree(1008)),
            canonical_hash(make_caterpillar_tree(1008)));
  // Different node count, same family.
  EXPECT_NE(canonical_hash(make_path_tree(1008)),
            canonical_hash(make_path_tree(1009)));
}

TEST(CanonicalHash, StableAcrossRunsGoldenValues) {
  // The digest is a pure function of the shape — no addresses, no
  // per-process salt.  These constants pin it; a change here is a
  // cache-format break (bump docs/service.md if intentional).
  EXPECT_EQ(canonical_hash(BinaryTree::single()), 0x2a4c004b6ae97d7fULL);
  EXPECT_EQ(canonical_hash(make_path_tree(10)), 0x681e819f0b5d2b55ULL);
  EXPECT_EQ(canonical_hash(make_complete_tree(3)), 0x8ecb22da59c0ff83ULL);
  EXPECT_EQ(ordered_hash(make_comb_tree(16, 2)), 0x9dc17de79e08aa53ULL);
}

TEST(CanonicalHash, OrderedHashDistinguishesMirrors) {
  // An asymmetric shape: ordered digest separates the mirror, the
  // canonical digest identifies it.
  const BinaryTree t = make_comb_tree(64, 2);
  const BinaryTree m = mirrored(t);
  EXPECT_NE(ordered_hash(t), ordered_hash(m));
  EXPECT_EQ(canonical_hash(t), canonical_hash(m));
  // A mirror-symmetric shape: both digests agree with the mirror.
  const BinaryTree c = make_complete_tree(4);
  EXPECT_EQ(ordered_hash(c), ordered_hash(mirrored(c)));
}

TEST(CanonicalForm, HashMatchesCanonicalHash) {
  Rng rng(904);
  const BinaryTree t = make_random_tree(500, rng);
  EXPECT_EQ(canonical_form(t).hash, canonical_hash(t));
}

TEST(CanonicalForm, RelabellingIsAPermutation) {
  Rng rng(905);
  const BinaryTree t = make_random_tree(777, rng);
  const auto form = canonical_form(t);
  std::vector<char> hit(static_cast<std::size_t>(t.num_nodes()), 0);
  for (NodeId v = 0; v < t.num_nodes(); ++v) {
    const NodeId c = form.to_canonical[static_cast<std::size_t>(v)];
    ASSERT_GE(c, 0);
    ASSERT_LT(c, t.num_nodes());
    EXPECT_EQ(hit[static_cast<std::size_t>(c)], 0);
    hit[static_cast<std::size_t>(c)] = 1;
  }
}

TEST(CanonicalForm, TransfersEmbeddingsBetweenIsomorphicTrees) {
  // The cache mechanics end to end: embed T, store the assignment by
  // canonical id, remap onto an isomorphic T' — the result must be a
  // valid embedding of T' with identical dilation and load.
  Rng rng(906);
  const BinaryTree t = make_random_tree(496, rng);
  const BinaryTree s = shuffled(t, rng);
  ASSERT_EQ(canonical_hash(t), canonical_hash(s));

  const auto res = XTreeEmbedder::embed(t);
  const XTree host(res.stats.height);
  const auto t_dil = dilation_xtree(t, res.embedding, host);

  const auto form_t = canonical_form(t);
  const auto form_s = canonical_form(s);
  std::vector<VertexId> by_canonical(static_cast<std::size_t>(t.num_nodes()));
  for (NodeId v = 0; v < t.num_nodes(); ++v) {
    by_canonical[static_cast<std::size_t>(
        form_t.to_canonical[static_cast<std::size_t>(v)])] =
        res.embedding.host_of(v);
  }
  Embedding remapped(s.num_nodes(), host.num_vertices());
  for (NodeId v = 0; v < s.num_nodes(); ++v) {
    remapped.place(v, by_canonical[static_cast<std::size_t>(
                          form_s.to_canonical[static_cast<std::size_t>(v)])]);
  }
  validate_embedding(s, remapped, res.embedding.load_factor());
  const auto s_dil = dilation_xtree(s, remapped, host);
  EXPECT_EQ(s_dil.max, t_dil.max);
  EXPECT_EQ(remapped.load_factor(), res.embedding.load_factor());
}

TEST(CanonicalForm, RawArrayOverloadIsBitIdentical) {
  // The zero-copy bulk pipeline digests trees straight from mmap'd
  // SoA arrays; that overload is pinned to the BinaryTree one here.
  Rng rng(911);
  std::vector<BinaryTree> trees{BinaryTree::single(), make_path_tree(17),
                                make_complete_tree(5)};
  for (int i = 0; i < 8; ++i) trees.push_back(make_random_tree(97, rng));
  for (const BinaryTree& t : trees) {
    const CanonicalForm a = canonical_form(t);
    const CanonicalForm b =
        canonical_form(t.num_nodes(), t.left_data(), t.right_data());
    EXPECT_EQ(a.hash, b.hash);
    EXPECT_EQ(a.to_canonical, b.to_canonical);
    EXPECT_EQ(canonical_hash(t),
              canonical_hash(t.num_nodes(), t.left_data(), t.right_data()));
  }
}

}  // namespace
}  // namespace xt
