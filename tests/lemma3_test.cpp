// Lemma 3: X(r) embeds injectively into Q_{r+1} with additive
// distance stretch <= 1.
#include <gtest/gtest.h>

#include <set>

#include "core/lemma3.hpp"
#include "graph/bfs.hpp"
#include "topology/hypercube.hpp"
#include "topology/xtree.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

class Lemma3Exhaustive : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(Lemma3Exhaustive, InjectiveAndStretchAtMostOne) {
  const std::int32_t r = GetParam();
  const XTree x(r);
  const Hypercube q(lemma3_dimension(x));
  std::set<VertexId> images;
  for (VertexId v = 0; v < x.num_vertices(); ++v) {
    const VertexId h = lemma3_map(x, v);
    EXPECT_TRUE(q.contains(h));
    EXPECT_TRUE(images.insert(h).second) << "collision at " << x.label_of(v);
  }
  // All-pairs stretch check.
  const Graph g = x.to_graph();
  for (VertexId a = 0; a < x.num_vertices(); ++a) {
    const auto dist = bfs_distances(g, a);
    const VertexId ha = lemma3_map(x, a);
    for (VertexId b = 0; b < x.num_vertices(); ++b) {
      const std::int32_t dq = q.distance(ha, lemma3_map(x, b));
      EXPECT_LE(dq, dist[static_cast<std::size_t>(b)] + 1)
          << x.label_of(a) << " -> " << x.label_of(b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Heights, Lemma3Exhaustive,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Lemma3, EdgesMapWithinDistanceTwo) {
  const XTree x(10);
  const Hypercube q(11);
  std::vector<VertexId> nbr;
  Rng rng(31);
  for (int trial = 0; trial < 500; ++trial) {
    const auto a = static_cast<VertexId>(rng.below(x.num_vertices()));
    nbr.clear();
    x.neighbors(a, nbr);
    for (VertexId b : nbr) {
      EXPECT_LE(q.distance(lemma3_map(x, a), lemma3_map(x, b)), 2);
    }
  }
}

TEST(Lemma3, HorizontalEdgesMapToHypercubeEdges) {
  // The proof shows sibling-successor pairs differ in exactly one chi
  // bit, hence distance exactly 1.
  const XTree x(9);
  const Hypercube q(10);
  for (std::int32_t level = 1; level <= 9; ++level) {
    const std::int64_t count = std::int64_t{1} << level;
    for (std::int64_t p = 0; p + 1 < count; p += 17) {
      const VertexId a = XTree::id_of({level, p});
      const VertexId b = XTree::id_of({level, p + 1});
      EXPECT_EQ(q.distance(lemma3_map(x, a), lemma3_map(x, b)), 1)
          << x.label_of(a);
    }
  }
}

TEST(Lemma3, SampledStretchOnLargeInstance) {
  const XTree x(12);
  const Hypercube q(13);
  Rng rng(88);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = static_cast<VertexId>(rng.below(x.num_vertices()));
    const auto b = static_cast<VertexId>(rng.below(x.num_vertices()));
    EXPECT_LE(q.distance(lemma3_map(x, a), lemma3_map(x, b)),
              x.distance(a, b) + 1);
  }
}

}  // namespace
}  // namespace xt
