#include <gtest/gtest.h>

#include <algorithm>

#include "graph/bfs.hpp"
#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/complete_binary_tree.hpp"
#include "topology/debruijn.hpp"
#include "topology/grid.hpp"
#include "topology/hypercube.hpp"
#include "topology/xtree.hpp"

namespace xt {
namespace {

// --- X-tree (Figure 1: the X-tree of height 3) ---------------------------

TEST(XTreeTopology, SizesMatchClosedForms) {
  for (std::int32_t r = 0; r <= 10; ++r) {
    const XTree x(r);
    EXPECT_EQ(x.num_vertices(), (std::int64_t{2} << r) - 1);
    const Graph g = x.to_graph();
    EXPECT_EQ(g.num_vertices(), x.num_vertices());
    EXPECT_EQ(static_cast<std::int64_t>(g.num_edges()), x.num_edges());
  }
}

TEST(XTreeTopology, NumEdgesClosedFormula) {
  // Tree edges 2^{r+1}-2 plus cross edges sum_{l=1..r}(2^l - 1)
  // = 2^{r+1}-r-2, so num_edges = 2^{r+2} - r - 4.
  for (std::int32_t r = 0; r <= 20; ++r) {
    const XTree x(r);
    EXPECT_EQ(x.num_edges(), (std::int64_t{4} << r) - r - 4) << "r=" << r;
  }
}

TEST(XTreeTopology, Figure1HeightThreeInstance) {
  const XTree x(3);
  EXPECT_EQ(x.num_vertices(), 15);
  // tree edges 14 + cross edges (1 + 3 + 7) = 25.
  EXPECT_EQ(x.num_edges(), 25);
  const Graph g = x.to_graph();
  EXPECT_EQ(g.max_degree(), 5u);
  EXPECT_TRUE(is_connected(g));
  // Root "" has two children and no horizontal neighbours.
  EXPECT_EQ(g.degree(x.vertex_of_label("")), 2u);
  // "01" has parent, two children, and both horizontal neighbours.
  EXPECT_EQ(g.degree(x.vertex_of_label("01")), 5u);
  // Level-3 corner "000": parent + successor only.
  EXPECT_EQ(g.degree(x.vertex_of_label("000")), 2u);
}

TEST(XTreeTopology, LabelRoundTrip) {
  const XTree x(4);
  for (VertexId v = 0; v < x.num_vertices(); ++v) {
    const std::string label = x.label_of(v);
    EXPECT_EQ(x.vertex_of_label(label), v);
    EXPECT_EQ(static_cast<std::int32_t>(label.size()), x.level_of(v));
  }
}

TEST(XTreeTopology, StructureAccessors) {
  const XTree x(3);
  const VertexId v = x.vertex_of_label("01");
  EXPECT_EQ(x.parent(v), x.vertex_of_label("0"));
  EXPECT_EQ(x.child(v, 0), x.vertex_of_label("010"));
  EXPECT_EQ(x.child(v, 1), x.vertex_of_label("011"));
  EXPECT_EQ(x.successor(v), x.vertex_of_label("10"));
  EXPECT_EQ(x.predecessor(v), x.vertex_of_label("00"));
  EXPECT_EQ(x.parent(x.root()), kInvalidVertex);
  EXPECT_EQ(x.successor(x.vertex_of_label("11")), kInvalidVertex);
  EXPECT_EQ(x.predecessor(x.vertex_of_label("00")), kInvalidVertex);
  EXPECT_TRUE(x.is_leaf(x.vertex_of_label("000")));
  EXPECT_FALSE(x.is_leaf(v));
}

TEST(XTreeTopology, SuccessorCrossesSubtreeBoundary) {
  const XTree x(4);
  // successor("0111") = "1000": the horizontal edge linking the two
  // halves — the edge ADJUST uses to shift mass between siblings.
  EXPECT_EQ(x.successor(x.vertex_of_label("0111")),
            x.vertex_of_label("1000"));
}

// --- complete binary tree --------------------------------------------------

TEST(CompleteBinaryTree, DistanceMatchesBfs) {
  const CompleteBinaryTree t(5);
  const Graph g = t.to_graph();
  for (VertexId a = 0; a < t.num_vertices(); a += 7) {
    const auto d = bfs_distances(g, a);
    for (VertexId b = 0; b < t.num_vertices(); ++b)
      EXPECT_EQ(t.distance(a, b), d[static_cast<std::size_t>(b)]);
  }
}

TEST(CompleteBinaryTree, ParentChildLevels) {
  const CompleteBinaryTree t(3);
  EXPECT_EQ(t.level_of(0), 0);
  EXPECT_EQ(t.level_of(14), 3);
  EXPECT_EQ(t.parent(5), 2);
  EXPECT_EQ(t.child(2, 1), 6);
  EXPECT_EQ(t.child(14, 0), kInvalidVertex);
}

// --- hypercube ---------------------------------------------------------------

TEST(Hypercube, StructureAndDistance) {
  const Hypercube q(4);
  EXPECT_EQ(q.num_vertices(), 16);
  EXPECT_EQ(q.num_edges(), 32);
  const Graph g = q.to_graph();
  EXPECT_EQ(g.max_degree(), 4u);
  for (VertexId a = 0; a < q.num_vertices(); ++a) {
    const auto d = bfs_distances(g, a);
    for (VertexId b = 0; b < q.num_vertices(); ++b)
      EXPECT_EQ(q.distance(a, b), d[static_cast<std::size_t>(b)]);
  }
  EXPECT_EQ(diameter(g), 4);
}

// --- cube-connected cycles ---------------------------------------------------

TEST(CubeConnectedCycles, ConstantDegreeThree) {
  const CubeConnectedCycles c(3);
  EXPECT_EQ(c.num_vertices(), 24);
  const Graph g = c.to_graph();
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_TRUE(is_connected(g));
}

TEST(CubeConnectedCycles, VertexCoding) {
  const CubeConnectedCycles c(4);
  const VertexId v = c.id_of(9, 2);
  EXPECT_EQ(c.corner_of(v), 9);
  EXPECT_EQ(c.cycle_of(v), 2);
}

// --- butterfly ----------------------------------------------------------------

TEST(Butterfly, StructureAndConnectivity) {
  const Butterfly b(3);
  EXPECT_EQ(b.num_vertices(), 32);  // (d+1) * 2^d
  const Graph g = b.to_graph();
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.max_degree(), 4u);
  // Boundary levels have degree 2.
  EXPECT_EQ(g.degree(b.id_of(0, 0)), 2u);
  EXPECT_EQ(g.degree(b.id_of(3, 0)), 2u);
}

// --- de Bruijn / shuffle-exchange ------------------------------------------

TEST(DeBruijn, StructureAndConnectivity) {
  for (std::int32_t d : {2, 3, 4, 6}) {
    const DeBruijn db(d);
    EXPECT_EQ(db.num_vertices(), std::int64_t{1} << d);
    const Graph g = db.to_graph();
    EXPECT_TRUE(is_connected(g));
    EXPECT_LE(g.max_degree(), 4u);
  }
}

TEST(DeBruijn, LogarithmicDiameter) {
  // dist(x, y) <= d: shift y in, bit by bit.
  for (std::int32_t d : {3, 4, 5, 6}) {
    const DeBruijn db(d);
    EXPECT_LE(diameter(db.to_graph()), d);
  }
}

TEST(ShuffleExchange, StructureAndConnectivity) {
  for (std::int32_t d : {2, 3, 4, 6}) {
    const ShuffleExchange se(d);
    EXPECT_EQ(se.num_vertices(), std::int64_t{1} << d);
    const Graph g = se.to_graph();
    EXPECT_TRUE(is_connected(g));
    EXPECT_LE(g.max_degree(), 3u);
  }
}

TEST(ShuffleExchange, ShuffleIsARotation) {
  const ShuffleExchange se(4);
  EXPECT_EQ(se.shuffle(0b0001), 0b0010);
  EXPECT_EQ(se.shuffle(0b1000), 0b0001);
  EXPECT_EQ(se.shuffle(0b1010), 0b0101);
  // d applications = identity.
  for (VertexId v = 0; v < se.num_vertices(); ++v) {
    VertexId x = v;
    for (int i = 0; i < 4; ++i) x = se.shuffle(x);
    EXPECT_EQ(x, v);
  }
}

// --- X-tree global properties ------------------------------------------------

TEST(XTreeTopology, DiameterIsTwoRMinusOne) {
  // Corner-to-corner at the deepest level: climb to where the
  // horizontal gap closes.  Exact closed form 2r-1 for r >= 1.
  for (std::int32_t r = 1; r <= 8; ++r) {
    const XTree x(r);
    EXPECT_EQ(diameter(x.to_graph()), 2 * r - 1) << "r=" << r;
  }
}

// --- grid ----------------------------------------------------------------------

TEST(Grid, ManhattanDistanceMatchesBfs) {
  const Grid g(5, 4);
  EXPECT_EQ(g.num_vertices(), 20);
  const Graph graph = g.to_graph();
  for (VertexId a = 0; a < g.num_vertices(); a += 3) {
    const auto d = bfs_distances(graph, a);
    for (VertexId b = 0; b < g.num_vertices(); ++b)
      EXPECT_EQ(g.distance(a, b), d[static_cast<std::size_t>(b)]);
  }
}

}  // namespace
}  // namespace xt
