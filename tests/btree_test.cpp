#include <gtest/gtest.h>

#include <algorithm>

#include "btree/binary_tree.hpp"
#include "btree/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

TEST(BinaryTree, SingleNode) {
  const BinaryTree t = BinaryTree::single();
  EXPECT_EQ(t.num_nodes(), 1);
  EXPECT_TRUE(t.is_leaf(0));
  EXPECT_EQ(t.degree(0), 0);
  EXPECT_EQ(t.height(), 0);
  t.validate();
}

TEST(BinaryTree, AddChildBuildsStructure) {
  BinaryTree t = BinaryTree::single();
  const NodeId a = t.add_child(0);
  const NodeId b = t.add_child(0);
  const NodeId c = t.add_child(a);
  t.validate();
  EXPECT_EQ(t.num_nodes(), 4);
  EXPECT_EQ(t.parent(c), a);
  EXPECT_EQ(t.num_children(0), 2);
  EXPECT_EQ(t.degree(a), 2);
  EXPECT_EQ(t.degree(0), 2);
  EXPECT_THROW(t.add_child(0), check_error);  // already two children
  EXPECT_EQ(t.num_leaves(), 2);
  EXPECT_EQ(t.height(), 2);
  (void)b;
}

TEST(BinaryTree, SubtreeSizesAndDepths) {
  const BinaryTree t = make_complete_tree(3);
  const auto sizes = t.subtree_sizes();
  EXPECT_EQ(sizes[0], 15);
  EXPECT_EQ(sizes[static_cast<std::size_t>(t.child(0, 0))], 7);
  const auto depth = t.depths();
  EXPECT_EQ(depth[0], 0);
  EXPECT_EQ(*std::max_element(depth.begin(), depth.end()), 3);
}

TEST(BinaryTree, ParenRoundTrip) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const BinaryTree t = make_random_tree(1 + static_cast<NodeId>(rng.below(200)), rng);
    const std::string s = t.to_paren();
    const BinaryTree back = BinaryTree::from_paren(s);
    EXPECT_EQ(back.num_nodes(), t.num_nodes());
    EXPECT_EQ(back.to_paren(), s);
  }
}

TEST(BinaryTree, ParenDistinguishesChildSlots) {
  // Left-only vs right-only single child.
  const BinaryTree left = BinaryTree::from_paren("((..).)");
  const BinaryTree right = BinaryTree::from_paren("(.(..))");
  EXPECT_EQ(left.num_nodes(), 2);
  EXPECT_EQ(right.num_nodes(), 2);
  EXPECT_NE(left.to_paren(), right.to_paren());
}

TEST(BinaryTree, FromParenRejectsMalformed) {
  EXPECT_THROW(BinaryTree::from_paren("(()"), check_error);
  EXPECT_THROW(BinaryTree::from_paren("(..))"), check_error);
  EXPECT_THROW(BinaryTree::from_paren("(x)"), check_error);
  EXPECT_THROW(BinaryTree::from_paren("(...)"), check_error);
}

TEST(Generators, CompleteTree) {
  const BinaryTree t = make_complete_tree(4);
  t.validate();
  EXPECT_EQ(t.num_nodes(), 31);
  EXPECT_EQ(t.height(), 4);
  EXPECT_EQ(t.num_leaves(), 16);
}

TEST(Generators, PathTree) {
  const BinaryTree t = make_path_tree(10);
  t.validate();
  EXPECT_EQ(t.num_nodes(), 10);
  EXPECT_EQ(t.height(), 9);
  EXPECT_EQ(t.num_leaves(), 1);
}

TEST(Generators, CaterpillarTree) {
  const BinaryTree t = make_caterpillar_tree(20);
  t.validate();
  EXPECT_EQ(t.num_nodes(), 20);
  // Roughly half the nodes are pendant leaves.
  EXPECT_GE(t.num_leaves(), 9);
}

TEST(Generators, CombAndBroom) {
  const BinaryTree comb = make_comb_tree(25, 3);
  comb.validate();
  EXPECT_EQ(comb.num_nodes(), 25);
  const BinaryTree broom = make_broom_tree(40);
  broom.validate();
  EXPECT_EQ(broom.num_nodes(), 40);
}

TEST(Generators, RemyProducesFullTrees) {
  Rng rng(17);
  for (NodeId leaves : {1, 2, 3, 10, 50}) {
    const BinaryTree t = make_remy_tree(leaves, rng);
    EXPECT_EQ(t.num_nodes(), 2 * leaves - 1);
    EXPECT_EQ(t.num_leaves(), leaves);
    for (NodeId v = 0; v < t.num_nodes(); ++v)
      EXPECT_NE(t.num_children(v), 1);  // full: 0 or 2 children
  }
}

TEST(Generators, RemyIsReasonablyBalancedOnAverage) {
  // Expected height of a uniform full binary tree is Theta(sqrt(n));
  // a gross regression (e.g. always a path) would blow this bound.
  Rng rng(1234);
  double total_height = 0;
  const int trials = 30;
  for (int i = 0; i < trials; ++i)
    total_height += make_remy_tree(200, rng).height();
  EXPECT_LT(total_height / trials, 120.0);
  EXPECT_GT(total_height / trials, 10.0);
}

TEST(Generators, RandomTreeExactSize) {
  Rng rng(5);
  for (NodeId n : {1, 2, 3, 4, 15, 16, 100, 101}) {
    const BinaryTree t = make_random_tree(n, rng);
    t.validate();
    EXPECT_EQ(t.num_nodes(), n);
  }
}

TEST(Generators, RandomBstAndAttachment) {
  Rng rng(6);
  const BinaryTree bst = make_random_bst_tree(300, rng);
  bst.validate();
  EXPECT_EQ(bst.num_nodes(), 300);
  const BinaryTree att = make_random_attachment_tree(300, rng);
  att.validate();
  EXPECT_EQ(att.num_nodes(), 300);
}

class FamilyGenerator : public ::testing::TestWithParam<std::string> {};

TEST_P(FamilyGenerator, ProducesValidTreeOfExactSize) {
  Rng rng(42);
  for (NodeId n : {1, 2, 7, 48, 240}) {
    const BinaryTree t = make_family_tree(GetParam(), n, rng);
    t.validate();
    EXPECT_EQ(t.num_nodes(), n) << GetParam();
    for (NodeId v = 0; v < t.num_nodes(); ++v) EXPECT_LE(t.degree(v), 3);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyGenerator,
                         ::testing::ValuesIn(tree_family_names()));

TEST(Generators, UnknownFamilyThrows) {
  Rng rng(1);
  EXPECT_THROW(make_family_tree("nope", 10, rng), check_error);
}

}  // namespace
}  // namespace xt
