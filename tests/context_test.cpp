// Tests for the §1 context constructions: CBT -> butterfly subgraph
// embedding, the generic greedy graph embedder, and graph dilation.
#include <gtest/gtest.h>

#include "baseline/butterfly_embeddings.hpp"
#include "baseline/graph_embed.hpp"
#include "core/lemma3.hpp"
#include "graph/bfs.hpp"
#include "topology/butterfly.hpp"
#include "topology/complete_binary_tree.hpp"
#include "topology/grid.hpp"
#include "topology/hypercube.hpp"
#include "topology/xtree.hpp"
#include "util/check.hpp"

namespace xt {
namespace {

TEST(CbtIntoButterfly, DilationExactlyOne) {
  for (std::int32_t d : {2, 3, 4, 5, 6}) {
    const CompleteBinaryTree cbt(d);
    const Butterfly bf(d);
    const Embedding emb = cbt_into_butterfly(cbt, bf);
    EXPECT_TRUE(emb.injective());
    const auto rep = graph_dilation(cbt.to_graph(), emb, bf.to_graph());
    EXPECT_EQ(rep.max, 1) << "d=" << d;  // a subgraph embedding
  }
}

TEST(CbtIntoButterfly, RejectsTooSmallHost) {
  const CompleteBinaryTree cbt(5);
  const Butterfly bf(3);
  EXPECT_THROW(cbt_into_butterfly(cbt, bf), check_error);
}

TEST(CbtIntoButterfly, LevelsAlign) {
  const CompleteBinaryTree cbt(4);
  const Butterfly bf(6);
  const Embedding emb = cbt_into_butterfly(cbt, bf);
  for (VertexId v = 0; v < cbt.num_vertices(); ++v)
    EXPECT_EQ(bf.level_of(emb.host_of(static_cast<NodeId>(v))),
              cbt.level_of(v));
}

TEST(GreedyGraphEmbed, ValidLoadRespectingEmbedding) {
  const XTree x(5);
  const Graph guest = x.to_graph();
  const Hypercube q(6);
  const Graph host = q.to_graph();
  const Embedding emb = greedy_graph_embed(guest, host, 1);
  EXPECT_TRUE(emb.complete());
  EXPECT_TRUE(emb.injective());
}

TEST(GreedyGraphEmbed, LoadCapHonoured) {
  const Grid small_host(2, 2);
  const XTree guest_tree(3);  // 15 vertices into 4 hosts at load 4
  const Embedding emb =
      greedy_graph_embed(guest_tree.to_graph(), small_host.to_graph(), 4);
  EXPECT_TRUE(emb.complete());
  EXPECT_LE(emb.load_factor(), 4);
}

TEST(GreedyGraphEmbed, RejectsInsufficientCapacity) {
  const Grid host(2, 2);
  const XTree guest(3);
  EXPECT_THROW(greedy_graph_embed(guest.to_graph(), host.to_graph(), 3),
               check_error);
}

TEST(GraphDilation, IdentityEmbeddingHasDilationOne) {
  const Hypercube q(4);
  const Graph g = q.to_graph();
  Embedding id(static_cast<NodeId>(g.num_vertices()), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    id.place(static_cast<NodeId>(v), v);
  const auto rep = graph_dilation(g, id, g);
  EXPECT_EQ(rep.max, 1);
  EXPECT_DOUBLE_EQ(rep.mean, 1.0);
}

TEST(GraphDilation, Lemma3EdgesWithinTwo) {
  const XTree x(7);
  const Hypercube q(8);
  Embedding emb(static_cast<NodeId>(x.num_vertices()), q.num_vertices());
  for (VertexId v = 0; v < x.num_vertices(); ++v)
    emb.place(static_cast<NodeId>(v), lemma3_map(x, v));
  const auto rep = graph_dilation(x.to_graph(), emb, q.to_graph());
  EXPECT_LE(rep.max, 2);
}

TEST(ContextShape, XtreeIntoButterflyWorseThanIntoHypercube) {
  // The [3] obstruction in miniature: at d = 6 the greedy butterfly
  // embedding is already strictly worse than the Lemma 3 hypercube
  // embedding.
  const std::int32_t d = 6;
  const XTree x(d);
  const Graph guest = x.to_graph();

  const Hypercube q(d + 1);
  Embedding via_lemma3(static_cast<NodeId>(x.num_vertices()),
                       q.num_vertices());
  for (VertexId v = 0; v < x.num_vertices(); ++v)
    via_lemma3.place(static_cast<NodeId>(v), lemma3_map(x, v));
  const auto cube_rep = graph_dilation(guest, via_lemma3, q.to_graph());

  const Butterfly bf(d);
  const Embedding greedy = greedy_graph_embed(guest, bf.to_graph(), 1);
  const auto bf_rep = graph_dilation(guest, greedy, bf.to_graph());

  EXPECT_LT(cube_rep.max, bf_rep.max);
}

}  // namespace
}  // namespace xt
