// End-to-end loopback tests for the embed server: real sockets on an
// ephemeral 127.0.0.1 port, both protocols, concurrent clients, the
// failure modes the event loop must survive (mid-frame disconnects,
// slow consumers, garbage bytes), the service/server accounting
// identity, and fd hygiene.  The suite must pass under TSan — every
// cross-thread handoff in src/net/ is exercised here.
#include <dirent.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "btree/binary_tree.hpp"
#include "btree/generators.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "service/service.hpp"
#include "service/session.hpp"

// Thread-local allocation counting for the steady-state hit-path test:
// when armed, every global new/delete on the calling thread bumps the
// counter.  Replacing ::operator new is binary-wide, so the override
// is a single thread_local increment when disarmed — noise for the
// other tests, not a behavior change.
namespace {
thread_local bool t_count_allocs = false;
thread_local std::uint64_t t_alloc_count = 0;
}  // namespace

// GCC pairs the replaced operators against its builtin knowledge of
// new/delete and misfires -Wmismatched-new-delete on the free() calls;
// the replacement set below is internally consistent (all malloc/free).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  if (t_count_allocs) ++t_alloc_count;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) {
  if (t_count_allocs) ++t_alloc_count;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace xt {
namespace {

constexpr const char* kHost = "127.0.0.1";

int open_fd_count() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

/// Service + server on an ephemeral port, torn down in order.
struct Harness {
  explicit Harness(NetServerConfig net_config = {},
                   ServiceConfig service_config = {}) {
    if (service_config.num_shards == 0) service_config.num_shards = 2;
    service = std::make_unique<EmbeddingService>(service_config);
    net_config.port = 0;
    if (net_config.num_loops == 0) net_config.num_loops = 2;
    server = std::make_unique<NetServer>(*service, net_config);
    server->start();
  }
  ~Harness() {
    server->stop();
    service->shutdown(/*drain=*/true);
  }

  [[nodiscard]] NetClient connect() const {
    NetClient client;
    std::string error;
    EXPECT_TRUE(client.connect(kHost, server->port(), &error)) << error;
    client.set_recv_timeout_ms(20000);
    return client;
  }

  /// submitted == completed + rejected + expired + failed: every
  /// admitted request is answered exactly once, whatever the path.
  void expect_accounting_identity() const {
    const ServiceStats s = service->stats();
    EXPECT_EQ(s.submitted, s.completed + s.rejected_full +
                               s.rejected_shutdown + s.expired + s.failed);
  }

  std::unique_ptr<EmbeddingService> service;
  std::unique_ptr<NetServer> server;
};

WireFrame paren_request(const std::string& paren, std::uint32_t id,
                        std::uint8_t flags = 0) {
  WireFrame f;
  f.format = static_cast<std::uint8_t>(WireFormat::kParen);
  f.code = 0;  // theorem 1
  f.flags = flags;
  f.request_id = id;
  f.payload = paren;
  return f;
}

TEST(NetLoopback, StartStopIsCleanAndIdempotent) {
  Harness h;
  EXPECT_GT(h.server->port(), 0);
  h.server->stop();
  h.server->stop();
  const NetServerStats stats = h.server->stats();
  EXPECT_EQ(stats.open_connections, 0u);
  EXPECT_EQ(stats.inflight, 0u);
}

TEST(NetLoopback, ServesBinaryFramesInOrder) {
  Harness h;
  NetClient client = h.connect();
  std::string error;

  // Pipeline three requests, then read three responses: they must
  // come back in submission order with ids echoed.
  std::string batch;
  batch += encode_frame(paren_request("((..)(..))", 1));
  batch += encode_frame(paren_request("(.(..))", 2, kWireFlagWantEmbedding));
  batch += encode_frame(paren_request("((.(..))(..))", 3));
  ASSERT_TRUE(client.send_all(batch, &error)) << error;

  for (std::uint32_t id = 1; id <= 3; ++id) {
    WireFrame response;
    ASSERT_TRUE(client.recv_frame(&response, &error)) << error;
    EXPECT_EQ(response.request_id, id);
    EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);
    EXPECT_NE(response.payload.find("\"status\": \"ok\""), std::string::npos);
    // want_embedding is honoured per request.
    const bool has_embedding =
        response.payload.find("\"embedding\"") != std::string::npos;
    EXPECT_EQ(has_embedding, id == 2) << response.payload;
  }
  client.close();
  h.expect_accounting_identity();
}

TEST(NetLoopback, ServesAllThreePayloadFormats) {
  Harness h;
  NetClient client = h.connect();
  std::string error;
  const BinaryTree tree = BinaryTree::from_paren("((.(..))(..))");

  WireFrame paren = paren_request(tree.to_paren(), 10);
  WireFrame newick = paren_request("((,),(,));", 11);
  newick.format = static_cast<std::uint8_t>(WireFormat::kNewick);
  WireFrame record = paren_request("", 12);
  record.format = static_cast<std::uint8_t>(WireFormat::kXtb1Record);
  record.payload = encode_xtb1_record(tree);

  for (const WireFrame* request : {&paren, &newick, &record}) {
    WireFrame response;
    ASSERT_TRUE(client.call(*request, &response, &error)) << error;
    EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk)
        << response.payload;
    EXPECT_EQ(response.request_id, request->request_id);
  }
}

TEST(NetLoopback, MalformedPayloadIsBadRequestAndConnectionSurvives) {
  Harness h;
  NetClient client = h.connect();
  std::string error;

  WireFrame bad = paren_request("((..)", 20);  // unbalanced
  WireFrame response;
  ASSERT_TRUE(client.call(bad, &response, &error)) << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kBadRequest);
  EXPECT_NE(response.payload.find("\"status\": \"bad-request\""),
            std::string::npos)
      << response.payload;

  // A payload-level error is per-request; the connection stays usable.
  WireFrame good = paren_request("((..)(..))", 21);
  ASSERT_TRUE(client.call(good, &response, &error)) << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);

  // An unknown theorem code is also a per-request kBadRequest.
  WireFrame theorem = paren_request("((..)(..))", 22);
  theorem.code = 9;
  ASSERT_TRUE(client.call(theorem, &response, &error)) << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kBadRequest);

  EXPECT_GE(h.server->stats().bad_requests, 2u);
  h.expect_accounting_identity();
}

TEST(NetLoopback, FramingErrorGetsOneErrorFrameThenClose) {
  Harness h;
  NetClient client = h.connect();
  std::string error;
  // Starts with the magic (so the sniffer picks binary), then garbage.
  std::string garbage = "xtn1";
  garbage.append(60, '\xff');
  ASSERT_TRUE(client.send_all(garbage, &error)) << error;

  WireFrame response;
  ASSERT_TRUE(client.recv_frame(&response, &error)) << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kBadRequest);
  // After the error frame the server closes: the next read is EOF.
  EXPECT_FALSE(client.recv_frame(&response, &error));
  EXPECT_GE(h.server->stats().protocol_errors, 1u);
}

TEST(NetLoopback, HttpEndpointsWork) {
  Harness h;
  NetClient client = h.connect();
  std::string error;
  NetClient::HttpResult result;

  ASSERT_TRUE(client.http("GET", "/healthz", "", &result, &error)) << error;
  EXPECT_EQ(result.status, 200);

  ASSERT_TRUE(client.http("POST", "/embed?theorem=t1&want_embedding=1",
                          "((..)(..))", &result, &error))
      << error;
  EXPECT_EQ(result.status, 200);
  EXPECT_NE(result.body.find("\"status\": \"ok\""), std::string::npos)
      << result.body;
  EXPECT_NE(result.body.find("\"embedding\""), std::string::npos);

  // Newick bodies are sniffed on the same endpoint.
  ASSERT_TRUE(
      client.http("POST", "/embed", "((,),(,));", &result, &error))
      << error;
  EXPECT_EQ(result.status, 200);

  ASSERT_TRUE(client.http("POST", "/embed", "((..)", &result, &error))
      << error;
  EXPECT_EQ(result.status, 400);

  ASSERT_TRUE(client.http("GET", "/stats", "", &result, &error)) << error;
  EXPECT_EQ(result.status, 200);
  EXPECT_NE(result.body.find("\"service\""), std::string::npos);
  EXPECT_NE(result.body.find("\"net\""), std::string::npos);

  ASSERT_TRUE(client.http("GET", "/nope", "", &result, &error)) << error;
  EXPECT_EQ(result.status, 404);
  ASSERT_TRUE(client.http("DELETE", "/embed", "", &result, &error)) << error;
  EXPECT_EQ(result.status, 405);
}

TEST(NetLoopback, ConcurrentClientsAllGetAnswers) {
  Harness h;
  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 25;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&h, &ok, c] {
      NetClient client = h.connect();
      std::string error;
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const std::uint32_t id =
            static_cast<std::uint32_t>(c * 1000 + i);
        WireFrame response;
        ASSERT_TRUE(
            client.call(paren_request("((.(..))(..))", id), &response, &error))
            << error;
        ASSERT_EQ(response.request_id, id);
        if (static_cast<WireStatus>(response.code) == WireStatus::kOk) ++ok;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * kRequestsPerClient);
  h.expect_accounting_identity();
  // Every ok answer was served exactly once: either by a shard
  // (service `completed`) or inline from the canonical cache on the
  // event loop (`inline_hits`) — the extended accounting identity.
  const ServiceStats s = h.service->stats();
  const NetServerStats n = h.server->stats();
  EXPECT_EQ(s.completed + n.inline_hits,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  // All 200 requests carry the same tree, so all but the first miss
  // must be inline hits.
  EXPECT_GE(n.inline_hits, 1u);
  EXPECT_EQ(s.submitted, s.completed);
}

TEST(NetLoopback, QueueFullSurfacesAsStructuredRejection) {
  // One paused shard and a tiny queue: once it fills, further submits
  // must come back kRejectedQueueFull — never hang, never vanish.
  ServiceConfig service_config;
  service_config.queue_capacity = 2;
  service_config.num_shards = 1;
  service_config.start_paused = true;
  Harness h({}, service_config);

  NetClient client = h.connect();
  std::string error;
  constexpr int kOffered = 10;
  std::string batch;
  for (int i = 0; i < kOffered; ++i) {
    batch +=
        encode_frame(paren_request("((..)(..))", static_cast<std::uint32_t>(i)));
  }
  ASSERT_TRUE(client.send_all(batch, &error)) << error;

  // Wait until every frame has been ingested and submitted (rejected
  // submits count toward `submitted` too) before unpausing — otherwise
  // the shard can drain queue slots mid-batch and admit more than
  // queue_capacity requests, making the ok/rejected split timing-
  // dependent (it was flaky under TSan's slowdown).
  for (int spin = 0; spin < 2000; ++spin) {
    if (h.service->stats().submitted ==
        static_cast<std::uint64_t>(kOffered)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(h.service->stats().submitted,
            static_cast<std::uint64_t>(kOffered));
  h.service->resume();

  // Responses flush in request order: the two admitted requests
  // complete kOk, every overflow submit is a structured rejection —
  // nothing hangs, nothing silently disappears.
  int ok = 0;
  int rejected = 0;
  for (int i = 0; i < kOffered; ++i) {
    WireFrame response;
    ASSERT_TRUE(client.recv_frame(&response, &error)) << error;
    EXPECT_EQ(response.request_id, static_cast<std::uint32_t>(i));
    const auto status = static_cast<WireStatus>(response.code);
    if (status == WireStatus::kOk) ++ok;
    else if (status == WireStatus::kRejectedQueueFull) ++rejected;
    else FAIL() << "unexpected status " << wire_status_name(status);
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(rejected, kOffered - 2);
  h.expect_accounting_identity();
  const ServiceStats s = h.service->stats();
  EXPECT_EQ(s.rejected_full, static_cast<std::uint64_t>(kOffered - 2));
}

TEST(NetLoopback, SlowConsumerIsDisconnectedNotBuffered) {
  // Embeddings of a 4095-node tree make ~25 KB responses; with a
  // 4 KiB output cap a client that never reads must be disconnected
  // once the kernel's socket buffers stop absorbing the flood.
  NetServerConfig net_config;
  net_config.max_output_buffer = 4u << 10;
  Harness h(net_config);

  const std::string paren = make_complete_tree(11).to_paren();
  NetClient client = h.connect();
  std::string error;
  std::string batch;
  for (std::uint32_t i = 0; i < 64; ++i) {
    batch += encode_frame(paren_request(paren, i, kWireFlagWantEmbedding));
  }
  ASSERT_TRUE(client.send_all(batch, &error)) << error;

  // Never read.  The kernel buffers a little; the server's own output
  // cap must trip once responses exceed it.
  for (int spin = 0; spin < 2000; ++spin) {
    if (h.server->stats().slow_consumer_disconnects > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(h.server->stats().slow_consumer_disconnects, 1u);
  client.close();
  // Quiesce before checking the identity: requests admitted before
  // the disconnect are still completing (their responses are dropped
  // by the server, but the service must still answer each one).
  h.server->stop();
  h.service->shutdown(/*drain=*/true);
  h.expect_accounting_identity();
}

TEST(NetLoopback, MidFrameDisconnectLeavesServerHealthy) {
  Harness h;
  {
    NetClient client = h.connect();
    std::string error;
    const std::string bytes = encode_frame(paren_request("((..)(..))", 1));
    // Half a frame, then a hard close.
    ASSERT_TRUE(client.send_all(
                    std::string_view(bytes).substr(0, bytes.size() / 2), &error))
        << error;
    client.close();
  }
  {
    NetClient client = h.connect();
    std::string error;
    client.shutdown_write();  // EOF before any bytes at all
    WireFrame response;
    EXPECT_FALSE(client.recv_frame(&response, &error));
  }
  // The server keeps serving new connections afterwards.
  NetClient client = h.connect();
  std::string error;
  WireFrame response;
  ASSERT_TRUE(client.call(paren_request("((..)(..))", 2), &response, &error))
      << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);
  h.expect_accounting_identity();
}

TEST(NetLoopback, GracefulStopAnswersShutdownAndDrains) {
  Harness h;
  NetClient client = h.connect();
  std::string error;
  WireFrame response;
  ASSERT_TRUE(client.call(paren_request("((..)(..))", 1), &response, &error))
      << error;
  ASSERT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);

  h.server->stop();
  // After stop() the listener is gone and the connection is closed.
  NetClient late;
  std::string late_error;
  EXPECT_FALSE(late.connect(kHost, h.server->port(), &late_error));
  EXPECT_FALSE(client.recv_frame(&response, &error));

  const NetServerStats stats = h.server->stats();
  EXPECT_EQ(stats.open_connections, 0u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.connections_closed, stats.connections_accepted);
  h.expect_accounting_identity();
}

TEST(NetLoopback, NoFdLeaksAcrossAServerLifetime) {
  const int before = open_fd_count();
  ASSERT_GT(before, 0);
  for (int round = 0; round < 3; ++round) {
    Harness h;
    NetClient client = h.connect();
    std::string error;
    WireFrame response;
    ASSERT_TRUE(client.call(paren_request("((..)(..))", 1), &response, &error))
        << error;
    NetClient::HttpResult result;
    NetClient http = h.connect();
    ASSERT_TRUE(http.http("GET", "/healthz", "", &result, &error)) << error;
  }
  const int after = open_fd_count();
  EXPECT_EQ(before, after);
}

TEST(NetLoopback, StatsJsonExposesTheCounterNames) {
  Harness h;
  const std::string json = h.server->stats_json();
  for (const char* key :
       {"\"connections_accepted\"", "\"connections_closed\"",
        "\"connections_rejected\"", "\"slow_consumer_disconnects\"",
        "\"protocol_errors\"", "\"frames_received\"", "\"http_requests\"",
        "\"requests_submitted\"", "\"inline_hits\"", "\"inline_misses\"",
        "\"responses_sent\"",
        "\"responses_dropped\"", "\"overloaded_rejections\"",
        "\"shutdown_rejections\"", "\"bad_requests\"", "\"bytes_in\"",
        "\"bytes_out\"", "\"open_connections\"", "\"inflight\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(NetLoopback, InlineHitServesWithoutSubmitting) {
  Harness h;
  NetClient client = h.connect();
  std::string error;

  // First request: a digest-path miss that the service embeds and
  // inserts into the canonical cache.
  WireFrame response;
  ASSERT_TRUE(client.call(paren_request("((.(..))(..))", 1), &response,
                          &error))
      << error;
  ASSERT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);
  ASSERT_EQ(h.service->stats().submitted, 1u);
  EXPECT_GE(h.server->stats().inline_misses, 1u);

  // Second, identical request: answered inline on the event loop —
  // the service never sees it.
  ASSERT_TRUE(client.call(paren_request("((.(..))(..))", 2), &response,
                          &error))
      << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);
  EXPECT_EQ(response.request_id, 2u);
  EXPECT_NE(response.payload.find("\"cache_hit\": true"), std::string::npos)
      << response.payload;
  // Inline answers never reach a shard, so served_seq reports 0.
  EXPECT_NE(response.payload.find("\"served_seq\": 0"), std::string::npos)
      << response.payload;
  EXPECT_EQ(h.service->stats().submitted, 1u);
  EXPECT_EQ(h.server->stats().inline_hits, 1u);

  // An isomorphic tree under a different wire format hits the same
  // canonical entry (the digest is format-independent).
  WireFrame record = paren_request("", 3);
  record.format = static_cast<std::uint8_t>(WireFormat::kXtb1Record);
  record.payload = encode_xtb1_record(BinaryTree::from_paren("((.(..))(..))"));
  ASSERT_TRUE(client.call(record, &response, &error)) << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);
  EXPECT_EQ(h.service->stats().submitted, 1u);
  EXPECT_EQ(h.server->stats().inline_hits, 2u);

  // GET /stats reports the new counters (pinned for scrapers).
  NetClient http = h.connect();
  NetClient::HttpResult result;
  ASSERT_TRUE(http.http("GET", "/stats", "", &result, &error)) << error;
  EXPECT_NE(result.body.find("\"inline_hits\": 2"), std::string::npos)
      << result.body;
  h.expect_accounting_identity();
}

TEST(NetLoopback, InlineHitBytesMatchQueuedPath) {
  // The fast path must be invisible on the wire: for a warm cache
  // entry, an inline answer and a queued answer are byte-identical
  // except the per-request served_seq/latency_ms tail (which the JSON
  // field order deliberately puts last).
  Harness h;
  NetClient client = h.connect();
  std::string error;

  const auto prefix_of = [](const std::string& body) {
    const std::size_t pos = body.find(", \"served_seq\":");
    EXPECT_NE(pos, std::string::npos) << body;
    return body.substr(0, pos);
  };

  for (const std::uint8_t flags : {std::uint8_t{0}, kWireFlagWantEmbedding}) {
    // Warm the cache (and skew request ids so runs stay readable).
    WireFrame response;
    ASSERT_TRUE(client.call(paren_request("((..)((..)(..)))", 10, flags),
                            &response, &error))
        << error;
    ASSERT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);

    // Arm A: inline hit.
    h.server->set_inline_hits(true);
    WireFrame inline_hit;
    ASSERT_TRUE(client.call(paren_request("((..)((..)(..)))", 11, flags),
                            &inline_hit, &error))
        << error;
    // Arm B: same live server, fast path off — the hit goes through
    // the service queue.
    h.server->set_inline_hits(false);
    WireFrame queued_hit;
    ASSERT_TRUE(client.call(paren_request("((..)((..)(..)))", 12, flags),
                            &queued_hit, &error))
        << error;
    h.server->set_inline_hits(true);

    EXPECT_EQ(inline_hit.code, queued_hit.code);
    EXPECT_EQ(inline_hit.flags, queued_hit.flags);
    EXPECT_EQ(prefix_of(inline_hit.payload), prefix_of(queued_hit.payload))
        << "flags=" << static_cast<int>(flags);
  }

  // Same comparison over HTTP.
  NetClient http = h.connect();
  NetClient::HttpResult warm, a, b;
  ASSERT_TRUE(http.http("POST", "/embed?want_embedding=1", "((,),(,));",
                        &warm, &error))
      << error;
  ASSERT_EQ(warm.status, 200);
  ASSERT_TRUE(http.http("POST", "/embed?want_embedding=1", "((,),(,));", &a,
                        &error))
      << error;
  h.server->set_inline_hits(false);
  ASSERT_TRUE(http.http("POST", "/embed?want_embedding=1", "((,),(,));", &b,
                        &error))
      << error;
  h.server->set_inline_hits(true);
  EXPECT_EQ(a.status, 200);
  EXPECT_EQ(b.status, 200);
  EXPECT_EQ(prefix_of(a.body), prefix_of(b.body));
  EXPECT_GE(h.server->stats().inline_hits, 3u);
  h.expect_accounting_identity();
}

TEST(NetLoopback, DisablingInlineHitsForcesQueuedPath) {
  NetServerConfig net_config;
  net_config.enable_inline_hits = false;
  Harness h(net_config);
  NetClient client = h.connect();
  std::string error;
  for (std::uint32_t id = 1; id <= 3; ++id) {
    WireFrame response;
    ASSERT_TRUE(client.call(paren_request("((..)(..))", id), &response,
                            &error))
        << error;
    EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);
  }
  // Every repeat was a service-side cache hit, never an inline one.
  EXPECT_EQ(h.server->stats().inline_hits, 0u);
  EXPECT_EQ(h.server->stats().inline_misses, 0u);
  EXPECT_EQ(h.service->stats().submitted, 3u);
  h.expect_accounting_identity();
}

TEST(NetLoopback, SteadyStateHitPathDoesNotAllocateOnTheClient) {
  // The client-side hit loop (encode into send_buf_, recv into the
  // parser's retained buffer, payload reuse) must be allocation-free
  // once warm.  Counted thread-locally so server threads don't bleed
  // into the measurement; gtest macros stay out of the hot loop.
  Harness h;
  NetClient client = h.connect();
  std::string error;

  WireFrame request = paren_request("((.(..))(..))", 1);
  WireFrame response;
  bool all_ok = true;
  for (int i = 0; i < 32; ++i) {  // warm-up: caches, buffer capacities
    all_ok = client.call(request, &response, &error) && all_ok;
  }
  ASSERT_TRUE(all_ok) << error;
  ASSERT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);

  constexpr int kMeasured = 100;
  t_alloc_count = 0;
  t_count_allocs = true;
  for (int i = 0; i < kMeasured; ++i) {
    all_ok = client.call(request, &response, &error) && all_ok;
  }
  t_count_allocs = false;
  const std::uint64_t allocs = t_alloc_count;

  ASSERT_TRUE(all_ok) << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);
  // A steady-state hit makes no client-side allocations; allow a tiny
  // slack for one-off buffer growth (parser compaction) so the test
  // pins the behavior without being brittle.
  EXPECT_LE(allocs, 4u) << allocs << " allocations over " << kMeasured
                        << " calls";
  EXPECT_GE(h.server->stats().inline_hits,
            static_cast<std::uint64_t>(kMeasured));
}

// ---- session workload (ISSUE 9) -------------------------------------------

/// SessionManager + Harness wired together; the manager outlives the
/// server (declaration order) as NetServerConfig::sessions requires.
struct SessionHarness {
  explicit SessionHarness(SessionConfig session_config = {},
                          NetServerConfig net_config = {})
      : sessions(session_config) {
    net_config.sessions = &sessions;
    harness = std::make_unique<Harness>(net_config);
  }
  [[nodiscard]] NetClient connect() const { return harness->connect(); }

  SessionManager sessions;
  std::unique_ptr<Harness> harness;
};

WireFrame session_frame(WireFormat format, const std::string& payload,
                        std::uint32_t id) {
  WireFrame f;
  f.format = static_cast<std::uint8_t>(format);
  f.request_id = id;
  f.payload = payload;
  return f;
}

TEST(NetLoopback, SessionLifecycleOverHttp) {
  SessionHarness h;
  NetClient client = h.connect();
  std::string error;
  NetClient::HttpResult result;

  // Create, mutate, query, drop — the full lifecycle over the wire.
  ASSERT_TRUE(client.http("POST", "/session/create?id=web&height=4&load=16",
                          "", &result, &error))
      << error;
  EXPECT_EQ(result.status, 200) << result.body;
  ASSERT_TRUE(client.http("POST", "/session/create?id=web", "", &result,
                          &error))
      << error;
  EXPECT_EQ(result.status, 409);  // duplicate id

  ASSERT_TRUE(client.http("POST", "/session/web/mutate", "add 0\nadd 0\n",
                          &result, &error))
      << error;
  EXPECT_EQ(result.status, 200) << result.body;
  EXPECT_NE(result.body.find("\"version\": 2"), std::string::npos)
      << result.body;
  EXPECT_NE(result.body.find("\"leaf\": 1"), std::string::npos)
      << result.body;

  ASSERT_TRUE(
      client.http("GET", "/session/web/embedding", "", &result, &error))
      << error;
  EXPECT_EQ(result.status, 200) << result.body;
  EXPECT_NE(result.body.find("\"version\": 2"), std::string::npos);
  EXPECT_NE(result.body.find("\"n\": 3"), std::string::npos) << result.body;
  EXPECT_NE(result.body.find("\"checksum\""), std::string::npos);

  // Version-pinned historical read: version 1 (pre-mutation) is still
  // readable and reflects the single-root state.
  ASSERT_TRUE(client.http("GET", "/session/web/embedding?version=1", "",
                          &result, &error))
      << error;
  EXPECT_EQ(result.status, 200) << result.body;
  EXPECT_NE(result.body.find("\"n\": 1"), std::string::npos) << result.body;

  // A malformed mutation script is a 400 with the line number.
  ASSERT_TRUE(client.http("POST", "/session/web/mutate", "frobnicate\n",
                          &result, &error))
      << error;
  EXPECT_EQ(result.status, 400);
  EXPECT_NE(result.body.find("line 1"), std::string::npos) << result.body;

  // /stats now exposes the sessions object.
  ASSERT_TRUE(client.http("GET", "/stats", "", &result, &error)) << error;
  EXPECT_EQ(result.status, 200);
  EXPECT_NE(result.body.find("\"sessions\""), std::string::npos);
  EXPECT_NE(result.body.find("\"ops_applied\""), std::string::npos);

  ASSERT_TRUE(client.http("POST", "/session/web/drop", "", &result, &error))
      << error;
  EXPECT_EQ(result.status, 200);
  ASSERT_TRUE(
      client.http("GET", "/session/web/embedding", "", &result, &error))
      << error;
  EXPECT_EQ(result.status, 404);
  ASSERT_TRUE(client.http("POST", "/session/nope/mutate", "add 0\n", &result,
                          &error))
      << error;
  EXPECT_EQ(result.status, 404);
}

TEST(NetLoopback, SessionBinaryFramesPipelineInOrder) {
  SessionHarness h;
  NetClient client = h.connect();
  std::string error;
  WireFrame response;

  ASSERT_TRUE(client.call(
      session_frame(WireFormat::kSessionCreate, "bin 4 16", 1), &response,
      &error))
      << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk)
      << response.payload;

  // Pipeline three mutation batches; responses must come back in
  // submission order with strictly increasing versions — the
  // serial-write guarantee observed from the wire.
  std::string batch;
  batch += encode_frame(
      session_frame(WireFormat::kSessionMutate, "bin\nadd 0\n", 2));
  batch += encode_frame(
      session_frame(WireFormat::kSessionMutate, "bin\nadd 0\nadd 1\n", 3));
  batch += encode_frame(
      session_frame(WireFormat::kSessionMutate, "bin\nremove-leaf 2\n", 4));
  ASSERT_TRUE(client.send_all(batch, &error)) << error;
  std::uint64_t last_version = 1;
  for (std::uint32_t id = 2; id <= 4; ++id) {
    ASSERT_TRUE(client.recv_frame(&response, &error)) << error;
    EXPECT_EQ(response.request_id, id);
    EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk)
        << response.payload;
    const std::size_t pos = response.payload.find("\"version\": ");
    ASSERT_NE(pos, std::string::npos) << response.payload;
    const std::uint64_t version =
        std::strtoull(response.payload.c_str() + pos + 11, nullptr, 10);
    EXPECT_EQ(version, last_version + 1) << response.payload;
    last_version = version;
  }

  // Query latest and a pinned version over the binary protocol.
  ASSERT_TRUE(client.call(session_frame(WireFormat::kSessionQuery, "bin", 5),
                          &response, &error))
      << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);
  EXPECT_NE(response.payload.find("\"version\": 4"), std::string::npos)
      << response.payload;
  ASSERT_TRUE(client.call(
      session_frame(WireFormat::kSessionQuery, "bin 2", 6), &response,
      &error))
      << error;
  EXPECT_NE(response.payload.find("\"version\": 2"), std::string::npos)
      << response.payload;

  ASSERT_TRUE(client.call(session_frame(WireFormat::kSessionDrop, "bin", 7),
                          &response, &error))
      << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);
  ASSERT_TRUE(client.call(session_frame(WireFormat::kSessionQuery, "bin", 8),
                          &response, &error))
      << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kBadRequest);
  EXPECT_NE(response.payload.find("not_found"), std::string::npos)
      << response.payload;
}

TEST(NetLoopback, SessionCreateFrameDefaultsAndBadTokens) {
  SessionConfig config;
  config.default_height = 5;
  SessionHarness h(config);
  NetClient client = h.connect();
  std::string error;
  WireFrame response;

  // "create <id>" with no height/load tokens must fall back to the
  // configured defaults, not a height-0 single-vertex host (a failed
  // istream extraction stores 0, which once leaked through here).
  ASSERT_TRUE(client.call(session_frame(WireFormat::kSessionCreate, "d", 1),
                          &response, &error))
      << error;
  ASSERT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk)
      << response.payload;
  ASSERT_TRUE(client.call(session_frame(WireFormat::kSessionQuery, "d", 2),
                          &response, &error))
      << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kOk);
  EXPECT_NE(response.payload.find("\"host_height\": 5"), std::string::npos)
      << response.payload;

  // Present-but-non-numeric tokens are structured errors, not zeros.
  ASSERT_TRUE(client.call(
      session_frame(WireFormat::kSessionCreate, "e nope", 3), &response,
      &error))
      << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kBadRequest);
  EXPECT_NE(response.payload.find("non-numeric"), std::string::npos)
      << response.payload;

  // A mutate for an id that could corrupt echoed JSON is rejected at
  // the edge; the body must stay well-formed (no raw quote).
  ASSERT_TRUE(client.call(
      session_frame(WireFormat::kSessionMutate, "a\"b\nadd 0\n", 4),
      &response, &error))
      << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kBadRequest);
  EXPECT_EQ(response.payload.find("a\"b"), std::string::npos)
      << response.payload;

  // Same guard on the HTTP path.
  NetClient http = h.connect();
  NetClient::HttpResult result;
  ASSERT_TRUE(http.http("POST", "/session/a%22b/mutate", "add 0\n", &result,
                        &error))
      << error;
  EXPECT_EQ(result.status, 400);
}

TEST(NetLoopback, SessionVersionGoneIs410) {
  SessionConfig config;
  config.max_versions_retained = 2;
  SessionHarness h(config);
  NetClient client = h.connect();
  std::string error;
  NetClient::HttpResult result;
  ASSERT_TRUE(client.http("POST", "/session/create?id=s", "", &result,
                          &error))
      << error;
  ASSERT_EQ(result.status, 200);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        client.http("POST", "/session/s/mutate", "add 0\n", &result, &error))
        << error;
    ASSERT_EQ(result.status, 200) << result.body;
  }
  // Latest is 4; with 2 retained versions, version 1 is gone.
  ASSERT_TRUE(client.http("GET", "/session/s/embedding?version=1", "",
                          &result, &error))
      << error;
  EXPECT_EQ(result.status, 410);
  EXPECT_NE(result.body.find("version_gone"), std::string::npos)
      << result.body;
  ASSERT_TRUE(client.http("GET", "/session/s/embedding?version=4", "",
                          &result, &error))
      << error;
  EXPECT_EQ(result.status, 200);
}

TEST(NetLoopback, SessionQueueFullSurfacesAs429WithRetryAfter) {
  // Queue capacity 0: every accepted-session mutation rejects with
  // kQueueFull deterministically — the structured-backpressure
  // surface, not the drain dynamics.
  SessionConfig config;
  config.mutation_queue_capacity = 0;
  SessionHarness h(config);
  NetClient client = h.connect();
  std::string error;
  NetClient::HttpResult result;
  ASSERT_TRUE(client.http("POST", "/session/create?id=full", "", &result,
                          &error))
      << error;
  ASSERT_EQ(result.status, 200);
  ASSERT_TRUE(client.http("POST", "/session/full/mutate", "add 0\n", &result,
                          &error))
      << error;
  EXPECT_EQ(result.status, 429);
  EXPECT_NE(result.body.find("queue_full"), std::string::npos) << result.body;

  // The binary twin answers kRejectedQueueFull.
  NetClient bin = h.connect();
  WireFrame response;
  ASSERT_TRUE(bin.call(
      session_frame(WireFormat::kSessionMutate, "full\nadd 0\n", 1),
      &response, &error))
      << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code),
            WireStatus::kRejectedQueueFull)
      << response.payload;
}

TEST(NetLoopback, SessionOpsWithoutManagerAreRejected) {
  Harness h;  // no SessionManager wired
  NetClient client = h.connect();
  std::string error;
  NetClient::HttpResult result;
  ASSERT_TRUE(client.http("POST", "/session/create?id=x", "", &result,
                          &error))
      << error;
  EXPECT_EQ(result.status, 404);
  WireFrame response;
  NetClient bin = h.connect();
  ASSERT_TRUE(bin.call(session_frame(WireFormat::kSessionCreate, "x", 1),
                       &response, &error))
      << error;
  EXPECT_EQ(static_cast<WireStatus>(response.code), WireStatus::kBadRequest);
}

TEST(NetLoopback, SessionLifecycleLeaksNoFds) {
  const int before = open_fd_count();
  {
    SessionHarness h;
    std::string error;
    NetClient::HttpResult result;
    for (int round = 0; round < 3; ++round) {
      NetClient client = h.connect();
      ASSERT_TRUE(client.http(
          "POST", "/session/create?id=fd" + std::to_string(round), "",
          &result, &error))
          << error;
      ASSERT_TRUE(client.http("POST",
                              "/session/fd" + std::to_string(round) +
                                  "/mutate",
                              "add 0\n", &result, &error))
          << error;
      ASSERT_TRUE(client.http("POST",
                              "/session/fd" + std::to_string(round) + "/drop",
                              "", &result, &error))
          << error;
      client.close();
    }
    h.harness->server->stop();
  }
  const int after = open_fd_count();
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace xt
