// Equivalence fuzzing for the raw-speed pass: every batched or
// branch-free kernel must be bit-identical to the scalar reference it
// replaced, on every backend the build selects.
//
//   * simd::xor_popcount_batch vs the always-compiled scalar path,
//     across sizes that exercise every vector tail.
//   * Hypercube::distance_batch vs per-call popcount distance.
//   * XTree::distance (branch-free ascent) vs distance_oracle
//     (corridor Dijkstra) and XTree::distance_batch, across radii.
//   * canonical_hash (branchless) and canonical_hash_batch vs
//     canonical_hash_scalar across generator families — and across the
//     xtb1 mmap raw-array path, which is how the bulk pipeline feeds
//     the batch kernel in production.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "btree/binary_tree.hpp"
#include "btree/canonical.hpp"
#include "btree/generators.hpp"
#include "bulk/corpus.hpp"
#include "topology/hypercube.hpp"
#include "topology/xtree.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace xt {
namespace {

TEST(XorPopcountBatch, MatchesScalarAcrossTailSizes) {
  Rng rng(0x51'4d'd1u);
  // Cover every remainder class of the widest vector path (16 lanes)
  // plus a few larger buffers.
  for (std::size_t n = 0; n <= 64; ++n) {
    std::vector<std::uint32_t> a(n);
    std::vector<std::uint32_t> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<std::uint32_t>(rng());
      b[i] = static_cast<std::uint32_t>(rng());
    }
    std::vector<std::int32_t> got(n, -1);
    std::vector<std::int32_t> want(n, -2);
    simd::xor_popcount_batch(a.data(), b.data(), got.data(), n);
    simd::xor_popcount_batch_scalar(a.data(), b.data(), want.data(), n);
    ASSERT_EQ(got, want) << "backend=" << simd::backend() << " n=" << n;
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(got[i], std::popcount(a[i] ^ b[i])) << "n=" << n << " i=" << i;
  }
}

TEST(HypercubeDistanceBatch, MatchesPerCallAcrossRadii) {
  Rng rng(0xcafeu);
  for (std::int32_t r = 4; r <= 12; ++r) {
    const Hypercube q(r);
    // Odd count so the vector paths' scalar tails execute.
    const std::size_t pairs = 257;
    std::vector<VertexId> a(pairs);
    std::vector<VertexId> b(pairs);
    for (std::size_t i = 0; i < pairs; ++i) {
      a[i] = static_cast<VertexId>(rng.below(q.num_vertices()));
      b[i] = static_cast<VertexId>(rng.below(q.num_vertices()));
    }
    std::vector<std::int32_t> got(pairs, -1);
    q.distance_batch(a, b, got);
    for (std::size_t i = 0; i < pairs; ++i) {
      ASSERT_EQ(got[i], q.distance(a[i], b[i]))
          << "r=" << r << " a=" << a[i] << " b=" << b[i]
          << " backend=" << simd::backend();
      ASSERT_EQ(got[i],
                std::popcount(static_cast<std::uint32_t>(a[i] ^ b[i])))
          << "r=" << r << " i=" << i;
    }
  }
}

TEST(XTreeDistanceKernel, MatchesOracleAcrossRadii) {
  Rng rng(0xbeefu);
  for (std::int32_t r = 4; r <= 12; ++r) {
    const XTree x(r);
    // The oracle is corridor Dijkstra — keep the pair count modest at
    // the larger radii so the suite stays fast.
    const std::size_t pairs = r <= 8 ? 400 : 120;
    std::vector<VertexId> a(pairs);
    std::vector<VertexId> b(pairs);
    for (std::size_t i = 0; i < pairs; ++i) {
      a[i] = static_cast<VertexId>(rng.below(x.num_vertices()));
      b[i] = static_cast<VertexId>(rng.below(x.num_vertices()));
    }
    std::vector<std::int32_t> batch(pairs, -1);
    x.distance_batch(a, b, batch);
    for (std::size_t i = 0; i < pairs; ++i) {
      const std::int32_t d = x.distance(a[i], b[i]);
      ASSERT_EQ(d, x.distance_oracle(a[i], b[i]))
          << "r=" << r << " a=" << a[i] << " b=" << b[i];
      ASSERT_EQ(batch[i], d) << "r=" << r << " a=" << a[i] << " b=" << b[i];
    }
  }
}

std::vector<BinaryTree> family_sweep_corpus() {
  Rng rng(0x7001u);
  std::vector<BinaryTree> trees;
  for (const std::string& family : tree_family_names()) {
    for (NodeId n : {NodeId{1}, NodeId{2}, NodeId{3}, NodeId{17}, NodeId{64},
                     NodeId{255}, NodeId{1024}}) {
      trees.push_back(make_family_tree(family, n, rng));
    }
  }
  for (int t = 0; t < 32; ++t)
    trees.push_back(make_random_tree(1 + static_cast<NodeId>(rng.below(600)),
                                     rng));
  return trees;
}

TEST(CanonicalHashKernels, BranchlessMatchesScalarAcrossFamilies) {
  const auto trees = family_sweep_corpus();
  CanonicalScratch scratch;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    const BinaryTree& t = trees[i];
    const std::uint64_t want = canonical_hash_scalar(
        t.num_nodes(), t.left_data(), t.right_data(), scratch);
    EXPECT_EQ(canonical_hash(t.num_nodes(), t.left_data(), t.right_data(),
                             scratch),
              want)
        << "tree " << i << " n=" << t.num_nodes();
    // The scratch-free overload funnels into the same kernel.
    EXPECT_EQ(canonical_hash(t), want) << "tree " << i;
  }
}

TEST(CanonicalHashKernels, BatchMatchesScalarAcrossFamilies) {
  const auto trees = family_sweep_corpus();
  std::vector<RawTreeRef> refs;
  refs.reserve(trees.size());
  for (const BinaryTree& t : trees)
    refs.push_back({t.num_nodes(), t.left_data(), t.right_data()});
  std::vector<std::uint64_t> got(trees.size());
  CanonicalScratch scratch;
  canonical_hash_batch(refs, got, scratch);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    EXPECT_EQ(got[i],
              canonical_hash_scalar(refs[i].num_nodes, refs[i].left,
                                    refs[i].right, scratch))
        << "tree " << i << " n=" << refs[i].num_nodes;
  }
  // Sub-strip batches hit the lane-drain and remainder paths.
  for (std::size_t count : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                            std::size_t{5}, std::size_t{7}}) {
    if (count > refs.size()) break;
    std::vector<std::uint64_t> sub(count);
    canonical_hash_batch(std::span<const RawTreeRef>(refs).first(count), sub,
                         scratch);
    for (std::size_t i = 0; i < count; ++i)
      EXPECT_EQ(sub[i], got[i]) << "count=" << count << " i=" << i;
  }
}

TEST(CanonicalHashKernels, BatchMatchesScalarOnMmapViews) {
  // The production shape: trees packed into an xtb1 container, mmap'd
  // back, and digested straight off the zero-copy views in strips.
  const auto trees = family_sweep_corpus();
  const std::string path = testing::TempDir() + "simd-digest.xtb";
  {
    CorpusWriter writer(path);
    for (const BinaryTree& t : trees) writer.add(t);
    writer.finalize();
  }
  const CorpusReader reader(path);
  ASSERT_EQ(reader.tree_count(), trees.size());
  std::vector<CorpusReader::View> views(trees.size());
  std::vector<RawTreeRef> refs;
  refs.reserve(trees.size());
  std::string error;
  for (std::uint64_t i = 0; i < reader.tree_count(); ++i) {
    ASSERT_TRUE(reader.try_view(i, &views[i], &error)) << error;
    refs.push_back({views[i].num_nodes, views[i].left, views[i].right});
  }
  std::vector<std::uint64_t> got(refs.size());
  CanonicalScratch scratch;
  canonical_hash_batch(refs, got, scratch);
  for (std::size_t i = 0; i < refs.size(); ++i) {
    EXPECT_EQ(got[i],
              canonical_hash_scalar(refs[i].num_nodes, refs[i].left,
                                    refs[i].right, scratch))
        << "view " << i;
    EXPECT_EQ(got[i], canonical_hash(trees[i])) << "view " << i;
  }
}

}  // namespace
}  // namespace xt
