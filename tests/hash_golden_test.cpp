// Golden pins for every hashing constant and digest the on-disk
// formats depend on (util/hash_constants.hpp).  A cache checkpoint
// (xtc1), a bulk corpus (xtb1), a wire capture (xtn1) and a
// consistent-hash ring placement are all pure functions of these
// values: if any expectation here changes, previously written
// checkpoints stop loading and requests re-shard — so such a change
// must come with a format version bump, never silently.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "btree/binary_tree.hpp"
#include "btree/canonical.hpp"
#include "service/canonical_cache.hpp"
#include "util/hash.hpp"
#include "util/hash_constants.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

TEST(HashGolden, ConstantValuesArePinned) {
  EXPECT_EQ(kHashP1, 0x9e3779b185ebca87ULL);
  EXPECT_EQ(kHashP2, 0xc2b2ae3d27d4eb4fULL);
  EXPECT_EQ(kHashP3, 0x165667b19e3779f9ULL);
  EXPECT_EQ(kHashP4, 0x85ebca77c2b2ae63ULL);
  EXPECT_EQ(kHashP5, 0x27d4eb2f165667c5ULL);
  EXPECT_EQ(kGoldenGamma, 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(kMix1, 0xbf58476d1ce4e5b9ULL);
  EXPECT_EQ(kMix2, 0x94d049bb133111ebULL);
  EXPECT_EQ(kCanonEmptyCode, 0xd1b54a32d192ed03ULL);
  EXPECT_EQ(kCanonCombineOffset, 0x632be59bd9b4e019ULL);
}

TEST(HashGolden, Hash64DigestsArePinned) {
  // One case per length class of hash64: empty, tail-only (1/4/8-byte
  // folds), exactly one 32-byte stripe, and stripes + mixed tail.
  EXPECT_EQ(hash64("", 0), 0xef46db3751d8e999ULL);
  EXPECT_EQ(hash64("xt", 2), 0x6879d062c2c4952dULL);
  EXPECT_EQ(hash64("tree", 4), 0x8c093fc9c0532e3cULL);
  EXPECT_EQ(hash64("xtrees!!", 8), 0xc45160e81bb2f62fULL);
  const std::string s32 = "0123456789abcdef0123456789abcdef";
  EXPECT_EQ(hash64(s32.data(), s32.size()), 0x642a94958e71e6c5ULL);
  std::string s100;
  for (int i = 0; i < 100; ++i) s100.push_back(static_cast<char>('a' + i % 26));
  EXPECT_EQ(hash64(s100.data(), s100.size()), 0x79c9fa152bb53c71ULL);
  EXPECT_EQ(hash64(s32.data(), s32.size(), 777), 0xa592977cf884b833ULL);
}

TEST(HashGolden, Splitmix64StreamIsPinned) {
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
}

TEST(HashGolden, CanonicalDigestsArePinned) {
  // Cache-checkpoint keys and ring placement both hash these digests;
  // they must match across builds and across shard processes.
  const auto digest = [](const char* paren) {
    return canonical_hash(BinaryTree::from_paren(paren));
  };
  EXPECT_EQ(canonical_hash(BinaryTree::single()), 0x2a4c004b6ae97d7fULL);
  EXPECT_EQ(digest("((..).)"), 0x55db11934c0f03efULL);
  // Canonical form is order-insensitive: the mirrored two-node path
  // collapses onto the same digest.
  EXPECT_EQ(digest("(.(..))"), 0x55db11934c0f03efULL);
  EXPECT_EQ(digest("((..)(..))"), 0xb8e3a2dd9156173fULL);
  EXPECT_EQ(digest("((.(..))((..).))"), 0x7c2533efe69e8c49ULL);
  EXPECT_EQ(digest("(.((.(..))))"), 0xf13e22bd0e4374eeULL);
}

TEST(HashGolden, CacheKeyHashIsPinned) {
  CacheKey k;
  k.canonical_hash = 0x0123456789abcdefULL;
  k.num_nodes = 15;
  k.theorem = Theorem::kT2;
  k.load = 16;
  EXPECT_EQ(static_cast<std::uint64_t>(CacheKeyHash{}(k)),
            0xe672e1924503378bULL);
}

}  // namespace
}  // namespace xt
