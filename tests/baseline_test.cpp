#include <gtest/gtest.h>

#include "baseline/inorder_hypercube.hpp"
#include "baseline/naive_xtree.hpp"
#include "btree/generators.hpp"
#include "core/xtree_embedder.hpp"
#include "embedding/metrics.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

TEST(InorderEmbedding, InjectiveIntoOptimalHypercube) {
  for (std::int32_t r : {1, 2, 3, 4, 5}) {
    const CompleteBinaryTree tree(r);
    const Embedding emb = inorder_embedding(tree);
    EXPECT_TRUE(emb.injective());
    // 2^{r+1}-1 nodes into 2^{r+1} hypercube vertices.
    EXPECT_EQ(emb.num_host_vertices(), tree.num_vertices() + 1);
  }
}

TEST(InorderEmbedding, DilationExactlyTwo) {
  // [8]: the left-child edge has dilation 2, the right-child edge 1.
  for (std::int32_t r : {2, 3, 4, 5, 6}) {
    const CompleteBinaryTree tree(r);
    const Hypercube q(r + 1);
    std::int32_t max_d = 0;
    for (VertexId v = 0; v < tree.num_vertices(); ++v) {
      for (int w = 0; w < 2; ++w) {
        const VertexId c = tree.child(v, w);
        if (c == kInvalidVertex) continue;
        max_d = std::max(max_d,
                         q.distance(inorder_map(tree, v), inorder_map(tree, c)));
      }
    }
    EXPECT_EQ(max_d, 2) << "r=" << r;
  }
}

TEST(InorderEmbedding, AdditiveStretchProperty) {
  // distance Delta in B_r maps to at most Delta + 1 in Q_{r+1}.
  const CompleteBinaryTree tree(5);
  const Hypercube q(6);
  for (VertexId a = 0; a < tree.num_vertices(); a += 3) {
    for (VertexId b = 0; b < tree.num_vertices(); b += 5) {
      EXPECT_LE(q.distance(inorder_map(tree, a), inorder_map(tree, b)),
                tree.distance(a, b) + 1);
    }
  }
}

class BaselineSweep : public ::testing::TestWithParam<BaselineKind> {};

TEST_P(BaselineSweep, ProducesValidLoadBoundedEmbedding) {
  Rng rng(70);
  for (NodeId n : {48, 240, 500}) {
    const BinaryTree guest = make_random_tree(n, rng);
    const XTree host(XTreeEmbedder::optimal_height(n, 16));
    Embedding emb = embed_baseline(guest, host, 16, GetParam(), rng);
    validate_embedding(guest, emb, 16);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BaselineSweep, ::testing::ValuesIn(all_baselines()),
    [](const ::testing::TestParamInfo<BaselineKind>& param_info) {
      return std::string(baseline_name(param_info.param));
    });

TEST(Baselines, GreedyBeatsRandomOnPaths) {
  Rng rng(71);
  const NodeId n = 496;  // 16 * 31: exact form for r = 4
  const BinaryTree guest = make_path_tree(n);
  const XTree host(XTreeEmbedder::optimal_height(n, 16));
  Embedding greedy =
      embed_baseline(guest, host, 16, BaselineKind::kGreedy, rng);
  Embedding random =
      embed_baseline(guest, host, 16, BaselineKind::kRandom, rng);
  const auto dg = dilation_xtree(guest, greedy, host);
  const auto dr = dilation_xtree(guest, random, host);
  EXPECT_LT(dg.max, dr.max);
}

TEST(Baselines, NamesAreDistinct) {
  std::set<std::string> names;
  for (BaselineKind k : all_baselines()) names.insert(baseline_name(k));
  EXPECT_EQ(names.size(), all_baselines().size());
}

}  // namespace
}  // namespace xt
