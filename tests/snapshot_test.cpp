// Cache checkpoint/restore tests (ISSUE 10): xtc1 round-trips (keys,
// placements, memoized response prefixes, stripe eviction order),
// envelope and per-record corruption handling mirroring the xtb1
// suite, and the warm-restart identity claim — a service running on a
// restored cache serves the cache-derived bytes of every response
// byte-identical to the pre-checkpoint service.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "btree/binary_tree.hpp"
#include "btree/canonical.hpp"
#include "btree/generators.hpp"
#include "net/wire.hpp"
#include "service/cache_snapshot.hpp"
#include "service/canonical_cache.hpp"
#include "service/service.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "xtc1-" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

CacheKey make_key(std::uint64_t digest, NodeId n,
                  Theorem theorem = Theorem::kT1, NodeId load = 16) {
  CacheKey key;
  key.canonical_hash = digest;
  key.num_nodes = n;
  key.theorem = theorem;
  key.load = load;
  return key;
}

/// A synthetic but internally consistent entry: assign length == n.
CachedEmbedding make_value(NodeId n, VertexId host_vertices,
                           std::int32_t height, std::int32_t dilation) {
  CachedEmbedding value;
  value.canonical_assign.resize(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u)
    value.canonical_assign[static_cast<std::size_t>(u)] = u % host_vertices;
  value.host_vertices = host_vertices;
  value.host_height = height;
  value.dilation = dilation;
  value.load_factor = 16;
  return value;
}

/// Fills `cache` with `count` distinct entries; every third one gets
/// a memoized response prefix.  Returns the keys in insertion order.
std::vector<CacheKey> populate(CanonicalCache& cache, int count) {
  std::vector<CacheKey> keys;
  for (int i = 0; i < count; ++i) {
    const NodeId n = static_cast<NodeId>(3 + i);
    const CacheKey key = make_key(0x1000 + static_cast<std::uint64_t>(i) *
                                               0x9e3779b97f4a7c15ull,
                                  n, static_cast<Theorem>(i % 3));
    CachedEmbedding value = make_value(n, 7 + i % 5, 4 + i % 3, 3);
    if (i % 3 == 0) {
      const std::string memo =
          "{\"status\": \"ok\", \"memo\": " + std::to_string(i);
      cache.insert(key, std::move(value), &memo);
    } else {
      cache.insert(key, std::move(value));
    }
    keys.push_back(key);
  }
  return keys;
}

TEST(Xtc1, RoundTripRestoresEntriesAndMemos) {
  CanonicalCache cache(64);
  const std::vector<CacheKey> keys = populate(cache, 20);
  const std::string path = temp_path("roundtrip.xtc");
  std::string error;
  std::size_t saved = 0;
  ASSERT_TRUE(save_cache_snapshot(cache, path, &error, &saved)) << error;
  EXPECT_EQ(saved, 20u);

  CanonicalCache restored(64);
  const SnapshotLoadReport report = load_cache_snapshot(path, &restored);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.restored, 20u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_EQ(restored.size(), 20u);

  for (std::size_t i = 0; i < keys.size(); ++i) {
    SCOPED_TRACE(i);
    bool checked = false;
    const bool hit = restored.with_entry(
        keys[i], [&](const CanonicalCache::Entry& e) {
          const CachedEmbedding expected = *cache.lookup(keys[i]);
          EXPECT_EQ(e.value().canonical_assign, expected.canonical_assign);
          EXPECT_EQ(e.value().host_vertices, expected.host_vertices);
          EXPECT_EQ(e.value().host_height, expected.host_height);
          EXPECT_EQ(e.value().dilation, expected.dilation);
          EXPECT_EQ(e.value().load_factor, expected.load_factor);
          if (i % 3 == 0) {
            ASSERT_NE(e.encoded_body(), nullptr) << "memo lost in restore";
            EXPECT_EQ(*e.encoded_body(),
                      "{\"status\": \"ok\", \"memo\": " + std::to_string(i));
          } else {
            EXPECT_EQ(e.encoded_body(), nullptr);
          }
          checked = true;
        });
    EXPECT_TRUE(hit);
    EXPECT_TRUE(checked);
  }
}

TEST(Xtc1, SaveIsDeterministic) {
  // Two identical caches checkpoint to byte-identical files — the
  // walk order is the stripe FIFO, not pointer order.
  const std::string a = temp_path("det-a.xtc");
  const std::string b = temp_path("det-b.xtc");
  for (const std::string& path : {a, b}) {
    CanonicalCache cache(64);
    populate(cache, 17);
    std::string error;
    ASSERT_TRUE(save_cache_snapshot(cache, path, &error, nullptr)) << error;
  }
  EXPECT_EQ(read_file(a), read_file(b));
}

TEST(Xtc1, RestoreReproducesEvictionOrder) {
  // Single-stripe cache (capacity < 256) with exact FIFO semantics:
  // the restored cache must evict in the same order the original
  // would have.
  CanonicalCache cache(3);
  const CacheKey ka = make_key(1, 5), kb = make_key(2, 6), kc = make_key(3, 7);
  cache.insert(ka, make_value(5, 4, 3, 3));
  cache.insert(kb, make_value(6, 4, 3, 3));
  cache.insert(kc, make_value(7, 4, 3, 3));
  const std::string path = temp_path("order.xtc");
  ASSERT_TRUE(save_cache_snapshot(cache, path, nullptr, nullptr));

  CanonicalCache restored(3);
  const SnapshotLoadReport report = load_cache_snapshot(path, &restored);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_EQ(report.restored, 3u);

  // A fourth insert evicts the oldest restored entry: ka.
  restored.insert(make_key(4, 8), make_value(8, 4, 3, 3));
  EXPECT_EQ(restored.lookup(ka), nullptr);
  EXPECT_NE(restored.lookup(kb), nullptr);
  EXPECT_NE(restored.lookup(kc), nullptr);
}

TEST(Xtc1, EmptySnapshotRoundTrips) {
  CanonicalCache cache(8);
  const std::string path = temp_path("empty.xtc");
  std::size_t saved = 999;
  ASSERT_TRUE(save_cache_snapshot(cache, path, nullptr, &saved));
  EXPECT_EQ(saved, 0u);
  CanonicalCache restored(8);
  const SnapshotLoadReport report = load_cache_snapshot(path, &restored);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.restored, 0u);
  EXPECT_EQ(restored.size(), 0u);
}

TEST(Xtc1, SniffsSnapshotsVsOtherFiles) {
  CanonicalCache cache(8);
  populate(cache, 3);
  const std::string path = temp_path("sniff.xtc");
  ASSERT_TRUE(save_cache_snapshot(cache, path, nullptr, nullptr));
  EXPECT_TRUE(snapshot_sniff(path));
  const std::string text = temp_path("sniff.txt");
  write_file(text, "((..)(..))\n");
  EXPECT_FALSE(snapshot_sniff(text));
  EXPECT_FALSE(snapshot_sniff(temp_path("does-not-exist")));
}

TEST(Xtc1, RejectsCorruptedEnvelopes) {
  CanonicalCache cache(64);
  populate(cache, 12);
  const std::string path = temp_path("envelope.xtc");
  ASSERT_TRUE(save_cache_snapshot(cache, path, nullptr, nullptr));
  const std::string good = read_file(path);

  const auto expect_rejected = [&](std::string bytes, const char* what,
                                   const char* needle) {
    const std::string bad_path = temp_path("envelope-bad.xtc");
    write_file(bad_path, bytes);
    CanonicalCache restored(64);
    const SnapshotLoadReport report = load_cache_snapshot(bad_path, &restored);
    EXPECT_FALSE(report.ok) << what;
    EXPECT_NE(report.error.find(needle), std::string::npos)
        << what << ": " << report.error;
    EXPECT_EQ(report.restored, 0u) << what;
    EXPECT_EQ(restored.size(), 0u) << what;
  };

  expect_rejected(good.substr(0, good.size() - 1), "truncated file",
                  "truncated");
  expect_rejected(good.substr(0, 40), "file shorter than the header",
                  "too small");
  {
    std::string bad = good;
    bad[0] = 'X';
    expect_rejected(bad, "bad magic", "bad magic");
  }
  {
    std::string bad = good;
    bad[4] = 2;  // unsupported version (also breaks the header hash)
    expect_rejected(bad, "bad version", "version");
  }
  {
    std::string bad = good;
    bad[8] ^= 1;  // entry_count no longer matches header_hash
    expect_rejected(bad, "header checksum", "header checksum");
  }
  {
    std::string bad = good;
    bad[good.size() - 1] ^= 1;  // index hash
    expect_rejected(bad, "index checksum", "index checksum");
  }
  {
    CanonicalCache restored(64);
    const SnapshotLoadReport report =
        load_cache_snapshot(temp_path("no-such-file.xtc"), &restored);
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.error.find("cannot open"), std::string::npos)
        << report.error;
  }
}

TEST(Xtc1, SkipsCorruptedRecordNotWholeSnapshot) {
  CanonicalCache cache(64);
  const std::vector<CacheKey> keys = populate(cache, 12);
  const std::string path = temp_path("record.xtc");
  ASSERT_TRUE(save_cache_snapshot(cache, path, nullptr, nullptr));
  std::string bytes = read_file(path);
  // Flip one payload byte of the first record (inside its canonical
  // hash), leaving the envelope intact.
  bytes[kSnapshotHeaderBytes + 3] ^= 0x20;
  write_file(path, bytes);

  CanonicalCache restored(64);
  const SnapshotLoadReport report = load_cache_snapshot(path, &restored);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.restored, keys.size() - 1);
  ASSERT_EQ(report.record_errors.size(), 1u);
  EXPECT_NE(report.record_errors[0].find("checksum"), std::string::npos)
      << report.record_errors[0];
  // Every entry except the damaged one is back.
  std::size_t present = 0;
  for (const CacheKey& key : keys)
    if (restored.lookup(key) != nullptr) ++present;
  EXPECT_EQ(present, keys.size() - 1);
}

TEST(Xtc1, SkipsRecordsWithHostileLengths) {
  CanonicalCache cache(8);
  cache.insert(make_key(42, 5), make_value(5, 4, 3, 3));
  const std::string path = temp_path("hostile.xtc");
  ASSERT_TRUE(save_cache_snapshot(cache, path, nullptr, nullptr));
  std::string bytes = read_file(path);
  // assign_len lives at record offset 36; blow it up and re-stamp the
  // record checksum so only the bounds check can catch it.  The
  // record is 48 + 5*4 = 68 bytes, checksum at +68.
  const std::size_t rec = kSnapshotHeaderBytes;
  const std::uint32_t huge = 0x40000000u;
  std::memcpy(&bytes[rec + 36], &huge, 4);
  const std::uint64_t checksum =
      hash64(bytes.data() + rec, 48 + 5 * 4);
  std::memcpy(&bytes[rec + 48 + 5 * 4], &checksum, 8);
  // The index hash guards offsets only, so the envelope still parses.
  write_file(path, bytes);

  CanonicalCache restored(8);
  const SnapshotLoadReport report = load_cache_snapshot(path, &restored);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.restored, 0u);
  EXPECT_EQ(report.skipped, 1u);
  ASSERT_EQ(report.record_errors.size(), 1u);
  EXPECT_NE(report.record_errors[0].find("overrun"), std::string::npos)
      << report.record_errors[0];
}

EmbedResponse submit_sync(EmbeddingService& service, const BinaryTree& tree,
                          Theorem theorem) {
  EmbedRequest request;
  request.tree = tree;
  request.theorem = theorem;
  return service.submit(std::move(request)).get();
}

/// The cache-derived bytes of a response: everything except the
/// per-request served_seq / latency_ms tail.
std::string response_prefix(const EmbedResponse& response) {
  std::string out;
  append_embed_response_prefix(out, response, /*include_embedding=*/true);
  return out;
}

TEST(Xtc1, RestoredServiceServesByteIdenticalResponses) {
  // The warm-restart contract: checkpoint service A's cache, restore
  // it into a fresh service B, and every request that hit A's cache
  // hits B's with a byte-identical cache-derived body — placements,
  // metrics and JSON encoding all survive the round trip.  (The
  // served_seq / latency_ms tail is per-request by design, so the
  // comparison pins the memoizable prefix, exactly what the inline
  // hit path memoizes and serves.)
  Rng rng(1007);
  std::vector<BinaryTree> trees;
  for (int i = 0; i < 10; ++i) trees.push_back(make_random_tree(40, rng));

  const std::string path = temp_path("service.xtc");
  std::vector<std::string> reference;
  {
    ServiceConfig config;
    config.num_shards = 1;
    config.cache_capacity = 64;
    EmbeddingService a(config);
    for (const BinaryTree& t : trees)
      ASSERT_EQ(submit_sync(a, t, Theorem::kT1).status, RequestStatus::kOk);
    // Second pass: cache hits, the bytes a warm server serves.
    for (const BinaryTree& t : trees) {
      const EmbedResponse r = submit_sync(a, t, Theorem::kT1);
      ASSERT_EQ(r.status, RequestStatus::kOk);
      ASSERT_TRUE(r.cache_hit);
      reference.push_back(response_prefix(r));
    }
    std::string error;
    ASSERT_TRUE(save_cache_snapshot(*a.canonical_cache(), path, &error))
        << error;
    a.shutdown(/*drain=*/true);
  }

  ServiceConfig config;
  config.num_shards = 1;
  config.cache_capacity = 64;
  EmbeddingService b(config);
  const SnapshotLoadReport report =
      load_cache_snapshot(path, b.canonical_cache());
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_EQ(report.restored, trees.size());

  for (std::size_t i = 0; i < trees.size(); ++i) {
    SCOPED_TRACE(i);
    const EmbedResponse r = submit_sync(b, trees[i], Theorem::kT1);
    ASSERT_EQ(r.status, RequestStatus::kOk);
    EXPECT_TRUE(r.cache_hit) << "restored cache should serve the hit";
    EXPECT_EQ(response_prefix(r), reference[i]);
  }
  const ServiceStats stats = b.stats();
  EXPECT_EQ(stats.cache_hits, trees.size());
  EXPECT_EQ(stats.cache_misses, 0u);
}

}  // namespace
}  // namespace xt
