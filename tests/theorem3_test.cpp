// Theorem 3: binary trees into hypercubes with load 16 / dilation 4,
// and the injective dilation-8 corollary.
#include <gtest/gtest.h>

#include "btree/generators.hpp"
#include "core/hypercube_embedding.hpp"
#include "embedding/metrics.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

NodeId theorem3_n(std::int32_t r) {
  return static_cast<NodeId>(16 * ((std::int64_t{1} << r) - 1));
}

class Theorem3Sweep : public ::testing::TestWithParam<std::string> {};

TEST_P(Theorem3Sweep, Load16DilationAtMostFour) {
  Rng rng(40);
  for (std::int32_t r : {2, 3, 4, 5}) {
    const BinaryTree guest = make_family_tree(GetParam(), theorem3_n(r), rng);
    const auto res = embed_hypercube_load16(guest);
    EXPECT_EQ(res.dimension, r) << "optimal hypercube expected";
    validate_embedding(guest, res.embedding, 16);
    const Hypercube host(res.dimension);
    const auto rep = dilation_hypercube(guest, res.embedding, host);
    EXPECT_LE(rep.max, 4) << GetParam() << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, Theorem3Sweep,
                         ::testing::ValuesIn(tree_family_names()));

TEST(Theorem3Corollary, InjectiveDilationAtMostEight) {
  Rng rng(41);
  for (std::int32_t r : {2, 3, 4}) {
    // n = 2^{r+4} - 16 nodes into Q_{r+4}.
    const NodeId n = theorem3_n(r);
    const BinaryTree guest = make_random_tree(n, rng);
    const auto res = embed_hypercube_injective(guest);
    EXPECT_TRUE(res.embedding.injective());
    EXPECT_EQ(res.dimension, r + 4);
    EXPECT_LE(guest.num_nodes(),
              (std::int64_t{1} << res.dimension) - 16);
    const Hypercube host(res.dimension);
    const auto rep = dilation_hypercube(guest, res.embedding, host);
    EXPECT_LE(rep.max, 8) << "r=" << r;
  }
}

TEST(Theorem3, OptimalHypercubeIsTight) {
  // n = 16*(2^r - 1) has no room in Q_{r-1}: 2^{r-1} vertices hold at
  // most 16*2^{r-1} < n ... actually 16*2^{r-1} vs 16*(2^r-1):
  // 2^{r-1} < 2^r - 1 for r >= 2, so Q_{r-1} is too small at load 16.
  for (std::int32_t r : {3, 4, 5}) {
    EXPECT_GT(theorem3_n(r),
              16 * (std::int64_t{1} << (r - 1)));
  }
}

}  // namespace
}  // namespace xt
