// Figure 2: the neighbourhood N(a) and the counting behind the
// universal-graph degree bound 25*16 + 15 = 415.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/nset.hpp"
#include "graph/bfs.hpp"
#include "topology/xtree.hpp"

namespace xt {
namespace {

// Reference N(a) by explicit walk enumeration: paths of <= 3
// horizontal edges, or <= 2 downward then <= 2 horizontal.
std::set<VertexId> reference_n_set(const XTree& x, VertexId a) {
  std::set<VertexId> out;
  const XCoord c = x.coord_of(a);
  for (int down = 0; down <= 2; ++down) {
    if (c.level + down > x.height()) break;
    const int max_horizontal = down == 0 ? 3 : 2;
    // All vertices reachable by exactly `down` child steps: positions
    // form the cone [pos*2^down, (pos+1)*2^down - 1].
    const std::int64_t lo = c.pos << down;
    const std::int64_t hi = ((c.pos + 1) << down) - 1;
    const std::int64_t level_max =
        (std::int64_t{1} << (c.level + down)) - 1;
    for (std::int64_t p = std::max<std::int64_t>(0, lo - max_horizontal);
         p <= std::min(level_max, hi + max_horizontal); ++p) {
      out.insert(XTree::id_of({c.level + down, p}));
    }
  }
  return out;
}

TEST(NSet, MatchesReferenceEnumeration) {
  const XTree x(6);
  for (VertexId a = 0; a < x.num_vertices(); ++a) {
    const auto got = n_set(x, a);
    const std::set<VertexId> want = reference_n_set(x, a);
    EXPECT_EQ(std::set<VertexId>(got.begin(), got.end()), want)
        << "a=" << x.label_of(a);
  }
}

TEST(NSet, SizeBoundTwentyPlusSelf) {
  // Paper §3: |N(a) - {a}| <= 20.
  for (std::int32_t r : {3, 5, 8}) {
    const XTree x(r);
    std::size_t best = 0;
    for (VertexId a = 0; a < x.num_vertices(); ++a) {
      const auto set = n_set(x, a);
      EXPECT_LE(set.size(), 21u) << x.label_of(a);
      best = std::max(best, set.size());
    }
    if (r >= 5) {
      EXPECT_EQ(best, 21u);  // the bound is attained
    }
  }
}

TEST(NSet, MembershipPredicateAgrees) {
  const XTree x(5);
  for (VertexId a = 0; a < x.num_vertices(); ++a) {
    const auto set = n_set(x, a);
    const std::set<VertexId> in(set.begin(), set.end());
    for (VertexId b = 0; b < x.num_vertices(); ++b)
      EXPECT_EQ(in_n_set(x, a, b), in.count(b) == 1)
          << x.label_of(a) << " vs " << x.label_of(b);
  }
}

TEST(NSet, ReverseOnlyVerticesAtMostFive) {
  // Paper §3: at most 5 vertices b with a in N(b) but b not in N(a).
  for (std::int32_t r : {4, 6, 8}) {
    const XTree x(r);
    for (VertexId a = 0; a < x.num_vertices(); ++a) {
      int reverse_only = 0;
      for (VertexId b = 0; b < x.num_vertices(); ++b) {
        if (b != a && in_n_set(x, b, a) && !in_n_set(x, a, b)) ++reverse_only;
      }
      EXPECT_LE(reverse_only, 5) << x.label_of(a);
    }
  }
}

TEST(NSet, SymmetricSetSizeAtMostTwentyFive) {
  for (std::int32_t r : {4, 6, 8}) {
    const XTree x(r);
    std::size_t best = 0;
    for (VertexId a = 0; a < x.num_vertices(); ++a) {
      const auto sym = n_set_symmetric(x, a);
      EXPECT_LE(sym.size(), 25u) << x.label_of(a);
      EXPECT_TRUE(std::find(sym.begin(), sym.end(), a) == sym.end());
      best = std::max(best, sym.size());
    }
    if (r >= 6) {
      EXPECT_GE(best, 24u);  // essentially attained
    }
  }
}

TEST(NSet, SymmetricEqualsBruteForceUnion) {
  const XTree x(6);
  for (VertexId a = 0; a < x.num_vertices(); ++a) {
    std::set<VertexId> want;
    for (VertexId b = 0; b < x.num_vertices(); ++b) {
      if (b != a && (in_n_set(x, a, b) || in_n_set(x, b, a))) want.insert(b);
    }
    const auto got = n_set_symmetric(x, a);
    EXPECT_EQ(std::set<VertexId>(got.begin(), got.end()), want)
        << x.label_of(a);
  }
}

TEST(NSet, MembersAreWithinDistanceThree) {
  // Everything N(a) promises is reachable within 3 X-tree hops (this
  // is what makes condition (3') imply dilation 3).
  const XTree x(7);
  for (VertexId a = 0; a < x.num_vertices(); a += 5) {
    for (VertexId b : n_set(x, a)) {
      EXPECT_LE(x.distance(a, b), 3)
          << x.label_of(a) << " -> " << x.label_of(b);
    }
  }
}

}  // namespace
}  // namespace xt
