// Newick parser / serializer: round trips, tolerated decorations
// (labels, branch lengths, comments), structured malformed-input
// errors, and the content/extension sniffers that dispatch between the
// paren and Newick grammars.
#include "io/newick.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "btree/canonical.hpp"
#include "btree/generators.hpp"
#include "io/serialize.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

BinaryTree parse_ok(const std::string& text) {
  const TreeParseResult r = try_parse_newick(text);
  EXPECT_TRUE(r.ok()) << tree_parse_status_name(r.status) << " at "
                      << r.offset << ": " << r.message;
  XT_CHECK(r.ok());
  return r.tree;
}

TEST(Newick, SingleNode) {
  EXPECT_EQ(parse_ok(";").num_nodes(), 1);
  EXPECT_EQ(parse_ok("root;").num_nodes(), 1);
  EXPECT_EQ(parse_ok("'a label';").num_nodes(), 1);
}

TEST(Newick, TwoLeavesUnderRoot) {
  const BinaryTree t = parse_ok("(,);");
  ASSERT_EQ(t.num_nodes(), 3);
  EXPECT_EQ(t.num_children(t.root()), 2);
  EXPECT_TRUE(t.is_leaf(t.left(t.root())));
  EXPECT_TRUE(t.is_leaf(t.right(t.root())));
}

TEST(Newick, MatchesParenStructure) {
  // ((..)(..)) in paren form (root with two leaves) == (,); in Newick.
  const BinaryTree paren = BinaryTree::from_paren("((..)(..))");
  const BinaryTree newick = parse_ok("(,);");
  EXPECT_EQ(paren.to_paren(), newick.to_paren());
}

TEST(Newick, LabelsBranchLengthsCommentsIgnoredButCounted) {
  NewickIgnored ignored;
  const TreeParseResult r = try_parse_newick(
      "((Alpha:0.12,'Be ta':3e-2)Inner:1,[a [nested] comment]Gamma);", 0,
      &ignored);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.tree.num_nodes(), 5);
  EXPECT_EQ(ignored.labels, 4u);          // Alpha, 'Be ta', Inner, Gamma
  EXPECT_EQ(ignored.branch_lengths, 3u);  // 0.12, 3e-2, 1
  EXPECT_EQ(ignored.comments, 1u);        // the nested comment is one
  EXPECT_NE(ignored.diagnostic().find("4 label(s)"), std::string::npos);
  EXPECT_NE(ignored.diagnostic().find("3 branch length(s)"),
            std::string::npos);
}

TEST(Newick, QuotedLabelEscapes) {
  const BinaryTree t = parse_ok("('it''s a leaf',other);");
  EXPECT_EQ(t.num_nodes(), 3);
}

TEST(Newick, SingleChildLandsInLeftSlot) {
  const BinaryTree t = parse_ok("((,));");  // root -> inner -> two leaves
  ASSERT_EQ(t.num_nodes(), 4);
  EXPECT_NE(t.left(t.root()), kInvalidNode);
  EXPECT_EQ(t.right(t.root()), kInvalidNode);
}

TEST(Newick, WhitespaceAndNewlinesBetweenTokens) {
  const BinaryTree t = parse_ok("(\n  ( A , B ) ,\n  C\n) ;");
  EXPECT_EQ(t.num_nodes(), 5);
}

struct MalformedCase {
  const char* text;
  TreeParseStatus status;
};

TEST(Newick, MalformedInputsReportStructuredErrors) {
  const MalformedCase cases[] = {
      {"", TreeParseStatus::kEmptyInput},
      {"   [only a comment] ", TreeParseStatus::kEmptyInput},
      {"(,)", TreeParseStatus::kTruncated},        // missing ';'
      {"((,);", TreeParseStatus::kTruncated},      // '(' still open
      {"(,));", TreeParseStatus::kUnbalanced},     // stray ')'
      {"a,b;", TreeParseStatus::kUnbalanced},      // ',' outside '('
      {"(a,b,c);", TreeParseStatus::kTooManyChildren},
      {"(a,b);(c,d);", TreeParseStatus::kMultipleRoots},
      {"(a,b); trailing", TreeParseStatus::kMultipleRoots},
      {"(a:x,b);", TreeParseStatus::kBadCharacter},  // bad length
      {"(a[unterminated,b);", TreeParseStatus::kTruncated},
      {"('unterminated,b);", TreeParseStatus::kTruncated},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.text);
    const TreeParseResult r = try_parse_newick(c.text);
    EXPECT_EQ(r.status, c.status)
        << "got " << tree_parse_status_name(r.status) << ": " << r.message;
    EXPECT_FALSE(r.message.empty());
    EXPECT_LE(r.offset, std::string_view(c.text).size());
  }
}

TEST(Newick, MaxNodesBudget) {
  const TreeParseResult r = try_parse_newick("((,),(,));", 3);
  EXPECT_EQ(r.status, TreeParseStatus::kTooLarge);
  EXPECT_TRUE(try_parse_newick("((,),(,));", 7).ok());
}

TEST(Newick, DeepPathDoesNotOverflowTheStack) {
  // 50k nested '(' would blow a recursive parser's call stack.
  const std::size_t depth = 50'000;
  std::string text(depth, '(');
  text.append(depth, ')');
  text += ';';
  const TreeParseResult r = try_parse_newick(text);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.tree.num_nodes(), static_cast<NodeId>(depth + 1));
  EXPECT_EQ(to_newick(r.tree), text);  // serializer is iterative too
}

TEST(Newick, PrefixParseDrainsMultipleTrees) {
  const std::string text = "(,); (A,(B,C)); [sep]\n(,);";
  std::string_view rest = text;
  int trees = 0;
  for (;;) {
    std::size_t consumed = 0;
    const TreeParseResult r = try_parse_newick_prefix(rest, &consumed);
    if (r.status == TreeParseStatus::kEmptyInput) break;
    ASSERT_TRUE(r.ok()) << r.message;
    ++trees;
    rest.remove_prefix(consumed);
  }
  EXPECT_EQ(trees, 3);
}

TEST(Newick, RoundTripRandomTrees) {
  Rng rng(20260808);
  for (int trial = 0; trial < 40; ++trial) {
    const BinaryTree t = make_random_tree(static_cast<NodeId>(2 + rng.below(120)), rng);
    SCOPED_TRACE(t.to_paren());
    const std::string nwk = to_newick(t);
    const TreeParseResult r = try_parse_newick(nwk);
    ASSERT_TRUE(r.ok()) << r.message;
    ASSERT_EQ(r.tree.num_nodes(), t.num_nodes());
    // Newick cannot distinguish a lone right child from a lone left
    // child, so the round trip is isomorphism (canonical form), not
    // slot identity; the serialisation itself is a fixed point.
    EXPECT_EQ(canonical_form(r.tree).hash, canonical_form(t).hash);
    EXPECT_EQ(to_newick(r.tree), nwk);
  }
}

TEST(Newick, RoundTripIsSlotExactWithoutRightOnlyChildren) {
  const BinaryTree t = BinaryTree::from_paren("(((..).)((..)(..)))");
  const TreeParseResult r = try_parse_newick(to_newick(t));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.tree.to_paren(), t.to_paren());
}

TEST(Newick, Sniffers) {
  EXPECT_TRUE(sniff_newick("(A,B);"));
  EXPECT_TRUE(sniff_newick("(,);"));
  EXPECT_TRUE(sniff_newick("  ((,),(,)) ;"));
  EXPECT_FALSE(sniff_newick("((..)(..))"));
  EXPECT_FALSE(sniff_newick("  ((..).) "));
  EXPECT_FALSE(sniff_newick("# a paren-corpus comment"));
  EXPECT_FALSE(sniff_newick("   "));
  // A stray label-ish byte is not evidence: a malformed paren line
  // must fail as a paren line, with a paren-parser error.
  EXPECT_FALSE(sniff_newick("(.x)"));
  EXPECT_TRUE(sniff_newick("(a'x y',b);"));
  EXPECT_TRUE(has_newick_extension("trees.nwk"));
  EXPECT_TRUE(has_newick_extension("trees.NEWICK"));
  EXPECT_TRUE(has_newick_extension("trees.tre"));
  EXPECT_FALSE(has_newick_extension("tests/corpus/golden-100.tree"));
  EXPECT_FALSE(has_newick_extension("noext"));
}

TEST(Newick, LoadTreeSniffsNewickByContent) {
  std::istringstream in("# comment first\n((,),(,));\n");
  const BinaryTree t = load_tree(in);
  EXPECT_EQ(t.to_paren(), "(((..)(..))((..)(..)))");
}

TEST(Newick, LoadTreeReadsMultiLineNewick) {
  std::istringstream in("((A,\n B),\n C);\n");
  const BinaryTree t = load_tree(in);
  EXPECT_EQ(t.num_nodes(), 5);
}

TEST(Newick, LoadTreeStillReadsParen) {
  std::istringstream in("\n# header\n((..)(..))\n");
  EXPECT_EQ(load_tree(in).num_nodes(), 3);
}

TEST(Newick, LoadTreeThrowsOnMalformedNewick) {
  std::istringstream in("(a,b,c);\n");
  EXPECT_THROW(load_tree(in), check_error);
}

}  // namespace
}  // namespace xt
