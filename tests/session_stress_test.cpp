// Snapshot-epoch stress: readers hammer with_snapshot (latest and
// pinned versions) while the writer mutates and publishes, and a
// churn thread creates/drops sessions.  Every dereferenced snapshot
// must be fully constructed and never reclaimed under the reader —
// proven by recomputing its checksum and by its internal consistency.
// This is the test the TSan CI lane exists for: any torn publish,
// use-after-retire or missed fence is a data race it will flag.
#include "service/session.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace xt {
namespace {

TEST(SessionStressTest, ReadersNeverObserveTornOrRetiredSnapshots) {
  SessionConfig config;
  config.max_versions_retained = 4;
  SessionManager mgr(config);
  ASSERT_EQ(mgr.create("hot", 5, 16), SessionStatus::kOk);

  constexpr int kReaders = 4;
  constexpr int kWriterBatches = 200;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> torn{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&mgr, &stop, &reads, &torn, r] {
      std::uint64_t last_version = 0;
      std::uint64_t iter = 0;
      while (!stop.load(std::memory_order_acquire)) {
        ++iter;
        // Alternate latest reads with pinned historical reads (the
        // version we saw last time — may be evicted by now, which
        // must answer kVersionGone, never a stale pointer).
        const std::uint64_t want =
            (iter % 2 == 0 && last_version > 1) ? last_version - 1 : 0;
        const auto status = mgr.with_snapshot(
            "hot", want, [&](const EmbeddingSnapshot& snap) {
              if (snapshot_checksum(snap) != snap.checksum)
                torn.fetch_add(1, std::memory_order_relaxed);
              // Internal consistency: the projection arrays agree.
              if (snap.tree.num_nodes() > 0 &&
                  snap.stable_of.size() !=
                      static_cast<std::size_t>(snap.tree.num_nodes()))
                torn.fetch_add(1, std::memory_order_relaxed);
              if (want == 0) {
                // Latest reads must never go backwards for one reader.
                if (snap.version < last_version)
                  torn.fetch_add(1, std::memory_order_relaxed);
                last_version = snap.version;
              } else if (snap.version != want) {
                torn.fetch_add(1, std::memory_order_relaxed);
              }
              reads.fetch_add(1, std::memory_order_relaxed);
            });
        if (want != 0) {
          EXPECT_TRUE(status == SessionStatus::kOk ||
                      status == SessionStatus::kVersionGone);
        }
        (void)r;
      }
    });
  }

  // Churn thread: create/drop a side session so the map mutates under
  // the readers' shared locks too.
  std::thread churn([&mgr, &stop] {
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::string id = "churn" + std::to_string(i++ % 3);
      (void)mgr.create(id, 3, 16);
      (void)mgr.mutate_sync(id, {{MutationOpKind::kAddLeaf, 0, kInvalidNode}});
      (void)mgr.drop(id);
    }
  });

  // Writer: grow, shrink and move on the hot session; every batch
  // publishes a new version for the readers to race against.
  std::vector<NodeId> leaves;
  for (int b = 0; b < kWriterBatches; ++b) {
    std::vector<MutationOp> ops;
    if (b % 3 == 2 && !leaves.empty()) {
      ops.push_back({MutationOpKind::kRemoveLeaf, leaves.back(),
                     kInvalidNode});
      leaves.pop_back();
    } else {
      const NodeId parent = leaves.empty() ? 0 : leaves[leaves.size() / 2];
      ops.push_back({MutationOpKind::kAddLeaf, parent, kInvalidNode});
    }
    const auto out = mgr.mutate_sync("hot", std::move(ops));
    ASSERT_EQ(out.status, SessionStatus::kOk);
    for (const MutationRecord& rec : out.records)
      if (rec.ok && rec.leaf != kInvalidNode) leaves.push_back(rec.leaf);
  }

  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  churn.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(reads.load(), 0u);

  const auto stats = mgr.stats();
  EXPECT_EQ(stats.ops_applied,
            stats.ops_repaired + stats.ops_escalated + stats.ops_rejected);
  EXPECT_LE(stats.snapshots_retired, stats.snapshots_published);
  EXPECT_GE(stats.snapshots_published,
            static_cast<std::uint64_t>(kWriterBatches));
}

TEST(SessionStressTest, StatsIdentityNeverTearsUnderConcurrentReads) {
  // GET /stats calls stats_json() from the event loop while the
  // writer thread is mid-batch; to_json() hard-asserts the identity
  // applied == repaired + escalated + rejected, so a torn counter
  // snapshot would throw check_error straight through the server.
  // The ops_* group is updated and read under one lock precisely so
  // this loop can never fire the assert.
  SessionManager mgr;
  ASSERT_EQ(mgr.create("hot", 5, 16), SessionStatus::kOk);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> polls{0};
  std::thread poller([&mgr, &stop, &polls] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_NO_THROW((void)mgr.stats_json());
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (int b = 0; b < 300; ++b) {
    // Mixed outcomes each batch: one apply, one structured rejection.
    std::vector<MutationOp> ops;
    ops.push_back({MutationOpKind::kAddLeaf, 0, kInvalidNode});
    ops.push_back({MutationOpKind::kRemoveLeaf, 0, kInvalidNode});  // is_root
    ASSERT_EQ(mgr.mutate_sync("hot", std::move(ops)).status,
              SessionStatus::kOk);
  }

  stop.store(true, std::memory_order_release);
  poller.join();
  EXPECT_GT(polls.load(), 0u);
  const auto stats = mgr.stats();
  EXPECT_EQ(stats.ops_applied, 600u);
  EXPECT_EQ(stats.ops_applied,
            stats.ops_repaired + stats.ops_escalated + stats.ops_rejected);
}

TEST(SessionStressTest, ConcurrentSubmittersSeeExactlyOneCompletionEach) {
  SessionConfig config;
  config.mutation_queue_capacity = 8;  // force backpressure
  SessionManager mgr(config);
  ASSERT_EQ(mgr.create("q", 4, 16), SessionStatus::kOk);

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 100;
  std::atomic<int> done{0};
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        mgr.mutate("q", {{MutationOpKind::kAddLeaf, 0, kInvalidNode}},
                   [&](MutateOutcome out) {
                     done.fetch_add(1, std::memory_order_relaxed);
                     if (out.status == SessionStatus::kOk)
                       accepted.fetch_add(1, std::memory_order_relaxed);
                     else if (out.status == SessionStatus::kQueueFull)
                       rejected.fetch_add(1, std::memory_order_relaxed);
                   });
      }
    });
  }
  for (auto& t : submitters) t.join();
  mgr.shutdown(/*drain=*/true);

  // Every submission completed exactly once, one way or the other.
  EXPECT_EQ(done.load(), kSubmitters * kPerThread);
  EXPECT_EQ(accepted.load() + rejected.load(), kSubmitters * kPerThread);
  const auto stats = mgr.stats();
  EXPECT_EQ(stats.batches_completed, static_cast<std::uint64_t>(accepted));
  EXPECT_EQ(stats.batches_rejected_full,
            static_cast<std::uint64_t>(rejected));
}

}  // namespace
}  // namespace xt
