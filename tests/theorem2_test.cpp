// Theorem 2: injective embedding into X(r+4) with dilation 11.
#include <gtest/gtest.h>

#include "btree/generators.hpp"
#include "core/injective_lift.hpp"
#include "core/xtree_embedder.hpp"
#include "embedding/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

NodeId exact_n(std::int32_t r) {
  return static_cast<NodeId>(16 * ((std::int64_t{2} << r) - 1));
}

TEST(Theorem2, LiftIsInjectiveIntoFourLevelsDeeper) {
  Rng rng(10);
  const BinaryTree guest = make_random_tree(exact_n(3), rng);
  const auto base = XTreeEmbedder::embed(guest);
  const XTree base_host(base.stats.height);
  const auto lift = lift_injective(guest, base.embedding, base_host);
  EXPECT_EQ(lift.host_height, base.stats.height + 4);
  EXPECT_TRUE(lift.embedding.injective());
  EXPECT_TRUE(lift.embedding.complete());
}

TEST(Theorem2, LiftedImagesAreDescendantsOfBaseImages) {
  Rng rng(11);
  const BinaryTree guest = make_random_tree(exact_n(2), rng);
  const auto base = XTreeEmbedder::embed(guest);
  const XTree base_host(base.stats.height);
  const XTree lifted_host(base.stats.height + 4);
  const auto lift = lift_injective(guest, base.embedding, base_host);
  for (NodeId v = 0; v < guest.num_nodes(); ++v) {
    const std::string base_label =
        base_host.label_of(base.embedding.host_of(v));
    const std::string lift_label =
        lifted_host.label_of(lift.embedding.host_of(v));
    ASSERT_EQ(lift_label.size(), base_label.size() + 4);
    EXPECT_EQ(lift_label.substr(0, base_label.size()), base_label);
  }
}

class Theorem2Sweep : public ::testing::TestWithParam<std::string> {};

TEST_P(Theorem2Sweep, DilationAtMostEleven) {
  Rng rng(12);
  for (std::int32_t r : {1, 2, 3}) {
    const BinaryTree guest = make_family_tree(GetParam(), exact_n(r), rng);
    const auto base = XTreeEmbedder::embed(guest);
    const XTree base_host(base.stats.height);
    const auto lift = lift_injective(guest, base.embedding, base_host);
    const XTree lifted_host(lift.host_height);
    const auto rep = dilation_xtree(guest, lift.embedding, lifted_host);
    EXPECT_LE(rep.max, 11) << GetParam() << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, Theorem2Sweep,
                         ::testing::ValuesIn(tree_family_names()));

TEST(Theorem2, RejectsOverloadedBase) {
  const BinaryTree guest = make_path_tree(20);
  const XTree host(0);
  Embedding overloaded(20, host.num_vertices());
  for (NodeId v = 0; v < 20; ++v) overloaded.place(v, 0);
  EXPECT_THROW(lift_injective(guest, overloaded, host), check_error);
}

}  // namespace
}  // namespace xt
