// Bulk ingestion tests: the xtb1 container (round-trip, zero-copy
// views, corruption rejection), the streaming pipeline (accounting
// identity, bit-identity with the service path, sampled verify) and
// the live-service feeder.  XT_CORPUS_DIR is injected by the build.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "btree/canonical.hpp"
#include "bulk/corpus.hpp"
#include "bulk/feeder.hpp"
#include "bulk/pipeline.hpp"
#include "bulk/shard.hpp"
#include "io/serialize.hpp"
#include "service/service.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "btree/generators.hpp"

namespace xt {
namespace {

std::vector<BinaryTree> load_corpus_trees() {
  std::vector<std::pair<std::string, BinaryTree>> named;
  for (const auto& entry :
       std::filesystem::directory_iterator(XT_CORPUS_DIR)) {
    if (entry.path().extension() != ".tree") continue;
    std::ifstream in(entry.path());
    named.emplace_back(entry.path().filename().string(), load_tree(in));
  }
  std::sort(named.begin(), named.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<BinaryTree> out;
  out.reserve(named.size());
  for (auto& [name, tree] : named) out.push_back(std::move(tree));
  return out;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "xtb1-" + name;
}

std::string pack_trees(const std::vector<BinaryTree>& trees,
                       const std::string& name) {
  const std::string path = temp_path(name);
  CorpusWriter writer(path);
  for (const BinaryTree& t : trees) writer.add(t);
  writer.finalize();
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Xtb1, RoundTripsEveryCorpusTree) {
  const auto trees = load_corpus_trees();
  ASSERT_GE(trees.size(), 16u);
  const std::string path = pack_trees(trees, "roundtrip.xtb");
  const CorpusReader reader(path);
  ASSERT_EQ(reader.tree_count(), trees.size());
  for (std::uint64_t i = 0; i < reader.tree_count(); ++i) {
    // Bit-identical canonical digest straight off the mmap, and a
    // structurally identical materialisation.
    const CorpusReader::View v = reader.view(i);
    EXPECT_EQ(canonical_hash(v.num_nodes, v.left, v.right),
              canonical_hash(trees[i]))
        << "record " << i;
    EXPECT_EQ(reader.materialize(i).to_paren(), trees[i].to_paren())
        << "record " << i;
  }
}

TEST(Xtb1, ZeroCopyViewMatchesSoaArrays) {
  const auto trees = load_corpus_trees();
  const std::string path = pack_trees(trees, "views.xtb");
  const CorpusReader reader(path);
  for (std::uint64_t i = 0; i < reader.tree_count(); ++i) {
    const CorpusReader::View v = reader.view(i);
    ASSERT_EQ(v.num_nodes, trees[i].num_nodes());
    for (NodeId u = 0; u < v.num_nodes; ++u) {
      EXPECT_EQ(v.parent[u], trees[i].parent(u));
      EXPECT_EQ(v.left[u], trees[i].left(u));
      EXPECT_EQ(v.right[u], trees[i].right(u));
    }
  }
}

TEST(Xtb1, RawRepackPreservesDigests) {
  const auto trees = load_corpus_trees();
  const std::string path = pack_trees(trees, "repack-src.xtb");
  const CorpusReader reader(path);
  const std::string repacked = temp_path("repack-dst.xtb");
  {
    CorpusWriter writer(repacked);
    for (std::uint64_t i = 0; i < reader.tree_count(); ++i) {
      const CorpusReader::View v = reader.view(i);
      writer.add(v.num_nodes, v.parent, v.left, v.right);
    }
    writer.finalize();
  }
  EXPECT_EQ(read_file(path).substr(kCorpusHeaderBytes),
            read_file(repacked).substr(kCorpusHeaderBytes));
}

TEST(Xtb1, EmptyAndSingleCorpora) {
  const std::string empty = pack_trees({}, "empty.xtb");
  const CorpusReader r0(empty);
  EXPECT_EQ(r0.tree_count(), 0u);

  const std::string one = pack_trees({BinaryTree::single()}, "single.xtb");
  const CorpusReader r1(one);
  ASSERT_EQ(r1.tree_count(), 1u);
  EXPECT_EQ(r1.materialize(0).num_nodes(), 1);
}

TEST(Xtb1, SniffsContainersVsText) {
  const std::string path =
      pack_trees({BinaryTree::from_paren("((..)(..))")}, "sniff.xtb");
  EXPECT_TRUE(CorpusReader::sniff(path));
  const std::string text = temp_path("sniff.tree");
  write_file(text, "((..)(..))\n");
  EXPECT_FALSE(CorpusReader::sniff(text));
  EXPECT_FALSE(CorpusReader::sniff(temp_path("does-not-exist")));
}

TEST(Xtb1, RejectsCorruptedEnvelopes) {
  const auto trees = load_corpus_trees();
  const std::string path = pack_trees(trees, "envelope.xtb");
  const std::string good = read_file(path);

  const auto expect_rejected = [&](std::string bytes, const char* what) {
    const std::string bad_path = temp_path("envelope-bad.xtb");
    write_file(bad_path, bytes);
    EXPECT_THROW(CorpusReader{bad_path}, check_error) << what;
  };

  expect_rejected(good.substr(0, good.size() - 1), "truncated file");
  expect_rejected(good.substr(0, 40), "file shorter than the header");
  {
    std::string bad = good;
    bad[0] = 'X';
    expect_rejected(bad, "bad magic");
  }
  {
    std::string bad = good;
    bad[4] = 2;  // unsupported version (also breaks the header hash)
    expect_rejected(bad, "bad version");
  }
  {
    std::string bad = good;
    bad[8] ^= 1;  // tree_count no longer matches header_hash
    expect_rejected(bad, "header checksum");
  }
  {
    std::string bad = good;
    bad[good.size() - 1] ^= 1;  // index hash
    expect_rejected(bad, "index checksum");
  }
}

TEST(Xtb1, RejectsCorruptedRecordNotWholeCorpus) {
  const auto trees = load_corpus_trees();
  const std::string path = pack_trees(trees, "record.xtb");
  std::string bytes = read_file(path);
  // Flip one payload byte of the first record (its first parent
  // entry), leaving the envelope intact.
  bytes[kCorpusHeaderBytes + 8] ^= 0x20;
  write_file(path, bytes);

  const CorpusReader reader(path);
  CorpusReader::View v;
  std::string error;
  EXPECT_FALSE(reader.try_view(0, &v, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
  EXPECT_THROW(static_cast<void>(reader.view(0)), check_error);
  // Every other record still serves.
  for (std::uint64_t i = 1; i < reader.tree_count(); ++i)
    EXPECT_TRUE(reader.try_view(i, &v, nullptr)) << "record " << i;
}

TEST(BulkPipeline, AccountingIdentityHoldsWithCorruptRecords) {
  const auto trees = load_corpus_trees();
  const std::string path = pack_trees(trees, "accounting.xtb");
  std::string bytes = read_file(path);
  bytes[kCorpusHeaderBytes + 8] ^= 0x20;  // corrupt record 0's payload
  write_file(path, bytes);

  const CorpusReader reader(path);
  BulkOptions options;
  options.max_in_flight = 4;
  const BulkResult result = bulk_embed(reader, options);
  EXPECT_TRUE(result.stats.accounting_ok());
  EXPECT_EQ(result.stats.decoded, trees.size());
  EXPECT_EQ(result.stats.rejected, 1u);
  EXPECT_EQ(result.records[0].status, BulkRecordStatus::kRejected);
  EXPECT_EQ(result.stats.embedded + result.stats.deduped, trees.size() - 1);
}

TEST(BulkPipeline, DedupsIsomorphicShapes) {
  // Mirrored pairs share one canonical form: one embed, one dedup.
  std::vector<BinaryTree> trees;
  trees.push_back(BinaryTree::from_paren("(((..).).)"));
  trees.push_back(BinaryTree::from_paren("(.(.(..)))"));  // mirror
  trees.push_back(BinaryTree::from_paren("((..)(..))"));
  trees.push_back(BinaryTree::from_paren("((..)(..))"));
  const std::string path = pack_trees(trees, "dedup.xtb");
  const CorpusReader reader(path);
  const BulkResult result = bulk_embed(reader, BulkOptions{});
  EXPECT_EQ(result.stats.embedded, 2u);
  EXPECT_EQ(result.stats.deduped, 2u);
  EXPECT_EQ(result.records[0].canonical_hash,
            result.records[1].canonical_hash);
  EXPECT_EQ(result.records[1].status, BulkRecordStatus::kDeduped);
}

TEST(BulkPipeline, PlacementsBitIdenticalToServicePath) {
  Rng rng(401);
  std::vector<BinaryTree> trees;
  for (int i = 0; i < 12; ++i) trees.push_back(make_random_tree(48, rng));
  trees.push_back(trees[1]);  // duplicates exercise the dedup remap
  trees.push_back(trees[4]);
  const std::string path = pack_trees(trees, "identity.xtb");

  // Reference: one request at a time through the service.
  std::vector<Embedding> reference;
  {
    ServiceConfig config;
    config.num_shards = 1;
    EmbeddingService svc(config);
    for (const BinaryTree& t : trees) {
      EmbedRequest req;
      req.tree = t;
      const EmbedResponse r = svc.submit(std::move(req)).get();
      ASSERT_EQ(r.status, RequestStatus::kOk) << r.reason;
      reference.push_back(*r.embedding);
    }
  }

  const CorpusReader reader(path);
  BulkOptions options;
  options.keep_embeddings = true;
  options.max_in_flight = 3;  // force window recycling
  const BulkResult result = bulk_embed(reader, options);
  ASSERT_EQ(result.records.size(), trees.size());
  for (std::size_t i = 0; i < trees.size(); ++i) {
    ASSERT_TRUE(result.records[i].embedding.has_value()) << "record " << i;
    const Embedding& a = reference[i];
    const Embedding& b = *result.records[i].embedding;
    ASSERT_EQ(a.num_guest_nodes(), b.num_guest_nodes());
    ASSERT_EQ(a.num_host_vertices(), b.num_host_vertices());
    for (NodeId v = 0; v < a.num_guest_nodes(); ++v)
      ASSERT_EQ(a.host_of(v), b.host_of(v))
          << "record " << i << " node " << v;
  }
}

TEST(BulkPipeline, SampledVerifyIsCleanOnTheCorpus) {
  const auto trees = load_corpus_trees();
  const std::string path = pack_trees(trees, "verify.xtb");
  const CorpusReader reader(path);
  BulkOptions options;
  options.verify_sample = 1.0;
  const BulkResult result = bulk_embed(reader, options);
  EXPECT_EQ(result.stats.verified,
            result.stats.embedded + result.stats.deduped);
  EXPECT_EQ(result.stats.verify_failures, 0u);
  EXPECT_EQ(result.stats.rejected, 0u);
}

TEST(BulkPipeline, PartialSampleIsDeterministic) {
  const auto trees = load_corpus_trees();
  const std::string path = pack_trees(trees, "sample.xtb");
  const CorpusReader reader(path);
  BulkOptions options;
  options.verify_sample = 0.5;
  options.verify_seed = 7;
  const BulkResult a = bulk_embed(reader, options);
  const BulkResult b = bulk_embed(reader, options);
  EXPECT_EQ(a.stats.verified, b.stats.verified);
  EXPECT_LE(a.stats.verified, a.stats.embedded + a.stats.deduped);
  EXPECT_EQ(a.stats.verify_failures, 0u);
}

TEST(BulkPipeline, SubsetDrainMatchesFullDrainPerRecord) {
  const auto trees = load_corpus_trees();
  const std::string path = pack_trees(trees, "subset.xtb");
  const CorpusReader reader(path);
  const BulkResult full = bulk_embed(reader, BulkOptions{});

  // Every other record, in corpus order: slot k must describe corpus
  // record indices[k] and carry the same digest.
  std::vector<std::uint64_t> indices;
  for (std::uint64_t i = 0; i < reader.tree_count(); i += 2)
    indices.push_back(i);
  const BulkResult subset = bulk_embed(reader, BulkOptions{}, indices);
  ASSERT_EQ(subset.records.size(), indices.size());
  EXPECT_EQ(subset.stats.decoded, indices.size());
  EXPECT_TRUE(subset.stats.accounting_ok());
  for (std::size_t k = 0; k < indices.size(); ++k) {
    EXPECT_EQ(subset.records[k].index, indices[k]);
    EXPECT_EQ(subset.records[k].canonical_hash,
              full.records[indices[k]].canonical_hash);
  }
}

TEST(BulkSharded, MatchesSingleProcessDrainExactly) {
  // The global-identity acceptance claim: because the ring keys on
  // the canonical digest, every isomorphism class lands on one shard
  // in corpus order — same leads, same duplicate sets, so statuses,
  // digests and placements are identical to the unsharded drain and
  // the merged accounting balances globally.
  Rng rng(502);
  std::vector<BinaryTree> trees;
  for (int i = 0; i < 16; ++i) trees.push_back(make_random_tree(40, rng));
  trees.push_back(trees[2]);   // cross-record duplicates
  trees.push_back(trees[9]);
  trees.push_back(trees[2]);
  const std::string path = pack_trees(trees, "sharded.xtb");
  const CorpusReader reader(path);

  BulkOptions options;
  options.keep_embeddings = true;
  const BulkResult single = bulk_embed(reader, options);

  for (const std::size_t shards : {2u, 3u, 5u}) {
    SCOPED_TRACE(shards);
    ShardedBulkOptions sharded;
    sharded.bulk = options;
    sharded.num_shards = shards;
    const ShardedBulkResult result = sharded_bulk_embed(reader, sharded);
    ASSERT_EQ(result.records.size(), trees.size());
    ASSERT_EQ(result.shard_stats.size(), shards);
    EXPECT_EQ(result.stats.decoded, single.stats.decoded);
    EXPECT_EQ(result.stats.embedded, single.stats.embedded);
    EXPECT_EQ(result.stats.deduped, single.stats.deduped);
    EXPECT_EQ(result.stats.rejected, 0u);
    EXPECT_TRUE(result.stats.accounting_ok());
    for (std::size_t i = 0; i < trees.size(); ++i) {
      SCOPED_TRACE(i);
      EXPECT_EQ(result.records[i].index, i);
      EXPECT_EQ(result.records[i].status, single.records[i].status);
      EXPECT_EQ(result.records[i].canonical_hash,
                single.records[i].canonical_hash);
      ASSERT_TRUE(result.records[i].embedding.has_value());
      const Embedding& a = *single.records[i].embedding;
      const Embedding& b = *result.records[i].embedding;
      ASSERT_EQ(a.num_guest_nodes(), b.num_guest_nodes());
      for (NodeId v = 0; v < a.num_guest_nodes(); ++v)
        EXPECT_EQ(a.host_of(v), b.host_of(v)) << "node " << v;
    }
    // Isomorphic records really colocate.
    for (std::size_t i = 0; i < trees.size(); ++i) {
      for (std::size_t j = i + 1; j < trees.size(); ++j) {
        if (result.records[i].canonical_hash ==
            result.records[j].canonical_hash) {
          EXPECT_EQ(result.shard_of[i], result.shard_of[j])
              << i << " vs " << j;
        }
      }
    }
  }
}

TEST(BulkSharded, CorruptRecordsAreRejectedOnceGlobally) {
  const auto trees = load_corpus_trees();
  const std::string path = pack_trees(trees, "sharded-corrupt.xtb");
  std::string bytes = read_file(path);
  bytes[kCorpusHeaderBytes + 8] ^= 0x20;  // record 0's payload
  write_file(path, bytes);
  const CorpusReader reader(path);

  ShardedBulkOptions sharded;
  sharded.num_shards = 3;
  const ShardedBulkResult result = sharded_bulk_embed(reader, sharded);
  EXPECT_EQ(result.stats.decoded, trees.size());
  EXPECT_EQ(result.stats.rejected, 1u);
  EXPECT_TRUE(result.stats.accounting_ok());
  EXPECT_EQ(result.records[0].status, BulkRecordStatus::kRejected);
  EXPECT_NE(result.records[0].error.find("checksum"), std::string::npos)
      << result.records[0].error;
}

TEST(BulkFeeder, DrainsACorpusThroughALiveService) {
  const auto trees = load_corpus_trees();
  const std::string path = pack_trees(trees, "feeder.xtb");
  const CorpusReader reader(path);

  ServiceConfig config;
  config.num_shards = 1;
  config.queue_capacity = 8;
  config.bulk_queue_reserve = 4;
  EmbeddingService svc(config);
  BulkFeedOptions options;
  options.max_outstanding = 4;
  const BulkFeedStats stats = feed_corpus(svc, reader, options);
  EXPECT_EQ(stats.completed, trees.size());
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.skipped_corrupt, 0u);
  EXPECT_EQ(svc.stats().completed, trees.size());
}

TEST(BulkFeeder, SkipsCorruptRecordsAndServesTheRest) {
  const auto trees = load_corpus_trees();
  const std::string path = pack_trees(trees, "feeder-corrupt.xtb");
  std::string bytes = read_file(path);
  bytes[kCorpusHeaderBytes + 8] ^= 0x20;
  write_file(path, bytes);
  const CorpusReader reader(path);

  EmbeddingService svc;
  const BulkFeedStats stats = feed_corpus(svc, reader, BulkFeedOptions{});
  EXPECT_EQ(stats.skipped_corrupt, 1u);
  EXPECT_EQ(stats.completed, trees.size() - 1);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(BulkFeeder, RetriesBulkAdmissionUnderPressure) {
  Rng rng(77);
  std::vector<BinaryTree> trees;
  for (int i = 0; i < 24; ++i) trees.push_back(make_random_tree(32, rng));
  const std::string path = pack_trees(trees, "feeder-pressure.xtb");
  const CorpusReader reader(path);

  // Bulk admission capacity of 1 slot forces the feeder through its
  // retry loop while the shard drains.
  ServiceConfig config;
  config.num_shards = 1;
  config.queue_capacity = 2;
  config.bulk_queue_reserve = 1;
  EmbeddingService svc(config);
  BulkFeedOptions options;
  options.max_outstanding = 8;
  options.retry_backoff = std::chrono::milliseconds(0);
  const BulkFeedStats stats = feed_corpus(svc, reader, options);
  EXPECT_EQ(stats.completed, trees.size());
  EXPECT_EQ(stats.failed, 0u);
  // Every submit was answered: the service accounting must balance.
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.submitted, s.completed + s.rejected_full +
                             s.rejected_shutdown + s.expired + s.failed);
  EXPECT_EQ(s.rejected_bulk, s.rejected_full);
}

}  // namespace
}  // namespace xt
