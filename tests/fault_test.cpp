// Deterministic fault injection for the embedding service
// (service/fault.hpp): every terminal state is forced by plan — no
// sleeps, no timing races — and the accounting identity
//   submitted == completed + rejected + expired + failed
// is pinned counter by counter.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <utility>
#include <vector>

#include "btree/generators.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

EmbedRequest request_for(BinaryTree tree) {
  EmbedRequest req;
  req.tree = std::move(tree);
  return req;
}

void expect_identity(const ServiceStats& s) {
  EXPECT_EQ(s.submitted, s.completed + s.rejected_full + s.rejected_shutdown +
                             s.expired + s.failed);
}

TEST(FaultInjection, ForcedQueueFullRejection) {
  Rng rng(0xFA1);
  ServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.queue_capacity = 64;  // plenty of room: only the plan rejects
  cfg.fault_plan.reject_submit = {2};
  EmbeddingService svc(cfg);

  auto first = svc.submit(request_for(make_random_tree(40, rng)));
  auto second = svc.submit(request_for(make_random_tree(41, rng)));
  auto third = svc.submit(request_for(make_random_tree(42, rng)));

  const EmbedResponse r2 = second.get();
  EXPECT_EQ(r2.status, RequestStatus::kRejectedQueueFull);
  EXPECT_NE(r2.reason.find("fault injection"), std::string::npos) << r2.reason;
  EXPECT_EQ(first.get().status, RequestStatus::kOk);
  EXPECT_EQ(third.get().status, RequestStatus::kOk);

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.rejected_full, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_EQ(stats.failed, 0u);
  expect_identity(stats);
}

TEST(FaultInjection, ForcedDeadlineExpiry) {
  // No request carries a wall-clock deadline; expiry comes purely from
  // the plan, at the moment a shard dequeues the request.
  Rng rng(0xFA2);
  ServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.enable_batching = false;
  cfg.start_paused = true;
  cfg.fault_plan.expire_request = {1, 3};
  EmbeddingService svc(cfg);

  std::vector<std::future<EmbedResponse>> futs;
  for (int i = 0; i < 3; ++i)
    futs.push_back(svc.submit(request_for(make_random_tree(30 + i, rng))));
  svc.resume();

  const EmbedResponse r1 = futs[0].get();
  EXPECT_EQ(r1.status, RequestStatus::kExpiredDeadline);
  EXPECT_NE(r1.reason.find("fault injection"), std::string::npos) << r1.reason;
  EXPECT_EQ(futs[1].get().status, RequestStatus::kOk);
  EXPECT_EQ(futs[2].get().status, RequestStatus::kExpiredDeadline);

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.expired, 2u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.rejected_full, 0u);
  EXPECT_EQ(stats.failed, 0u);
  expect_identity(stats);
}

TEST(FaultInjection, ForcedWorkerException) {
  Rng rng(0xFA3);
  std::vector<std::string> diags;
  ServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.fault_plan.fail_embed = {1};
  cfg.diagnostic_sink = [&diags](const std::string& line) {
    diags.push_back(line);
  };
  EmbeddingService svc(cfg);

  const BinaryTree tree = make_random_tree(50, rng);
  const EmbedResponse r1 = svc.submit(request_for(tree)).get();
  EXPECT_EQ(r1.status, RequestStatus::kFailed);
  EXPECT_NE(r1.reason.find("forced worker exception"), std::string::npos)
      << r1.reason;
  EXPECT_FALSE(r1.embedding.has_value());

  // The shard survives its exception: the next request is served.
  const EmbedResponse r2 = svc.submit(request_for(tree)).get();
  EXPECT_EQ(r2.status, RequestStatus::kOk) << r2.reason;

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  expect_identity(stats);
  bool saw_failure_diag = false;
  for (const std::string& d : diags)
    if (d.find("embed failed") != std::string::npos) saw_failure_diag = true;
  EXPECT_TRUE(saw_failure_diag);
}

TEST(FaultInjection, ForcedCacheEvictionMidRun) {
  // Same tree four times, batching off: miss, hit, then a planned
  // eviction forces a second miss, then a hit again.
  Rng rng(0xFA4);
  ServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.enable_batching = false;
  cfg.fault_plan.evict_cache_before = {3};
  EmbeddingService svc(cfg);

  const BinaryTree tree = make_random_tree(200, rng);
  const EmbedResponse r1 = svc.submit(request_for(tree)).get();
  ASSERT_EQ(r1.status, RequestStatus::kOk);
  EXPECT_FALSE(r1.cache_hit);
  const EmbedResponse r2 = svc.submit(request_for(tree)).get();
  ASSERT_EQ(r2.status, RequestStatus::kOk);
  EXPECT_TRUE(r2.cache_hit);
  const EmbedResponse r3 = svc.submit(request_for(tree)).get();
  ASSERT_EQ(r3.status, RequestStatus::kOk);
  EXPECT_FALSE(r3.cache_hit) << "cache should have been cleared";
  const EmbedResponse r4 = svc.submit(request_for(tree)).get();
  ASSERT_EQ(r4.status, RequestStatus::kOk);
  EXPECT_TRUE(r4.cache_hit);

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_GE(stats.cache_evictions, 1u);  // the forced clear
  EXPECT_EQ(stats.completed, 4u);
  expect_identity(stats);
}

TEST(FaultInjection, ChaosPlanIsDeterministicAndAccounted) {
  // chaos() is a pure function of the seed; a full run under the plan
  // answers every request with exactly the planned terminal state.
  const FaultPlan plan = FaultPlan::chaos(0xC0FFEE, 24, 0.4);
  const FaultPlan again = FaultPlan::chaos(0xC0FFEE, 24, 0.4);
  EXPECT_EQ(plan.reject_submit, again.reject_submit);
  EXPECT_EQ(plan.expire_request, again.expire_request);
  EXPECT_EQ(plan.fail_embed, again.fail_embed);
  EXPECT_EQ(plan.evict_cache_before, again.evict_cache_before);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(FaultPlan{}.empty());

  Rng rng(0xFA5);
  ServiceConfig cfg;
  cfg.num_shards = 1;
  cfg.enable_batching = false;
  cfg.fault_plan = plan;
  EmbeddingService svc(cfg);

  std::uint64_t want_rejected = 0, want_expired = 0, want_failed = 0,
                want_ok = 0;
  for (std::uint64_t seq = 1; seq <= 24; ++seq) {
    // Serial submits: seq is exactly the submit order, and .get()
    // before the next submit keeps every group a singleton.
    const EmbedResponse res =
        svc.submit(request_for(make_random_tree(20 + static_cast<NodeId>(seq),
                                                rng)))
            .get();
    if (plan.reject_submit.count(seq) > 0) {
      EXPECT_EQ(res.status, RequestStatus::kRejectedQueueFull) << seq;
      ++want_rejected;
    } else if (plan.expire_request.count(seq) > 0) {
      EXPECT_EQ(res.status, RequestStatus::kExpiredDeadline) << seq;
      ++want_expired;
    } else if (plan.fail_embed.count(seq) > 0) {
      EXPECT_EQ(res.status, RequestStatus::kFailed) << seq;
      ++want_failed;
    } else {
      // evict_cache_before and fault-free submits both complete.
      EXPECT_EQ(res.status, RequestStatus::kOk) << seq << ": " << res.reason;
      ++want_ok;
    }
  }

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 24u);
  EXPECT_EQ(stats.rejected_full, want_rejected);
  EXPECT_EQ(stats.expired, want_expired);
  EXPECT_EQ(stats.failed, want_failed);
  EXPECT_EQ(stats.completed, want_ok);
  expect_identity(stats);
}

TEST(CanonicalCacheClear, DropsEntriesAndCountsEvictions) {
  CanonicalCache cache(8);
  CachedEmbedding entry;
  cache.insert({1, 10, Theorem::kT1, 16}, entry);
  cache.insert({2, 10, Theorem::kT1, 16}, entry);
  ASSERT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup({1, 10, Theorem::kT1, 16}), nullptr);
  EXPECT_EQ(cache.counters().evictions, 2u);
}

}  // namespace
}  // namespace xt
