#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace xt {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

NetClient& NetClient::operator=(NetClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    parser_ = std::move(other.parser_);
    http_buf_ = std::move(other.http_buf_);
    send_buf_ = std::move(other.send_buf_);
  }
  return *this;
}

bool NetClient::connect(const std::string& host, std::uint16_t port,
                        std::string* error, int timeout_ms) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = errno_text("socket");
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad address '" + host + "'";
    close();
    return false;
  }
  if (timeout_ms <= 0) {
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      if (error != nullptr) *error = errno_text("connect");
      close();
      return false;
    }
  } else {
    // Non-blocking connect + poll so a dead peer costs `timeout_ms`,
    // not the kernel's SYN-retransmit window (minutes by default).
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      if (error != nullptr) *error = errno_text("connect");
      close();
      return false;
    }
    if (rc != 0) {
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLOUT;
      do {
        rc = ::poll(&pfd, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        if (error != nullptr) *error = "connect: timed out";
        close();
        return false;
      }
      if (rc < 0) {
        if (error != nullptr) *error = errno_text("poll");
        close();
        return false;
      }
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &so_error, &len);
      if (so_error != 0) {
        if (error != nullptr) {
          *error = std::string("connect: ") + std::strerror(so_error);
        }
        close();
        return false;
      }
    }
    ::fcntl(fd_, F_SETFL, flags);
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  parser_ = FrameParser();
  http_buf_.clear();
  return true;
}

bool NetClient::connect_retry(const std::string& host, std::uint16_t port,
                              const ConnectRetryPolicy& policy,
                              std::string* error) {
  int backoff_ms = policy.backoff_initial_ms;
  const int attempts = policy.attempts > 0 ? policy.attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      timespec ts{};
      ts.tv_sec = backoff_ms / 1000;
      ts.tv_nsec = static_cast<long>(backoff_ms % 1000) * 1000000L;
      ::nanosleep(&ts, nullptr);
      backoff_ms = std::min(backoff_ms * 2, policy.backoff_max_ms);
    }
    if (connect(host, port, error, policy.connect_timeout_ms)) return true;
  }
  return false;
}

void NetClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void NetClient::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void NetClient::set_recv_timeout_ms(int ms) {
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<decltype(tv.tv_usec)>((ms % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool NetClient::send_all(std::string_view bytes, std::string* error) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    if (error != nullptr) *error = errno_text("send");
    return false;
  }
  return true;
}

bool NetClient::recv_frame(WireFrame* out, std::string* error) {
  for (;;) {
    switch (parser_.next(out)) {
      case FrameParser::Result::kFrame:
        return true;
      case FrameParser::Result::kError:
        if (error != nullptr) *error = parser_.error();
        return false;
      case FrameParser::Result::kNeedMore:
        break;
    }
    char buf[16384];
    const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r > 0) {
      parser_.feed(std::string_view(buf, static_cast<std::size_t>(r)));
      continue;
    }
    if (r == 0) {
      if (error != nullptr) *error = "connection closed mid-frame";
      return false;
    }
    if (errno == EINTR) continue;
    if (error != nullptr) *error = errno_text("recv");
    return false;
  }
}

bool NetClient::call(const WireFrame& request, WireFrame* response,
                     std::string* error) {
  // Reuse the per-client scratch buffer: steady-state callers (the
  // closed-loop benchmark, the hit-path loops) encode into capacity
  // retained from the previous call instead of allocating per frame.
  send_buf_.clear();
  encode_frame_into(send_buf_, request, request.payload);
  if (!send_all(send_buf_, error)) return false;
  return recv_frame(response, error);
}

bool NetClient::http(const std::string& method, const std::string& target,
                     std::string_view body, HttpResult* result,
                     std::string* error) {
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: localhost\r\n";
  if (!body.empty() || method == "POST") {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;
  if (!send_all(request, error)) return false;

  // Read one Content-Length-framed response, reusing leftover bytes
  // from a previous pipelined read.
  const auto find_headers_end = [this]() -> std::size_t {
    const std::size_t pos = http_buf_.find("\r\n\r\n");
    return pos == std::string::npos ? std::string::npos : pos + 4;
  };
  std::size_t header_end = find_headers_end();
  while (header_end == std::string::npos) {
    char buf[16384];
    const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r > 0) {
      http_buf_.append(buf, static_cast<std::size_t>(r));
      header_end = find_headers_end();
      continue;
    }
    if (r == 0) {
      if (error != nullptr) *error = "connection closed mid-response";
      return false;
    }
    if (errno == EINTR) continue;
    if (error != nullptr) *error = errno_text("recv");
    return false;
  }

  const std::string head = http_buf_.substr(0, header_end);
  if (head.compare(0, 9, "HTTP/1.1 ") != 0 || head.size() < 12) {
    if (error != nullptr) *error = "malformed status line";
    return false;
  }
  result->status = std::atoi(head.c_str() + 9);
  std::size_t content_length = 0;
  result->keep_alive = true;
  std::size_t pos = head.find("\r\n") + 2;
  while (pos < head.size()) {
    const std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos || eol == pos) break;
    const std::string line = head.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string key = line.substr(0, colon);
      std::string value = line.substr(colon + 1);
      while (!value.empty() && value.front() == ' ') value.erase(0, 1);
      for (char& ch : key)
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      if (key == "content-length") {
        content_length = static_cast<std::size_t>(std::atoll(value.c_str()));
      } else if (key == "connection") {
        result->keep_alive = value != "close";
      }
    }
    pos = eol + 2;
  }

  while (http_buf_.size() - header_end < content_length) {
    char buf[16384];
    const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r > 0) {
      http_buf_.append(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r == 0) {
      if (error != nullptr) *error = "connection closed mid-body";
      return false;
    }
    if (errno == EINTR) continue;
    if (error != nullptr) *error = errno_text("recv");
    return false;
  }
  result->body = http_buf_.substr(header_end, content_length);
  http_buf_.erase(0, header_end + content_length);
  return true;
}

}  // namespace xt
