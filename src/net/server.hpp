// The network edge of the embedding service (ISSUE 7): a non-blocking
// epoll server that speaks two protocols on one port and feeds
// EmbeddingService without ever parking an event loop on a future.
//
//   accept thread ──round robin──> N event loops (epoll, level-
//   (listen fd)                    triggered, eventfd wakeups)
//                                      │
//                        first 4 bytes sniffed per connection:
//                        "xtn1" -> binary frames   else -> HTTP/1.1
//                                      │
//                        incremental parsers (net/wire.hpp,
//                        net/http.hpp) tolerate partial reads and
//                        enforce frame / header limits
//                                      │
//                        EmbeddingService::submit(request, callback)
//                                      │
//                        callback (shard thread) encodes the response
//                        and posts it to the owning loop's completion
//                        queue; the loop flushes per-connection
//                        responses in request order
//
// Backpressure is structured end to end: the service's
// kRejectedQueueFull surfaces as HTTP 429 / WireStatus
// kRejectedQueueFull, connection and in-flight caps surface as
// kOverloaded (HTTP 429), and a draining server answers
// kRejectedShutdown (HTTP 503).  Nothing ever hangs silently.
//
// Slow consumers: each connection owns a bounded output buffer; a
// peer that stops reading while responses accumulate past
// max_output_buffer is disconnected (counted in stats) rather than
// allowed to pin server memory.  Responses in flight for a dead
// connection are dropped on arrival — the service still counts them
// completed, the server counts them responses_dropped.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/backend.hpp"
#include "net/http.hpp"
#include "net/wire.hpp"
#include "service/service.hpp"

namespace xt {

class SessionManager;

struct NetServerConfig {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Bind address; loopback by default (benchmarks, tests).
  std::string bind_addr = "127.0.0.1";
  /// Event-loop threads; 0 selects a small hardware-based default.
  unsigned num_loops = 0;
  /// Sets SO_REUSEPORT on the listener so independent server
  /// processes can share a port.
  bool reuse_port = false;
  /// Accepted-connection cap; further accepts are closed immediately.
  std::size_t max_connections = 1024;
  /// Per-connection in-flight request cap; beyond it requests are
  /// answered kOverloaded locally without touching the service.
  std::size_t max_inflight_per_conn = 64;
  /// Server-wide in-flight cap (all connections).
  std::size_t max_inflight_total = 4096;
  /// Per-frame payload limit for the binary protocol.
  std::size_t max_frame_payload = kWireDefaultMaxPayload;
  /// HTTP header-block / body limits.
  std::size_t max_header_bytes = kHttpDefaultMaxHeaderBytes;
  std::size_t max_body_bytes = kHttpDefaultMaxBodyBytes;
  /// Pending-output cap per connection; exceeding it is a
  /// slow-consumer disconnect.
  std::size_t max_output_buffer = 4u << 20;
  /// Parse-size cap applied to trees arriving over the wire.
  NodeId max_tree_nodes = 1u << 20;
  /// Serve canonical-cache hits inline on the event loop (digest the
  /// payload in place, answer from the epoch-pinned cache without
  /// submitting to the service).  Misses fall through unchanged.
  /// Runtime-togglable via set_inline_hits(); xt_serve exposes
  /// --no-inline-hits as the escape hatch.
  bool enable_inline_hits = true;
  /// Graceful-stop budget: how long stop() waits for in-flight
  /// responses to drain and flush before force-closing.
  int drain_timeout_ms = 5000;
  /// One line per notable event (accept-cap rejection, protocol
  /// error, slow-consumer disconnect); same contract as the service
  /// sink.
  std::function<void(const std::string&)> diagnostic_sink;
  /// Session workload (ISSUE 9): when set, the server routes the
  /// kSessionCreate/Mutate/Query/Drop frame formats and the
  /// /session/* HTTP endpoints to this manager, and /stats gains a
  /// "sessions" object.  nullptr (default) answers those surfaces
  /// with bad-request / 404.  Must outlive the server.
  SessionManager* sessions = nullptr;
  /// Admin hook (ISSUE 10): when set, POST /admin/checkpoint invokes
  /// it on the event-loop thread.  On success it returns true and
  /// fills *detail with a JSON body served as 200; on failure it
  /// returns false and fills *detail with an error message served as
  /// a structured 500.  Keep it quick — a cache snapshot holds each
  /// stripe lock only for the memcpy walk, but the loop is blocked
  /// for the file write.  Unset (default) answers the path 404.
  std::function<bool(std::string* detail)> checkpoint_handler;
};

/// Monotonic counters (atomics: loops and the acceptor update them
/// concurrently) plus gauges sampled at snapshot time.
struct NetServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t connections_rejected = 0;  // max_connections cap
  std::uint64_t slow_consumer_disconnects = 0;
  std::uint64_t protocol_errors = 0;   // framing/HTTP fatal errors
  std::uint64_t frames_received = 0;   // complete binary frames
  std::uint64_t http_requests = 0;     // complete HTTP requests
  std::uint64_t requests_submitted = 0;  // handed to the service
  std::uint64_t inline_hits = 0;    // answered on the loop, no submit
  std::uint64_t inline_misses = 0;  // digest probed the cache, missed
  std::uint64_t responses_sent = 0;   // serialised into a conn's output
  std::uint64_t responses_dropped = 0;   // connection died first
  std::uint64_t overloaded_rejections = 0;  // in-flight caps
  std::uint64_t shutdown_rejections = 0;    // answered while draining
  std::uint64_t bad_requests = 0;      // unparseable payloads
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::size_t open_connections = 0;    // gauge
  std::size_t inflight = 0;            // gauge

  [[nodiscard]] std::string to_json() const;
};

namespace net_detail {
struct CompletionQueue;
struct LoopOps;
}  // namespace net_detail

class NetServer {
 public:
  // Internal (defined in server.cpp); public so the completion-queue
  // bridge can name them without friending every helper.
  struct Counters;
  struct Loop;

  /// The service must outlive the server.  Wraps it in an owned
  /// ServiceBackend — the pre-PR 10 single-process shape.
  NetServer(EmbeddingService& service, NetServerConfig config = {});

  /// Serve an arbitrary backend (ISSUE 10: the router).  The backend
  /// must outlive the server.
  NetServer(EmbedBackend& backend, NetServerConfig config = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens and spawns the acceptor + event loops.  Throws
  /// check_error when the socket cannot be bound.
  void start();

  /// Graceful stop: closes the listener, answers requests that are
  /// still arriving with kRejectedShutdown, waits up to
  /// drain_timeout_ms for in-flight responses to drain and flush,
  /// then closes every connection and joins the threads.  Idempotent.
  void stop();

  /// The bound port (after start(); resolves port 0 bindings).
  [[nodiscard]] std::uint16_t port() const { return bound_port_; }

  [[nodiscard]] NetServerStats stats() const;
  [[nodiscard]] std::string stats_json() const { return stats().to_json(); }

  [[nodiscard]] const NetServerConfig& config() const { return config_; }

  /// Runtime toggle for the inline hit path (seeded from
  /// NetServerConfig::enable_inline_hits).  Benchmarks flip it to A/B
  /// inline-hit vs queued-hit serving on one live server.
  void set_inline_hits(bool on) {
    inline_hits_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool inline_hits_enabled() const {
    return inline_hits_.load(std::memory_order_relaxed);
  }

 private:
  friend struct net_detail::LoopOps;

  void accept_loop();
  void run_loop(Loop& loop);
  void diag(const std::string& line) const;

  // Owned only by the EmbeddingService convenience constructor;
  // declared before backend_ so the reference can bind to it.
  std::unique_ptr<EmbedBackend> owned_backend_;
  EmbedBackend& backend_;
  NetServerConfig config_;
  std::uint16_t bound_port_ = 0;
  int listen_fd_ = -1;
  int accept_wake_fd_ = -1;

  std::atomic<bool> started_{false};
  std::atomic<bool> inline_hits_{true};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_loops_{false};
  std::atomic<std::int64_t> drain_deadline_ns_{0};

  std::vector<std::unique_ptr<Loop>> loops_;
  std::thread acceptor_;

  std::atomic<std::size_t> open_connections_{0};

  // Shared with completion queues and service callbacks so counters
  // stay valid even for responses that outlive the server object.
  std::shared_ptr<Counters> counters_;
};

}  // namespace xt
