// Minimal HTTP/1.1 line protocol for the embed server: just enough of
// RFC 9112 to serve `POST /embed`, `GET /stats` and `GET /healthz`
// from curl / standard clients, as a pure incremental parser (no
// sockets) mirroring FrameParser so the same unit/fuzz harness drives
// both protocols.
//
// Supported: request line + headers (CRLF or bare LF), Content-Length
// bodies, keep-alive (default) and `Connection: close`, pipelined
// requests.  Not supported (rejected explicitly, never hung on):
// chunked transfer encoding (501) and header/body sizes beyond the
// configured limits (431 / 413).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xt {

inline constexpr std::size_t kHttpDefaultMaxHeaderBytes = 8u << 10;
inline constexpr std::size_t kHttpDefaultMaxBodyBytes = 1u << 20;

struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // origin-form, e.g. "/embed?theorem=t1"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; empty string when absent.
  [[nodiscard]] std::string_view header(std::string_view name) const;
  /// Path and query split at the first '?'.
  [[nodiscard]] std::string_view path() const;
  [[nodiscard]] std::string_view query() const;
  /// True unless the request asked for `Connection: close`.
  [[nodiscard]] bool keep_alive() const;
};

/// Value of `name` in an application/x-www-form-urlencoded query
/// string (no %-decoding: the embed API's values are plain tokens);
/// `fallback` when absent.
[[nodiscard]] std::string query_param(std::string_view query,
                                      std::string_view name,
                                      std::string_view fallback);

/// Incremental HTTP/1.1 request parser.  feed() bytes, next() yields
/// complete requests (pipelining: several per read are fine).  kError
/// is fatal for the connection; error_status() is the HTTP status to
/// send before closing (400 / 413 / 431 / 501).
class HttpParser {
 public:
  explicit HttpParser(std::size_t max_header_bytes = kHttpDefaultMaxHeaderBytes,
                      std::size_t max_body_bytes = kHttpDefaultMaxBodyBytes)
      : max_header_bytes_(max_header_bytes), max_body_bytes_(max_body_bytes) {}

  enum class Result { kRequest, kNeedMore, kError };

  void feed(std::string_view bytes);
  Result next(HttpRequest* out);

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] int error_status() const { return error_status_; }
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - off_; }

 private:
  Result fail(int status, std::string why);

  std::size_t max_header_bytes_;
  std::size_t max_body_bytes_;
  std::string buf_;
  std::size_t off_ = 0;
  std::string error_;
  int error_status_ = 0;
  bool failed_ = false;
};

/// Serialises a response with Content-Length and Connection headers.
/// `extra_headers` lines must be complete ("Retry-After: 1") without
/// the CRLF.
[[nodiscard]] std::string http_response(
    int status, std::string_view body,
    std::string_view content_type = "application/json",
    bool keep_alive = true,
    const std::vector<std::string>& extra_headers = {});

/// Appending form of http_response, for hot response writers (the
/// event loops' inline hit encoder) that reuse a per-connection
/// scratch buffer instead of allocating a string per response.
void append_http_response(std::string& out, int status, std::string_view body,
                          std::string_view content_type, bool keep_alive,
                          const std::vector<std::string>& extra_headers);

[[nodiscard]] const char* http_status_reason(int status);

}  // namespace xt
