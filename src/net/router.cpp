#include "net/router.hpp"

#include <sstream>
#include <utility>

#include "btree/canonical.hpp"
#include "util/check.hpp"

namespace xt {

namespace {

std::string json_error_body(const char* status, const std::string& reason) {
  std::string out = "{\"status\": \"";
  out += status;
  out += "\", \"reason\": \"";
  for (const char ch : reason) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      out += ' ';
    } else {
      out += ch;
    }
  }
  out += "\"}";
  return out;
}

std::string status_body(WireStatus status, const std::string& reason) {
  return json_error_body(wire_status_name(status), reason);
}

}  // namespace

// One shard's forwarding state: a bounded job queue drained by K
// worker threads, each owning one blocking NetClient.  The down flag
// is the circuit breaker — set after a failed connect burst, cleared
// by the first job to connect after the cooldown.
struct Router::ShardLink {
  std::size_t index = 0;
  RouterShardAddress address;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Job> queue;
  std::size_t executing = 0;  // popped, not yet answered
  bool stopping = false;
  bool down = false;
  std::chrono::steady_clock::time_point retry_at{};

  std::atomic<std::uint64_t> forwarded{0};
  std::atomic<std::uint64_t> shard_down{0};
  std::atomic<std::uint64_t> overloaded{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> call_failures{0};

  std::vector<std::thread> workers;
};

std::string RouterStats::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"submitted\": " << submitted << ",\n"
     << "  \"forwarded\": " << forwarded << ",\n"
     << "  \"shard_down_rejections\": " << shard_down_rejections << ",\n"
     << "  \"overloaded_rejections\": " << overloaded_rejections << ",\n"
     << "  \"shutdown_rejections\": " << shutdown_rejections << ",\n"
     << "  \"shards\": [";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const RouterShardStats& s = shards[i];
    os << (i == 0 ? "" : ",") << "\n    {\"forwarded\": " << s.forwarded
       << ", \"shard_down\": " << s.shard_down
       << ", \"overloaded\": " << s.overloaded
       << ", \"reconnects\": " << s.reconnects
       << ", \"call_failures\": " << s.call_failures
       << ", \"queue_depth\": " << s.queue_depth
       << ", \"down\": " << (s.down ? "true" : "false") << "}";
  }
  os << "\n  ]\n}";
  return os.str();
}

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      ring_(config_.shards.empty() ? 1 : config_.shards.size(),
            config_.points_per_shard) {
  XT_CHECK_MSG(!config_.shards.empty(), "router needs at least one shard");
  links_.reserve(config_.shards.size());
  for (std::size_t i = 0; i < config_.shards.size(); ++i) {
    auto link = std::make_unique<ShardLink>();
    link->index = i;
    link->address = config_.shards[i];
    links_.push_back(std::move(link));
  }
}

Router::~Router() { stop(); }

void Router::diag(const std::string& line) const {
  if (config_.diagnostic_sink) config_.diagnostic_sink(line);
}

void Router::start() {
  XT_CHECK_MSG(!started_.exchange(true), "Router::start called twice");
  const int workers =
      config_.connections_per_shard > 0 ? config_.connections_per_shard : 1;
  for (auto& link : links_) {
    link->workers.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      link->workers.emplace_back([this, &link = *link] { run_worker(link); });
    }
  }
}

void Router::stop() {
  if (!started_.load() || stopped_.exchange(true)) return;
  for (auto& link : links_) {
    std::deque<Job> drained;
    {
      std::lock_guard<std::mutex> lock(link->mu);
      link->stopping = true;
      drained.swap(link->queue);
    }
    link->cv.notify_all();
    for (Job& job : drained) {
      shutdown_rejections_.fetch_add(1, std::memory_order_relaxed);
      job.done(WireStatus::kRejectedShutdown,
               status_body(WireStatus::kRejectedShutdown, "router stopping"));
    }
  }
  for (auto& link : links_) {
    for (std::thread& t : link->workers) t.join();
    link->workers.clear();
  }
}

void Router::submit(EmbedRequest request, bool want_embedding,
                    std::function<void(WireStatus, std::string)> done) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t digest = request.canonical_digest.has_value()
                                   ? *request.canonical_digest
                                   : canonical_hash(request.tree);
  request.canonical_digest = digest;
  ShardLink& link = *links_[ring_.lookup(digest)];
  {
    std::lock_guard<std::mutex> lock(link.mu);
    if (link.stopping) {
      shutdown_rejections_.fetch_add(1, std::memory_order_relaxed);
      done(WireStatus::kRejectedShutdown,
           status_body(WireStatus::kRejectedShutdown, "router stopping"));
      return;
    }
    if (link.queue.size() + link.executing >= config_.max_inflight_per_shard) {
      link.overloaded.fetch_add(1, std::memory_order_relaxed);
      done(WireStatus::kOverloaded,
           status_body(WireStatus::kOverloaded,
                       "shard " + std::to_string(link.index) +
                           " in-flight cap reached"));
      return;
    }
    link.queue.push_back(Job{std::move(request), want_embedding,
                             std::move(done)});
  }
  link.cv.notify_one();
}

void Router::run_worker(ShardLink& link) {
  NetClient client;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(link.mu);
      link.cv.wait(lock,
                   [&link] { return link.stopping || !link.queue.empty(); });
      if (link.queue.empty()) return;  // stopping, queue drained by stop()
      job = std::move(link.queue.front());
      link.queue.pop_front();
      ++link.executing;
    }
    process_job(link, client, std::move(job));
    {
      std::lock_guard<std::mutex> lock(link.mu);
      --link.executing;
    }
  }
}

void Router::process_job(ShardLink& link, NetClient& client, Job job) {
  const auto fail_shard_down = [&](const std::string& reason) {
    link.shard_down.fetch_add(1, std::memory_order_relaxed);
    job.done(WireStatus::kShardDown,
             status_body(WireStatus::kShardDown,
                         "shard " + std::to_string(link.index) + ": " +
                             reason));
  };

  // Deadline bookkeeping: a job whose deadline lapsed while queued
  // here is answered locally, exactly as a service shard would.
  std::uint32_t deadline_ms = 0;
  if (job.request.deadline != ServiceClock::time_point{}) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        job.request.deadline - ServiceClock::now());
    if (remaining.count() <= 0) {
      job.done(WireStatus::kExpiredDeadline,
               status_body(WireStatus::kExpiredDeadline,
                           "deadline passed in router queue"));
      return;
    }
    deadline_ms = static_cast<std::uint32_t>(remaining.count());
  }

  if (!client.connected()) {
    // Circuit breaker: while the link is down and the cooldown has
    // not lapsed, fail fast instead of re-running the connect burst
    // for every queued request.
    bool fast_fail = false;
    {
      std::lock_guard<std::mutex> lock(link.mu);
      fast_fail =
          link.down && std::chrono::steady_clock::now() < link.retry_at;
    }
    if (fast_fail) {
      fail_shard_down("link down (cooling down before reconnect)");
      return;
    }
    std::string error;
    if (!client.connect_retry(link.address.host, link.address.port,
                              config_.connect, &error)) {
      bool newly_down = false;
      {
        std::lock_guard<std::mutex> lock(link.mu);
        newly_down = !link.down;
        link.down = true;
        link.retry_at = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.down_cooldown_ms);
      }
      if (newly_down) {
        diag("router: shard " + std::to_string(link.index) + " down: " +
             error);
      }
      fail_shard_down(error);
      return;
    }
    client.set_recv_timeout_ms(config_.request_timeout_ms);
    link.reconnects.fetch_add(1, std::memory_order_relaxed);
    bool was_down = false;
    {
      std::lock_guard<std::mutex> lock(link.mu);
      was_down = link.down;
      link.down = false;
    }
    if (was_down) {
      diag("router: shard " + std::to_string(link.index) + " recovered");
    }
  }

  // The internal RPC is one xtn1 frame each way: the request re-packed
  // as a kXtb1Record (the zero-copy digest format shards already
  // serve), the reply passed through verbatim.
  WireFrame request;
  request.format = static_cast<std::uint8_t>(WireFormat::kXtb1Record);
  request.code = static_cast<std::uint8_t>(job.request.theorem);
  request.flags = (job.request.bulk ? kWireFlagBulk : 0) |
                  (job.want_embedding ? kWireFlagWantEmbedding : 0);
  request.priority = job.request.priority;
  request.deadline_ms = deadline_ms;
  request.request_id =
      static_cast<std::uint32_t>(link.forwarded.load(std::memory_order_relaxed));
  request.payload = encode_xtb1_record(job.request.tree);

  WireFrame reply;
  std::string error;
  if (!client.call(request, &reply, &error)) {
    // A mid-call failure poisons the connection: close it, trip the
    // breaker, and answer structured.  The next job (post-cooldown)
    // re-probes the shard.
    client.close();
    link.call_failures.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(link.mu);
      link.down = true;
      link.retry_at = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(config_.down_cooldown_ms);
    }
    diag("router: shard " + std::to_string(link.index) + " call failed: " +
         error);
    fail_shard_down(error);
    return;
  }

  link.forwarded.fetch_add(1, std::memory_order_relaxed);
  WireStatus status = static_cast<WireStatus>(reply.code);
  if (reply.code > static_cast<std::uint8_t>(WireStatus::kShardDown)) {
    status = WireStatus::kFailed;
  }
  job.done(status, std::move(reply.payload));
}

RouterStats Router::stats() const {
  RouterStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.shutdown_rejections = shutdown_rejections_.load(std::memory_order_relaxed);
  for (const auto& link : links_) {
    RouterShardStats ls;
    ls.forwarded = link->forwarded.load(std::memory_order_relaxed);
    ls.shard_down = link->shard_down.load(std::memory_order_relaxed);
    ls.overloaded = link->overloaded.load(std::memory_order_relaxed);
    ls.reconnects = link->reconnects.load(std::memory_order_relaxed);
    ls.call_failures = link->call_failures.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(link->mu);
      ls.queue_depth = link->queue.size();
      ls.down = link->down;
    }
    s.forwarded += ls.forwarded;
    s.shard_down_rejections += ls.shard_down;
    s.overloaded_rejections += ls.overloaded;
    s.shards.push_back(ls);
  }
  return s;
}

std::string Router::stats_json() const { return stats().to_json(); }

}  // namespace xt
