// xtn1: the length-prefixed binary framing of the embed server
// (ISSUE 7).  One frame = one 32-byte little-endian header + payload:
//
//   off size  field
//   0   4     magic "xtn1"
//   4   1     version (= 1)
//   5   1     format    requests: payload encoding (0 paren, 1 Newick,
//                       2 xtb1 record); responses: 0 (JSON payload)
//   6   1     code      requests: theorem (0 T1, 1 T2, 2 T3);
//                       responses: WireStatus
//   7   1     flags     bit0 bulk, bit1 want_embedding (echoed back)
//   8   4     i32 priority            (requests; 0 in responses)
//   12  4     u32 deadline_ms         (requests; 0 = none, relative to
//                                      server receipt.  0 in responses)
//   16  4     u32 request_id          (caller-chosen, echoed verbatim)
//   20  4     u32 payload_len         (bounded by the parser limit)
//   24  8     u64 checksum            (hash64 of the payload bytes)
//   32  ...   payload
//
// The xtb1-record payload (format 2) is the corpus record core:
// u32 n, u32 reserved(0), then i32 parent[n] / left[n] / right[n] —
// the frame checksum covers it, so no per-record checksum is repeated.
//
// FrameParser is a pure incremental state machine over bytes — no
// sockets, no syscalls — so truncated / oversized / corrupted frames
// are unit-testable byte-at-a-time and fuzzable offline
// (xt_fuzz --replay @wire:FILE).  A connection feeds it every read and
// drains complete frames; kError means the stream is unrecoverable
// (framing lost) and the connection must close.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "service/request.hpp"

namespace xt {

inline constexpr char kWireMagic[4] = {'x', 't', 'n', '1'};
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderBytes = 32;
/// Default per-frame payload cap; NetServerConfig can lower/raise it.
inline constexpr std::size_t kWireDefaultMaxPayload = 1u << 20;

/// Payload encodings a request frame may carry.  Formats 0-2 are
/// embed requests (code = theorem); formats 3-6 are session ops
/// (ISSUE 9) routed to the server's SessionManager, with text
/// payloads:
///
///   kSessionCreate  "id [height [load]]"
///   kSessionMutate  "id\n" + mutation script (io/mutation_script.hpp;
///                   host/policy directives are ignored — the machine
///                   was fixed at create)
///   kSessionQuery   "id [version]"   (version 0 / absent = latest)
///   kSessionDrop    "id"
///
/// Session responses carry WireStatus in `code` as usual; statuses
/// with no wire twin (not-found, version-gone, ...) map to
/// kBadRequest with the precise session status in the JSON body.
enum class WireFormat : std::uint8_t {
  kParen = 0,
  kNewick = 1,
  kXtb1Record = 2,
  kSessionCreate = 3,
  kSessionMutate = 4,
  kSessionQuery = 5,
  kSessionDrop = 6,
};

/// Response status codes on the wire.  kRejectedQueueFull is the
/// binary twin of HTTP 429: explicit, structured backpressure.
enum class WireStatus : std::uint8_t {
  kOk = 0,
  kRejectedQueueFull = 1,  // service backpressure (HTTP 429)
  kRejectedShutdown = 2,   // server draining (HTTP 503)
  kExpiredDeadline = 3,    // deadline passed in queue (HTTP 504)
  kFailed = 4,             // embedder error (HTTP 500)
  kBadRequest = 5,         // malformed payload / fields (HTTP 400)
  kOverloaded = 6,         // connection in-flight cap (HTTP 429)
  kShardDown = 7,          // router: owning shard unreachable (HTTP 503)
};

[[nodiscard]] const char* wire_status_name(WireStatus s);
[[nodiscard]] WireStatus wire_status_of(RequestStatus s);
/// HTTP status code carrying the same meaning.
[[nodiscard]] int http_status_of(WireStatus s);

/// A decoded frame (either direction; field meaning per direction is
/// documented in the header-layout table above).
struct WireFrame {
  std::uint8_t version = kWireVersion;
  std::uint8_t format = 0;  // WireFormat on requests; 0 on responses
  std::uint8_t code = 0;    // theorem on requests; WireStatus on responses
  std::uint8_t flags = 0;
  std::int32_t priority = 0;
  std::uint32_t deadline_ms = 0;
  std::uint32_t request_id = 0;
  std::string payload;
};

inline constexpr std::uint8_t kWireFlagBulk = 1u << 0;
inline constexpr std::uint8_t kWireFlagWantEmbedding = 1u << 1;

/// Serialises a frame (header + checksummed payload).
[[nodiscard]] std::string encode_frame(const WireFrame& frame);

/// Appending form: serialises `header` with `payload` as the frame
/// payload (header.payload is ignored) onto `out`, so hot paths —
/// NetClient::call, the event loops' inline hit encoder — can reuse
/// one scratch buffer instead of allocating a string per frame.
void encode_frame_into(std::string& out, const WireFrame& header,
                       std::string_view payload);

/// Incremental frame decoder.  feed() appends bytes; next() extracts
/// complete frames until kNeedMore.  After kError the parser is stuck
/// by design — framing is lost, the stream cannot be resynchronised.
class FrameParser {
 public:
  explicit FrameParser(std::size_t max_payload = kWireDefaultMaxPayload)
      : max_payload_(max_payload) {}

  enum class Result { kFrame, kNeedMore, kError };

  void feed(std::string_view bytes);

  /// Extracts the next complete frame into *out.
  Result next(WireFrame* out);

  /// Human-readable description of the kError cause.
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Bytes currently buffered (tests: bounded-memory checks).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - off_; }

 private:
  std::size_t max_payload_;
  std::string buf_;
  std::size_t off_ = 0;  // consumed prefix, compacted lazily
  std::string error_;
  bool failed_ = false;
};

/// The response payload: a one-line JSON object with the service
/// outcome, in this field order: "status", "reason" (when set),
/// "host_height", "dilation", "load_factor", "cache_hit", then — iff
/// `include_embedding` and the response carries one — "embedding" as a
/// host-vertex array indexed by guest node, and finally "served_seq"
/// and "latency_ms".  The per-request fields come last on purpose:
/// everything before them is a pure function of the cached outcome,
/// so the inline hit path memoizes that prefix alongside the cache
/// entry and appends only the tail per request.  Shared by the binary
/// and HTTP paths so both protocols speak the same body.
[[nodiscard]] std::string embed_response_json(const EmbedResponse& response,
                                              bool include_embedding);

/// Appends the memoizable prefix of embed_response_json — every field
/// except "served_seq"/"latency_ms", without the closing brace.
void append_embed_response_prefix(std::string& out,
                                  const EmbedResponse& response,
                                  bool include_embedding);

/// Appends the per-request tail: ", "served_seq": N, "latency_ms": X}".
/// embed_response_json == prefix + tail by construction, which is what
/// keeps inline-hit bytes identical to queued-path bytes.
void append_embed_response_tail(std::string& out, std::uint64_t served_seq,
                                double latency_ms);

/// Encodes a tree as an xtb1-record payload (format 2).
[[nodiscard]] std::string encode_xtb1_record(const BinaryTree& tree);

/// Decodes an xtb1-record payload; returns an empty optional-style
/// result via `error` (non-empty on failure).
[[nodiscard]] BinaryTree decode_xtb1_record(std::string_view payload,
                                            std::string* error);

}  // namespace xt
