#include "net/http.hpp"

#include <algorithm>
#include <cctype>

namespace xt {
namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

}  // namespace

std::string_view HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return value;
  }
  return {};
}

std::string_view HttpRequest::path() const {
  const std::string_view t = target;
  const std::size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string_view HttpRequest::query() const {
  const std::string_view t = target;
  const std::size_t q = t.find('?');
  return q == std::string_view::npos ? std::string_view{} : t.substr(q + 1);
}

bool HttpRequest::keep_alive() const {
  return !iequals(trim(header("Connection")), "close");
}

std::string query_param(std::string_view query, std::string_view name,
                        std::string_view fallback) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view{}
                                          : query.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    const std::string_view key =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (key == name) {
      return std::string(eq == std::string_view::npos ? std::string_view{}
                                                      : pair.substr(eq + 1));
    }
  }
  return std::string(fallback);
}

void HttpParser::feed(std::string_view bytes) {
  if (failed_) return;
  if (off_ > 4096 && off_ * 2 > buf_.size()) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

HttpParser::Result HttpParser::fail(int status, std::string why) {
  failed_ = true;
  error_status_ = status;
  error_ = std::move(why);
  return Result::kError;
}

HttpParser::Result HttpParser::next(HttpRequest* out) {
  if (failed_) return Result::kError;
  const std::string_view data =
      std::string_view(buf_).substr(off_);
  // Locate the end of the header block (CRLFCRLF, tolerating bare LF).
  std::size_t header_end = std::string_view::npos;  // index past the blank line
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != '\n') continue;
    std::size_t line_start = i + 1;
    if (line_start < data.size() && data[line_start] == '\r') ++line_start;
    if (line_start < data.size() && data[line_start] == '\n') {
      header_end = line_start + 1;
      break;
    }
    // A leading empty line before any request is also terminal — but
    // we treat "\n" at position 0 as a malformed request line below.
  }
  if (header_end == std::string_view::npos) {
    if (data.size() > max_header_bytes_) {
      return fail(431, "header block exceeds " +
                           std::to_string(max_header_bytes_) + " bytes");
    }
    return Result::kNeedMore;
  }
  if (header_end > max_header_bytes_) {
    return fail(431, "header block exceeds " +
                         std::to_string(max_header_bytes_) + " bytes");
  }

  const std::string_view head = data.substr(0, header_end);
  // Split into lines on '\n', trimming a trailing '\r' from each.
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos < head.size()) {
    std::size_t nl = head.find('\n', pos);
    if (nl == std::string_view::npos) nl = head.size();
    std::string_view line = head.substr(pos, nl - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    lines.push_back(line);
    pos = nl + 1;
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) return fail(400, "empty request");

  // Request line: METHOD SP TARGET SP VERSION.
  const std::string_view request_line = lines[0];
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp2 == sp1 + 1 || sp2 + 1 >= request_line.size()) {
    return fail(400, "malformed request line");
  }
  HttpRequest req;
  req.method = std::string(request_line.substr(0, sp1));
  req.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  req.version = std::string(request_line.substr(sp2 + 1));
  if (req.version != "HTTP/1.1" && req.version != "HTTP/1.0") {
    return fail(400, "unsupported version '" + req.version + "'");
  }
  for (const char ch : req.method) {
    if (!std::isalpha(static_cast<unsigned char>(ch))) {
      return fail(400, "malformed method token");
    }
  }

  std::size_t content_length = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return fail(400, "malformed header line");
    }
    const std::string_view key = line.substr(0, colon);
    const std::string_view value = trim(line.substr(colon + 1));
    if (iequals(key, "Transfer-Encoding")) {
      return fail(501, "chunked transfer encoding is not supported");
    }
    if (iequals(key, "Content-Length")) {
      if (value.empty()) return fail(400, "empty Content-Length");
      std::size_t parsed = 0;
      for (const char ch : value) {
        if (ch < '0' || ch > '9') {
          return fail(400, "non-numeric Content-Length");
        }
        parsed = parsed * 10 + static_cast<std::size_t>(ch - '0');
        if (parsed > max_body_bytes_) {
          return fail(413, "body of " + std::string(value) +
                               " bytes exceeds limit " +
                               std::to_string(max_body_bytes_));
        }
      }
      content_length = parsed;
    }
    req.headers.emplace_back(std::string(key), std::string(value));
  }

  if (data.size() - header_end < content_length) return Result::kNeedMore;
  req.body = std::string(data.substr(header_end, content_length));
  off_ += header_end + content_length;
  *out = std::move(req);
  return Result::kRequest;
}

const char* http_status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
  }
  return "Unknown";
}

std::string http_response(int status, std::string_view body,
                          std::string_view content_type, bool keep_alive,
                          const std::vector<std::string>& extra_headers) {
  std::string out;
  append_http_response(out, status, body, content_type, keep_alive,
                       extra_headers);
  return out;
}

void append_http_response(std::string& out, int status, std::string_view body,
                          std::string_view content_type, bool keep_alive,
                          const std::vector<std::string>& extra_headers) {
  out.reserve(out.size() + 128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += http_status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n";
  for (const std::string& line : extra_headers) {
    out += line;
    out += "\r\n";
  }
  out += "\r\n";
  out.append(body.data(), body.size());
}

}  // namespace xt
