// Consistent-hash request router (ISSUE 10): the scale-out tier that
// fronts N xt_serve shard processes on one host.
//
//   clients ──> NetServer (epoll edge, digests payloads in place)
//                  │ EmbedBackend::submit(request + canonical digest)
//                  ▼
//               Router: HashRing(shards, 64 pts) picks the owner
//                  │ bounded per-shard job queue (kOverloaded beyond)
//                  ▼
//               ShardLink workers (K blocking NetClients per shard)
//                  │ xtn1 RPC: kXtb1Record request, status+JSON reply
//                  ▼
//               xt_serve shard ── reply passed through verbatim
//
// Digest routing means every isomorphic tree lands on the same shard,
// so each shard's canonical cache and inline hit path behave exactly
// as in the single-process deployment — the router adds fan-out, not
// a new cache layer.  Replies are forwarded byte-for-byte (status code
// and JSON body), so a routed response is the shard's response.
//
// Failure is structured, never silent: a full per-shard queue answers
// kOverloaded; a shard that cannot be reached after a bounded
// connect-retry burst (NetClient::connect_retry) marks its link down
// and answers kShardDown (HTTP 503) instantly until a cooldown
// expires, after which the next job probes the shard again — a
// restarted shard is picked up within one cooldown.  stop() drains
// queued jobs with kRejectedShutdown.  Every submit is answered
// exactly once.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/backend.hpp"
#include "net/client.hpp"
#include "util/hash_ring.hpp"

namespace xt {

struct RouterShardAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct RouterConfig {
  /// The shard processes, in ring order.  Ring ownership is a pure
  /// function of the shard *count*, so a restarted shard keeps its
  /// keyspace as long as it keeps its slot.
  std::vector<RouterShardAddress> shards;
  /// Ring points per shard (HashRing::kDefaultPointsPerShard keeps
  /// per-shard load imbalance within a few percent).
  int points_per_shard = HashRing::kDefaultPointsPerShard;
  /// Blocking RPC workers (each owning one connection) per shard.
  int connections_per_shard = 4;
  /// Queued + executing cap per shard; beyond it submits are answered
  /// kOverloaded without queueing.
  std::size_t max_inflight_per_shard = 256;
  /// Bounds each forwarded call's receive (a hung shard surfaces as
  /// kShardDown, never a stuck client).
  int request_timeout_ms = 30000;
  /// Per-burst connect policy for shard links (timeout + bounded
  /// retry-with-backoff).
  NetClient::ConnectRetryPolicy connect;
  /// After a failed connect burst the link fast-fails kShardDown for
  /// this long before the next job re-probes the shard.
  int down_cooldown_ms = 250;
  /// One line per notable event (link down, link recovered).
  std::function<void(const std::string&)> diagnostic_sink;
};

struct RouterShardStats {
  std::uint64_t forwarded = 0;       // calls answered by the shard
  std::uint64_t shard_down = 0;      // answered kShardDown locally
  std::uint64_t overloaded = 0;      // rejected at the queue cap
  std::uint64_t reconnects = 0;      // successful (re)connects
  std::uint64_t call_failures = 0;   // send/recv failures on a live link
  std::size_t queue_depth = 0;       // gauge
  bool down = false;                 // gauge
};

struct RouterStats {
  std::uint64_t submitted = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t shard_down_rejections = 0;
  std::uint64_t overloaded_rejections = 0;
  std::uint64_t shutdown_rejections = 0;
  std::vector<RouterShardStats> shards;

  [[nodiscard]] std::string to_json() const;
};

class Router final : public EmbedBackend {
 public:
  explicit Router(RouterConfig config);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Spawns the shard-link workers.  Connections are opened lazily by
  /// the first forwarded request, so a router can start before its
  /// shards finish binding.
  void start();

  /// Answers queued jobs kRejectedShutdown and joins the workers.
  /// Idempotent.
  void stop();

  // EmbedBackend:
  void submit(EmbedRequest request, bool want_embedding,
              std::function<void(WireStatus, std::string)> done) override;
  [[nodiscard]] bool routes_by_digest() const override { return true; }
  [[nodiscard]] std::string stats_json() const override;
  [[nodiscard]] const char* stats_key() const override { return "router"; }

  [[nodiscard]] RouterStats stats() const;
  [[nodiscard]] const HashRing& ring() const { return ring_; }

 private:
  struct Job {
    EmbedRequest request;
    bool want_embedding = false;
    std::function<void(WireStatus, std::string)> done;
  };

  struct ShardLink;

  void run_worker(ShardLink& link);
  void process_job(ShardLink& link, NetClient& client, Job job);
  void diag(const std::string& line) const;

  RouterConfig config_;
  HashRing ring_;
  std::vector<std::unique_ptr<ShardLink>> links_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> shutdown_rejections_{0};
};

}  // namespace xt
