// What sits behind a NetServer (ISSUE 10).  PR 7-9 hard-wired the
// server to an in-process EmbeddingService; the router needs the same
// epoll edge — sniffing, framing, ordered flushing, backpressure —
// with request execution replaced by forwarding to shard processes.
// EmbedBackend is that seam: the server parses and sequences, the
// backend answers with a terminal (WireStatus, JSON body) pair, and
// the server frames it for whichever protocol the connection speaks.
//
// The callback contract matches EmbeddingService::submit's: invoked
// exactly once per submit, from an arbitrary thread (service shard,
// router shard-link worker, or the submitting thread for immediate
// rejections), and it must not block — completions post to the event
// loop's queue and return.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "net/wire.hpp"
#include "service/service.hpp"

namespace xt {

class EmbedBackend {
 public:
  virtual ~EmbedBackend() = default;

  /// Answer `request` and call `done` exactly once with the terminal
  /// status and the response body (raw JSON, no HTTP/frame envelope).
  virtual void submit(EmbedRequest request, bool want_embedding,
                      std::function<void(WireStatus, std::string)> done) = 0;

  /// The cache the event loops probe for inline hits; nullptr when
  /// this backend has no local cache (the router: hits live in the
  /// shards).
  [[nodiscard]] virtual CanonicalCache* canonical_cache() { return nullptr; }

  /// The load bound baked into this backend's cache keys (only
  /// meaningful when canonical_cache() is non-null).
  [[nodiscard]] virtual NodeId cache_load() const { return 16; }

  /// True when the backend keys work on the canonical digest (the
  /// router's hash ring): the event loop then digests payloads in
  /// place and threads the digest through EmbedRequest even when the
  /// inline hit path is off.
  [[nodiscard]] virtual bool routes_by_digest() const { return false; }

  /// Stats object for /stats, and the JSON key it is published under
  /// ("service" for the in-process backend, "router" for the router).
  [[nodiscard]] virtual std::string stats_json() const = 0;
  [[nodiscard]] virtual const char* stats_key() const = 0;
};

/// The in-process backend: EmbeddingService behind the seam.  All
/// pre-PR 10 server behaviour (status mapping, response JSON, inline
/// hits against the service's cache) flows through here unchanged.
class ServiceBackend final : public EmbedBackend {
 public:
  explicit ServiceBackend(EmbeddingService& service) : service_(service) {}

  void submit(EmbedRequest request, bool want_embedding,
              std::function<void(WireStatus, std::string)> done) override;

  [[nodiscard]] CanonicalCache* canonical_cache() override {
    return service_.canonical_cache();
  }
  [[nodiscard]] NodeId cache_load() const override {
    return service_.config().load;
  }
  [[nodiscard]] std::string stats_json() const override {
    return service_.stats_json();
  }
  [[nodiscard]] const char* stats_key() const override { return "service"; }

 private:
  EmbeddingService& service_;
};

}  // namespace xt
