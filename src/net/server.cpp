#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif

#include "net/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "btree/canonical.hpp"
#include "io/newick.hpp"
#include "io/serialize.hpp"
#include "service/canonical_cache.hpp"
#include "service/session.hpp"
#include "util/check.hpp"

namespace xt {

// ---------------------------------------------------------------------------
// Shared counters.  Atomics because the acceptor, every event loop and
// every service shard (through the completion callbacks) update them.

struct NetServer::Counters {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};
  std::atomic<std::uint64_t> connections_rejected{0};
  std::atomic<std::uint64_t> slow_consumer_disconnects{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> http_requests{0};
  std::atomic<std::uint64_t> requests_submitted{0};
  std::atomic<std::uint64_t> inline_hits{0};
  std::atomic<std::uint64_t> inline_misses{0};
  std::atomic<std::uint64_t> responses_sent{0};
  std::atomic<std::uint64_t> responses_dropped{0};
  std::atomic<std::uint64_t> overloaded_rejections{0};
  std::atomic<std::uint64_t> shutdown_rejections{0};
  std::atomic<std::uint64_t> bad_requests{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  /// Requests handed to the service whose completion callback has not
  /// fired yet.  Decremented by the callback itself (shard thread), so
  /// it drains to zero even for connections that died first.
  std::atomic<std::size_t> inflight{0};
};

namespace net_detail {

// One response ready to be sequenced into a connection's output.
struct Completion {
  std::uint64_t conn_id = 0;
  std::uint64_t seq = 0;
  std::string bytes;
  bool close_after = false;
};

// The bridge between service shards and an event loop.  Service
// callbacks hold a shared_ptr to this (never to the loop or server),
// so a callback firing after the loop exited just drops the response.
struct CompletionQueue {
  std::mutex mu;
  std::vector<Completion> items;
  int wake_fd = -1;
  bool alive = true;
  std::shared_ptr<NetServer::Counters> counters;

  void post(Completion c) {
    std::lock_guard<std::mutex> lock(mu);
    if (!alive) {
      counters->responses_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    items.push_back(std::move(c));
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t w = ::write(wake_fd, &one, sizeof(one));
  }

  /// Called after the loop thread joined: anything still queued will
  /// never be delivered.
  void retire() {
    std::lock_guard<std::mutex> lock(mu);
    counters->responses_dropped.fetch_add(items.size(),
                                          std::memory_order_relaxed);
    items.clear();
    alive = false;
  }
};

enum class Proto { kUnknown, kBinary, kHttp };

struct PendingOut {
  std::string bytes;
  bool close_after = false;
};

struct Conn {
  int fd = -1;
  std::uint64_t id = 0;
  Proto proto = Proto::kUnknown;
  std::string sniff;  // bytes held until the protocol is known
  std::unique_ptr<FrameParser> frame;
  std::unique_ptr<HttpParser> http;
  std::uint64_t next_seq = 0;    // request arrival order
  std::uint64_t next_flush = 0;  // next seq to serialise into `out`
  std::map<std::uint64_t, PendingOut> ready;
  std::size_t inflight = 0;  // submitted, response not yet delivered
  std::string out;
  std::size_t out_off = 0;
  bool want_write = false;
  bool input_dead = false;  // fatal parse error answered; stop reading
  bool close_after_flush = false;

  // Inline hit-path scratch, reused across this connection's requests
  // so a steady stream of cache hits allocates nothing per request.
  TreeSoa soa;
  CanonicalScratch canon;
  std::string payload_buf;  // response JSON body
  std::string encode_buf;   // framed / HTTP-wrapped response bytes
  // Canonical digest of the current request's payload, set by
  // try_inline_hit when it digests in place and consumed by the
  // submit path so a digest-routing backend (the router's hash ring)
  // never re-hashes the tree.  Reset per request.
  std::optional<std::uint64_t> digest;
};

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

std::string json_error_body(const char* status, const std::string& reason) {
  std::string out = "{\"status\": \"";
  out += status;
  out += "\", \"reason\": \"";
  for (const char ch : reason) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (ch == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(ch) >= 0x20) {
      out += ch;
    }
  }
  out += "\"}";
  return out;
}

std::optional<long> parse_long(std::string_view text) {
  if (text.empty()) return std::nullopt;
  const std::string buf(text);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return std::nullopt;
  return v;
}

/// Session statuses that have a wire twin keep it; the rest surface
/// as kBadRequest with the precise status in the JSON body.
WireStatus wire_status_of_session(SessionStatus s) {
  switch (s) {
    case SessionStatus::kOk: return WireStatus::kOk;
    case SessionStatus::kQueueFull:
    case SessionStatus::kTooManySessions:
      return WireStatus::kRejectedQueueFull;
    case SessionStatus::kShutdown: return WireStatus::kRejectedShutdown;
    default: return WireStatus::kBadRequest;
  }
}

int http_status_of_session(SessionStatus s) {
  switch (s) {
    case SessionStatus::kOk: return 200;
    case SessionStatus::kNotFound: return 404;
    case SessionStatus::kAlreadyExists: return 409;
    case SessionStatus::kVersionGone: return 410;
    case SessionStatus::kQueueFull:
    case SessionStatus::kTooManySessions:
      return 429;
    case SessionStatus::kShutdown: return 503;
    case SessionStatus::kBadRequest: return 400;
  }
  return 500;
}

}  // namespace net_detail

// ---------------------------------------------------------------------------
// Loop state.

struct NetServer::Loop {
  unsigned index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::shared_ptr<net_detail::CompletionQueue> completions;
  std::mutex inbox_mu;
  std::vector<int> inbox;  // accepted fds awaiting registration
  std::unordered_map<std::uint64_t, std::unique_ptr<net_detail::Conn>> conns;
  std::uint64_t next_conn_id = 1;  // epoll data; 0 is the wake fd
  std::thread thread;
};

// ---------------------------------------------------------------------------
// Stats.

std::string NetServerStats::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"connections_accepted\": " << connections_accepted << ",\n"
     << "  \"connections_closed\": " << connections_closed << ",\n"
     << "  \"connections_rejected\": " << connections_rejected << ",\n"
     << "  \"slow_consumer_disconnects\": " << slow_consumer_disconnects
     << ",\n"
     << "  \"protocol_errors\": " << protocol_errors << ",\n"
     << "  \"frames_received\": " << frames_received << ",\n"
     << "  \"http_requests\": " << http_requests << ",\n"
     << "  \"requests_submitted\": " << requests_submitted << ",\n"
     << "  \"inline_hits\": " << inline_hits << ",\n"
     << "  \"inline_misses\": " << inline_misses << ",\n"
     << "  \"responses_sent\": " << responses_sent << ",\n"
     << "  \"responses_dropped\": " << responses_dropped << ",\n"
     << "  \"overloaded_rejections\": " << overloaded_rejections << ",\n"
     << "  \"shutdown_rejections\": " << shutdown_rejections << ",\n"
     << "  \"bad_requests\": " << bad_requests << ",\n"
     << "  \"bytes_in\": " << bytes_in << ",\n"
     << "  \"bytes_out\": " << bytes_out << ",\n"
     << "  \"open_connections\": " << open_connections << ",\n"
     << "  \"inflight\": " << inflight << "\n"
     << "}";
  return os.str();
}

NetServerStats NetServer::stats() const {
  const Counters& c = *counters_;
  NetServerStats s;
  s.connections_accepted = c.connections_accepted.load();
  s.connections_closed = c.connections_closed.load();
  s.connections_rejected = c.connections_rejected.load();
  s.slow_consumer_disconnects = c.slow_consumer_disconnects.load();
  s.protocol_errors = c.protocol_errors.load();
  s.frames_received = c.frames_received.load();
  s.http_requests = c.http_requests.load();
  s.requests_submitted = c.requests_submitted.load();
  s.inline_hits = c.inline_hits.load();
  s.inline_misses = c.inline_misses.load();
  s.responses_sent = c.responses_sent.load();
  s.responses_dropped = c.responses_dropped.load();
  s.overloaded_rejections = c.overloaded_rejections.load();
  s.shutdown_rejections = c.shutdown_rejections.load();
  s.bad_requests = c.bad_requests.load();
  s.bytes_in = c.bytes_in.load();
  s.bytes_out = c.bytes_out.load();
  s.open_connections = open_connections_.load();
  s.inflight = c.inflight.load();
  return s;
}

// ---------------------------------------------------------------------------
// Lifecycle.

NetServer::NetServer(EmbeddingService& service, NetServerConfig config)
    : owned_backend_(std::make_unique<ServiceBackend>(service)),
      backend_(*owned_backend_),
      config_(std::move(config)),
      counters_(std::make_shared<Counters>()) {
  inline_hits_.store(config_.enable_inline_hits, std::memory_order_relaxed);
  if (config_.num_loops == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    config_.num_loops = std::clamp(hw / 4, 1u, 4u);
  }
}

NetServer::NetServer(EmbedBackend& backend, NetServerConfig config)
    : backend_(backend),
      config_(std::move(config)),
      counters_(std::make_shared<Counters>()) {
  inline_hits_.store(config_.enable_inline_hits, std::memory_order_relaxed);
  if (config_.num_loops == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    config_.num_loops = std::clamp(hw / 4, 1u, 4u);
  }
}

NetServer::~NetServer() { stop(); }

void NetServer::diag(const std::string& line) const {
  if (config_.diagnostic_sink) config_.diagnostic_sink(line);
}

void NetServer::start() {
  using net_detail::errno_text;
  XT_CHECK_MSG(!started_.load(), "NetServer::start called twice");

  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  XT_CHECK_MSG(listen_fd_ >= 0, errno_text("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (config_.reuse_port)
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  XT_CHECK_MSG(
      ::inet_pton(AF_INET, config_.bind_addr.c_str(), &addr.sin_addr) == 1,
      "bad bind address '" + config_.bind_addr + "'");
  XT_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               errno_text("bind " + config_.bind_addr + ":" +
                          std::to_string(config_.port)));
  XT_CHECK_MSG(::listen(listen_fd_, 512) == 0, errno_text("listen"));

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  XT_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                         &len) == 0);
  bound_port_ = ntohs(bound.sin_port);

  accept_wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  XT_CHECK_MSG(accept_wake_fd_ >= 0, errno_text("eventfd"));

  loops_.clear();
  for (unsigned i = 0; i < config_.num_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->index = i;
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    XT_CHECK_MSG(loop->epoll_fd >= 0, errno_text("epoll_create1"));
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    XT_CHECK_MSG(loop->wake_fd >= 0, errno_text("eventfd"));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = 0;
    XT_CHECK(::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev) ==
             0);
    loop->completions = std::make_shared<net_detail::CompletionQueue>();
    loop->completions->wake_fd = loop->wake_fd;
    loop->completions->counters = counters_;
    loops_.push_back(std::move(loop));
  }

  draining_.store(false);
  stop_loops_.store(false);
  started_.store(true);
  for (auto& loop : loops_) {
    Loop* raw = loop.get();
    loop->thread = std::thread([this, raw] { run_loop(*raw); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

void NetServer::stop() {
  if (!started_.exchange(false)) return;

  // 1. Stop accepting: wake and join the acceptor, close the listener.
  draining_.store(true);
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t w = ::write(accept_wake_fd_, &one, sizeof(one));
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(accept_wake_fd_);
  accept_wake_fd_ = -1;

  // 2. Drain: loops keep serving completions and flushing output
  // (requests still arriving are answered kRejectedShutdown) until
  // everything in flight is answered and written, or the deadline
  // passes and remaining connections are force-closed.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(std::max(0, config_.drain_timeout_ms));
  drain_deadline_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          deadline.time_since_epoch())
          .count());
  stop_loops_.store(true);
  for (auto& loop : loops_) {
    [[maybe_unused]] ssize_t ww = ::write(loop->wake_fd, &one, sizeof(one));
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
    loop->completions->retire();
    ::close(loop->epoll_fd);
    ::close(loop->wake_fd);
  }
  loops_.clear();
}

// ---------------------------------------------------------------------------
// Acceptor.

void NetServer::accept_loop() {
  using net_detail::errno_text;
  std::size_t next_loop = 0;
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {accept_wake_fd_, POLLIN, 0};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      diag("net: acceptor poll failed: " + errno_text("poll"));
      return;
    }
    if ((fds[1].revents & POLLIN) != 0) return;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    for (;;) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        diag("net: accept failed: " + errno_text("accept"));
        break;
      }
      if (open_connections_.load() >= config_.max_connections) {
        counters_->connections_rejected.fetch_add(1,
                                                  std::memory_order_relaxed);
        diag("net: connection rejected (max_connections=" +
             std::to_string(config_.max_connections) + ")");
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      counters_->connections_accepted.fetch_add(1, std::memory_order_relaxed);
      open_connections_.fetch_add(1);
      Loop& loop = *loops_[next_loop];
      next_loop = (next_loop + 1) % loops_.size();
      {
        std::lock_guard<std::mutex> lock(loop.inbox_mu);
        loop.inbox.push_back(fd);
      }
      const std::uint64_t tick = 1;
      [[maybe_unused]] ssize_t ww = ::write(loop.wake_fd, &tick, sizeof(tick));
    }
  }
}

// ---------------------------------------------------------------------------
// Per-loop operations.  Any method that can destroy the connection
// returns false when it did; the caller must not touch `conn` after.

namespace net_detail {

struct LoopOps {
  NetServer& server;
  NetServer::Loop& loop;

  NetServer::Counters& counters() { return *server.counters_; }
  const NetServerConfig& cfg() { return server.config_; }

  void destroy(Conn& conn) {
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    counters().connections_closed.fetch_add(1, std::memory_order_relaxed);
    server.open_connections_.fetch_sub(1);
    loop.conns.erase(conn.id);  // deallocates `conn`
  }

  void update_write_interest(Conn& conn, bool want) {
    if (conn.want_write == want) return;
    conn.want_write = want;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.u64 = conn.id;
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  /// Writes as much pending output as the socket accepts.  Returns
  /// false when the connection was closed.
  bool try_write(Conn& conn) {
    while (conn.out_off < conn.out.size()) {
      const ssize_t w = ::send(conn.fd, conn.out.data() + conn.out_off,
                               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (w > 0) {
        conn.out_off += static_cast<std::size_t>(w);
        counters().bytes_out.fetch_add(static_cast<std::uint64_t>(w),
                                       std::memory_order_relaxed);
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      destroy(conn);
      return false;
    }
    if (conn.out_off == conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
      if (conn.close_after_flush) {
        destroy(conn);
        return false;
      }
      update_write_interest(conn, false);
    } else {
      // Inline hits append to `out` directly (no per-response cap
      // check in flush()), so the slow-consumer bound is enforced
      // here, on the undrained residue.
      const std::size_t pending = conn.out.size() - conn.out_off;
      if (pending > cfg().max_output_buffer) {
        counters().slow_consumer_disconnects.fetch_add(
            1, std::memory_order_relaxed);
        counters().responses_dropped.fetch_add(conn.ready.size(),
                                               std::memory_order_relaxed);
        server.diag("net: slow consumer disconnected (pending " +
                    std::to_string(pending) + " bytes, cap " +
                    std::to_string(cfg().max_output_buffer) + ")");
        destroy(conn);
        return false;
      }
      // Compact the consumed prefix once it dominates the buffer.
      if (conn.out_off > 65536 && conn.out_off * 2 > conn.out.size()) {
        conn.out.erase(0, conn.out_off);
        conn.out_off = 0;
      }
      update_write_interest(conn, true);
    }
    return true;
  }

  /// Moves in-order ready responses into the output buffer and writes.
  /// Enforces the slow-consumer bound.  Returns false when the
  /// connection was closed.
  bool flush(Conn& conn) {
    for (;;) {
      const auto it = conn.ready.find(conn.next_flush);
      if (it == conn.ready.end()) break;
      const std::size_t pending = conn.out.size() - conn.out_off;
      if (pending + it->second.bytes.size() > cfg().max_output_buffer) {
        counters().slow_consumer_disconnects.fetch_add(
            1, std::memory_order_relaxed);
        counters().responses_dropped.fetch_add(conn.ready.size(),
                                               std::memory_order_relaxed);
        server.diag("net: slow consumer disconnected (pending " +
                    std::to_string(pending) + " bytes, cap " +
                    std::to_string(cfg().max_output_buffer) + ")");
        destroy(conn);
        return false;
      }
      conn.out += it->second.bytes;
      counters().responses_sent.fetch_add(1, std::memory_order_relaxed);
      if (it->second.close_after) {
        conn.close_after_flush = true;
        conn.input_dead = true;
      }
      conn.ready.erase(it);
      ++conn.next_flush;
      if (conn.close_after_flush) break;
    }
    if (conn.close_after_flush && !conn.ready.empty()) {
      // The connection promised to close; responses sequenced after
      // the close marker will never be sent.
      counters().responses_dropped.fetch_add(conn.ready.size(),
                                             std::memory_order_relaxed);
      conn.ready.clear();
    }
    return try_write(conn);
  }

  void enqueue_local(Conn& conn, std::uint64_t seq, std::string bytes,
                     bool close_after) {
    conn.ready.emplace(seq, PendingOut{std::move(bytes), close_after});
  }

  // ---- inline hit path -----------------------------------------------
  //
  // The queue-free fast path (ISSUE 8): digest the request payload in
  // place, probe the epoch-guarded canonical cache lock-free on the
  // event loop, and answer a hit from the memoized encoded body
  // without ever constructing a BinaryTree, allocating a request, or
  // touching the service.  Anything that is not a clean hit — parse
  // error, unknown format or theorem, disabled cache, miss — returns
  // false and the legacy path runs unchanged, so every error and every
  // miss produces byte-identical responses to the pre-fast-path
  // server.  Misses parse twice (SoA digest here, BinaryTree in the
  // legacy path); the duplicate microsecond parse is noise next to the
  // millisecond embed that follows.

  /// Digests `payload` in place into raw (n, left, right) child
  /// arrays.  xtb1 records are validated and aliased with zero copies;
  /// paren / Newick parse into the connection's reusable SoA scratch.
  bool digest_payload(Conn& conn, std::uint8_t format,
                      std::string_view payload, NodeId* n,
                      const NodeId** left, const NodeId** right) {
    switch (format) {
      case static_cast<std::uint8_t>(WireFormat::kParen): {
        if (!try_parse_tree_soa(payload, cfg().max_tree_nodes, conn.soa).ok())
          return false;
        *n = conn.soa.num_nodes();
        *left = conn.soa.left.data();
        *right = conn.soa.right.data();
        return true;
      }
      case static_cast<std::uint8_t>(WireFormat::kNewick): {
        if (!try_parse_newick_soa(payload, cfg().max_tree_nodes, conn.soa)
                 .ok())
          return false;
        *n = conn.soa.num_nodes();
        *left = conn.soa.left.data();
        *right = conn.soa.right.data();
        return true;
      }
      case static_cast<std::uint8_t>(WireFormat::kXtb1Record): {
        // Mirrors decode_xtb1_record's checks, but aliases the payload
        // bytes instead of copying them into vectors.  NodeId is i32
        // little-endian on both sides (asserted by the xtb1 format),
        // and the arrays start at offset 8 of a heap-backed string, so
        // the reinterpret_cast below reads 4-byte-aligned memory.
        if (payload.size() < 8) return false;
        std::uint32_t raw_n = 0;
        std::memcpy(&raw_n, payload.data(), 4);
        if (raw_n == 0) return false;
        if (payload.size() !=
            8 + static_cast<std::size_t>(raw_n) * 3 * sizeof(NodeId))
          return false;
        if (raw_n > static_cast<std::uint32_t>(cfg().max_tree_nodes))
          return false;
        const auto* base =
            reinterpret_cast<const NodeId*>(payload.data() + 8);
        const std::size_t nn = raw_n;
        if (!soa_structure_error(static_cast<NodeId>(raw_n), base, base + nn,
                                 base + 2 * nn)
                 .empty())
          return false;
        *n = static_cast<NodeId>(raw_n);
        *left = base + nn;
        *right = base + 2 * nn;
        return true;
      }
      default:
        return false;
    }
  }

  /// Sequences an inline response.  The common case — this request is
  /// the next one to flush — appends straight onto the connection's
  /// output buffer (no PendingOut allocation; process_completions
  /// flushes after every completion, so `ready` cannot be holding
  /// next_flush here).  Out-of-order cases take the ready-map route.
  void deliver_inline(Conn& conn, std::uint64_t seq, std::string_view bytes,
                      bool close_after) {
    if (conn.next_flush == seq) {
      conn.out.append(bytes.data(), bytes.size());
      counters().responses_sent.fetch_add(1, std::memory_order_relaxed);
      ++conn.next_flush;
      if (close_after) {
        conn.close_after_flush = true;
        conn.input_dead = true;
      }
    } else {
      enqueue_local(conn, seq, std::string(bytes), close_after);
    }
  }

  /// Serves the request from the canonical cache if it is a hit.
  /// Returns true iff the response was fully sequenced; false falls
  /// through to the legacy parse/submit path.
  bool try_inline_hit(Conn& conn, std::uint64_t seq, std::uint8_t format,
                      std::string_view payload, std::uint8_t theorem_code,
                      bool want_embedding, bool http, bool keep_alive,
                      std::uint32_t request_id, std::uint8_t flags) {
    conn.digest.reset();
    CanonicalCache* cache = server.backend_.canonical_cache();
    const bool want_inline =
        server.inline_hits_.load(std::memory_order_relaxed) &&
        cache != nullptr;
    // A digest-routing backend wants the payload hashed in place even
    // when it cannot serve inline: the digest picks the shard.
    if (!want_inline && !server.backend_.routes_by_digest()) return false;
    if (theorem_code > 2) return false;
    const auto t0 = std::chrono::steady_clock::now();
    NodeId n = 0;
    const NodeId* left = nullptr;
    const NodeId* right = nullptr;
    if (!digest_payload(conn, format, payload, &n, &left, &right))
      return false;
    conn.digest = canonical_hash(n, left, right, conn.canon);
    if (!want_inline) return false;
    const CacheKey key{*conn.digest, n, static_cast<Theorem>(theorem_code),
                       server.backend_.cache_load()};
    const bool hit =
        cache->with_entry(key, [&](const CanonicalCache::Entry& e) {
          std::string& body = conn.payload_buf;
          body.clear();
          if (want_embedding) {
            // The embedding is per-request (guest labels differ even
            // when the canonical tree matches), so it cannot be
            // memoized: remap from the cached canonical assignment
            // exactly as a service shard would.
            const CachedEmbedding& ce = e.value();
            EmbedResponse r;
            r.status = RequestStatus::kOk;
            r.host_height = ce.host_height;
            r.dilation = ce.dilation;
            r.load_factor = ce.load_factor;
            r.cache_hit = true;
            const CanonicalForm form = canonical_form(n, left, right,
                                                      conn.canon);
            Embedding emb(n, ce.host_vertices);
            for (NodeId v = 0; v < n; ++v) {
              emb.place(v, ce.canonical_assign[static_cast<std::size_t>(
                               form.to_canonical[static_cast<std::size_t>(
                                   v)])]);
            }
            r.embedding = std::move(emb);
            append_embed_response_prefix(body, r, /*include_embedding=*/true);
          } else {
            const std::string* memo = e.encoded_body();
            if (memo == nullptr) {
              // First hit on this entry: build the cache-constant JSON
              // prefix once and memoize it on the entry (the memo dies
              // with the entry, so eviction invalidates it for free).
              const CachedEmbedding& ce = e.value();
              EmbedResponse r;
              r.status = RequestStatus::kOk;
              r.host_height = ce.host_height;
              r.dilation = ce.dilation;
              r.load_factor = ce.load_factor;
              r.cache_hit = true;
              std::string built;
              append_embed_response_prefix(built, r,
                                           /*include_embedding=*/false);
              e.publish_encoded_body(std::move(built));
              memo = e.encoded_body();
            }
            body += *memo;
          }
          const double latency_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
          // served_seq is a per-shard service stamp; inline answers
          // never reach a shard and report 0 (see docs/net.md).
          append_embed_response_tail(body, /*served_seq=*/0, latency_ms);
          std::string& bytes = conn.encode_buf;
          bytes.clear();
          bool close_after = false;
          if (http) {
            append_http_response(bytes, 200, body, "application/json",
                                 keep_alive, {});
            close_after = !keep_alive;
          } else {
            WireFrame f;
            f.format = 0;
            f.code = static_cast<std::uint8_t>(WireStatus::kOk);
            f.flags = flags;
            f.request_id = request_id;
            encode_frame_into(bytes, f, body);
          }
          deliver_inline(conn, seq, bytes, close_after);
        });
    if (hit) {
      counters().inline_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters().inline_misses.fetch_add(1, std::memory_order_relaxed);
    }
    return hit;
  }

  // ---- binary protocol -----------------------------------------------

  std::string wire_error_bytes(const WireFrame& request, WireStatus status,
                               const std::string& reason) {
    WireFrame f;
    f.format = 0;
    f.code = static_cast<std::uint8_t>(status);
    f.flags = request.flags;
    f.request_id = request.request_id;
    f.payload = json_error_body(wire_status_name(status), reason);
    return encode_frame(f);
  }

  void handle_frame(Conn& conn, WireFrame& frame) {
    counters().frames_received.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t seq = conn.next_seq++;

    if (server.draining_.load(std::memory_order_relaxed)) {
      counters().shutdown_rejections.fetch_add(1, std::memory_order_relaxed);
      enqueue_local(conn, seq,
                    wire_error_bytes(frame, WireStatus::kRejectedShutdown,
                                     "server draining"),
                    false);
      return;
    }
    if (conn.inflight >= cfg().max_inflight_per_conn ||
        counters().inflight.load(std::memory_order_relaxed) >=
            cfg().max_inflight_total) {
      counters().overloaded_rejections.fetch_add(1,
                                                 std::memory_order_relaxed);
      enqueue_local(conn, seq,
                    wire_error_bytes(frame, WireStatus::kOverloaded,
                                     "in-flight request cap reached"),
                    false);
      return;
    }

    // Session ops (formats 3-6) route to the SessionManager, not the
    // embed service.
    if (frame.format >= static_cast<std::uint8_t>(WireFormat::kSessionCreate) &&
        frame.format <= static_cast<std::uint8_t>(WireFormat::kSessionDrop)) {
      handle_session_frame(conn, seq, frame);
      return;
    }

    // Queue-free hit path: digest the payload in place and answer from
    // the canonical cache without submitting.  A miss — or anything
    // malformed — falls through to the legacy parse below, which
    // produces byte-identical error responses.
    if (try_inline_hit(conn, seq, frame.format, frame.payload, frame.code,
                       (frame.flags & kWireFlagWantEmbedding) != 0,
                       /*http=*/false, /*keep_alive=*/true, frame.request_id,
                       frame.flags)) {
      return;
    }

    EmbedRequest request;
    std::string parse_error;
    switch (frame.format) {
      case static_cast<std::uint8_t>(WireFormat::kParen): {
        TreeParseResult r = try_parse_tree(frame.payload,
                                           cfg().max_tree_nodes);
        if (!r.ok()) {
          parse_error = "paren payload: " +
                        std::string(tree_parse_status_name(r.status)) +
                        " at offset " + std::to_string(r.offset);
        } else {
          request.tree = std::move(r.tree);
        }
        break;
      }
      case static_cast<std::uint8_t>(WireFormat::kNewick): {
        TreeParseResult r =
            try_parse_newick(frame.payload, cfg().max_tree_nodes);
        if (!r.ok()) {
          parse_error = "newick payload: " +
                        std::string(tree_parse_status_name(r.status)) +
                        " at offset " + std::to_string(r.offset);
        } else {
          request.tree = std::move(r.tree);
        }
        break;
      }
      case static_cast<std::uint8_t>(WireFormat::kXtb1Record): {
        std::string err;
        BinaryTree tree = decode_xtb1_record(frame.payload, &err);
        if (!err.empty()) {
          parse_error = "xtb1 payload: " + err;
        } else if (tree.num_nodes() > cfg().max_tree_nodes) {
          parse_error = "xtb1 payload: tree exceeds max_tree_nodes";
        } else {
          request.tree = std::move(tree);
        }
        break;
      }
      default:
        parse_error = "unknown payload format " + std::to_string(frame.format);
    }
    if (parse_error.empty() && frame.code > 2)
      parse_error = "unknown theorem code " + std::to_string(frame.code);
    if (!parse_error.empty()) {
      counters().bad_requests.fetch_add(1, std::memory_order_relaxed);
      enqueue_local(
          conn, seq,
          wire_error_bytes(frame, WireStatus::kBadRequest, parse_error),
          false);
      return;
    }

    request.theorem = static_cast<Theorem>(frame.code);
    request.priority = frame.priority;
    request.bulk = (frame.flags & kWireFlagBulk) != 0;
    request.canonical_digest = conn.digest;
    if (frame.deadline_ms != 0) {
      request.deadline =
          ServiceClock::now() + std::chrono::milliseconds(frame.deadline_ms);
    }
    submit(conn, seq, std::move(request),
           /*http=*/false, /*keep_alive=*/true,
           (frame.flags & kWireFlagWantEmbedding) != 0, frame.request_id,
           frame.flags);
  }

  // ---- session workload (ISSUE 9) -------------------------------------
  //
  // Both protocols route session ops to NetServerConfig::sessions.
  // Create/drop/query answer inline on the event loop (the manager
  // serves them without blocking: map lookup + epoch-pinned snapshot
  // read).  Mutations go through SessionManager::mutate, whose
  // completion — writer thread for accepted batches, this thread for
  // rejections — posts to the loop's completion queue exactly like an
  // embed submit, so responses flush in request order either way.

  void respond_session_wire(Conn& conn, std::uint64_t seq,
                            const WireFrame& request, SessionStatus status,
                            std::string body) {
    WireFrame f;
    f.format = 0;
    f.code = static_cast<std::uint8_t>(wire_status_of_session(status));
    f.flags = request.flags;
    f.request_id = request.request_id;
    f.payload = std::move(body);
    enqueue_local(conn, seq, encode_frame(f), false);
  }

  void handle_session_frame(Conn& conn, std::uint64_t seq,
                            const WireFrame& frame) {
    SessionManager* sm = cfg().sessions;
    if (sm == nullptr) {
      counters().bad_requests.fetch_add(1, std::memory_order_relaxed);
      enqueue_local(conn, seq,
                    wire_error_bytes(frame, WireStatus::kBadRequest,
                                     "session ops not enabled"),
                    false);
      return;
    }
    switch (frame.format) {
      case static_cast<std::uint8_t>(WireFormat::kSessionCreate): {
        std::istringstream is(frame.payload);
        std::string id, height_tok, load_tok;
        is >> id >> height_tok >> load_tok;
        // Absent trailing tokens keep the -1 "use config default"
        // sentinel; present-but-non-numeric tokens are errors (a
        // failed `is >> long` would silently store 0 instead).
        long long height = -1, load = -1;
        const auto take = [](const std::string& tok, long long* out) {
          if (tok.empty()) return true;
          const std::optional<long> v = parse_long(tok);
          if (!v.has_value()) return false;
          *out = *v;
          return true;
        };
        if (!take(height_tok, &height) || !take(load_tok, &load)) {
          counters().bad_requests.fetch_add(1, std::memory_order_relaxed);
          respond_session_wire(
              conn, seq, frame, SessionStatus::kBadRequest,
              json_error_body("bad_request", "non-numeric height/load"));
          return;
        }
        std::string reason;
        const SessionStatus st =
            sm->create(id, static_cast<std::int32_t>(height),
                       static_cast<NodeId>(load), &reason);
        if (st == SessionStatus::kOk) {
          respond_session_wire(conn, seq, frame, st,
                               "{\"status\": \"ok\", \"version\": 1}");
        } else {
          counters().bad_requests.fetch_add(1, std::memory_order_relaxed);
          respond_session_wire(conn, seq, frame, st,
                               json_error_body(session_status_name(st),
                                               reason));
        }
        return;
      }
      case static_cast<std::uint8_t>(WireFormat::kSessionDrop): {
        std::istringstream is(frame.payload);
        std::string id;
        is >> id;
        const SessionStatus st = sm->drop(id);
        respond_session_wire(
            conn, seq, frame, st,
            st == SessionStatus::kOk
                ? std::string("{\"status\": \"ok\"}")
                : json_error_body(session_status_name(st),
                                  "unknown session '" + id + "'"));
        return;
      }
      case static_cast<std::uint8_t>(WireFormat::kSessionQuery): {
        std::istringstream is(frame.payload);
        std::string id;
        unsigned long long version = 0;
        is >> id >> version;
        std::string body;
        const SessionStatus st = sm->with_snapshot(
            id, version, [&](const EmbeddingSnapshot& snap) {
              body = session_embedding_json(id, snap);
            });
        if (st != SessionStatus::kOk)
          body = json_error_body(session_status_name(st),
                                 "session '" + id + "' version " +
                                     std::to_string(version));
        respond_session_wire(conn, seq, frame, st, std::move(body));
        return;
      }
      default: {  // kSessionMutate
        const std::string& payload = frame.payload;
        const std::size_t nl = payload.find('\n');
        const std::string id = payload.substr(0, nl);
        MutationScript script;
        std::string perr;
        if (!valid_session_id(id)) {
          // Rejecting here also keeps arbitrary payload bytes out of
          // every body that echoes the id.
          perr = "first payload line must be a valid session id";
        } else if (nl != std::string::npos) {
          (void)parse_mutation_script(
              std::string_view(payload).substr(nl + 1), &script, &perr);
        }
        if (!perr.empty()) {
          counters().bad_requests.fetch_add(1, std::memory_order_relaxed);
          respond_session_wire(conn, seq, frame, SessionStatus::kBadRequest,
                               json_error_body("bad_request", perr));
          return;
        }
        submit_session_mutation(conn, seq, sm, id, std::move(script.ops),
                                /*http=*/false, /*keep_alive=*/true,
                                frame.request_id, frame.flags);
        return;
      }
    }
  }

  void submit_session_mutation(Conn& conn, std::uint64_t seq,
                               SessionManager* sm, const std::string& id,
                               std::vector<MutationOp> ops, bool http,
                               bool keep_alive, std::uint32_t request_id,
                               std::uint8_t flags) {
    ++conn.inflight;
    counters().inflight.fetch_add(1);
    counters().requests_submitted.fetch_add(1, std::memory_order_relaxed);
    auto queue = loop.completions;
    auto counters_sp = server.counters_;
    const std::uint64_t conn_id = conn.id;
    sm->mutate(id, std::move(ops),
               [queue, counters_sp, conn_id, seq, http, keep_alive,
                request_id, flags](MutateOutcome outcome) {
                 const std::string body = mutate_outcome_json(outcome);
                 std::string bytes;
                 bool close_after = false;
                 if (http) {
                   const int status = http_status_of_session(outcome.status);
                   std::vector<std::string> extra;
                   if (status == 429) extra.push_back("Retry-After: 1");
                   bytes = http_response(status, body, "application/json",
                                         keep_alive, extra);
                   close_after = !keep_alive;
                 } else {
                   WireFrame f;
                   f.format = 0;
                   f.code = static_cast<std::uint8_t>(
                       wire_status_of_session(outcome.status));
                   f.flags = flags;
                   f.request_id = request_id;
                   f.payload = body;
                   bytes = encode_frame(f);
                 }
                 counters_sp->inflight.fetch_sub(1);
                 queue->post({conn_id, seq, std::move(bytes), close_after});
               });
  }

  void handle_session_http(Conn& conn, std::uint64_t seq,
                           const HttpRequest& req, bool keep) {
    SessionManager* sm = cfg().sessions;
    const std::string_view path = req.path();
    if (sm == nullptr) {
      counters().bad_requests.fetch_add(1, std::memory_order_relaxed);
      respond_http(conn, seq, 404,
                   json_error_body("bad-request", "sessions not enabled"),
                   keep);
      return;
    }
    if (server.draining_.load(std::memory_order_relaxed)) {
      counters().shutdown_rejections.fetch_add(1, std::memory_order_relaxed);
      respond_http(conn, seq, 503,
                   json_error_body("rejected-shutdown", "server draining"),
                   keep);
      return;
    }
    const auto bad = [&](const std::string& why) {
      counters().bad_requests.fetch_add(1, std::memory_order_relaxed);
      respond_http(conn, seq, 400, json_error_body("bad-request", why), keep);
    };
    if (path == "/session/create") {
      if (req.method != "POST") return bad("session create is POST-only");
      const std::string_view query = req.query();
      const std::string id = query_param(query, "id", "");
      const std::optional<long> height =
          parse_long(query_param(query, "height", "-1"));
      const std::optional<long> load =
          parse_long(query_param(query, "load", "-1"));
      if (!height.has_value() || !load.has_value())
        return bad("non-numeric height/load");
      std::string reason;
      const SessionStatus st =
          sm->create(id, static_cast<std::int32_t>(*height),
                     static_cast<NodeId>(*load), &reason);
      respond_http(conn, seq, http_status_of_session(st),
                   st == SessionStatus::kOk
                       ? std::string("{\"status\": \"ok\", \"version\": 1}")
                       : json_error_body(session_status_name(st), reason),
                   keep);
      return;
    }
    // /session/{id}/{mutate|embedding|drop}
    const std::string_view rest = path.substr(std::string_view("/session/").size());
    const std::size_t slash = rest.find('/');
    const std::string id(rest.substr(0, slash));
    const std::string_view action =
        slash == std::string_view::npos ? std::string_view{}
                                        : rest.substr(slash + 1);
    if (id.empty() || action.empty())
      return bad("expected /session/{id}/{mutate|embedding|drop}");
    if (!valid_session_id(id)) return bad("invalid session id");
    if (action == "mutate") {
      if (req.method != "POST") return bad("mutate is POST-only");
      MutationScript script;
      std::string perr;
      if (!parse_mutation_script(req.body, &script, &perr))
        return bad("mutation script: " + perr);
      if (conn.inflight >= cfg().max_inflight_per_conn ||
          counters().inflight.load(std::memory_order_relaxed) >=
              cfg().max_inflight_total) {
        counters().overloaded_rejections.fetch_add(1,
                                                   std::memory_order_relaxed);
        respond_http(
            conn, seq, 429,
            json_error_body("overloaded", "in-flight request cap reached"),
            keep);
        return;
      }
      submit_session_mutation(conn, seq, sm, id, std::move(script.ops),
                              /*http=*/true, keep, /*request_id=*/0,
                              /*flags=*/0);
      return;
    }
    if (action == "embedding") {
      if (req.method != "GET") return bad("embedding is GET-only");
      const std::optional<long> version =
          parse_long(query_param(req.query(), "version", "0"));
      if (!version.has_value() || *version < 0) return bad("bad version");
      std::string body;
      const SessionStatus st = sm->with_snapshot(
          id, static_cast<std::uint64_t>(*version),
          [&](const EmbeddingSnapshot& snap) {
            body = session_embedding_json(id, snap);
          });
      if (st != SessionStatus::kOk)
        body = json_error_body(session_status_name(st),
                               "session '" + id + "' version " +
                                   std::to_string(*version));
      respond_http(conn, seq, http_status_of_session(st), body, keep);
      return;
    }
    if (action == "drop") {
      if (req.method != "POST") return bad("drop is POST-only");
      const SessionStatus st = sm->drop(id);
      respond_http(conn, seq, http_status_of_session(st),
                   st == SessionStatus::kOk
                       ? std::string("{\"status\": \"ok\"}")
                       : json_error_body(session_status_name(st),
                                         "unknown session '" + id + "'"),
                   keep);
      return;
    }
    bad("unknown session action '" + std::string(action) + "'");
  }

  // ---- HTTP ----------------------------------------------------------

  void respond_http(Conn& conn, std::uint64_t seq, int status,
                    const std::string& body, bool keep_alive,
                    std::string_view content_type = "application/json") {
    std::vector<std::string> extra;
    if (status == 429) extra.push_back("Retry-After: 1");
    enqueue_local(conn, seq,
                  http_response(status, body, content_type, keep_alive,
                                extra),
                  !keep_alive);
  }

  void handle_http(Conn& conn, const HttpRequest& req) {
    counters().http_requests.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t seq = conn.next_seq++;
    const bool keep = req.keep_alive();
    const std::string_view path = req.path();

    if (path == "/healthz") {
      if (req.method != "GET") {
        respond_http(conn, seq, 405,
                     json_error_body("bad-request", "healthz is GET-only"),
                     keep);
      } else if (server.draining_.load(std::memory_order_relaxed)) {
        respond_http(conn, seq, 503,
                     json_error_body("rejected-shutdown", "server draining"),
                     keep);
      } else {
        respond_http(conn, seq, 200, "ok\n", keep, "text/plain");
      }
      return;
    }
    if (path == "/stats") {
      if (req.method != "GET") {
        respond_http(conn, seq, 405,
                     json_error_body("bad-request", "stats is GET-only"),
                     keep);
        return;
      }
      std::string body = "{\n\"";
      body += server.backend_.stats_key();
      body += "\": ";
      body += server.backend_.stats_json();
      body += ",\n\"net\": ";
      body += server.stats_json();
      if (cfg().sessions != nullptr) {
        body += ",\n\"sessions\": ";
        body += cfg().sessions->stats_json();
      }
      body += "\n}";
      respond_http(conn, seq, 200, body, keep);
      return;
    }
    if (path == "/admin/checkpoint") {
      if (req.method != "POST") {
        respond_http(conn, seq, 405,
                     json_error_body("bad-request", "checkpoint is POST-only"),
                     keep);
        return;
      }
      if (!cfg().checkpoint_handler) {
        counters().bad_requests.fetch_add(1, std::memory_order_relaxed);
        respond_http(conn, seq, 404,
                     json_error_body("bad-request",
                                     "checkpointing not configured "
                                     "(start with --checkpoint=FILE)"),
                     keep);
        return;
      }
      std::string detail;
      if (cfg().checkpoint_handler(&detail)) {
        respond_http(conn, seq, 200, detail, keep);
      } else {
        respond_http(conn, seq, 500, json_error_body("failed", detail), keep);
      }
      return;
    }
    if (path.rfind("/session/", 0) == 0) {
      handle_session_http(conn, seq, req, keep);
      return;
    }
    if (path != "/embed") {
      counters().bad_requests.fetch_add(1, std::memory_order_relaxed);
      respond_http(
          conn, seq, 404,
          json_error_body("bad-request",
                          "unknown path '" + std::string(path) + "'"),
          keep);
      return;
    }
    if (req.method != "POST") {
      counters().bad_requests.fetch_add(1, std::memory_order_relaxed);
      respond_http(conn, seq, 405,
                   json_error_body("bad-request", "embed is POST-only"),
                   keep);
      return;
    }
    if (server.draining_.load(std::memory_order_relaxed)) {
      counters().shutdown_rejections.fetch_add(1, std::memory_order_relaxed);
      respond_http(conn, seq, 503,
                   json_error_body("rejected-shutdown", "server draining"),
                   keep);
      return;
    }
    if (conn.inflight >= cfg().max_inflight_per_conn ||
        counters().inflight.load(std::memory_order_relaxed) >=
            cfg().max_inflight_total) {
      counters().overloaded_rejections.fetch_add(1,
                                                 std::memory_order_relaxed);
      respond_http(
          conn, seq, 429,
          json_error_body("overloaded", "in-flight request cap reached"),
          keep);
      return;
    }

    const std::string_view query = req.query();
    const std::string theorem_name = query_param(query, "theorem", "t1");
    const std::optional<Theorem> theorem = parse_theorem(theorem_name);
    const std::optional<long> priority =
        parse_long(query_param(query, "priority", "0"));
    const std::optional<long> deadline_ms =
        parse_long(query_param(query, "deadline_ms", "0"));
    const std::string bulk = query_param(query, "bulk", "0");
    const std::string want_emb = query_param(query, "want_embedding", "0");
    std::string bad;
    if (!theorem.has_value()) {
      bad = "unknown theorem '" + theorem_name + "'";
    } else if (!priority.has_value()) {
      bad = "non-numeric priority";
    } else if (!deadline_ms.has_value() || *deadline_ms < 0) {
      bad = "bad deadline_ms";
    } else if (req.body.empty()) {
      bad = "empty body (expected a paren or Newick tree)";
    }

    if (bad.empty()) {
      // Same queue-free hit path as the binary protocol; the body is
      // format-sniffed exactly like the legacy parse below.
      const auto format = static_cast<std::uint8_t>(
          sniff_newick(req.body) ? WireFormat::kNewick : WireFormat::kParen);
      if (try_inline_hit(conn, seq, format, req.body,
                         static_cast<std::uint8_t>(*theorem),
                         want_emb == "1" || want_emb == "true",
                         /*http=*/true, keep, /*request_id=*/0, /*flags=*/0)) {
        return;
      }
    }

    EmbedRequest request;
    if (bad.empty()) {
      TreeParseResult r =
          sniff_newick(req.body)
              ? try_parse_newick(req.body, cfg().max_tree_nodes)
              : try_parse_tree(req.body, cfg().max_tree_nodes);
      if (!r.ok()) {
        bad = "body: " + std::string(tree_parse_status_name(r.status)) +
              " at offset " + std::to_string(r.offset);
        if (!r.message.empty()) bad += " (" + r.message + ")";
      } else {
        request.tree = std::move(r.tree);
      }
    }
    if (!bad.empty()) {
      counters().bad_requests.fetch_add(1, std::memory_order_relaxed);
      respond_http(conn, seq, 400, json_error_body("bad-request", bad),
                   keep);
      return;
    }

    request.theorem = *theorem;
    request.priority = static_cast<std::int32_t>(*priority);
    request.bulk = bulk == "1" || bulk == "true";
    request.canonical_digest = conn.digest;
    if (*deadline_ms != 0) {
      request.deadline =
          ServiceClock::now() + std::chrono::milliseconds(*deadline_ms);
    }
    submit(conn, seq, std::move(request), /*http=*/true, keep,
           want_emb == "1" || want_emb == "true", /*request_id=*/0,
           /*flags=*/0);
  }

  // ---- service handoff -----------------------------------------------

  void submit(Conn& conn, std::uint64_t seq, EmbedRequest request, bool http,
              bool keep_alive, bool want_embedding, std::uint32_t request_id,
              std::uint8_t flags) {
    ++conn.inflight;
    counters().inflight.fetch_add(1);
    counters().requests_submitted.fetch_add(1, std::memory_order_relaxed);
    auto queue = loop.completions;
    auto counters_sp = server.counters_;
    const std::uint64_t conn_id = conn.id;
    server.backend_.submit(
        std::move(request), want_embedding,
        [queue, counters_sp, conn_id, seq, http, keep_alive, request_id,
         flags](WireStatus status, std::string body) {
          // Backend completion thread (service shard / router link):
          // encode here so the event loop only copies bytes.  Holds no
          // reference to the loop or server.
          std::string bytes;
          bool close_after = false;
          if (http) {
            const int http_status = http_status_of(status);
            std::vector<std::string> extra;
            if (http_status == 429) extra.push_back("Retry-After: 1");
            bytes = http_response(http_status, body, "application/json",
                                  keep_alive, extra);
            close_after = !keep_alive;
          } else {
            WireFrame f;
            f.format = 0;
            f.code = static_cast<std::uint8_t>(status);
            f.flags = flags;
            f.request_id = request_id;
            f.payload = std::move(body);
            bytes = encode_frame(f);
          }
          counters_sp->inflight.fetch_sub(1);
          queue->post({conn_id, seq, std::move(bytes), close_after});
        });
  }

  // ---- reads ---------------------------------------------------------

  /// Feeds freshly read bytes through sniffing + the protocol parser
  /// and dispatches every complete message.  Returns false when the
  /// connection was closed.
  bool ingest(Conn& conn, std::string_view data) {
    if (conn.input_dead) return true;
    if (conn.proto == Proto::kUnknown) {
      conn.sniff.append(data.data(), data.size());
      if (conn.sniff.size() < 4 &&
          std::memcmp(conn.sniff.data(), kWireMagic, conn.sniff.size()) == 0) {
        return true;  // still an ambiguous "xtn1" prefix; wait
      }
      if (conn.sniff.size() >= 4 &&
          std::memcmp(conn.sniff.data(), kWireMagic, 4) == 0) {
        conn.proto = Proto::kBinary;
        conn.frame = std::make_unique<FrameParser>(cfg().max_frame_payload);
        conn.frame->feed(conn.sniff);
      } else {
        conn.proto = Proto::kHttp;
        conn.http = std::make_unique<HttpParser>(cfg().max_header_bytes,
                                                 cfg().max_body_bytes);
        conn.http->feed(conn.sniff);
      }
      conn.sniff.clear();
      conn.sniff.shrink_to_fit();
    } else if (conn.proto == Proto::kBinary) {
      conn.frame->feed(data);
    } else {
      conn.http->feed(data);
    }

    if (conn.proto == Proto::kBinary) {
      WireFrame frame;
      for (;;) {
        const FrameParser::Result r = conn.frame->next(&frame);
        if (r == FrameParser::Result::kNeedMore) break;
        if (r == FrameParser::Result::kError) {
          counters().protocol_errors.fetch_add(1, std::memory_order_relaxed);
          server.diag("net: binary stream error: " + conn.frame->error());
          // Framing is lost: answer once with kBadRequest, close after
          // flush.  Responses already in flight still drain first.
          WireFrame none;
          enqueue_local(conn, conn.next_seq++,
                        wire_error_bytes(none, WireStatus::kBadRequest,
                                         conn.frame->error()),
                        true);
          conn.input_dead = true;
          break;
        }
        handle_frame(conn, frame);
        if (conn.input_dead) break;
      }
    } else {
      HttpRequest req;
      for (;;) {
        const HttpParser::Result r = conn.http->next(&req);
        if (r == HttpParser::Result::kNeedMore) break;
        if (r == HttpParser::Result::kError) {
          counters().protocol_errors.fetch_add(1, std::memory_order_relaxed);
          server.diag("net: http parse error (" +
                      std::to_string(conn.http->error_status()) +
                      "): " + conn.http->error());
          respond_http(conn, conn.next_seq++, conn.http->error_status(),
                       json_error_body("bad-request", conn.http->error()),
                       /*keep_alive=*/false);
          conn.input_dead = true;
          break;
        }
        handle_http(conn, req);
        if (conn.input_dead) break;
      }
    }
    return flush(conn);
  }

  /// Drains the socket until EAGAIN.  Returns false when the
  /// connection was closed.
  bool handle_readable(Conn& conn) {
    char buf[16384];
    for (;;) {
      const ssize_t r = ::recv(conn.fd, buf, sizeof(buf), 0);
      if (r > 0) {
        counters().bytes_in.fetch_add(static_cast<std::uint64_t>(r),
                                      std::memory_order_relaxed);
        if (!ingest(conn, std::string_view(buf, static_cast<std::size_t>(r))))
          return false;
        if (static_cast<std::size_t>(r) < sizeof(buf)) return true;
        continue;
      }
      if (r == 0) {
        // Peer closed.  Teardown abandons responses still in flight —
        // they are dropped (and counted) on arrival.
        destroy(conn);
        return false;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      destroy(conn);
      return false;
    }
  }
};

}  // namespace net_detail

// ---------------------------------------------------------------------------

void NetServer::run_loop(Loop& loop) {
  using net_detail::Completion;
  using net_detail::Conn;
  using net_detail::errno_text;
  net_detail::LoopOps ops{*this, loop};
  std::vector<epoll_event> events(64);

  const auto drain_eventfd = [&loop] {
    std::uint64_t junk = 0;
    while (::read(loop.wake_fd, &junk, sizeof(junk)) > 0) {
    }
  };

  const auto register_inbox = [&] {
    std::vector<int> fds;
    {
      std::lock_guard<std::mutex> lock(loop.inbox_mu);
      fds.swap(loop.inbox);
    }
    for (const int fd : fds) {
      if (stop_loops_.load(std::memory_order_relaxed)) {
        // Arrived after the drain started; never parsed, just close.
        ::close(fd);
        counters_->connections_closed.fetch_add(1, std::memory_order_relaxed);
        open_connections_.fetch_sub(1);
        continue;
      }
      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->id = loop.next_conn_id++;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = conn->id;
      if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        diag("net: epoll_ctl add failed: " + errno_text("epoll_ctl"));
        ::close(fd);
        counters_->connections_closed.fetch_add(1, std::memory_order_relaxed);
        open_connections_.fetch_sub(1);
        continue;
      }
      loop.conns.emplace(conn->id, std::move(conn));
    }
  };

  const auto process_completions = [&] {
    std::vector<Completion> items;
    {
      std::lock_guard<std::mutex> lock(loop.completions->mu);
      items.swap(loop.completions->items);
    }
    for (Completion& c : items) {
      const auto it = loop.conns.find(c.conn_id);
      if (it == loop.conns.end()) {
        counters_->responses_dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Conn& conn = *it->second;
      if (conn.inflight > 0) --conn.inflight;
      conn.ready.emplace(
          c.seq, net_detail::PendingOut{std::move(c.bytes), c.close_after});
      ops.flush(conn);  // may destroy conn
    }
  };

  for (;;) {
    const bool stopping = stop_loops_.load(std::memory_order_relaxed);
    const int timeout_ms = stopping ? 20 : 200;
    const int n = ::epoll_wait(loop.epoll_fd, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0 && errno != EINTR) {
      diag("net: epoll_wait failed: " + errno_text("epoll_wait"));
      break;
    }
    bool woke = false;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const epoll_event& ev = events[static_cast<std::size_t>(i)];
      if (ev.data.u64 == 0) {
        woke = true;
        continue;
      }
      const auto it = loop.conns.find(ev.data.u64);
      if (it == loop.conns.end()) continue;  // closed earlier this batch
      Conn& conn = *it->second;
      if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0) {
        ops.destroy(conn);
        continue;
      }
      if ((ev.events & EPOLLIN) != 0) {
        if (!ops.handle_readable(conn)) continue;
      }
      if ((ev.events & EPOLLOUT) != 0) ops.try_write(conn);
    }
    if (woke) drain_eventfd();
    register_inbox();
    process_completions();

    if (stopping) {
      // Close connections with nothing left to deliver; exit once all
      // are gone — or the drain deadline forces the issue.
      std::vector<std::uint64_t> idle;
      for (const auto& [id, conn] : loop.conns) {
        if (conn->inflight == 0 && conn->ready.empty() &&
            conn->out_off == conn->out.size()) {
          idle.push_back(id);
        }
      }
      for (const std::uint64_t id : idle) {
        const auto it = loop.conns.find(id);
        if (it != loop.conns.end()) ops.destroy(*it->second);
      }
      const auto now_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now()
                                  .time_since_epoch())
                              .count();
      const bool expired = now_ns >= drain_deadline_ns_.load();
      if (loop.conns.empty() || expired) {
        if (!loop.conns.empty()) {
          diag("net: drain deadline passed; force-closing " +
               std::to_string(loop.conns.size()) + " connection(s)");
          std::vector<std::uint64_t> ids;
          ids.reserve(loop.conns.size());
          for (const auto& [id, conn] : loop.conns) ids.push_back(id);
          for (const std::uint64_t id : ids) {
            const auto it = loop.conns.find(id);
            if (it != loop.conns.end()) ops.destroy(*it->second);
          }
        }
        break;
      }
    }
  }
}

}  // namespace xt
