// Blocking loopback client for the embed server: the test/benchmark
// counterpart of src/net/server.hpp.  One NetClient is one TCP
// connection; it can speak either protocol (the server sniffs per
// connection, so a client sticks to one).  All methods return false
// with `error` filled instead of throwing — wire-level failures are
// expected outcomes in the tests.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/http.hpp"
#include "net/wire.hpp"

namespace xt {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient() { close(); }

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  NetClient(NetClient&& other) noexcept { *this = std::move(other); }
  NetClient& operator=(NetClient&& other) noexcept;

  /// Bounded-retry policy for connect_retry: `attempts` tries, a
  /// per-attempt connect timeout, and exponential backoff between
  /// failures (initial doubling up to the cap).  The defaults suit a
  /// loopback shard link: a refused connect during a shard restart is
  /// retried for roughly half a second before the caller gives up.
  struct ConnectRetryPolicy {
    int attempts = 4;
    int connect_timeout_ms = 1000;
    int backoff_initial_ms = 25;
    int backoff_max_ms = 250;
  };

  /// Connects with an optional timeout (milliseconds; <= 0 blocks
  /// forever as before).  A timed-out attempt fails with "connect:
  /// timed out" instead of hanging for the kernel's SYN-retry window.
  [[nodiscard]] bool connect(const std::string& host, std::uint16_t port,
                             std::string* error, int timeout_ms = 0);

  /// connect() with bounded retry-with-backoff: used by the router's
  /// shard links so a shard restarting under it looks like a brief
  /// stall, not an error.  Returns false (last attempt's error) only
  /// after all attempts fail.
  [[nodiscard]] bool connect_retry(const std::string& host, std::uint16_t port,
                                   const ConnectRetryPolicy& policy,
                                   std::string* error);
  void close();
  /// Half-close the write side (tests: mid-stream disconnects).
  void shutdown_write();
  /// Bounds every subsequent recv (0 = block forever).  A timeout
  /// surfaces as a recv error, never a hang.
  void set_recv_timeout_ms(int ms);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Writes all of `bytes` (blocking).
  [[nodiscard]] bool send_all(std::string_view bytes, std::string* error);

  /// Reads until one complete frame is decoded.
  [[nodiscard]] bool recv_frame(WireFrame* out, std::string* error);

  /// encode_frame + send_all + recv_frame.
  [[nodiscard]] bool call(const WireFrame& request, WireFrame* response,
                          std::string* error);

  struct HttpResult {
    int status = 0;
    std::string body;
    bool keep_alive = true;
  };

  /// Sends one HTTP/1.1 request and reads one response (Content-Length
  /// framing only — matching what the server emits).
  [[nodiscard]] bool http(const std::string& method, const std::string& target,
                          std::string_view body, HttpResult* result,
                          std::string* error);

 private:
  int fd_ = -1;
  FrameParser parser_;
  std::string http_buf_;  // response bytes beyond the last parsed one
  std::string send_buf_;  // reused frame-encode scratch (call())
};

}  // namespace xt
