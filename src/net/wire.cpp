#include "net/wire.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace xt {
namespace {

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);  // little-endian layout asserted by xtb1 already
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

const char* wire_status_name(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kRejectedQueueFull: return "rejected-queue-full";
    case WireStatus::kRejectedShutdown: return "rejected-shutdown";
    case WireStatus::kExpiredDeadline: return "expired-deadline";
    case WireStatus::kFailed: return "failed";
    case WireStatus::kBadRequest: return "bad-request";
    case WireStatus::kOverloaded: return "overloaded";
    case WireStatus::kShardDown: return "shard-down";
  }
  return "unknown";
}

WireStatus wire_status_of(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk: return WireStatus::kOk;
    case RequestStatus::kRejectedQueueFull:
      return WireStatus::kRejectedQueueFull;
    case RequestStatus::kRejectedShutdown:
      return WireStatus::kRejectedShutdown;
    case RequestStatus::kExpiredDeadline: return WireStatus::kExpiredDeadline;
    case RequestStatus::kFailed: return WireStatus::kFailed;
  }
  return WireStatus::kFailed;
}

int http_status_of(WireStatus s) {
  switch (s) {
    case WireStatus::kOk: return 200;
    case WireStatus::kRejectedQueueFull: return 429;
    case WireStatus::kRejectedShutdown: return 503;
    case WireStatus::kExpiredDeadline: return 504;
    case WireStatus::kFailed: return 500;
    case WireStatus::kBadRequest: return 400;
    case WireStatus::kOverloaded: return 429;
    case WireStatus::kShardDown: return 503;
  }
  return 500;
}

void encode_frame_into(std::string& out, const WireFrame& header,
                       std::string_view payload) {
  XT_CHECK_MSG(payload.size() <= 0xffffffffu, "payload too large");
  out.reserve(out.size() + kWireHeaderBytes + payload.size());
  out.append(kWireMagic, 4);
  out.push_back(static_cast<char>(header.version));
  out.push_back(static_cast<char>(header.format));
  out.push_back(static_cast<char>(header.code));
  out.push_back(static_cast<char>(header.flags));
  put_u32(out, static_cast<std::uint32_t>(header.priority));
  put_u32(out, header.deadline_ms);
  put_u32(out, header.request_id);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u64(out, hash64(payload.data(), payload.size()));
  out.append(payload.data(), payload.size());
}

std::string encode_frame(const WireFrame& frame) {
  std::string out;
  encode_frame_into(out, frame, frame.payload);
  return out;
}

void FrameParser::feed(std::string_view bytes) {
  if (failed_) return;  // stream already unrecoverable; drop input
  // Compact once the consumed prefix dominates, keeping feed() O(1)
  // amortised and memory proportional to the unconsumed suffix.
  if (off_ > 4096 && off_ * 2 > buf_.size()) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

FrameParser::Result FrameParser::next(WireFrame* out) {
  if (failed_) return Result::kError;
  const std::size_t avail = buf_.size() - off_;
  if (avail < kWireHeaderBytes) return Result::kNeedMore;
  const char* h = buf_.data() + off_;
  if (std::memcmp(h, kWireMagic, 4) != 0) {
    failed_ = true;
    error_ = "bad magic (not an xtn1 frame)";
    return Result::kError;
  }
  const auto version = static_cast<std::uint8_t>(h[4]);
  if (version != kWireVersion) {
    failed_ = true;
    error_ = "unsupported xtn1 version " + std::to_string(version);
    return Result::kError;
  }
  const std::uint32_t payload_len = get_u32(h + 20);
  if (payload_len > max_payload_) {
    failed_ = true;
    error_ = "frame payload " + std::to_string(payload_len) +
             " exceeds limit " + std::to_string(max_payload_);
    return Result::kError;
  }
  if (avail < kWireHeaderBytes + payload_len) return Result::kNeedMore;
  const char* payload = h + kWireHeaderBytes;
  const std::uint64_t expect = get_u64(h + 24);
  const std::uint64_t actual = hash64(payload, payload_len);
  if (expect != actual) {
    failed_ = true;
    std::ostringstream os;
    os << "payload checksum mismatch (header 0x" << std::hex << expect
       << ", computed 0x" << actual << ")";
    error_ = os.str();
    return Result::kError;
  }
  out->version = version;
  out->format = static_cast<std::uint8_t>(h[5]);
  out->code = static_cast<std::uint8_t>(h[6]);
  out->flags = static_cast<std::uint8_t>(h[7]);
  out->priority = static_cast<std::int32_t>(get_u32(h + 8));
  out->deadline_ms = get_u32(h + 12);
  out->request_id = get_u32(h + 16);
  out->payload.assign(payload, payload_len);
  off_ += kWireHeaderBytes + payload_len;
  return Result::kFrame;
}

void append_embed_response_prefix(std::string& out,
                                  const EmbedResponse& response,
                                  bool include_embedding) {
  out += "{\"status\": \"";
  out += status_name(response.status);
  out += '"';
  if (!response.reason.empty()) {
    out += ", \"reason\": \"";
    for (const char ch : response.reason) {
      // The reasons are service-generated ASCII; escape defensively.
      if (ch == '"' || ch == '\\') {
        out += '\\';
        out += ch;
      } else if (ch == '\n') {
        out += "\\n";
      } else if (static_cast<unsigned char>(ch) >= 0x20) {
        out += ch;
      }
    }
    out += '"';
  }
  out += ", \"host_height\": ";
  out += std::to_string(response.host_height);
  out += ", \"dilation\": ";
  out += std::to_string(response.dilation);
  out += ", \"load_factor\": ";
  out += std::to_string(response.load_factor);
  out += ", \"cache_hit\": ";
  out += response.cache_hit ? "true" : "false";
  if (include_embedding && response.embedding.has_value()) {
    const Embedding& emb = *response.embedding;
    out += ", \"embedding\": [";
    for (NodeId v = 0; v < emb.num_guest_nodes(); ++v) {
      if (v > 0) out += ", ";
      out += std::to_string(emb.host_of(v));
    }
    out += ']';
  }
}

void append_embed_response_tail(std::string& out, std::uint64_t served_seq,
                                double latency_ms) {
  out += ", \"served_seq\": ";
  out += std::to_string(served_seq);
  out += ", \"latency_ms\": ";
  // %g matches the ostream defaultfloat/precision-6 rendering the
  // JSON body has always used for this field.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", latency_ms);
  out += buf;
  out += '}';
}

std::string embed_response_json(const EmbedResponse& response,
                                bool include_embedding) {
  std::string out;
  append_embed_response_prefix(out, response, include_embedding);
  append_embed_response_tail(out, response.served_seq, response.latency_ms);
  return out;
}

std::string encode_xtb1_record(const BinaryTree& tree) {
  const auto n = static_cast<std::uint32_t>(tree.num_nodes());
  std::string out;
  out.reserve(8 + static_cast<std::size_t>(n) * 12);
  put_u32(out, n);
  put_u32(out, 0);
  const auto bytes = static_cast<std::size_t>(n) * sizeof(NodeId);
  out.append(reinterpret_cast<const char*>(tree.parent_data()), bytes);
  out.append(reinterpret_cast<const char*>(tree.left_data()), bytes);
  out.append(reinterpret_cast<const char*>(tree.right_data()), bytes);
  return out;
}

BinaryTree decode_xtb1_record(std::string_view payload, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return BinaryTree();
  };
  if (payload.size() < 8) return fail("record shorter than its 8-byte core");
  const std::uint32_t n = get_u32(payload.data());
  if (n == 0) return fail("record with zero nodes");
  const std::size_t need =
      8 + static_cast<std::size_t>(n) * 3 * sizeof(NodeId);
  if (payload.size() != need)
    return fail("record size " + std::to_string(payload.size()) +
                " does not match n=" + std::to_string(n) + " (expected " +
                std::to_string(need) + ")");
  std::vector<NodeId> parent(n);
  std::vector<NodeId> left(n);
  std::vector<NodeId> right(n);
  const auto bytes = static_cast<std::size_t>(n) * sizeof(NodeId);
  const char* p = payload.data() + 8;
  std::memcpy(parent.data(), p, bytes);
  std::memcpy(left.data(), p + bytes, bytes);
  std::memcpy(right.data(), p + 2 * bytes, bytes);
  const std::string structure = soa_structure_error(
      static_cast<NodeId>(n), parent.data(), left.data(), right.data());
  if (!structure.empty()) return fail(structure);
  return BinaryTree::from_soa(std::move(parent), std::move(left),
                              std::move(right));
}

}  // namespace xt
