#include "net/backend.hpp"

#include <utility>

namespace xt {

void ServiceBackend::submit(EmbedRequest request, bool want_embedding,
                            std::function<void(WireStatus, std::string)> done) {
  service_.submit(std::move(request),
                  [want_embedding, done = std::move(done)](
                      EmbedResponse response) {
                    done(wire_status_of(response.status),
                         embed_response_json(response, want_embedding));
                  });
}

}  // namespace xt
