#include "baseline/butterfly_embeddings.hpp"

#include "util/check.hpp"

namespace xt {

Embedding cbt_into_butterfly(const CompleteBinaryTree& tree,
                             const Butterfly& host) {
  XT_CHECK_MSG(host.dimension() >= tree.height(),
               "butterfly dimension must cover the tree height");
  Embedding emb(static_cast<NodeId>(tree.num_vertices()),
                host.num_vertices());
  // Heap index v at depth k has root-path bits b_1..b_k where b_i is
  // the i-th branching decision; bit i of (v+1) below the leading one,
  // read from the top.  Packing b_i into row bit i-1 makes the child
  // step "append b_{k+1}" exactly the butterfly's level-k straight /
  // cross edge.
  for (VertexId v = 0; v < tree.num_vertices(); ++v) {
    const std::int32_t depth = tree.level_of(v);
    const std::int64_t path =
        static_cast<std::int64_t>(v) + 1 - (std::int64_t{1} << depth);
    // path bit j (0 = last decision) corresponds to b_{depth-j}; we
    // need row bit i-1 = b_i, i.e. reverse the path bits.
    std::int64_t row = 0;
    for (std::int32_t i = 0; i < depth; ++i) {
      if ((path >> (depth - 1 - i)) & 1) row |= std::int64_t{1} << i;
    }
    emb.place(static_cast<NodeId>(v), host.id_of(depth, row));
  }
  XT_CHECK(emb.injective());
  return emb;
}

}  // namespace xt
