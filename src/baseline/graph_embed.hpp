// Generic graph-to-graph embedding machinery for the context
// experiments (§1 of the paper): embedding X-trees, grids and complete
// binary trees into constant-degree hypercube derivatives (butterfly,
// CCC) to exhibit the dilation behaviour proved in [3].
#pragma once

#include "embedding/embedding.hpp"
#include "graph/graph.hpp"

namespace xt {

/// Greedy locality embedding of an arbitrary connected guest graph
/// into a host graph under a load cap: guests are placed in BFS order,
/// each at the free host vertex nearest to its first placed
/// neighbour's image.  This is an upper-bound heuristic — good enough
/// to show *shape* (constant vs growing dilation), not optimal.
Embedding greedy_graph_embed(const Graph& guest, const Graph& host,
                             NodeId load);

struct GraphDilationReport {
  std::int32_t max = 0;
  double mean = 0.0;
};

/// Dilation of a guest-graph embedding (BFS distances in the host,
/// one search per distinct source image).
GraphDilationReport graph_dilation(const Graph& guest, const Embedding& emb,
                                   const Graph& host);

}  // namespace xt
