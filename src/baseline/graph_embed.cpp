#include "baseline/graph_embed.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/bfs.hpp"
#include "util/check.hpp"

namespace xt {

Embedding greedy_graph_embed(const Graph& guest, const Graph& host,
                             NodeId load) {
  XT_CHECK(guest.num_vertices() >= 1);
  XT_CHECK(static_cast<std::int64_t>(load) * host.num_vertices() >=
           guest.num_vertices());
  XT_CHECK_MSG(is_connected(guest), "greedy embedder needs a connected guest");

  Embedding emb(static_cast<NodeId>(guest.num_vertices()),
                host.num_vertices());
  std::vector<NodeId> free(static_cast<std::size_t>(host.num_vertices()),
                           load);
  const auto nearest_free = [&](VertexId from) {
    std::vector<char> seen(static_cast<std::size_t>(host.num_vertices()), 0);
    std::vector<VertexId> queue{from};
    seen[static_cast<std::size_t>(from)] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId x = queue[head];
      if (free[static_cast<std::size_t>(x)] > 0) return x;
      for (VertexId y : host.neighbors(x)) {
        if (!seen[static_cast<std::size_t>(y)]) {
          seen[static_cast<std::size_t>(y)] = 1;
          queue.push_back(y);
        }
      }
    }
    XT_CHECK_MSG(false, "host out of capacity");
    return kInvalidVertex;
  };

  // Guest BFS order from vertex 0.
  std::vector<VertexId> order{0};
  std::vector<VertexId> parent(static_cast<std::size_t>(guest.num_vertices()),
                               kInvalidVertex);
  std::vector<char> seen(static_cast<std::size_t>(guest.num_vertices()), 0);
  seen[0] = 1;
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (VertexId v : guest.neighbors(order[head])) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        parent[static_cast<std::size_t>(v)] = order[head];
        order.push_back(v);
      }
    }
  }
  XT_CHECK(order.size() == static_cast<std::size_t>(guest.num_vertices()));

  for (VertexId g : order) {
    const VertexId p = parent[static_cast<std::size_t>(g)];
    const VertexId anchor =
        p == kInvalidVertex ? VertexId{0} : emb.host_of(static_cast<NodeId>(p));
    const VertexId h = nearest_free(anchor);
    emb.place(static_cast<NodeId>(g), h);
    --free[static_cast<std::size_t>(h)];
  }
  return emb;
}

GraphDilationReport graph_dilation(const Graph& guest, const Embedding& emb,
                                   const Graph& host) {
  XT_CHECK(emb.complete());
  std::unordered_map<VertexId, std::vector<VertexId>> targets_by_src;
  for (const auto& [u, v] : guest.edge_list()) {
    targets_by_src[emb.host_of(static_cast<NodeId>(u))].push_back(
        emb.host_of(static_cast<NodeId>(v)));
  }
  GraphDilationReport rep;
  double sum = 0.0;
  std::int64_t edges = 0;
  BfsWorkspace bfs(host);
  for (const auto& [src, targets] : targets_by_src) {
    const auto& dist = bfs.run(src);
    for (VertexId t : targets) {
      const std::int32_t d = dist[static_cast<std::size_t>(t)];
      XT_CHECK(d != kUnreachable);
      rep.max = std::max(rep.max, d);
      sum += d;
      ++edges;
    }
  }
  if (edges > 0) rep.mean = sum / static_cast<double>(edges);
  return rep;
}

}  // namespace xt
