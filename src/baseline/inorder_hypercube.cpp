#include "baseline/inorder_hypercube.hpp"

#include <bit>

#include "util/check.hpp"

namespace xt {

VertexId inorder_map(const CompleteBinaryTree& tree, VertexId v) {
  XT_CHECK(tree.contains(v));
  const std::int32_t level = tree.level_of(v);
  const std::int64_t pos =
      static_cast<std::int64_t>(v) + 1 - (std::int64_t{1} << level);
  const std::int32_t r = tree.height();
  // alpha . 1 . 0^{r - |alpha|}, first character most significant.
  return static_cast<VertexId>(((pos << 1) | 1) << (r - level));
}

Embedding inorder_embedding(const CompleteBinaryTree& tree) {
  Embedding emb(static_cast<NodeId>(tree.num_vertices()),
                static_cast<VertexId>(std::int64_t{1} << (tree.height() + 1)));
  for (VertexId v = 0; v < tree.num_vertices(); ++v)
    emb.place(static_cast<NodeId>(v), inorder_map(tree, v));
  XT_CHECK(emb.injective());
  return emb;
}

}  // namespace xt
