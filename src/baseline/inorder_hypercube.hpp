// The classical inorder embedding of the complete binary tree B_r
// into its optimal hypercube Q_{r+1} with dilation 2 (§3 of the
// paper, after [8]):
//
//   delta_io(alpha) = alpha . 1 . 0^{r - |alpha|}
//
// It also satisfies the additive-stretch property (distance Delta in
// B_r maps to <= Delta + 1 in Q_{r+1}) that Lemma 3 generalises to
// X-trees.
#pragma once

#include <cstdint>

#include "embedding/embedding.hpp"
#include "topology/complete_binary_tree.hpp"
#include "topology/hypercube.hpp"

namespace xt {

/// Hypercube vertex assigned to CBT vertex v (heap id) of B_r.
VertexId inorder_map(const CompleteBinaryTree& tree, VertexId v);

/// Full embedding of B_r into Q_{r+1} (injective).
Embedding inorder_embedding(const CompleteBinaryTree& tree);

}  // namespace xt
