// Baseline binary-tree -> X-tree embedders (experiment B1).
//
// None of these controls dilation; they exist to quantify how far the
// Theorem 1 machinery moves the needle.  All respect the load cap and
// use the same optimal host as the real embedder.
#pragma once

#include <string>
#include <vector>

#include "btree/binary_tree.hpp"
#include "embedding/embedding.hpp"
#include "topology/xtree.hpp"
#include "util/rng.hpp"

namespace xt {

enum class BaselineKind {
  kBfsOrder,   // guest BFS order zipped with host level order
  kDfsOrder,   // guest DFS preorder zipped with host level order
  kRandom,     // uniformly random slot assignment
  kGreedy,     // place each node at the free vertex nearest its parent
};

const char* baseline_name(BaselineKind kind);
const std::vector<BaselineKind>& all_baselines();

/// Embeds `guest` into X(height) — pass XTreeEmbedder::optimal_height
/// — with at most `load` guests per vertex.
Embedding embed_baseline(const BinaryTree& guest, const XTree& host,
                         NodeId load, BaselineKind kind, Rng& rng);

}  // namespace xt
