// Context constructions from §1 / [3]: complete binary trees embed
// into butterflies with constant dilation, while X-trees provably need
// dilation Omega(log log n) there.  We provide the positive
// construction exactly (dilation 1) and use the greedy graph embedder
// to exhibit the negative trend empirically.
#pragma once

#include "embedding/embedding.hpp"
#include "topology/butterfly.hpp"
#include "topology/complete_binary_tree.hpp"

namespace xt {

/// The complete binary tree of height h as a *subgraph* of BF(h): the
/// depth-k node whose root path has bits b_1..b_k maps to butterfly
/// vertex (level k, row with bit i-1 = b_i).  Every tree edge is a
/// butterfly edge (dilation 1).  Expansion is (h+1)*2^h / (2^{h+1}-1)
/// ~ (log n)/2 — the paper's [3] shows constant expansion is also
/// possible; dilation, not expansion, is the point here.
Embedding cbt_into_butterfly(const CompleteBinaryTree& tree,
                             const Butterfly& host);

}  // namespace xt
