#include "baseline/naive_xtree.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xt {
namespace {

std::vector<NodeId> guest_bfs_order(const BinaryTree& guest) {
  std::vector<NodeId> order{guest.root()};
  order.reserve(static_cast<std::size_t>(guest.num_nodes()));
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (int w = 0; w < 2; ++w) {
      const NodeId c = guest.child(order[head], w);
      if (c != kInvalidNode) order.push_back(c);
    }
  }
  return order;
}

std::vector<NodeId> guest_dfs_order(const BinaryTree& guest) {
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(guest.num_nodes()));
  std::vector<NodeId> stack{guest.root()};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (int w = 1; w >= 0; --w) {
      const NodeId c = guest.child(v, w);
      if (c != kInvalidNode) stack.push_back(c);
    }
  }
  return order;
}

Embedding zip_order(const BinaryTree& guest, const XTree& host, NodeId load,
                    const std::vector<NodeId>& order) {
  Embedding emb(guest.num_nodes(), host.num_vertices());
  VertexId h = 0;
  NodeId used = 0;
  for (NodeId v : order) {
    if (used == load) {
      ++h;
      used = 0;
    }
    XT_CHECK(h < host.num_vertices());
    emb.place(v, h);
    ++used;
  }
  return emb;
}

Embedding random_assignment(const BinaryTree& guest, const XTree& host,
                            NodeId load, Rng& rng) {
  // All host slots, shuffled; guests take the first n.
  std::vector<VertexId> slots;
  slots.reserve(static_cast<std::size_t>(host.num_vertices()) *
                static_cast<std::size_t>(load));
  for (VertexId h = 0; h < host.num_vertices(); ++h) {
    for (NodeId s = 0; s < load; ++s) slots.push_back(h);
  }
  for (std::size_t i = slots.size(); i > 1; --i)
    std::swap(slots[i - 1], slots[rng.below(i)]);
  Embedding emb(guest.num_nodes(), host.num_vertices());
  for (NodeId v = 0; v < guest.num_nodes(); ++v)
    emb.place(v, slots[static_cast<std::size_t>(v)]);
  return emb;
}

Embedding greedy_assignment(const BinaryTree& guest, const XTree& host,
                            NodeId load) {
  Embedding emb(guest.num_nodes(), host.num_vertices());
  std::vector<NodeId> free(static_cast<std::size_t>(host.num_vertices()),
                           load);
  std::vector<VertexId> nbr;
  auto nearest_free = [&](VertexId from) {
    std::vector<char> seen(static_cast<std::size_t>(host.num_vertices()), 0);
    std::vector<VertexId> queue{from};
    seen[static_cast<std::size_t>(from)] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId x = queue[head];
      if (free[static_cast<std::size_t>(x)] > 0) return x;
      nbr.clear();
      host.neighbors(x, nbr);
      for (VertexId y : nbr) {
        if (!seen[static_cast<std::size_t>(y)]) {
          seen[static_cast<std::size_t>(y)] = 1;
          queue.push_back(y);
        }
      }
    }
    XT_CHECK_MSG(false, "greedy baseline ran out of capacity");
    return kInvalidVertex;
  };
  for (NodeId v : guest_bfs_order(guest)) {
    const NodeId p = guest.parent(v);
    const VertexId anchor = p == kInvalidNode ? host.root() : emb.host_of(p);
    const VertexId h = nearest_free(anchor);
    emb.place(v, h);
    --free[static_cast<std::size_t>(h)];
  }
  return emb;
}

}  // namespace

const char* baseline_name(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kBfsOrder:
      return "bfs_order";
    case BaselineKind::kDfsOrder:
      return "dfs_order";
    case BaselineKind::kRandom:
      return "random";
    case BaselineKind::kGreedy:
      return "greedy";
  }
  return "?";
}

const std::vector<BaselineKind>& all_baselines() {
  static const std::vector<BaselineKind> kinds{
      BaselineKind::kBfsOrder, BaselineKind::kDfsOrder, BaselineKind::kRandom,
      BaselineKind::kGreedy};
  return kinds;
}

Embedding embed_baseline(const BinaryTree& guest, const XTree& host,
                         NodeId load, BaselineKind kind, Rng& rng) {
  XT_CHECK(static_cast<std::int64_t>(load) * host.num_vertices() >=
           guest.num_nodes());
  switch (kind) {
    case BaselineKind::kBfsOrder:
      return zip_order(guest, host, load, guest_bfs_order(guest));
    case BaselineKind::kDfsOrder:
      return zip_order(guest, host, load, guest_dfs_order(guest));
    case BaselineKind::kRandom:
      return random_assignment(guest, host, load, rng);
    case BaselineKind::kGreedy:
      return greedy_assignment(guest, host, load);
  }
  XT_CHECK(false);
  return Embedding(0, 0);
}

}  // namespace xt
