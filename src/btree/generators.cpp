#include "btree/generators.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace xt {
namespace {

// Rebuilds a tree described by loose parent/child arrays (ids in any
// order, possibly with deleted holes) into a canonical BinaryTree with
// preorder ids.  `root` is the loose root id.
BinaryTree rebuild_preorder(
    const std::vector<std::array<NodeId, 2>>& loose_children, NodeId root) {
  BinaryTree out = BinaryTree::single();
  // Stack of (loose id, canonical parent id); children pushed right
  // first so the left child is visited first (preorder).
  std::vector<std::pair<NodeId, NodeId>> stack;
  auto push_children = [&](NodeId loose, NodeId canon) {
    const auto& c = loose_children[static_cast<std::size_t>(loose)];
    if (c[1] != kInvalidNode) stack.emplace_back(c[1], canon);
    if (c[0] != kInvalidNode) stack.emplace_back(c[0], canon);
  };
  push_children(root, 0);
  while (!stack.empty()) {
    auto [loose, canon_parent] = stack.back();
    stack.pop_back();
    const NodeId canon = out.add_child(canon_parent);
    push_children(loose, canon);
  }
  return out;
}

}  // namespace

BinaryTree make_complete_tree(std::int32_t height) {
  XT_CHECK(height >= 0);
  BinaryTree t = BinaryTree::single();
  // Level-order growth; ids stay heap-ordered.
  const NodeId total = static_cast<NodeId>((std::int64_t{2} << height) - 1);
  for (NodeId v = 0; 2 * v + 2 < total; ++v) {
    t.add_child(v);
    t.add_child(v);
  }
  XT_CHECK(t.num_nodes() == total);
  return t;
}

BinaryTree make_path_tree(NodeId n) {
  XT_CHECK(n >= 1);
  BinaryTree t = BinaryTree::single();
  NodeId tip = t.root();
  for (NodeId i = 1; i < n; ++i) tip = t.add_child(tip);
  return t;
}

BinaryTree make_caterpillar_tree(NodeId n) {
  XT_CHECK(n >= 1);
  BinaryTree t = BinaryTree::single();
  NodeId spine = t.root();
  while (t.num_nodes() < n) {
    // Alternate: leaf, then next spine node, so the spine carries a
    // pendant leaf at every vertex.
    if (t.num_nodes() + 1 <= n && t.num_children(spine) == 0) {
      t.add_child(spine);  // pendant leaf
    }
    if (t.num_nodes() < n) {
      spine = t.add_child(spine);  // spine continues
    }
  }
  return t;
}

BinaryTree make_comb_tree(NodeId n, NodeId tooth) {
  XT_CHECK(n >= 1 && tooth >= 1);
  BinaryTree t = BinaryTree::single();
  NodeId spine = t.root();
  while (t.num_nodes() < n) {
    // Tooth: a chain hanging off the spine node.
    NodeId tip = spine;
    for (NodeId i = 0; i < tooth && t.num_nodes() < n; ++i)
      tip = t.add_child(tip);
    if (t.num_nodes() < n) spine = t.add_child(spine);
  }
  return t;
}

BinaryTree make_broom_tree(NodeId n) {
  XT_CHECK(n >= 1);
  BinaryTree t = BinaryTree::single();
  NodeId tip = t.root();
  const NodeId handle = std::max<NodeId>(n / 2, 1);
  for (NodeId i = 1; i < handle; ++i) tip = t.add_child(tip);
  // Brush: fill a complete tree below the handle end, level by level.
  std::vector<NodeId> frontier{tip};
  while (t.num_nodes() < n) {
    std::vector<NodeId> next;
    for (NodeId v : frontier) {
      for (int w = 0; w < 2 && t.num_nodes() < n; ++w)
        next.push_back(t.add_child(v));
    }
    frontier = std::move(next);
  }
  return t;
}

BinaryTree make_golden_tree(NodeId n) {
  XT_CHECK(n >= 1);
  BinaryTree t = BinaryTree::single();
  struct Frame {
    NodeId node;
    NodeId budget;  // nodes to build below (budget includes `node`)
  };
  std::vector<Frame> stack{{t.root(), n}};
  while (!stack.empty()) {
    const auto [v, budget] = stack.back();
    stack.pop_back();
    const NodeId rest = budget - 1;
    if (rest == 0) continue;
    // Larger side gets ~61.8% of the remainder.
    NodeId left = std::max<NodeId>(1, static_cast<NodeId>(
                                          (static_cast<std::int64_t>(rest) *
                                           618) /
                                          1000));
    left = std::min(left, rest);
    const NodeId lchild = t.add_child(v);
    stack.push_back({lchild, left});
    if (rest - left > 0) {
      const NodeId rchild = t.add_child(v);
      stack.push_back({rchild, rest - left});
    }
  }
  XT_CHECK(t.num_nodes() == n);
  return t;
}

BinaryTree make_random_attachment_tree(NodeId n, Rng& rng) {
  XT_CHECK(n >= 1);
  BinaryTree t = BinaryTree::single();
  std::vector<NodeId> open{t.root()};  // nodes with a free child slot
  while (t.num_nodes() < n) {
    const std::size_t idx =
        static_cast<std::size_t>(rng.below(open.size()));
    const NodeId p = open[idx];
    const NodeId leaf = t.add_child(p);
    if (t.num_children(p) == 2) {
      open[idx] = open.back();
      open.pop_back();
    }
    open.push_back(leaf);
  }
  return t;
}

BinaryTree make_remy_tree(NodeId leaves, Rng& rng) {
  XT_CHECK(leaves >= 1);
  // Remy's algorithm over a loose arena: at step k, pick a uniform
  // existing node x and a side s; a fresh internal node takes x's
  // place in the tree with x on side s and a fresh leaf on the other.
  std::vector<std::array<NodeId, 2>> children{{kInvalidNode, kInvalidNode}};
  std::vector<NodeId> parent{kInvalidNode};
  NodeId root = 0;
  for (NodeId k = 1; k < leaves; ++k) {
    const auto x = static_cast<NodeId>(rng.below(children.size()));
    const int side = static_cast<int>(rng.below(2));
    const NodeId internal = static_cast<NodeId>(children.size());
    children.push_back({kInvalidNode, kInvalidNode});
    parent.push_back(kInvalidNode);
    const NodeId leaf = static_cast<NodeId>(children.size());
    children.push_back({kInvalidNode, kInvalidNode});
    parent.push_back(internal);

    const NodeId px = parent[static_cast<std::size_t>(x)];
    parent[static_cast<std::size_t>(internal)] = px;
    if (px == kInvalidNode) {
      root = internal;
    } else {
      auto& pc = children[static_cast<std::size_t>(px)];
      (pc[0] == x ? pc[0] : pc[1]) = internal;
    }
    parent[static_cast<std::size_t>(x)] = internal;
    children[static_cast<std::size_t>(internal)][static_cast<std::size_t>(side)] = x;
    children[static_cast<std::size_t>(internal)][static_cast<std::size_t>(1 - side)] =
        leaf;
  }
  BinaryTree t = rebuild_preorder(children, root);
  XT_CHECK(t.num_nodes() == 2 * leaves - 1);
  t.validate();
  return t;
}

BinaryTree make_random_bst_tree(NodeId n, Rng& rng) {
  XT_CHECK(n >= 1);
  std::vector<NodeId> keys(static_cast<std::size_t>(n));
  for (NodeId i = 0; i < n; ++i) keys[static_cast<std::size_t>(i)] = i;
  for (std::size_t i = keys.size(); i > 1; --i)
    std::swap(keys[i - 1], keys[rng.below(i)]);

  BinaryTree t = BinaryTree::single();
  std::vector<NodeId> node_key{keys[0]};
  // child slot 0 = "smaller", slot 1 = "larger" during construction;
  // we must steer add_child's slot choice, so track slots explicitly.
  std::vector<std::array<NodeId, 2>> slots{{kInvalidNode, kInvalidNode}};
  for (std::size_t i = 1; i < keys.size(); ++i) {
    NodeId cur = t.root();
    const NodeId key = keys[i];
    for (;;) {
      const int side = key < node_key[static_cast<std::size_t>(cur)] ? 0 : 1;
      NodeId& slot = slots[static_cast<std::size_t>(cur)][static_cast<std::size_t>(side)];
      if (slot == kInvalidNode) {
        slot = t.add_child(cur);
        node_key.push_back(key);
        slots.push_back({kInvalidNode, kInvalidNode});
        break;
      }
      cur = slot;
    }
  }
  return t;
}

BinaryTree make_random_tree(NodeId n, Rng& rng) {
  XT_CHECK(n >= 1);
  const NodeId m = (n % 2 == 1) ? n : n + 1;  // full trees are odd-sized
  BinaryTree full = make_remy_tree((m + 1) / 2, rng);
  if (m == n) return full;
  // Drop one uniformly random leaf, then renumber.
  std::vector<NodeId> leaves;
  for (NodeId v = 0; v < full.num_nodes(); ++v)
    if (full.is_leaf(v)) leaves.push_back(v);
  const NodeId victim = leaves[rng.below(leaves.size())];
  std::vector<std::array<NodeId, 2>> children(
      static_cast<std::size_t>(full.num_nodes()));
  for (NodeId v = 0; v < full.num_nodes(); ++v)
    children[static_cast<std::size_t>(v)] = {full.child(v, 0),
                                             full.child(v, 1)};
  auto& pc = children[static_cast<std::size_t>(full.parent(victim))];
  (pc[0] == victim ? pc[0] : pc[1]) = kInvalidNode;
  BinaryTree t = rebuild_preorder(children, full.root());
  XT_CHECK(t.num_nodes() == n);
  return t;
}

BinaryTree make_family_tree(const std::string& family, NodeId n, Rng& rng) {
  if (family == "complete") {
    // Nearest complete tree at or below n nodes, padded back up to n
    // by a broom-style fill to keep the node count exact.
    BinaryTree t = BinaryTree::single();
    std::vector<NodeId> frontier{t.root()};
    while (t.num_nodes() < n) {
      std::vector<NodeId> next;
      for (NodeId v : frontier) {
        for (int w = 0; w < 2 && t.num_nodes() < n; ++w)
          next.push_back(t.add_child(v));
      }
      frontier = std::move(next);
    }
    return t;
  }
  if (family == "path") return make_path_tree(n);
  if (family == "caterpillar") return make_caterpillar_tree(n);
  if (family == "comb") return make_comb_tree(n);
  if (family == "broom") return make_broom_tree(n);
  if (family == "golden") return make_golden_tree(n);
  if (family == "random") return make_random_tree(n, rng);
  if (family == "random_bst") return make_random_bst_tree(n, rng);
  if (family == "random_attach") return make_random_attachment_tree(n, rng);
  XT_CHECK_MSG(false, "unknown tree family: " << family);
  return BinaryTree::single();
}

const std::vector<std::string>& tree_family_names() {
  static const std::vector<std::string> names{
      "complete", "path",   "caterpillar", "comb",        "broom",
      "golden",   "random", "random_bst",  "random_attach"};
  return names;
}

}  // namespace xt
