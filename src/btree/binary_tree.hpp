// Guest binary trees: rooted, every node has at most two (ordered)
// children, so total degree is at most 3.  This is the tree family the
// paper embeds (Theorems 1-4).
//
// Representation is pointer-free and structure-of-arrays: dense node
// ids with parallel parent / left-child / right-child arrays, so the
// separator and embedder hot loops (piece DFS, canonical digest,
// dilation sweep) read three cache-linear streams instead of chasing
// an array-of-structs.  Node 0 is always the root; every constructor
// (add_child, from_paren, canonical_tree) assigns ids in preorder, so
// parent ids are smaller than child ids and id order is a valid
// topological order in both directions.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xt {

using NodeId = std::int32_t;
constexpr NodeId kInvalidNode = -1;

class BinaryTree {
 public:
  BinaryTree() = default;

  /// A tree with a single root node.
  static BinaryTree single();

  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(parent_.size());
  }
  [[nodiscard]] bool empty() const { return parent_.empty(); }
  [[nodiscard]] NodeId root() const { return 0; }

  [[nodiscard]] NodeId parent(NodeId v) const {
    return parent_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] NodeId child(NodeId v, int which) const {
    const auto& slots = which == 0 ? left_ : right_;
    return slots[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] NodeId left(NodeId v) const {
    return left_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] NodeId right(NodeId v) const {
    return right_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int num_children(NodeId v) const {
    return (left(v) != kInvalidNode) + (right(v) != kInvalidNode);
  }
  [[nodiscard]] bool is_leaf(NodeId v) const { return num_children(v) == 0; }

  /// Total degree (parent + children); at most 3 by construction.
  [[nodiscard]] int degree(NodeId v) const {
    return (parent(v) != kInvalidNode) + num_children(v);
  }

  // Raw contiguous arrays (length num_nodes) for cache-linear hot
  // loops: piece-view DFS, digest, metrics.  Entries are node ids or
  // kInvalidNode.  Invalidated by add_child.
  [[nodiscard]] const NodeId* parent_data() const { return parent_.data(); }
  [[nodiscard]] const NodeId* left_data() const { return left_.data(); }
  [[nodiscard]] const NodeId* right_data() const { return right_.data(); }

  /// Appends a new node as a child of `p` in the first free slot and
  /// returns its id.  p must have a free child slot (checked).
  NodeId add_child(NodeId p);

  /// All undirected edges as (parent, child) pairs, child ascending.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// The up-to-3 neighbours of v.
  void neighbors(NodeId v, std::vector<NodeId>& out) const;

  // --- structural statistics -------------------------------------------
  [[nodiscard]] std::int32_t height() const;
  [[nodiscard]] NodeId num_leaves() const;
  /// Subtree sizes indexed by node (iterative post-order).
  [[nodiscard]] std::vector<NodeId> subtree_sizes() const;
  /// Depth of each node (root = 0).
  [[nodiscard]] std::vector<std::int32_t> depths() const;

  /// Structural invariants: root is 0, parent/child arrays consistent,
  /// connected, acyclic.  Throws check_error on violation.
  void validate() const;

  /// Adopts three parallel SoA arrays wholesale (the layout the xtb1
  /// bulk corpus stores on disk): no parsing, no per-node calls — one
  /// move per array, then a full validate().  The arrays must satisfy
  /// the same invariants add_child maintains (root 0, preorder ids,
  /// consistent parent/child slots); throws check_error otherwise.
  static BinaryTree from_soa(std::vector<NodeId> parent,
                             std::vector<NodeId> left,
                             std::vector<NodeId> right);

  /// Compact preorder serialisation (for golden tests / debugging):
  /// e.g. "(()(()()))".
  [[nodiscard]] std::string to_paren() const;
  static BinaryTree from_paren(const std::string& s);

 private:
  friend BinaryTree relabeled_tree(const BinaryTree&,
                                   const std::vector<NodeId>&);

  std::vector<NodeId> parent_;
  std::vector<NodeId> left_;
  std::vector<NodeId> right_;
};

/// Non-throwing form of BinaryTree::validate over raw SoA arrays:
/// returns "" when the arrays describe a valid tree (root 0, preorder
/// ids, consistent parent/child slots), else a description of the
/// first violation.  Shared by from_soa and the bulk corpus reader, so
/// a record can be structurally checked in place — straight off an
/// mmap — before any copy is made.
[[nodiscard]] std::string soa_structure_error(NodeId n, const NodeId* parent,
                                              const NodeId* left,
                                              const NodeId* right);

/// The tree obtained by renaming node v to to_new[v].  to_new must be
/// a bijection onto [0, n) that maps the root to 0 and every parent to
/// a smaller id than its children (e.g. any preorder numbering, such
/// as CanonicalForm::to_canonical) — so the result satisfies the same
/// id-order invariant as trees built by add_child, and node ids walk
/// memory in preorder for cache locality.  A node's children keep
/// their relative order by *new* id: the smaller new id lands in the
/// left slot.  Validated before return.
[[nodiscard]] BinaryTree relabeled_tree(const BinaryTree& tree,
                                        const std::vector<NodeId>& to_new);

}  // namespace xt
