// Guest binary trees: rooted, every node has at most two (ordered)
// children, so total degree is at most 3.  This is the tree family the
// paper embeds (Theorems 1-4).
//
// Representation is pointer-free: dense node ids, parallel parent /
// child arrays.  Node 0 is always the root.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xt {

using NodeId = std::int32_t;
constexpr NodeId kInvalidNode = -1;

class BinaryTree {
 public:
  BinaryTree() = default;

  /// A tree with a single root node.
  static BinaryTree single();

  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(parent_.size());
  }
  [[nodiscard]] bool empty() const { return parent_.empty(); }
  [[nodiscard]] NodeId root() const { return 0; }

  [[nodiscard]] NodeId parent(NodeId v) const {
    return parent_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] NodeId child(NodeId v, int which) const {
    return child_[static_cast<std::size_t>(v)][static_cast<std::size_t>(which)];
  }
  [[nodiscard]] int num_children(NodeId v) const {
    return (child(v, 0) != kInvalidNode) + (child(v, 1) != kInvalidNode);
  }
  [[nodiscard]] bool is_leaf(NodeId v) const { return num_children(v) == 0; }

  /// Total degree (parent + children); at most 3 by construction.
  [[nodiscard]] int degree(NodeId v) const {
    return (parent(v) != kInvalidNode) + num_children(v);
  }

  /// Appends a new node as a child of `p` in the first free slot and
  /// returns its id.  p must have a free child slot (checked).
  NodeId add_child(NodeId p);

  /// All undirected edges as (parent, child) pairs, child ascending.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// The up-to-3 neighbours of v.
  void neighbors(NodeId v, std::vector<NodeId>& out) const;

  // --- structural statistics -------------------------------------------
  [[nodiscard]] std::int32_t height() const;
  [[nodiscard]] NodeId num_leaves() const;
  /// Subtree sizes indexed by node (iterative post-order).
  [[nodiscard]] std::vector<NodeId> subtree_sizes() const;
  /// Depth of each node (root = 0).
  [[nodiscard]] std::vector<std::int32_t> depths() const;

  /// Structural invariants: root is 0, parent/child arrays consistent,
  /// connected, acyclic.  Throws check_error on violation.
  void validate() const;

  /// Compact preorder serialisation (for golden tests / debugging):
  /// e.g. "(()(()()))".
  [[nodiscard]] std::string to_paren() const;
  static BinaryTree from_paren(const std::string& s);

 private:
  std::vector<NodeId> parent_;
  std::vector<std::array<NodeId, 2>> child_;
};

}  // namespace xt
