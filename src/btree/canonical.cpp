#include "btree/canonical.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/hash_constants.hpp"

namespace xt {
namespace {

// Fixed odd constants (splitmix64's increment family, shared via
// util/hash_constants.hpp).  The digest must be a pure function of the
// shape: no addresses, no randomised seeds, so the same tree hashes
// identically in every process — and, since PR 10, routes to the same
// shard on the consistent-hash ring and matches the same checkpointed
// cache key.
constexpr std::uint64_t kLeafCode = kGoldenGamma;
constexpr std::uint64_t kEmptyCode = kCanonEmptyCode;

constexpr std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * kMix1;
  z = (z ^ (z >> 27)) * kMix2;
  return z ^ (z >> 31);
}

// Asymmetric in (a, b): the caller decides whether to sort the pair
// (canonical digest) or keep child order (ordered digest).
constexpr std::uint64_t combine(std::uint64_t a, std::uint64_t b) {
  return mix(a + kGoldenGamma * b + kCanonCombineOffset);
}

// Reverse-BFS bottom-up subtree codes into a caller-owned buffer.
// `sorted` selects the order-insensitive (canonical) variant.  This is
// the *reference* loop: its leaf / one-child tests branch on data, so
// on arbitrary shapes the predictor misses about once per node and
// every flush also discards the speculative run-ahead that hides the
// child-code loads.  The branchless kernel below replaces it on the
// hot paths; this form stays compiled as the cross-check baseline.
void subtree_codes(std::size_t n, const NodeId* left, const NodeId* right,
                   bool sorted, std::vector<std::uint64_t>& code) {
  // Every constructor assigns ids in preorder (parent < child), so
  // descending id order is a valid bottom-up schedule — no explicit
  // BFS order needed, and the left/right SoA arrays stream linearly.
  code.assign(n, 0);
  for (std::size_t v = n; v-- > 0;) {
    const NodeId c0 = left[v];
    const NodeId c1 = right[v];
    if (c0 == kInvalidNode && c1 == kInvalidNode) {
      code[v] = kLeafCode;
      continue;
    }
    std::uint64_t a =
        c0 == kInvalidNode ? kEmptyCode : code[static_cast<std::size_t>(c0)];
    std::uint64_t b =
        c1 == kInvalidNode ? kEmptyCode : code[static_cast<std::size_t>(c1)];
    if (sorted && b < a) std::swap(a, b);
    code[v] = combine(a, b);
  }
}

// One node of the branchless bottom-up scan.  Absent children are
// handled with sign-mask selects instead of tests: ternaries on child
// presence compile to real branches under gcc, so the masks are spelt
// out as arithmetic.  The clamped index (c & ~(c >> 31)) turns -1 into
// 0 — a dummy in-bounds load whose value is masked away (the buffer is
// vector-owned and value-initialised, so the read is defined).
// Produces exactly the reference loop's value for every case:
// leaf -> kLeafCode, absent child -> kEmptyCode operand, Sorted ->
// operands ordered by value.
template <bool Sorted>
inline std::uint64_t node_code(const NodeId* __restrict left,
                               const NodeId* __restrict right,
                               const std::uint64_t* __restrict code,
                               std::int64_t v) {
  const NodeId c0 = left[v];
  const NodeId c1 = right[v];
  const auto m0 = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(c0 >> 31));  // all-ones iff no left child
  const auto m1 = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(c1 >> 31));  // all-ones iff no right child
  const std::uint64_t a0 = code[static_cast<std::size_t>(c0 & ~(c0 >> 31))];
  const std::uint64_t b0 = code[static_cast<std::size_t>(c1 & ~(c1 >> 31))];
  const std::uint64_t a = (a0 & ~m0) | (kEmptyCode & m0);
  const std::uint64_t b = (b0 & ~m1) | (kEmptyCode & m1);
  std::uint64_t lo = a;
  std::uint64_t hi = b;
  if constexpr (Sorted) {
    lo = a < b ? a : b;  // cmov under gcc/clang
    hi = a < b ? b : a;
  }
  const std::uint64_t comb = combine(lo, hi);
  const std::uint64_t ml = m0 & m1;  // all-ones iff leaf
  return (comb & ~ml) | (kLeafCode & ml);
}

// Branchless full-array scan (canonical_form needs every subtree
// code, not just the root's).  Bit-identical to subtree_codes.
template <bool Sorted>
void subtree_codes_branchless(std::size_t n, const NodeId* left,
                              const NodeId* right,
                              std::vector<std::uint64_t>& code) {
  if (code.size() < n) code.resize(n);
  std::uint64_t* c = code.data();
  for (std::int64_t v = static_cast<std::int64_t>(n); v-- > 0;)
    c[v] = node_code<Sorted>(left, right, c, v);
}

// Final digest folds in the node count (belt and braces; the cache key
// also carries it).
std::uint64_t finalize(std::uint64_t root_code, NodeId n) {
  return combine(root_code, static_cast<std::uint64_t>(n));
}

}  // namespace

CanonicalForm canonical_form(NodeId n, const NodeId* left,
                             const NodeId* right, CanonicalScratch& scratch) {
  XT_CHECK(n > 0);
  std::vector<std::uint64_t>& code = scratch.code;
  subtree_codes_branchless<true>(static_cast<std::size_t>(n), left, right,
                                 code);
  CanonicalForm out;
  out.hash = finalize(code[0], n);
  out.to_canonical.assign(static_cast<std::size_t>(n), kInvalidNode);
  // Preorder with children visited in canonical order: smaller subtree
  // digest first.  Tied siblings are isomorphic subtrees (up to digest
  // collision), so either order yields the same canonical tree.
  std::vector<NodeId>& stack = scratch.stack;
  stack.assign(1, 0);
  NodeId next = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    out.to_canonical[static_cast<std::size_t>(v)] = next++;
    const NodeId c0 = left[static_cast<std::size_t>(v)];
    const NodeId c1 = right[static_cast<std::size_t>(v)];
    if (c0 != kInvalidNode && c1 != kInvalidNode) {
      const bool c0_first = code[static_cast<std::size_t>(c0)] <=
                            code[static_cast<std::size_t>(c1)];
      // LIFO stack: push the second-visited child first.
      stack.push_back(c0_first ? c1 : c0);
      stack.push_back(c0_first ? c0 : c1);
    } else if (c0 != kInvalidNode) {
      stack.push_back(c0);
    } else if (c1 != kInvalidNode) {
      stack.push_back(c1);
    }
  }
  return out;
}

CanonicalForm canonical_form(NodeId n, const NodeId* left,
                             const NodeId* right) {
  CanonicalScratch scratch;
  return canonical_form(n, left, right, scratch);
}

CanonicalForm canonical_form(const BinaryTree& tree) {
  XT_CHECK(!tree.empty());
  return canonical_form(tree.num_nodes(), tree.left_data(),
                        tree.right_data());
}

std::uint64_t canonical_hash(NodeId n, const NodeId* left,
                             const NodeId* right, CanonicalScratch& scratch) {
  XT_CHECK(n > 0);
  subtree_codes_branchless<true>(static_cast<std::size_t>(n), left, right,
                                 scratch.code);
  return finalize(scratch.code[0], n);
}

std::uint64_t canonical_hash_scalar(NodeId n, const NodeId* left,
                                    const NodeId* right,
                                    CanonicalScratch& scratch) {
  XT_CHECK(n > 0);
  subtree_codes(static_cast<std::size_t>(n), left, right, /*sorted=*/true,
                scratch.code);
  return finalize(scratch.code[0], n);
}

void canonical_hash_batch(std::span<const RawTreeRef> trees,
                          std::span<std::uint64_t> out,
                          CanonicalScratch& scratch) {
  XT_CHECK(trees.size() == out.size());
  std::vector<std::uint64_t>& buf = scratch.code;
  std::size_t t = 0;
  // Strips of four trees, scans interleaved one node per tree per
  // round.  The four lanes live in one scratch buffer at staggered
  // offsets: lane strides sharing a 4KiB residue would trip the
  // store-forwarding disambiguator's page-offset aliasing and
  // serialise the lanes, so each lane is shifted by a different
  // sub-line amount.
  while (trees.size() - t >= 4) {
    std::size_t maxn = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      XT_CHECK(trees[t + i].num_nodes > 0);
      maxn = std::max(maxn, static_cast<std::size_t>(trees[t + i].num_nodes));
    }
    const std::size_t stride = maxn + 16;
    if (buf.size() < 4 * stride) buf.resize(4 * stride);
    std::uint64_t* __restrict c0 = buf.data();
    std::uint64_t* __restrict c1 = buf.data() + stride + 8;
    std::uint64_t* __restrict c2 = buf.data() + 2 * stride + 4;
    std::uint64_t* __restrict c3 = buf.data() + 3 * stride + 12;
    const RawTreeRef& t0 = trees[t];
    const RawTreeRef& t1 = trees[t + 1];
    const RawTreeRef& t2 = trees[t + 2];
    const RawTreeRef& t3 = trees[t + 3];
    std::int64_t p0 = t0.num_nodes;
    std::int64_t p1 = t1.num_nodes;
    std::int64_t p2 = t2.num_nodes;
    std::int64_t p3 = t3.num_nodes;
    const std::int64_t rounds = std::min(std::min(p0, p1), std::min(p2, p3));
    for (std::int64_t r = 0; r < rounds; ++r) {
      --p0;
      c0[p0] = node_code<true>(t0.left, t0.right, c0, p0);
      --p1;
      c1[p1] = node_code<true>(t1.left, t1.right, c1, p1);
      --p2;
      c2[p2] = node_code<true>(t2.left, t2.right, c2, p2);
      --p3;
      c3[p3] = node_code<true>(t3.left, t3.right, c3, p3);
    }
    while (p0-- > 0) c0[p0] = node_code<true>(t0.left, t0.right, c0, p0);
    while (p1-- > 0) c1[p1] = node_code<true>(t1.left, t1.right, c1, p1);
    while (p2-- > 0) c2[p2] = node_code<true>(t2.left, t2.right, c2, p2);
    while (p3-- > 0) c3[p3] = node_code<true>(t3.left, t3.right, c3, p3);
    out[t] = finalize(c0[0], t0.num_nodes);
    out[t + 1] = finalize(c1[0], t1.num_nodes);
    out[t + 2] = finalize(c2[0], t2.num_nodes);
    out[t + 3] = finalize(c3[0], t3.num_nodes);
    t += 4;
  }
  for (; t < trees.size(); ++t)
    out[t] = canonical_hash(trees[t].num_nodes, trees[t].left, trees[t].right,
                            scratch);
}

std::uint64_t canonical_hash(NodeId n, const NodeId* left,
                             const NodeId* right) {
  CanonicalScratch scratch;
  return canonical_hash(n, left, right, scratch);
}

std::uint64_t canonical_hash(const BinaryTree& tree) {
  XT_CHECK(!tree.empty());
  return canonical_hash(tree.num_nodes(), tree.left_data(),
                        tree.right_data());
}

BinaryTree canonical_tree(const BinaryTree& tree, const CanonicalForm& form) {
  return relabeled_tree(tree, form.to_canonical);
}

std::uint64_t ordered_hash(const BinaryTree& tree) {
  XT_CHECK(!tree.empty());
  std::vector<std::uint64_t> code;
  subtree_codes_branchless<false>(static_cast<std::size_t>(tree.num_nodes()),
                                  tree.left_data(), tree.right_data(), code);
  // A distinct finalizer keeps the two digest families disjoint even
  // on symmetric trees.
  return mix(finalize(code[0], tree.num_nodes()) ^ 0xbf58476d1ce4e5b9ULL);
}

}  // namespace xt
