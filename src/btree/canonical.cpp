#include "btree/canonical.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace xt {
namespace {

// Fixed odd constants (splitmix64's increment family).  The digest
// must be a pure function of the shape: no addresses, no randomised
// seeds, so the same tree hashes identically in every process.
constexpr std::uint64_t kLeafCode = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kEmptyCode = 0xd1b54a32d192ed03ULL;

constexpr std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Asymmetric in (a, b): the caller decides whether to sort the pair
// (canonical digest) or keep child order (ordered digest).
constexpr std::uint64_t combine(std::uint64_t a, std::uint64_t b) {
  return mix(a + 0x9e3779b97f4a7c15ULL * b + 0x632be59bd9b4e019ULL);
}

// Reverse-BFS bottom-up subtree codes into a caller-owned buffer.
// `sorted` selects the order-insensitive (canonical) variant.
void subtree_codes(std::size_t n, const NodeId* left, const NodeId* right,
                   bool sorted, std::vector<std::uint64_t>& code) {
  // Every constructor assigns ids in preorder (parent < child), so
  // descending id order is a valid bottom-up schedule — no explicit
  // BFS order needed, and the left/right SoA arrays stream linearly.
  code.assign(n, 0);
  for (std::size_t v = n; v-- > 0;) {
    const NodeId c0 = left[v];
    const NodeId c1 = right[v];
    if (c0 == kInvalidNode && c1 == kInvalidNode) {
      code[v] = kLeafCode;
      continue;
    }
    std::uint64_t a =
        c0 == kInvalidNode ? kEmptyCode : code[static_cast<std::size_t>(c0)];
    std::uint64_t b =
        c1 == kInvalidNode ? kEmptyCode : code[static_cast<std::size_t>(c1)];
    if (sorted && b < a) std::swap(a, b);
    code[v] = combine(a, b);
  }
}

// Final digest folds in the node count (belt and braces; the cache key
// also carries it).
std::uint64_t finalize(std::uint64_t root_code, NodeId n) {
  return combine(root_code, static_cast<std::uint64_t>(n));
}

}  // namespace

CanonicalForm canonical_form(NodeId n, const NodeId* left,
                             const NodeId* right, CanonicalScratch& scratch) {
  XT_CHECK(n > 0);
  std::vector<std::uint64_t>& code = scratch.code;
  subtree_codes(static_cast<std::size_t>(n), left, right, /*sorted=*/true,
                code);
  CanonicalForm out;
  out.hash = finalize(code[0], n);
  out.to_canonical.assign(static_cast<std::size_t>(n), kInvalidNode);
  // Preorder with children visited in canonical order: smaller subtree
  // digest first.  Tied siblings are isomorphic subtrees (up to digest
  // collision), so either order yields the same canonical tree.
  std::vector<NodeId>& stack = scratch.stack;
  stack.assign(1, 0);
  NodeId next = 0;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    out.to_canonical[static_cast<std::size_t>(v)] = next++;
    const NodeId c0 = left[static_cast<std::size_t>(v)];
    const NodeId c1 = right[static_cast<std::size_t>(v)];
    if (c0 != kInvalidNode && c1 != kInvalidNode) {
      const bool c0_first = code[static_cast<std::size_t>(c0)] <=
                            code[static_cast<std::size_t>(c1)];
      // LIFO stack: push the second-visited child first.
      stack.push_back(c0_first ? c1 : c0);
      stack.push_back(c0_first ? c0 : c1);
    } else if (c0 != kInvalidNode) {
      stack.push_back(c0);
    } else if (c1 != kInvalidNode) {
      stack.push_back(c1);
    }
  }
  return out;
}

CanonicalForm canonical_form(NodeId n, const NodeId* left,
                             const NodeId* right) {
  CanonicalScratch scratch;
  return canonical_form(n, left, right, scratch);
}

CanonicalForm canonical_form(const BinaryTree& tree) {
  XT_CHECK(!tree.empty());
  return canonical_form(tree.num_nodes(), tree.left_data(),
                        tree.right_data());
}

std::uint64_t canonical_hash(NodeId n, const NodeId* left,
                             const NodeId* right, CanonicalScratch& scratch) {
  XT_CHECK(n > 0);
  subtree_codes(static_cast<std::size_t>(n), left, right, /*sorted=*/true,
                scratch.code);
  return finalize(scratch.code[0], n);
}

std::uint64_t canonical_hash(NodeId n, const NodeId* left,
                             const NodeId* right) {
  CanonicalScratch scratch;
  return canonical_hash(n, left, right, scratch);
}

std::uint64_t canonical_hash(const BinaryTree& tree) {
  XT_CHECK(!tree.empty());
  return canonical_hash(tree.num_nodes(), tree.left_data(),
                        tree.right_data());
}

BinaryTree canonical_tree(const BinaryTree& tree, const CanonicalForm& form) {
  return relabeled_tree(tree, form.to_canonical);
}

std::uint64_t ordered_hash(const BinaryTree& tree) {
  XT_CHECK(!tree.empty());
  std::vector<std::uint64_t> code;
  subtree_codes(static_cast<std::size_t>(tree.num_nodes()), tree.left_data(),
                tree.right_data(), /*sorted=*/false, code);
  // A distinct finalizer keeps the two digest families disjoint even
  // on symmetric trees.
  return mix(finalize(code[0], tree.num_nodes()) ^ 0xbf58476d1ce4e5b9ULL);
}

}  // namespace xt
