// Binary-tree workload generators for the experiment harnesses.
//
// The theorems hold for *arbitrary* binary trees, so the benchmark
// suites sweep structurally extreme families (paths, combs, brooms,
// caterpillars, complete trees) alongside random families (uniform
// full trees via Remy's algorithm, random binary search tree shapes,
// random attachment growth).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "btree/binary_tree.hpp"
#include "util/rng.hpp"

namespace xt {

/// Complete binary tree of the given height (2^{h+1} - 1 nodes).
BinaryTree make_complete_tree(std::int32_t height);

/// Path ("vine"): each node has exactly one child; n >= 1 nodes.
BinaryTree make_path_tree(NodeId n);

/// Caterpillar: a spine of ceil(n/2) nodes, a leaf hanging off each
/// spine node until n nodes are reached.
BinaryTree make_caterpillar_tree(NodeId n);

/// Comb: right-leaning spine where every spine node carries a left
/// leaf chain of the given tooth length.
BinaryTree make_comb_tree(NodeId n, NodeId tooth = 2);

/// Broom: a path of n/2 nodes ending in a complete tree of ~n/2 nodes.
BinaryTree make_broom_tree(NodeId n);

/// Golden tree: every node splits its remaining budget in the golden
/// ratio (~0.618 / 0.382) — the maximally unbalanced shape that still
/// has logarithmic height (Fibonacci/AVL-worst-case flavour).
BinaryTree make_golden_tree(NodeId n);

/// Random growth: repeatedly attach a new leaf to a uniformly random
/// node that still has a free child slot.
BinaryTree make_random_attachment_tree(NodeId n, Rng& rng);

/// Uniformly random *full* binary tree (every node has 0 or 2
/// children) with the given number of leaves, via Remy's algorithm.
/// Total nodes = 2 * leaves - 1.
BinaryTree make_remy_tree(NodeId leaves, Rng& rng);

/// Random binary search tree shape: insert a random permutation of
/// 1..n into an (unbalanced) BST and keep the shape.
BinaryTree make_random_bst_tree(NodeId n, Rng& rng);

/// Random tree of *exactly* n nodes with shape close to a uniform full
/// tree: Remy tree of the right size, then random leaves are removed
/// until n nodes remain.
BinaryTree make_random_tree(NodeId n, Rng& rng);

/// Named family dispatcher used by the benchmark harnesses.
/// Families: complete, path, caterpillar, comb, broom, random,
/// random_bst, random_attach.
BinaryTree make_family_tree(const std::string& family, NodeId n, Rng& rng);

/// The family names accepted by make_family_tree, in harness order.
const std::vector<std::string>& tree_family_names();

}  // namespace xt
