// AHU-style canonical forms for guest binary trees.
//
// Every embedding quantity the paper cares about — dilation, load
// factor, expansion — is invariant under reordering the two children
// of any guest node, so two trees that differ only in child order can
// share one embedding.  The service cache (src/service/) exploits
// this: it keys entries by an isomorphism-invariant digest and stores
// the host assignment indexed by *canonical* node ids, so a cached
// embedding transfers to any isomorphic guest by composing two
// relabellings.
//
// The digest is a bottom-up hash in the spirit of the
// Aho–Hopcroft–Ullman canonical form: a node's code combines its
// children's codes after sorting them, so the code is a pure function
// of the unordered shape (no addresses, no per-process salt — stable
// across runs, pinned by golden tests).  Distinct shapes collide with
// probability ~2^-64; callers that cannot tolerate even that can
// re-validate on reuse (ServiceConfig::verify_hits).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "btree/binary_tree.hpp"

namespace xt {

struct CanonicalForm {
  /// Isomorphism-invariant digest: equal for trees that differ only in
  /// child order, (almost surely) distinct otherwise.
  std::uint64_t hash = 0;
  /// guest id -> canonical id: the preorder numbering obtained by
  /// visiting children in canonical order (smaller subtree digest
  /// first).  Two isomorphic trees map onto the *same* canonical tree,
  /// with corresponding canonical ids — so host assignments indexed by
  /// canonical id transfer between them.
  std::vector<NodeId> to_canonical;
};

/// Digest + relabelling.  O(n), iterative (safe for path trees of any
/// depth).  Requires a non-empty tree.
[[nodiscard]] CanonicalForm canonical_form(const BinaryTree& tree);

/// Raw-array form of canonical_form: the same digest and relabelling
/// computed straight off left/right child arrays (length n, entries
/// node ids or kInvalidNode, preorder id order).  The bulk ingest path
/// digests xtb1 records in place — zero-copy views into an mmap —
/// without materialising a BinaryTree first.  Bit-identical to the
/// BinaryTree overload (pinned by canonical_test).
[[nodiscard]] CanonicalForm canonical_form(NodeId n, const NodeId* left,
                                           const NodeId* right);

/// Digest only (skips building the relabelling).
[[nodiscard]] std::uint64_t canonical_hash(const BinaryTree& tree);

/// Raw-array form of canonical_hash (see canonical_form above).
[[nodiscard]] std::uint64_t canonical_hash(NodeId n, const NodeId* left,
                                           const NodeId* right);

/// Reusable workspace for the digest routines.  A caller digesting a
/// stream of trees (the bulk pipeline, or the network edge's
/// zero-copy wire-to-digest hit path, which hashes straight from
/// payload bytes without ever materializing a BinaryTree) holds one
/// of these so the per-tree subtree-code and stack buffers are
/// allocated once and recycled; results are bit-identical to the
/// scratch-free overloads.
struct CanonicalScratch {
  std::vector<std::uint64_t> code;
  std::vector<NodeId> stack;
};

/// canonical_hash with caller-owned scratch: allocation-free after the
/// first call at a given size.  Runs the branchless bottom-up kernel
/// (mask-select child codes, no data-dependent branches): the leaf /
/// one-child tests of the textbook loop mispredict near-randomly on
/// arbitrary shapes, and removing them is worth ~1.5x on cold corpus
/// sweeps.  Digests are bit-identical to canonical_hash_scalar (pinned
/// by golden_test and fuzzed across generator families).
[[nodiscard]] std::uint64_t canonical_hash(NodeId n, const NodeId* left,
                                           const NodeId* right,
                                           CanonicalScratch& scratch);

/// Reference implementation of canonical_hash: the straightforward
/// branching bottom-up loop this repository originally shipped.  Kept
/// compiled on every target as the cross-check and benchmark baseline
/// for the branchless/batched kernels (tests/simd_test.cpp,
/// bench/bench_kernels.cpp).
[[nodiscard]] std::uint64_t canonical_hash_scalar(NodeId n, const NodeId* left,
                                                  const NodeId* right,
                                                  CanonicalScratch& scratch);

/// Borrowed view of one tree in raw SoA form (preorder ids, entries
/// are child ids or kInvalidNode) — the shape the xtb1 corpus mmap
/// exposes.  The referenced arrays must outlive the call.
struct RawTreeRef {
  NodeId num_nodes = 0;
  const NodeId* left = nullptr;
  const NodeId* right = nullptr;
};

/// Batched digests: out[i] = canonical_hash(trees[i]).  Walks the
/// corpus in strips of four trees, interleaving their bottom-up scans
/// one node per tree per round.  The scans are independent, so the
/// four mix chains overlap in the out-of-order window — the per-call
/// loop is latency-bound on one chain (~2x on cold corpus sweeps; see
/// docs/perf.md).  The bulk pipeline's digest stage feeds mmap'd xtb1
/// views straight in.  Bit-identical to per-call canonical_hash
/// (fuzzed incl. the mmap path in tests/simd_test.cpp).
void canonical_hash_batch(std::span<const RawTreeRef> trees,
                          std::span<std::uint64_t> out,
                          CanonicalScratch& scratch);

/// canonical_form with caller-owned scratch.  Only the returned
/// to_canonical vector is freshly allocated (callers keep it).
[[nodiscard]] CanonicalForm canonical_form(NodeId n, const NodeId* left,
                                           const NodeId* right,
                                           CanonicalScratch& scratch);

/// Order-*sensitive* digest: distinguishes the mirrored / child-order-
/// permuted variants that canonical_hash deliberately identifies.
[[nodiscard]] std::uint64_t ordered_hash(const BinaryTree& tree);

/// The canonical tree itself: `tree` relabeled by form.to_canonical.
/// All guests isomorphic to `tree` produce this exact tree (same ids,
/// same child slots), and its ids are a preorder numbering — embedding
/// it walks the SoA arrays cache-linearly, and the resulting host
/// assignment is indexed by canonical id, ready for the service cache.
/// `form` must be canonical_form(tree).
[[nodiscard]] BinaryTree canonical_tree(const BinaryTree& tree,
                                        const CanonicalForm& form);

}  // namespace xt
