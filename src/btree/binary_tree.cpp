#include "btree/binary_tree.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xt {

BinaryTree BinaryTree::single() {
  BinaryTree t;
  t.parent_.push_back(kInvalidNode);
  t.left_.push_back(kInvalidNode);
  t.right_.push_back(kInvalidNode);
  return t;
}

NodeId BinaryTree::add_child(NodeId p) {
  XT_CHECK(p >= 0 && p < num_nodes());
  const auto pi = static_cast<std::size_t>(p);
  XT_CHECK_MSG(left_[pi] == kInvalidNode || right_[pi] == kInvalidNode,
               "node " << p << " already has two children");
  const NodeId v = num_nodes();
  parent_.push_back(p);
  left_.push_back(kInvalidNode);
  right_.push_back(kInvalidNode);
  (left_[pi] == kInvalidNode ? left_[pi] : right_[pi]) = v;
  return v;
}

std::vector<std::pair<NodeId, NodeId>> BinaryTree::edges() const {
  std::vector<std::pair<NodeId, NodeId>> result;
  result.reserve(static_cast<std::size_t>(std::max(num_nodes() - 1, 0)));
  for (NodeId v = 1; v < num_nodes(); ++v) result.emplace_back(parent(v), v);
  return result;
}

void BinaryTree::neighbors(NodeId v, std::vector<NodeId>& out) const {
  if (parent(v) != kInvalidNode) out.push_back(parent(v));
  if (left(v) != kInvalidNode) out.push_back(left(v));
  if (right(v) != kInvalidNode) out.push_back(right(v));
}

std::int32_t BinaryTree::height() const {
  if (empty()) return -1;
  std::int32_t best = 0;
  for (std::int32_t d : depths()) best = std::max(best, d);
  return best;
}

NodeId BinaryTree::num_leaves() const {
  NodeId count = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) count += is_leaf(v);
  return count;
}

std::vector<NodeId> BinaryTree::subtree_sizes() const {
  std::vector<NodeId> size(static_cast<std::size_t>(num_nodes()), 1);
  // Children always have larger ids than parents only if built by
  // add_child; from_paren also guarantees preorder ids.  We rely on
  // that: reverse-id order is a valid post-order for accumulation.
  for (NodeId v = num_nodes() - 1; v > 0; --v)
    size[static_cast<std::size_t>(parent(v))] +=
        size[static_cast<std::size_t>(v)];
  return size;
}

std::vector<std::int32_t> BinaryTree::depths() const {
  std::vector<std::int32_t> depth(static_cast<std::size_t>(num_nodes()), 0);
  for (NodeId v = 1; v < num_nodes(); ++v)
    depth[static_cast<std::size_t>(v)] =
        depth[static_cast<std::size_t>(parent(v))] + 1;
  return depth;
}

void BinaryTree::validate() const {
  XT_CHECK(parent_.size() == left_.size() && parent_.size() == right_.size());
  if (empty()) return;
  const std::string bad = soa_structure_error(num_nodes(), parent_.data(),
                                              left_.data(), right_.data());
  XT_CHECK_MSG(bad.empty(), bad);
}

BinaryTree BinaryTree::from_soa(std::vector<NodeId> parent,
                                std::vector<NodeId> left,
                                std::vector<NodeId> right) {
  XT_CHECK_MSG(parent.size() == left.size() && parent.size() == right.size(),
               "from_soa: array lengths differ");
  BinaryTree t;
  t.parent_ = std::move(parent);
  t.left_ = std::move(left);
  t.right_ = std::move(right);
  t.validate();
  return t;
}

std::string soa_structure_error(NodeId n, const NodeId* parent,
                                const NodeId* left, const NodeId* right) {
  const auto fail = [](NodeId v, const char* what) {
    std::ostringstream os;
    os << "node " << v << ": " << what;
    return os.str();
  };
  if (n <= 0) return n == 0 ? "" : "negative node count";
  if (parent[0] != kInvalidNode) return fail(0, "root has a parent");
  for (NodeId v = 1; v < n; ++v) {
    const NodeId p = parent[static_cast<std::size_t>(v)];
    if (p < 0 || p >= n) return fail(v, "parent out of range");
    if (p >= v) return fail(v, "parent id not smaller (preorder id order)");
    if (left[static_cast<std::size_t>(p)] != v &&
        right[static_cast<std::size_t>(p)] != v)
      return fail(v, "parent/child arrays inconsistent");
  }
  for (NodeId v = 0; v < n; ++v) {
    const NodeId l = left[static_cast<std::size_t>(v)];
    const NodeId r = right[static_cast<std::size_t>(v)];
    for (const NodeId c : {l, r}) {
      if (c == kInvalidNode) continue;
      if (c <= 0 || c >= n) return fail(v, "child out of range");
      if (parent[static_cast<std::size_t>(c)] != v)
        return fail(v, "child does not point back");
    }
    if (l != kInvalidNode && l == r) return fail(v, "duplicate child slots");
  }
  return "";
}

std::string BinaryTree::to_paren() const {
  std::string out;
  // Iterative preorder with explicit closing markers.
  struct Frame {
    NodeId node;
    int phase;  // 0: open, 1: left done, 2: right done
  };
  if (empty()) return out;
  std::vector<Frame> stack{{root(), 0}};
  while (!stack.empty()) {
    auto& [v, phase] = stack.back();
    if (phase == 0) {
      out += '(';
      phase = 1;
      if (child(v, 0) != kInvalidNode) {
        stack.push_back({child(v, 0), 0});
        continue;
      }
      out += '.';
    }
    if (phase == 1) {
      phase = 2;
      if (child(v, 1) != kInvalidNode) {
        stack.push_back({child(v, 1), 0});
        continue;
      }
      out += '.';
    }
    out += ')';
    stack.pop_back();
  }
  return out;
}

BinaryTree BinaryTree::from_paren(const std::string& s) {
  BinaryTree t;
  if (s.empty()) return t;
  // -2 marks a slot reserved by an explicit '.' absent-child marker.
  auto free_slot = [&t](NodeId p) -> NodeId& {
    const auto pi = static_cast<std::size_t>(p);
    XT_CHECK_MSG(t.left_[pi] == kInvalidNode || t.right_[pi] == kInvalidNode,
                 "too many children in paren string");
    return t.left_[pi] == kInvalidNode ? t.left_[pi] : t.right_[pi];
  };
  std::vector<NodeId> stack;
  for (char ch : s) {
    switch (ch) {
      case '(': {
        const NodeId v = t.num_nodes();
        t.parent_.push_back(stack.empty() ? kInvalidNode : stack.back());
        t.left_.push_back(kInvalidNode);
        t.right_.push_back(kInvalidNode);
        if (!stack.empty()) {
          free_slot(stack.back()) = v;
        } else {
          XT_CHECK_MSG(v == 0, "multiple roots in paren string");
        }
        stack.push_back(v);
        break;
      }
      case ')':
        XT_CHECK_MSG(!stack.empty(), "unbalanced paren string");
        stack.pop_back();
        break;
      case '.':
        // Explicit absent-child marker: reserve the next child slot so
        // "(.(..))" puts the subtree in the *right* slot.
        XT_CHECK(!stack.empty());
        free_slot(stack.back()) = -2;  // placeholder
        break;
      default:
        XT_CHECK_MSG(false, "bad character in paren string: " << ch);
    }
  }
  XT_CHECK_MSG(stack.empty(), "unbalanced paren string");
  // Clear placeholders back to absent.
  for (auto& c : t.left_)
    if (c == -2) c = kInvalidNode;
  for (auto& c : t.right_)
    if (c == -2) c = kInvalidNode;
  t.validate();
  return t;
}

BinaryTree relabeled_tree(const BinaryTree& tree,
                          const std::vector<NodeId>& to_new) {
  const auto n = static_cast<std::size_t>(tree.num_nodes());
  XT_CHECK(to_new.size() == n);
  BinaryTree out;
  out.parent_.assign(n, kInvalidNode);
  out.left_.assign(n, kInvalidNode);
  out.right_.assign(n, kInvalidNode);
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    const NodeId nv = to_new[static_cast<std::size_t>(v)];
    XT_CHECK_MSG(nv >= 0 && nv < tree.num_nodes(),
                 "relabeled_tree: mapping not into [0, n)");
    const NodeId p = tree.parent(v);
    if (p == kInvalidNode) {
      XT_CHECK_MSG(nv == 0, "relabeled_tree: root must map to 0");
      continue;
    }
    const NodeId np = to_new[static_cast<std::size_t>(p)];
    out.parent_[static_cast<std::size_t>(nv)] = np;
  }
  // Children in new-id order: iterating nv ascending and filling the
  // first free slot puts the smaller new id on the left.
  for (NodeId nv = 1; nv < out.num_nodes(); ++nv) {
    const NodeId np = out.parent_[static_cast<std::size_t>(nv)];
    XT_CHECK_MSG(np != kInvalidNode && np < nv,
                 "relabeled_tree: mapping does not preserve id order");
    auto& slot = out.left_[static_cast<std::size_t>(np)] == kInvalidNode
                     ? out.left_[static_cast<std::size_t>(np)]
                     : out.right_[static_cast<std::size_t>(np)];
    XT_CHECK_MSG(slot == kInvalidNode,
                 "relabeled_tree: node gained a third child");
    slot = nv;
  }
  out.validate();
  return out;
}

}  // namespace xt
