// Tree-separation engine: executable form of Lemmas 1 and 2 (§2).
//
// Given a piece P (connected, <= 2 designated nodes) and a target
// size Delta, split_piece partitions P into an *extract* side of
// ~Delta nodes and a *remain* side.  A small set of *boundary* nodes
// per side is surrendered for immediate layout (the lemmas' S1, S2);
// everything else re-forms into new pieces hanging off the boundary of
// their side.
//
// Contract (checked by validate_split and the property tests):
//   * every old designated node of P is in one of the embed lists
//     (lemma condition (1): {r1, r2} \subseteq S1 \cup S2);
//   * every edge crossing the two sides has both endpoints embedded
//     (condition (3): the cut runs between S1 and S2);
//   * every new piece touches embedded nodes of exactly one side, by
//     at most two edges (conditions (4)-(6): collinearity + a unique
//     characteristic address);
//   * |extract_total - Delta| <= floor((Delta+1)/3) for kLemma1 grade
//     and <= floor((Delta+4)/9) for kLemma2 grade, provided
//     |P| > 4*Delta/3;
//   * boundary sizes match the lemmas (|S| <= 2+2 cut endpoints and
//     designated per side; a rare median fix can add one more — the
//     result records whether it fired so harnesses can report it).
#pragma once

#include <cstdint>
#include <vector>

#include "btree/binary_tree.hpp"
#include "separator/piece.hpp"

namespace xt {

enum class SplitQuality {
  kLemma1,  // single cut, balance within floor((Delta+1)/3)
  kLemma2,  // <= 2 cuts,  balance within floor((Delta+4)/9)
};

struct SplitResult {
  // Nodes to lay out now (the lemmas' S-sets), by side.
  std::vector<NodeId> embed_extract;
  std::vector<NodeId> embed_remain;
  // Re-formed pieces, hanging off the same side's embed set.
  std::vector<Piece> pieces_extract;
  std::vector<Piece> pieces_remain;
  // Node totals per side (embeds + pieces); extract_total ~ Delta.
  NodeId extract_total = 0;
  NodeId remain_total = 0;
  // Diagnostics.
  int num_cuts = 0;
  int median_fixes = 0;
};

/// Reusable working state for the splitters.  The embedder performs
/// O(n) splits per run; threading one scratch through all of them
/// makes the steady-state split path allocation-free: the PieceView,
/// every marker/stack buffer, and the node lists of re-formed pieces
/// all come out of here.  Pieces the caller has consumed go back via
/// recycle() and their node buffers are handed to future results by
/// take_piece().  A default-constructed scratch is ready to use; the
/// struct is cheap to keep alive for a whole embedding run.
struct SplitScratch {
  PieceView view;
  std::vector<char> side;            // 0 = remain, 1 = extract
  std::vector<char> boundary;
  std::vector<char> visited;
  std::vector<std::int32_t> stack;
  std::vector<std::int32_t> component;
  std::vector<std::int32_t> attachments;
  std::vector<std::int32_t> path;    // find2's r1-r2 walk
  std::vector<NodeId> adj_minus;     // AdjustedSizes working arrays
  std::vector<char> adj_blocked;
  std::vector<char> on_carved_path;  // Find1Sizes ancestor marks
  std::vector<Piece> free_pieces;    // recycled node buffers

  /// An empty piece, reusing a recycled node buffer when available.
  Piece take_piece() {
    if (free_pieces.empty()) return {};
    Piece p = std::move(free_pieces.back());
    free_pieces.pop_back();
    p.nodes.clear();
    p.designated = {kInvalidNode, kInvalidNode};
    return p;
  }
  /// Returns a consumed piece's buffers to the pool.
  void recycle(Piece&& p) { free_pieces.push_back(std::move(p)); }
  /// Returns every piece still held by a result to the pool.
  void recycle(SplitResult&& r) {
    for (Piece& p : r.pieces_extract) recycle(std::move(p));
    for (Piece& p : r.pieces_remain) recycle(std::move(p));
    r.pieces_extract.clear();
    r.pieces_remain.clear();
  }
};

/// Splits `piece` so that the extract side holds ~`delta` nodes.
/// Requires 1 <= delta < piece.size().  Quality selects the balance /
/// boundary trade-off of Lemma 1 vs Lemma 2.
SplitResult split_piece(const BinaryTree& tree, const Piece& piece,
                        NodeId delta, SplitQuality quality);

/// Scratch-reusing form: identical output, but all working buffers and
/// the result's vectors come from `scratch` / `out` (pieces still held
/// by `out` on entry are recycled first).  This is the embedder's hot
/// path.
void split_piece(const BinaryTree& tree, const Piece& piece, NodeId delta,
                 SplitQuality quality, SplitScratch& scratch,
                 SplitResult& out);

/// The paper's literal find2 procedure (proof of Lemma 2): walk from
/// r1 along the r1-r2 path while the subtree holds more than
/// 4*delta/3 nodes, then apply the three-case analysis (v = r2 and
/// still heavy / |T(v)| < delta / delta <= |T(v)| <= 4*delta/3), each
/// resolved with one or two find1 carvings; the complementary range
/// delta < n <= 4*delta/3 is solved with delta' = n - delta and the
/// sides interchanged.  Guarantees match split_piece's kLemma2 grade.
/// The case analysis keeps every boundary set at <= 4 on all small
/// instances (verified exhaustively up to 7 nodes); on large trees a
/// rare collinearity promotion — the detail the extended abstract
/// omits "for lack of space" — can add one more node per promotion
/// (counted in SplitResult::median_fixes).  Requires the piece to have
/// at least one designated node.
SplitResult split_piece_find2(const BinaryTree& tree, const Piece& piece,
                              NodeId delta);

/// Scratch-reusing form of split_piece_find2 (identical output).
void split_piece_find2(const BinaryTree& tree, const Piece& piece,
                       NodeId delta, SplitScratch& scratch, SplitResult& out);

/// Degenerate split moving the *whole* piece to the extract side: its
/// designated nodes are laid out, the rest re-forms into pieces
/// hanging off them.  Used by ADJUST when shifting an interval
/// wholesale.  Requires piece.num_designated() >= 1.
SplitResult extract_whole_piece(const BinaryTree& tree, const Piece& piece);

/// Scratch-reusing form of extract_whole_piece (identical output).
void extract_whole_piece(const BinaryTree& tree, const Piece& piece,
                         SplitScratch& scratch, SplitResult& out);

/// The paper's balance bounds, exposed for tests and harnesses.
/// Lemma 1's bound additionally presumes the piece root (a designated
/// node) has at most two subtrees — automatic when the designated node
/// borders the embedded region, as in every call the embedder makes.
constexpr NodeId lemma1_tolerance(NodeId delta) { return (delta + 1) / 3; }
constexpr NodeId lemma2_tolerance(NodeId delta) { return (delta + 4) / 9; }

/// Full audit of a split result against the contract above (O(|P|)).
/// `max_boundary` is the lemma bound on each embed list (2 for the
/// lemma-1 remain side, otherwise 4); pass a larger value to merely
/// record.  Throws check_error on structural violations.
void validate_split(const BinaryTree& tree, const Piece& original,
                    const SplitResult& result);

}  // namespace xt
