#include "separator/piece.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xt {

void Piece::add_designated(NodeId v) {
  if (designated[0] == v || designated[1] == v) return;
  XT_CHECK_MSG(designated[1] == kInvalidNode,
               "piece already has two designated nodes; cannot add " << v);
  (designated[0] == kInvalidNode ? designated[0] : designated[1]) = v;
}

void PieceView::rebuild(const BinaryTree& tree, const Piece& piece) {
  tree_ = &tree;
  piece_ = &piece;
  const auto n = static_cast<std::size_t>(piece.size());
  XT_CHECK(n > 0);

  const auto total = static_cast<std::size_t>(tree.num_nodes());
  if (stamp_.size() < total) {
    stamp_.resize(total, 0);
    local_.resize(total, -1);
  }
  if (++epoch_ == 0) {  // epoch wrapped: invalidate every stale stamp
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    epoch_ = 1;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto g = static_cast<std::size_t>(piece.nodes[i]);
    XT_CHECK_MSG(stamp_[g] != epoch_, "duplicate node in piece");
    stamp_[g] = epoch_;
    local_[g] = static_cast<std::int32_t>(i);
  }
  root_ = piece.designated[0] != kInvalidNode ? local_of(piece.designated[0])
                                              : 0;
  XT_CHECK(root_ >= 0);

  parent_.assign(n, -1);
  depth_.assign(n, 0);
  subtree_size_.assign(n, 1);
  child_begin_.assign(n, 0);
  child_count_.assign(n, 0);
  child_list_.clear();
  child_list_.reserve(n);
  order_.clear();
  order_.reserve(n);

  // Iterative DFS building the rooted structure over the piece-induced
  // adjacency.  "Unvisited" is parent_ == -1 (plus a root check), so no
  // separate seen array is needed; a node's children are appended to
  // child_list_ contiguously when it is popped, which is what makes the
  // CSR layout valid.  Neighbours come straight from the SoA parent /
  // left / right arrays — in that order, matching the historical
  // neighbors() order, so the preorder (and everything derived from
  // it) is unchanged.
  const NodeId* const tparent = tree.parent_data();
  const NodeId* const tleft = tree.left_data();
  const NodeId* const tright = tree.right_data();
  stack_.clear();
  stack_.push_back(root_);
  while (!stack_.empty()) {
    const std::int32_t u = stack_.back();
    stack_.pop_back();
    order_.push_back(u);
    child_begin_[static_cast<std::size_t>(u)] =
        static_cast<std::int32_t>(child_list_.size());
    const auto g = static_cast<std::size_t>(global_of(u));
    const NodeId nbrs[3] = {tparent[g], tleft[g], tright[g]};
    for (const NodeId gn : nbrs) {
      if (gn == kInvalidNode) continue;
      const std::int32_t v = local_of(gn);
      if (v < 0 || v == root_ || parent_[static_cast<std::size_t>(v)] >= 0)
        continue;
      parent_[static_cast<std::size_t>(v)] = u;
      depth_[static_cast<std::size_t>(v)] = depth_[static_cast<std::size_t>(u)] + 1;
      child_list_.push_back(v);
      ++child_count_[static_cast<std::size_t>(u)];
      stack_.push_back(v);
    }
  }
  XT_CHECK_MSG(order_.size() == n, "piece is not connected");

  // Subtree sizes: accumulate in reverse preorder.
  for (std::size_t i = order_.size(); i-- > 0;) {
    const std::int32_t u = order_[i];
    const std::int32_t p = parent_[static_cast<std::size_t>(u)];
    if (p >= 0)
      subtree_size_[static_cast<std::size_t>(p)] +=
          subtree_size_[static_cast<std::size_t>(u)];
  }
}

std::int32_t PieceView::lca(std::int32_t a, std::int32_t b) const {
  while (a != b) {
    if (depth(a) < depth(b)) std::swap(a, b);
    a = parent(a);
    XT_CHECK(a >= 0);
  }
  return a;
}

std::int32_t PieceView::median(std::int32_t a, std::int32_t b,
                               std::int32_t c) const {
  const std::int32_t x = lca(a, b);
  const std::int32_t y = lca(a, c);
  const std::int32_t z = lca(b, c);
  // Exactly one of the pairwise LCAs is deepest (or all coincide); it
  // is the Steiner point.
  std::int32_t best = x;
  if (depth(y) > depth(best)) best = y;
  if (depth(z) > depth(best)) best = z;
  return best;
}

std::vector<Piece> collect_pieces(const BinaryTree& tree,
                                  const std::vector<char>& embedded) {
  XT_CHECK(embedded.size() == static_cast<std::size_t>(tree.num_nodes()));
  std::vector<char> visited(embedded.size(), 0);
  std::vector<Piece> pieces;
  std::vector<NodeId> stack;
  const NodeId* const tparent = tree.parent_data();
  const NodeId* const tleft = tree.left_data();
  const NodeId* const tright = tree.right_data();
  for (NodeId s = 0; s < tree.num_nodes(); ++s) {
    if (embedded[static_cast<std::size_t>(s)] ||
        visited[static_cast<std::size_t>(s)])
      continue;
    Piece piece;
    stack.assign(1, s);
    visited[static_cast<std::size_t>(s)] = 1;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      piece.nodes.push_back(u);
      const auto ui = static_cast<std::size_t>(u);
      const NodeId nbrs[3] = {tparent[ui], tleft[ui], tright[ui]};
      for (const NodeId v : nbrs) {
        if (v == kInvalidNode) continue;
        if (embedded[static_cast<std::size_t>(v)]) {
          piece.add_designated(u);  // u borders the embedded region
        } else if (!visited[static_cast<std::size_t>(v)]) {
          visited[static_cast<std::size_t>(v)] = 1;
          stack.push_back(v);
        }
      }
    }
    pieces.push_back(std::move(piece));
  }
  return pieces;
}

void validate_piece(const BinaryTree& tree, const std::vector<char>& embedded,
                    const Piece& piece) {
  XT_CHECK(piece.size() > 0);
  // Connectivity + rooted structure.
  const PieceView view(tree, piece);
  // Disjoint from embedded; designated exactness.
  std::vector<NodeId> nbr;
  std::array<NodeId, 2> expected{kInvalidNode, kInvalidNode};
  int expected_count = 0;
  int designated_edges = 0;
  for (NodeId v : piece.nodes) {
    XT_CHECK_MSG(!embedded[static_cast<std::size_t>(v)],
                 "piece contains embedded node " << v);
    nbr.clear();
    tree.neighbors(v, nbr);
    bool borders = false;
    for (NodeId w : nbr) {
      if (embedded[static_cast<std::size_t>(w)]) {
        borders = true;
        ++designated_edges;
      }
    }
    if (borders) {
      XT_CHECK_MSG(expected_count < 2,
                   "piece has more than two designated nodes (collinearity)");
      expected[static_cast<std::size_t>(expected_count++)] = v;
    }
  }
  XT_CHECK_MSG(designated_edges <= 2,
               "piece connected to embedded region by " << designated_edges
                                                        << " > 2 edges");
  std::array<NodeId, 2> actual = piece.designated;
  std::sort(actual.begin(), actual.end());
  std::sort(expected.begin(), expected.end());
  XT_CHECK_MSG(actual == expected, "piece designated list out of date");
}

}  // namespace xt
