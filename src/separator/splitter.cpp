#include "separator/splitter.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"

namespace xt {
namespace {

// Resets `out` for a fresh split, returning any pieces it still holds
// to the scratch pool so their node buffers are reused.
void reset_result(SplitScratch& scratch, SplitResult& out) {
  scratch.recycle(std::move(out));
  out.embed_extract.clear();
  out.embed_remain.clear();
  out.extract_total = 0;
  out.remain_total = 0;
  out.num_cuts = 0;
  out.median_fixes = 0;
}

// Marks side[x] = value for every node of view-subtree(u) currently
// carrying `from`.
void mark_subtree(const PieceView& view, std::int32_t u, char from, char value,
                  std::vector<char>& side, std::vector<std::int32_t>& stack) {
  stack.clear();
  stack.push_back(u);
  while (!stack.empty()) {
    const std::int32_t x = stack.back();
    stack.pop_back();
    if (side[static_cast<std::size_t>(x)] != from) continue;
    side[static_cast<std::size_t>(x)] = value;
    for (std::int32_t c : view.children(x)) stack.push_back(c);
  }
}

// find1 (§2, proof of Lemma 1): from `start`, descend into the child
// of maximal subtree size while the current subtree holds more than
// 4*delta/3 nodes.  `adjusted` optionally subtracts an already-carved
// subtree rooted at `carved` from every size on its root path.
struct Find1Sizes {
  const PieceView* view;
  std::int32_t carved = -1;   // local root of an excluded subtree, or -1
  NodeId carved_size = 0;
  // Ancestors of `carved` (incl. itself); null when carved < 0.
  const std::vector<char>* on_carved_path = nullptr;

  [[nodiscard]] NodeId size(std::int32_t x) const {
    if (carved < 0) return view->subtree_size(x);
    return (*on_carved_path)[static_cast<std::size_t>(x)]
               ? view->subtree_size(x) - carved_size
               : view->subtree_size(x);
  }
};

void finish_split(const Piece& piece, const PieceView& view,
                  SplitScratch& scratch, SplitResult& out);

// Generalised adjusted sizes supporting several excluded cones (used
// by the literal find2 implementation, where up to three carvings can
// coexist).  exclude() removes the *remaining* mass of a cone, so
// nested exclusions compose correctly when applied inner-first.
// Working arrays live in the scratch (one AdjustedSizes is alive at a
// time per splitter call).
struct AdjustedSizes {
  AdjustedSizes(const PieceView& v, SplitScratch& s)
      : view(&v), minus(&s.adj_minus), blocked(&s.adj_blocked) {
    minus->assign(static_cast<std::size_t>(v.size()), 0);
    blocked->assign(static_cast<std::size_t>(v.size()), 0);
  }

  [[nodiscard]] NodeId size(std::int32_t x) const {
    return view->subtree_size(x) - (*minus)[static_cast<std::size_t>(x)];
  }

  void exclude(std::int32_t root) {
    const NodeId s = size(root);
    (*blocked)[static_cast<std::size_t>(root)] = 1;
    for (std::int32_t x = root; x >= 0; x = view->parent(x))
      (*minus)[static_cast<std::size_t>(x)] += s;
  }

  const PieceView* view;
  std::vector<NodeId>* minus;
  std::vector<char>* blocked;
};

// find1 over adjusted sizes: descend into the heaviest non-blocked
// child while the (adjusted) subtree holds more than 4*delta/3 nodes.
std::int32_t find1a(const PieceView& view, const AdjustedSizes& adj,
                    std::int32_t start, NodeId delta) {
  std::int32_t u = start;
  while (3 * static_cast<std::int64_t>(adj.size(u)) >
         4 * static_cast<std::int64_t>(delta)) {
    std::int32_t best = -1;
    NodeId best_size = 0;
    for (std::int32_t c : view.children(u)) {
      if ((*adj.blocked)[static_cast<std::size_t>(c)]) continue;
      if (adj.size(c) > best_size) {
        best_size = adj.size(c);
        best = c;
      }
    }
    if (best < 0) break;
    u = best;
  }
  return u;
}

// mark_subtree variant that refuses to enter kept cones.
void mark_subtree_keep(const PieceView& view, std::int32_t u, char from,
                       char value, std::vector<char>& side,
                       const std::vector<char>& keep,
                       std::vector<std::int32_t>& stack) {
  stack.clear();
  stack.push_back(u);
  while (!stack.empty()) {
    const std::int32_t x = stack.back();
    stack.pop_back();
    if (keep[static_cast<std::size_t>(x)]) continue;
    if (side[static_cast<std::size_t>(x)] != from) continue;
    side[static_cast<std::size_t>(x)] = value;
    for (std::int32_t c : view.children(x)) stack.push_back(c);
  }
}

std::int32_t find1(const PieceView& view, const Find1Sizes& sizes,
                   std::int32_t start, NodeId delta) {
  std::int32_t u = start;
  while (3 * static_cast<std::int64_t>(sizes.size(u)) > 4 * static_cast<std::int64_t>(delta)) {
    std::int32_t best = -1;
    NodeId best_size = 0;
    for (std::int32_t c : view.children(u)) {
      if (c == sizes.carved) continue;  // carved subtree is not available
      const NodeId s = sizes.size(c);
      if (s > best_size) {
        best_size = s;
        best = c;
      }
    }
    if (best < 0) break;  // nothing left to descend into
    u = best;
  }
  return u;
}

}  // namespace

void extract_whole_piece(const BinaryTree& tree, const Piece& piece,
                         SplitScratch& scratch, SplitResult& out) {
  XT_CHECK_MSG(piece.num_designated() >= 1,
               "cannot move a piece with no designated node");
  reset_result(scratch, out);
  scratch.view.rebuild(tree, piece);
  const PieceView& view = scratch.view;
  scratch.boundary.assign(static_cast<std::size_t>(view.size()), 0);
  for (NodeId d : piece.designated) {
    if (d == kInvalidNode) continue;
    const std::int32_t l = view.local_of(d);
    XT_CHECK(l >= 0);
    if (!scratch.boundary[static_cast<std::size_t>(l)]) {
      scratch.boundary[static_cast<std::size_t>(l)] = 1;
      out.embed_extract.push_back(d);
    }
  }
  // Components of piece - designated re-form as extract-side pieces.
  scratch.visited.assign(scratch.boundary.begin(), scratch.boundary.end());
  auto& stack = scratch.stack;
  for (std::int32_t s = 0; s < view.size(); ++s) {
    if (scratch.visited[static_cast<std::size_t>(s)]) continue;
    Piece fresh = scratch.take_piece();
    stack.assign(1, s);
    scratch.visited[static_cast<std::size_t>(s)] = 1;
    while (!stack.empty()) {
      const std::int32_t x = stack.back();
      stack.pop_back();
      fresh.nodes.push_back(view.global_of(x));
      auto scan = [&](std::int32_t y) {
        if (y < 0) return;
        if (scratch.boundary[static_cast<std::size_t>(y)]) {
          fresh.add_designated(view.global_of(x));
        } else if (!scratch.visited[static_cast<std::size_t>(y)]) {
          scratch.visited[static_cast<std::size_t>(y)] = 1;
          stack.push_back(y);
        }
      };
      scan(view.parent(x));
      for (std::int32_t c : view.children(x)) scan(c);
    }
    out.pieces_extract.push_back(std::move(fresh));
  }
  out.extract_total = piece.size();
  out.remain_total = 0;
}

void split_piece_find2(const BinaryTree& tree, const Piece& piece,
                       NodeId delta, SplitScratch& scratch, SplitResult& out) {
  XT_CHECK_MSG(delta >= 1 && delta < piece.size(),
               "split target " << delta << " out of range for piece of size "
                               << piece.size());
  XT_CHECK(piece.num_designated() >= 1);
  const NodeId n = piece.size();

  // The lemma needs n > 4*delta/3; for delta < n <= 4*delta/3 the
  // paper solves with delta' = n - delta and interchanges the roles of
  // S1/S2 and T1/T2.
  if (3 * static_cast<std::int64_t>(n) <= 4 * static_cast<std::int64_t>(delta)) {
    split_piece_find2(tree, piece, n - delta, scratch, out);
    std::swap(out.embed_extract, out.embed_remain);
    std::swap(out.pieces_extract, out.pieces_remain);
    std::swap(out.extract_total, out.remain_total);
    return;
  }

  reset_result(scratch, out);
  scratch.view.rebuild(tree, piece);  // rooted at r1 = designated[0]
  const PieceView& view = scratch.view;
  const auto sz = static_cast<std::size_t>(view.size());
  auto& side = scratch.side;
  side.assign(sz, 0);
  const std::int32_t r1 = view.root();
  const std::int32_t r2 = piece.designated[1] != kInvalidNode
                              ? view.local_of(piece.designated[1])
                              : r1;
  XT_CHECK(r2 >= 0);
  const NodeId tol = lemma2_tolerance(delta);

  // find2: walk from r1 towards r2 while the subtree stays heavy.
  auto& path = scratch.path;  // r2 up to r1
  path.clear();
  for (std::int32_t x = r2; x >= 0; x = view.parent(x)) path.push_back(x);
  XT_CHECK(path.back() == r1);
  std::size_t pos = path.size() - 1;
  std::int32_t v = r1;
  while (3 * static_cast<std::int64_t>(view.subtree_size(v)) >
             4 * static_cast<std::int64_t>(delta) &&
         v != r2) {
    --pos;
    v = path[pos];
  }

  if (v == r2 && 3 * static_cast<std::int64_t>(view.subtree_size(v)) >
                     4 * static_cast<std::int64_t>(delta)) {
    // Case 1: both designated nodes stay on the remain side; extract
    // ~delta from inside T(r2) with find1 applied twice from r2.
    AdjustedSizes adj(view, scratch);
    const std::int32_t u1 = find1a(view, adj, r2, delta);
    XT_CHECK(u1 != r2);
    mark_subtree(view, u1, 0, 1, side, scratch.stack);
    const NodeId e = view.subtree_size(u1) - delta;
    if (e > tol) {
      // Overshoot: carve ~e back out of T(u1).
      const std::int32_t w = find1a(view, adj, u1, e);
      if (w != u1) mark_subtree(view, w, 1, 0, side, scratch.stack);
    } else if (e < -tol) {
      // Undershoot: carve ~(-e) more from T(r2) - T(u1); if the walk
      // stops at an ancestor of u1 the carvings merge.
      adj.exclude(u1);
      const std::int32_t w = find1a(view, adj, r2, -e);
      if (w != r2) mark_subtree(view, w, 0, 1, side, scratch.stack);
    }
  } else if (view.subtree_size(v) < delta) {
    // Case 2: T(v) (which contains r2) moves wholesale; top it up with
    // ~delta - |T(v)| carved from the remainder.  (We start the find1
    // carvings from the root rather than from father(v): same bounds,
    // and the remainder always has room because |T(v)| >= 1.)
    mark_subtree(view, v, 0, 1, side, scratch.stack);
    const NodeId need = delta - view.subtree_size(v);
    if (need >= 1) {
      AdjustedSizes adj(view, scratch);
      adj.exclude(v);
      const std::int32_t u2 = find1a(view, adj, r1, need);
      if (u2 != r1) {
        mark_subtree_keep(view, u2, 0, 1, side, *adj.blocked, scratch.stack);
        const NodeId e2 = adj.size(u2) - need;
        if (e2 > lemma2_tolerance(need)) {
          const std::int32_t w = find1a(view, adj, u2, e2);
          if (w != u2)
            mark_subtree_keep(view, w, 1, 0, side, *adj.blocked, scratch.stack);
        } else if (e2 < -lemma2_tolerance(need)) {
          adj.exclude(u2);
          const std::int32_t w = find1a(view, adj, r1, -e2);
          if (w != r1)
            mark_subtree_keep(view, w, 0, 1, side, *adj.blocked, scratch.stack);
        }
      }
    }
  } else {
    // Case 3: delta <= |T(v)| <= 4*delta/3.  T(v) moves, minus a
    // Lemma 1 carve-back of delta' = |T(v)| - delta <= delta/3 + 1
    // (whose (delta'+1)/3 error already sits inside the (delta+4)/9
    // budget — the paper's trick).
    mark_subtree(view, v, 0, 1, side, scratch.stack);
    const NodeId back = view.subtree_size(v) - delta;
    if (back >= 1) {
      AdjustedSizes adj(view, scratch);
      const std::int32_t w = find1a(view, adj, v, back);
      if (w != v) mark_subtree(view, w, 1, 0, side, scratch.stack);
    }
  }
  finish_split(piece, view, scratch, out);
}

void split_piece(const BinaryTree& tree, const Piece& piece, NodeId delta,
                 SplitQuality quality, SplitScratch& scratch,
                 SplitResult& out) {
  XT_CHECK_MSG(delta >= 1 && delta < piece.size(),
               "split target " << delta << " out of range for piece of size "
                               << piece.size());
  reset_result(scratch, out);
  scratch.view.rebuild(tree, piece);
  const PieceView& view = scratch.view;
  const auto n = static_cast<std::size_t>(view.size());
  auto& side = scratch.side;  // 0 = remain, 1 = extract
  side.assign(n, 0);

  // --- primary cut (find1) ---------------------------------------------
  Find1Sizes plain{&view, -1, 0, nullptr};
  const std::int32_t u = find1(view, plain, view.root(), delta);
  if (u == view.root()) {
    // |P| <= 4*delta/3: the lemma-1 tolerance allows taking everything
    // (the paper's ADJUST shifts such an interval wholesale).
    extract_whole_piece(tree, piece, scratch, out);
    return;
  }
  mark_subtree(view, u, 0, 1, side, scratch.stack);
  NodeId extract_size = view.subtree_size(u);

  // --- refinement cut (lemma-2 grade) ------------------------------------
  if (quality == SplitQuality::kLemma2) {
    const NodeId tol = lemma2_tolerance(delta);
    const NodeId e = extract_size - delta;
    if (e > tol) {
      // Overshoot: carve a ~e subtree back out of T(u).
      const std::int32_t w = find1(view, plain, u, e);
      if (w != u) {
        mark_subtree(view, w, 1, 0, side, scratch.stack);
        extract_size -= view.subtree_size(w);
      }
    } else if (e < -tol) {
      // Undershoot: carve a ~(-e) subtree out of the remainder.  Sizes
      // are adjusted by the already-carved T(u); if the walk stops at
      // an ancestor of u the two carvings merge into one.
      const NodeId t2 = -e;
      scratch.on_carved_path.assign(n, 0);
      for (std::int32_t x = u; x >= 0; x = view.parent(x))
        scratch.on_carved_path[static_cast<std::size_t>(x)] = 1;
      Find1Sizes adjusted{&view, u, view.subtree_size(u),
                          &scratch.on_carved_path};
      const std::int32_t w = find1(view, adjusted, view.root(), t2);
      if (w != view.root()) {
        const NodeId gain = adjusted.size(w);
        mark_subtree(view, w, 0, 1, side, scratch.stack);
        extract_size += gain;
      }
    }
  }

  finish_split(piece, view, scratch, out);
}

namespace {

// Shared back end of every splitter: given the side marking, derive
// the boundary sets (cut endpoints + old designated + the "node y"
// median promotions where collinearity demands them), re-form the
// components into pieces, and assemble the SplitResult.
void finish_split(const Piece& piece, const PieceView& view,
                  SplitScratch& scratch, SplitResult& out) {
  const auto n = static_cast<std::size_t>(view.size());
  auto& side = scratch.side;

  // Cut endpoints (edges whose sides differ) plus the old designated
  // nodes, each on the side it physically lies in.
  auto& boundary = scratch.boundary;
  boundary.assign(n, 0);
  auto add_boundary = [&](std::int32_t local) {
    if (boundary[static_cast<std::size_t>(local)]) return;
    boundary[static_cast<std::size_t>(local)] = 1;
    auto& list = side[static_cast<std::size_t>(local)] ? out.embed_extract
                                                       : out.embed_remain;
    list.push_back(view.global_of(local));
  };
  for (std::int32_t x = 0; x < view.size(); ++x) {
    const std::int32_t p = view.parent(x);
    if (p >= 0 &&
        side[static_cast<std::size_t>(x)] != side[static_cast<std::size_t>(p)]) {
      ++out.num_cuts;
      add_boundary(x);
      add_boundary(p);
    }
  }
  for (NodeId d : piece.designated) {
    if (d != kInvalidNode) add_boundary(view.local_of(d));
  }

  // --- components + median fix (the lemmas' collinearity conditions) -----
  // Re-run until every component touches <= 2 boundary nodes.
  auto& stack = scratch.stack;
  auto& component = scratch.component;
  auto& attachments = scratch.attachments;
  for (;;) {
    bool fixed_something = false;
    scratch.visited.assign(boundary.begin(), boundary.end());
    auto& visited = scratch.visited;
    scratch.recycle(std::move(out));
    for (std::int32_t s = 0; s < view.size() && !fixed_something; ++s) {
      if (visited[static_cast<std::size_t>(s)]) continue;
      component.clear();
      attachments.clear();
      stack.assign(1, s);
      visited[static_cast<std::size_t>(s)] = 1;
      while (!stack.empty()) {
        const std::int32_t x = stack.back();
        stack.pop_back();
        component.push_back(x);
        XT_CHECK_MSG(side[static_cast<std::size_t>(x)] ==
                         side[static_cast<std::size_t>(s)],
                     "component spans both sides of the cut");
        auto scan = [&](std::int32_t y) {
          if (y < 0) return;
          if (boundary[static_cast<std::size_t>(y)]) {
            if (std::find(attachments.begin(), attachments.end(), y) ==
                attachments.end())
              attachments.push_back(y);
          } else if (!visited[static_cast<std::size_t>(y)]) {
            visited[static_cast<std::size_t>(y)] = 1;
            stack.push_back(y);
          }
        };
        scan(view.parent(x));
        for (std::int32_t c : view.children(x)) scan(c);
      }
      XT_CHECK_MSG(!attachments.empty(), "floating component in split");
      for (std::int32_t a : attachments) {
        XT_CHECK_MSG(side[static_cast<std::size_t>(a)] ==
                         side[static_cast<std::size_t>(s)],
                     "component attached across the cut");
      }
      if (attachments.size() > 2) {
        // Paper's node-y trick (proof of Lemma 1, case 2): the Steiner
        // point of three attachment nodes lies strictly inside the
        // component; promoting it to the boundary splits the component
        // into collinear parts.
        const std::int32_t m =
            view.median(attachments[0], attachments[1], attachments[2]);
        XT_CHECK_MSG(!boundary[static_cast<std::size_t>(m)],
                     "median fix selected a boundary node");
        add_boundary(m);
        ++out.median_fixes;
        fixed_something = true;
        break;
      }
      // Component accepted: becomes a fresh piece of its side.
      Piece fresh = scratch.take_piece();
      fresh.nodes.reserve(component.size());
      for (std::int32_t x : component) fresh.nodes.push_back(view.global_of(x));
      for (std::int32_t x : component) {
        auto scan = [&](std::int32_t y) {
          if (y >= 0 && boundary[static_cast<std::size_t>(y)])
            fresh.add_designated(view.global_of(x));
        };
        scan(view.parent(x));
        for (std::int32_t c : view.children(x)) scan(c);
      }
      (side[static_cast<std::size_t>(s)] ? out.pieces_extract
                                         : out.pieces_remain)
          .push_back(std::move(fresh));
    }
    if (!fixed_something) break;
  }

  for (std::size_t i = 0; i < n; ++i)
    (side[i] ? out.extract_total : out.remain_total) += 1;
}

}  // namespace

SplitResult split_piece(const BinaryTree& tree, const Piece& piece,
                        NodeId delta, SplitQuality quality) {
  SplitScratch scratch;
  SplitResult out;
  split_piece(tree, piece, delta, quality, scratch, out);
  return out;
}

SplitResult split_piece_find2(const BinaryTree& tree, const Piece& piece,
                              NodeId delta) {
  SplitScratch scratch;
  SplitResult out;
  split_piece_find2(tree, piece, delta, scratch, out);
  return out;
}

SplitResult extract_whole_piece(const BinaryTree& tree, const Piece& piece) {
  SplitScratch scratch;
  SplitResult out;
  extract_whole_piece(tree, piece, scratch, out);
  return out;
}

void validate_split(const BinaryTree& tree, const Piece& original,
                    const SplitResult& result) {
  // Side lookup per node: 0/1 = piece of that side, 2/3 = embedded.
  std::unordered_map<NodeId, int> role;
  for (const auto& p : result.pieces_remain)
    for (NodeId v : p.nodes) XT_CHECK(role.emplace(v, 0).second);
  for (const auto& p : result.pieces_extract)
    for (NodeId v : p.nodes) XT_CHECK(role.emplace(v, 1).second);
  for (NodeId v : result.embed_remain) XT_CHECK(role.emplace(v, 2).second);
  for (NodeId v : result.embed_extract) XT_CHECK(role.emplace(v, 3).second);

  // Node conservation.
  XT_CHECK(role.size() == static_cast<std::size_t>(original.size()));
  for (NodeId v : original.nodes) XT_CHECK(role.count(v) == 1);

  // Old designated nodes are laid out (lemma condition (1)).
  for (NodeId d : original.designated) {
    if (d != kInvalidNode) XT_CHECK_MSG(role.at(d) >= 2, "designated node not laid out");
  }

  // Totals.
  NodeId extract = static_cast<NodeId>(result.embed_extract.size());
  for (const auto& p : result.pieces_extract) extract += p.size();
  NodeId remain = static_cast<NodeId>(result.embed_remain.size());
  for (const auto& p : result.pieces_remain) remain += p.size();
  XT_CHECK(extract == result.extract_total);
  XT_CHECK(remain == result.remain_total);
  XT_CHECK(extract + remain == original.size());

  // Edge discipline: cut edges embedded on both ends; pieces touch only
  // their own side's embeds, by at most two edges (conditions (3)-(6)).
  std::vector<NodeId> nbr;
  for (const auto& [v, r] : role) {
    nbr.clear();
    tree.neighbors(v, nbr);
    for (NodeId w : nbr) {
      const auto it = role.find(w);
      if (it == role.end()) continue;  // edge leaving the original piece
      const int rw = it->second;
      if (r <= 1 && rw <= 1) {
        XT_CHECK_MSG(r == rw, "piece-to-piece edge across the cut");
      } else if (r <= 1) {
        XT_CHECK_MSG(rw == r + 2, "piece touches the other side's embeds");
      }
    }
  }
  auto check_piece = [&](const Piece& p, int embed_role) {
    PieceView pv(tree, p);  // connectivity
    int edges = 0;
    std::vector<NodeId> expected;
    for (NodeId v : p.nodes) {
      nbr.clear();
      tree.neighbors(v, nbr);
      bool borders = false;
      for (NodeId w : nbr) {
        const auto it = role.find(w);
        if (it != role.end() && it->second == embed_role) {
          ++edges;
          borders = true;
        }
      }
      if (borders) expected.push_back(v);
    }
    XT_CHECK_MSG(edges <= 2, "new piece attached by " << edges << " > 2 edges");
    std::sort(expected.begin(), expected.end());
    std::array<NodeId, 2> have = p.designated;
    std::sort(have.begin(), have.end());
    std::vector<NodeId> have_list;
    for (NodeId d : have)
      if (d != kInvalidNode) have_list.push_back(d);
    XT_CHECK_MSG(have_list == expected, "new piece designated list wrong");
  };
  for (const auto& p : result.pieces_remain) check_piece(p, 2);
  for (const auto& p : result.pieces_extract) check_piece(p, 3);
}

}  // namespace xt
