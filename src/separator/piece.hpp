// Pieces: the unit of bookkeeping of algorithm X-TREE (§2).
//
// During the iterative embedding, the not-yet-laid-out part of the
// guest tree is a forest.  Each component is a *piece*: a connected
// set of guest nodes with at most two *designated* nodes (nodes
// adjacent to already-embedded guest nodes).  All embedded neighbours
// of one piece live on a single host vertex, its *characteristic
// address* (paper condition (6)); pieces with two designated nodes —
// or logical pairs of one-designated pieces sharing a characteristic
// address — are the paper's "intervals".
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "btree/binary_tree.hpp"

namespace xt {

struct Piece {
  std::vector<NodeId> nodes;  // connected in the guest tree, unembedded
  std::array<NodeId, 2> designated{kInvalidNode, kInvalidNode};

  [[nodiscard]] NodeId size() const {
    return static_cast<NodeId>(nodes.size());
  }
  [[nodiscard]] int num_designated() const {
    return (designated[0] != kInvalidNode) + (designated[1] != kInvalidNode);
  }
  void add_designated(NodeId v);
};

/// Rooted local view of one piece: local dense indices, adjacency
/// restricted to the piece, parent/depth/subtree-size arrays.  Costs
/// O(|piece|) to build; every splitter operation is linear in the
/// piece, which keeps the whole embedding near O(n log n).
///
/// A PieceView is designed for *reuse*: rebuild() re-roots the same
/// object on another piece without freeing any buffer.  The global ->
/// local locator is a dense array over the whole guest tree with an
/// epoch stamp per slot, so rebuilding costs O(|piece|), not
/// O(|tree|), and local_of is two array reads.  The embedder threads
/// one view through its entire run (via SplitScratch), turning the
/// per-split hash map + vector-of-vectors churn into zero steady-state
/// allocations.
class PieceView {
 public:
  PieceView() = default;
  PieceView(const BinaryTree& tree, const Piece& piece) {
    rebuild(tree, piece);
  }

  /// Re-roots this view on `piece`, reusing all internal buffers.  The
  /// view keeps pointers to `tree` and `piece`; both must outlive it.
  void rebuild(const BinaryTree& tree, const Piece& piece);

  [[nodiscard]] NodeId size() const {
    return static_cast<NodeId>(order_.size());
  }

  /// Local index of a global node, or -1 if not in the piece.
  [[nodiscard]] std::int32_t local_of(NodeId global) const {
    const auto g = static_cast<std::size_t>(global);
    return stamp_[g] == epoch_ ? local_[g] : -1;
  }
  [[nodiscard]] NodeId global_of(std::int32_t local) const {
    return piece_->nodes[static_cast<std::size_t>(local)];
  }

  /// Root is designated[0] if present, else the first node.
  [[nodiscard]] std::int32_t root() const { return root_; }
  [[nodiscard]] std::int32_t parent(std::int32_t local) const {
    return parent_[static_cast<std::size_t>(local)];
  }
  [[nodiscard]] std::int32_t depth(std::int32_t local) const {
    return depth_[static_cast<std::size_t>(local)];
  }
  /// Size of the subtree rooted at `local` (w.r.t. the piece root).
  [[nodiscard]] NodeId subtree_size(std::int32_t local) const {
    return subtree_size_[static_cast<std::size_t>(local)];
  }
  /// Children of `local` in the rooted piece (up to 3 at the root).
  [[nodiscard]] std::span<const std::int32_t> children(
      std::int32_t local) const {
    const auto i = static_cast<std::size_t>(local);
    return {child_list_.data() + child_begin_[i],
            static_cast<std::size_t>(child_count_[i])};
  }

  /// Locals in DFS preorder from the root.
  [[nodiscard]] const std::vector<std::int32_t>& preorder() const {
    return order_;
  }

  /// Lowest common ancestor in the rooted piece (walks parents; piece
  /// depths are modest and calls are rare).
  [[nodiscard]] std::int32_t lca(std::int32_t a, std::int32_t b) const;

  /// Median (Steiner point) of three locals: the unique node lying on
  /// all three pairwise paths.
  [[nodiscard]] std::int32_t median(std::int32_t a, std::int32_t b,
                                    std::int32_t c) const;

  [[nodiscard]] const Piece& piece() const { return *piece_; }
  [[nodiscard]] const BinaryTree& tree() const { return *tree_; }

 private:
  const BinaryTree* tree_ = nullptr;
  const Piece* piece_ = nullptr;
  std::int32_t root_ = 0;
  // Dense locator: local_[g] is valid iff stamp_[g] == epoch_.  Sized
  // to the guest tree once; rebuild() only bumps the epoch.
  std::vector<std::uint32_t> stamp_;
  std::vector<std::int32_t> local_;
  std::uint32_t epoch_ = 0;
  std::vector<std::int32_t> parent_;
  std::vector<std::int32_t> depth_;
  std::vector<NodeId> subtree_size_;
  // Children in CSR form: each node's children sit contiguously in
  // child_list_ (they are discovered together when the node is popped
  // in the build DFS).
  std::vector<std::int32_t> child_begin_;
  std::vector<std::int32_t> child_count_;
  std::vector<std::int32_t> child_list_;
  std::vector<std::int32_t> order_;  // preorder of locals
  std::vector<std::int32_t> stack_;  // DFS scratch
};

/// Computes all pieces of the currently-unembedded forest: components
/// of { v : !embedded[v] } with designated nodes = members adjacent to
/// embedded nodes.  Throws if any component has more than two
/// designated nodes (collinearity, paper condition (5)).
std::vector<Piece> collect_pieces(const BinaryTree& tree,
                                  const std::vector<char>& embedded);

/// Audit helper: checks that `piece` is connected, disjoint from
/// embedded nodes, and that its designated list is exactly the set of
/// members adjacent to embedded nodes.
void validate_piece(const BinaryTree& tree, const std::vector<char>& embedded,
                    const Piece& piece);

}  // namespace xt
