#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace xt {

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (VertexId v = 0; v < num_vertices(); ++v)
    best = std::max(best, degree(v));
  return best;
}

bool Graph::has_edge(VertexId u, VertexId v) const {
  for (VertexId w : neighbors(u))
    if (w == v) return true;
  return false;
}

std::vector<std::pair<VertexId, VertexId>> Graph::edge_list() const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(num_edges());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (VertexId v : neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

std::string Graph::to_dot(const std::string& name) const {
  std::ostringstream os;
  os << "graph " << name << " {\n";
  for (const auto& [u, v] : edge_list())
    os << "  " << u << " -- " << v << ";\n";
  os << "}\n";
  return os.str();
}

GraphBuilder::GraphBuilder(VertexId num_vertices) : n_(num_vertices) {
  XT_CHECK(num_vertices >= 0);
}

void GraphBuilder::add_edge(VertexId u, VertexId v) {
  XT_CHECK_MSG(u != v, "self-loop at vertex " << u);
  XT_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() const {
  auto edges = edges_;
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& [u, v] : edges) {
    ++g.offsets_[static_cast<std::size_t>(u) + 1];
    ++g.offsets_[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i)
    g.offsets_[i] += g.offsets_[i - 1];

  g.targets_.assign(g.offsets_.back(), kInvalidVertex);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.targets_[cursor[static_cast<std::size_t>(u)]++] = v;
    g.targets_[cursor[static_cast<std::size_t>(v)]++] = u;
  }
  return g;
}

}  // namespace xt
