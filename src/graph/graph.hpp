// Static undirected graph in compressed-sparse-row form.
//
// All host topologies (X-tree, hypercube, CCC, butterfly, grid) and the
// universal graph of Theorem 4 export this representation, and all
// generic algorithms (BFS, diameter, spanning-subgraph tests) consume
// it.  Vertices are dense 0-based ids; edges are stored once per
// direction for O(1) neighbour iteration.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace xt {

using VertexId = std::int32_t;
constexpr VertexId kInvalidVertex = -1;

/// Immutable CSR adjacency structure.  Build via GraphBuilder.
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges.
  [[nodiscard]] std::size_t num_edges() const { return targets_.size() / 2; }

  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {targets_.data() + offsets_[static_cast<std::size_t>(v)],
            targets_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
  }

  [[nodiscard]] std::size_t degree(VertexId v) const {
    return offsets_[static_cast<std::size_t>(v) + 1] -
           offsets_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] std::size_t max_degree() const;

  /// Linear scan over v's adjacency list (degrees here are small
  /// constants for every topology in this project).
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Edge list with u < v, sorted; used by spanning-subgraph checks.
  [[nodiscard]] std::vector<std::pair<VertexId, VertexId>> edge_list() const;

  /// Graphviz DOT rendering (small graphs / documentation figures).
  [[nodiscard]] std::string to_dot(const std::string& name = "G") const;

 private:
  friend class GraphBuilder;
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<VertexId> targets_;     // size 2m
};

/// Accumulates undirected edges, deduplicates, and freezes into a
/// Graph.  Self-loops are rejected; duplicate edges collapse.
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices);

  void add_edge(VertexId u, VertexId v);

  [[nodiscard]] VertexId num_vertices() const { return n_; }

  /// Freezes into CSR form.  The builder may be reused afterwards.
  [[nodiscard]] Graph build() const;

 private:
  VertexId n_ = 0;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace xt
