// Breadth-first search utilities: single-source distances, pairwise
// distance, eccentricity/diameter, connectivity, and shortest-path
// extraction (used by the congestion router in src/embedding).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace xt {

constexpr std::int32_t kUnreachable = -1;

/// Distances from `source` to every vertex (kUnreachable if not
/// connected).  O(n + m).
std::vector<std::int32_t> bfs_distances(const Graph& g, VertexId source);

/// Distance between two vertices; early-exits once `target` is popped.
std::int32_t bfs_distance(const Graph& g, VertexId source, VertexId target);

/// One shortest path from source to target, inclusive of endpoints.
/// Empty if unreachable.  Tie-breaking is by vertex id (deterministic).
std::vector<VertexId> bfs_shortest_path(const Graph& g, VertexId source,
                                        VertexId target);

/// True iff the graph is connected (vacuously true for n <= 1).
bool is_connected(const Graph& g);

/// Eccentricity of `source` = max distance to any vertex; requires a
/// connected graph.
std::int32_t eccentricity(const Graph& g, VertexId source);

/// Exact diameter via n BFS runs.  Only call on small/medium graphs.
std::int32_t diameter(const Graph& g);

/// Reusable BFS workspace: avoids reallocating the distance array when
/// many single-source queries run against one graph (the dilation
/// metric does one BFS per distinct host image vertex).
class BfsWorkspace {
 public:
  explicit BfsWorkspace(const Graph& g);

  /// Runs BFS from `source`; the returned span is valid until the next
  /// run() call.
  const std::vector<std::int32_t>& run(VertexId source);

 private:
  const Graph* g_;
  std::vector<std::int32_t> dist_;
  std::vector<VertexId> queue_;
};

}  // namespace xt
