#include "graph/bfs.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xt {

std::vector<std::int32_t> bfs_distances(const Graph& g, VertexId source) {
  XT_CHECK(source >= 0 && source < g.num_vertices());
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_vertices()),
                                 kUnreachable);
  std::vector<VertexId> queue;
  queue.reserve(static_cast<std::size_t>(g.num_vertices()));
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    const std::int32_t du = dist[static_cast<std::size_t>(u)];
    for (VertexId v : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(v)] == kUnreachable) {
        dist[static_cast<std::size_t>(v)] = du + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

std::int32_t bfs_distance(const Graph& g, VertexId source, VertexId target) {
  XT_CHECK(source >= 0 && source < g.num_vertices());
  XT_CHECK(target >= 0 && target < g.num_vertices());
  if (source == target) return 0;
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_vertices()),
                                 kUnreachable);
  std::vector<VertexId> queue;
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    if (u == target) return dist[static_cast<std::size_t>(u)];
    const std::int32_t du = dist[static_cast<std::size_t>(u)];
    for (VertexId v : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(v)] == kUnreachable) {
        dist[static_cast<std::size_t>(v)] = du + 1;
        queue.push_back(v);
      }
    }
  }
  return dist[static_cast<std::size_t>(target)];
}

std::vector<VertexId> bfs_shortest_path(const Graph& g, VertexId source,
                                        VertexId target) {
  XT_CHECK(source >= 0 && source < g.num_vertices());
  XT_CHECK(target >= 0 && target < g.num_vertices());
  std::vector<VertexId> parent(static_cast<std::size_t>(g.num_vertices()),
                               kInvalidVertex);
  std::vector<char> seen(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<VertexId> queue;
  seen[static_cast<std::size_t>(source)] = 1;
  queue.push_back(source);
  bool found = source == target;
  for (std::size_t head = 0; head < queue.size() && !found; ++head) {
    const VertexId u = queue[head];
    // Deterministic tie-break: neighbours are CSR-sorted ascending.
    for (VertexId v : g.neighbors(u)) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        parent[static_cast<std::size_t>(v)] = u;
        if (v == target) {
          found = true;
          break;
        }
        queue.push_back(v);
      }
    }
  }
  if (!found) return {};
  std::vector<VertexId> path;
  for (VertexId v = target; v != kInvalidVertex;
       v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
    if (v == source) break;
  }
  std::reverse(path.begin(), path.end());
  XT_CHECK(path.front() == source && path.back() == target);
  return path;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() <= 1) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::int32_t d) { return d == kUnreachable; });
}

std::int32_t eccentricity(const Graph& g, VertexId source) {
  const auto dist = bfs_distances(g, source);
  std::int32_t ecc = 0;
  for (std::int32_t d : dist) {
    XT_CHECK_MSG(d != kUnreachable, "eccentricity on disconnected graph");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::int32_t diameter(const Graph& g) {
  std::int32_t best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    best = std::max(best, eccentricity(g, v));
  return best;
}

BfsWorkspace::BfsWorkspace(const Graph& g)
    : g_(&g),
      dist_(static_cast<std::size_t>(g.num_vertices()), kUnreachable) {
  queue_.reserve(dist_.size());
}

const std::vector<std::int32_t>& BfsWorkspace::run(VertexId source) {
  std::fill(dist_.begin(), dist_.end(), kUnreachable);
  queue_.clear();
  dist_[static_cast<std::size_t>(source)] = 0;
  queue_.push_back(source);
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const VertexId u = queue_[head];
    const std::int32_t du = dist_[static_cast<std::size_t>(u)];
    for (VertexId v : g_->neighbors(u)) {
      if (dist_[static_cast<std::size_t>(v)] == kUnreachable) {
        dist_[static_cast<std::size_t>(v)] = du + 1;
        queue_.push_back(v);
      }
    }
  }
  return dist_;
}

}  // namespace xt
