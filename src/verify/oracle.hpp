// Differential measurement oracle: re-measures embedding quality via
// code paths independent of the production kernels, so a fuzzer or a
// certificate verifier never trusts the machinery it is judging.
//
//   * X-tree distances go through XTree::distance_oracle (the
//     corridor-restricted Dijkstra this repository originally shipped),
//     never the O(height) closed-form kernel.
//   * Hypercube distances are recounted with a Kernighan bit-clear
//     loop, not Hypercube::distance's popcount.
//   * Arbitrary-graph distances come from plain BFS.
//   * Loads / injectivity / completeness are recounted from the raw
//     placement map rather than read off Embedding's own accessors.
//
// Everything here is serial and allocation-heavy by design — this is
// the slow, boring, obviously-correct path the fast paths are diffed
// against on every randomized input.
#pragma once

#include <cstdint>

#include "btree/binary_tree.hpp"
#include "embedding/embedding.hpp"
#include "embedding/metrics.hpp"
#include "graph/graph.hpp"
#include "topology/hypercube.hpp"
#include "topology/xtree.hpp"

namespace xt {

/// Max host distance over guest edges, via the corridor Dijkstra.
DilationReport oracle_dilation_xtree(const BinaryTree& guest,
                                     const Embedding& emb, const XTree& host);

/// Max Hamming distance over guest edges, recounted bit by bit.
DilationReport oracle_dilation_hypercube(const BinaryTree& guest,
                                         const Embedding& emb,
                                         const Hypercube& host);

/// Max BFS distance over guest edges in an arbitrary host graph.
DilationReport oracle_dilation_graph(const BinaryTree& guest,
                                     const Embedding& emb, const Graph& host);

/// Recounts guests per host vertex from the raw placement map and
/// returns the maximum.  Requires a complete embedding.
NodeId oracle_load_factor(const Embedding& emb);

/// Structural re-check: every guest node placed exactly once onto an
/// in-range host vertex.  Returns "" when sound, else a description of
/// the first violation.
std::string oracle_check_placement(const BinaryTree& guest,
                                   const Embedding& emb);

}  // namespace xt
