#include "verify/certificate_chain.hpp"

#include <sstream>
#include <utility>

#include "core/hypercube_embedding.hpp"
#include "core/injective_lift.hpp"
#include "core/xtree_embedder.hpp"
#include "embedding/metrics.hpp"
#include "io/certificate.hpp"
#include "topology/hypercube.hpp"
#include "topology/xtree.hpp"
#include "util/check.hpp"
#include "verify/oracle.hpp"

namespace xt {
namespace {

TheoremCertificate base_cert(ChainLink link, const BinaryTree& guest,
                             const Embedding& emb) {
  TheoremCertificate cert;
  cert.link = link;
  cert.guest_fingerprint = guest_fingerprint(guest);
  cert.assignment_fingerprint = assignment_fingerprint(emb);
  cert.guest_nodes = guest.num_nodes();
  return cert;
}

/// Shared preamble of every link verification: identity, placement
/// soundness, recounted load.  Returns "" or the first violation.
std::string verify_common(const TheoremCertificate& cert,
                          const BinaryTree& guest, const Embedding& emb) {
  std::ostringstream os;
  if (cert.guest_nodes != guest.num_nodes()) {
    os << "certificate covers " << cert.guest_nodes << " nodes, tree has "
       << guest.num_nodes();
    return os.str();
  }
  if (cert.guest_fingerprint != guest_fingerprint(guest))
    return "guest fingerprint mismatch";
  if (std::string bad = oracle_check_placement(guest, emb); !bad.empty())
    return bad;
  if (cert.assignment_fingerprint != assignment_fingerprint(emb))
    return "assignment fingerprint mismatch";
  const NodeId load = oracle_load_factor(emb);
  if (load != cert.load_factor) {
    os << "recounted load factor " << load << " != claimed "
       << cert.load_factor;
    return os.str();
  }
  if (cert.load_factor > cert.load_bound) {
    os << "claimed load factor " << cert.load_factor << " exceeds bound "
       << cert.load_bound;
    return os.str();
  }
  return "";
}

std::string check_dilation(std::int32_t measured,
                           const TheoremCertificate& cert) {
  std::ostringstream os;
  if (measured != cert.dilation) {
    os << "oracle dilation " << measured << " != claimed " << cert.dilation;
    return os.str();
  }
  if (cert.dilation > cert.dilation_bound) {
    os << "claimed dilation " << cert.dilation << " exceeds bound "
       << cert.dilation_bound;
    return os.str();
  }
  return "";
}

std::string verify_xtree_link(const TheoremCertificate& cert,
                              const BinaryTree& guest, const Embedding& emb) {
  const XTree host(cert.host_param);
  if (emb.num_host_vertices() != host.num_vertices()) {
    std::ostringstream os;
    os << "embedding targets " << emb.num_host_vertices()
       << " host vertices, X(" << cert.host_param << ") has "
       << host.num_vertices();
    return os.str();
  }
  return check_dilation(oracle_dilation_xtree(guest, emb, host).max, cert);
}

std::string verify_hypercube_link(const TheoremCertificate& cert,
                                  const BinaryTree& guest,
                                  const Embedding& emb) {
  const Hypercube host(cert.host_param);
  if (emb.num_host_vertices() != host.num_vertices()) {
    std::ostringstream os;
    os << "embedding targets " << emb.num_host_vertices()
       << " host vertices, Q_" << cert.host_param << " has "
       << host.num_vertices();
    return os.str();
  }
  return check_dilation(oracle_dilation_hypercube(guest, emb, host).max,
                        cert);
}

std::string verify_universal_link(const TheoremCertificate& cert,
                                  const BinaryTree& guest,
                                  const Embedding& emb) {
  std::ostringstream os;
  const UniversalGraph universal = build_universal_graph(cert.host_param);
  if (emb.num_host_vertices() != universal.num_nodes) {
    os << "embedding targets " << emb.num_host_vertices()
       << " host vertices, G_n has " << universal.num_nodes;
    return os.str();
  }
  // Degree bound, recounted vertex by vertex from the CSR adjacency.
  std::int32_t degree = 0;
  for (VertexId v = 0; v < universal.graph.num_vertices(); ++v)
    degree = std::max(degree,
                      static_cast<std::int32_t>(universal.graph.degree(v)));
  if (degree != cert.host_degree) {
    os << "recounted G_n max degree " << degree << " != claimed "
       << cert.host_degree;
    return os.str();
  }
  if (degree > 415) {
    os << "G_n max degree " << degree << " exceeds the Theorem 4 bound 415";
    return os.str();
  }
  // Spanning-subtree membership: injective placement (load bound 1 was
  // already recounted by verify_common) with every guest edge realised
  // by a G_n edge.
  std::int64_t outside = 0;
  for (NodeId v = 1; v < guest.num_nodes(); ++v) {
    if (!universal.graph.has_edge(emb.host_of(guest.parent(v)),
                                  emb.host_of(v)))
      ++outside;
  }
  if (outside != cert.edges_outside) {
    os << "recounted " << outside << " guest edges outside G_n, claimed "
       << cert.edges_outside;
    return os.str();
  }
  if (outside != 0) {
    os << outside << " guest edges are not realised by G_n edges";
    return os.str();
  }
  return "";
}

}  // namespace

const char* chain_link_name(ChainLink link) {
  switch (link) {
    case ChainLink::kXTree: return "T1-xtree";
    case ChainLink::kInjectiveXTree: return "T2-injective-xtree";
    case ChainLink::kHypercubeLoad16: return "T3-hypercube-load16";
    case ChainLink::kHypercubeInjective: return "T3-hypercube-injective";
    case ChainLink::kUniversal: return "T4-universal";
  }
  return "unknown";
}

const CertifiedEmbedding* CertifiedPipeline::find(ChainLink link) const {
  for (const CertifiedEmbedding& l : links) {
    if (l.cert.link == link) return &l;
  }
  return nullptr;
}

bool is_exact_form(NodeId n, NodeId load) {
  if (load < 1 || n < load || n % load != 0) return false;
  const NodeId q = n / load + 1;  // 2^k for exact forms
  return (q & (q - 1)) == 0;
}

CertifiedPipeline run_certified_pipeline(const BinaryTree& guest,
                                         const ChainOptions& options) {
  XT_CHECK_MSG(!guest.empty(), "cannot certify an empty guest");
  const bool exact = is_exact_form(guest.num_nodes(), 16);
  CertifiedPipeline out;

  // Theorem 1 — the production path the oracle will be diffed against.
  XTreeEmbedder::Options t1_opt;
  t1_opt.load = options.load;
  auto t1 = XTreeEmbedder::embed(guest, t1_opt);
  const XTree xtree(t1.stats.height);
  {
    CertifiedEmbedding link;
    link.cert = base_cert(ChainLink::kXTree, guest, t1.embedding);
    link.cert.host_param = t1.stats.height;
    link.cert.dilation = dilation_profile_xtree(guest, t1.embedding, xtree)
                             .report.max;
    link.cert.load_factor = t1.embedding.load_factor();
    link.cert.dilation_bound =
        is_exact_form(guest.num_nodes(), options.load) ? 3 : 6;
    link.cert.load_bound = options.load;
    link.embedding = t1.embedding;  // copy: the lift below reads it too
    out.links.push_back(std::move(link));
  }

  if (options.include_t2 && options.load == 16) {
    auto lift = lift_injective(guest, t1.embedding, xtree);
    const XTree lifted(lift.host_height);
    CertifiedEmbedding link;
    link.cert = base_cert(ChainLink::kInjectiveXTree, guest, lift.embedding);
    link.cert.host_param = lift.host_height;
    link.cert.dilation =
        dilation_profile_xtree(guest, lift.embedding, lifted).report.max;
    link.cert.load_factor = lift.embedding.load_factor();
    link.cert.dilation_bound = exact ? 11 : 14;
    link.cert.load_bound = 1;
    link.embedding = std::move(lift.embedding);
    out.links.push_back(std::move(link));
  }

  if (options.include_t3 && options.load == 16) {
    {
      auto cube = embed_hypercube_load16(guest);
      const Hypercube host(cube.dimension);
      CertifiedEmbedding link;
      link.cert =
          base_cert(ChainLink::kHypercubeLoad16, guest, cube.embedding);
      link.cert.host_param = cube.dimension;
      link.cert.dilation =
          dilation_hypercube(guest, cube.embedding, host).max;
      link.cert.load_factor = cube.embedding.load_factor();
      link.cert.dilation_bound = exact ? 4 : 7;
      link.cert.load_bound = 16;
      link.embedding = std::move(cube.embedding);
      out.links.push_back(std::move(link));
    }
    {
      auto cube = embed_hypercube_injective(guest);
      const Hypercube host(cube.dimension);
      CertifiedEmbedding link;
      link.cert =
          base_cert(ChainLink::kHypercubeInjective, guest, cube.embedding);
      link.cert.host_param = cube.dimension;
      link.cert.dilation =
          dilation_hypercube(guest, cube.embedding, host).max;
      link.cert.load_factor = cube.embedding.load_factor();
      link.cert.dilation_bound = exact ? 8 : 11;
      link.cert.load_bound = 1;
      link.embedding = std::move(cube.embedding);
      out.links.push_back(std::move(link));
    }
  }

  if (options.include_t4 && options.load == 16) {
    const std::int32_t r = universal_height_for(guest.num_nodes());
    const UniversalGraph universal = build_universal_graph(r);
    std::int64_t outside = 0;
    Embedding emb =
        guest.num_nodes() == universal.num_nodes
            ? universal_spanning_embedding(guest, universal, &outside)
            : universal_subgraph_embedding(guest, universal, &outside);
    CertifiedEmbedding link;
    link.cert = base_cert(ChainLink::kUniversal, guest, emb);
    link.cert.host_param = r;
    link.cert.dilation = outside == 0 ? (guest.num_nodes() > 1 ? 1 : 0) : -1;
    link.cert.load_factor = emb.load_factor();
    link.cert.dilation_bound = 1;
    link.cert.load_bound = 1;
    link.cert.edges_outside = outside;
    link.cert.host_degree =
        static_cast<std::int32_t>(universal.graph.max_degree());
    link.embedding = std::move(emb);
    out.links.push_back(std::move(link));
  }
  return out;
}

std::string verify_theorem_certificate(const TheoremCertificate& cert,
                                       const BinaryTree& guest,
                                       const Embedding& emb) {
  if (std::string bad = verify_common(cert, guest, emb); !bad.empty())
    return std::string(chain_link_name(cert.link)) + ": " + bad;
  std::string bad;
  switch (cert.link) {
    case ChainLink::kXTree:
    case ChainLink::kInjectiveXTree:
      bad = verify_xtree_link(cert, guest, emb);
      break;
    case ChainLink::kHypercubeLoad16:
    case ChainLink::kHypercubeInjective:
      bad = verify_hypercube_link(cert, guest, emb);
      break;
    case ChainLink::kUniversal:
      bad = verify_universal_link(cert, guest, emb);
      break;
  }
  if (!bad.empty())
    return std::string(chain_link_name(cert.link)) + ": " + bad;
  return "";
}

std::string verify_pipeline(const BinaryTree& guest,
                            const CertifiedPipeline& pipeline) {
  if (pipeline.links.empty()) return "empty certificate chain";
  for (const CertifiedEmbedding& link : pipeline.links) {
    if (std::string bad =
            verify_theorem_certificate(link.cert, guest, link.embedding);
        !bad.empty())
      return bad;
  }
  // Cross-link consistency: the chain certifies ONE pipeline run.
  const std::uint64_t fp = pipeline.links.front().cert.guest_fingerprint;
  for (const CertifiedEmbedding& link : pipeline.links) {
    if (link.cert.guest_fingerprint != fp)
      return "chain links bind different guest fingerprints";
  }
  const CertifiedEmbedding* t1 = pipeline.find(ChainLink::kXTree);
  const CertifiedEmbedding* t2 = pipeline.find(ChainLink::kInjectiveXTree);
  if (t1 != nullptr && t2 != nullptr &&
      t2->cert.host_param != t1->cert.host_param + 4)
    return "T2 host height is not the T1 height + 4";
  const CertifiedEmbedding* c16 = pipeline.find(ChainLink::kHypercubeLoad16);
  const CertifiedEmbedding* cin =
      pipeline.find(ChainLink::kHypercubeInjective);
  if (c16 != nullptr && cin != nullptr &&
      cin->cert.host_param != c16->cert.host_param + 4)
    return "injective cube dimension is not the load-16 dimension + 4";
  return "";
}

std::string theorem_certificate_to_string(const TheoremCertificate& cert) {
  std::ostringstream os;
  os << "xtreesim-tcert v1 " << static_cast<std::int32_t>(cert.link) << ' '
     << cert.guest_fingerprint << ' ' << cert.assignment_fingerprint << ' '
     << cert.guest_nodes << ' ' << cert.host_param << ' ' << cert.dilation
     << ' ' << cert.load_factor << ' ' << cert.dilation_bound << ' '
     << cert.load_bound << ' ' << cert.edges_outside << ' '
     << cert.host_degree;
  return os.str();
}

TheoremCertificate theorem_certificate_from_string(const std::string& text) {
  std::istringstream is(text);
  std::string magic;
  std::string version;
  std::int32_t link = 0;
  TheoremCertificate cert;
  is >> magic >> version >> link >> cert.guest_fingerprint >>
      cert.assignment_fingerprint >> cert.guest_nodes >> cert.host_param >>
      cert.dilation >> cert.load_factor >> cert.dilation_bound >>
      cert.load_bound >> cert.edges_outside >> cert.host_degree;
  XT_CHECK_MSG(static_cast<bool>(is) && magic == "xtreesim-tcert" &&
                   version == "v1" && link >= 1 && link <= 5,
               "bad theorem certificate text");
  cert.link = static_cast<ChainLink>(link);
  return cert;
}

}  // namespace xt
