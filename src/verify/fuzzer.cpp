#include "verify/fuzzer.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "btree/generators.hpp"
#include "io/certificate.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace xt {
namespace {

/// Paren emission of `t` with two kinds of surgery: a child equal to
/// `skip` is emitted as absent, and a visited node equal to `sub_from`
/// is replaced by the subtree rooted at `sub_to`.  Rebuilding through
/// the paren form keeps every surviving node's child *slot* (left vs
/// right) exactly as in the original tree.
std::string paren_with(const BinaryTree& t, NodeId skip, NodeId sub_from,
                       NodeId sub_to) {
  auto substitute = [&](NodeId v) { return v == sub_from ? sub_to : v; };
  std::string out;
  struct Frame {
    NodeId node;
    int phase;  // 0: open, 1: left done, 2: right done
  };
  std::vector<Frame> stack{{substitute(t.root()), 0}};
  while (!stack.empty()) {
    auto& [v, phase] = stack.back();
    if (phase == 0) {
      out += '(';
      phase = 1;
      const NodeId c = t.left(v);
      if (c != kInvalidNode && c != skip) {
        stack.push_back({substitute(c), 0});
        continue;
      }
      out += '.';
    }
    if (phase == 1) {
      phase = 2;
      const NodeId c = t.right(v);
      if (c != kInvalidNode && c != skip) {
        stack.push_back({substitute(c), 0});
        continue;
      }
      out += '.';
    }
    out += ')';
    stack.pop_back();
  }
  return out;
}

/// The tree with leaf `v` pruned.
BinaryTree without_leaf(const BinaryTree& t, NodeId v) {
  return BinaryTree::from_paren(paren_with(t, v, kInvalidNode, kInvalidNode));
}

/// The tree where the subtree at parent(v) is replaced by the subtree
/// at v (hoisting: drops the parent and v's sibling subtree).
BinaryTree hoisted(const BinaryTree& t, NodeId v) {
  return BinaryTree::from_paren(
      paren_with(t, kInvalidNode, t.parent(v), v));
}

/// Models a buggy embedder honestly certifying a catastrophically
/// wrong Theorem 1 result: every guest node lands on host vertex 0 and
/// the certificate reports the (bad) measured numbers.  The recounted
/// load then exceeds the bound exactly when the guest has more than
/// `load_bound` nodes.
void apply_overload_fault(CertifiedEmbedding& link) {
  Embedding bad(link.embedding.num_guest_nodes(),
                link.embedding.num_host_vertices());
  for (NodeId v = 0; v < bad.num_guest_nodes(); ++v) bad.place(v, 0);
  link.cert.assignment_fingerprint = assignment_fingerprint(bad);
  link.cert.dilation = 0;  // all images coincide
  link.cert.load_factor = bad.num_guest_nodes();
  link.embedding = std::move(bad);
}

void apply_fault(CertifiedPipeline& pipeline, FuzzFault fault) {
  if (fault == FuzzFault::kNone || pipeline.links.empty()) return;
  CertifiedEmbedding& t1 = pipeline.links.front();
  switch (fault) {
    case FuzzFault::kTamperDilationClaim:
      t1.cert.dilation -= 1;
      break;
    case FuzzFault::kOverloadRoot:
      apply_overload_fault(t1);
      break;
    case FuzzFault::kNone:
      break;
  }
}

std::string hex_seed(std::uint64_t seed) {
  std::ostringstream os;
  os << std::hex << seed;
  return os.str();
}

}  // namespace

const char* fuzz_fault_name(FuzzFault fault) {
  switch (fault) {
    case FuzzFault::kNone: return "none";
    case FuzzFault::kTamperDilationClaim: return "tamper-claim";
    case FuzzFault::kOverloadRoot: return "overload-root";
  }
  return "none";
}

FuzzFault parse_fuzz_fault(const std::string& name) {
  if (name == "tamper-claim") return FuzzFault::kTamperDilationClaim;
  if (name == "overload-root") return FuzzFault::kOverloadRoot;
  XT_CHECK_MSG(name.empty() || name == "none",
               "unknown fault '" << name
                                 << "' (try tamper-claim, overload-root)");
  return FuzzFault::kNone;
}

std::string chain_property(const BinaryTree& tree,
                           const FuzzOptions& options) {
  CertifiedPipeline pipeline;
  try {
    pipeline = run_certified_pipeline(tree, options.chain);
  } catch (const std::exception& e) {
    return std::string("pipeline threw: ") + e.what();
  }
  apply_fault(pipeline, options.fault);
  try {
    return verify_pipeline(tree, pipeline);
  } catch (const std::exception& e) {
    return std::string("verification threw: ") + e.what();
  }
}

BinaryTree shrink_tree(
    BinaryTree failing,
    const std::function<std::string(const BinaryTree&)>& fails,
    int max_evals, int* steps_out, int* evals_out) {
  int steps = 0;
  int evals = 0;
  auto still_fails = [&](const BinaryTree& t) {
    ++evals;
    return !fails(t).empty();
  };
  bool progress = true;
  while (progress && evals < max_evals) {
    progress = false;
    // Subtree hoisting first: each accepted hoist drops the sibling
    // subtree and the parent in one cut, so sizes fall geometrically
    // on bushy trees.  Restart after a success — ids changed.
    for (NodeId v = 1; v < failing.num_nodes() && evals < max_evals; ++v) {
      BinaryTree candidate = hoisted(failing, v);
      if (still_fails(candidate)) {
        failing = std::move(candidate);
        ++steps;
        progress = true;
        v = 0;  // restart scan on the reduced tree
      }
    }
    // Leaf pruning: high ids first (deep leaves), rescanning after
    // every accepted removal.
    bool pruned = true;
    while (pruned && evals < max_evals && failing.num_nodes() > 1) {
      pruned = false;
      for (NodeId v = failing.num_nodes() - 1; v >= 1 && evals < max_evals;
           --v) {
        if (!failing.is_leaf(v)) continue;
        BinaryTree candidate = without_leaf(failing, v);
        if (still_fails(candidate)) {
          failing = std::move(candidate);
          ++steps;
          progress = true;
          pruned = true;
          break;
        }
      }
    }
  }
  if (steps_out != nullptr) *steps_out = steps;
  if (evals_out != nullptr) *evals_out = evals;
  return failing;
}

std::string replay_command(const BinaryTree& tree,
                           const FuzzOptions& options) {
  std::ostringstream os;
  os << "xt_fuzz --replay '" << tree.to_paren() << "'";
  if (options.fault != FuzzFault::kNone)
    os << " --inject=" << fuzz_fault_name(options.fault);
  if (options.chain.load != 16) os << " --load=" << options.chain.load;
  if (!options.chain.include_t2) os << " --no-t2";
  if (!options.chain.include_t3) os << " --no-t3";
  if (options.chain.include_t4) os << " --t4";
  return os.str();
}

std::string replay_tree(const BinaryTree& tree, const FuzzOptions& options) {
  return chain_property(tree, options);
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  XT_CHECK(options.min_nodes >= 1 && options.max_nodes >= options.min_nodes);
  FuzzReport report;
  report.trials = options.trials;
  const auto& families = tree_family_names();
  auto log = [&](const std::string& line) {
    if (options.log) options.log(line);
  };
  for (int trial = 0; trial < options.trials; ++trial) {
    // Decorrelate consecutive trial seeds through splitmix64.
    std::uint64_t mix = options.seed + static_cast<std::uint64_t>(trial);
    Rng rng(splitmix64(mix));
    const auto n = static_cast<NodeId>(
        options.min_nodes +
        static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(
            options.max_nodes - options.min_nodes + 1))));
    const std::string family =
        families[static_cast<std::size_t>(rng.below(families.size()))];
    const BinaryTree tree = make_family_tree(family, n, rng);

    const std::string failure = chain_property(tree, options);
    if (failure.empty()) continue;

    FuzzViolation v;
    v.seed = options.seed;
    v.trial = trial;
    v.family = family;
    v.failure = failure;
    v.paren = tree.to_paren();
    log("[xt_fuzz] VIOLATION trial " + std::to_string(trial) + " family " +
        family + " n=" + std::to_string(n) + ": " + failure);

    int evals = 0;
    const BinaryTree shrunk = shrink_tree(
        tree,
        [&](const BinaryTree& t) { return chain_property(t, options); },
        options.max_shrink_evals, &v.shrink_steps, &evals);
    v.shrunk_paren = shrunk.to_paren();
    v.shrunk_nodes = shrunk.num_nodes();
    v.replay = replay_command(shrunk, options);
    log("[xt_fuzz] shrunk " + std::to_string(tree.num_nodes()) + " -> " +
        std::to_string(shrunk.num_nodes()) + " nodes in " +
        std::to_string(v.shrink_steps) + " steps (" + std::to_string(evals) +
        " evals)");
    log("[xt_fuzz] replay: " + v.replay);

    if (!options.corpus_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(options.corpus_dir, ec);
      const std::string path = options.corpus_dir + "/min-" +
                               hex_seed(options.seed) + "-t" +
                               std::to_string(trial) + ".tree";
      std::ofstream out(path);
      if (out) {
        out << "# xt_fuzz minimized reproducer (seed 0x"
            << hex_seed(options.seed) << ", trial " << trial << ", family "
            << family << ")\n"
            << "# failure: " << v.failure << "\n"
            << "# replay: " << v.replay << "\n"
            << v.shrunk_paren << "\n";
        v.corpus_file = path;
        log("[xt_fuzz] persisted " + path);
      } else {
        log("[xt_fuzz] could not persist reproducer to " + path);
      }
    }
    report.violations.push_back(std::move(v));
  }
  return report;
}

}  // namespace xt
