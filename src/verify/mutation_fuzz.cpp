#include "verify/mutation_fuzz.hpp"

#include <exception>
#include <fstream>
#include <random>
#include <sstream>
#include <utility>

#include "core/xtree_embedder.hpp"
#include "embedding/metrics.hpp"
#include "topology/xtree.hpp"

namespace xt {
namespace {

// Fallback machine when a script carries no host/policy directives;
// mirrors MutationFuzzOptions' defaults so bare op lists replay on
// the machine the generator meant.
constexpr std::int32_t kDefaultHeight = 5;
constexpr NodeId kDefaultLoad = 4;
constexpr MutationPolicy kDefaultPolicy{/*max_repair_nodes=*/16,
                                        /*max_dilation=*/3};

struct AppliedOp {
  bool ok = false;
  bool escalated = false;
  NodeId leaf = kInvalidNode;
};

AppliedOp apply_op(DynamicEmbedder& dyn, const MutationOp& op) {
  const auto before = dyn.mutation_stats();
  AppliedOp applied;
  switch (op.kind) {
    case MutationOpKind::kAddLeaf: {
      const auto res = dyn.try_add_leaf(op.a);
      applied.ok = res.ok();
      applied.leaf = res.leaf;
      break;
    }
    case MutationOpKind::kRemoveLeaf:
      applied.ok = dyn.try_remove_leaf(op.a).ok();
      break;
    case MutationOpKind::kRemoveSubtree:
      applied.ok = dyn.try_remove_subtree(op.a).ok();
      break;
    case MutationOpKind::kMoveSubtree:
      applied.ok = dyn.try_move_subtree(op.a, op.b).ok();
      break;
  }
  applied.escalated = dyn.mutation_stats().escalated > before.escalated;
  return applied;
}

DynamicEmbedder make_embedder(const MutationScript& script) {
  const std::int32_t height =
      script.height >= 0 ? script.height : kDefaultHeight;
  const NodeId load = script.load >= 1 ? script.load : kDefaultLoad;
  MutationPolicy policy = kDefaultPolicy;
  if (script.max_repair_nodes >= 0) policy.max_repair_nodes = script.max_repair_nodes;
  if (script.max_dilation >= 0) policy.max_dilation = script.max_dilation;
  return DynamicEmbedder(height, load, policy);
}

std::vector<NodeId> live_nodes(const DynamicEmbedder& dyn) {
  std::vector<NodeId> live;
  live.reserve(static_cast<std::size_t>(dyn.num_live()));
  for (NodeId v = 0; v < dyn.num_ids(); ++v)
    if (dyn.is_live(v)) live.push_back(v);
  return live;
}

}  // namespace

std::string mutation_property(const MutationScript& script) {
  try {
    DynamicEmbedder dyn = make_embedder(script);
    const NodeId load = dyn.load_cap();
    const XTree& host = dyn.host();
    for (std::size_t k = 0; k < script.ops.size(); ++k) {
      const MutationOp& op = script.ops[k];
      const auto fail = [&](const std::string& why) {
        return "op " + std::to_string(k) + " (" + format_mutation_op(op) +
               "): " + why;
      };
      const AppliedOp applied = apply_op(dyn, op);

      // 1. The live embedding is certificate-valid after every op.
      const DynamicEmbedder::DynamicSnapshot snap = dyn.snapshot();
      try {
        validate_embedding(snap.tree, snap.embedding, load);
      } catch (const std::exception& e) {
        return fail(std::string("invalid embedding: ") + e.what());
      }

      // 2. O(1) maintained metrics equal a full recount.
      const std::int32_t true_dilation =
          dilation_xtree(snap.tree, snap.embedding, host).max;
      if (dyn.current_dilation() != true_dilation)
        return fail("maintained dilation " +
                    std::to_string(dyn.current_dilation()) + " != recount " +
                    std::to_string(true_dilation));
      const NodeId true_load = snap.embedding.load_factor();
      if (dyn.current_max_load() != true_load)
        return fail("maintained max load " +
                    std::to_string(dyn.current_max_load()) + " != recount " +
                    std::to_string(true_load));

      // 3. The accounting identity (mutation_stats() re-asserts it;
      // a broken identity surfaces as check_error caught below).
      const auto stats = dyn.mutation_stats();
      if (stats.applied != static_cast<std::int64_t>(k) + 1)
        return fail("applied count " + std::to_string(stats.applied) +
                    " != ops seen " + std::to_string(k + 1));

      // 4. Escalations are bit-identical to the offline oracle: a
      // fresh Theorem 1 run on the same compact tree and machine.
      if (applied.escalated) {
        const auto offline = XTreeEmbedder::embed(
            snap.tree,
            DynamicEmbedder::escalation_options(load, host.height()));
        for (NodeId c = 0; c < snap.tree.num_nodes(); ++c) {
          if (snap.embedding.host_of(c) != offline.embedding.host_of(c))
            return fail(
                "escalation drift at compact node " + std::to_string(c) +
                " (stable " +
                std::to_string(snap.stable_of[static_cast<std::size_t>(c)]) +
                "): online " + std::to_string(snap.embedding.host_of(c)) +
                " vs offline " +
                std::to_string(offline.embedding.host_of(c)));
        }
      }
    }
  } catch (const std::exception& e) {
    return std::string("exception: ") + e.what();
  }
  return "";
}

MutationScript generate_mutation_script(const MutationFuzzOptions& options,
                                        int trial) {
  std::mt19937_64 rng(options.seed * 0x9E3779B97F4A7C15ULL +
                      static_cast<std::uint64_t>(trial) * 0xBF58476D1CE4E5B9ULL +
                      1);
  MutationScript script;
  script.height = options.height;
  script.load = options.load;
  script.max_repair_nodes = options.policy.max_repair_nodes;
  script.max_dilation = options.policy.max_dilation;

  // Generation runs against a shadow embedder so ops mostly target
  // nodes that exist at that point of the replay; a small share is
  // deliberately invalid to keep the rejection paths under test.
  DynamicEmbedder shadow(options.height, options.load, options.policy);
  std::uniform_int_distribution<int> pct(0, 99);
  for (int i = 0; i < options.steps; ++i) {
    const std::vector<NodeId> live = live_nodes(shadow);
    const auto pick_live = [&]() -> NodeId {
      return live[std::uniform_int_distribution<std::size_t>(
          0, live.size() - 1)(rng)];
    };
    MutationOp op;
    const int roll = pct(rng);
    if (roll < 50 || live.size() <= 1) {
      op = {MutationOpKind::kAddLeaf, pick_live(), kInvalidNode};
    } else if (roll < 65) {
      op = {MutationOpKind::kRemoveLeaf, pick_live(), kInvalidNode};
    } else if (roll < 75) {
      op = {MutationOpKind::kRemoveSubtree, pick_live(), kInvalidNode};
    } else if (roll < 93) {
      op = {MutationOpKind::kMoveSubtree, pick_live(), pick_live()};
    } else {
      // Invalid on purpose: dead / out-of-range ids, root removal.
      const NodeId bogus = static_cast<NodeId>(
          shadow.num_ids() + std::uniform_int_distribution<int>(0, 5)(rng));
      switch (std::uniform_int_distribution<int>(0, 2)(rng)) {
        case 0: op = {MutationOpKind::kAddLeaf, bogus, kInvalidNode}; break;
        case 1: op = {MutationOpKind::kRemoveSubtree, shadow.root(),
                      kInvalidNode}; break;
        default: op = {MutationOpKind::kMoveSubtree, pick_live(), bogus};
      }
    }
    (void)apply_op(shadow, op);
    script.ops.push_back(op);
  }
  return script;
}

MutationScript shrink_mutation_script(
    MutationScript failing,
    const std::function<std::string(const MutationScript&)>& fails,
    int max_evals, int* steps_out, int* evals_out) {
  int steps = 0;
  int evals = 0;
  const auto still_fails = [&](const MutationScript& candidate) {
    ++evals;
    return !fails(candidate).empty();
  };
  // Chunked removal, halving the chunk until single ops.
  std::size_t chunk = failing.ops.size() / 2;
  if (chunk == 0) chunk = 1;
  while (chunk >= 1 && evals < max_evals) {
    bool reduced = false;
    for (std::size_t start = 0;
         start + 1 <= failing.ops.size() && evals < max_evals;) {
      MutationScript candidate = failing;
      const std::size_t end =
          std::min(start + chunk, candidate.ops.size());
      candidate.ops.erase(
          candidate.ops.begin() + static_cast<std::ptrdiff_t>(start),
          candidate.ops.begin() + static_cast<std::ptrdiff_t>(end));
      if (!candidate.ops.empty() && still_fails(candidate)) {
        failing = std::move(candidate);
        ++steps;
        reduced = true;
        // Retry the same start: the next chunk slid into place.
      } else {
        start += chunk;
      }
    }
    if (chunk == 1 && !reduced) break;
    chunk = chunk > 1 ? chunk / 2 : 1;
    if (!reduced && chunk == 1 && failing.ops.size() <= 1) break;
  }
  if (steps_out != nullptr) *steps_out = steps;
  if (evals_out != nullptr) *evals_out = evals;
  return failing;
}

std::string mutation_replay_command(const MutationScript& script) {
  // Ops joined with ';' replay inline; the '@file' form replays a
  // persisted script unchanged.
  std::string inline_script = format_mutation_script(script);
  for (char& c : inline_script)
    if (c == '\n') c = ';';
  if (!inline_script.empty() && inline_script.back() == ';')
    inline_script.pop_back();
  return "xt_fuzz --mutations --replay='" + inline_script + "'";
}

MutationFuzzReport run_mutation_fuzz(const MutationFuzzOptions& options) {
  const auto log = [&](const std::string& line) {
    if (options.log) options.log(line);
  };
  MutationFuzzReport report;
  for (int trial = 0; trial < options.trials; ++trial) {
    ++report.trials;
    MutationScript script = generate_mutation_script(options, trial);
    const std::string failure = mutation_property(script);
    if (failure.empty()) continue;

    MutationViolation violation;
    violation.seed = options.seed;
    violation.trial = trial;
    violation.failure = failure;
    violation.script = script;
    log("[mutation-fuzz] trial " + std::to_string(trial) + " FAILED: " +
        failure);
    int evals = 0;
    violation.shrunk = shrink_mutation_script(
        std::move(script), mutation_property, options.max_shrink_evals,
        &violation.shrink_steps, &evals);
    violation.failure = mutation_property(violation.shrunk);
    log("[mutation-fuzz]   minimized to " +
        std::to_string(violation.shrunk.ops.size()) + " op(s) in " +
        std::to_string(violation.shrink_steps) + " step(s), " +
        std::to_string(evals) + " eval(s)");
    violation.replay = mutation_replay_command(violation.shrunk);
    if (!options.corpus_dir.empty()) {
      std::ostringstream name;
      name << options.corpus_dir << "/mut-" << std::hex << options.seed
           << std::dec << "-t" << trial << ".mut";
      std::ofstream out(name.str());
      if (out) {
        out << "# " << violation.failure << "\n"
            << format_mutation_script(violation.shrunk);
        violation.corpus_file = name.str();
      }
    }
    report.violations.push_back(std::move(violation));
  }
  return report;
}

}  // namespace xt
