#include "verify/oracle.hpp"

#include <sstream>
#include <vector>

#include "graph/bfs.hpp"
#include "util/check.hpp"

namespace xt {
namespace {

// Serial edge sweep against an arbitrary distance callback — the
// metric layer's `dilation` minus the std::function indirection, kept
// local so the oracle shares no code with the batched profile path.
template <typename DistFn>
DilationReport sweep_edges(const BinaryTree& guest, const Embedding& emb,
                           DistFn&& dist) {
  XT_CHECK_MSG(emb.complete(), "oracle on an incomplete embedding");
  DilationReport report;
  double sum = 0.0;
  for (NodeId v = 1; v < guest.num_nodes(); ++v) {
    const std::int32_t d = dist(emb.host_of(guest.parent(v)), emb.host_of(v));
    report.max = std::max(report.max, d);
    report.histogram.add(d);
    sum += d;
    ++report.num_edges;
  }
  if (report.num_edges > 0)
    report.mean = sum / static_cast<double>(report.num_edges);
  return report;
}

}  // namespace

DilationReport oracle_dilation_xtree(const BinaryTree& guest,
                                     const Embedding& emb, const XTree& host) {
  return sweep_edges(guest, emb, [&host](VertexId a, VertexId b) {
    return host.distance_oracle(a, b);
  });
}

DilationReport oracle_dilation_hypercube(const BinaryTree& guest,
                                         const Embedding& emb,
                                         const Hypercube& host) {
  (void)host;
  return sweep_edges(guest, emb, [](VertexId a, VertexId b) {
    std::int32_t d = 0;
    for (auto x = static_cast<std::uint32_t>(a ^ b); x != 0; x &= x - 1) ++d;
    return d;
  });
}

DilationReport oracle_dilation_graph(const BinaryTree& guest,
                                     const Embedding& emb, const Graph& host) {
  BfsWorkspace bfs(host);
  // One BFS per edge (not per distinct image): slower than
  // dilation_graph's grouping, and deliberately structured differently.
  return sweep_edges(guest, emb, [&bfs](VertexId a, VertexId b) {
    const std::int32_t d = bfs.run(a)[static_cast<std::size_t>(b)];
    XT_CHECK_MSG(d != kUnreachable, "guest edge maps across components");
    return d;
  });
}

NodeId oracle_load_factor(const Embedding& emb) {
  XT_CHECK_MSG(emb.complete(), "oracle on an incomplete embedding");
  std::vector<NodeId> count(static_cast<std::size_t>(emb.num_host_vertices()),
                            0);
  NodeId max_load = 0;
  for (NodeId v = 0; v < emb.num_guest_nodes(); ++v) {
    const NodeId c = ++count[static_cast<std::size_t>(emb.host_of(v))];
    max_load = std::max(max_load, c);
  }
  return max_load;
}

std::string oracle_check_placement(const BinaryTree& guest,
                                   const Embedding& emb) {
  std::ostringstream os;
  if (emb.num_guest_nodes() != guest.num_nodes()) {
    os << "embedding is over " << emb.num_guest_nodes()
       << " guest nodes, tree has " << guest.num_nodes();
    return os.str();
  }
  for (NodeId v = 0; v < guest.num_nodes(); ++v) {
    if (!emb.is_placed(v)) {
      os << "guest node " << v << " is unplaced";
      return os.str();
    }
    const VertexId h = emb.host_of(v);
    if (h < 0 || h >= emb.num_host_vertices()) {
      os << "guest node " << v << " placed on out-of-range host vertex " << h;
      return os.str();
    }
  }
  return "";
}

}  // namespace xt
