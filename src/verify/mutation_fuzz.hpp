// Differential fuzzer for the online-maintenance engine
// (core/dynamic_embedder.hpp), the mutation twin of verify/fuzzer.hpp.
//
// Each trial generates a random mutation script (adds, removals,
// subtree moves, plus a sprinkle of deliberately invalid ops) against
// a small machine chosen to make repair and escalation fire, then
// replays it on a fresh DynamicEmbedder checking after EVERY op that
//
//   * the snapshot is certificate-valid (validate_embedding),
//   * the O(1) maintained dilation / max-load equal a full recount,
//   * the accounting identity applied == repaired + escalated +
//     rejected holds, and
//   * whenever an op escalated, the resulting placement is
//     bit-identical to a fresh offline XTreeEmbedder run on the same
//     compact tree with DynamicEmbedder::escalation_options — the
//     escalation path may not drift from the Theorem 1 oracle.
//
// A violating script is minimised ddmin-style (chunk removal, then
// single-op removal) while it still fails, printed in the shared
// io/mutation_script.hpp text format, given a one-line replay command
// (`xt_fuzz --mutations --replay=...`), and optionally persisted.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/dynamic_embedder.hpp"
#include "io/mutation_script.hpp"

namespace xt {

struct MutationFuzzOptions {
  std::uint64_t seed = 0xD15EA5EDULL;
  int trials = 60;
  /// Ops generated per trial script.
  int steps = 250;
  /// Machine for generated scripts (scripts carry these as header
  /// directives so repros are self-contained).
  std::int32_t height = 5;
  NodeId load = 4;
  MutationPolicy policy{/*max_repair_nodes=*/16, /*max_dilation=*/3};
  /// Persist minimised repro scripts here ("" disables).
  std::string corpus_dir;
  std::function<void(const std::string&)> log;
  /// Cap on property evaluations the shrinker may spend per violation.
  int max_shrink_evals = 2000;
};

struct MutationViolation {
  std::uint64_t seed = 0;
  int trial = 0;
  std::string failure;       // first violated claim (original script)
  MutationScript script;     // original failing script
  MutationScript shrunk;     // minimised reproducer
  int shrink_steps = 0;      // accepted reductions
  std::string replay;        // one-line reproduction command
  std::string corpus_file;   // persisted path ("" when not persisted)
};

struct MutationFuzzReport {
  int trials = 0;
  std::vector<MutationViolation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// The property under test: replay `script` op by op on a fresh
/// DynamicEmbedder and check the four invariants above after every
/// op.  Returns "" on pass, else "op K (<op>): why".
[[nodiscard]] std::string mutation_property(const MutationScript& script);

/// Generates trial `trial`'s script for `options` (deterministic in
/// (seed, trial)).  Exposed so tests can pin generator behaviour.
[[nodiscard]] MutationScript generate_mutation_script(
    const MutationFuzzOptions& options, int trial);

/// ddmin-style minimisation over the op list (host/policy headers are
/// kept): removes chunks then single ops while `fails` still returns
/// non-empty.  `steps_out`/`evals_out` receive accepted-reduction and
/// evaluation counts when non-null.
[[nodiscard]] MutationScript shrink_mutation_script(
    MutationScript failing,
    const std::function<std::string(const MutationScript&)>& fails,
    int max_evals, int* steps_out = nullptr, int* evals_out = nullptr);

/// The exact command line that reproduces a failure on `script`.
[[nodiscard]] std::string mutation_replay_command(
    const MutationScript& script);

/// Runs `options.trials` trials; every violation is shrunk, given a
/// replay command, and (when corpus_dir is set) persisted.
[[nodiscard]] MutationFuzzReport run_mutation_fuzz(
    const MutationFuzzOptions& options);

}  // namespace xt
