// Property-based fuzzer with shrink-on-failure for the certificate
// chain.
//
// Each trial derives a deterministic sub-seed, draws a tree family and
// size, runs the certified pipeline (verify/certificate_chain.hpp) and
// re-checks every claim through the differential oracle.  On any
// violation the guest tree is greedily minimised — subtree hoisting
// (replace a node's subtree by one child's subtree) first for the big
// cuts, then leaf pruning — until no single reduction still reproduces
// a failure.  The minimised reproducer is printed as a one-line replay
// command (`xt_fuzz --replay '<paren>'`) and optionally persisted to a
// corpus directory so CI failures become local regression inputs.
//
// Fault injection (FuzzFault) exists so the *harness itself* is
// testable: an injected fault must be caught by the oracle and must
// shrink to a minimal reproducer, which pins the whole
// detect-shrink-replay loop deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "btree/binary_tree.hpp"
#include "verify/certificate_chain.hpp"

namespace xt {

/// Deliberate corruption applied between pipeline and verification,
/// for harness self-tests and shrinker demos.
enum class FuzzFault {
  kNone,
  /// The Theorem 1 certificate under-claims its dilation by one (a
  /// model of a stale / miscomputed metric): the differential oracle
  /// must flag the mismatch on any tree.
  kTamperDilationClaim,
  /// Every guest node of the Theorem 1 embedding is re-placed onto
  /// host vertex 0 (a model of a catastrophically wrong placement
  /// path): the recounted load factor must exceed the bound once the
  /// guest has more than `load` nodes, so the minimal reproducer has
  /// exactly load + 1 = 17 nodes.
  kOverloadRoot,
};

[[nodiscard]] const char* fuzz_fault_name(FuzzFault fault);
[[nodiscard]] FuzzFault parse_fuzz_fault(const std::string& name);

struct FuzzOptions {
  std::uint64_t seed = 0x5EEDF00DULL;
  int trials = 120;
  NodeId min_nodes = 1;
  NodeId max_nodes = 700;
  ChainOptions chain;
  FuzzFault fault = FuzzFault::kNone;
  /// Persist minimised reproducers here ("" disables).
  std::string corpus_dir;
  /// Progress / violation lines ("" lines are never sent).
  std::function<void(const std::string&)> log;
  /// Cap on property evaluations the shrinker may spend per violation.
  int max_shrink_evals = 4000;
};

struct FuzzViolation {
  std::uint64_t seed = 0;  // top-level seed the run started from
  int trial = 0;
  std::string family;
  std::string failure;       // first violated claim (original tree)
  std::string paren;         // original failing tree
  std::string shrunk_paren;  // minimised reproducer
  NodeId shrunk_nodes = 0;
  int shrink_steps = 0;      // accepted reductions
  std::string replay;        // one-line reproduction command
  std::string corpus_file;   // persisted path ("" when not persisted)
};

struct FuzzReport {
  int trials = 0;
  std::vector<FuzzViolation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// The property under test: certify `tree` through the full pipeline,
/// apply the injected fault (if any), verify every link and the chain
/// consistency via the oracle.  Returns "" on pass, else the first
/// failure description.
[[nodiscard]] std::string chain_property(const BinaryTree& tree,
                                         const FuzzOptions& options);

/// Greedy minimisation: repeatedly applies subtree hoisting and leaf
/// pruning, keeping any reduction for which `fails` still returns a
/// non-empty failure, until a fixpoint (or the eval budget runs out).
/// `steps_out`/`evals_out` (optional) receive the accepted-reduction
/// and property-evaluation counts.
[[nodiscard]] BinaryTree shrink_tree(
    BinaryTree failing,
    const std::function<std::string(const BinaryTree&)>& fails,
    int max_evals, int* steps_out = nullptr, int* evals_out = nullptr);

/// Runs `options.trials` property trials; every violation is shrunk,
/// given a replay command, and (when corpus_dir is set) persisted.
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& options);

/// Re-runs the property on one explicit tree (the --replay path).
[[nodiscard]] std::string replay_tree(const BinaryTree& tree,
                                      const FuzzOptions& options);

/// The exact command line that reproduces a failure on `tree`.
[[nodiscard]] std::string replay_command(const BinaryTree& tree,
                                         const FuzzOptions& options);

}  // namespace xt
