// Per-theorem certificate chain: every constructive result of the
// paper (Theorems 1-4) issues a compact, self-checking certificate,
// and the whole pipeline for one guest is certified as a chain whose
// links must agree with each other (same guest fingerprint, lift
// height = base height + 4, injective cube dimension = load-16 cube
// dimension + 4).
//
// A certificate binds fingerprints of the guest and the assignment
// (io/certificate.hpp's hashes) to the claimed quality numbers *and*
// the theorem bound those numbers must respect:
//
//   Theorem 1  load-`L` dilation-3 into the optimal X-tree
//              (engineering envelope 6 off the exact-form sizes);
//   Theorem 2  injective dilation-11 lift into X(r+4) (envelope 14);
//   Theorem 3  load-16 dilation-4 into the optimal hypercube
//              (envelope 7) and the injective dilation-8 corollary
//              (envelope 11);
//   Theorem 4  spanning/subgraph membership in the universal graph
//              G_n with every guest edge realised and host degree
//              <= 415.
//
// verify_theorem_certificate recomputes every claim through the
// differential oracle (verify/oracle.hpp) — corridor Dijkstra, bit
// loops, BFS — never the production kernels, so a chain that verifies
// is evidence about the results, not trust in the algorithms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "btree/binary_tree.hpp"
#include "core/universal_graph.hpp"
#include "embedding/embedding.hpp"

namespace xt {

/// Which pipeline stage a chain link certifies.
enum class ChainLink : std::int32_t {
  kXTree = 1,              // Theorem 1: load-16 / dilation-3 into X(r)
  kInjectiveXTree = 2,     // Theorem 2: injective lift into X(r+4)
  kHypercubeLoad16 = 3,    // Theorem 3: load-16 / dilation-4 into Q_r
  kHypercubeInjective = 4, // Theorem 3 corollary: injective dilation-8
  kUniversal = 5,          // Theorem 4: subtree of the universal graph
};

[[nodiscard]] const char* chain_link_name(ChainLink link);

/// One link of the chain: the EmbeddingCertificate vocabulary
/// (fingerprints + claimed quality) extended with the bound the claim
/// must respect and the Theorem 4 structural claims.
struct TheoremCertificate {
  ChainLink link = ChainLink::kXTree;
  std::uint64_t guest_fingerprint = 0;
  std::uint64_t assignment_fingerprint = 0;
  NodeId guest_nodes = 0;
  /// X-tree height (T1/T2), cube dimension (T3), universal r (T4).
  std::int32_t host_param = 0;
  std::int32_t dilation = 0;       // claimed max dilation
  NodeId load_factor = 0;          // claimed max load
  std::int32_t dilation_bound = 0; // theorem / engineering envelope
  NodeId load_bound = 0;
  /// Theorem 4 only: guest edges NOT realised by G_n edges (claim 0)
  /// and the measured max degree of G_n (claim <= 415).
  std::int64_t edges_outside = 0;
  std::int32_t host_degree = 0;
};

/// A certified embedding: the claim plus the artifact it judges.
struct CertifiedEmbedding {
  TheoremCertificate cert;
  Embedding embedding{0, 0};
};

struct CertifiedPipeline {
  std::vector<CertifiedEmbedding> links;

  [[nodiscard]] const CertifiedEmbedding* find(ChainLink link) const;
};

struct ChainOptions {
  /// Guest nodes per host vertex for Theorem 1.  Theorems 2-4 are
  /// certified only when load == 16 (their constructions fix it).
  NodeId load = 16;
  bool include_t2 = true;
  bool include_t3 = true;
  /// Theorem 4 builds G_n (16 * |X(r)| vertices, degree <= 415); off
  /// by default — enable for bounded sizes.
  bool include_t4 = false;
};

/// n is a theorem-exact size: n = load * (2^k - 1) for some k >= 1.
[[nodiscard]] bool is_exact_form(NodeId n, NodeId load);

/// Runs the full pipeline on `guest` and certifies every stage.
[[nodiscard]] CertifiedPipeline run_certified_pipeline(
    const BinaryTree& guest, const ChainOptions& options = {});

/// Recomputes every claim of one link via the differential oracle.
/// Returns "" when the certificate holds, else a description of the
/// first violated claim.
[[nodiscard]] std::string verify_theorem_certificate(
    const TheoremCertificate& cert, const BinaryTree& guest,
    const Embedding& emb);

/// Verifies every link plus the cross-link consistency claims.
/// Returns "" when the whole chain holds.
[[nodiscard]] std::string verify_pipeline(const BinaryTree& guest,
                                          const CertifiedPipeline& pipeline);

/// One-line text form "xtreesim-tcert v1 <fields...>" and its parser.
[[nodiscard]] std::string theorem_certificate_to_string(
    const TheoremCertificate& cert);
[[nodiscard]] TheoremCertificate theorem_certificate_from_string(
    const std::string& text);

}  // namespace xt
