#include "service/session.hpp"

#include <future>
#include <utility>

#include "util/check.hpp"

namespace xt {

namespace {

const char* growth_error_name(DynamicEmbedder::GrowthError e) {
  switch (e) {
    case DynamicEmbedder::GrowthError::kOk: return "ok";
    case DynamicEmbedder::GrowthError::kHostFull: return "host_full";
    case DynamicEmbedder::GrowthError::kParentSlotsFull:
      return "parent_slots_full";
    case DynamicEmbedder::GrowthError::kInvalidParent:
      return "invalid_parent";
  }
  return "unknown";
}

const char* mutation_error_name(DynamicEmbedder::MutationError e) {
  switch (e) {
    case DynamicEmbedder::MutationError::kOk: return "ok";
    case DynamicEmbedder::MutationError::kDeadNode: return "dead_node";
    case DynamicEmbedder::MutationError::kIsRoot: return "is_root";
    case DynamicEmbedder::MutationError::kNotLeaf: return "not_leaf";
    case DynamicEmbedder::MutationError::kInvalidParent:
      return "invalid_parent";
    case DynamicEmbedder::MutationError::kWouldCycle: return "would_cycle";
    case DynamicEmbedder::MutationError::kParentSlotsFull:
      return "parent_slots_full";
  }
  return "unknown";
}

}  // namespace

bool valid_session_id(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (ch == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(ch) >= 0x20) {
      out += ch;
    }
  }
  return out;
}

const char* session_status_name(SessionStatus s) {
  switch (s) {
    case SessionStatus::kOk: return "ok";
    case SessionStatus::kNotFound: return "not_found";
    case SessionStatus::kAlreadyExists: return "already_exists";
    case SessionStatus::kTooManySessions: return "too_many_sessions";
    case SessionStatus::kVersionGone: return "version_gone";
    case SessionStatus::kQueueFull: return "queue_full";
    case SessionStatus::kShutdown: return "shutdown";
    case SessionStatus::kBadRequest: return "bad_request";
  }
  return "unknown";
}

std::uint64_t snapshot_checksum(const EmbeddingSnapshot& snap) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (byte * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(snap.version);
  mix(static_cast<std::uint64_t>(snap.tree.num_nodes()));
  mix(static_cast<std::uint64_t>(snap.host_height));
  mix(static_cast<std::uint64_t>(snap.dilation));
  mix(static_cast<std::uint64_t>(snap.max_load));
  for (NodeId c = 0; c < snap.tree.num_nodes(); ++c) {
    mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(snap.tree.parent(c))));
    mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(snap.embedding.host_of(c))));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(
        snap.stable_of[static_cast<std::size_t>(c)])));
  }
  return h;
}

// --- TreeSession ----------------------------------------------------------

struct SessionManager::TreeSession {
  std::string id;
  DynamicEmbedder embedder;
  // Published versions live in a ring indexed version %
  // ring.size(); slots hold nullptr until their first publication.
  std::vector<std::atomic<EmbeddingSnapshot*>> ring;
  std::atomic<std::uint64_t> latest{0};
  std::atomic<bool> dropped{false};

  TreeSession(std::string session_id, std::int32_t height, NodeId load,
              MutationPolicy policy, std::size_t ring_size)
      : id(std::move(session_id)),
        embedder(height, load, policy),
        ring(ring_size) {}

  ~TreeSession() {
    // Whatever is still linked in the ring was never retired; no
    // reader can hold it here (readers hold the owning shared_ptr).
    for (auto& slot : ring) delete slot.load(std::memory_order_relaxed);
  }
};

// --- SessionManager -------------------------------------------------------

SessionManager::SessionManager(SessionConfig config)
    : config_(std::move(config)) {
  if (config_.max_versions_retained == 0) config_.max_versions_retained = 1;
  writer_ = std::thread([this] { writer_loop(); });
}

SessionManager::~SessionManager() { shutdown(/*drain=*/true); }

void SessionManager::diag(const std::string& line) const {
  if (config_.diagnostic_sink) config_.diagnostic_sink(line);
}

SessionStatus SessionManager::create(const std::string& id,
                                     std::int32_t height, NodeId load,
                                     std::string* reason) {
  const auto fail = [&](SessionStatus s, const std::string& why) {
    if (reason != nullptr) *reason = why;
    return s;
  };
  if (!valid_session_id(id))
    return fail(SessionStatus::kBadRequest,
                "session id must be 1..64 chars of [A-Za-z0-9_.-]");
  const std::int32_t h = height < 0 ? config_.default_height : height;
  const NodeId l = load < 0 ? config_.default_load : load;
  if (h < 0 || h > 25)
    return fail(SessionStatus::kBadRequest, "height must be in 0..25");
  if (l < 1)
    return fail(SessionStatus::kBadRequest, "load must be >= 1");

  auto session = std::make_shared<TreeSession>(
      id, h, l, config_.policy, config_.max_versions_retained);
  // Publish version 1 BEFORE the session becomes reachable through
  // the map: once inserted, a concurrent mutate() could reach the
  // writer thread and publish version 2 while we were still writing
  // version 1, breaking the dense-version invariant.
  publish(*session);
  const auto unpublish = [this] {
    // The failed session was never shared; its ring frees the
    // snapshot, so the publication never happened for accounting.
    snapshots_published_.fetch_sub(1, std::memory_order_relaxed);
  };
  {
    std::unique_lock lock(sessions_mu_);
    if (sessions_.size() >= config_.max_sessions) {
      lock.unlock();
      unpublish();
      return fail(SessionStatus::kTooManySessions,
                  "session cap reached (" +
                      std::to_string(config_.max_sessions) + ")");
    }
    const auto [it, inserted] = sessions_.emplace(id, session);
    (void)it;
    if (!inserted) {
      lock.unlock();
      unpublish();
      return fail(SessionStatus::kAlreadyExists,
                  "session '" + id + "' already exists");
    }
  }
  sessions_created_.fetch_add(1, std::memory_order_relaxed);
  diag("session created id=" + id + " height=" + std::to_string(h) +
       " load=" + std::to_string(l));
  return SessionStatus::kOk;
}

SessionStatus SessionManager::drop(const std::string& id) {
  std::shared_ptr<TreeSession> session;
  {
    std::unique_lock lock(sessions_mu_);
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return SessionStatus::kNotFound;
    session = std::move(it->second);
    sessions_.erase(it);
  }
  session->dropped.store(true, std::memory_order_release);
  sessions_dropped_.fetch_add(1, std::memory_order_relaxed);
  diag("session dropped id=" + id);
  return SessionStatus::kOk;
}

void SessionManager::mutate(const std::string& id,
                            std::vector<MutationOp> ops,
                            std::function<void(MutateOutcome)> on_done) {
  batches_submitted_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<TreeSession> session;
  {
    std::shared_lock lock(sessions_mu_);
    const auto it = sessions_.find(id);
    if (it != sessions_.end()) session = it->second;
  }
  MutateOutcome rejection;
  if (session == nullptr || session->dropped.load(std::memory_order_acquire)) {
    batches_not_found_.fetch_add(1, std::memory_order_relaxed);
    rejection.status = SessionStatus::kNotFound;
    rejection.reason = "unknown session '" + id + "'";
    on_done(std::move(rejection));
    return;
  }
  {
    std::lock_guard lock(queue_mu_);
    if (stopping_) {
      rejection.status = SessionStatus::kShutdown;
      rejection.reason = "session manager draining";
    } else if (queue_.size() >= config_.mutation_queue_capacity) {
      rejection.status = SessionStatus::kQueueFull;
      rejection.reason = "mutation queue full (" +
                         std::to_string(config_.mutation_queue_capacity) +
                         ")";
    } else {
      queue_.push_back(PendingBatch{std::move(session), std::move(ops),
                                    std::move(on_done)});
      queue_cv_.notify_one();
      return;
    }
  }
  if (rejection.status == SessionStatus::kQueueFull) {
    batches_rejected_full_.fetch_add(1, std::memory_order_relaxed);
    diag("mutation batch rejected (queue full) id=" + id);
  } else {
    batches_shutdown_.fetch_add(1, std::memory_order_relaxed);
  }
  on_done(std::move(rejection));
}

MutateOutcome SessionManager::mutate_sync(const std::string& id,
                                          std::vector<MutationOp> ops) {
  std::promise<MutateOutcome> promise;
  auto future = promise.get_future();
  mutate(id, std::move(ops),
         [&promise](MutateOutcome outcome) {
           promise.set_value(std::move(outcome));
         });
  return future.get();
}

void SessionManager::writer_loop() {
  for (;;) {
    PendingBatch batch;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, drained
      if (stopping_ && !drain_) {
        // Answer everything kShutdown without applying.
        std::deque<PendingBatch> rest;
        rest.swap(queue_);
        lock.unlock();
        for (PendingBatch& p : rest) {
          batches_shutdown_.fetch_add(1, std::memory_order_relaxed);
          MutateOutcome outcome;
          outcome.status = SessionStatus::kShutdown;
          outcome.reason = "session manager stopping";
          p.on_done(std::move(outcome));
        }
        return;
      }
      batch = std::move(queue_.front());
      queue_.pop_front();
    }
    MutateOutcome outcome;
    if (batch.session->dropped.load(std::memory_order_acquire)) {
      batches_not_found_.fetch_add(1, std::memory_order_relaxed);
      outcome.status = SessionStatus::kNotFound;
      outcome.reason = "session '" + batch.session->id + "' was dropped";
    } else {
      outcome = apply_batch(*batch.session, batch.ops);
      batches_completed_.fetch_add(1, std::memory_order_relaxed);
    }
    batch.on_done(std::move(outcome));
  }
}

MutateOutcome SessionManager::apply_batch(TreeSession& session,
                                          const std::vector<MutationOp>& ops) {
  MutateOutcome outcome;
  outcome.records.reserve(ops.size());
  DynamicEmbedder& dyn = session.embedder;
  const DynamicEmbedder::MutationStats before = dyn.mutation_stats();
  for (const MutationOp& op : ops) {
    const DynamicEmbedder::MutationStats at = dyn.mutation_stats();
    MutationRecord record;
    record.op = op;
    switch (op.kind) {
      case MutationOpKind::kAddLeaf: {
        const auto res = dyn.try_add_leaf(op.a);
        record.ok = res.ok();
        record.leaf = res.leaf;
        if (!res.ok()) record.error = growth_error_name(res.error);
        break;
      }
      case MutationOpKind::kRemoveLeaf: {
        const auto res = dyn.try_remove_leaf(op.a);
        record.ok = res.ok();
        if (!res.ok()) record.error = mutation_error_name(res.error);
        break;
      }
      case MutationOpKind::kRemoveSubtree: {
        const auto res = dyn.try_remove_subtree(op.a);
        record.ok = res.ok();
        if (!res.ok()) record.error = mutation_error_name(res.error);
        break;
      }
      case MutationOpKind::kMoveSubtree: {
        const auto res = dyn.try_move_subtree(op.a, op.b);
        record.ok = res.ok();
        if (!res.ok()) record.error = mutation_error_name(res.error);
        break;
      }
    }
    const DynamicEmbedder::MutationStats after = dyn.mutation_stats();
    record.nodes_touched = after.nodes_touched - at.nodes_touched;
    record.escalated = after.escalated > at.escalated;
    record.dilation_after = dyn.current_dilation();
    record.max_load_after = dyn.current_max_load();
    if (record.escalated)
      diag("session " + session.id + " escalated: " +
           format_mutation_op(op) + " re-placed " +
           std::to_string(record.nodes_touched) + " nodes");
    outcome.records.push_back(std::move(record));
  }
  publish(session);
  outcome.status = SessionStatus::kOk;
  outcome.version = session.latest.load(std::memory_order_relaxed);

  const DynamicEmbedder::MutationStats after = dyn.mutation_stats();
  {
    // One lock covers the whole group so stats() snapshots the
    // accounting identity exactly — never mid-batch.
    std::lock_guard lock(ops_mu_);
    ops_applied_ += static_cast<std::uint64_t>(after.applied - before.applied);
    ops_repaired_ +=
        static_cast<std::uint64_t>(after.repaired - before.repaired);
    ops_escalated_ +=
        static_cast<std::uint64_t>(after.escalated - before.escalated);
    ops_rejected_ +=
        static_cast<std::uint64_t>(after.rejected - before.rejected);
    nodes_touched_ +=
        static_cast<std::uint64_t>(after.nodes_touched - before.nodes_touched);
    escalate_nodes_ += static_cast<std::uint64_t>(after.escalate_nodes -
                                                  before.escalate_nodes);
  }
  return outcome;
}

void SessionManager::publish(TreeSession& session) {
  const DynamicEmbedder& dyn = session.embedder;
  auto* snap = new EmbeddingSnapshot;
  snap->version = session.latest.load(std::memory_order_relaxed) + 1;
  auto projection = dyn.snapshot();
  snap->tree = std::move(projection.tree);
  snap->embedding = std::move(projection.embedding);
  snap->stable_of = std::move(projection.stable_of);
  snap->compact_of = std::move(projection.compact_of);
  snap->host_height = dyn.host().height();
  snap->dilation = dyn.current_dilation();
  snap->max_load = dyn.current_max_load();
  snap->free_capacity = dyn.free_capacity();
  snap->checksum = snapshot_checksum(*snap);

  auto& slot = session.ring[static_cast<std::size_t>(
      snap->version % session.ring.size())];
  EmbeddingSnapshot* old = slot.exchange(snap, std::memory_order_release);
  session.latest.store(snap->version, std::memory_order_release);
  snapshots_published_.fetch_add(1, std::memory_order_relaxed);
  if (old != nullptr) {
    domain_.retire_object(old);
    snapshots_retired_.fetch_add(1, std::memory_order_relaxed);
  }
}

SessionStatus SessionManager::with_snapshot(
    const std::string& id, std::uint64_t version,
    const std::function<void(const EmbeddingSnapshot&)>& fn) {
  std::shared_ptr<TreeSession> session;
  {
    std::shared_lock lock(sessions_mu_);
    const auto it = sessions_.find(id);
    if (it != sessions_.end()) session = it->second;
  }
  if (session == nullptr || session->dropped.load(std::memory_order_acquire)) {
    reads_not_found_.fetch_add(1, std::memory_order_relaxed);
    return SessionStatus::kNotFound;
  }
  // Pin before touching the ring: any snapshot the writer retires
  // from here on outlives this guard.
  const EpochDomain::Guard guard = domain_.pin();
  const std::uint64_t latest = session->latest.load(std::memory_order_acquire);
  const std::uint64_t want = version == 0 ? latest : version;
  const std::size_t ring_size = session->ring.size();
  if (want == 0 || want > latest || want + ring_size <= latest) {
    reads_version_gone_.fetch_add(1, std::memory_order_relaxed);
    return SessionStatus::kVersionGone;
  }
  const EmbeddingSnapshot* snap =
      session->ring[static_cast<std::size_t>(want % ring_size)].load(
          std::memory_order_acquire);
  if (snap == nullptr || snap->version != want) {
    // The slot was recycled by a newer publication between the latest
    // read and the slot read — the version is gone, not torn.
    reads_version_gone_.fetch_add(1, std::memory_order_relaxed);
    return SessionStatus::kVersionGone;
  }
  fn(*snap);
  reads_ok_.fetch_add(1, std::memory_order_relaxed);
  return SessionStatus::kOk;
}

std::vector<std::string> SessionManager::session_ids() const {
  std::vector<std::string> ids;
  std::shared_lock lock(sessions_mu_);
  ids.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) ids.push_back(id);
  return ids;
}

void SessionManager::shutdown(bool drain) {
  std::lock_guard shutdown_lock(shutdown_mu_);
  {
    std::lock_guard lock(queue_mu_);
    stopping_ = true;
    drain_ = drain;
    queue_cv_.notify_all();
  }
  if (writer_.joinable()) writer_.join();
}

SessionStats SessionManager::stats() const {
  SessionStats s;
  s.sessions_created = sessions_created_.load(std::memory_order_relaxed);
  s.sessions_dropped = sessions_dropped_.load(std::memory_order_relaxed);
  {
    std::shared_lock lock(sessions_mu_);
    s.sessions_active = sessions_.size();
  }
  s.batches_submitted = batches_submitted_.load(std::memory_order_relaxed);
  s.batches_completed = batches_completed_.load(std::memory_order_relaxed);
  s.batches_rejected_full =
      batches_rejected_full_.load(std::memory_order_relaxed);
  s.batches_not_found = batches_not_found_.load(std::memory_order_relaxed);
  s.batches_shutdown = batches_shutdown_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(ops_mu_);
    s.ops_applied = ops_applied_;
    s.ops_repaired = ops_repaired_;
    s.ops_escalated = ops_escalated_;
    s.ops_rejected = ops_rejected_;
    s.nodes_touched = nodes_touched_;
    s.escalate_nodes = escalate_nodes_;
  }
  s.snapshots_published = snapshots_published_.load(std::memory_order_relaxed);
  s.snapshots_retired = snapshots_retired_.load(std::memory_order_relaxed);
  s.reads_ok = reads_ok_.load(std::memory_order_relaxed);
  s.reads_version_gone = reads_version_gone_.load(std::memory_order_relaxed);
  s.reads_not_found = reads_not_found_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(queue_mu_);
    s.mutation_queue_depth = queue_.size();
  }
  s.mutation_queue_capacity = config_.mutation_queue_capacity;
  return s;
}

std::string SessionStats::to_json() const {
  XT_CHECK_MSG(ops_applied == ops_repaired + ops_escalated + ops_rejected,
               "session accounting identity broken: applied="
                   << ops_applied << " repaired=" << ops_repaired
                   << " escalated=" << ops_escalated
                   << " rejected=" << ops_rejected);
  std::string out = "{";
  const auto field = [&out](const char* name, std::uint64_t value,
                            bool first = false) {
    if (!first) out += ", ";
    out += "\"";
    out += name;
    out += "\": ";
    out += std::to_string(value);
  };
  field("sessions_created", sessions_created, /*first=*/true);
  field("sessions_dropped", sessions_dropped);
  field("sessions_active", sessions_active);
  field("batches_submitted", batches_submitted);
  field("batches_completed", batches_completed);
  field("batches_rejected_full", batches_rejected_full);
  field("batches_not_found", batches_not_found);
  field("batches_shutdown", batches_shutdown);
  field("ops_applied", ops_applied);
  field("ops_repaired", ops_repaired);
  field("ops_escalated", ops_escalated);
  field("ops_rejected", ops_rejected);
  field("nodes_touched", nodes_touched);
  field("escalate_nodes", escalate_nodes);
  field("snapshots_published", snapshots_published);
  field("snapshots_retired", snapshots_retired);
  field("reads_ok", reads_ok);
  field("reads_version_gone", reads_version_gone);
  field("reads_not_found", reads_not_found);
  field("mutation_queue_depth", mutation_queue_depth);
  field("mutation_queue_capacity", mutation_queue_capacity);
  out += "}";
  return out;
}

std::string session_embedding_json(const std::string& id,
                                   const EmbeddingSnapshot& snap) {
  std::string out = "{\"id\": \"" + json_escape(id) + "\"";
  out += ", \"version\": " + std::to_string(snap.version);
  out += ", \"n\": " + std::to_string(snap.tree.num_nodes());
  out += ", \"host_height\": " + std::to_string(snap.host_height);
  out += ", \"dilation\": " + std::to_string(snap.dilation);
  out += ", \"max_load\": " + std::to_string(snap.max_load);
  out += ", \"free_capacity\": " + std::to_string(snap.free_capacity);
  out += ", \"checksum\": " + std::to_string(snap.checksum);
  out += ", \"stable\": [";
  for (NodeId c = 0; c < snap.tree.num_nodes(); ++c) {
    if (c > 0) out += ", ";
    out += std::to_string(snap.stable_of[static_cast<std::size_t>(c)]);
  }
  out += "], \"hosts\": [";
  for (NodeId c = 0; c < snap.tree.num_nodes(); ++c) {
    if (c > 0) out += ", ";
    out += std::to_string(snap.embedding.host_of(c));
  }
  out += "]}";
  return out;
}

std::string mutate_outcome_json(const MutateOutcome& outcome) {
  std::string out =
      "{\"status\": \"" + std::string(session_status_name(outcome.status)) +
      "\"";
  if (!outcome.reason.empty())
    out += ", \"reason\": \"" + json_escape(outcome.reason) + "\"";
  out += ", \"version\": " + std::to_string(outcome.version);
  out += ", \"ops\": [";
  bool first = true;
  for (const MutationRecord& r : outcome.records) {
    if (!first) out += ", ";
    first = false;
    out += "{\"op\": \"" + format_mutation_op(r.op) + "\"";
    out += ", \"status\": \"" + (r.ok ? std::string("ok") : r.error) + "\"";
    if (r.leaf != kInvalidNode) out += ", \"leaf\": " + std::to_string(r.leaf);
    out += ", \"nodes_touched\": " + std::to_string(r.nodes_touched);
    out += ", \"escalated\": " + std::string(r.escalated ? "true" : "false");
    out += ", \"dilation_after\": " + std::to_string(r.dilation_after);
    out += ", \"max_load_after\": " + std::to_string(r.max_load_after);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace xt
