#include "service/cache.hpp"

#include <utility>

#include "util/check.hpp"

namespace xt {

namespace {

const char* const kTheoremNames[] = {"T1", "T2", "T3"};

}  // namespace

const char* theorem_name(Theorem t) {
  return kTheoremNames[static_cast<int>(t)];
}

std::optional<Theorem> parse_theorem(const std::string& name) {
  if (name == "T1" || name == "t1") return Theorem::kT1;
  if (name == "T2" || name == "t2") return Theorem::kT2;
  if (name == "T3" || name == "t3") return Theorem::kT3;
  return std::nullopt;
}

const char* status_name(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kRejectedQueueFull: return "rejected_queue_full";
    case RequestStatus::kRejectedShutdown: return "rejected_shutdown";
    case RequestStatus::kExpiredDeadline: return "expired_deadline";
    case RequestStatus::kFailed: return "failed";
  }
  return "unknown";
}

CanonicalCache::CanonicalCache(std::size_t capacity)
    : capacity_(capacity) {
  XT_CHECK(capacity >= 1);
}

std::shared_ptr<const CachedEmbedding> CanonicalCache::lookup(
    const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->value;
}

void CanonicalCache::insert(const CacheKey& key, CachedEmbedding value) {
  auto shared = std::make_shared<const CachedEmbedding>(std::move(value));
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.insertions;
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->value = std::move(shared);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++counters_.evictions;
  }
  lru_.push_front(Entry{key, std::move(shared)});
  map_.emplace(key, lru_.begin());
}

void CanonicalCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.evictions += lru_.size();
  map_.clear();
  lru_.clear();
}

CanonicalCache::Counters CanonicalCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::size_t CanonicalCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace xt
