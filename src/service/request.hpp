// Request / response vocabulary of the embedding service.
//
// The service turns the one-shot embedders (Theorems 1-3) into a
// served resource: callers submit a guest tree plus a theorem
// selector, a deadline and a priority, and receive a future response.
// Every submitted request is answered exactly once with an explicit
// status — backpressure is a first-class outcome (kRejectedQueueFull
// with the capacity in the reason string), never a silent drop.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "btree/binary_tree.hpp"
#include "embedding/embedding.hpp"

namespace xt {

/// Which constructive result serves the request.
enum class Theorem {
  kT1,  // load-16 / dilation-3 into the optimal X-tree
  kT2,  // injective dilation-<=11 into X(r+4)
  kT3,  // load-16 / dilation-4 into the optimal hypercube
};

[[nodiscard]] const char* theorem_name(Theorem t);
[[nodiscard]] std::optional<Theorem> parse_theorem(const std::string& name);

using ServiceClock = std::chrono::steady_clock;

struct EmbedRequest {
  BinaryTree tree;
  Theorem theorem = Theorem::kT1;
  /// Serve-by time.  A request whose deadline has passed when a shard
  /// dequeues it is answered kExpiredDeadline without being embedded.
  /// The default (epoch) time_point means "no deadline".
  ServiceClock::time_point deadline{};
  /// Higher priorities dequeue first; FIFO within one priority.
  std::int32_t priority = 0;
  /// Marks a bulk-ingest submission (corpus feeder).  Bulk requests
  /// are admitted only while the queue has ServiceConfig::
  /// bulk_queue_reserve slots spare beyond them, so a corpus drain
  /// can saturate idle capacity without starving interactive traffic
  /// of admission headroom.
  bool bulk = false;
  /// The tree's canonical digest, when a frontend already computed it
  /// (the event loop digests payloads in place for the inline hit
  /// path).  The router keys its consistent-hash ring on this instead
  /// of re-hashing the tree; absent means "compute if you need it".
  std::optional<std::uint64_t> canonical_digest;
};

enum class RequestStatus {
  kOk,
  kRejectedQueueFull,  // bounded-queue backpressure at submit time
  kRejectedShutdown,   // service stopping; request was not embedded
  kExpiredDeadline,    // deadline passed while queued
  kFailed,             // embedder threw (reason carries the message)
};

[[nodiscard]] const char* status_name(RequestStatus s);

struct EmbedResponse {
  RequestStatus status = RequestStatus::kFailed;
  /// Human-readable explanation, set for every non-kOk status.
  std::string reason;
  /// The embedding (guest ids of the submitted tree), iff kOk.
  std::optional<Embedding> embedding;
  /// X-tree height (T1/T2) or hypercube dimension (T3).
  std::int32_t host_height = 0;
  /// Verified metrics of the served embedding.
  std::int32_t dilation = 0;
  NodeId load_factor = 0;
  /// Served from the canonical-tree cache (remapped, not recomputed).
  bool cache_hit = false;
  /// Served by another request's embed in the same dequeued batch.
  bool coalesced = false;
  /// Service order stamp (1-based) over requests a shard processed;
  /// 0 for requests rejected at submit time.
  std::uint64_t served_seq = 0;
  /// Submit -> response wall time.
  double latency_ms = 0.0;
};

}  // namespace xt
