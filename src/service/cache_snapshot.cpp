#include "service/cache_snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace xt {

// Like xtb1, records are read back by pointer straight out of the
// mmap, so the format is only defined for little-endian hosts with
// 32-bit vertex ids.
static_assert(std::endian::native == std::endian::little,
              "xtc1 is a little-endian format");
static_assert(sizeof(VertexId) == 4, "xtc1 records store 32-bit vertex ids");

namespace {

void put_u32(unsigned char* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(unsigned char* p, std::uint64_t v) { std::memcpy(p, &v, 8); }

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

std::string record_error(std::uint64_t i, const std::string& why) {
  return "record " + std::to_string(i) + ": " + why;
}

/// Serializes one cache entry into `buf` (fixed part + payloads +
/// checksum + padding), appending to the end.
void append_record(std::vector<unsigned char>& buf, const CacheKey& key,
                   const CachedEmbedding& value, const std::string* memo) {
  const std::size_t assign_bytes = value.canonical_assign.size() * 4;
  const std::size_t memo_bytes = memo != nullptr ? memo->size() : 0;
  const std::size_t record_bytes =
      kSnapshotRecordFixedBytes + assign_bytes + memo_bytes;
  const std::size_t start = buf.size();
  buf.resize(start + record_bytes);
  unsigned char* p = buf.data() + start;
  put_u64(p + 0, key.canonical_hash);
  put_u32(p + 8, static_cast<std::uint32_t>(key.num_nodes));
  put_u32(p + 12, static_cast<std::uint32_t>(key.load));
  put_u32(p + 16, static_cast<std::uint32_t>(key.theorem));
  put_u32(p + 20, static_cast<std::uint32_t>(value.host_vertices));
  put_u32(p + 24, static_cast<std::uint32_t>(value.host_height));
  put_u32(p + 28, static_cast<std::uint32_t>(value.dilation));
  put_u32(p + 32, static_cast<std::uint32_t>(value.load_factor));
  put_u32(p + 36, static_cast<std::uint32_t>(value.canonical_assign.size()));
  put_u32(p + 40, static_cast<std::uint32_t>(memo_bytes));
  put_u32(p + 44, 0);  // reserved
  if (assign_bytes > 0)
    std::memcpy(p + kSnapshotRecordFixedBytes, value.canonical_assign.data(),
                assign_bytes);
  if (memo_bytes > 0)
    std::memcpy(p + kSnapshotRecordFixedBytes + assign_bytes, memo->data(),
                memo_bytes);
  const std::uint64_t checksum = hash64(buf.data() + start, record_bytes);
  buf.resize(start + record_bytes + 8);
  put_u64(buf.data() + start + record_bytes, checksum);
  // Pad so the next record (hence its i32 array) stays aligned.
  const std::size_t tail = buf.size() % 8;
  if (tail != 0) buf.resize(buf.size() + (8 - tail), 0);
}

}  // namespace

bool save_cache_snapshot(const CanonicalCache& cache, const std::string& path,
                         std::string* error, std::size_t* saved) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.good()) return fail(error, "cannot open " + path + " for writing");

  // A checkpoint is a point-in-time walk, not a transaction: entries
  // inserted while we serialize may or may not be included, which is
  // fine for derived data.  The whole record region is staged in
  // memory (bounded by the cache capacity) so the stripe locks are
  // held only as long as the memcpy, never across file I/O.
  std::vector<unsigned char> records;
  std::vector<std::uint64_t> offsets;
  cache.for_each_entry([&](const CacheKey& key, const CachedEmbedding& value,
                           const std::string* memo) {
    offsets.push_back(kSnapshotHeaderBytes + records.size());
    append_record(records, key, value, memo);
  });

  unsigned char header[kSnapshotHeaderBytes] = {};
  const std::uint64_t index_offset = kSnapshotHeaderBytes + records.size();
  const std::uint64_t file_bytes = index_offset + offsets.size() * 8 + 8;
  std::memcpy(header, kSnapshotMagic, 4);
  put_u32(header + 4, kSnapshotVersion);
  put_u64(header + 8, offsets.size());
  put_u64(header + 16, index_offset);
  put_u64(header + 24, file_bytes);
  put_u64(header + 32, hash64(header, kSnapshotHeaderHashedBytes));

  const std::uint64_t index_hash = hash64(offsets.data(), offsets.size() * 8);
  os.write(reinterpret_cast<const char*>(header), kSnapshotHeaderBytes);
  os.write(reinterpret_cast<const char*>(records.data()),
           static_cast<std::streamsize>(records.size()));
  os.write(reinterpret_cast<const char*>(offsets.data()),
           static_cast<std::streamsize>(offsets.size() * 8));
  os.write(reinterpret_cast<const char*>(&index_hash), 8);
  os.flush();
  if (!os.good()) return fail(error, "write failure on " + path);
  os.close();
  if (saved != nullptr) *saved = offsets.size();
  return true;
}

SnapshotLoadReport load_cache_snapshot(const std::string& path,
                                       CanonicalCache* cache) {
  XT_CHECK(cache != nullptr);
  SnapshotLoadReport report;

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    report.error = "cannot open " + path;
    return report;
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    report.error = "cannot stat " + path;
    return report;
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  void* map = nullptr;
  if (size > 0) {
    map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      ::close(fd);
      report.error = "cannot mmap " + path;
      return report;
    }
  }
  ::close(fd);  // the mapping keeps the pages alive
  const auto* bytes = static_cast<const unsigned char*>(map);

  // Envelope validation, mirroring CorpusReader: everything the index
  // depends on is checked before any record is trusted.
  const auto envelope_fail = [&](const std::string& why) {
    report.error = path + ": " + why;
    if (bytes != nullptr) ::munmap(map, size);
    return report;
  };
  if (size < kSnapshotHeaderBytes + 8)
    return envelope_fail("too small to be an xtc1 snapshot");
  if (std::memcmp(bytes, kSnapshotMagic, 4) != 0)
    return envelope_fail("bad magic (not an xtc1 snapshot)");
  if (get_u32(bytes + 4) != kSnapshotVersion)
    return envelope_fail("unsupported xtc1 version " +
                         std::to_string(get_u32(bytes + 4)));
  if (get_u64(bytes + 32) != hash64(bytes, kSnapshotHeaderHashedBytes))
    return envelope_fail("header checksum mismatch");
  if (get_u64(bytes + 24) != size)
    return envelope_fail("truncated (header records " +
                         std::to_string(get_u64(bytes + 24)) +
                         " bytes, file has " + std::to_string(size) + ")");
  const std::uint64_t count = get_u64(bytes + 8);
  const std::uint64_t index_offset = get_u64(bytes + 16);
  if (index_offset < kSnapshotHeaderBytes || index_offset % 8 != 0 ||
      index_offset > size || size - index_offset != count * 8 + 8)
    return envelope_fail("index offset/size inconsistent with entry count");
  const auto* offsets =
      reinterpret_cast<const std::uint64_t*>(bytes + index_offset);
  if (get_u64(bytes + size - 8) != hash64(offsets, count * 8))
    return envelope_fail("index checksum mismatch");
  const std::uint64_t records_end = index_offset;

  report.ok = true;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto skip = [&](const std::string& why) {
      ++report.skipped;
      report.record_errors.push_back(record_error(i, why));
    };
    const std::uint64_t off = offsets[i];
    if (off < kSnapshotHeaderBytes || off % 8 != 0 ||
        off + kSnapshotRecordFixedBytes + 8 > records_end) {
      skip("offset out of range");
      continue;
    }
    const unsigned char* rec = bytes + off;
    const std::uint32_t assign_len = get_u32(rec + 36);
    const std::uint32_t memo_len = get_u32(rec + 40);
    if (get_u32(rec + 44) != 0) {
      skip("reserved field not zero");
      continue;
    }
    // fixed + 4*assign_len + memo_len + 8 bytes must fit before the
    // index; do the bound check in u64 so hostile lengths can't wrap.
    const std::uint64_t budget = records_end - off - kSnapshotRecordFixedBytes - 8;
    if (std::uint64_t{assign_len} * 4 + memo_len > budget) {
      skip("payload lengths overrun the record region");
      continue;
    }
    const std::uint64_t record_bytes =
        kSnapshotRecordFixedBytes + std::uint64_t{assign_len} * 4 + memo_len;
    if (get_u64(rec + record_bytes) != hash64(rec, record_bytes)) {
      skip("payload checksum mismatch");
      continue;
    }
    const std::uint32_t theorem = get_u32(rec + 16);
    if (theorem > 2) {
      skip("unknown theorem code " + std::to_string(theorem));
      continue;
    }
    const std::uint32_t num_nodes = get_u32(rec + 8);
    if (num_nodes == 0 || num_nodes > 0x7fffffffu || assign_len != num_nodes) {
      skip("assignment length disagrees with node count");
      continue;
    }

    CacheKey key;
    key.canonical_hash = get_u64(rec + 0);
    key.num_nodes = static_cast<NodeId>(num_nodes);
    key.load = static_cast<NodeId>(get_u32(rec + 12));
    key.theorem = static_cast<Theorem>(theorem);

    CachedEmbedding value;
    // The record offset is 8-aligned, so the i32 array at +48 is
    // 4-aligned: safe to copy out as typed pointers.
    const auto* assign =
        reinterpret_cast<const VertexId*>(rec + kSnapshotRecordFixedBytes);
    value.canonical_assign.assign(assign, assign + assign_len);
    value.host_vertices = static_cast<VertexId>(get_u32(rec + 20));
    value.host_height = static_cast<std::int32_t>(get_u32(rec + 24));
    value.dilation = static_cast<std::int32_t>(get_u32(rec + 28));
    value.load_factor = static_cast<NodeId>(get_u32(rec + 32));

    if (memo_len > 0) {
      const std::string memo(
          reinterpret_cast<const char*>(rec + kSnapshotRecordFixedBytes +
                                        std::uint64_t{assign_len} * 4),
          memo_len);
      cache->insert(key, std::move(value), &memo);
    } else {
      cache->insert(key, std::move(value));
    }
    ++report.restored;
  }

  if (bytes != nullptr) ::munmap(map, size);
  return report;
}

bool snapshot_sniff(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  char magic[4] = {};
  is.read(magic, 4);
  return is.gcount() == 4 && std::memcmp(magic, kSnapshotMagic, 4) == 0;
}

}  // namespace xt
