// Canonical-tree embedding cache, rebuilt read-mostly: an epoch-
// guarded striped hash table keyed by the AHU-style canonical digest
// of the guest's shape (btree/canonical.hpp), so any two isomorphic
// guests — real workloads (divide & conquer recursion trees,
// data-arrangement instances) produce floods of structurally
// identical trees — share one embedding.
//
// Read side (the epoll loops' inline hit path, bulk_embed's dedup
// probe, the service shards): pin an epoch (util/epoch.hpp), load the
// stripe's slot array with one acquire, probe linearly, unpin.  No
// mutex, no reference-count ping-pong, no allocation.  Readers may
// race with eviction; the epoch domain guarantees a probed entry is
// never freed while any reader is pinned, so a probe returns either
// a miss or a fully published entry — never a torn one.
//
// Write side keeps LRU-ish eviction exactly where the old mutex LRU
// had it: each stripe holds a second-chance FIFO under a small writer
// mutex.  Readers mark entries with a ref bit; eviction pops the
// oldest entry, re-queues it once if it was referenced, and retires
// the true victim through the epoch domain.  (For the sequence the
// unit tests pin — insert a, insert b, touch a, insert c — second
// chance evicts b, same as exact LRU.)
//
// Entries store the host assignment indexed by *canonical* node id
// plus the verified metrics; a hit is remapped onto the requesting
// tree's ids through its own canonical relabelling, an O(n) copy
// instead of an embed.  Values are handed out as shared_ptr snapshots
// so a reader keeps its entry alive beyond the epoch guard.  Each
// entry can also memoize one pre-serialized response-body prefix
// (the wire hit path's fast encode); the memo dies with the entry,
// which is what makes its invalidation trivial: evict == invalidate.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "btree/binary_tree.hpp"
#include "graph/graph.hpp"
#include "service/request.hpp"
#include "util/epoch.hpp"
#include "util/hash_constants.hpp"

namespace xt {

struct CacheKey {
  std::uint64_t canonical_hash = 0;
  NodeId num_nodes = 0;
  Theorem theorem = Theorem::kT1;
  NodeId load = 16;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  [[nodiscard]] std::size_t operator()(const CacheKey& k) const {
    std::uint64_t h = k.canonical_hash;
    h ^= (static_cast<std::uint64_t>(k.num_nodes) << 8) +
         (static_cast<std::uint64_t>(k.theorem) << 2) +
         static_cast<std::uint64_t>(k.load) + kGoldenGamma +
         (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// One cached embedding, in canonical-id space.
struct CachedEmbedding {
  std::vector<VertexId> canonical_assign;  // canonical id -> host vertex
  VertexId host_vertices = 0;
  std::int32_t host_height = 0;  // X-tree height or cube dimension
  std::int32_t dilation = 0;
  NodeId load_factor = 0;
};

/// Thread-safe canonical cache: lock-free epoch-pinned reads, striped
/// mutex writes, second-chance eviction, hit / miss / insertion /
/// eviction counters.
class CanonicalCache {
 public:
  /// A published cache entry.  Immutable after publication except for
  /// the atomic ref bit and the write-once encoded-body memo.
  class Entry {
   public:
    Entry(const CacheKey& key, std::shared_ptr<const CachedEmbedding> value)
        : key_(key), value_(std::move(value)) {}
    Entry(const Entry&) = delete;
    Entry& operator=(const Entry&) = delete;
    ~Entry() { delete encoded_.load(std::memory_order_relaxed); }

    [[nodiscard]] const CacheKey& key() const { return key_; }
    [[nodiscard]] const CachedEmbedding& value() const { return *value_; }
    [[nodiscard]] const std::shared_ptr<const CachedEmbedding>& value_ptr()
        const {
      return value_;
    }

    /// The memoized pre-serialized response-body prefix, or nullptr
    /// if no hit has been served for this entry yet.  Valid while the
    /// caller is inside with_entry (epoch-pinned).
    [[nodiscard]] const std::string* encoded_body() const {
      return encoded_.load(std::memory_order_acquire);
    }

    /// Publishes the memo exactly once; concurrent losers discard
    /// their candidate.  The string dies with the entry, so eviction
    /// or replacement invalidates the memo automatically.
    void publish_encoded_body(std::string body) const {
      auto* candidate = new std::string(std::move(body));
      const std::string* expected = nullptr;
      if (!encoded_.compare_exchange_strong(expected, candidate,
                                            std::memory_order_release,
                                            std::memory_order_relaxed)) {
        delete candidate;
      }
    }

   private:
    friend class CanonicalCache;
    const CacheKey key_;
    const std::shared_ptr<const CachedEmbedding> value_;
    mutable std::atomic<const std::string*> encoded_{nullptr};
    std::atomic<std::uint32_t> ref_{0};  // second-chance bit
  };

  /// `capacity` = max resident entries (>= 1).
  explicit CanonicalCache(std::size_t capacity);
  ~CanonicalCache();
  CanonicalCache(const CanonicalCache&) = delete;
  CanonicalCache& operator=(const CanonicalCache&) = delete;

  /// Lock-free probe.  On a hit, runs `fn(const Entry&)` while the
  /// epoch pin is held (the entry and its memo stay valid for the
  /// duration) and returns true; on a miss returns false.  `fn` must
  /// not re-enter the cache's write side.
  template <typename Fn>
  bool with_entry(const CacheKey& key, Fn&& fn) {
    Stripe& st = stripe_for(key);
    const EpochDomain::Guard guard = epoch_.pin();
    const Table* table = st.table.load(std::memory_order_acquire);
    const std::size_t h = CacheKeyHash{}(key);
    std::size_t idx = h & table->mask;
    for (std::size_t i = 0; i <= table->mask;
         ++i, idx = (idx + 1) & table->mask) {
      Entry* e = table->slots[idx].load(std::memory_order_acquire);
      if (e == nullptr) break;
      if (e == tombstone()) continue;
      if (e->key() == key) {
        if (e->ref_.load(std::memory_order_relaxed) == 0) {
          e->ref_.store(1, std::memory_order_relaxed);
        }
        st.hits.fetch_add(1, std::memory_order_relaxed);
        fn(static_cast<const Entry&>(*e));
        return true;
      }
    }
    st.misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Compatibility probe: returns a shared_ptr snapshot (usable past
  /// any concurrent eviction) or nullptr on miss.
  [[nodiscard]] std::shared_ptr<const CachedEmbedding> lookup(
      const CacheKey& key);

  /// Inserts (or replaces) an entry, evicting the second-chance
  /// victim when the stripe is at capacity.  `memo`, when non-null,
  /// pre-publishes the entry's encoded-body memo before the entry is
  /// visible to readers — checkpoint restore uses it to bring back
  /// memoized response prefixes so a warm restart's first hit is as
  /// fast (and byte-identical) as the pre-restart server's.
  void insert(const CacheKey& key, CachedEmbedding value,
              const std::string* memo = nullptr);

  /// Visits every resident entry under the owning stripe's writer
  /// lock, oldest-first within each stripe (the second-chance queue
  /// order, so a checkpoint restored by replaying insertions in visit
  /// order reproduces each stripe's eviction order).  `fn` is called
  /// as fn(key, value, memo) with memo nullptr when no response body
  /// has been memoized; it must not re-enter the cache.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const auto& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe->mu);
      for (const Entry* e : stripe->fifo) {
        fn(e->key(), e->value(), e->encoded_body());
      }
    }
  }

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] Counters counters() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Drops every resident entry (each counted as an eviction).  Used
  /// by fault injection to force mid-run cold-cache behaviour; live
  /// shared_ptr snapshots held by readers stay valid, and epoch-
  /// pinned probes in flight finish against the retired table.
  void clear();

  /// Test hook: drives the epoch domain until everything retired
  /// before the call has been freed.
  void synchronize_epochs() { epoch_.synchronize(); }

 private:
  // Slot arrays are published as immutable Table objects so a rebuild
  // (tombstone compaction) can swap in a fresh array and retire the
  // old one through the epoch domain while readers still probe it.
  struct Table {
    explicit Table(std::size_t n)
        : mask(n - 1), slots(new std::atomic<Entry*>[n]()) {}
    const std::size_t mask;
    const std::unique_ptr<std::atomic<Entry*>[]> slots;
  };

  struct alignas(64) Stripe {
    mutable std::mutex mu;  // writers (and the checkpoint walk)
    std::atomic<Table*> table{nullptr};
    std::deque<Entry*> fifo;  // second-chance order, front = oldest
    std::size_t tombstones = 0;
    std::size_t cap = 0;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> insertions{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> live{0};
  };

  static Entry* tombstone() {
    static char marker;
    return reinterpret_cast<Entry*>(&marker);
  }

  Stripe& stripe_for(const CacheKey& key) {
    return *stripes_[(CacheKeyHash{}(key) >> 48) % stripes_.size()];
  }

  void evict_one_locked(Stripe& st, Table& table);
  void unlink_locked(Stripe& st, Table& table, const Entry* victim);
  void maybe_rebuild_locked(Stripe& st);

  const std::size_t capacity_;
  EpochDomain epoch_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace xt
