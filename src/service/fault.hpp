// Deterministic fault injection for the embedding service.
//
// A FaultPlan names, by 1-based *submit sequence number*, the requests
// that must be forced down each failure path:
//
//   reject_submit       kRejectedQueueFull at submit(), regardless of
//                       actual queue depth;
//   expire_request      kExpiredDeadline when a shard dequeues the
//                       request, regardless of wall-clock deadline;
//   fail_embed          a worker exception while serving the request's
//                       group (answered kFailed through the same catch
//                       path a real embedder exception takes);
//   evict_cache_before  the canonical cache is cleared immediately
//                       before the request's group is served, forcing
//                       mid-batch cold-cache behaviour.
//
// Submit sequence numbers are assigned in submit() call order, so a
// single-threaded test driving submits one by one gets a fully
// deterministic schedule with no sleeps: the accounting identity
// submitted == completed + rejected + expired + failed is then exact,
// terminal state by terminal state.
#pragma once

#include <cstdint>
#include <set>

#include "util/rng.hpp"

namespace xt {

struct FaultPlan {
  std::set<std::uint64_t> reject_submit;
  std::set<std::uint64_t> expire_request;
  std::set<std::uint64_t> fail_embed;
  std::set<std::uint64_t> evict_cache_before;

  [[nodiscard]] bool empty() const {
    return reject_submit.empty() && expire_request.empty() &&
           fail_embed.empty() && evict_cache_before.empty();
  }

  /// Seeded random plan over `submits` requests: each submit draws one
  /// fault with probability `p` (the fault kind is part of the same
  /// draw, so the plan is a pure function of the seed).
  [[nodiscard]] static FaultPlan chaos(std::uint64_t seed,
                                       std::uint64_t submits, double p) {
    FaultPlan plan;
    std::uint64_t state = seed;
    for (std::uint64_t seq = 1; seq <= submits; ++seq) {
      const std::uint64_t z = splitmix64(state);
      const double u =
          static_cast<double>(z >> 11) * 0x1.0p-53;  // uniform [0, 1)
      if (u >= p) continue;
      switch ((z >> 1) & 3U) {
        case 0: plan.reject_submit.insert(seq); break;
        case 1: plan.expire_request.insert(seq); break;
        case 2: plan.fail_embed.insert(seq); break;
        default: plan.evict_cache_before.insert(seq); break;
      }
    }
    return plan;
  }
};

}  // namespace xt
