// Canonical-tree embedding cache: an LRU keyed by the AHU-style
// canonical digest of the guest's shape (btree/canonical.hpp), so any
// two isomorphic guests — real workloads (divide & conquer recursion
// trees, data-arrangement instances) produce floods of structurally
// identical trees — share one embedding.
//
// Entries store the host assignment indexed by *canonical* node id
// plus the verified metrics; a hit is remapped onto the requesting
// tree's ids through its own canonical relabelling, an O(n) copy
// instead of an embed.  Values are handed out as shared_ptr snapshots
// so a reader keeps its entry alive across a concurrent eviction.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "btree/binary_tree.hpp"
#include "graph/graph.hpp"
#include "service/request.hpp"

namespace xt {

struct CacheKey {
  std::uint64_t canonical_hash = 0;
  NodeId num_nodes = 0;
  Theorem theorem = Theorem::kT1;
  NodeId load = 16;

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct CacheKeyHash {
  [[nodiscard]] std::size_t operator()(const CacheKey& k) const {
    std::uint64_t h = k.canonical_hash;
    h ^= (static_cast<std::uint64_t>(k.num_nodes) << 8) +
         (static_cast<std::uint64_t>(k.theorem) << 2) +
         static_cast<std::uint64_t>(k.load) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// One cached embedding, in canonical-id space.
struct CachedEmbedding {
  std::vector<VertexId> canonical_assign;  // canonical id -> host vertex
  VertexId host_vertices = 0;
  std::int32_t host_height = 0;  // X-tree height or cube dimension
  std::int32_t dilation = 0;
  NodeId load_factor = 0;
};

/// Thread-safe LRU with hit / miss / insertion / eviction counters.
class CanonicalCache {
 public:
  /// `capacity` = max resident entries (>= 1).
  explicit CanonicalCache(std::size_t capacity);

  /// Returns the entry (refreshing its recency) or nullptr on miss.
  [[nodiscard]] std::shared_ptr<const CachedEmbedding> lookup(
      const CacheKey& key);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry when at capacity.
  void insert(const CacheKey& key, CachedEmbedding value);

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };
  [[nodiscard]] Counters counters() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Drops every resident entry (each counted as an eviction).  Used
  /// by fault injection to force mid-run cold-cache behaviour; live
  /// shared_ptr snapshots held by readers stay valid.
  void clear();

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const CachedEmbedding> value;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> map_;
  Counters counters_;
};

}  // namespace xt
