#include "service/service.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/hypercube_embedding.hpp"
#include "core/injective_lift.hpp"
#include "embedding/metrics.hpp"
#include "topology/hypercube.hpp"
#include "topology/xtree.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace xt {

namespace {

double ms_between(ServiceClock::time_point a, ServiceClock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

unsigned default_shards() {
  const unsigned hw = std::thread::hardware_concurrency();
  // Each shard fans its dilation audits into the shared ThreadPool, so
  // a few shards already keep the machine busy.
  return std::clamp(hw / 4, 1u, 4u);
}

}  // namespace

std::string ServiceStats::to_json() const {
  const double hit_rate =
      cache_hits + cache_misses == 0
          ? 0.0
          : static_cast<double>(cache_hits) /
                static_cast<double>(cache_hits + cache_misses);
  std::ostringstream os;
  os << "{\n"
     << "  \"submitted\": " << submitted << ",\n"
     << "  \"completed\": " << completed << ",\n"
     << "  \"rejected_full\": " << rejected_full << ",\n"
     << "  \"rejected_bulk\": " << rejected_bulk << ",\n"
     << "  \"rejected_shutdown\": " << rejected_shutdown << ",\n"
     << "  \"expired\": " << expired << ",\n"
     << "  \"failed\": " << failed << ",\n"
     << "  \"cache_hits\": " << cache_hits << ",\n"
     << "  \"cache_misses\": " << cache_misses << ",\n"
     << "  \"cache_hit_rate\": " << hit_rate << ",\n"
     << "  \"cache_insertions\": " << cache_insertions << ",\n"
     << "  \"cache_evictions\": " << cache_evictions << ",\n"
     << "  \"cache_size\": " << cache_size << ",\n"
     << "  \"coalesced\": " << coalesced << ",\n"
     << "  \"queue_depth\": " << queue_depth << ",\n"
     << "  \"queue_capacity\": " << queue_capacity << ",\n"
     << "  \"pool_queue_depth\": " << pool_queue_depth << ",\n"
     << "  \"num_shards\": " << num_shards << ",\n"
     << "  \"p50_ms\": " << p50_ms << ",\n"
     << "  \"p99_ms\": " << p99_ms << ",\n"
     << "  \"mean_ms\": " << mean_ms << ",\n"
     << "  \"max_ms\": " << max_ms << ",\n"
     << "  \"uptime_s\": " << uptime_s << ",\n"
     << "  \"throughput_rps\": " << throughput_rps << "\n"
     << "}";
  return os.str();
}

EmbeddingService::EmbeddingService(ServiceConfig config)
    : config_(std::move(config)), start_(ServiceClock::now()) {
  XT_CHECK(config_.queue_capacity >= 1);
  XT_CHECK(config_.load >= 1);
  if (config_.num_shards == 0) config_.num_shards = default_shards();
  if (config_.intra_embed_parallelism <= 0) {
    // Auto: divide the shared pool (its threads plus the borrowing
    // shard itself) evenly among the shards, so all shards embedding
    // at once ask for about one machine's worth of parallelism total.
    const unsigned slots = ThreadPool::shared().num_threads() + 1;
    config_.intra_embed_parallelism = static_cast<int>(
        std::max(1u, slots / config_.num_shards));
  }
  if (config_.cache_capacity > 0)
    cache_ = std::make_unique<CanonicalCache>(config_.cache_capacity);
  paused_ = config_.start_paused;
  shards_.reserve(config_.num_shards);
  for (unsigned i = 0; i < config_.num_shards; ++i)
    shards_.emplace_back([this] { shard_loop(); });
}

EmbeddingService::~EmbeddingService() { shutdown(/*drain=*/true); }

std::future<EmbedResponse> EmbeddingService::submit(EmbedRequest request) {
  auto promise = std::make_shared<std::promise<EmbedResponse>>();
  auto future = promise->get_future();
  submit(std::move(request), [promise](EmbedResponse r) {
    promise->set_value(std::move(r));
  });
  return future;
}

void EmbeddingService::submit(EmbedRequest request,
                              std::function<void(EmbedResponse)> on_done) {
  XT_CHECK_MSG(!request.tree.empty(), "cannot embed an empty guest");
  XT_CHECK_MSG(on_done != nullptr, "submit needs a completion callback");
  const auto now = ServiceClock::now();

  Pending p;
  p.theorem = request.theorem;
  p.priority = request.priority;
  p.deadline = request.deadline;
  p.enqueued = now;
  // The canonical form keys both the cache and the batcher; computing
  // it on the submitting thread keeps shard critical paths short.
  if (cache_ != nullptr || config_.enable_batching)
    p.canon = canonical_form(request.tree);
  p.tree = std::move(request.tree);
  p.on_done = std::move(on_done);

  // Submit-time rejections are answered after mu_ is released so a
  // callback can re-enter the service (or take its own locks) safely.
  std::optional<EmbedResponse> immediate;
  {
    std::lock_guard<std::mutex> lock(mu_);
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      p.submit_seq = ++counters_.submitted;
    }
    const bool forced_reject =
        !stopping_ && config_.fault_plan.reject_submit.count(p.submit_seq) > 0;
    // Bulk admission: a bulk submit sees a queue shrunk by the
    // configured reserve, so interactive traffic always has headroom.
    const std::size_t admit_capacity =
        request.bulk && config_.bulk_queue_reserve < config_.queue_capacity
            ? config_.queue_capacity - config_.bulk_queue_reserve
            : (request.bulk ? 0 : config_.queue_capacity);
    if (stopping_) {
      EmbedResponse r;
      r.status = RequestStatus::kRejectedShutdown;
      r.reason = "service is shutting down";
      {
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++counters_.rejected_shutdown;
      }
      immediate = std::move(r);
    } else if (forced_reject || queue_.size() >= admit_capacity) {
      // Explicit backpressure: the caller learns exactly why and how
      // full the service is; nothing is dropped on the floor.
      EmbedResponse r;
      r.status = RequestStatus::kRejectedQueueFull;
      std::ostringstream os;
      const bool bulk_reject = !forced_reject && request.bulk &&
                               queue_.size() < config_.queue_capacity;
      if (forced_reject) {
        os << "queue full (fault injection: forced rejection of submit "
           << p.submit_seq << ")";
      } else if (bulk_reject) {
        os << "queue full for bulk admission (depth " << queue_.size()
           << ", bulk capacity " << admit_capacity << " = capacity "
           << config_.queue_capacity << " - reserve "
           << config_.bulk_queue_reserve << ")";
      } else {
        os << "queue full (depth " << queue_.size() << ", capacity "
           << config_.queue_capacity << ")";
      }
      r.reason = os.str();
      {
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++counters_.rejected_full;
        if (request.bulk) ++counters_.rejected_bulk;
      }
      immediate = std::move(r);
    } else {
      // Descending priority, FIFO within one priority.
      auto it = queue_.begin();
      while (it != queue_.end() && it->priority >= p.priority) ++it;
      queue_.insert(it, std::move(p));
    }
  }
  if (immediate.has_value()) {
    if (immediate->status == RequestStatus::kRejectedQueueFull)
      diag("[service] reject: " + immediate->reason);
    p.on_done(std::move(*immediate));
    return;
  }
  cv_.notify_one();
}

void EmbeddingService::pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void EmbeddingService::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void EmbeddingService::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      drain_ = drain;
      paused_ = false;
    }
  }
  cv_.notify_all();
  for (auto& t : shards_) {
    if (t.joinable()) t.join();
  }
}

void EmbeddingService::shard_loop() {
  XTreeEmbedder::EmbedArena arena;  // shard-private allocator state
  for (;;) {
    std::vector<Pending> group;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty()) return;  // stopping_ and nothing left
      if (stopping_ && !drain_) {
        // Abort-style shutdown: answer everything explicitly.
        std::list<Pending> left;
        left.swap(queue_);
        lock.unlock();
        for (Pending& p : left) {
          EmbedResponse r;
          r.status = RequestStatus::kRejectedShutdown;
          r.reason = "service shut down before the request was served";
          respond(p, std::move(r));
        }
        return;
      }
      group.push_back(std::move(queue_.front()));
      queue_.pop_front();
      if (config_.enable_batching) {
        // Claim every queued request with the same shape key: one
        // embed will answer the whole group.  (By value — push_back
        // below reallocates group, so a reference would dangle.)
        const Theorem lead_theorem = group.front().theorem;
        const std::uint64_t lead_hash = group.front().canon.hash;
        const NodeId lead_nodes = group.front().tree.num_nodes();
        for (auto it = queue_.begin(); it != queue_.end();) {
          if (it->theorem == lead_theorem && it->canon.hash == lead_hash &&
              it->tree.num_nodes() == lead_nodes) {
            group.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    process_group(std::move(group), arena);
  }
}

void EmbeddingService::process_group(std::vector<Pending> group,
                                     XTreeEmbedder::EmbedArena& arena) {
  const auto now = ServiceClock::now();

  // Deadline admission: expired requests are answered, not embedded.
  // A planned expiry (fault injection) takes the identical path with
  // no wall-clock involvement.
  std::vector<Pending> live;
  live.reserve(group.size());
  for (Pending& p : group) {
    const bool forced_expire =
        config_.fault_plan.expire_request.count(p.submit_seq) > 0;
    if (forced_expire ||
        (p.deadline != ServiceClock::time_point{} && p.deadline < now)) {
      EmbedResponse r;
      r.status = RequestStatus::kExpiredDeadline;
      std::ostringstream os;
      if (forced_expire) {
        os << "deadline expired (fault injection: forced expiry of submit "
           << p.submit_seq << ")";
      } else {
        os << "deadline expired "
           << ms_between(p.deadline, now) << " ms before service";
      }
      r.reason = os.str();
      diag("[service] expired request (queued " +
           std::to_string(ms_between(p.enqueued, now)) + " ms)");
      respond(p, std::move(r));
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  const Pending& lead = live.front();
  const CacheKey key{lead.canon.hash, lead.tree.num_nodes(), lead.theorem,
                     config_.load};

  // Fault injection ahead of the lookup: a planned eviction empties
  // the cache mid-run, and a planned worker exception bypasses the
  // cache so the failure always takes the embed path below.
  std::uint64_t planned_fail_seq = 0;
  for (const Pending& p : live) {
    if (config_.fault_plan.fail_embed.count(p.submit_seq) > 0)
      planned_fail_seq = p.submit_seq;
    if (cache_ != nullptr &&
        config_.fault_plan.evict_cache_before.count(p.submit_seq) > 0) {
      cache_->clear();
      diag("[service] fault injection: cache cleared before submit " +
           std::to_string(p.submit_seq));
    }
  }

  // Serve the whole group from one cached (or freshly computed)
  // canonical assignment.
  std::shared_ptr<const CachedEmbedding> entry =
      cache_ != nullptr && planned_fail_seq == 0 ? cache_->lookup(key)
                                                 : nullptr;
  bool from_cache = entry != nullptr;

  if (!from_cache) {
    // With a canonical form in hand, embed the *canonical* tree: its
    // preorder ids stream the SoA arrays cache-linearly through the
    // embedder, and the computed assignment is indexed by canonical id
    // already — it IS the cache entry, and the leader is served by the
    // same O(n) remap as its batch peers.  Without one (cache and
    // batching both disabled, so the group is this one request) the
    // guest is embedded directly and answered below.
    const bool have_canon = !lead.canon.to_canonical.empty();
    Computed computed;
    try {
      XT_CHECK_MSG(planned_fail_seq == 0,
                   "fault injection: forced worker exception (submit "
                       << planned_fail_seq << ")");
      computed = have_canon
                     ? compute(canonical_tree(lead.tree, lead.canon),
                               lead.theorem, arena)
                     : compute(lead.tree, lead.theorem, arena);
    } catch (const std::exception& e) {
      for (Pending& p : live) {
        EmbedResponse r;
        r.status = RequestStatus::kFailed;
        r.reason = e.what();
        respond(p, std::move(r));
      }
      diag(std::string("[service] embed failed: ") + e.what());
      return;
    }
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++counters_.cache_misses;
    }
    if (!have_canon) {
      EmbedResponse r;
      r.status = RequestStatus::kOk;
      r.embedding = std::move(computed.embedding);
      r.host_height = computed.host_height;
      r.dilation = computed.dilation;
      r.load_factor = computed.load_factor;
      respond(live.front(), std::move(r));
      return;
    }
    auto fresh = std::make_shared<CachedEmbedding>();
    const auto n = static_cast<std::size_t>(lead.tree.num_nodes());
    fresh->canonical_assign.resize(n);
    for (std::size_t c = 0; c < n; ++c) {
      fresh->canonical_assign[c] =
          computed.embedding.host_of(static_cast<NodeId>(c));
    }
    fresh->host_vertices = computed.host_vertices;
    fresh->host_height = computed.host_height;
    fresh->dilation = computed.dilation;
    fresh->load_factor = computed.load_factor;
    if (cache_ != nullptr) cache_->insert(key, *fresh);
    entry = std::move(fresh);
  }

  for (std::size_t i = 0; i < live.size(); ++i) {
    Pending& p = live[i];
    EmbedResponse r;
    r.status = RequestStatus::kOk;
    r.host_height = entry->host_height;
    r.dilation = entry->dilation;
    r.load_factor = entry->load_factor;
    r.cache_hit = from_cache;
    r.coalesced = !from_cache && i > 0;  // the miss leader is neither
    Embedding emb(p.tree.num_nodes(), entry->host_vertices);
    for (NodeId v = 0; v < p.tree.num_nodes(); ++v) {
      emb.place(v, entry->canonical_assign[static_cast<std::size_t>(
                       p.canon.to_canonical[static_cast<std::size_t>(v)])]);
    }
    if (config_.verify_hits) {
      try {
        validate_embedding(p.tree, emb, entry->load_factor);
      } catch (const std::exception& e) {
        r.status = RequestStatus::kFailed;
        r.reason = std::string("cached embedding failed verification: ") +
                   e.what();
        r.embedding.reset();
        respond(p, std::move(r));
        continue;
      }
    }
    r.embedding = std::move(emb);
    respond(p, std::move(r));
  }
}

EmbeddingService::Computed EmbeddingService::compute(
    const BinaryTree& tree, Theorem theorem,
    XTreeEmbedder::EmbedArena& arena) const {
  Computed out;
  switch (theorem) {
    case Theorem::kT1: {
      XTreeEmbedder::Options o;
      o.load = config_.load;
      o.intra_embed_parallelism = config_.intra_embed_parallelism;
      auto res = XTreeEmbedder::embed(tree, o, arena);
      const XTree host(res.stats.height);
      const auto prof = dilation_profile_xtree(tree, res.embedding, host);
      out.host_vertices = host.num_vertices();
      out.host_height = res.stats.height;
      out.dilation = prof.report.max;
      out.load_factor = res.embedding.load_factor();
      out.embedding = std::move(res.embedding);
      break;
    }
    case Theorem::kT2: {
      XTreeEmbedder::Options o;
      o.load = 16;  // the lift spends exactly four levels on 16 slots
      o.intra_embed_parallelism = config_.intra_embed_parallelism;
      auto res = XTreeEmbedder::embed(tree, o, arena);
      const XTree base(res.stats.height);
      auto lift = lift_injective(tree, res.embedding, base);
      const XTree host(lift.host_height);
      const auto prof = dilation_profile_xtree(tree, lift.embedding, host);
      out.host_vertices = host.num_vertices();
      out.host_height = lift.host_height;
      out.dilation = prof.report.max;
      out.load_factor = 1;
      out.embedding = std::move(lift.embedding);
      break;
    }
    case Theorem::kT3: {
      auto hc = embed_hypercube_load16(tree);
      const Hypercube host(hc.dimension);
      const auto rep = dilation_hypercube(tree, hc.embedding, host);
      out.host_vertices = host.num_vertices();
      out.host_height = hc.dimension;
      out.dilation = rep.max;
      out.load_factor = hc.embedding.load_factor();
      out.embedding = std::move(hc.embedding);
      break;
    }
  }
  return out;
}

void EmbeddingService::respond(Pending& p, EmbedResponse response) {
  const auto now = ServiceClock::now();
  response.latency_ms = ms_between(p.enqueued, now);
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    response.served_seq = ++served_seq_;
    switch (response.status) {
      case RequestStatus::kOk:
        ++counters_.completed;
        latency_.add(response.latency_ms);
        if (response.cache_hit) ++counters_.cache_hits;
        if (response.coalesced) ++counters_.coalesced;
        break;
      case RequestStatus::kExpiredDeadline: ++counters_.expired; break;
      case RequestStatus::kRejectedShutdown:
        ++counters_.rejected_shutdown;
        break;
      case RequestStatus::kFailed: ++counters_.failed; break;
      case RequestStatus::kRejectedQueueFull:
        ++counters_.rejected_full;  // not reachable from a shard
        break;
    }
  }
  p.on_done(std::move(response));
}

ServiceStats EmbeddingService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    out = counters_;
    out.p50_ms = latency_.percentile(50.0);
    out.p99_ms = latency_.percentile(99.0);
    out.mean_ms = latency_.mean();
    out.max_ms = latency_.max();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.queue_depth = queue_.size();
  }
  out.queue_capacity = config_.queue_capacity;
  out.num_shards = config_.num_shards;
  out.pool_queue_depth = ThreadPool::shared().queue_depth();
  if (cache_ != nullptr) {
    const auto c = cache_->counters();
    out.cache_insertions = c.insertions;
    out.cache_evictions = c.evictions;
    out.cache_size = cache_->size();
  }
  out.uptime_s =
      std::chrono::duration<double>(ServiceClock::now() - start_).count();
  out.throughput_rps =
      out.uptime_s > 0.0 ? static_cast<double>(out.completed) / out.uptime_s
                         : 0.0;
  return out;
}

void EmbeddingService::diag(const std::string& line) const {
  if (config_.diagnostic_sink) config_.diagnostic_sink(line);
}

}  // namespace xt
