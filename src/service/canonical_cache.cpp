#include "service/canonical_cache.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace xt {

namespace {

const char* const kTheoremNames[] = {"T1", "T2", "T3"};

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* theorem_name(Theorem t) {
  return kTheoremNames[static_cast<int>(t)];
}

std::optional<Theorem> parse_theorem(const std::string& name) {
  if (name == "T1" || name == "t1") return Theorem::kT1;
  if (name == "T2" || name == "t2") return Theorem::kT2;
  if (name == "T3" || name == "t3") return Theorem::kT3;
  return std::nullopt;
}

const char* status_name(RequestStatus s) {
  switch (s) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kRejectedQueueFull: return "rejected_queue_full";
    case RequestStatus::kRejectedShutdown: return "rejected_shutdown";
    case RequestStatus::kExpiredDeadline: return "expired_deadline";
    case RequestStatus::kFailed: return "failed";
  }
  return "unknown";
}

CanonicalCache::CanonicalCache(std::size_t capacity) : capacity_(capacity) {
  XT_CHECK(capacity >= 1);
  // Small caches get one stripe so the global capacity (and the
  // second-chance order the unit tests pin) is exact; large caches
  // trade that for 8-way write concurrency, each stripe enforcing its
  // share of the budget.
  const std::size_t num_stripes = capacity >= 256 ? 8 : 1;
  stripes_.reserve(num_stripes);
  for (std::size_t i = 0; i < num_stripes; ++i) {
    auto stripe = std::make_unique<Stripe>();
    stripe->cap = capacity / num_stripes + (i < capacity % num_stripes ? 1 : 0);
    // Load factor <= 0.5 against live entries; rebuilds only compact
    // tombstones, the array size never changes.
    stripe->table.store(new Table(next_pow2(std::max<std::size_t>(
                            8, stripe->cap * 2))),
                        std::memory_order_release);
    stripes_.push_back(std::move(stripe));
  }
}

CanonicalCache::~CanonicalCache() {
  // Contract: no concurrent readers or writers at destruction.  Free
  // live entries and tables here; the epoch domain's destructor then
  // drains whatever was already retired.
  for (auto& stripe : stripes_) {
    Table* table = stripe->table.load(std::memory_order_relaxed);
    for (Entry* e : stripe->fifo) delete e;
    delete table;
  }
}

std::shared_ptr<const CachedEmbedding> CanonicalCache::lookup(
    const CacheKey& key) {
  std::shared_ptr<const CachedEmbedding> out;
  with_entry(key, [&out](const Entry& e) { out = e.value_ptr(); });
  return out;
}

void CanonicalCache::insert(const CacheKey& key, CachedEmbedding value,
                            const std::string* memo) {
  auto shared = std::make_shared<const CachedEmbedding>(std::move(value));
  Stripe& st = stripe_for(key);
  std::lock_guard<std::mutex> lock(st.mu);
  st.insertions.fetch_add(1, std::memory_order_relaxed);
  Table& table = *st.table.load(std::memory_order_relaxed);

  const std::size_t h = CacheKeyHash{}(key);
  std::size_t idx = h & table.mask;
  std::size_t reuse = table.mask + 1;  // first tombstone on the path
  for (std::size_t i = 0; i <= table.mask;
       ++i, idx = (idx + 1) & table.mask) {
    Entry* e = table.slots[idx].load(std::memory_order_relaxed);
    if (e == nullptr) break;
    if (e == tombstone()) {
      if (reuse > table.mask) reuse = idx;
      continue;
    }
    if (e->key() == key) {
      // Replace in place: publish a fresh entry (new value, fresh
      // memo), keep the queue position but grant a second chance,
      // retire the old entry — readers pinned on it finish safely.
      Entry* fresh = new Entry(key, std::move(shared));
      if (memo != nullptr) fresh->publish_encoded_body(*memo);
      fresh->ref_.store(1, std::memory_order_relaxed);
      const auto it = std::find(st.fifo.begin(), st.fifo.end(), e);
      XT_CHECK(it != st.fifo.end());
      *it = fresh;
      table.slots[idx].store(fresh, std::memory_order_release);
      epoch_.retire_object(e);
      return;
    }
  }

  if (st.fifo.size() >= st.cap) evict_one_locked(st, table);

  Entry* fresh = new Entry(key, std::move(shared));
  if (memo != nullptr) fresh->publish_encoded_body(*memo);
  std::size_t target = reuse;
  if (target > table.mask) {
    // No tombstone to reuse: take the first empty slot.  The eviction
    // above guarantees one exists (load factor <= 0.5).
    target = h & table.mask;
    while (true) {
      Entry* e = table.slots[target].load(std::memory_order_relaxed);
      if (e == nullptr || e == tombstone()) break;
      target = (target + 1) & table.mask;
    }
  }
  if (table.slots[target].load(std::memory_order_relaxed) == tombstone()) {
    XT_CHECK(st.tombstones > 0);
    --st.tombstones;
  }
  table.slots[target].store(fresh, std::memory_order_release);
  st.fifo.push_back(fresh);
  st.live.store(st.fifo.size(), std::memory_order_relaxed);
  maybe_rebuild_locked(st);
}

void CanonicalCache::evict_one_locked(Stripe& st, Table& table) {
  // Second chance: a ref'd entry gets re-queued once with its bit
  // cleared; terminates within 2n pops.
  while (true) {
    Entry* victim = st.fifo.front();
    st.fifo.pop_front();
    if (victim->ref_.exchange(0, std::memory_order_relaxed) != 0) {
      st.fifo.push_back(victim);
      continue;
    }
    unlink_locked(st, table, victim);
    st.evictions.fetch_add(1, std::memory_order_relaxed);
    st.live.store(st.fifo.size(), std::memory_order_relaxed);
    epoch_.retire_object(victim);
    return;
  }
}

void CanonicalCache::unlink_locked(Stripe& st, Table& table,
                                   const Entry* victim) {
  std::size_t idx = CacheKeyHash{}(victim->key()) & table.mask;
  for (std::size_t i = 0; i <= table.mask;
       ++i, idx = (idx + 1) & table.mask) {
    Entry* e = table.slots[idx].load(std::memory_order_relaxed);
    XT_CHECK(e != nullptr);  // the victim is resident by construction
    if (e == victim) {
      table.slots[idx].store(tombstone(), std::memory_order_release);
      ++st.tombstones;
      return;
    }
  }
  XT_CHECK(false);
}

void CanonicalCache::maybe_rebuild_locked(Stripe& st) {
  // Tombstones lengthen every probe that crosses them; once they
  // outnumber the stripe's capacity, compact into a fresh array and
  // retire the old one (entries are shared, only the Table dies).
  if (st.tombstones <= st.cap) return;
  Table* old_table = st.table.load(std::memory_order_relaxed);
  auto* fresh = new Table(old_table->mask + 1);
  for (Entry* e : st.fifo) {
    std::size_t idx = CacheKeyHash{}(e->key()) & fresh->mask;
    while (fresh->slots[idx].load(std::memory_order_relaxed) != nullptr) {
      idx = (idx + 1) & fresh->mask;
    }
    fresh->slots[idx].store(e, std::memory_order_relaxed);
  }
  st.tombstones = 0;
  st.table.store(fresh, std::memory_order_release);
  epoch_.retire_object(old_table);
}

void CanonicalCache::clear() {
  for (auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    Table* old_table = stripe->table.load(std::memory_order_relaxed);
    stripe->evictions.fetch_add(stripe->fifo.size(),
                                std::memory_order_relaxed);
    for (Entry* e : stripe->fifo) epoch_.retire_object(e);
    stripe->fifo.clear();
    stripe->tombstones = 0;
    stripe->live.store(0, std::memory_order_relaxed);
    stripe->table.store(new Table(old_table->mask + 1),
                        std::memory_order_release);
    epoch_.retire_object(old_table);
  }
}

CanonicalCache::Counters CanonicalCache::counters() const {
  Counters out;
  for (const auto& stripe : stripes_) {
    out.hits += stripe->hits.load(std::memory_order_relaxed);
    out.misses += stripe->misses.load(std::memory_order_relaxed);
    out.insertions += stripe->insertions.load(std::memory_order_relaxed);
    out.evictions += stripe->evictions.load(std::memory_order_relaxed);
  }
  return out;
}

std::size_t CanonicalCache::size() const {
  std::size_t n = 0;
  for (const auto& stripe : stripes_) {
    n += stripe->live.load(std::memory_order_relaxed);
  }
  return n;
}

}  // namespace xt
