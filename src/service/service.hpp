// The embedding service engine: an in-process server around the
// Theorem 1-3 embedders.
//
//   submit() ──> bounded priority queue ──> shard workers ──> futures
//                     │                         │
//                     │ full? explicit          ├─ deadline check
//                     │ kRejectedQueueFull      ├─ canonical-cache lookup
//                     ▼                         ├─ same-shape batch claim
//               (never drops)                   └─ embed + verify + fill
//
// Structure (one PR 1 building block per stage):
//   * Request queue — bounded std::list ordered by priority (FIFO
//     within a priority).  A full queue rejects at submit() with an
//     explicit reason; nothing is ever silently dropped: every
//     submitted request is answered exactly once.
//   * Canonical-tree cache — LRU keyed by the AHU canonical digest
//     (btree/canonical.hpp) so isomorphic guests share one embedding;
//     hits are O(n) remaps.
//   * Sharded workers — `num_shards` threads, each owning its own
//     XTreeEmbedder::EmbedArena (SplitScratch + recycled pieces), so
//     concurrent embeds never contend on allocator state.  The O(n)
//     dilation audit of each embed fans into the shared PR 1
//     ThreadPool via dilation_profile_xtree.
//   * Batcher — a shard dequeuing a request also claims every queued
//     request with the same (theorem, canonical hash, n): one embed,
//     N responses, N-1 counted as coalesced.
//   * Stats surface — ServiceStats (queue depth, p50/p99 latency,
//     throughput, hit rate, rejections) as a struct or JSON; notable
//     events (rejections, failures) stream to ServiceConfig::
//     diagnostic_sink in the embedder's sink format.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "btree/canonical.hpp"
#include "core/xtree_embedder.hpp"
#include "service/canonical_cache.hpp"
#include "service/fault.hpp"
#include "service/request.hpp"
#include "util/stats.hpp"

namespace xt {

struct ServiceConfig {
  /// Max queued (admitted, not yet served) requests; submit() beyond
  /// this returns kRejectedQueueFull.
  std::size_t queue_capacity = 256;
  /// Worker shards (embedding threads).  0 selects a small default
  /// based on hardware concurrency.
  unsigned num_shards = 0;
  /// Canonical-cache entries; 0 disables the cache.
  std::size_t cache_capacity = 1024;
  /// Coalesce same-shape queued requests into one embed.
  bool enable_batching = true;
  /// Re-validate every cache-served embedding (O(n)); off by default —
  /// the digest is 64-bit and entries store verified metrics.
  bool verify_hits = false;
  /// Guest nodes per host vertex for T1 (Theorems 2/3 fix 16).
  NodeId load = 16;
  /// Per-embed parallel fan-out (XTreeEmbedder::Options::
  /// intra_embed_parallelism): how many chunks one cache-miss embed's
  /// SPLIT sweeps may spawn on the shared ThreadPool.  1 keeps each
  /// embed on its shard thread (the PR 2 behaviour); 0 divides the
  /// pool among the shards — max(1, (pool_threads + 1) / num_shards)
  /// — so concurrent misses share the machine without oversubscribing.
  /// Placements are bit-identical for every setting.
  int intra_embed_parallelism = 0;
  /// Start with workers paused; resume() begins service.  Gives tests
  /// and trace replays a deterministic queue state.
  bool start_paused = false;
  /// Receives one line per notable event (rejection, expiry, failure,
  /// shutdown summary), same contract as XTreeEmbedder's sink.
  std::function<void(const std::string&)> diagnostic_sink;
  /// Deterministic fault injection (service/fault.hpp): forces named
  /// submits down each terminal failure path.  Empty = no faults.
  FaultPlan fault_plan;
  /// Queue slots reserved for non-bulk traffic: a submit with
  /// EmbedRequest::bulk set is rejected (kRejectedQueueFull, reason
  /// names bulk admission) once fewer than this many slots remain
  /// free, so a corpus drain rides behind live requests instead of
  /// monopolising the queue.  0 = bulk competes for every slot.
  std::size_t bulk_queue_reserve = 0;
};

/// Snapshot of the service counters (all values since construction).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;       // answered kOk
  std::uint64_t rejected_full = 0;   // backpressure at submit
  std::uint64_t rejected_bulk = 0;   // subset of rejected_full: bulk
                                     // submits refused by the
                                     // admission reserve
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t expired = 0;         // deadline passed in queue
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;      // responses served by remap
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_insertions = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t coalesced = 0;       // responses served by a batch peer
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t cache_size = 0;
  std::size_t pool_queue_depth = 0;  // shared ThreadPool gauge
  unsigned num_shards = 0;
  double p50_ms = 0.0;   // end-to-end latency of answered requests
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  double uptime_s = 0.0;
  double throughput_rps = 0.0;  // completed / uptime

  [[nodiscard]] std::string to_json() const;
};

class EmbeddingService {
 public:
  explicit EmbeddingService(ServiceConfig config = {});
  /// Drains the queue, then joins the shards.
  ~EmbeddingService();

  EmbeddingService(const EmbeddingService&) = delete;
  EmbeddingService& operator=(const EmbeddingService&) = delete;

  /// Submits a request.  Always returns a future that will hold
  /// exactly one response; on backpressure or shutdown the future is
  /// already ready with the rejection.
  std::future<EmbedResponse> submit(EmbedRequest request);

  /// Callback form, used by the network edge (src/net/): `on_done` is
  /// invoked exactly once with the response — on the submitting thread
  /// (after the service lock is released) for requests rejected at
  /// submit time, otherwise on the serving shard's thread.  The
  /// callback must not block; an event loop posts the response to its
  /// completion queue and returns.
  void submit(EmbedRequest request,
              std::function<void(EmbedResponse)> on_done);

  /// Pauses / resumes the shards (queued requests are retained; submit
  /// keeps admitting until the queue fills).
  void pause();
  void resume();

  /// Stops the service.  drain=true serves the queue first; false
  /// answers every queued request kRejectedShutdown.  Idempotent.
  void shutdown(bool drain = true);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::string stats_json() const { return stats().to_json(); }

  [[nodiscard]] const ServiceConfig& config() const { return config_; }

  /// The canonical cache, or nullptr when disabled.  The network edge
  /// probes it lock-free (epoch-pinned) to serve hits inline without
  /// submitting; the cache outlives every reader by construction (it
  /// is destroyed with the service, after the server stops).
  [[nodiscard]] CanonicalCache* canonical_cache() { return cache_.get(); }

 private:
  struct Pending {
    BinaryTree tree;
    Theorem theorem = Theorem::kT1;
    std::int32_t priority = 0;
    std::uint64_t submit_seq = 0;  // 1-based submit() order
    ServiceClock::time_point deadline{};
    ServiceClock::time_point enqueued{};
    CanonicalForm canon;
    std::function<void(EmbedResponse)> on_done;
  };

  struct Computed {
    Embedding embedding{0, 0};
    VertexId host_vertices = 0;
    std::int32_t host_height = 0;
    std::int32_t dilation = 0;
    NodeId load_factor = 0;
  };

  void shard_loop();
  void process_group(std::vector<Pending> group,
                     XTreeEmbedder::EmbedArena& arena);
  Computed compute(const BinaryTree& tree, Theorem theorem,
                   XTreeEmbedder::EmbedArena& arena) const;
  void respond(Pending& p, EmbedResponse response);
  void diag(const std::string& line) const;

  ServiceConfig config_;
  std::unique_ptr<CanonicalCache> cache_;  // null when disabled

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::list<Pending> queue_;  // descending priority, FIFO within
  bool paused_ = false;
  bool stopping_ = false;
  bool drain_ = true;
  std::vector<std::thread> shards_;

  mutable std::mutex stats_mu_;
  ServiceStats counters_;  // queue/latency fields filled on snapshot
  LatencyReservoir latency_;
  std::uint64_t served_seq_ = 0;
  ServiceClock::time_point start_;
};

}  // namespace xt
