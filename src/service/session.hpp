// Stateful tree hosting: named mutable guests served under a
// parallel-read / serial-write epoch scheme (ROADMAP item 1, the jump
// from stateless embed oracle to session workload).
//
//   mutate(id, ops) ──> bounded FIFO ──> ONE writer thread
//                         │                  │ applies ops in order on
//                         │ full? explicit   │ the session's
//                         │ kQueueFull (429) │ DynamicEmbedder, then
//                         ▼                  ▼ publishes…
//                    (never drops)   EmbeddingSnapshot v+1 ──┐
//                                                            │ atomic
//   with_snapshot(id, version) ◄─────────────────────────────┘
//       readers pin the epoch domain, load the version slot and read
//       an *immutable* snapshot — they never take the writer's locks,
//       never block on a mutation in progress, and never observe a
//       torn or reclaimed snapshot (the domain defers frees past
//       every pinned reader; tests/session_stress_test.cpp runs this
//       under TSan).
//
// Versions are dense (1, 2, … one per mutation batch) and the last
// `max_versions_retained` stay readable, so a client can pin a
// version and page an embedding out across multiple requests while
// writers keep publishing.
//
// Mutations are accounted end to end with the embedder's hard
// identity applied == repaired + escalated + rejected, re-asserted by
// stats()/to_json() on every read.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/dynamic_embedder.hpp"
#include "io/mutation_script.hpp"
#include "util/epoch.hpp"

namespace xt {

struct SessionConfig {
  /// X-tree height / slots-per-vertex for sessions whose create op
  /// does not choose its own.
  std::int32_t default_height = 6;
  NodeId default_load = 16;
  /// Repair/escalate policy applied to every session.
  MutationPolicy policy{/*max_repair_nodes=*/64, /*max_dilation=*/8};
  /// Bounded mutation queue (batches, all sessions); a full queue
  /// rejects at mutate() with kQueueFull — the session twin of the
  /// service's explicit backpressure.
  std::size_t mutation_queue_capacity = 256;
  std::size_t max_sessions = 64;
  /// Snapshot versions kept readable per session (>= 1).
  std::size_t max_versions_retained = 8;
  /// One line per notable event (create/drop, escalation, rejection);
  /// same contract as the service sink.
  std::function<void(const std::string&)> diagnostic_sink;
};

enum class SessionStatus : std::uint8_t {
  kOk = 0,
  kNotFound = 1,        // unknown (or dropped) session id
  kAlreadyExists = 2,   // create() on a taken id
  kTooManySessions = 3, // max_sessions reached
  kVersionGone = 4,     // version never published or already evicted
  kQueueFull = 5,       // mutation backpressure (HTTP 429)
  kShutdown = 6,        // manager draining
  kBadRequest = 7,      // malformed id / height / load
};

[[nodiscard]] const char* session_status_name(SessionStatus s);

/// True iff `id` is 1..64 chars of [A-Za-z0-9_.-] — the only ids
/// create() accepts.  The net edge applies the same test before
/// echoing a wire-supplied id anywhere.
[[nodiscard]] bool valid_session_id(const std::string& id);

/// Escapes `"`, `\` and control characters for safe interpolation
/// into a JSON string literal (control chars other than \n are
/// dropped, matching the net edge's error bodies).
[[nodiscard]] std::string json_escape(std::string_view s);

/// An immutable published state: the compact projection of the guest
/// plus its embedding and quality metrics at one version.  Readers
/// hold it only inside with_snapshot (epoch-pinned); everything in it
/// is written once, before publication.
struct EmbeddingSnapshot {
  std::uint64_t version = 0;
  BinaryTree tree;              // compact preorder projection
  Embedding embedding{0, 0};    // indexed by compact id
  std::vector<NodeId> stable_of;   // compact id -> stable id
  std::vector<NodeId> compact_of;  // stable id -> compact id / kInvalidNode
  std::int32_t host_height = 0;
  std::int32_t dilation = 0;
  NodeId max_load = 0;
  std::int64_t free_capacity = 0;
  /// snapshot_checksum over the fields above, written last; readers
  /// (and the TSan stress test) recompute it to prove the snapshot
  /// they dereferenced was fully constructed and never reclaimed.
  std::uint64_t checksum = 0;
};

/// FNV-1a over the snapshot's version, shape and placements.
[[nodiscard]] std::uint64_t snapshot_checksum(const EmbeddingSnapshot& snap);

/// Outcome of one op inside a mutation batch (stable ids).
struct MutationRecord {
  MutationOp op;
  bool ok = false;
  std::string error;            // status name, "" when ok
  NodeId leaf = kInvalidNode;   // the new node, kAddLeaf only
  std::int64_t nodes_touched = 0;
  bool escalated = false;
  std::int32_t dilation_after = 0;
  NodeId max_load_after = 0;
};

struct MutateOutcome {
  SessionStatus status = SessionStatus::kOk;
  std::string reason;           // set on non-kOk
  /// Version published after the batch (kOk only).
  std::uint64_t version = 0;
  std::vector<MutationRecord> records;
};

/// Counters (monotonic unless noted).  ops_* carry the embedders'
/// hard accounting identity across every session that ever ran:
/// ops_applied == ops_repaired + ops_escalated + ops_rejected,
/// asserted by to_json().
struct SessionStats {
  std::uint64_t sessions_created = 0;
  std::uint64_t sessions_dropped = 0;
  std::size_t sessions_active = 0;  // gauge
  std::uint64_t batches_submitted = 0;
  std::uint64_t batches_completed = 0;
  std::uint64_t batches_rejected_full = 0;
  std::uint64_t batches_not_found = 0;
  std::uint64_t batches_shutdown = 0;
  std::uint64_t ops_applied = 0;
  std::uint64_t ops_repaired = 0;
  std::uint64_t ops_escalated = 0;
  std::uint64_t ops_rejected = 0;
  std::uint64_t nodes_touched = 0;
  std::uint64_t escalate_nodes = 0;
  std::uint64_t snapshots_published = 0;
  std::uint64_t snapshots_retired = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_version_gone = 0;
  std::uint64_t reads_not_found = 0;
  std::size_t mutation_queue_depth = 0;     // gauge
  std::size_t mutation_queue_capacity = 0;  // config echo

  [[nodiscard]] std::string to_json() const;
};

class SessionManager {
 public:
  explicit SessionManager(SessionConfig config = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Creates a session hosting a single-root guest on X(height) and
  /// publishes version 1 (before the session is reachable, so the
  /// first snapshot can never race the writer thread).  height/load
  /// < 0 pick the config defaults.  Ids must pass valid_session_id().
  SessionStatus create(const std::string& id, std::int32_t height = -1,
                       NodeId load = -1, std::string* reason = nullptr);

  /// Removes the session.  In-flight reads finish safely (snapshots
  /// are epoch-retired); queued mutations for it answer kNotFound.
  SessionStatus drop(const std::string& id);

  /// Enqueues a mutation batch.  `on_done` is invoked exactly once —
  /// on the calling thread for rejections (queue full, unknown id,
  /// shutdown), on the writer thread otherwise.  It must not block;
  /// the net edge posts to its completion queue and returns.  Ops are
  /// applied strictly in submission order (one writer, FIFO queue).
  void mutate(const std::string& id, std::vector<MutationOp> ops,
              std::function<void(MutateOutcome)> on_done);

  /// Blocking convenience wrapper (tools, tests).
  MutateOutcome mutate_sync(const std::string& id,
                            std::vector<MutationOp> ops);

  /// Runs `fn` against the requested snapshot (version 0 = latest)
  /// without blocking writers or being blocked by them.  `fn` must
  /// not stash the reference — the snapshot may be reclaimed after
  /// the call returns.
  SessionStatus with_snapshot(
      const std::string& id, std::uint64_t version,
      const std::function<void(const EmbeddingSnapshot&)>& fn);

  [[nodiscard]] std::vector<std::string> session_ids() const;

  /// Stops the writer.  drain=true applies queued batches first;
  /// false answers them kShutdown.  Idempotent; the destructor drains.
  void shutdown(bool drain = true);

  [[nodiscard]] SessionStats stats() const;
  [[nodiscard]] std::string stats_json() const { return stats().to_json(); }
  [[nodiscard]] const SessionConfig& config() const { return config_; }

 private:
  struct TreeSession;
  struct PendingBatch {
    std::shared_ptr<TreeSession> session;
    std::vector<MutationOp> ops;
    std::function<void(MutateOutcome)> on_done;
  };

  void writer_loop();
  MutateOutcome apply_batch(TreeSession& session,
                            const std::vector<MutationOp>& ops);
  void publish(TreeSession& session);
  void diag(const std::string& line) const;

  SessionConfig config_;

  // Declared before the session map so it is destroyed after it: the
  // map teardown retires nothing (TreeSession frees its own ring),
  // but snapshots already in limbo must outlive any late teardown.
  EpochDomain domain_;

  mutable std::shared_mutex sessions_mu_;
  std::unordered_map<std::string, std::shared_ptr<TreeSession>> sessions_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingBatch> queue_;
  bool stopping_ = false;
  bool drain_ = true;
  std::mutex shutdown_mu_;  // serialises shutdown() callers around join
  std::thread writer_;

  // Counters: writer + readers + submitters update concurrently.
  std::atomic<std::uint64_t> sessions_created_{0};
  std::atomic<std::uint64_t> sessions_dropped_{0};
  std::atomic<std::uint64_t> batches_submitted_{0};
  std::atomic<std::uint64_t> batches_completed_{0};
  std::atomic<std::uint64_t> batches_rejected_full_{0};
  std::atomic<std::uint64_t> batches_not_found_{0};
  std::atomic<std::uint64_t> batches_shutdown_{0};
  // The ops_* group carries the hard identity applied == repaired +
  // escalated + rejected, which to_json() asserts on every /stats
  // read.  The writer updates all six under ops_mu_ and stats() reads
  // them under the same lock, so no snapshot can observe a partial
  // batch update (independent relaxed atomics could).
  mutable std::mutex ops_mu_;
  std::uint64_t ops_applied_ = 0;
  std::uint64_t ops_repaired_ = 0;
  std::uint64_t ops_escalated_ = 0;
  std::uint64_t ops_rejected_ = 0;
  std::uint64_t nodes_touched_ = 0;
  std::uint64_t escalate_nodes_ = 0;
  std::atomic<std::uint64_t> snapshots_published_{0};
  std::atomic<std::uint64_t> snapshots_retired_{0};
  std::atomic<std::uint64_t> reads_ok_{0};
  std::atomic<std::uint64_t> reads_version_gone_{0};
  std::atomic<std::uint64_t> reads_not_found_{0};
};

/// The session-embedding response body shared by the binary and HTTP
/// paths: one-line JSON with "id", "version", "n", "host_height",
/// "dilation", "max_load", "free_capacity", "checksum", then
/// "stable" (compact id -> stable id) and "hosts" (compact id -> host
/// vertex) arrays.
[[nodiscard]] std::string session_embedding_json(
    const std::string& id, const EmbeddingSnapshot& snap);

/// The mutation response body shared by both paths: "status",
/// "version", then "ops" with one record per submitted op.
[[nodiscard]] std::string mutate_outcome_json(const MutateOutcome& outcome);

}  // namespace xt
