// xtc1: a checkpoint container for the canonical embedding cache
// (ISSUE 10).  A graceful shard restart serializes its resident
// entries — digests, placements, and memoized response prefixes — and
// the next boot mmap-restores them, so the first minute of traffic
// hits warm instead of re-embedding the whole working set.
//
// The layout deliberately mirrors xtb1 (bulk/corpus.hpp): same header
// discipline, same per-record checksum + trailing offset index, so
// the corruption story is identical — a flipped bit in one record
// skips that record, a flipped bit in the envelope fails the whole
// file with a structured error, and truncation is caught by the
// file_bytes field before any record is trusted.
//
//   [64-byte header]
//     0   magic "xtc1"
//     4   u32 version (= 1)
//     8   u64 entry_count
//     16  u64 index_offset
//     24  u64 file_bytes
//     32  u64 header_hash           (hash64 of bytes [0, 32))
//     40  24 reserved zero bytes
//   [records, each 8-byte aligned]
//     u64 canonical_hash            -- CacheKey
//     u32 num_nodes
//     u32 load
//     u32 theorem                   (0=T1, 1=T2, 2=T3)
//     u32 host_vertices             -- CachedEmbedding
//     i32 host_height
//     i32 dilation
//     u32 load_factor
//     u32 assign_len
//     u32 memo_len                  (0 = no memoized response body)
//     u32 reserved(0)
//     i32 canonical_assign[assign_len]
//     u8  memo[memo_len]            (pre-serialized response prefix)
//     u64 checksum                  (hash64 of the record bytes before it)
//     zero padding to the next 8-byte boundary
//   [index at index_offset]
//     u64 record_offset[entry_count]
//     u64 index_hash                (hash64 of the offset array)
//
// Entries are written oldest-first per stripe (CanonicalCache::
// for_each_entry order) and restored by replaying insert() in file
// order, so a restored cache reproduces the checkpoint's eviction
// order: what was about to be evicted before the restart is still
// first in line after it.
//
// Everything in a record is derived data — a lost or corrupt
// checkpoint costs warmth, never correctness — so load never throws
// on per-record damage; it restores what it can and reports the rest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "service/canonical_cache.hpp"

namespace xt {

inline constexpr char kSnapshotMagic[4] = {'x', 't', 'c', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::size_t kSnapshotHeaderBytes = 64;
/// Bytes of the header covered by header_hash (everything before it).
inline constexpr std::size_t kSnapshotHeaderHashedBytes = 32;
/// Fixed-size prefix of a record, before the assign/memo payloads.
inline constexpr std::size_t kSnapshotRecordFixedBytes = 48;

/// Serializes every resident cache entry to `path` (truncating any
/// existing file).  Returns false with a diagnostic in *error (if
/// non-null) on I/O failure; a failed save leaves whatever partial
/// file the filesystem kept, which load will reject as truncated.
/// `saved`, when non-null, receives the number of entries written.
bool save_cache_snapshot(const CanonicalCache& cache, const std::string& path,
                         std::string* error, std::size_t* saved = nullptr);

/// The outcome of a restore: how many entries came back, how many
/// records were skipped as corrupt (with one diagnostic each), or —
/// when the envelope itself is bad — ok=false and a single error.
struct SnapshotLoadReport {
  std::size_t restored = 0;
  std::size_t skipped = 0;
  std::vector<std::string> record_errors;  // one per skipped record
  bool ok = false;      // envelope parsed; restored entries are trustworthy
  std::string error;    // set when ok is false
};

/// Restores a snapshot into `cache` by replaying insert() in file
/// order.  Envelope damage (bad magic/version/header hash/size/index)
/// restores nothing and sets ok=false; per-record damage skips that
/// record only.  The cache need not be empty — restored entries land
/// through the normal insert path, evicting as usual if the snapshot
/// outsizes the cache.
SnapshotLoadReport load_cache_snapshot(const std::string& path,
                                       CanonicalCache* cache);

/// True if the file at `path` starts with the xtc1 magic.
bool snapshot_sniff(const std::string& path);

}  // namespace xt
