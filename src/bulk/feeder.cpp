#include "bulk/feeder.hpp"

#include <deque>
#include <future>
#include <thread>
#include <utility>

#include "util/check.hpp"

namespace xt {

BulkFeedStats feed_corpus(EmbeddingService& service,
                          const CorpusReader& reader,
                          const BulkFeedOptions& options) {
  XT_CHECK(options.max_outstanding >= 1);
  BulkFeedStats stats;
  std::deque<std::future<EmbedResponse>> outstanding;

  const auto drain_front = [&] {
    const EmbedResponse r = outstanding.front().get();
    outstanding.pop_front();
    (r.status == RequestStatus::kOk ? stats.completed : stats.failed)++;
  };

  bool service_stopping = false;
  for (std::uint64_t i = 0; i < reader.tree_count() && !service_stopping;
       ++i) {
    CorpusReader::View view;
    if (!reader.try_view(i, &view, nullptr)) {
      ++stats.skipped_corrupt;
      continue;
    }
    while (outstanding.size() >= options.max_outstanding) drain_front();

    // Submit-with-retry: a bulk-admission rejection comes back as an
    // already-ready future, so readiness probing never blocks on a
    // genuinely queued request.
    const BinaryTree tree = reader.materialize(i);
    for (int attempt = 0;; ++attempt) {
      EmbedRequest req;
      req.tree = tree;  // copy: a retry needs the tree again
      req.theorem = options.theorem;
      req.priority = options.priority;
      req.bulk = true;
      auto fut = service.submit(std::move(req));
      if (fut.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        const EmbedResponse r = fut.get();
        if (r.status == RequestStatus::kRejectedQueueFull &&
            (options.max_retries < 0 || attempt < options.max_retries)) {
          ++stats.retries;
          std::this_thread::sleep_for(options.retry_backoff);
          continue;
        }
        if (r.status == RequestStatus::kRejectedShutdown)
          service_stopping = true;
        (r.status == RequestStatus::kOk ? stats.completed : stats.failed)++;
        ++stats.submitted;
        break;
      }
      ++stats.submitted;
      outstanding.push_back(std::move(fut));
      break;
    }
  }
  while (!outstanding.empty()) drain_front();
  return stats;
}

}  // namespace xt
