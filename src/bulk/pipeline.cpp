#include "bulk/pipeline.hpp"

#include <array>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "btree/canonical.hpp"
#include "core/hypercube_embedding.hpp"
#include "core/injective_lift.hpp"
#include "core/xtree_embedder.hpp"
#include "embedding/metrics.hpp"
#include "io/certificate.hpp"
#include "service/canonical_cache.hpp"
#include "topology/hypercube.hpp"
#include "topology/xtree.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"
#include "util/thread_pool.hpp"
#include "verify/certificate_chain.hpp"

namespace xt {
namespace {

/// Free-list of reusable embed arenas: one per concurrently running
/// embed task, recycled so the steady state allocates nothing.  The
/// pool's workers are shared with the rest of the process, so arenas
/// cannot be thread_local here — a lease ties one arena to one task
/// for exactly the task's duration.
class ArenaPool {
 public:
  class Lease {
   public:
    explicit Lease(ArenaPool& pool) : pool_(pool), arena_(pool.acquire()) {}
    ~Lease() { pool_.release(std::move(arena_)); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    XTreeEmbedder::EmbedArena& get() { return *arena_; }

   private:
    ArenaPool& pool_;
    std::unique_ptr<XTreeEmbedder::EmbedArena> arena_;
  };

 private:
  std::unique_ptr<XTreeEmbedder::EmbedArena> acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return std::make_unique<XTreeEmbedder::EmbedArena>();
    auto arena = std::move(free_.back());
    free_.pop_back();
    return arena;
  }

  void release(std::unique_ptr<XTreeEmbedder::EmbedArena> arena) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(arena));
  }

  std::mutex mu_;
  std::vector<std::unique_ptr<XTreeEmbedder::EmbedArena>> free_;
};

/// The canonical tree of a zero-copy record: relabeled_tree's exact
/// construction (new-parent array, then children filled first-free-
/// slot in ascending new id) applied straight to the view's parent
/// array — no intermediate BinaryTree copy of the original ids.
BinaryTree canonical_tree_from_view(const CorpusReader::View& view,
                                    const std::vector<NodeId>& to_canonical) {
  const auto n = static_cast<std::size_t>(view.num_nodes);
  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<NodeId> left(n, kInvalidNode);
  std::vector<NodeId> right(n, kInvalidNode);
  for (std::size_t u = 0; u < n; ++u) {
    const NodeId p = view.parent[u];
    if (p == kInvalidNode) continue;
    parent[static_cast<std::size_t>(to_canonical[u])] =
        to_canonical[static_cast<std::size_t>(p)];
  }
  for (NodeId nv = 1; nv < view.num_nodes; ++nv) {
    const NodeId np = parent[static_cast<std::size_t>(nv)];
    auto& slot = left[static_cast<std::size_t>(np)] == kInvalidNode
                     ? left[static_cast<std::size_t>(np)]
                     : right[static_cast<std::size_t>(np)];
    slot = nv;
  }
  return BinaryTree::from_soa(std::move(parent), std::move(left),
                              std::move(right));
}

/// What an embed task produces: the cache entry's payload.  Dilation
/// is deliberately NOT audited here (that is the service path's
/// per-miss O(n) profile); bulk covers quality statistically through
/// the sampled certificate verify, which recomputes it from scratch.
struct Computed {
  std::vector<VertexId> canonical_assign;
  VertexId host_vertices = 0;
  std::int32_t host_height = 0;
  NodeId load_factor = 0;
};

Computed compute_canonical(const BinaryTree& canonical, Theorem theorem,
                           NodeId load, int intra_embed_parallelism,
                           XTreeEmbedder::EmbedArena& arena) {
  Computed out;
  Embedding emb(0, 0);
  switch (theorem) {
    case Theorem::kT1: {
      XTreeEmbedder::Options o;
      o.load = load;
      o.intra_embed_parallelism = intra_embed_parallelism;
      auto res = XTreeEmbedder::embed(canonical, o, arena);
      out.host_vertices = XTree(res.stats.height).num_vertices();
      out.host_height = res.stats.height;
      out.load_factor = res.embedding.load_factor();
      emb = std::move(res.embedding);
      break;
    }
    case Theorem::kT2: {
      XTreeEmbedder::Options o;
      o.load = 16;  // the lift spends exactly four levels on 16 slots
      o.intra_embed_parallelism = intra_embed_parallelism;
      auto res = XTreeEmbedder::embed(canonical, o, arena);
      auto lift = lift_injective(canonical, res.embedding,
                                 XTree(res.stats.height));
      out.host_vertices = XTree(lift.host_height).num_vertices();
      out.host_height = lift.host_height;
      out.load_factor = 1;
      emb = std::move(lift.embedding);
      break;
    }
    case Theorem::kT3: {
      auto hc = embed_hypercube_load16(canonical);
      out.host_vertices = Hypercube(hc.dimension).num_vertices();
      out.host_height = hc.dimension;
      out.load_factor = hc.embedding.load_factor();
      emb = std::move(hc.embedding);
      break;
    }
  }
  const auto n = static_cast<std::size_t>(canonical.num_nodes());
  out.canonical_assign.resize(n);
  for (std::size_t c = 0; c < n; ++c)
    out.canonical_assign[c] = emb.host_of(static_cast<NodeId>(c));
  return out;
}

Embedding remap_embedding(const std::vector<NodeId>& to_canonical,
                          const CachedEmbedding& entry) {
  const auto n = static_cast<NodeId>(to_canonical.size());
  Embedding emb(n, entry.host_vertices);
  for (NodeId v = 0; v < n; ++v) {
    emb.place(v, entry.canonical_assign[static_cast<std::size_t>(
                     to_canonical[static_cast<std::size_t>(v)])]);
  }
  return emb;
}

/// Builds the theorem certificate for one served record — claims
/// measured from the served artifact itself — and re-derives every
/// claim through the differential oracle.  Returns "" when it holds.
std::string verify_served_record(const BinaryTree& guest,
                                 const Embedding& emb, Theorem theorem,
                                 NodeId load, std::int32_t host_height) {
  const bool exact16 = is_exact_form(guest.num_nodes(), 16);
  TheoremCertificate cert;
  cert.guest_fingerprint = guest_fingerprint(guest);
  cert.assignment_fingerprint = assignment_fingerprint(emb);
  cert.guest_nodes = guest.num_nodes();
  cert.host_param = host_height;
  cert.load_factor = emb.load_factor();
  switch (theorem) {
    case Theorem::kT1:
      cert.link = ChainLink::kXTree;
      cert.dilation =
          dilation_profile_xtree(guest, emb, XTree(host_height)).report.max;
      cert.dilation_bound = is_exact_form(guest.num_nodes(), load) ? 3 : 6;
      cert.load_bound = load;
      break;
    case Theorem::kT2:
      cert.link = ChainLink::kInjectiveXTree;
      cert.dilation =
          dilation_profile_xtree(guest, emb, XTree(host_height)).report.max;
      cert.dilation_bound = exact16 ? 11 : 14;
      cert.load_bound = 1;
      break;
    case Theorem::kT3:
      cert.link = ChainLink::kHypercubeLoad16;
      cert.dilation =
          dilation_hypercube(guest, emb, Hypercube(host_height)).max;
      cert.dilation_bound = exact16 ? 4 : 7;
      cert.load_bound = 16;
      break;
  }
  return verify_theorem_certificate(cert, guest, emb);
}

}  // namespace

const char* bulk_record_status_name(BulkRecordStatus s) {
  switch (s) {
    case BulkRecordStatus::kEmbedded: return "embedded";
    case BulkRecordStatus::kDeduped: return "deduped";
    case BulkRecordStatus::kRejected: return "rejected";
  }
  return "unknown";
}

std::string BulkStats::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"decoded\": " << decoded << ",\n"
     << "  \"embedded\": " << embedded << ",\n"
     << "  \"deduped\": " << deduped << ",\n"
     << "  \"rejected\": " << rejected << ",\n"
     << "  \"verified\": " << verified << ",\n"
     << "  \"verify_failures\": " << verify_failures << ",\n"
     << "  \"accounting_ok\": " << (accounting_ok() ? "true" : "false")
     << ",\n"
     << "  \"wall_s\": " << wall_s << ",\n"
     << "  \"trees_per_s\": " << trees_per_s << "\n"
     << "}";
  return os.str();
}

BulkResult bulk_embed(const CorpusReader& reader, const BulkOptions& options) {
  std::vector<std::uint64_t> all(reader.tree_count());
  for (std::uint64_t i = 0; i < all.size(); ++i) all[i] = i;
  return bulk_embed(reader, options, all);
}

BulkResult bulk_embed(const CorpusReader& reader, const BulkOptions& options,
                      const std::vector<std::uint64_t>& indices) {
  XT_CHECK(options.max_in_flight >= 1);
  XT_CHECK(options.dedup_capacity >= 1);
  XT_CHECK(options.verify_sample >= 0.0 && options.verify_sample <= 1.0);
  for (const std::uint64_t i : indices)
    XT_CHECK_MSG(i < reader.tree_count(),
                 "subset index " << i << " out of range");
  const auto t0 = std::chrono::steady_clock::now();

  BulkResult out;
  out.records.resize(indices.size());
  BulkStats& stats = out.stats;

  CanonicalCache cache(options.dedup_capacity);
  ThreadPool& pool = ThreadPool::shared();
  ArenaPool arenas;

  const auto diag = [&](const std::string& line) {
    if (options.diagnostic_sink) options.diagnostic_sink(line);
  };

  const auto sampled = [&](std::uint64_t i) {
    if (options.verify_sample <= 0.0) return false;
    if (options.verify_sample >= 1.0) return true;
    const std::uint64_t h = hash64(&i, sizeof i, options.verify_seed);
    return static_cast<double>(h >> 11) * 0x1.0p-53 < options.verify_sample;
  };

  // `slot` addresses out.records (the subset position); the corpus
  // record id lives in the slot's .index, stamped before any terminal.
  const auto reject = [&](std::uint64_t slot, std::string why) {
    BulkRecordResult& rec = out.records[slot];
    rec.status = BulkRecordStatus::kRejected;
    rec.error = std::move(why);
    ++stats.rejected;
    diag("[bulk] rejected record " + std::to_string(rec.index) + ": " +
         rec.error);
  };

  // Terminal bookkeeping for a served (embedded or deduped) record:
  // counters, then the optional remap for keep_embeddings / the
  // verify sample.  The remap is skipped entirely when neither wants
  // it — the common bulk case does no per-duplicate O(n) work beyond
  // the digest.
  const auto serve = [&](std::uint64_t slot, BulkRecordStatus status,
                         const CachedEmbedding& entry,
                         const std::vector<NodeId>& to_canonical) {
    BulkRecordResult& rec = out.records[slot];
    rec.status = status;
    rec.host_height = entry.host_height;
    rec.load_factor = entry.load_factor;
    (status == BulkRecordStatus::kEmbedded ? stats.embedded
                                           : stats.deduped)++;
    const bool want_verify = sampled(rec.index);
    if (!want_verify && !options.keep_embeddings) return;
    Embedding emb = remap_embedding(to_canonical, entry);
    if (want_verify) {
      ++stats.verified;
      const std::string bad = verify_served_record(
          reader.materialize(rec.index), emb, options.theorem, options.load,
          entry.host_height);
      if (!bad.empty()) {
        ++stats.verify_failures;
        rec.error = bad;
        diag("[bulk] verify failure on record " + std::to_string(rec.index) +
             ": " + bad);
      }
    }
    if (options.keep_embeddings) rec.embedding = std::move(emb);
  };

  // One outstanding embed plus the duplicates that arrived while it
  // was in flight.  Window entries live in a deque (stable addresses)
  // and resolve oldest-first; `pending` lets later records find them
  // by cache key.
  struct Waiter {
    std::uint64_t slot = 0;
    std::vector<NodeId> to_canonical;
  };
  struct InFlight {
    CacheKey key;
    std::uint64_t lead_slot = 0;
    std::vector<NodeId> lead_to_canonical;
    TaskFuture<Computed> future;
    // Inline-compute variant (pool has no workers): the result or the
    // failure is stored directly, skipping the promise/future
    // machinery the caller-runs path would allocate per miss.
    std::optional<Computed> computed_inline;
    std::string inline_error;
    std::vector<Waiter> waiters;
  };
  std::deque<InFlight> window;
  std::unordered_map<CacheKey, InFlight*, CacheKeyHash> pending;

  const auto resolve_front = [&] {
    InFlight infl = std::move(window.front());
    window.pop_front();
    pending.erase(infl.key);
    Computed computed;
    try {
      if (infl.computed_inline.has_value())
        computed = std::move(*infl.computed_inline);
      else if (!infl.inline_error.empty())
        throw std::runtime_error(infl.inline_error);
      else
        computed = infl.future.get();
    } catch (const std::exception& e) {
      // The lead embed failed: the lead and every duplicate that
      // attached to it resolve to kRejected, keeping the accounting
      // identity exact.
      const std::uint64_t lead_record = out.records[infl.lead_slot].index;
      reject(infl.lead_slot, std::string("embed failed: ") + e.what());
      for (const Waiter& w : infl.waiters)
        reject(w.slot, std::string("embed failed (shared with record ") +
                           std::to_string(lead_record) + "): " + e.what());
      return;
    }
    CachedEmbedding entry;
    entry.canonical_assign = std::move(computed.canonical_assign);
    entry.host_vertices = computed.host_vertices;
    entry.host_height = computed.host_height;
    entry.dilation = -1;  // not audited on the bulk path (see Computed)
    entry.load_factor = computed.load_factor;
    serve(infl.lead_slot, BulkRecordStatus::kEmbedded, entry,
          infl.lead_to_canonical);
    for (const Waiter& w : infl.waiters)
      serve(w.slot, BulkRecordStatus::kDeduped, entry, w.to_canonical);
    cache.insert(infl.key, std::move(entry));
  };

  // The duplicate-dominated steady state touches only the digest: the
  // kNoRemap sentinel stands in for to_canonical whenever the record
  // is neither kept nor in the verify sample, so serve() never reads
  // it and the O(n) relabelling walk is skipped entirely.
  CanonicalScratch scratch;
  static const std::vector<NodeId> kNoRemap;

  // The digest stage runs in strips: validate a run of records, digest
  // the valid views (zero-copy mmap pointers) through the interleaved
  // batch kernel, then replay the dedupe/serve logic in record order.
  // Statuses, stats, and cache contents are bit-identical to the
  // per-record digest loop this replaces — only the digest arithmetic
  // is scheduled differently (tests/simd_test.cpp pins the digests).
  constexpr std::uint64_t kDigestStrip = 64;
  std::array<CorpusReader::View, kDigestStrip> views;
  std::array<char, kDigestStrip> view_ok{};
  std::array<std::string, kDigestStrip> view_err;
  std::vector<RawTreeRef> refs;
  std::vector<std::uint64_t> digests;

  for (std::uint64_t s = 0; s < indices.size(); s += kDigestStrip) {
    const std::uint64_t strip =
        std::min<std::uint64_t>(kDigestStrip, indices.size() - s);
    refs.clear();
    for (std::uint64_t j = 0; j < strip; ++j) {
      view_err[j].clear();
      view_ok[j] =
          reader.try_view(indices[s + j], &views[j], &view_err[j]) ? 1 : 0;
      if (view_ok[j])
        refs.push_back({views[j].num_nodes, views[j].left, views[j].right});
    }
    digests.resize(refs.size());
    canonical_hash_batch(refs, digests, scratch);
    std::size_t next_digest = 0;

    for (std::uint64_t j = 0; j < strip; ++j) {
      const std::uint64_t slot = s + j;
      const std::uint64_t i = indices[slot];
      ++stats.decoded;
      out.records[slot].index = i;

      if (!view_ok[j]) {
        reject(slot, std::move(view_err[j]));
        continue;
      }
      const CorpusReader::View& view = views[j];

      const bool want_remap = sampled(i) || options.keep_embeddings;
      const std::uint64_t chash = digests[next_digest++];
      out.records[slot].canonical_hash = chash;
      const CacheKey key{chash, view.num_nodes, options.theorem, options.load};

      // Epoch-pinned probe (no shared_ptr copy, no lock): the same
      // read path the network edge uses for inline hits.
      const bool deduped =
          cache.with_entry(key, [&](const CanonicalCache::Entry& e) {
            if (want_remap) {
              const CanonicalForm canon = canonical_form(
                  view.num_nodes, view.left, view.right, scratch);
              serve(slot, BulkRecordStatus::kDeduped, e.value(),
                    canon.to_canonical);
            } else {
              serve(slot, BulkRecordStatus::kDeduped, e.value(), kNoRemap);
            }
          });
      if (deduped) continue;
      if (auto it = pending.find(key); it != pending.end()) {
        Waiter w{slot, {}};
        if (want_remap)
          w.to_canonical =
              canonical_form(view.num_nodes, view.left, view.right, scratch)
                  .to_canonical;
        it->second->waiters.push_back(std::move(w));
        continue;
      }

      // Backpressure: admit a new embed only once the window has room.
      while (window.size() >= options.max_in_flight) resolve_front();

      // A lead always needs the full form: the canonical tree it embeds
      // is built from the relabelling.
      CanonicalForm canon =
          canonical_form(view.num_nodes, view.left, view.right, scratch);
      BinaryTree canonical = canonical_tree_from_view(view, canon.to_canonical);
      window.push_back(InFlight{key, slot, std::move(canon.to_canonical),
                                TaskFuture<Computed>{}, std::nullopt, {}, {}});
      InFlight& infl = window.back();
      pending.emplace(key, &infl);
      if (pool.num_threads() == 0) {
        // No workers: submit() would only defer to a caller-runs get();
        // computing here skips a promise/function allocation per miss.
        // Window semantics are unchanged — the result still resolves
        // oldest-first, after any duplicates have attached.
        try {
          ArenaPool::Lease lease(arenas);
          infl.computed_inline =
              compute_canonical(canonical, options.theorem, options.load,
                                options.intra_embed_parallelism, lease.get());
        } catch (const std::exception& e) {
          infl.inline_error = e.what();
          if (infl.inline_error.empty()) infl.inline_error = "embed failed";
        }
      } else {
        infl.future = pool.submit(
            [canonical = std::move(canonical), &arenas,
             theorem = options.theorem, load = options.load,
             parallelism = options.intra_embed_parallelism]() {
              ArenaPool::Lease lease(arenas);
              return compute_canonical(canonical, theorem, load, parallelism,
                                       lease.get());
            });
      }
    }
  }
  while (!window.empty()) resolve_front();

  stats.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  stats.trees_per_s =
      stats.wall_s > 0.0 ? static_cast<double>(stats.decoded) / stats.wall_s
                         : 0.0;
  XT_CHECK_MSG(stats.accounting_ok(),
               "bulk accounting violated: decoded "
                   << stats.decoded << " != embedded " << stats.embedded
                   << " + deduped " << stats.deduped << " + rejected "
                   << stats.rejected);
  return out;
}

}  // namespace xt
