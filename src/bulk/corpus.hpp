// xtb1: a compact binary container for guest-tree corpora, designed
// for zero-copy bulk ingestion (ISSUE 5).
//
// A corpus of N trees is one little-endian file:
//
//   [64-byte header]
//     0   magic "xtb1"
//     4   u32 version (= 1)
//     8   u64 tree_count
//     16  u64 index_offset          (byte offset of the record index)
//     24  u64 file_bytes            (total file size, for truncation checks)
//     32  u64 header_hash           (hash64 of bytes [0, 32))
//     40  24 reserved zero bytes
//   [records, each 8-byte aligned]
//     u32 n, u32 reserved(0)
//     i32 parent[n], i32 left[n], i32 right[n]   (BinaryTree SoA layout,
//                                                 preorder ids, root 0)
//     u64 checksum               (hash64 of the record bytes before it)
//     zero padding to the next 8-byte boundary
//   [index at index_offset]
//     u64 record_offset[tree_count]
//     u64 index_hash              (hash64 of the offset array)
//
// The record payload *is* BinaryTree's in-memory representation, so a
// reader can hand out pointers straight into the mmap — no parsing, no
// per-node work — and the canonical digest (canonical_form raw-array
// overload) runs in place.  Checksums catch bit rot / truncation; the
// structural validator (soa_structure_error) catches well-formed bytes
// that do not describe a tree, so a hostile file cannot push
// out-of-range ids into the embedder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "btree/binary_tree.hpp"

namespace xt {

inline constexpr char kCorpusMagic[4] = {'x', 't', 'b', '1'};
inline constexpr std::uint32_t kCorpusVersion = 1;
inline constexpr std::size_t kCorpusHeaderBytes = 64;
/// Bytes of the header covered by header_hash (everything before it).
inline constexpr std::size_t kCorpusHeaderHashedBytes = 32;

/// Streaming xtb1 writer.  Records are written as they arrive (one
/// buffered pass, O(1) memory beyond the offset index); finalize()
/// appends the index and back-patches the header.  The file is not a
/// valid corpus until finalize() returns.
class CorpusWriter {
 public:
  explicit CorpusWriter(const std::string& path);
  ~CorpusWriter();

  CorpusWriter(const CorpusWriter&) = delete;
  CorpusWriter& operator=(const CorpusWriter&) = delete;

  void add(const BinaryTree& tree);
  /// Raw SoA form, e.g. re-packing records read from another corpus.
  /// The arrays are written as-is (structure is checked on *read*, so
  /// pack stays O(n) memcpy-bound).
  void add(NodeId n, const NodeId* parent, const NodeId* left,
           const NodeId* right);

  [[nodiscard]] std::uint64_t tree_count() const { return offsets_.size(); }

  /// Writes the index, back-patches the header, flushes and closes.
  /// Throws check_error on I/O failure.  Idempotent.
  void finalize();

 private:
  std::ofstream os_;
  std::string path_;
  std::vector<std::uint64_t> offsets_;
  std::uint64_t pos_ = 0;
  bool finalized_ = false;
};

/// Memory-mapped xtb1 reader.  Construction validates the envelope
/// (magic, version, header hash, size, index hash, offset ranges);
/// per-record payloads are validated lazily by try_view, so one
/// corrupt record fails that record, not the whole corpus.
class CorpusReader {
 public:
  /// A borrowed, validated record: pointers into the mmap, BinaryTree
  /// SoA layout.  Valid while the reader lives.
  struct View {
    NodeId num_nodes = 0;
    const NodeId* parent = nullptr;
    const NodeId* left = nullptr;
    const NodeId* right = nullptr;
  };

  explicit CorpusReader(const std::string& path);
  ~CorpusReader();

  CorpusReader(const CorpusReader&) = delete;
  CorpusReader& operator=(const CorpusReader&) = delete;

  [[nodiscard]] std::uint64_t tree_count() const { return count_; }

  /// Validates record i (bounds, checksum, tree structure) and fills
  /// `out` with zero-copy pointers.  Returns false with a diagnostic
  /// in *error (if non-null) on a corrupt record.
  bool try_view(std::uint64_t i, View* out, std::string* error) const;

  /// Throwing form of try_view.
  [[nodiscard]] View view(std::uint64_t i) const;

  /// An owning BinaryTree copy of record i (validated by from_soa).
  [[nodiscard]] BinaryTree materialize(std::uint64_t i) const;

  /// True if the file at `path` starts with the xtb1 magic — cheap
  /// container-vs-text dispatch for CLI tools (xt_fuzz --replay).
  static bool sniff(const std::string& path);

 private:
  const unsigned char* bytes_ = nullptr;
  std::size_t size_ = 0;
  std::uint64_t count_ = 0;
  const std::uint64_t* offsets_ = nullptr;  // into the mmap
  std::uint64_t records_end_ = 0;           // == index_offset
};

}  // namespace xt
