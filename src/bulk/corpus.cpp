#include "bulk/corpus.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstring>
#include <utility>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace xt {

// The on-disk layout *is* the in-memory layout: records are read back
// by pointer, not deserialised, so the format is only defined for
// little-endian hosts with 32-bit NodeId.
static_assert(std::endian::native == std::endian::little,
              "xtb1 is a little-endian format");
static_assert(sizeof(NodeId) == 4, "xtb1 records store 32-bit node ids");

namespace {

void put_u32(unsigned char* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(unsigned char* p, std::uint64_t v) { std::memcpy(p, &v, 8); }

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

bool record_fail(std::string* error, std::uint64_t i, const std::string& why) {
  if (error != nullptr)
    *error = "record " + std::to_string(i) + ": " + why;
  return false;
}

}  // namespace

// --- CorpusWriter ------------------------------------------------------

CorpusWriter::CorpusWriter(const std::string& path)
    : os_(path, std::ios::binary | std::ios::trunc), path_(path) {
  XT_CHECK_MSG(os_.good(), "cannot open " << path << " for writing");
  const char zeros[kCorpusHeaderBytes] = {};
  os_.write(zeros, kCorpusHeaderBytes);  // back-patched by finalize()
  pos_ = kCorpusHeaderBytes;
}

CorpusWriter::~CorpusWriter() = default;

void CorpusWriter::add(const BinaryTree& tree) {
  add(tree.num_nodes(), tree.parent_data(), tree.left_data(),
      tree.right_data());
}

void CorpusWriter::add(NodeId n, const NodeId* parent, const NodeId* left,
                       const NodeId* right) {
  XT_CHECK_MSG(n > 0, "cannot pack an empty tree");
  XT_CHECK_MSG(!finalized_, "add after finalize");
  offsets_.push_back(pos_);
  const std::size_t nb = static_cast<std::size_t>(n) * sizeof(NodeId);
  const std::size_t record_bytes = 8 + 3 * nb;
  std::vector<unsigned char> buf(record_bytes);
  put_u32(buf.data(), static_cast<std::uint32_t>(n));
  put_u32(buf.data() + 4, 0);  // reserved
  std::memcpy(buf.data() + 8, parent, nb);
  std::memcpy(buf.data() + 8 + nb, left, nb);
  std::memcpy(buf.data() + 8 + 2 * nb, right, nb);
  const std::uint64_t checksum = hash64(buf.data(), record_bytes);
  os_.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(record_bytes));
  os_.write(reinterpret_cast<const char*>(&checksum), 8);
  pos_ += record_bytes + 8;
  // Pad so the next record (hence its i32 arrays) stays aligned.
  static const char pad[8] = {};
  const std::size_t tail = pos_ % 8;
  if (tail != 0) {
    os_.write(pad, static_cast<std::streamsize>(8 - tail));
    pos_ += 8 - tail;
  }
  XT_CHECK_MSG(os_.good(), "write failure on " << path_);
}

void CorpusWriter::finalize() {
  if (finalized_) return;
  const std::uint64_t index_offset = pos_;
  const std::uint64_t index_hash =
      hash64(offsets_.data(), offsets_.size() * 8);
  os_.write(reinterpret_cast<const char*>(offsets_.data()),
            static_cast<std::streamsize>(offsets_.size() * 8));
  os_.write(reinterpret_cast<const char*>(&index_hash), 8);
  pos_ += offsets_.size() * 8 + 8;

  unsigned char header[kCorpusHeaderBytes] = {};
  std::memcpy(header, kCorpusMagic, 4);
  put_u32(header + 4, kCorpusVersion);
  put_u64(header + 8, offsets_.size());
  put_u64(header + 16, index_offset);
  put_u64(header + 24, pos_);
  put_u64(header + 32, hash64(header, kCorpusHeaderHashedBytes));
  os_.seekp(0);
  os_.write(reinterpret_cast<const char*>(header), kCorpusHeaderBytes);
  os_.flush();
  XT_CHECK_MSG(os_.good(), "write failure finalizing " << path_);
  os_.close();
  finalized_ = true;
}

// --- CorpusReader ------------------------------------------------------

CorpusReader::CorpusReader(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  XT_CHECK_MSG(fd >= 0, "cannot open " << path);
  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    XT_CHECK_MSG(false, "cannot stat " << path);
  }
  size_ = static_cast<std::size_t>(st.st_size);
  void* map = nullptr;
  if (size_ > 0) {
    map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      ::close(fd);
      XT_CHECK_MSG(false, "cannot mmap " << path);
    }
  }
  ::close(fd);  // the mapping keeps the pages alive
  bytes_ = static_cast<const unsigned char*>(map);
  try {
    // Envelope validation: everything the index depends on.  Per-record
    // payloads are checked lazily in try_view.
    XT_CHECK_MSG(size_ >= kCorpusHeaderBytes + 8,
                 path << ": too small to be an xtb1 corpus");
    XT_CHECK_MSG(std::memcmp(bytes_, kCorpusMagic, 4) == 0,
                 path << ": bad magic (not an xtb1 corpus)");
    XT_CHECK_MSG(get_u32(bytes_ + 4) == kCorpusVersion,
                 path << ": unsupported xtb1 version " << get_u32(bytes_ + 4));
    XT_CHECK_MSG(get_u64(bytes_ + 32) ==
                     hash64(bytes_, kCorpusHeaderHashedBytes),
                 path << ": header checksum mismatch");
    XT_CHECK_MSG(get_u64(bytes_ + 24) == size_,
                 path << ": truncated (header records " << get_u64(bytes_ + 24)
                      << " bytes, file has " << size_ << ")");
    count_ = get_u64(bytes_ + 8);
    const std::uint64_t index_offset = get_u64(bytes_ + 16);
    XT_CHECK_MSG(index_offset >= kCorpusHeaderBytes &&
                     index_offset % 8 == 0 && index_offset <= size_ &&
                     size_ - index_offset == count_ * 8 + 8,
                 path << ": index offset/size inconsistent with tree count");
    records_end_ = index_offset;
    offsets_ = reinterpret_cast<const std::uint64_t*>(bytes_ + index_offset);
    XT_CHECK_MSG(get_u64(bytes_ + size_ - 8) == hash64(offsets_, count_ * 8),
                 path << ": index checksum mismatch");
    for (std::uint64_t i = 0; i < count_; ++i)
      XT_CHECK_MSG(offsets_[i] >= kCorpusHeaderBytes &&
                       offsets_[i] % 8 == 0 &&
                       offsets_[i] + 8 + 8 <= records_end_,
                   path << ": record " << i << " offset out of range");
  } catch (...) {
    if (bytes_ != nullptr) ::munmap(const_cast<unsigned char*>(bytes_), size_);
    throw;
  }
}

CorpusReader::~CorpusReader() {
  if (bytes_ != nullptr) ::munmap(const_cast<unsigned char*>(bytes_), size_);
}

bool CorpusReader::try_view(std::uint64_t i, View* out,
                            std::string* error) const {
  XT_CHECK_MSG(i < count_, "record index " << i << " out of range");
  const std::uint64_t off = offsets_[i];
  const unsigned char* rec = bytes_ + off;
  const std::uint32_t n32 = get_u32(rec);
  if (n32 == 0) return record_fail(error, i, "zero node count");
  if (n32 > 0x7fffffffu)
    return record_fail(error, i, "node count exceeds NodeId range");
  if (get_u32(rec + 4) != 0)
    return record_fail(error, i, "reserved field not zero");
  // 8 + 12n + 8 bytes must fit before the index.
  const std::uint64_t budget = records_end_ - off - 16;
  if (n32 > budget / 12)
    return record_fail(error, i, "node count overruns the record region");
  const std::uint64_t nb = std::uint64_t{n32} * 4;
  const std::uint64_t record_bytes = 8 + 3 * nb;
  if (get_u64(rec + record_bytes) != hash64(rec, record_bytes))
    return record_fail(error, i, "payload checksum mismatch");
  // Offsets are 8-aligned, so the i32 arrays at +8, +8+4n, +8+8n are
  // 4-aligned: safe to hand out as typed pointers.
  const auto* parent = reinterpret_cast<const NodeId*>(rec + 8);
  const auto* left = reinterpret_cast<const NodeId*>(rec + 8 + nb);
  const auto* right = reinterpret_cast<const NodeId*>(rec + 8 + 2 * nb);
  const auto n = static_cast<NodeId>(n32);
  const std::string bad = soa_structure_error(n, parent, left, right);
  if (!bad.empty()) return record_fail(error, i, bad);
  out->num_nodes = n;
  out->parent = parent;
  out->left = left;
  out->right = right;
  return true;
}

CorpusReader::View CorpusReader::view(std::uint64_t i) const {
  View v;
  std::string error;
  XT_CHECK_MSG(try_view(i, &v, &error), error);
  return v;
}

BinaryTree CorpusReader::materialize(std::uint64_t i) const {
  const View v = view(i);
  const auto n = static_cast<std::size_t>(v.num_nodes);
  return BinaryTree::from_soa(std::vector<NodeId>(v.parent, v.parent + n),
                              std::vector<NodeId>(v.left, v.left + n),
                              std::vector<NodeId>(v.right, v.right + n));
}

bool CorpusReader::sniff(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  char magic[4] = {};
  is.read(magic, 4);
  return is.gcount() == 4 && std::memcmp(magic, kCorpusMagic, 4) == 0;
}

}  // namespace xt
