// Corpus feeder: drains an xtb1 corpus through a *live*
// EmbeddingService instead of the standalone bulk pipeline.
//
// Where bulk_embed owns the whole machine, feed_corpus is the polite
// sibling: every record is submitted as a low-priority request with
// EmbedRequest::bulk set, so the service's admission reserve
// (ServiceConfig::bulk_queue_reserve) keeps headroom for interactive
// traffic and the priority queue serves that traffic first.  Bulk
// rejections are retried with backoff — backpressure slows the drain
// down, it never loses a record.
#pragma once

#include <chrono>
#include <cstdint>

#include "bulk/corpus.hpp"
#include "service/service.hpp"

namespace xt {

struct BulkFeedOptions {
  Theorem theorem = Theorem::kT1;
  /// Service priority of every bulk submit; below 0 so default-
  /// priority interactive requests always dequeue first.
  std::int32_t priority = -1;
  /// Max unresolved futures the feeder holds before draining the
  /// oldest — bounds feeder memory just like the pipeline's window.
  std::size_t max_outstanding = 32;
  /// Sleep between retries of a bulk-admission rejection.
  std::chrono::milliseconds retry_backoff{1};
  /// Give up on a record after this many rejections; -1 retries until
  /// the request is admitted or the service shuts down.
  int max_retries = -1;
};

struct BulkFeedStats {
  std::uint64_t submitted = 0;        // records whose final submission
                                      // was answered (or will be)
  std::uint64_t completed = 0;        // answered kOk
  std::uint64_t failed = 0;           // any terminal non-kOk answer
  std::uint64_t skipped_corrupt = 0;  // records try_view rejected
  std::uint64_t retries = 0;          // bulk-admission rejections retried
};

/// Feeds every valid record of `reader` through `service` and waits
/// for all responses.  Returns the tally; corrupt records are skipped
/// (counted), admission rejections are retried per the options.
BulkFeedStats feed_corpus(EmbeddingService& service,
                          const CorpusReader& reader,
                          const BulkFeedOptions& options = {});

}  // namespace xt
