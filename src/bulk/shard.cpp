#include "bulk/shard.hpp"

#include <array>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "btree/canonical.hpp"
#include "util/check.hpp"
#include "util/hash_ring.hpp"

namespace xt {

std::string ShardedBulkResult::to_json() const {
  std::ostringstream os;
  os << "{\n\"merged\": " << stats.to_json() << ",\n\"shards\": [";
  for (std::size_t i = 0; i < shard_stats.size(); ++i) {
    if (i > 0) os << ", ";
    os << shard_stats[i].to_json();
  }
  os << "]\n}";
  return os.str();
}

ShardedBulkResult sharded_bulk_embed(const CorpusReader& reader,
                                     const ShardedBulkOptions& options) {
  XT_CHECK(options.num_shards >= 1);
  const auto t0 = std::chrono::steady_clock::now();
  const HashRing ring(options.num_shards, options.points_per_shard);

  ShardedBulkResult out;
  out.shard_of.resize(reader.tree_count());
  std::vector<std::vector<std::uint64_t>> subsets(options.num_shards);

  // Partition pass: digest every record with the same strip kernel the
  // pipeline uses and route it on the ring.  Undigestable records are
  // round-robined; their owning pipeline re-discovers the corruption
  // and rejects them with the structured per-record error.
  {
    constexpr std::uint64_t kDigestStrip = 64;
    std::array<CorpusReader::View, kDigestStrip> views;
    std::array<char, kDigestStrip> view_ok{};
    std::vector<RawTreeRef> refs;
    std::vector<std::uint64_t> digests;
    CanonicalScratch scratch;
    for (std::uint64_t s = 0; s < reader.tree_count(); s += kDigestStrip) {
      const std::uint64_t strip =
          std::min<std::uint64_t>(kDigestStrip, reader.tree_count() - s);
      refs.clear();
      for (std::uint64_t j = 0; j < strip; ++j) {
        view_ok[j] = reader.try_view(s + j, &views[j], nullptr) ? 1 : 0;
        if (view_ok[j])
          refs.push_back({views[j].num_nodes, views[j].left, views[j].right});
      }
      digests.resize(refs.size());
      canonical_hash_batch(refs, digests, scratch);
      std::size_t next_digest = 0;
      for (std::uint64_t j = 0; j < strip; ++j) {
        const std::uint64_t i = s + j;
        const std::size_t shard =
            view_ok[j] ? ring.lookup(digests[next_digest++])
                       : static_cast<std::size_t>(i % options.num_shards);
        out.shard_of[i] = static_cast<std::uint32_t>(shard);
        subsets[shard].push_back(i);
      }
    }
  }

  // Drain each subset through its own pipeline, one driver thread per
  // shard.  Each pipeline owns its dedup cache and in-flight window;
  // embeds share the process ThreadPool, which is submit-safe from
  // concurrent drivers.
  std::vector<BulkResult> shard_results(options.num_shards);
  {
    std::mutex diag_mu;
    std::vector<std::thread> drivers;
    drivers.reserve(options.num_shards);
    for (std::size_t shard = 0; shard < options.num_shards; ++shard) {
      drivers.emplace_back([&, shard] {
        BulkOptions shard_options = options.bulk;
        if (options.bulk.diagnostic_sink) {
          shard_options.diagnostic_sink = [&, shard](const std::string& line) {
            std::lock_guard<std::mutex> lock(diag_mu);
            options.bulk.diagnostic_sink("[shard " + std::to_string(shard) +
                                         "] " + line);
          };
        }
        shard_results[shard] =
            bulk_embed(reader, shard_options, subsets[shard]);
      });
    }
    for (std::thread& t : drivers) t.join();
  }

  // Merge: per-shard counters sum, records re-assemble in corpus
  // order (every corpus record appears in exactly one subset).
  out.records.resize(reader.tree_count());
  out.shard_stats.reserve(options.num_shards);
  for (BulkResult& result : shard_results) {
    out.shard_stats.push_back(result.stats);
    out.stats.decoded += result.stats.decoded;
    out.stats.embedded += result.stats.embedded;
    out.stats.deduped += result.stats.deduped;
    out.stats.rejected += result.stats.rejected;
    out.stats.verified += result.stats.verified;
    out.stats.verify_failures += result.stats.verify_failures;
    for (BulkRecordResult& rec : result.records) {
      const std::uint64_t i = rec.index;
      out.records[i] = std::move(rec);
    }
  }
  out.stats.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.stats.trees_per_s =
      out.stats.wall_s > 0.0
          ? static_cast<double>(out.stats.decoded) / out.stats.wall_s
          : 0.0;

  XT_CHECK_MSG(out.stats.decoded == reader.tree_count(),
               "sharded bulk lost records: decoded "
                   << out.stats.decoded << " of " << reader.tree_count());
  XT_CHECK_MSG(out.stats.accounting_ok(),
               "sharded bulk accounting violated: decoded "
                   << out.stats.decoded << " != embedded "
                   << out.stats.embedded << " + deduped " << out.stats.deduped
                   << " + rejected " << out.stats.rejected);
  return out;
}

}  // namespace xt
