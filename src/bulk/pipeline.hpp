// Streaming bulk-embed pipeline (the ISSUE 5 tentpole): drains an
// xtb1 corpus through decode -> canonical digest -> dedup -> embed ->
// sampled certificate verify with bounded in-flight work.
//
// The stages are fused into one pass per record:
//
//   decode   zero-copy CorpusReader::try_view — checksum + structural
//            validation straight off the mmap, no BinaryTree copy;
//   digest   canonical_form on the raw left/right arrays (bit-identical
//            to the service's digest of a materialised tree);
//   dedup    a CanonicalCache keyed exactly like the service cache,
//            plus an in-flight table so concurrent duplicates attach
//            to the pending embed instead of embedding twice;
//   embed    the canonical tree on the shared work-stealing ThreadPool,
//            one reusable EmbedArena per concurrent task (the same
//            allocation-free hot path the service shards use);
//   verify   a deterministic sample of records is re-checked through
//            the certificate chain's differential oracle — claims are
//            recomputed from the *served* embedding, so the sample is
//            evidence about what bulk actually produced;
//   account  every record resolves to exactly one of embedded /
//            deduped / rejected, so decoded == embedded + deduped +
//            rejected always holds (pinned by bulk_test).
//
// Backpressure is explicit: at most max_in_flight embeds are
// outstanding; the driver thread resolves the oldest before admitting
// more, so memory stays bounded no matter the corpus size.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bulk/corpus.hpp"
#include "embedding/embedding.hpp"
#include "service/request.hpp"

namespace xt {

struct BulkOptions {
  Theorem theorem = Theorem::kT1;
  /// Guest nodes per host vertex (Theorem 1; ignored by T2/T3).
  NodeId load = 16;
  /// Maximum embeds outstanding on the pool before the driver blocks
  /// on the oldest (>= 1).  Bounds memory and pool queue depth.
  std::size_t max_in_flight = 64;
  /// Capacity of the pipeline's canonical-embedding cache (>= 1).
  std::size_t dedup_capacity = 4096;
  /// Fraction of records (deterministically chosen from verify_seed)
  /// re-verified through the certificate-chain oracle.  0 disables.
  double verify_sample = 0.0;
  std::uint64_t verify_seed = 1;
  /// Keep each record's embedding in its BulkRecordResult.  Off by
  /// default: a corpus-sized result vector of embeddings defeats the
  /// bounded-memory design, so opt in only for tests / small runs.
  bool keep_embeddings = false;
  /// Forwarded to XTreeEmbedder::Options — placements are bit-identical
  /// for any value, so this only trades latency for parallelism.
  int intra_embed_parallelism = 1;
  /// One line per notable event (rejected record, verify failure).
  std::function<void(const std::string&)> diagnostic_sink;
};

enum class BulkRecordStatus {
  kEmbedded,  // this record's embed ran (cache miss, in-flight lead)
  kDeduped,   // served by the cache or by another record's embed
  kRejected,  // corrupt record, or its lead embed failed
};

[[nodiscard]] const char* bulk_record_status_name(BulkRecordStatus s);

struct BulkRecordResult {
  std::uint64_t index = 0;
  BulkRecordStatus status = BulkRecordStatus::kRejected;
  std::uint64_t canonical_hash = 0;
  std::int32_t host_height = 0;
  NodeId load_factor = 0;
  /// Set for kRejected (and for a failed sampled verify).
  std::string error;
  /// The served embedding, iff keep_embeddings and not rejected.
  std::optional<Embedding> embedding;
};

struct BulkStats {
  std::uint64_t decoded = 0;
  std::uint64_t embedded = 0;
  std::uint64_t deduped = 0;
  std::uint64_t rejected = 0;
  std::uint64_t verified = 0;
  std::uint64_t verify_failures = 0;
  double wall_s = 0.0;
  double trees_per_s = 0.0;

  /// The pipeline's conservation law: every decoded record resolved to
  /// exactly one terminal status.
  [[nodiscard]] bool accounting_ok() const {
    return decoded == embedded + deduped + rejected;
  }
  [[nodiscard]] std::string to_json() const;
};

struct BulkResult {
  BulkStats stats;
  /// One entry per corpus record, in corpus order.
  std::vector<BulkRecordResult> records;
};

/// Drains every record of `reader` through the pipeline.  Placements
/// are bit-identical to submitting each tree to the embedding service
/// one at a time (pinned by bulk_test): same canonical digest, same
/// canonical-tree embed, same O(n) remap.
[[nodiscard]] BulkResult bulk_embed(const CorpusReader& reader,
                                    const BulkOptions& options);

/// Index-subset drain (ISSUE 10): processes only `indices` (corpus
/// record ids, in the given order — the sharded fan-out passes each
/// shard its ring-owned subset in corpus order).  `records` has one
/// entry per subset slot with records[k].index == indices[k]; the
/// verify sample keys on the corpus index, so a record's sampling
/// decision is independent of how the corpus was partitioned.
[[nodiscard]] BulkResult bulk_embed(const CorpusReader& reader,
                                    const BulkOptions& options,
                                    const std::vector<std::uint64_t>& indices);

}  // namespace xt
