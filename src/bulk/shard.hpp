// Sharded bulk ingestion (ISSUE 10): fan an xtb1 corpus over N
// per-shard bulk_embed pipelines keyed by the same consistent-hash
// ring the request router uses (util/hash_ring.hpp).
//
// The partition pass digests every record (the strip-of-64 batch
// kernel, zero-copy off the mmap) and routes it by ring.lookup(
// canonical digest) — exactly how xt_router routes live requests, so
// a corpus pre-warmed through this fan-out lands each shape on the
// shard that will serve its traffic.  Records too corrupt to digest
// cannot be routed by content; they fall back to round-robin by
// corpus index, and the owning shard's pipeline rejects them with the
// usual structured error.
//
// Because the digest decides the shard, every member of an
// isomorphism class lands on one shard, in corpus order: each shard's
// pipeline sees the same lead record and the same duplicate set the
// single-process drain would have seen, so per-record statuses,
// placements, and the global embedded/deduped/rejected split are
// identical to bulk_embed over the whole corpus (pinned by
// bulk_test).  The merged accounting identity
//
//   decoded == embedded + deduped + rejected == corpus tree count
//
// holds globally, enforced by XT_CHECK.
//
// Shard pipelines run concurrently, one driver thread each, embeds
// sharing the process ThreadPool — the in-process model of N
// independent xt_serve shards ingesting their keyspace slice.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bulk/pipeline.hpp"

namespace xt {

struct ShardedBulkOptions {
  /// Per-shard pipeline options (theorem, load, window, dedup
  /// capacity, verify sample...).  dedup_capacity applies per shard.
  BulkOptions bulk;
  /// Number of shard pipelines (>= 1).
  std::size_t num_shards = 1;
  /// Ring points per shard — must match the router's ring for the
  /// "pre-warm the serving shard" story to hold (64 everywhere).
  std::size_t points_per_shard = 64;
};

struct ShardedBulkResult {
  /// Merged accounting: counters summed across shards, wall_s the
  /// fan-out's wall clock (not the sum of shard walls).
  BulkStats stats;
  /// Each shard's own accounting, indexed by shard id.
  std::vector<BulkStats> shard_stats;
  /// One entry per corpus record, in corpus order (re-assembled from
  /// the shard subsets).
  std::vector<BulkRecordResult> records;
  /// The routing decision per corpus record.
  std::vector<std::uint32_t> shard_of;

  [[nodiscard]] std::string to_json() const;
};

/// Partitions `reader` over the ring and drains every shard subset
/// through its own bulk_embed pipeline.  num_shards == 1 degenerates
/// to a plain bulk_embed with ring bookkeeping.
[[nodiscard]] ShardedBulkResult sharded_bulk_embed(
    const CorpusReader& reader, const ShardedBulkOptions& options);

}  // namespace xt
