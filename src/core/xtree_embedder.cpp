#include "core/xtree_embedder.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <limits>
#include <cstdio>
#include <utility>

#include "core/nset.hpp"
#include "separator/piece.hpp"
#include "separator/splitter.hpp"
#include "util/check.hpp"

namespace xt {
namespace {

/// A piece hanging off the partial embedding: the piece itself plus
/// its characteristic address (the single host vertex holding all of
/// its embedded neighbours, paper condition (6)).
struct Attached {
  Piece piece;
  VertexId char_addr = kInvalidVertex;
};

class EmbedderImpl {
 public:
  EmbedderImpl(const BinaryTree& guest, const XTreeEmbedder::Options& opt,
               XTreeEmbedder::EmbedArena& arena)
      : guest_(guest),
        opt_(opt),
        height_(opt.height >= 0
                    ? opt.height
                    : XTreeEmbedder::optimal_height(guest.num_nodes(),
                                                    opt.load)),
        host_(height_),
        assign_(static_cast<std::size_t>(guest.num_nodes()), kInvalidVertex),
        load_(static_cast<std::size_t>(host_.num_vertices()), 0),
        pool_(static_cast<std::size_t>(host_.num_vertices())),
        weight_(static_cast<std::size_t>(host_.num_vertices()), 0),
        scratch_(arena.scratch),
        split_res_(arena.split_result) {
    XT_CHECK(guest.num_nodes() >= 1);
    XT_CHECK(opt.load >= 1);
    XT_CHECK_MSG(static_cast<std::int64_t>(opt.load) *
                         (host_.num_vertices()) >=
                     guest.num_nodes(),
                 "X(" << height_ << ") cannot hold " << guest.num_nodes()
                      << " nodes at load " << opt.load);
    stats_.height = height_;
  }

  XTreeEmbedder::Result run() {
    seed_round0();
    for (std::int32_t round = 1; round <= height_; ++round) {
      run_round(round);
      if (opt_.audit_rounds) audit(round);
    }
    final_repair();
    XT_CHECK(placed_count_ == guest_.num_nodes());
    Embedding emb(guest_.num_nodes(), host_.num_vertices());
    for (NodeId v = 0; v < guest_.num_nodes(); ++v)
      emb.place(v, assign_[static_cast<std::size_t>(v)]);
    return {std::move(emb), std::move(stats_)};
  }

  [[nodiscard]] bool is_placed(NodeId v) const {
    return assign_[static_cast<std::size_t>(v)] != kInvalidVertex;
  }
  [[nodiscard]] VertexId host_of(NodeId v) const {
    return assign_[static_cast<std::size_t>(v)];
  }

 private:
  // --- placement ----------------------------------------------------------

  [[nodiscard]] NodeId free_slots(VertexId x) const {
    return opt_.load - load_[static_cast<std::size_t>(x)];
  }

  void place(NodeId v, VertexId x) {
    XT_CHECK_MSG(free_slots(x) > 0, "vertex " << x << " over capacity");
    XT_CHECK_MSG(!is_placed(v), "guest node placed twice");
    assign_[static_cast<std::size_t>(v)] = x;
    ++placed_count_;
    ++load_[static_cast<std::size_t>(x)];
    if (opt_.check_discipline) {
      scratch_nbr_.clear();
      guest_.neighbors(v, scratch_nbr_);
      for (NodeId u : scratch_nbr_) {
        if (!is_placed(u)) continue;
        const std::int32_t d = host_.distance(host_of(u), x);
        stats_.max_observed_embed_distance =
            std::max(stats_.max_observed_embed_distance, d);
        if (!respects_condition_3prime(host_, host_of(u), x)) {
          ++stats_.discipline_violations;
          if (diag_) {
            char buf[192];
            std::snprintf(buf, sizeof buf,
                          "VIOL phase=%s node=%d at=%s nbr=%s d=%d", phase_, v,
                          host_.label_of(x).c_str(),
                          host_.label_of(host_of(u)).c_str(), d);
            diag_(buf);
          }
        }
      }
    }
  }

  void place_all(const std::vector<NodeId>& nodes, VertexId x) {
    for (NodeId v : nodes) place(v, x);
  }

  void attach(Piece&& piece, VertexId at, VertexId char_addr) {
    XT_CHECK(piece.num_designated() >= 1);
    pool_[static_cast<std::size_t>(at)].push_back(
        {std::move(piece), char_addr});
  }

  /// Applies a split result: the remain boundary and pieces stay at
  /// `remain_at`, the extract side goes to `extract_at`.  The result's
  /// pieces are moved out; its vectors stay with the owner for reuse.
  void apply_split(SplitResult& res, VertexId remain_at,
                   VertexId extract_at) {
    place_all(res.embed_remain, remain_at);
    place_all(res.embed_extract, extract_at);
    for (auto& p : res.pieces_remain) attach(std::move(p), remain_at, remain_at);
    for (auto& p : res.pieces_extract)
      attach(std::move(p), extract_at, extract_at);
    stats_.median_fixes += res.median_fixes;
  }

  // --- round 0 ------------------------------------------------------------

  void seed_round0() {
    // D_0: the first min(load, n) nodes of a BFS from the guest root —
    // a connected subtree, so every complement component hangs by one
    // edge (collinearity is immediate).
    const NodeId take = std::min<NodeId>(opt_.load, guest_.num_nodes());
    std::vector<NodeId> queue{guest_.root()};
    std::vector<char> chosen(static_cast<std::size_t>(guest_.num_nodes()), 0);
    chosen[static_cast<std::size_t>(guest_.root())] = 1;
    for (std::size_t head = 0;
         head < queue.size() && queue.size() < static_cast<std::size_t>(take);
         ++head) {
      scratch_nbr_.clear();
      guest_.neighbors(queue[head], scratch_nbr_);
      for (NodeId v : scratch_nbr_) {
        if (chosen[static_cast<std::size_t>(v)]) continue;
        if (queue.size() >= static_cast<std::size_t>(take)) break;
        chosen[static_cast<std::size_t>(v)] = 1;
        queue.push_back(v);
      }
    }
    const VertexId root = host_.root();
    for (NodeId v : queue) place(v, root);
    for (Piece& p : collect_pieces(guest_, chosen))
      attach(std::move(p), root, root);
  }

  // --- per-round driver -----------------------------------------------------

  [[nodiscard]] SplitQuality split_quality() const {
    return opt_.lemma1_only ? SplitQuality::kLemma1 : SplitQuality::kLemma2;
  }

  /// Balancing cut dispatch: the generic carve-and-refine splitter by
  /// default, the paper's literal find2 under Options::paper_find2.
  /// Returns the embedder's reusable result buffer — valid until the
  /// next run_split / run_extract call.
  [[nodiscard]] SplitResult& run_split(const Piece& piece, NodeId delta) {
    if (opt_.paper_find2 && !opt_.lemma1_only)
      split_piece_find2(guest_, piece, delta, scratch_, split_res_);
    else
      split_piece(guest_, piece, delta, split_quality(), scratch_, split_res_);
    return split_res_;
  }

  /// extract_whole_piece through the same reusable buffers.
  [[nodiscard]] SplitResult& run_extract(const Piece& piece) {
    extract_whole_piece(guest_, piece, scratch_, split_res_);
    return split_res_;
  }

  void run_round(std::int32_t round) {
    compute_weights(round - 1);
    for (std::int32_t j = 0; opt_.disable_adjust ? false : j <= round - 2;
         ++j) {
      const std::int64_t first = (std::int64_t{1} << j) - 1;
      const std::int64_t count = std::int64_t{1} << j;
      for (std::int64_t k = 0; k < count; ++k)
        adjust(static_cast<VertexId>(first + k), round);
    }
    const std::int64_t first = (std::int64_t{1} << (round - 1)) - 1;
    const std::int64_t count = std::int64_t{1} << (round - 1);
    for (std::int64_t k = 0; k < count; ++k)
      split(static_cast<VertexId>(first + k), round);
    if (!opt_.disable_level_fill) level_fill(round);
    if (opt_.record_trace) record_trace(round);
  }

  /// Cross-leaf fill after the SPLIT sweep: a leaf with free slots
  /// borrows whole pieces from its sibling and horizontal neighbours
  /// (all within distance <= 3 of any borrowed piece's characteristic
  /// address).  This is the paper's last-two-levels rearrangement
  /// applied at every level, and it keeps deficits from accumulating.
  void level_fill(std::int32_t round) {
    set_phase("level_fill");
    const std::int64_t first = (std::int64_t{1} << round) - 1;
    const std::int64_t count = std::int64_t{1} << round;
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::int64_t k = 0; k < count; ++k) {
        const auto v = static_cast<VertexId>(first + k);
        if (free_slots(v) == 0) continue;
        fill_vertex(v);
        while (free_slots(v) > 0) {
          const VertexId parent = host_.parent(v);
          const VertexId sibling =
              host_.child(parent, 0) == v ? host_.child(parent, 1)
                                          : host_.child(parent, 0);
          bool borrowed = false;
          // Donor ring: sibling and horizontal neighbours up to 3
          // away.  A piece may be pulled only if its characteristic
          // address stays within distance 3 of v.
          const VertexId p1 = host_.predecessor(v);
          const VertexId s1 = host_.successor(v);
          const VertexId p2 = p1 == kInvalidVertex ? kInvalidVertex
                                                   : host_.predecessor(p1);
          const VertexId s2 = s1 == kInvalidVertex ? kInvalidVertex
                                                   : host_.successor(s1);
          const VertexId p3 = p2 == kInvalidVertex ? kInvalidVertex
                                                   : host_.predecessor(p2);
          const VertexId s3 = s2 == kInvalidVertex ? kInvalidVertex
                                                   : host_.successor(s2);
          for (VertexId donor : {sibling, p1, s1, p2, s2, p3, s3}) {
            if (donor == kInvalidVertex) continue;
            auto& dp = pool_[static_cast<std::size_t>(donor)];
            for (std::size_t i = 0; i < dp.size(); ++i) {
              if (!respects_condition_3prime(host_, dp[i].char_addr, v))
                continue;
              if (dp[i].piece.num_designated() <=
                  static_cast<int>(free_slots(v))) {
                Attached unit = std::move(dp[i]);
                dp[i] = std::move(dp.back());
                dp.pop_back();
                SplitResult& res = run_extract(unit.piece);
                scratch_.recycle(std::move(unit.piece));
                stats_.peel_fills +=
                    static_cast<std::int64_t>(res.embed_extract.size());
                place_all(res.embed_extract, v);
                for (auto& p : res.pieces_extract) attach(std::move(p), v, v);
                borrowed = true;
                progress = true;
                break;
              }
            }
            if (borrowed) break;
          }
          if (!borrowed && round == height_) {
            // Final level only: a two-designated piece may surrender a
            // single designated node even though the remainder then
            // touches two embedded vertices — there are no further
            // SPLIT rounds to confuse, and the repair pass works from
            // real adjacency, not characteristic addresses.
            for (VertexId d :
                 {sibling, p1, s1, p2, s2, p3, s3}) {
              if (d == kInvalidVertex) continue;
              auto& dp = pool_[static_cast<std::size_t>(d)];
              for (std::size_t i = 0; i < dp.size(); ++i) {
                if (dp[i].piece.num_designated() != 2) continue;
                if (!respects_condition_3prime(host_, dp[i].char_addr, v))
                continue;
                Attached unit = std::move(dp[i]);
                dp[i] = std::move(dp.back());
                dp.pop_back();
                const NodeId keep = unit.piece.designated[1];
                Piece half = std::move(unit.piece);
                half.designated[1] = kInvalidNode;
                SplitResult& res = run_extract(half);
                scratch_.recycle(std::move(half));
                stats_.peel_fills +=
                    static_cast<std::int64_t>(res.embed_extract.size());
                place_all(res.embed_extract, v);
                for (auto& p : res.pieces_extract) {
                  if (std::find(p.nodes.begin(), p.nodes.end(), keep) !=
                      p.nodes.end())
                    p.add_designated(keep);
                  attach(std::move(p), d, unit.char_addr);
                }
                borrowed = true;
                progress = true;
                break;
              }
              if (borrowed) break;
            }
          }
          if (!borrowed) break;
          fill_vertex(v);
        }
      }
    }
  }

  // Subtree weights (embedded + attached mass) for all vertices on
  // levels 0..top_level, attributing deeper deposits to their
  // top_level ancestors' children pools.
  void compute_weights(std::int32_t top_level) {
    const VertexId last =
        static_cast<VertexId>((std::int64_t{2} << top_level) - 2);
    for (VertexId v = last; v >= 0; --v) {
      std::int64_t w = load_[static_cast<std::size_t>(v)];
      for (const auto& a : pool_[static_cast<std::size_t>(v)])
        w += a.piece.size();
      if (host_.level_of(v) < top_level) {
        w += weight_[static_cast<std::size_t>(host_.child(v, 0))];
        w += weight_[static_cast<std::size_t>(host_.child(v, 1))];
      }
      weight_[static_cast<std::size_t>(v)] = w;
    }
  }

  /// Adds `delta` to the weights of `leaf` (a level-(round-1) vertex)
  /// and all its ancestors.
  void bump_weights(VertexId leaf, std::int64_t delta) {
    for (VertexId v = leaf; v != kInvalidVertex; v = host_.parent(v))
      weight_[static_cast<std::size_t>(v)] += delta;
  }

  [[nodiscard]] VertexId descend(VertexId v, int which,
                                 std::int32_t to_level) const {
    while (host_.level_of(v) < to_level) v = host_.child(v, which);
    return v;
  }

  // --- ADJUST ---------------------------------------------------------------

  void adjust(VertexId a, std::int32_t round) {
    set_phase("adjust");
    ++stats_.adjust_calls;
    const VertexId a0 = host_.child(a, 0);
    const VertexId a1 = host_.child(a, 1);
    const std::int64_t diff = weight_[static_cast<std::size_t>(a0)] -
                              weight_[static_cast<std::size_t>(a1)];
    if (std::abs(diff) < 2) return;

    // Donor corner leaf D (level round-1) on the heavy side; boundary
    // vertices vd (heavy corner, level round) and vr = its horizontal
    // neighbour under the light side.  Paper: trees attached to
    // a01^{i-2-|a|} shift to a10^{i-2-|a|}, boundary laid at
    // a01^{i-1-|a|} and a10^{i-1-|a|}.
    const bool heavy_left = diff > 0;
    const VertexId donor = heavy_left ? descend(a0, 1, round - 1)
                                      : descend(a1, 0, round - 1);
    const VertexId receiver_leaf =
        heavy_left ? host_.successor(donor) : host_.predecessor(donor);
    XT_CHECK(receiver_leaf != kInvalidVertex);
    const VertexId vd = host_.child(donor, heavy_left ? 1 : 0);
    const VertexId vr = host_.child(receiver_leaf, heavy_left ? 0 : 1);
    XT_CHECK(heavy_left ? host_.successor(vd) == vr
                        : host_.predecessor(vd) == vr);

    std::int64_t remaining = std::abs(diff) / 2;
    NodeId laid_vd = 0;
    NodeId laid_vr = 0;
    // Donor pools: the corner leaf itself, then (the paper's omitted
    // "revision of ADJUST" corner case, reconstructed) its neighbours
    // deeper inside the heavy subtree — any piece is eligible as long
    // as its characteristic address stays within distance 3 of both
    // boundary vertices.
    std::array<VertexId, 3> donors{donor, kInvalidVertex, kInvalidVertex};
    int num_donors = 1;
    {
      VertexId back = donor;
      for (int step = 0; step < 2; ++step) {
        back = heavy_left ? host_.predecessor(back) : host_.successor(back);
        if (back == kInvalidVertex) break;
        donors[static_cast<std::size_t>(num_donors++)] = back;
      }
    }
    auto pick_unit = [&](Attached& out) {
      for (int di = 0; di < num_donors; ++di) {
        const VertexId d = donors[static_cast<std::size_t>(di)];
        auto& dp = pool_[static_cast<std::size_t>(d)];
        std::size_t best = dp.size();
        for (std::size_t i = 0; i < dp.size(); ++i) {
          if (d != donor &&
              (!respects_condition_3prime(host_, dp[i].char_addr, vd) ||
               !respects_condition_3prime(host_, dp[i].char_addr, vr)))
            continue;
          if (best == dp.size() ||
              dp[i].piece.size() > dp[best].piece.size())
            best = i;
        }
        if (best < dp.size()) {
          out = std::move(dp[best]);
          dp[best] = std::move(dp.back());
          dp.pop_back();
          return true;
        }
      }
      return false;
    };
    auto& donor_pool = pool_[static_cast<std::size_t>(donor)];
    while (remaining >= 1) {
      Attached unit;
      if (!pick_unit(unit)) break;

      const NodeId psize = unit.piece.size();
      const NodeId embeds_needed = std::min<NodeId>(
          2, static_cast<NodeId>(unit.piece.num_designated()));
      // Budget: the paper lays at most 4 ADJUST nodes per corner.  We
      // stop shifting rather than exceed it (shortfall is recorded).
      if (laid_vr + embeds_needed > 4 || free_slots(vr) < embeds_needed) {
        donor_pool.push_back(std::move(unit));
        break;
      }
      std::int64_t moved = 0;
      if (3 * static_cast<std::int64_t>(psize) <= 4 * remaining) {
        // Shift the whole piece: designated nodes land on vr, the rest
        // re-forms attached to vr.
        SplitResult& res = run_extract(unit.piece);
        scratch_.recycle(std::move(unit.piece));
        laid_vr += static_cast<NodeId>(res.embed_extract.size());
        apply_split(res, vd, vr);
        ++stats_.whole_moves;
        moved = psize;
      } else {
        // Lemma 2 split: extract ~remaining nodes across the corner.
        SplitResult& res = run_split(unit.piece,
                                     static_cast<NodeId>(remaining));
        // Boundary sets are usually <= 4 but a collinearity promotion
        // can add a node; verify against the actual result.
        if (static_cast<NodeId>(res.embed_remain.size()) > free_slots(vd) ||
            static_cast<NodeId>(res.embed_extract.size()) > free_slots(vr)) {
          donor_pool.push_back(std::move(unit));
          break;
        }
        scratch_.recycle(std::move(unit.piece));
        laid_vd += static_cast<NodeId>(res.embed_remain.size());
        laid_vr += static_cast<NodeId>(res.embed_extract.size());
        moved = res.extract_total;
        apply_split(res, vd, vr);
        ++stats_.lemma_splits;
        ++stats_.adjust_shifts;
        remaining -= moved;
        bump_weights(donor, -moved);
        bump_weights(receiver_leaf, moved);
        break;  // a split lands within the lemma tolerance of the target
      }
      ++stats_.adjust_shifts;
      remaining -= moved;
      bump_weights(donor, -moved);
      bump_weights(receiver_leaf, moved);
    }
    if (remaining > 0) {
      stats_.unmet_adjust_demand += remaining;
      if (diag_) {
        char buf[192];
        std::snprintf(buf, sizeof buf,
                      "UNMET round=%d a=%s unmet=%lld diff=%lld donorpool=%zu",
                      round, host_.label_of(a).c_str(),
                      static_cast<long long>(remaining),
                      static_cast<long long>(diff),
                      pool_[static_cast<std::size_t>(donor)].size());
        diag_(buf);
      }
    }
    if (laid_vd > 4 || laid_vr > 4) ++stats_.adjust_budget_overruns;
  }

  // --- SPLIT ---------------------------------------------------------------

  void split(VertexId b, std::int32_t round) {
    set_phase("split");
    ++stats_.split_calls;
    const VertexId c0 = host_.child(b, 0);
    const VertexId c1 = host_.child(b, 1);

    // Gather units: pieces attached to b plus this round's ADJUST
    // deposits already sitting at the children (the paper's S3 set,
    // re-assignable between siblings).  units_/unit_side_ are member
    // buffers reused across the whole run.
    auto& units = units_;
    units.clear();
    for (VertexId src : {b, c0, c1}) {
      auto& p = pool_[static_cast<std::size_t>(src)];
      for (auto& a : p) units.push_back(std::move(a));
      p.clear();
    }

    // Greedy LPT assignment (stands in for the paper's pairwise
    // interval matching; both bound the imbalance by the largest
    // unit).  Base loads are this round's ADJUST boundary nodes.
    std::sort(units.begin(), units.end(),
              [](const Attached& x, const Attached& y) {
                return x.piece.size() > y.piece.size();
              });
    std::array<std::int64_t, 2> mass{load_[static_cast<std::size_t>(c0)],
                                     load_[static_cast<std::size_t>(c1)]};
    auto& side = unit_side_;
    side.assign(units.size(), 0);
    for (std::size_t i = 0; i < units.size(); ++i) {
      const int s = mass[0] <= mass[1] ? 0 : 1;
      side[i] = s;
      mass[static_cast<std::size_t>(s)] += units[i].piece.size();
    }

    // Orientation (paper: "the larger difference affects the larger
    // set"): mirror the whole assignment if that strictly improves the
    // balance, and otherwise orient the heavier half toward the
    // lighter outside neighbour so next round's ADJUST finds mass at
    // the right corner.
    {
      const std::int64_t base0 = load_[static_cast<std::size_t>(c0)];
      const std::int64_t base1 = load_[static_cast<std::size_t>(c1)];
      const std::int64_t m0 = mass[0] - base0;
      const std::int64_t m1 = mass[1] - base1;
      const std::int64_t keep = std::abs(base0 + m0 - base1 - m1);
      const std::int64_t flip = std::abs(base0 + m1 - base1 - m0);
      bool mirror = flip < keep;
      if (flip == keep && m0 != m1) {
        const VertexId left_nbr = host_.predecessor(b);
        const VertexId right_nbr = host_.successor(b);
        const std::int64_t wl =
            left_nbr == kInvalidVertex
                ? std::numeric_limits<std::int64_t>::max()
                : weight_[static_cast<std::size_t>(left_nbr)];
        const std::int64_t wr =
            right_nbr == kInvalidVertex
                ? std::numeric_limits<std::int64_t>::max()
                : weight_[static_cast<std::size_t>(right_nbr)];
        const bool heavier_left = m0 > m1;
        const bool want_heavy_left = wl <= wr;
        mirror = heavier_left != want_heavy_left;
      }
      if (mirror) {
        for (auto& s : side) s ^= 1;
      }
    }

    // Process units: pieces whose characteristic address is two or
    // more levels up are *due* — their designated nodes are laid out
    // now (the paper's S1 layout and the "children of grandparent
    // nodes" rule).  Everything else just attaches.
    for (std::size_t i = 0; i < units.size(); ++i) {
      VertexId c = side[i] == 0 ? c0 : c1;
      Attached& unit = units[i];
      const std::int32_t char_level = host_.level_of(unit.char_addr);
      if (char_level <= round - 2) {
        const auto embeds =
            static_cast<NodeId>(unit.piece.num_designated());
        if (free_slots(c) < embeds) {
          const VertexId other = (c == c0) ? c1 : c0;
          if (free_slots(other) >= embeds) c = other;
        }
        if (free_slots(c) >= embeds) {
          SplitResult& res = run_extract(unit.piece);
          scratch_.recycle(std::move(unit.piece));
          place_all(res.embed_extract, c);
          for (auto& p : res.pieces_extract) attach(std::move(p), c, c);
        } else {
          // No room anywhere: keep it attached (overdue); a later
          // round or the repair phase resolves it and the measured
          // dilation reports the cost.
          attach(std::move(unit.piece), c, unit.char_addr);
        }
      } else {
        attach(std::move(unit.piece), c, unit.char_addr);
      }
    }

    // Fine balance between the two children with one Lemma 2 split
    // across the sibling edge (paper: "the 4 free places ... reduce
    // the difference between A(a0) and A(a1)").
    balance_children(c0, c1);

    fill_vertex(c0);
    fill_vertex(c1);
  }

  [[nodiscard]] std::int64_t vertex_mass(VertexId v) const {
    std::int64_t w = load_[static_cast<std::size_t>(v)];
    for (const auto& a : pool_[static_cast<std::size_t>(v)])
      w += a.piece.size();
    return w;
  }

  void balance_children(VertexId c0, VertexId c1) {
    set_phase("balance");
    const std::int64_t diff = vertex_mass(c0) - vertex_mass(c1);
    const std::int64_t target = std::abs(diff) / 2;
    if (target < 1) return;
    const VertexId heavy = diff > 0 ? c0 : c1;
    const VertexId light = diff > 0 ? c1 : c0;
    auto& hp = pool_[static_cast<std::size_t>(heavy)];
    if (hp.empty()) return;
    std::size_t best = 0;
    for (std::size_t i = 1; i < hp.size(); ++i) {
      if (hp[i].piece.size() > hp[best].piece.size()) best = i;
    }
    Attached unit = std::move(hp[best]);
    hp[best] = std::move(hp.back());
    hp.pop_back();
    const NodeId psize = unit.piece.size();
    if (3 * static_cast<std::int64_t>(psize) <= 4 * target) {
      SplitResult& res = run_extract(unit.piece);
      if (static_cast<NodeId>(res.embed_extract.size()) > free_slots(light)) {
        hp.push_back(std::move(unit));
        return;
      }
      scratch_.recycle(std::move(unit.piece));
      apply_split(res, heavy, light);
      ++stats_.whole_moves;
    } else {
      SplitResult& res = run_split(unit.piece, static_cast<NodeId>(target));
      if (static_cast<NodeId>(res.embed_remain.size()) > free_slots(heavy) ||
          static_cast<NodeId>(res.embed_extract.size()) > free_slots(light)) {
        hp.push_back(std::move(unit));
        return;
      }
      scratch_.recycle(std::move(unit.piece));
      apply_split(res, heavy, light);
      ++stats_.lemma_splits;
    }
  }

  /// Fills vertex c to `load` by peeling attached pieces: laying out
  /// all designated nodes of a piece keeps every re-formed component's
  /// embedded neighbours on the single vertex c.
  void fill_vertex(VertexId c) {
    set_phase("fill");
    auto& pool = pool_[static_cast<std::size_t>(c)];
    while (free_slots(c) > 0 && !pool.empty()) {
      // Prefer the most urgent piece (lowest characteristic address
      // level), then the smallest, so intervals clear early and
      // fragments get absorbed whole.
      std::size_t best = 0;
      for (std::size_t i = 1; i < pool.size(); ++i) {
        const auto li = host_.level_of(pool[i].char_addr);
        const auto lb = host_.level_of(pool[best].char_addr);
        if (li < lb ||
            (li == lb && pool[i].piece.size() < pool[best].piece.size()))
          best = i;
      }
      if (pool[best].piece.num_designated() > free_slots(c)) {
        // Find any piece whose designated fit into the free slots, or
        // a two-designated piece already addressed at c — that one can
        // legally surrender a single designated node (the remaining
        // component keeps its other neighbour on the same vertex c).
        bool found = false;
        std::size_t halvable = pool.size();
        for (std::size_t i = 0; i < pool.size(); ++i) {
          if (pool[i].piece.num_designated() <= free_slots(c)) {
            best = i;
            found = true;
            break;
          }
          if (pool[i].char_addr == c) halvable = i;
        }
        if (!found && halvable < pool.size()) {
          Attached unit = std::move(pool[halvable]);
          pool[halvable] = std::move(pool.back());
          pool.pop_back();
          peel_single_designated(c, std::move(unit));
          continue;
        }
        if (!found) break;  // deficit; repair handles the remainder
      }
      Attached unit = std::move(pool[best]);
      pool[best] = std::move(pool.back());
      pool.pop_back();
      SplitResult& res = run_extract(unit.piece);
      scratch_.recycle(std::move(unit.piece));
      stats_.peel_fills += static_cast<std::int64_t>(res.embed_extract.size());
      place_all(res.embed_extract, c);
      for (auto& p : res.pieces_extract) attach(std::move(p), c, c);
    }
  }

  /// Lays out only designated[0] of a two-designated piece whose
  /// characteristic address is already c: the component retaining
  /// designated[1] keeps all its embedded neighbours on c.
  void peel_single_designated(VertexId c, Attached unit) {
    XT_CHECK(unit.char_addr == c && unit.piece.num_designated() == 2);
    const NodeId keep = unit.piece.designated[1];
    Piece half = std::move(unit.piece);
    half.designated[1] = kInvalidNode;
    SplitResult& res = run_extract(half);
    scratch_.recycle(std::move(half));
    stats_.peel_fills += static_cast<std::int64_t>(res.embed_extract.size());
    place_all(res.embed_extract, c);
    for (auto& p : res.pieces_extract) {
      if (std::find(p.nodes.begin(), p.nodes.end(), keep) != p.nodes.end())
        p.add_designated(keep);
      attach(std::move(p), c, c);
    }
  }

  // --- final repair ---------------------------------------------------------

  void final_repair() {
    set_phase("repair");
    if (diag_) {
      for (VertexId v = 0; v < host_.num_vertices(); ++v) {
        std::int64_t m = 0;
        for (const auto& a : pool_[static_cast<std::size_t>(v)]) m += a.piece.size();
        if (m > 0 || free_slots(v) > 0) {
          char buf[128];
          std::snprintf(buf, sizeof buf, "LEAF %s pool=%lld free=%d",
                        host_.label_of(v).c_str(), (long long)m,
                        free_slots(v));
          diag_(buf);
        }
      }
    }
    // Exact-form inputs typically leave nothing here; any residue is
    // placed node by node, each at the nearest vertex with a free slot
    // (the paper's "simple rearrangement in the last two levels",
    // generalised to a measured repair).  Single-node placement copes
    // with fragmented capacity where whole-piece moves cannot.
    for (auto& pool : pool_) pool.clear();
    std::vector<NodeId> frontier;
    std::vector<NodeId> nbr;
    for (NodeId v = 0; v < guest_.num_nodes(); ++v) {
      if (is_placed(v)) continue;
      nbr.clear();
      guest_.neighbors(v, nbr);
      for (NodeId u : nbr) {
        if (is_placed(u)) {
          frontier.push_back(v);
          break;
        }
      }
    }
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const NodeId v = frontier[head];
      if (is_placed(v)) continue;
      nbr.clear();
      guest_.neighbors(v, nbr);
      VertexId anchor = kInvalidVertex;
      for (NodeId u : nbr) {
        if (is_placed(u)) {
          anchor = host_of(u);
          break;
        }
      }
      XT_CHECK(anchor != kInvalidVertex);
      repair_place(v, anchor);
      ++stats_.repair_placements;
      for (NodeId u : nbr) {
        if (!is_placed(u)) frontier.push_back(u);
      }
    }
  }

  /// Places a stranded node: directly if a free vertex exists within
  /// distance 3 of all its placed neighbours, otherwise by cascading —
  /// sliding one resident per vertex along the host path towards the
  /// nearest free capacity so that a slot opens next to the anchor
  /// (the generalised "rearrangement in the last two levels").
  void repair_place(NodeId v, VertexId anchor) {
    const VertexId direct = best_free_near(anchor, v);
    std::vector<NodeId> gnbr;
    guest_.neighbors(v, gnbr);
    bool direct_ok = true;
    for (NodeId u : gnbr) {
      if (is_placed(u) &&
          !respects_condition_3prime(host_, host_of(u), direct))
        direct_ok = false;
    }
    if (direct_ok) {
      place(v, direct);
      return;
    }
    // Cascade along a shortest host path anchor -> direct.
    const std::vector<VertexId> path = host_path(anchor, direct);
    if (path.size() < 2) {
      // direct == anchor: no sliding can improve the pre-existing
      // geometry of the other neighbours; take the free slot.
      place(v, direct);
      return;
    }
    for (std::size_t i = path.size() - 1; i >= 2; --i) {
      shift_resident(path[i - 1], path[i]);
    }
    place(v, path[1]);
  }

  /// Moves the resident of `from` that tolerates the move best (its
  /// worst guest-edge distance after moving to `to` is minimal).
  void shift_resident(VertexId from, VertexId to) {
    XT_CHECK(free_slots(to) > 0);
    NodeId best = kInvalidNode;
    std::int32_t best_score = 0;
    std::vector<NodeId> gnbr;
    // Residents scan: guest is a few hundred thousand nodes at most
    // and cascades are rare (a handful per run), so a linear scan is
    // fine here.
    for (NodeId u = 0; u < guest_.num_nodes(); ++u) {
      if (host_of(u) != from) continue;
      gnbr.clear();
      guest_.neighbors(u, gnbr);
      std::int32_t score = 0;
      std::int32_t worst_dist = 0;
      for (NodeId w : gnbr) {
        if (u == w || !is_placed(w)) continue;
        if (!respects_condition_3prime(host_, host_of(w), to)) score += 1000;
        worst_dist = std::max(worst_dist, host_.distance(host_of(w), to));
      }
      score += worst_dist;
      if (best == kInvalidNode || score < best_score) {
        best = u;
        best_score = score;
      }
    }
    XT_CHECK(best != kInvalidNode);
    assign_[static_cast<std::size_t>(best)] = to;
    --load_[static_cast<std::size_t>(from)];
    ++load_[static_cast<std::size_t>(to)];
    ++stats_.repair_relocations;
    stats_.max_observed_embed_distance = std::max(
        stats_.max_observed_embed_distance, best_score % 1000);
    if (best_score >= 1000) ++stats_.discipline_violations;
  }

  /// One shortest path in the host between two vertices (BFS over the
  /// implicit adjacency).
  [[nodiscard]] std::vector<VertexId> host_path(VertexId from,
                                                VertexId to) const {
    std::vector<VertexId> parent(
        static_cast<std::size_t>(host_.num_vertices()), kInvalidVertex);
    std::vector<char> seen(static_cast<std::size_t>(host_.num_vertices()), 0);
    std::vector<VertexId> queue{from};
    seen[static_cast<std::size_t>(from)] = 1;
    std::vector<VertexId> nbr;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId x = queue[head];
      if (x == to) break;
      nbr.clear();
      host_.neighbors(x, nbr);
      for (VertexId y : nbr) {
        if (!seen[static_cast<std::size_t>(y)]) {
          seen[static_cast<std::size_t>(y)] = 1;
          parent[static_cast<std::size_t>(y)] = x;
          queue.push_back(y);
        }
      }
    }
    std::vector<VertexId> path;
    for (VertexId x = to; x != kInvalidVertex;
         x = parent[static_cast<std::size_t>(x)])
      path.push_back(x);
    std::reverse(path.begin(), path.end());
    XT_CHECK(path.front() == from && path.back() == to);
    return path;
  }

  /// Free vertex minimising the worst distance to v's already-placed
  /// guest neighbours; candidates are the free vertices nearest to the
  /// anchor (BFS rings, a couple of rings past the first hit).
  [[nodiscard]] VertexId best_free_near(VertexId anchor, NodeId v) const {
    std::vector<NodeId> gnbr;
    guest_.neighbors(v, gnbr);
    std::vector<VertexId> anchors;
    for (NodeId u : gnbr) {
      if (is_placed(u)) anchors.push_back(host_of(u));
    }
    std::vector<char> seen(static_cast<std::size_t>(host_.num_vertices()), 0);
    std::vector<std::pair<VertexId, std::int32_t>> queue{{anchor, 0}};
    seen[static_cast<std::size_t>(anchor)] = 1;
    VertexId best = kInvalidVertex;
    std::int32_t best_score = 0;
    std::int32_t stop_depth = -1;
    std::vector<VertexId> hnbr;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const auto [x, depth] = queue[head];
      if (stop_depth >= 0 && depth > stop_depth) break;
      if (free_slots(x) > 0) {
        // Lexicographic score: condition-3' violations first, then the
        // worst host distance to any placed guest neighbour.
        std::int32_t score = 0;
        std::int32_t worst_dist = 0;
        for (VertexId a : anchors) {
          if (!respects_condition_3prime(host_, a, x)) score += 1000;
          worst_dist = std::max(worst_dist, host_.distance(a, x));
        }
        score += worst_dist;
        if (best == kInvalidVertex || score < best_score) {
          best = x;
          best_score = score;
        }
        if (stop_depth < 0) stop_depth = depth + 2;
      }
      hnbr.clear();
      host_.neighbors(x, hnbr);
      for (VertexId y : hnbr) {
        if (!seen[static_cast<std::size_t>(y)]) {
          seen[static_cast<std::size_t>(y)] = 1;
          queue.emplace_back(y, depth + 1);
        }
      }
    }
    XT_CHECK_MSG(best != kInvalidVertex, "host out of capacity during repair");
    return best;
  }

  /// Nearest vertex (BFS over the host) with >= slots free capacity.
  [[nodiscard]] VertexId nearest_free(VertexId from, NodeId slots) const {
    std::vector<char> seen(static_cast<std::size_t>(host_.num_vertices()), 0);
    std::vector<VertexId> queue{from};
    seen[static_cast<std::size_t>(from)] = 1;
    std::vector<VertexId> nbr;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId x = queue[head];
      if (free_slots(x) >= slots) return x;
      nbr.clear();
      host_.neighbors(x, nbr);
      for (VertexId y : nbr) {
        if (!seen[static_cast<std::size_t>(y)]) {
          seen[static_cast<std::size_t>(y)] = 1;
          queue.push_back(y);
        }
      }
    }
    XT_CHECK_MSG(false, "host out of capacity during repair");
    return kInvalidVertex;
  }

  // --- instrumentation -------------------------------------------------------

  void record_trace(std::int32_t round) {
    compute_weights(round);
    std::vector<std::int64_t> per_level;
    std::vector<std::int64_t> occupancy;
    for (std::int32_t j = 0; j < round; ++j) {
      std::int64_t worst = 0;
      const std::int64_t first = (std::int64_t{1} << j) - 1;
      for (std::int64_t k = 0; k < (std::int64_t{1} << j); ++k) {
        const auto v = static_cast<VertexId>(first + k);
        worst = std::max(
            worst,
            std::abs(weight_[static_cast<std::size_t>(host_.child(v, 0))] -
                     weight_[static_cast<std::size_t>(host_.child(v, 1))]));
      }
      per_level.push_back(worst);
    }
    // a(j,i): deviation of each level-j region's mass from its final
    // target n_{r-j} = load * (2^{r-j+1} - 1).
    for (std::int32_t j = 0; j <= round; ++j) {
      const std::int64_t target =
          opt_.load * ((std::int64_t{2} << (height_ - j)) - 1);
      std::int64_t worst = 0;
      const std::int64_t first = (std::int64_t{1} << j) - 1;
      for (std::int64_t k = 0; k < (std::int64_t{1} << j); ++k) {
        const auto v = static_cast<VertexId>(first + k);
        worst = std::max(
            worst,
            std::abs(weight_[static_cast<std::size_t>(v)] - target));
      }
      occupancy.push_back(worst);
    }
    stats_.imbalance_trace.push_back(std::move(per_level));
    stats_.occupancy_trace.push_back(std::move(occupancy));
  }

  void audit(std::int32_t round) const {
    // Collinearity + characteristic-address audit over the whole
    // state (O(n)): pool pieces partition the unembedded nodes, their
    // designated lists are exact, and their embedded neighbours all
    // map to the recorded characteristic address.
    std::vector<char> embedded(static_cast<std::size_t>(guest_.num_nodes()),
                               0);
    for (NodeId v = 0; v < guest_.num_nodes(); ++v)
      embedded[static_cast<std::size_t>(v)] = is_placed(v) ? 1 : 0;
    std::int64_t pooled = 0;
    std::vector<NodeId> nbr;
    for (VertexId x = 0; x < host_.num_vertices(); ++x) {
      XT_CHECK(load_[static_cast<std::size_t>(x)] <= opt_.load);
      for (const auto& a : pool_[static_cast<std::size_t>(x)]) {
        validate_piece(guest_, embedded, a.piece);
        pooled += a.piece.size();
        for (NodeId v : a.piece.nodes) {
          nbr.clear();
          guest_.neighbors(v, nbr);
          for (NodeId u : nbr) {
            if (is_placed(u)) {
              // Condition (6): one characteristic address per piece.
              // The final round's halving borrow may legitimately
              // leave a second address; it must still satisfy (3').
              if (round < height_) {
                XT_CHECK_MSG(host_of(u) == a.char_addr,
                             "piece neighbour embedded off-address in round "
                                 << round);
              } else {
                XT_CHECK_MSG(
                    host_of(u) == a.char_addr ||
                        respects_condition_3prime(host_, host_of(u),
                                                  a.char_addr),
                    "final-round piece neighbour too far off-address");
              }
            }
          }
        }
        const std::int32_t cl = host_.level_of(a.char_addr);
        XT_CHECK_MSG(cl >= round - 2,
                     "piece with stale characteristic address survived round "
                         << round);
      }
    }
    XT_CHECK(pooled + placed_count_ == guest_.num_nodes());
  }

  // Diagnostic sink: Options::diagnostic_sink when set; otherwise
  // XT_DEBUG_PHASE=1 in the environment installs a stderr printer.
  // Null (the default) keeps the embedder completely silent.
  static std::function<void(const std::string&)> resolve_sink(
      const XTreeEmbedder::Options& opt) {
    if (opt.diagnostic_sink) return opt.diagnostic_sink;
    if (std::getenv("XT_DEBUG_PHASE") != nullptr) {
      return [](const std::string& line) {
        std::fprintf(stderr, "%s\n", line.c_str());
      };
    }
    return nullptr;
  }

  const BinaryTree& guest_;
  const XTreeEmbedder::Options& opt_;
  std::int32_t height_;
  XTree host_;
  std::vector<VertexId> assign_;
  NodeId placed_count_ = 0;
  std::vector<NodeId> load_;
  std::vector<std::vector<Attached>> pool_;
  std::vector<std::int64_t> weight_;
  std::vector<NodeId> scratch_nbr_;
  // Reusable splitter state + result: every split and whole-piece
  // extraction in the run goes through these, and consumed pieces are
  // recycled into scratch_.free_pieces, so the steady-state hot loop
  // performs no heap allocation.  They live in the caller's EmbedArena
  // so a long-lived caller (a service shard, a sweep harness) carries
  // the recycled buffers across runs too.
  SplitScratch& scratch_;
  SplitResult& split_res_;
  std::vector<Attached> units_;  // SPLIT's per-vertex unit gather
  std::vector<int> unit_side_;
  std::function<void(const std::string&)> diag_ = resolve_sink(opt_);
  const char* phase_ = "start";
  void set_phase(const char* p) { if (diag_) phase_ = p; }
  XTreeEmbedder::Stats stats_;
};

}  // namespace

std::int32_t XTreeEmbedder::optimal_height(NodeId n, NodeId load) {
  XT_CHECK(n >= 1 && load >= 1);
  std::int32_t r = 0;
  while (static_cast<std::int64_t>(load) * ((std::int64_t{2} << r) - 1) < n)
    ++r;
  return r;
}

XTreeEmbedder::Result XTreeEmbedder::embed(const BinaryTree& guest,
                                           const Options& options) {
  EmbedArena arena;
  return embed(guest, options, arena);
}

XTreeEmbedder::Result XTreeEmbedder::embed(const BinaryTree& guest,
                                           const Options& options,
                                           EmbedArena& arena) {
  EmbedderImpl impl(guest, options, arena);
  return impl.run();
}

XTreeEmbedder::Result XTreeEmbedder::embed(const BinaryTree& guest) {
  return embed(guest, Options{});
}

}  // namespace xt
