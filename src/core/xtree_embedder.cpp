#include "core/xtree_embedder.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <cstdio>
#include <span>
#include <memory>
#include <utility>

#include "core/nset.hpp"
#include "separator/piece.hpp"
#include "separator/splitter.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace xt {
namespace {

/// A piece hanging off the partial embedding: the piece itself plus
/// its characteristic address (the single host vertex holding all of
/// its embedded neighbours, paper condition (6)).
struct Attached {
  Piece piece;
  VertexId char_addr = kInvalidVertex;
};

/// Smallest per-round SPLIT sweep that fans out: rounds with fewer
/// level-(round-1) vertices run sequentially (the pieces there are
/// few and huge; task spawn overhead cannot amortise).  Rounds 4+ of
/// an r>=4 embed — which carry ~15/16 of the total split work, since
/// round i lays out ~load * 2^i nodes — all clear this bar.
constexpr std::int64_t kSplitSweepCutoff = 8;

/// Everything a split(b) call mutates besides the per-vertex state it
/// owns: splitter scratch + result buffers, the unit-gather vectors,
/// and stat counters.  The sequential phases share one root Ctx whose
/// stats pointer is the embedder's master Stats; each parallel chunk
/// gets its own Ctx (stats -> Ctx::local, merged after the run).
struct Ctx {
  SplitScratch* scratch = nullptr;
  SplitResult* split_res = nullptr;
  std::vector<Attached> units;   // SPLIT's per-vertex unit gather
  std::vector<int> unit_side;
  std::vector<NodeId> nbr;       // neighbour scratch for place()
  XTreeEmbedder::Stats* stats = nullptr;
  XTreeEmbedder::Stats local;    // task ctxs: stats == &local
};

class EmbedderImpl {
 public:
  EmbedderImpl(const BinaryTree& guest, const XTreeEmbedder::Options& opt,
               XTreeEmbedder::EmbedArena& arena)
      : guest_(guest),
        opt_(opt),
        height_(opt.height >= 0
                    ? opt.height
                    : XTreeEmbedder::optimal_height(guest.num_nodes(),
                                                    opt.load)),
        host_(height_),
        assign_(static_cast<std::size_t>(guest.num_nodes()), kInvalidVertex),
        load_(static_cast<std::size_t>(host_.num_vertices()), 0),
        pool_(static_cast<std::size_t>(host_.num_vertices())),
        weight_(static_cast<std::size_t>(host_.num_vertices()), 0),
        arena_(arena) {
    root_ctx_.scratch = &arena.scratch;
    root_ctx_.split_res = &arena.split_result;
    root_ctx_.stats = &stats_;
    XT_CHECK(guest.num_nodes() >= 1);
    XT_CHECK(opt.load >= 1);
    XT_CHECK_MSG(static_cast<std::int64_t>(opt.load) *
                         (host_.num_vertices()) >=
                     guest.num_nodes(),
                 "X(" << height_ << ") cannot hold " << guest.num_nodes()
                      << " nodes at load " << opt.load);
    stats_.height = height_;
  }

  XTreeEmbedder::Result run() {
    seed_round0();
    for (std::int32_t round = 1; round <= height_; ++round) {
      run_round(round);
      if (opt_.audit_rounds) audit(round);
    }
    final_repair();
    // Fold the parallel chunks' counters into the master stats.  All
    // merged fields are sums or maxes, so the merge order (and the
    // chunk partition itself) cannot affect the result.
    for (const auto& ctx : task_ctxs_) merge_stats(stats_, ctx->local);
    XT_CHECK(placed_count_.load(std::memory_order_relaxed) ==
             guest_.num_nodes());
    Embedding emb(guest_.num_nodes(), host_.num_vertices());
    for (NodeId v = 0; v < guest_.num_nodes(); ++v)
      emb.place(v, assign_[static_cast<std::size_t>(v)]);
    return {std::move(emb), std::move(stats_)};
  }

  [[nodiscard]] bool is_placed(NodeId v) const {
    return assign_[static_cast<std::size_t>(v)] != kInvalidVertex;
  }
  [[nodiscard]] VertexId host_of(NodeId v) const {
    return assign_[static_cast<std::size_t>(v)];
  }

 private:
  // --- placement ----------------------------------------------------------

  [[nodiscard]] NodeId free_slots(VertexId x) const {
    return opt_.load - load_[static_cast<std::size_t>(x)];
  }

  void place(Ctx& ctx, NodeId v, VertexId x) {
    XT_CHECK_MSG(free_slots(x) > 0, "vertex " << x << " over capacity");
    XT_CHECK_MSG(!is_placed(v), "guest node placed twice");
    assign_[static_cast<std::size_t>(v)] = x;
    placed_count_.fetch_add(1, std::memory_order_relaxed);
    ++load_[static_cast<std::size_t>(x)];
    if (opt_.check_discipline) {
      // Safe under the parallel sweep: any placed neighbour of v was
      // placed either before the sweep or by this same task (adjacent
      // unembedded nodes always share a piece, and every piece is
      // processed whole by one split call).
      ctx.nbr.clear();
      guest_.neighbors(v, ctx.nbr);
      // Gather the <= 3 placed-neighbour hosts, take their distances
      // to x in one batch call (branch-free kernel, one coord decode
      // per endpoint), then replay the checks in the original
      // neighbour order — stats and diag output are unchanged.
      std::array<VertexId, 4> src;
      std::size_t cnt = 0;
      for (NodeId u : ctx.nbr) {
        if (is_placed(u)) src[cnt++] = host_of(u);
      }
      std::array<VertexId, 4> dst;
      dst.fill(x);
      std::array<std::int32_t, 4> dist;
      host_.distance_batch(std::span(src).first(cnt), std::span(dst).first(cnt),
                           std::span(dist).first(cnt));
      for (std::size_t i = 0; i < cnt; ++i) {
        const std::int32_t d = dist[i];
        ctx.stats->max_observed_embed_distance =
            std::max(ctx.stats->max_observed_embed_distance, d);
        if (!respects_condition_3prime(host_, src[i], x)) {
          ++ctx.stats->discipline_violations;
          if (diag_) {
            char buf[192];
            std::snprintf(buf, sizeof buf,
                          "VIOL phase=%s node=%d at=%s nbr=%s d=%d", phase_, v,
                          host_.label_of(x).c_str(),
                          host_.label_of(src[i]).c_str(), d);
            diag_(buf);
          }
        }
      }
    }
  }

  void place_all(Ctx& ctx, const std::vector<NodeId>& nodes, VertexId x) {
    for (NodeId v : nodes) place(ctx, v, x);
  }

  void attach(Piece&& piece, VertexId at, VertexId char_addr) {
    XT_CHECK(piece.num_designated() >= 1);
    pool_[static_cast<std::size_t>(at)].push_back(
        {std::move(piece), char_addr});
  }

  /// Applies a split result: the remain boundary and pieces stay at
  /// `remain_at`, the extract side goes to `extract_at`.  The result's
  /// pieces are moved out; its vectors stay with the owner for reuse.
  void apply_split(Ctx& ctx, SplitResult& res, VertexId remain_at,
                   VertexId extract_at) {
    place_all(ctx, res.embed_remain, remain_at);
    place_all(ctx, res.embed_extract, extract_at);
    for (auto& p : res.pieces_remain) attach(std::move(p), remain_at, remain_at);
    for (auto& p : res.pieces_extract)
      attach(std::move(p), extract_at, extract_at);
    ctx.stats->median_fixes += res.median_fixes;
  }

  // --- round 0 ------------------------------------------------------------

  void seed_round0() {
    // D_0: the first min(load, n) nodes of a BFS from the guest root —
    // a connected subtree, so every complement component hangs by one
    // edge (collinearity is immediate).
    const NodeId take = std::min<NodeId>(opt_.load, guest_.num_nodes());
    std::vector<NodeId> queue{guest_.root()};
    std::vector<char> chosen(static_cast<std::size_t>(guest_.num_nodes()), 0);
    chosen[static_cast<std::size_t>(guest_.root())] = 1;
    for (std::size_t head = 0;
         head < queue.size() && queue.size() < static_cast<std::size_t>(take);
         ++head) {
      root_ctx_.nbr.clear();
      guest_.neighbors(queue[head], root_ctx_.nbr);
      for (NodeId v : root_ctx_.nbr) {
        if (chosen[static_cast<std::size_t>(v)]) continue;
        if (queue.size() >= static_cast<std::size_t>(take)) break;
        chosen[static_cast<std::size_t>(v)] = 1;
        queue.push_back(v);
      }
    }
    const VertexId root = host_.root();
    for (NodeId v : queue) place(root_ctx_, v, root);
    for (Piece& p : collect_pieces(guest_, chosen))
      attach(std::move(p), root, root);
  }

  // --- per-round driver -----------------------------------------------------

  [[nodiscard]] SplitQuality split_quality() const {
    return opt_.lemma1_only ? SplitQuality::kLemma1 : SplitQuality::kLemma2;
  }

  /// Balancing cut dispatch: the generic carve-and-refine splitter by
  /// default, the paper's literal find2 under Options::paper_find2.
  /// Returns the embedder's reusable result buffer — valid until the
  /// next run_split / run_extract call.
  [[nodiscard]] SplitResult& run_split(Ctx& ctx, const Piece& piece,
                                       NodeId delta) {
    if (opt_.paper_find2 && !opt_.lemma1_only)
      split_piece_find2(guest_, piece, delta, *ctx.scratch, *ctx.split_res);
    else
      split_piece(guest_, piece, delta, split_quality(), *ctx.scratch,
                  *ctx.split_res);
    return *ctx.split_res;
  }

  /// extract_whole_piece through the same reusable buffers.
  [[nodiscard]] SplitResult& run_extract(Ctx& ctx, const Piece& piece) {
    extract_whole_piece(guest_, piece, *ctx.scratch, *ctx.split_res);
    return *ctx.split_res;
  }

  void run_round(std::int32_t round) {
    compute_weights(round - 1);
    // ADJUST stays sequential: its cross-sibling shifts walk weight_
    // up shared ancestor chains (bump_weights) and its donor choice
    // depends on earlier shifts in the same sweep.
    for (std::int32_t j = 0; opt_.disable_adjust ? false : j <= round - 2;
         ++j) {
      const std::int64_t first = (std::int64_t{1} << j) - 1;
      const std::int64_t count = std::int64_t{1} << j;
      for (std::int64_t k = 0; k < count; ++k)
        adjust(static_cast<VertexId>(first + k), round);
    }
    // SPLIT sweep: one call per level-(round-1) vertex b, each
    // touching only {b, c0, c1} pools/loads and the assignments of
    // pieces hanging there — disjoint across b, with weight_
    // read-only — so the calls fan out as stealable tasks.  The chunk
    // partition depends only on (count, budget), and every mutated
    // location is owned by exactly one chunk, so placements are
    // bit-identical to the sequential sweep for any pool size.
    const std::int64_t first = (std::int64_t{1} << (round - 1)) - 1;
    const std::int64_t count = std::int64_t{1} << (round - 1);
    const auto budget = static_cast<std::int64_t>(
        std::max(opt_.intra_embed_parallelism, 1));
    const auto sweep_start = std::chrono::steady_clock::now();
    if (budget > 1 && !diag_ && count >= kSplitSweepCutoff) {
      const std::int64_t chunks = std::min(budget, count);
      ensure_task_ctxs(chunks);
      parallel_chunks(ThreadPool::shared(), 0, count, chunks,
                      [&](std::int64_t c, std::int64_t lo, std::int64_t hi) {
                        Ctx& ctx = *task_ctxs_[static_cast<std::size_t>(c)];
                        for (std::int64_t k = lo; k < hi; ++k)
                          split(ctx, static_cast<VertexId>(first + k), round);
                      });
    } else {
      for (std::int64_t k = 0; k < count; ++k)
        split(root_ctx_, static_cast<VertexId>(first + k), round);
    }
    stats_.split_sweep_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - sweep_start)
                                 .count();
    if (!opt_.disable_level_fill) level_fill(round);
    if (opt_.record_trace) record_trace(round);
  }

  /// Lazily builds per-chunk contexts 0..chunks-1, each backed by its
  /// own persistent arena so recycled piece buffers survive across
  /// embeds per chunk slot.
  void ensure_task_ctxs(std::int64_t chunks) {
    while (static_cast<std::int64_t>(arena_.task_arenas.size()) < chunks)
      arena_.task_arenas.push_back(
          std::make_unique<XTreeEmbedder::EmbedArena>());
    while (static_cast<std::int64_t>(task_ctxs_.size()) < chunks) {
      // Chunk i always pairs with arena i — a reused EmbedArena hands
      // each chunk slot the same recycled buffers as last run.
      auto& arena = *arena_.task_arenas[task_ctxs_.size()];
      auto ctx = std::make_unique<Ctx>();
      ctx->scratch = &arena.scratch;
      ctx->split_res = &arena.split_result;
      ctx->stats = &ctx->local;
      task_ctxs_.push_back(std::move(ctx));
    }
  }

  /// Folds one chunk's counters into the master stats.  Sums and
  /// maxes only — commutative, so chunking cannot change the total.
  static void merge_stats(XTreeEmbedder::Stats& into,
                          const XTreeEmbedder::Stats& from) {
    into.adjust_calls += from.adjust_calls;
    into.adjust_shifts += from.adjust_shifts;
    into.split_calls += from.split_calls;
    into.lemma_splits += from.lemma_splits;
    into.whole_moves += from.whole_moves;
    into.median_fixes += from.median_fixes;
    into.peel_fills += from.peel_fills;
    into.repair_placements += from.repair_placements;
    into.repair_relocations += from.repair_relocations;
    into.discipline_violations += from.discipline_violations;
    into.max_observed_embed_distance =
        std::max(into.max_observed_embed_distance,
                 from.max_observed_embed_distance);
    into.adjust_budget_overruns += from.adjust_budget_overruns;
    into.unmet_adjust_demand += from.unmet_adjust_demand;
  }

  /// Cross-leaf fill after the SPLIT sweep: a leaf with free slots
  /// borrows whole pieces from its sibling and horizontal neighbours
  /// (all within distance <= 3 of any borrowed piece's characteristic
  /// address).  This is the paper's last-two-levels rearrangement
  /// applied at every level, and it keeps deficits from accumulating.
  void level_fill(std::int32_t round) {
    set_phase("level_fill");
    const std::int64_t first = (std::int64_t{1} << round) - 1;
    const std::int64_t count = std::int64_t{1} << round;
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::int64_t k = 0; k < count; ++k) {
        const auto v = static_cast<VertexId>(first + k);
        if (free_slots(v) == 0) continue;
        fill_vertex(root_ctx_, v);
        while (free_slots(v) > 0) {
          const VertexId parent = host_.parent(v);
          const VertexId sibling =
              host_.child(parent, 0) == v ? host_.child(parent, 1)
                                          : host_.child(parent, 0);
          bool borrowed = false;
          // Donor ring: sibling and horizontal neighbours up to 3
          // away.  A piece may be pulled only if its characteristic
          // address stays within distance 3 of v.
          const VertexId p1 = host_.predecessor(v);
          const VertexId s1 = host_.successor(v);
          const VertexId p2 = p1 == kInvalidVertex ? kInvalidVertex
                                                   : host_.predecessor(p1);
          const VertexId s2 = s1 == kInvalidVertex ? kInvalidVertex
                                                   : host_.successor(s1);
          const VertexId p3 = p2 == kInvalidVertex ? kInvalidVertex
                                                   : host_.predecessor(p2);
          const VertexId s3 = s2 == kInvalidVertex ? kInvalidVertex
                                                   : host_.successor(s2);
          for (VertexId donor : {sibling, p1, s1, p2, s2, p3, s3}) {
            if (donor == kInvalidVertex) continue;
            auto& dp = pool_[static_cast<std::size_t>(donor)];
            for (std::size_t i = 0; i < dp.size(); ++i) {
              if (!respects_condition_3prime(host_, dp[i].char_addr, v))
                continue;
              if (dp[i].piece.num_designated() <=
                  static_cast<int>(free_slots(v))) {
                Attached unit = std::move(dp[i]);
                dp[i] = std::move(dp.back());
                dp.pop_back();
                SplitResult& res = run_extract(root_ctx_, unit.piece);
                root_ctx_.scratch->recycle(std::move(unit.piece));
                stats_.peel_fills +=
                    static_cast<std::int64_t>(res.embed_extract.size());
                place_all(root_ctx_, res.embed_extract, v);
                for (auto& p : res.pieces_extract) attach(std::move(p), v, v);
                borrowed = true;
                progress = true;
                break;
              }
            }
            if (borrowed) break;
          }
          if (!borrowed && round == height_) {
            // Final level only: a two-designated piece may surrender a
            // single designated node even though the remainder then
            // touches two embedded vertices — there are no further
            // SPLIT rounds to confuse, and the repair pass works from
            // real adjacency, not characteristic addresses.
            for (VertexId d :
                 {sibling, p1, s1, p2, s2, p3, s3}) {
              if (d == kInvalidVertex) continue;
              auto& dp = pool_[static_cast<std::size_t>(d)];
              for (std::size_t i = 0; i < dp.size(); ++i) {
                if (dp[i].piece.num_designated() != 2) continue;
                if (!respects_condition_3prime(host_, dp[i].char_addr, v))
                continue;
                Attached unit = std::move(dp[i]);
                dp[i] = std::move(dp.back());
                dp.pop_back();
                const NodeId keep = unit.piece.designated[1];
                Piece half = std::move(unit.piece);
                half.designated[1] = kInvalidNode;
                SplitResult& res = run_extract(root_ctx_, half);
                root_ctx_.scratch->recycle(std::move(half));
                stats_.peel_fills +=
                    static_cast<std::int64_t>(res.embed_extract.size());
                place_all(root_ctx_, res.embed_extract, v);
                for (auto& p : res.pieces_extract) {
                  if (std::find(p.nodes.begin(), p.nodes.end(), keep) !=
                      p.nodes.end())
                    p.add_designated(keep);
                  attach(std::move(p), d, unit.char_addr);
                }
                borrowed = true;
                progress = true;
                break;
              }
              if (borrowed) break;
            }
          }
          if (!borrowed) break;
          fill_vertex(root_ctx_, v);
        }
      }
    }
  }

  // Subtree weights (embedded + attached mass) for all vertices on
  // levels 0..top_level, attributing deeper deposits to their
  // top_level ancestors' children pools.
  void compute_weights(std::int32_t top_level) {
    const VertexId last =
        static_cast<VertexId>((std::int64_t{2} << top_level) - 2);
    for (VertexId v = last; v >= 0; --v) {
      std::int64_t w = load_[static_cast<std::size_t>(v)];
      for (const auto& a : pool_[static_cast<std::size_t>(v)])
        w += a.piece.size();
      if (host_.level_of(v) < top_level) {
        w += weight_[static_cast<std::size_t>(host_.child(v, 0))];
        w += weight_[static_cast<std::size_t>(host_.child(v, 1))];
      }
      weight_[static_cast<std::size_t>(v)] = w;
    }
  }

  /// Adds `delta` to the weights of `leaf` (a level-(round-1) vertex)
  /// and all its ancestors.
  void bump_weights(VertexId leaf, std::int64_t delta) {
    for (VertexId v = leaf; v != kInvalidVertex; v = host_.parent(v))
      weight_[static_cast<std::size_t>(v)] += delta;
  }

  [[nodiscard]] VertexId descend(VertexId v, int which,
                                 std::int32_t to_level) const {
    while (host_.level_of(v) < to_level) v = host_.child(v, which);
    return v;
  }

  // --- ADJUST ---------------------------------------------------------------

  void adjust(VertexId a, std::int32_t round) {
    set_phase("adjust");
    ++stats_.adjust_calls;
    const VertexId a0 = host_.child(a, 0);
    const VertexId a1 = host_.child(a, 1);
    const std::int64_t diff = weight_[static_cast<std::size_t>(a0)] -
                              weight_[static_cast<std::size_t>(a1)];
    if (std::abs(diff) < 2) return;

    // Donor corner leaf D (level round-1) on the heavy side; boundary
    // vertices vd (heavy corner, level round) and vr = its horizontal
    // neighbour under the light side.  Paper: trees attached to
    // a01^{i-2-|a|} shift to a10^{i-2-|a|}, boundary laid at
    // a01^{i-1-|a|} and a10^{i-1-|a|}.
    const bool heavy_left = diff > 0;
    const VertexId donor = heavy_left ? descend(a0, 1, round - 1)
                                      : descend(a1, 0, round - 1);
    const VertexId receiver_leaf =
        heavy_left ? host_.successor(donor) : host_.predecessor(donor);
    XT_CHECK(receiver_leaf != kInvalidVertex);
    const VertexId vd = host_.child(donor, heavy_left ? 1 : 0);
    const VertexId vr = host_.child(receiver_leaf, heavy_left ? 0 : 1);
    XT_CHECK(heavy_left ? host_.successor(vd) == vr
                        : host_.predecessor(vd) == vr);

    std::int64_t remaining = std::abs(diff) / 2;
    NodeId laid_vd = 0;
    NodeId laid_vr = 0;
    // Donor pools: the corner leaf itself, then (the paper's omitted
    // "revision of ADJUST" corner case, reconstructed) its neighbours
    // deeper inside the heavy subtree — any piece is eligible as long
    // as its characteristic address stays within distance 3 of both
    // boundary vertices.
    std::array<VertexId, 3> donors{donor, kInvalidVertex, kInvalidVertex};
    int num_donors = 1;
    {
      VertexId back = donor;
      for (int step = 0; step < 2; ++step) {
        back = heavy_left ? host_.predecessor(back) : host_.successor(back);
        if (back == kInvalidVertex) break;
        donors[static_cast<std::size_t>(num_donors++)] = back;
      }
    }
    auto pick_unit = [&](Attached& out) {
      for (int di = 0; di < num_donors; ++di) {
        const VertexId d = donors[static_cast<std::size_t>(di)];
        auto& dp = pool_[static_cast<std::size_t>(d)];
        std::size_t best = dp.size();
        for (std::size_t i = 0; i < dp.size(); ++i) {
          if (d != donor &&
              (!respects_condition_3prime(host_, dp[i].char_addr, vd) ||
               !respects_condition_3prime(host_, dp[i].char_addr, vr)))
            continue;
          if (best == dp.size() ||
              dp[i].piece.size() > dp[best].piece.size())
            best = i;
        }
        if (best < dp.size()) {
          out = std::move(dp[best]);
          dp[best] = std::move(dp.back());
          dp.pop_back();
          return true;
        }
      }
      return false;
    };
    auto& donor_pool = pool_[static_cast<std::size_t>(donor)];
    while (remaining >= 1) {
      Attached unit;
      if (!pick_unit(unit)) break;

      const NodeId psize = unit.piece.size();
      const NodeId embeds_needed = std::min<NodeId>(
          2, static_cast<NodeId>(unit.piece.num_designated()));
      // Budget: the paper lays at most 4 ADJUST nodes per corner.  We
      // stop shifting rather than exceed it (shortfall is recorded).
      if (laid_vr + embeds_needed > 4 || free_slots(vr) < embeds_needed) {
        donor_pool.push_back(std::move(unit));
        break;
      }
      std::int64_t moved = 0;
      if (3 * static_cast<std::int64_t>(psize) <= 4 * remaining) {
        // Shift the whole piece: designated nodes land on vr, the rest
        // re-forms attached to vr.
        SplitResult& res = run_extract(root_ctx_, unit.piece);
        root_ctx_.scratch->recycle(std::move(unit.piece));
        laid_vr += static_cast<NodeId>(res.embed_extract.size());
        apply_split(root_ctx_, res, vd, vr);
        ++stats_.whole_moves;
        moved = psize;
      } else {
        // Lemma 2 split: extract ~remaining nodes across the corner.
        SplitResult& res = run_split(root_ctx_, unit.piece,
                                     static_cast<NodeId>(remaining));
        // Boundary sets are usually <= 4 but a collinearity promotion
        // can add a node; verify against the actual result.
        if (static_cast<NodeId>(res.embed_remain.size()) > free_slots(vd) ||
            static_cast<NodeId>(res.embed_extract.size()) > free_slots(vr)) {
          donor_pool.push_back(std::move(unit));
          break;
        }
        root_ctx_.scratch->recycle(std::move(unit.piece));
        laid_vd += static_cast<NodeId>(res.embed_remain.size());
        laid_vr += static_cast<NodeId>(res.embed_extract.size());
        moved = res.extract_total;
        apply_split(root_ctx_, res, vd, vr);
        ++stats_.lemma_splits;
        ++stats_.adjust_shifts;
        remaining -= moved;
        bump_weights(donor, -moved);
        bump_weights(receiver_leaf, moved);
        break;  // a split lands within the lemma tolerance of the target
      }
      ++stats_.adjust_shifts;
      remaining -= moved;
      bump_weights(donor, -moved);
      bump_weights(receiver_leaf, moved);
    }
    if (remaining > 0) {
      stats_.unmet_adjust_demand += remaining;
      if (diag_) {
        char buf[192];
        std::snprintf(buf, sizeof buf,
                      "UNMET round=%d a=%s unmet=%lld diff=%lld donorpool=%zu",
                      round, host_.label_of(a).c_str(),
                      static_cast<long long>(remaining),
                      static_cast<long long>(diff),
                      pool_[static_cast<std::size_t>(donor)].size());
        diag_(buf);
      }
    }
    if (laid_vd > 4 || laid_vr > 4) ++stats_.adjust_budget_overruns;
  }

  // --- SPLIT ---------------------------------------------------------------

  void split(Ctx& ctx, VertexId b, std::int32_t round) {
    set_phase("split");
    ++ctx.stats->split_calls;
    const VertexId c0 = host_.child(b, 0);
    const VertexId c1 = host_.child(b, 1);

    // Gather units: pieces attached to b plus this round's ADJUST
    // deposits already sitting at the children (the paper's S3 set,
    // re-assignable between siblings).  The gather buffers live in the
    // ctx and are reused across the whole run.
    auto& units = ctx.units;
    units.clear();
    for (VertexId src : {b, c0, c1}) {
      auto& p = pool_[static_cast<std::size_t>(src)];
      for (auto& a : p) units.push_back(std::move(a));
      p.clear();
    }

    // Greedy LPT assignment (stands in for the paper's pairwise
    // interval matching; both bound the imbalance by the largest
    // unit).  Base loads are this round's ADJUST boundary nodes.
    std::sort(units.begin(), units.end(),
              [](const Attached& x, const Attached& y) {
                return x.piece.size() > y.piece.size();
              });
    std::array<std::int64_t, 2> mass{load_[static_cast<std::size_t>(c0)],
                                     load_[static_cast<std::size_t>(c1)]};
    auto& side = ctx.unit_side;
    side.assign(units.size(), 0);
    for (std::size_t i = 0; i < units.size(); ++i) {
      const int s = mass[0] <= mass[1] ? 0 : 1;
      side[i] = s;
      mass[static_cast<std::size_t>(s)] += units[i].piece.size();
    }

    // Orientation (paper: "the larger difference affects the larger
    // set"): mirror the whole assignment if that strictly improves the
    // balance, and otherwise orient the heavier half toward the
    // lighter outside neighbour so next round's ADJUST finds mass at
    // the right corner.
    {
      const std::int64_t base0 = load_[static_cast<std::size_t>(c0)];
      const std::int64_t base1 = load_[static_cast<std::size_t>(c1)];
      const std::int64_t m0 = mass[0] - base0;
      const std::int64_t m1 = mass[1] - base1;
      const std::int64_t keep = std::abs(base0 + m0 - base1 - m1);
      const std::int64_t flip = std::abs(base0 + m1 - base1 - m0);
      bool mirror = flip < keep;
      if (flip == keep && m0 != m1) {
        const VertexId left_nbr = host_.predecessor(b);
        const VertexId right_nbr = host_.successor(b);
        const std::int64_t wl =
            left_nbr == kInvalidVertex
                ? std::numeric_limits<std::int64_t>::max()
                : weight_[static_cast<std::size_t>(left_nbr)];
        const std::int64_t wr =
            right_nbr == kInvalidVertex
                ? std::numeric_limits<std::int64_t>::max()
                : weight_[static_cast<std::size_t>(right_nbr)];
        const bool heavier_left = m0 > m1;
        const bool want_heavy_left = wl <= wr;
        mirror = heavier_left != want_heavy_left;
      }
      if (mirror) {
        for (auto& s : side) s ^= 1;
      }
    }

    // Process units: pieces whose characteristic address is two or
    // more levels up are *due* — their designated nodes are laid out
    // now (the paper's S1 layout and the "children of grandparent
    // nodes" rule).  Everything else just attaches.
    for (std::size_t i = 0; i < units.size(); ++i) {
      VertexId c = side[i] == 0 ? c0 : c1;
      Attached& unit = units[i];
      const std::int32_t char_level = host_.level_of(unit.char_addr);
      if (char_level <= round - 2) {
        const auto embeds =
            static_cast<NodeId>(unit.piece.num_designated());
        if (free_slots(c) < embeds) {
          const VertexId other = (c == c0) ? c1 : c0;
          if (free_slots(other) >= embeds) c = other;
        }
        if (free_slots(c) >= embeds) {
          SplitResult& res = run_extract(ctx, unit.piece);
          ctx.scratch->recycle(std::move(unit.piece));
          place_all(ctx, res.embed_extract, c);
          for (auto& p : res.pieces_extract) attach(std::move(p), c, c);
        } else {
          // No room anywhere: keep it attached (overdue); a later
          // round or the repair phase resolves it and the measured
          // dilation reports the cost.
          attach(std::move(unit.piece), c, unit.char_addr);
        }
      } else {
        attach(std::move(unit.piece), c, unit.char_addr);
      }
    }

    // Fine balance between the two children with one Lemma 2 split
    // across the sibling edge (paper: "the 4 free places ... reduce
    // the difference between A(a0) and A(a1)").
    balance_children(ctx, c0, c1);

    fill_vertex(ctx, c0);
    fill_vertex(ctx, c1);
  }

  [[nodiscard]] std::int64_t vertex_mass(VertexId v) const {
    std::int64_t w = load_[static_cast<std::size_t>(v)];
    for (const auto& a : pool_[static_cast<std::size_t>(v)])
      w += a.piece.size();
    return w;
  }

  void balance_children(Ctx& ctx, VertexId c0, VertexId c1) {
    set_phase("balance");
    const std::int64_t diff = vertex_mass(c0) - vertex_mass(c1);
    const std::int64_t target = std::abs(diff) / 2;
    if (target < 1) return;
    const VertexId heavy = diff > 0 ? c0 : c1;
    const VertexId light = diff > 0 ? c1 : c0;
    auto& hp = pool_[static_cast<std::size_t>(heavy)];
    if (hp.empty()) return;
    std::size_t best = 0;
    for (std::size_t i = 1; i < hp.size(); ++i) {
      if (hp[i].piece.size() > hp[best].piece.size()) best = i;
    }
    Attached unit = std::move(hp[best]);
    hp[best] = std::move(hp.back());
    hp.pop_back();
    const NodeId psize = unit.piece.size();
    if (3 * static_cast<std::int64_t>(psize) <= 4 * target) {
      SplitResult& res = run_extract(ctx, unit.piece);
      if (static_cast<NodeId>(res.embed_extract.size()) > free_slots(light)) {
        hp.push_back(std::move(unit));
        return;
      }
      ctx.scratch->recycle(std::move(unit.piece));
      apply_split(ctx, res, heavy, light);
      ++ctx.stats->whole_moves;
    } else {
      SplitResult& res =
          run_split(ctx, unit.piece, static_cast<NodeId>(target));
      if (static_cast<NodeId>(res.embed_remain.size()) > free_slots(heavy) ||
          static_cast<NodeId>(res.embed_extract.size()) > free_slots(light)) {
        hp.push_back(std::move(unit));
        return;
      }
      ctx.scratch->recycle(std::move(unit.piece));
      apply_split(ctx, res, heavy, light);
      ++ctx.stats->lemma_splits;
    }
  }

  /// Fills vertex c to `load` by peeling attached pieces: laying out
  /// all designated nodes of a piece keeps every re-formed component's
  /// embedded neighbours on the single vertex c.
  void fill_vertex(Ctx& ctx, VertexId c) {
    set_phase("fill");
    auto& pool = pool_[static_cast<std::size_t>(c)];
    while (free_slots(c) > 0 && !pool.empty()) {
      // Prefer the most urgent piece (lowest characteristic address
      // level), then the smallest, so intervals clear early and
      // fragments get absorbed whole.
      std::size_t best = 0;
      for (std::size_t i = 1; i < pool.size(); ++i) {
        const auto li = host_.level_of(pool[i].char_addr);
        const auto lb = host_.level_of(pool[best].char_addr);
        if (li < lb ||
            (li == lb && pool[i].piece.size() < pool[best].piece.size()))
          best = i;
      }
      if (pool[best].piece.num_designated() > free_slots(c)) {
        // Find any piece whose designated fit into the free slots, or
        // a two-designated piece already addressed at c — that one can
        // legally surrender a single designated node (the remaining
        // component keeps its other neighbour on the same vertex c).
        bool found = false;
        std::size_t halvable = pool.size();
        for (std::size_t i = 0; i < pool.size(); ++i) {
          if (pool[i].piece.num_designated() <= free_slots(c)) {
            best = i;
            found = true;
            break;
          }
          if (pool[i].char_addr == c) halvable = i;
        }
        if (!found && halvable < pool.size()) {
          Attached unit = std::move(pool[halvable]);
          pool[halvable] = std::move(pool.back());
          pool.pop_back();
          peel_single_designated(ctx, c, std::move(unit));
          continue;
        }
        if (!found) break;  // deficit; repair handles the remainder
      }
      Attached unit = std::move(pool[best]);
      pool[best] = std::move(pool.back());
      pool.pop_back();
      SplitResult& res = run_extract(ctx, unit.piece);
      ctx.scratch->recycle(std::move(unit.piece));
      ctx.stats->peel_fills +=
          static_cast<std::int64_t>(res.embed_extract.size());
      place_all(ctx, res.embed_extract, c);
      for (auto& p : res.pieces_extract) attach(std::move(p), c, c);
    }
  }

  /// Lays out only designated[0] of a two-designated piece whose
  /// characteristic address is already c: the component retaining
  /// designated[1] keeps all its embedded neighbours on c.
  void peel_single_designated(Ctx& ctx, VertexId c, Attached unit) {
    XT_CHECK(unit.char_addr == c && unit.piece.num_designated() == 2);
    const NodeId keep = unit.piece.designated[1];
    Piece half = std::move(unit.piece);
    half.designated[1] = kInvalidNode;
    SplitResult& res = run_extract(ctx, half);
    ctx.scratch->recycle(std::move(half));
    ctx.stats->peel_fills +=
        static_cast<std::int64_t>(res.embed_extract.size());
    place_all(ctx, res.embed_extract, c);
    for (auto& p : res.pieces_extract) {
      if (std::find(p.nodes.begin(), p.nodes.end(), keep) != p.nodes.end())
        p.add_designated(keep);
      attach(std::move(p), c, c);
    }
  }

  // --- final repair ---------------------------------------------------------

  void final_repair() {
    set_phase("repair");
    if (diag_) {
      for (VertexId v = 0; v < host_.num_vertices(); ++v) {
        std::int64_t m = 0;
        for (const auto& a : pool_[static_cast<std::size_t>(v)]) m += a.piece.size();
        if (m > 0 || free_slots(v) > 0) {
          char buf[128];
          std::snprintf(buf, sizeof buf, "LEAF %s pool=%lld free=%d",
                        host_.label_of(v).c_str(), (long long)m,
                        free_slots(v));
          diag_(buf);
        }
      }
    }
    // Exact-form inputs typically leave nothing here; any residue is
    // placed node by node, each at the nearest vertex with a free slot
    // (the paper's "simple rearrangement in the last two levels",
    // generalised to a measured repair).  Single-node placement copes
    // with fragmented capacity where whole-piece moves cannot.
    for (auto& pool : pool_) pool.clear();
    std::vector<NodeId> frontier;
    std::vector<NodeId> nbr;
    for (NodeId v = 0; v < guest_.num_nodes(); ++v) {
      if (is_placed(v)) continue;
      nbr.clear();
      guest_.neighbors(v, nbr);
      for (NodeId u : nbr) {
        if (is_placed(u)) {
          frontier.push_back(v);
          break;
        }
      }
    }
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const NodeId v = frontier[head];
      if (is_placed(v)) continue;
      nbr.clear();
      guest_.neighbors(v, nbr);
      VertexId anchor = kInvalidVertex;
      for (NodeId u : nbr) {
        if (is_placed(u)) {
          anchor = host_of(u);
          break;
        }
      }
      XT_CHECK(anchor != kInvalidVertex);
      repair_place(v, anchor);
      ++stats_.repair_placements;
      for (NodeId u : nbr) {
        if (!is_placed(u)) frontier.push_back(u);
      }
    }
  }

  /// Places a stranded node: directly if a free vertex exists within
  /// distance 3 of all its placed neighbours, otherwise by cascading —
  /// sliding one resident per vertex along the host path towards the
  /// nearest free capacity so that a slot opens next to the anchor
  /// (the generalised "rearrangement in the last two levels").
  void repair_place(NodeId v, VertexId anchor) {
    const VertexId direct = best_free_near(anchor, v);
    std::vector<NodeId> gnbr;
    guest_.neighbors(v, gnbr);
    bool direct_ok = true;
    for (NodeId u : gnbr) {
      if (is_placed(u) &&
          !respects_condition_3prime(host_, host_of(u), direct))
        direct_ok = false;
    }
    if (direct_ok) {
      place(root_ctx_, v, direct);
      return;
    }
    // Cascade along a shortest host path anchor -> direct.
    const std::vector<VertexId> path = host_path(anchor, direct);
    if (path.size() < 2) {
      // direct == anchor: no sliding can improve the pre-existing
      // geometry of the other neighbours; take the free slot.
      place(root_ctx_, v, direct);
      return;
    }
    for (std::size_t i = path.size() - 1; i >= 2; --i) {
      shift_resident(path[i - 1], path[i]);
    }
    place(root_ctx_, v, path[1]);
  }

  /// Moves the resident of `from` that tolerates the move best (its
  /// worst guest-edge distance after moving to `to` is minimal).
  void shift_resident(VertexId from, VertexId to) {
    XT_CHECK(free_slots(to) > 0);
    NodeId best = kInvalidNode;
    std::int32_t best_score = 0;
    std::vector<NodeId> gnbr;
    // Residents scan: guest is a few hundred thousand nodes at most
    // and cascades are rare (a handful per run), so a linear scan is
    // fine here.
    for (NodeId u = 0; u < guest_.num_nodes(); ++u) {
      if (host_of(u) != from) continue;
      gnbr.clear();
      guest_.neighbors(u, gnbr);
      std::int32_t score = 0;
      std::int32_t worst_dist = 0;
      std::array<VertexId, 4> src;
      std::size_t cnt = 0;
      for (NodeId w : gnbr) {
        if (u != w && is_placed(w)) src[cnt++] = host_of(w);
      }
      std::array<VertexId, 4> dst;
      dst.fill(to);
      std::array<std::int32_t, 4> dist;
      host_.distance_batch(std::span(src).first(cnt), std::span(dst).first(cnt),
                           std::span(dist).first(cnt));
      for (std::size_t i = 0; i < cnt; ++i) {
        if (!respects_condition_3prime(host_, src[i], to)) score += 1000;
        worst_dist = std::max(worst_dist, dist[i]);
      }
      score += worst_dist;
      if (best == kInvalidNode || score < best_score) {
        best = u;
        best_score = score;
      }
    }
    XT_CHECK(best != kInvalidNode);
    assign_[static_cast<std::size_t>(best)] = to;
    --load_[static_cast<std::size_t>(from)];
    ++load_[static_cast<std::size_t>(to)];
    ++stats_.repair_relocations;
    stats_.max_observed_embed_distance = std::max(
        stats_.max_observed_embed_distance, best_score % 1000);
    if (best_score >= 1000) ++stats_.discipline_violations;
  }

  /// One shortest path in the host between two vertices (BFS over the
  /// implicit adjacency).
  [[nodiscard]] std::vector<VertexId> host_path(VertexId from,
                                                VertexId to) const {
    std::vector<VertexId> parent(
        static_cast<std::size_t>(host_.num_vertices()), kInvalidVertex);
    std::vector<char> seen(static_cast<std::size_t>(host_.num_vertices()), 0);
    std::vector<VertexId> queue{from};
    seen[static_cast<std::size_t>(from)] = 1;
    std::vector<VertexId> nbr;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId x = queue[head];
      if (x == to) break;
      nbr.clear();
      host_.neighbors(x, nbr);
      for (VertexId y : nbr) {
        if (!seen[static_cast<std::size_t>(y)]) {
          seen[static_cast<std::size_t>(y)] = 1;
          parent[static_cast<std::size_t>(y)] = x;
          queue.push_back(y);
        }
      }
    }
    std::vector<VertexId> path;
    for (VertexId x = to; x != kInvalidVertex;
         x = parent[static_cast<std::size_t>(x)])
      path.push_back(x);
    std::reverse(path.begin(), path.end());
    XT_CHECK(path.front() == from && path.back() == to);
    return path;
  }

  /// Free vertex minimising the worst distance to v's already-placed
  /// guest neighbours; candidates are the free vertices nearest to the
  /// anchor (BFS rings, a couple of rings past the first hit).
  [[nodiscard]] VertexId best_free_near(VertexId anchor, NodeId v) const {
    std::vector<NodeId> gnbr;
    guest_.neighbors(v, gnbr);
    std::vector<VertexId> anchors;
    for (NodeId u : gnbr) {
      if (is_placed(u)) anchors.push_back(host_of(u));
    }
    std::vector<char> seen(static_cast<std::size_t>(host_.num_vertices()), 0);
    std::vector<std::pair<VertexId, std::int32_t>> queue{{anchor, 0}};
    seen[static_cast<std::size_t>(anchor)] = 1;
    VertexId best = kInvalidVertex;
    std::int32_t best_score = 0;
    std::int32_t stop_depth = -1;
    std::vector<VertexId> hnbr;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const auto [x, depth] = queue[head];
      if (stop_depth >= 0 && depth > stop_depth) break;
      if (free_slots(x) > 0) {
        // Lexicographic score: condition-3' violations first, then the
        // worst host distance to any placed guest neighbour (one batch
        // distance call over the <= 3 anchors).
        std::int32_t score = 0;
        std::int32_t worst_dist = 0;
        std::array<VertexId, 4> dst;
        dst.fill(x);
        std::array<std::int32_t, 4> dist;
        const std::size_t cnt = anchors.size();
        host_.distance_batch(std::span<const VertexId>(anchors),
                             std::span(dst).first(cnt),
                             std::span(dist).first(cnt));
        for (std::size_t i = 0; i < cnt; ++i) {
          if (!respects_condition_3prime(host_, anchors[i], x)) score += 1000;
          worst_dist = std::max(worst_dist, dist[i]);
        }
        score += worst_dist;
        if (best == kInvalidVertex || score < best_score) {
          best = x;
          best_score = score;
        }
        if (stop_depth < 0) stop_depth = depth + 2;
      }
      hnbr.clear();
      host_.neighbors(x, hnbr);
      for (VertexId y : hnbr) {
        if (!seen[static_cast<std::size_t>(y)]) {
          seen[static_cast<std::size_t>(y)] = 1;
          queue.emplace_back(y, depth + 1);
        }
      }
    }
    XT_CHECK_MSG(best != kInvalidVertex, "host out of capacity during repair");
    return best;
  }

  /// Nearest vertex (BFS over the host) with >= slots free capacity.
  [[nodiscard]] VertexId nearest_free(VertexId from, NodeId slots) const {
    std::vector<char> seen(static_cast<std::size_t>(host_.num_vertices()), 0);
    std::vector<VertexId> queue{from};
    seen[static_cast<std::size_t>(from)] = 1;
    std::vector<VertexId> nbr;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId x = queue[head];
      if (free_slots(x) >= slots) return x;
      nbr.clear();
      host_.neighbors(x, nbr);
      for (VertexId y : nbr) {
        if (!seen[static_cast<std::size_t>(y)]) {
          seen[static_cast<std::size_t>(y)] = 1;
          queue.push_back(y);
        }
      }
    }
    XT_CHECK_MSG(false, "host out of capacity during repair");
    return kInvalidVertex;
  }

  // --- instrumentation -------------------------------------------------------

  void record_trace(std::int32_t round) {
    compute_weights(round);
    std::vector<std::int64_t> per_level;
    std::vector<std::int64_t> occupancy;
    for (std::int32_t j = 0; j < round; ++j) {
      std::int64_t worst = 0;
      const std::int64_t first = (std::int64_t{1} << j) - 1;
      for (std::int64_t k = 0; k < (std::int64_t{1} << j); ++k) {
        const auto v = static_cast<VertexId>(first + k);
        worst = std::max(
            worst,
            std::abs(weight_[static_cast<std::size_t>(host_.child(v, 0))] -
                     weight_[static_cast<std::size_t>(host_.child(v, 1))]));
      }
      per_level.push_back(worst);
    }
    // a(j,i): deviation of each level-j region's mass from its final
    // target n_{r-j} = load * (2^{r-j+1} - 1).
    for (std::int32_t j = 0; j <= round; ++j) {
      const std::int64_t target =
          opt_.load * ((std::int64_t{2} << (height_ - j)) - 1);
      std::int64_t worst = 0;
      const std::int64_t first = (std::int64_t{1} << j) - 1;
      for (std::int64_t k = 0; k < (std::int64_t{1} << j); ++k) {
        const auto v = static_cast<VertexId>(first + k);
        worst = std::max(
            worst,
            std::abs(weight_[static_cast<std::size_t>(v)] - target));
      }
      occupancy.push_back(worst);
    }
    stats_.imbalance_trace.push_back(std::move(per_level));
    stats_.occupancy_trace.push_back(std::move(occupancy));
  }

  void audit(std::int32_t round) const {
    // Collinearity + characteristic-address audit over the whole
    // state (O(n)): pool pieces partition the unembedded nodes, their
    // designated lists are exact, and their embedded neighbours all
    // map to the recorded characteristic address.
    std::vector<char> embedded(static_cast<std::size_t>(guest_.num_nodes()),
                               0);
    for (NodeId v = 0; v < guest_.num_nodes(); ++v)
      embedded[static_cast<std::size_t>(v)] = is_placed(v) ? 1 : 0;
    std::int64_t pooled = 0;
    std::vector<NodeId> nbr;
    for (VertexId x = 0; x < host_.num_vertices(); ++x) {
      XT_CHECK(load_[static_cast<std::size_t>(x)] <= opt_.load);
      for (const auto& a : pool_[static_cast<std::size_t>(x)]) {
        validate_piece(guest_, embedded, a.piece);
        pooled += a.piece.size();
        for (NodeId v : a.piece.nodes) {
          nbr.clear();
          guest_.neighbors(v, nbr);
          for (NodeId u : nbr) {
            if (is_placed(u)) {
              // Condition (6): one characteristic address per piece.
              // The final round's halving borrow may legitimately
              // leave a second address; it must still satisfy (3').
              if (round < height_) {
                XT_CHECK_MSG(host_of(u) == a.char_addr,
                             "piece neighbour embedded off-address in round "
                                 << round);
              } else {
                XT_CHECK_MSG(
                    host_of(u) == a.char_addr ||
                        respects_condition_3prime(host_, host_of(u),
                                                  a.char_addr),
                    "final-round piece neighbour too far off-address");
              }
            }
          }
        }
        const std::int32_t cl = host_.level_of(a.char_addr);
        XT_CHECK_MSG(cl >= round - 2,
                     "piece with stale characteristic address survived round "
                         << round);
      }
    }
    XT_CHECK(pooled + placed_count_.load(std::memory_order_relaxed) ==
             guest_.num_nodes());
  }

  // Diagnostic sink: Options::diagnostic_sink when set; otherwise
  // XT_DEBUG_PHASE=1 in the environment installs a stderr printer.
  // Null (the default) keeps the embedder completely silent.
  static std::function<void(const std::string&)> resolve_sink(
      const XTreeEmbedder::Options& opt) {
    if (opt.diagnostic_sink) return opt.diagnostic_sink;
    if (std::getenv("XT_DEBUG_PHASE") != nullptr) {
      return [](const std::string& line) {
        std::fprintf(stderr, "%s\n", line.c_str());
      };
    }
    return nullptr;
  }

  const BinaryTree& guest_;
  const XTreeEmbedder::Options& opt_;
  std::int32_t height_;
  XTree host_;
  std::vector<VertexId> assign_;
  // Atomic purely for the parallel sweep's concurrent increments; the
  // value is a count, so any increment interleaving yields the same
  // total as the sequential path.
  std::atomic<NodeId> placed_count_{0};
  std::vector<NodeId> load_;
  std::vector<std::vector<Attached>> pool_;
  std::vector<std::int64_t> weight_;
  // Reusable splitter state + result: every split and whole-piece
  // extraction in the run goes through a Ctx, and consumed pieces are
  // recycled into its scratch free list, so the steady-state hot loop
  // performs no heap allocation.  The root ctx (sequential phases)
  // borrows the caller's EmbedArena directly; parallel chunks borrow
  // EmbedArena::task_arenas[i], so a long-lived caller (a service
  // shard, a sweep harness) carries the recycled buffers across runs
  // for every chunk slot.
  XTreeEmbedder::EmbedArena& arena_;
  Ctx root_ctx_;
  std::vector<std::unique_ptr<Ctx>> task_ctxs_;
  std::function<void(const std::string&)> diag_ = resolve_sink(opt_);
  const char* phase_ = "start";
  void set_phase(const char* p) { if (diag_) phase_ = p; }
  XTreeEmbedder::Stats stats_;
};

}  // namespace

std::int32_t XTreeEmbedder::optimal_height(NodeId n, NodeId load) {
  XT_CHECK(n >= 1 && load >= 1);
  std::int32_t r = 0;
  while (static_cast<std::int64_t>(load) * ((std::int64_t{2} << r) - 1) < n)
    ++r;
  return r;
}

XTreeEmbedder::Result XTreeEmbedder::embed(const BinaryTree& guest,
                                           const Options& options) {
  EmbedArena arena;
  return embed(guest, options, arena);
}

XTreeEmbedder::Result XTreeEmbedder::embed(const BinaryTree& guest,
                                           const Options& options,
                                           EmbedArena& arena) {
  EmbedderImpl impl(guest, options, arena);
  return impl.run();
}

XTreeEmbedder::Result XTreeEmbedder::embed(const BinaryTree& guest) {
  return embed(guest, Options{});
}

}  // namespace xt
