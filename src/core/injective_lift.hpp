// Theorem 2: lifting the load-16 embedding of Theorem 1 to an
// *injective* embedding chi into X(r+4) with dilation 11.
//
// chi(u) = delta(u) . mu  for a 4-bit string mu: each host vertex of
// X(r) owns 16 distinct descendants four levels down in X(r+4), one
// per co-located guest node.  A guest edge whose images were <= 3
// apart in X(r) stretches to <= 4 + 3 + 4 = 11.
#pragma once

#include <cstdint>

#include "btree/binary_tree.hpp"
#include "embedding/embedding.hpp"
#include "topology/xtree.hpp"

namespace xt {

struct InjectiveLift {
  Embedding embedding;       // guest -> X(base_height + 4), injective
  std::int32_t host_height;  // base_height + 4
};

/// Lifts a (load <= 16) embedding into X(base) to an injective
/// embedding into X(base + 4).  Requires `load16` complete with load
/// factor <= 16.
InjectiveLift lift_injective(const BinaryTree& guest, const Embedding& load16,
                             const XTree& base_host);

}  // namespace xt
