// Lemma 3: an injective embedding of the X-tree X(r) into the
// hypercube Q_{r+1} with additive distance stretch <= 1.
//
//   delta(alpha) = chi(alpha) . 1 . 0^{r-|alpha|}
//
// where chi is the prefix-XOR transform b_1 = a_1, b_v = a_v XOR
// a_{v-1} (the paper's "b_v = a_v iff a_{v-1} = 0").  Siblings along a
// level differ in exactly one chi bit, so horizontal X-tree edges map
// to hypercube edges; tree edges map to distance <= 2.
#pragma once

#include <cstdint>

#include "topology/hypercube.hpp"
#include "topology/xtree.hpp"

namespace xt {

/// The hypercube vertex (in Q_{host_height+1}) that Lemma 3 assigns to
/// X-tree vertex v of X(host_height).
VertexId lemma3_map(const XTree& xtree, VertexId v);

/// Dimension of the target hypercube: r + 1.
inline std::int32_t lemma3_dimension(const XTree& xtree) {
  return xtree.height() + 1;
}

}  // namespace xt
