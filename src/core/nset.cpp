#include "core/nset.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace xt {
namespace {

void add_range(const XTree& xtree, std::int32_t level, std::int64_t lo,
               std::int64_t hi, std::vector<VertexId>& out) {
  if (level < 0 || level > xtree.height()) return;
  const std::int64_t max_pos = (std::int64_t{1} << level) - 1;
  lo = std::max<std::int64_t>(lo, 0);
  hi = std::min(hi, max_pos);
  for (std::int64_t p = lo; p <= hi; ++p)
    out.push_back(XTree::id_of({level, p}));
}

}  // namespace

std::vector<VertexId> n_set(const XTree& xtree, VertexId a) {
  const XCoord c = xtree.coord_of(a);
  std::vector<VertexId> out;
  // <= 3 horizontal edges on a's own level.
  add_range(xtree, c.level, c.pos - 3, c.pos + 3, out);
  // one downward edge (children span [2p, 2p+1]) then <= 2 horizontal.
  add_range(xtree, c.level + 1, 2 * c.pos - 2, 2 * c.pos + 1 + 2, out);
  // two downward edges (grandchildren span [4p, 4p+3]) then <= 2.
  add_range(xtree, c.level + 2, 4 * c.pos - 2, 4 * c.pos + 3 + 2, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool in_n_set(const XTree& xtree, VertexId a, VertexId b) {
  const XCoord ca = xtree.coord_of(a);
  const XCoord cb = xtree.coord_of(b);
  if (cb.level == ca.level) return std::abs(cb.pos - ca.pos) <= 3;
  if (cb.level == ca.level + 1)
    return cb.pos >= 2 * ca.pos - 2 && cb.pos <= 2 * ca.pos + 3;
  if (cb.level == ca.level + 2)
    return cb.pos >= 4 * ca.pos - 2 && cb.pos <= 4 * ca.pos + 5;
  return false;
}

bool respects_condition_3prime(const XTree& xtree, VertexId a, VertexId b) {
  if (a == b) return true;
  return xtree.level_of(a) <= xtree.level_of(b) ? in_n_set(xtree, a, b)
                                                : in_n_set(xtree, b, a);
}

std::vector<VertexId> n_set_symmetric(const XTree& xtree, VertexId a) {
  const XCoord c = xtree.coord_of(a);
  std::vector<VertexId> out = n_set(xtree, a);
  // Reverse direction: candidates b one or two levels up whose
  // down-cone reaches a (generous ranges, then filtered exactly).
  std::vector<VertexId> candidates;
  add_range(xtree, c.level - 1, (c.pos - 3) / 2 - 1, (c.pos + 2) / 2 + 1,
            candidates);
  add_range(xtree, c.level - 2, (c.pos - 5) / 4 - 1, (c.pos + 2) / 4 + 1,
            candidates);
  for (VertexId b : candidates) {
    if (in_n_set(xtree, b, a)) out.push_back(b);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), a), out.end());
  return out;
}

}  // namespace xt
