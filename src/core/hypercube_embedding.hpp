// Theorem 3: binary trees into hypercubes via X-trees.
//
// Composing the Theorem 1 embedding (dilation 3, load 16 into
// X(r-1)) with the Lemma 3 map (X(r-1) -> Q_r, stretch <= +1) embeds
// every binary tree with n = 16*(2^r - 1) nodes into its optimal
// hypercube Q_r with load 16 and dilation 4.  The corollary in §3
// derives an *injective* dilation-8 embedding into Q_r for any tree
// with at most 2^r - 16 nodes by spending four extra cube dimensions
// on the 16 slots.
#pragma once

#include <cstdint>

#include "btree/binary_tree.hpp"
#include "core/xtree_embedder.hpp"
#include "embedding/embedding.hpp"
#include "topology/hypercube.hpp"

namespace xt {

struct HypercubeEmbedding {
  Embedding embedding;
  std::int32_t dimension = 0;
  XTreeEmbedder::Stats xtree_stats;  // stats of the underlying Theorem 1 run
};

/// Theorem 3: load-16, dilation-4 embedding of `guest` into the
/// smallest hypercube Q_r with 16*2^r >= ... (exact-form inputs
/// n = 16*(2^r - 1) land in their optimal hypercube).
HypercubeEmbedding embed_hypercube_load16(const BinaryTree& guest);

/// Corollary: injective dilation-8 embedding into Q_r; requires
/// n <= 2^r - 16 for the chosen r (smallest such r is used).
HypercubeEmbedding embed_hypercube_injective(const BinaryTree& guest);

}  // namespace xt
