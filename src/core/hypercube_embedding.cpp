#include "core/hypercube_embedding.hpp"

#include <vector>

#include "core/lemma3.hpp"
#include "topology/xtree.hpp"
#include "util/check.hpp"

namespace xt {

HypercubeEmbedding embed_hypercube_load16(const BinaryTree& guest) {
  // Theorem 1 into the optimal X-tree X(r-1) ...
  XTreeEmbedder::Options opt;
  auto t1 = XTreeEmbedder::embed(guest, opt);
  const XTree xtree(t1.stats.height);
  const std::int32_t dim = lemma3_dimension(xtree);

  // ... composed with the Lemma 3 map into Q_r.
  HypercubeEmbedding out{Embedding(guest.num_nodes(),
                                   static_cast<VertexId>(std::int64_t{1}
                                                         << dim)),
                         dim, std::move(t1.stats)};
  for (NodeId v = 0; v < guest.num_nodes(); ++v)
    out.embedding.place(v, lemma3_map(xtree, t1.embedding.host_of(v)));
  XT_CHECK(out.embedding.load_factor() <= 16);
  return out;
}

HypercubeEmbedding embed_hypercube_injective(const BinaryTree& guest) {
  auto base = embed_hypercube_load16(guest);
  const std::int32_t dim = base.dimension + 4;
  XT_CHECK_MSG(guest.num_nodes() <= (std::int64_t{1} << dim) - 16,
               "corollary requires n <= 2^r - 16");

  // Q_r = Q_{r-4} x Q_4: co-located guests take distinct 4-bit
  // sub-cube coordinates.  Base edges had dilation <= 4; suffixes add
  // at most 4 more, total <= 8.
  HypercubeEmbedding out{
      Embedding(guest.num_nodes(),
                static_cast<VertexId>(std::int64_t{1} << dim)),
      dim, std::move(base.xtree_stats)};
  std::vector<std::int32_t> next_suffix(
      static_cast<std::size_t>(base.embedding.num_host_vertices()), 0);
  for (NodeId v = 0; v < guest.num_nodes(); ++v) {
    const VertexId h = base.embedding.host_of(v);
    const std::int32_t mu = next_suffix[static_cast<std::size_t>(h)]++;
    XT_CHECK(mu < 16);
    out.embedding.place(v, (h << 4) | mu);
  }
  XT_CHECK(out.embedding.injective());
  return out;
}

}  // namespace xt
