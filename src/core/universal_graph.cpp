#include "core/universal_graph.hpp"

#include <vector>

#include "core/nset.hpp"
#include "core/xtree_embedder.hpp"
#include "topology/xtree.hpp"
#include "util/check.hpp"

namespace xt {

UniversalGraph build_universal_graph(std::int32_t xtree_height) {
  const XTree xtree(xtree_height);
  UniversalGraph out;
  out.xtree_height = xtree_height;
  out.num_nodes = static_cast<NodeId>(16 * (xtree.num_vertices()));
  GraphBuilder builder(out.num_nodes);
  for (VertexId a = 0; a < xtree.num_vertices(); ++a) {
    // Intra-vertex clique over the 16 slots.
    for (std::int32_t s = 0; s < 16; ++s) {
      for (std::int32_t t = s + 1; t < 16; ++t)
        builder.add_edge(out.vertex_of(a, s), out.vertex_of(a, t));
    }
    // Slot-complete edges to every vertex of N(a) (the reverse
    // direction is added when the other endpoint is processed).
    for (VertexId b : n_set(xtree, a)) {
      if (b == a) continue;
      for (std::int32_t s = 0; s < 16; ++s) {
        for (std::int32_t t = 0; t < 16; ++t)
          builder.add_edge(out.vertex_of(a, s), out.vertex_of(b, t));
      }
    }
  }
  out.graph = builder.build();
  return out;
}

Embedding universal_spanning_embedding(const BinaryTree& guest,
                                       const UniversalGraph& universal,
                                       std::int64_t* edges_outside) {
  XT_CHECK_MSG(guest.num_nodes() == universal.num_nodes,
               "guest size " << guest.num_nodes() << " != universal size "
                             << universal.num_nodes);
  XTreeEmbedder::Options opt;
  opt.height = universal.xtree_height;
  auto t1 = XTreeEmbedder::embed(guest, opt);

  Embedding out(guest.num_nodes(), universal.num_nodes);
  std::vector<std::int32_t> next_slot(
      static_cast<std::size_t>((std::int64_t{2} << universal.xtree_height) -
                               1),
      0);
  for (NodeId v = 0; v < guest.num_nodes(); ++v) {
    const VertexId h = t1.embedding.host_of(v);
    const std::int32_t slot = next_slot[static_cast<std::size_t>(h)]++;
    XT_CHECK(slot < 16);
    out.place(v, universal.vertex_of(h, slot));
  }
  XT_CHECK(out.injective());

  if (edges_outside != nullptr) {
    *edges_outside = 0;
    for (const auto& [u, v] : guest.edges()) {
      if (!universal.graph.has_edge(out.host_of(u), out.host_of(v)))
        ++*edges_outside;
    }
  }
  return out;
}

Embedding universal_subgraph_embedding(const BinaryTree& guest,
                                       const UniversalGraph& universal,
                                       std::int64_t* edges_outside) {
  XT_CHECK_MSG(guest.num_nodes() <= universal.num_nodes,
               "guest larger than the universal graph");
  // Pad the guest to the exact spanning size with a pendant chain
  // (node ids 0..n-1 are preserved, padding ids follow).
  BinaryTree padded = BinaryTree::single();
  for (NodeId v = 1; v < guest.num_nodes(); ++v)
    padded.add_child(guest.parent(v));
  NodeId hook = kInvalidNode;
  for (NodeId v = 0; v < padded.num_nodes(); ++v) {
    if (padded.num_children(v) < 2) {
      hook = v;
      break;
    }
  }
  XT_CHECK(hook != kInvalidNode);
  while (padded.num_nodes() < universal.num_nodes)
    hook = padded.add_child(hook);

  const Embedding full =
      universal_spanning_embedding(padded, universal, nullptr);
  Embedding out(guest.num_nodes(), universal.num_nodes);
  for (NodeId v = 0; v < guest.num_nodes(); ++v)
    out.place(v, full.host_of(v));
  XT_CHECK(out.injective());

  if (edges_outside != nullptr) {
    *edges_outside = 0;
    for (const auto& [u, v] : guest.edges()) {
      if (!universal.graph.has_edge(out.host_of(u), out.host_of(v)))
        ++*edges_outside;
    }
  }
  return out;
}

std::int32_t universal_height_for(NodeId n) {
  std::int32_t r = 1;
  while ((std::int64_t{1} << (r + 5)) - 16 < n) ++r;
  return r;
}

}  // namespace xt
