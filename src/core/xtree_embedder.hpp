// Algorithm X-TREE: the constructive proof of Theorem 1 (Monien,
// SPAA'91) as executable code.
//
// Every binary tree with n = 16 * (2^{r+1} - 1) nodes is embedded into
// the X-tree X(r) with load factor 16, dilation 3 and optimal
// expansion.  The embedding is built level by level: round i extends
// the partial embedding delta_{i-1} to the level-i vertices by
//
//   * ADJUST(a0, a1, i) for every built vertex a — re-balances the
//     guest mass associated with the two sibling subtrees by shifting
//     pieces between the two horizontally adjacent "corner" leaves,
//     cutting pieces with the Lemma 1/2 splitters and laying the cut
//     boundary on the two adjacent level-i corner vertices;
//   * SPLIT(b, i) for every level-(i-1) leaf b — distributes the
//     pieces attached to b between b0 and b1 (greedy LPT in place of
//     the paper's interval pairing, with the paper's neighbour-aware
//     orientation rule), lays out every piece whose characteristic
//     address is two levels up (the paper's S1 set), refines the
//     sibling balance with one Lemma 2 split, and fills both children
//     to exactly 16 nodes by peeling attached pieces.
//
// The extended abstract omits subsection (iv) ("Revision of the
// procedure ADJUST") and parts of (ii)/(iii); where the published
// bookkeeping is incomplete this implementation keeps the published
// *invariants* (collinearity, unique characteristic addresses, the
// level-difference <= 2 rule, 16 slots per vertex) and resolves the
// rest with measured engineering: every deviation from the paper's
// budgets is counted in Stats, and a final bounded repair pass places
// any residue, so the reported dilation is always the truth about the
// produced embedding.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "btree/binary_tree.hpp"
#include "embedding/embedding.hpp"
#include "separator/splitter.hpp"
#include "topology/xtree.hpp"

namespace xt {

class XTreeEmbedder {
 public:
  struct Options {
    /// Guest nodes per host vertex (Theorem 1 fixes 16; other values
    /// are supported for the ablation benches).
    NodeId load = 16;
    /// Force a host height; -1 selects the optimal X-tree (smallest
    /// height whose capacity load*(2^{r+1}-1) covers the guest).
    std::int32_t height = -1;
    /// Check the dilation discipline (distance <= 3 between an
    /// embedded node and its already-embedded neighbours) live at
    /// every placement; violations are counted, not fatal.
    bool check_discipline = true;
    /// Run the O(n) structural audit (collinearity, characteristic
    /// addresses, loads) after every round.  For tests.
    bool audit_rounds = false;
    /// Record the per-round sibling-imbalance trace (experiment C1).
    bool record_trace = false;
    /// Receives one line per notable event (condition-(3') violation,
    /// ADJUST shortfall, pre-repair leaf state), tagged with the
    /// algorithm phase.  Unset -> the embedder is silent; setting
    /// XT_DEBUG_PHASE=1 in the environment installs a stderr sink when
    /// no sink is given here.  The library never writes to stderr
    /// unless one of those two opt-ins is active.
    std::function<void(const std::string&)> diagnostic_sink;

    // --- ablation switches (experiment A1; defaults = the paper) ---
    /// Use only the coarser Lemma 1 splitter (tolerance (D+1)/3
    /// instead of Lemma 2's (D+4)/9) in every balancing cut.
    bool lemma1_only = false;
    /// Skip the cross-leaf fill pass after each SPLIT sweep.
    bool disable_level_fill = false;
    /// Skip ADJUST entirely — shows what the X-tree's horizontal
    /// edges buy over a plain complete binary tree host.
    bool disable_adjust = false;
    /// Use the paper's literal find2 case analysis for every
    /// balancing cut (default; measurably better than the generic
    /// carve-and-refine splitter — its cuts stay on the r1-r2 path,
    /// which suits the interval chains ADJUST produces).  Disable for
    /// the ablation comparison.
    bool paper_find2 = true;

    /// Maximum number of parallel chunks the per-round SPLIT sweep may
    /// fan out into on the shared thread pool.  1 (the default) keeps
    /// the whole embed on the calling thread — the oracle path.  For
    /// any value, placements and stats are bit-identical to the
    /// sequential result: split(b) calls of one round touch disjoint
    /// state (pieces partition the unembedded nodes, and each piece
    /// hangs off exactly one level-(round-1) vertex), subtree weights
    /// are read-only during the sweep, and the per-chunk stat counters
    /// are commutative sums/maxes.  A diagnostic sink forces the
    /// sequential path (line order matters there).
    int intra_embed_parallelism = 1;
  };

  struct Stats {
    std::int32_t height = 0;
    std::int64_t adjust_calls = 0;
    std::int64_t adjust_shifts = 0;       // pieces moved or cut by ADJUST
    std::int64_t split_calls = 0;
    std::int64_t lemma_splits = 0;        // Lemma 2 splitter invocations
    std::int64_t whole_moves = 0;         // pieces shifted wholesale
    std::int64_t median_fixes = 0;        // Lemma 1 "node y" promotions
    std::int64_t peel_fills = 0;          // nodes laid by the fill step
    std::int64_t repair_placements = 0;   // nodes placed by final repair
    std::int64_t repair_relocations = 0;  // residents slid over by repair
    std::int64_t discipline_violations = 0;  // placements farther than 3
                                             // from an embedded neighbour
    std::int32_t max_observed_embed_distance = 0;
    std::int64_t adjust_budget_overruns = 0;  // corner got > 4 ADJUST nodes
    std::int64_t unmet_adjust_demand = 0;     // shift mass ADJUST could not move
    /// Wall nanoseconds the calling thread spent inside the per-round
    /// SPLIT sweeps (sequential loop or parallel_chunks makespan,
    /// summed over rounds).  A timing, not a count: the only Stats
    /// field that varies run to run, so determinism checks must skip
    /// it.  Lets benches measure the parallelizable share of an embed
    /// without external profiling.
    std::int64_t split_sweep_ns = 0;
    /// record_trace: max over sibling pairs of |W(a0)-W(a1)| after
    /// round i, indexed [round][level of a].
    std::vector<std::vector<std::int64_t>> imbalance_trace;
    /// record_trace: the paper's a(j,i) — max over level-j vertices of
    /// |W(a) - n_{r-j}| after round i (occupancy deviation from the
    /// final 16*(2^{r-j+1}-1) target), indexed [round][level].
    std::vector<std::vector<std::int64_t>> occupancy_trace;
  };

  struct Result {
    Embedding embedding;
    Stats stats;
  };

  /// Reusable cross-run scratch: the splitter working set and recycled
  /// piece buffers survive between embed() calls, so a long-lived
  /// caller (one service shard, a sweep harness) reaches the
  /// steady-state allocation-free hot path on every run instead of
  /// only within one.  Not thread-safe — use one arena per thread.
  struct EmbedArena {
    SplitScratch scratch;
    SplitResult split_result;
    /// Per-chunk arenas for the parallel SPLIT sweep
    /// (Options::intra_embed_parallelism > 1).  Chunk i of a sweep
    /// owns task_arenas[i] exclusively for the sweep's duration, so
    /// each worker keeps the allocation-free property with its own
    /// recycled buffers.  Created lazily, persisted across embeds.
    std::vector<std::unique_ptr<EmbedArena>> task_arenas;
  };

  /// Smallest X-tree height whose capacity covers n guest nodes.
  static std::int32_t optimal_height(NodeId n, NodeId load);

  /// Runs algorithm X-TREE.  The guest may have any size >= 1; the
  /// theorem's exact-form sizes n = load*(2^{r+1}-1) yield load
  /// exactly `load` on every vertex.
  static Result embed(const BinaryTree& guest, const Options& options);
  /// Same, with default options.
  static Result embed(const BinaryTree& guest);
  /// Same, reusing (and refilling) the caller's arena across runs.
  static Result embed(const BinaryTree& guest, const Options& options,
                      EmbedArena& arena);
};

}  // namespace xt
