#include "core/injective_lift.hpp"

#include <vector>

#include "util/check.hpp"

namespace xt {

InjectiveLift lift_injective(const BinaryTree& guest, const Embedding& load16,
                             const XTree& base_host) {
  XT_CHECK(load16.complete());
  XT_CHECK_MSG(load16.load_factor() <= 16,
               "lift requires load factor <= 16 (got "
                   << load16.load_factor() << ")");
  const std::int32_t lifted_height = base_host.height() + 4;
  const XTree lifted(lifted_height);

  InjectiveLift out{
      Embedding(guest.num_nodes(), lifted.num_vertices()), lifted_height};

  // Next free 4-bit suffix per base vertex.
  std::vector<std::int32_t> next_suffix(
      static_cast<std::size_t>(base_host.num_vertices()), 0);
  for (NodeId v = 0; v < guest.num_nodes(); ++v) {
    const VertexId base = load16.host_of(v);
    const XCoord c = base_host.coord_of(base);
    const std::int32_t mu = next_suffix[static_cast<std::size_t>(base)]++;
    XT_CHECK(mu < 16);
    // delta(u) . mu: the descendant of `base` four levels down whose
    // last four string bits are mu.
    out.embedding.place(v, XTree::id_of({c.level + 4, c.pos * 16 + mu}));
  }
  XT_CHECK(out.embedding.injective());
  return out;
}

}  // namespace xt
