#include "core/dynamic_embedder.hpp"

#include <algorithm>
#include <utility>

#include "core/nset.hpp"
#include "util/check.hpp"

namespace xt {

DynamicEmbedder::DynamicEmbedder(std::int32_t height, NodeId load,
                                 MutationPolicy policy)
    : host_(height),
      load_(load),
      policy_(policy),
      parent_{kInvalidNode},
      left_{kInvalidNode},
      right_{kInvalidNode},
      alive_{1},
      assign_{host_.root()},
      load_of_(static_cast<std::size_t>(host_.num_vertices()), 0),
      // Any X(r) distance is at most level(a) + level(b) <= 2r (the
      // root path is always available), so the histogram never
      // overflows this bound.
      dist_hist_(static_cast<std::size_t>(2 * height + 2), 0),
      load_hist_(static_cast<std::size_t>(load) + 1, 0) {
  XT_CHECK(load >= 1);
  load_of_[static_cast<std::size_t>(host_.root())] = 1;
  load_hist_[0] = host_.num_vertices() - 1;
  load_hist_[1] = 1;
}

std::int64_t DynamicEmbedder::free_capacity() const {
  return static_cast<std::int64_t>(load_) * host_.num_vertices() - num_live_;
}

NodeId DynamicEmbedder::subtree_size(NodeId v) const {
  XT_CHECK(is_live(v));
  std::vector<NodeId> queue{v};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (int w = 0; w < 2; ++w) {
      const NodeId c = child_of(queue[head], w);
      if (c != kInvalidNode) queue.push_back(c);
    }
  }
  return static_cast<NodeId>(queue.size());
}

// --- metric bookkeeping ---------------------------------------------------

void DynamicEmbedder::place_node(NodeId v, VertexId slot) {
  assign_[static_cast<std::size_t>(v)] = slot;
  const NodeId l = load_of_[static_cast<std::size_t>(slot)];
  --load_hist_[static_cast<std::size_t>(l)];
  ++load_of_[static_cast<std::size_t>(slot)];
  ++load_hist_[static_cast<std::size_t>(l) + 1];
  if (l + 1 > max_load_now_) max_load_now_ = l + 1;
}

void DynamicEmbedder::unplace_node(NodeId v) {
  const VertexId slot = assign_[static_cast<std::size_t>(v)];
  const NodeId l = load_of_[static_cast<std::size_t>(slot)];
  --load_hist_[static_cast<std::size_t>(l)];
  --load_of_[static_cast<std::size_t>(slot)];
  ++load_hist_[static_cast<std::size_t>(l) - 1];
  while (max_load_now_ > 0 &&
         load_hist_[static_cast<std::size_t>(max_load_now_)] == 0) {
    --max_load_now_;
  }
  assign_[static_cast<std::size_t>(v)] = kInvalidVertex;
}

void DynamicEmbedder::add_edge_metric(NodeId u, NodeId v) {
  const std::int32_t d = host_.distance(host_of(u), host_of(v));
  XT_CHECK(static_cast<std::size_t>(d) < dist_hist_.size());
  ++dist_hist_[static_cast<std::size_t>(d)];
  if (d > max_dist_) max_dist_ = d;
}

void DynamicEmbedder::remove_edge_metric(NodeId u, NodeId v) {
  const std::int32_t d = host_.distance(host_of(u), host_of(v));
  --dist_hist_[static_cast<std::size_t>(d)];
  while (max_dist_ > 0 &&
         dist_hist_[static_cast<std::size_t>(max_dist_)] == 0) {
    --max_dist_;
  }
}

void DynamicEmbedder::rebuild_metrics() {
  std::fill(load_of_.begin(), load_of_.end(), 0);
  std::fill(load_hist_.begin(), load_hist_.end(), 0);
  std::fill(dist_hist_.begin(), dist_hist_.end(), 0);
  max_dist_ = 0;
  max_load_now_ = 0;
  for (NodeId v = 0; v < num_ids(); ++v) {
    if (!alive_[static_cast<std::size_t>(v)]) continue;
    ++load_of_[static_cast<std::size_t>(host_of(v))];
    const NodeId p = parent_of(v);
    if (p != kInvalidNode) {
      const std::int32_t d = host_.distance(host_of(p), host_of(v));
      ++dist_hist_[static_cast<std::size_t>(d)];
      if (d > max_dist_) max_dist_ = d;
    }
  }
  for (VertexId h = 0; h < host_.num_vertices(); ++h) {
    const NodeId l = load_of_[static_cast<std::size_t>(h)];
    ++load_hist_[static_cast<std::size_t>(l)];
    if (l > max_load_now_) max_load_now_ = l;
  }
}

// --- growth ---------------------------------------------------------------

DynamicEmbedder::GrowthResult DynamicEmbedder::try_add_leaf(NodeId parent) {
  ++stats_.applied;
  if (!is_live(parent)) {
    ++stats_.rejected;
    return {kInvalidNode, GrowthError::kInvalidParent};
  }
  if (num_children(parent) >= 2) {
    ++stats_.rejected;
    return {kInvalidNode, GrowthError::kParentSlotsFull};
  }
  if (free_capacity() <= 0) {
    ++stats_.rejected;
    return {kInvalidNode, GrowthError::kHostFull};
  }
  const VertexId slot = pick_slot(host_of(parent));

  NodeId leaf;
  if (!free_ids_.empty()) {
    leaf = free_ids_.back();
    free_ids_.pop_back();
  } else {
    leaf = num_ids();
    parent_.push_back(kInvalidNode);
    left_.push_back(kInvalidNode);
    right_.push_back(kInvalidNode);
    alive_.push_back(0);
    assign_.push_back(kInvalidVertex);
  }
  parent_[static_cast<std::size_t>(leaf)] = parent;
  left_[static_cast<std::size_t>(leaf)] = kInvalidNode;
  right_[static_cast<std::size_t>(leaf)] = kInvalidNode;
  auto& slot_ref = left_[static_cast<std::size_t>(parent)] == kInvalidNode
                       ? left_[static_cast<std::size_t>(parent)]
                       : right_[static_cast<std::size_t>(parent)];
  slot_ref = leaf;
  alive_[static_cast<std::size_t>(leaf)] = 1;
  ++num_live_;
  place_node(leaf, slot);
  add_edge_metric(parent, leaf);

  bool esc = false;
  std::int64_t touched = 1;
  if (policy_.max_dilation > 0 &&
      host_.distance(host_of(parent), slot) > policy_.max_dilation) {
    const std::int64_t n = escalate();
    stats_.escalate_nodes += n;
    touched += n;
    esc = true;
  }
  esc ? ++stats_.escalated : ++stats_.repaired;
  stats_.nodes_touched += touched;
  return {leaf, GrowthError::kOk, esc};
}

std::vector<DynamicEmbedder::GrowthResult> DynamicEmbedder::try_add_leaves(
    std::span<const NodeId> parents) {
  // One-at-a-time semantics by construction: each entry runs the same
  // admission checks and the same pick_slot against the state the
  // previous entries left behind.  The win is in pick_slot's scratch,
  // which stays warm across the batch.
  std::vector<GrowthResult> results;
  results.reserve(parents.size());
  for (const NodeId parent : parents) results.push_back(try_add_leaf(parent));
  return results;
}

NodeId DynamicEmbedder::add_leaf(NodeId parent) {
  const GrowthResult r = try_add_leaf(parent);
  XT_CHECK_MSG(r.error != GrowthError::kHostFull, "machine is full");
  XT_CHECK_MSG(r.error != GrowthError::kInvalidParent,
               "parent " << parent << " is not a live node");
  XT_CHECK_MSG(r.ok(), "parent " << parent << " has no free child slot");
  return r.leaf;
}

// --- mutation -------------------------------------------------------------

void DynamicEmbedder::collect_subtree(NodeId v, std::vector<NodeId>& out) const {
  out.clear();
  out.push_back(v);
  for (std::size_t head = 0; head < out.size(); ++head) {
    for (int w = 0; w < 2; ++w) {
      const NodeId c = child_of(out[head], w);
      if (c != kInvalidNode) out.push_back(c);
    }
  }
}

void DynamicEmbedder::retire_node(NodeId v) {
  parent_[static_cast<std::size_t>(v)] = kInvalidNode;
  left_[static_cast<std::size_t>(v)] = kInvalidNode;
  right_[static_cast<std::size_t>(v)] = kInvalidNode;
  alive_[static_cast<std::size_t>(v)] = 0;
  free_ids_.push_back(v);
  --num_live_;
}

DynamicEmbedder::MutationResult DynamicEmbedder::try_remove_leaf(NodeId v) {
  ++stats_.applied;
  const auto reject = [&](MutationError e) {
    ++stats_.rejected;
    return MutationResult{e, 0, false, max_dist_, max_load_now_};
  };
  if (!is_live(v)) return reject(MutationError::kDeadNode);
  if (v == root()) return reject(MutationError::kIsRoot);
  if (!is_leaf(v)) return reject(MutationError::kNotLeaf);

  const NodeId p = parent_of(v);
  remove_edge_metric(p, v);
  unplace_node(v);
  (left_[static_cast<std::size_t>(p)] == v
       ? left_[static_cast<std::size_t>(p)]
       : right_[static_cast<std::size_t>(p)]) = kInvalidNode;
  retire_node(v);
  ++stats_.repaired;
  ++stats_.nodes_touched;
  return {MutationError::kOk, 1, false, max_dist_, max_load_now_};
}

DynamicEmbedder::MutationResult DynamicEmbedder::try_remove_subtree(NodeId v) {
  ++stats_.applied;
  const auto reject = [&](MutationError e) {
    ++stats_.rejected;
    return MutationResult{e, 0, false, max_dist_, max_load_now_};
  };
  if (!is_live(v)) return reject(MutationError::kDeadNode);
  if (v == root()) return reject(MutationError::kIsRoot);

  auto& nodes = subtree_scratch_;
  collect_subtree(v, nodes);
  // All metric removals run first, while every placement is intact.
  const NodeId p = parent_of(v);
  remove_edge_metric(p, v);
  for (const NodeId u : nodes) {
    for (int w = 0; w < 2; ++w) {
      const NodeId c = child_of(u, w);
      if (c != kInvalidNode) remove_edge_metric(u, c);
    }
  }
  (left_[static_cast<std::size_t>(p)] == v
       ? left_[static_cast<std::size_t>(p)]
       : right_[static_cast<std::size_t>(p)]) = kInvalidNode;
  for (const NodeId u : nodes) {
    unplace_node(u);
    retire_node(u);
  }
  const auto touched = static_cast<std::int64_t>(nodes.size());
  ++stats_.repaired;
  stats_.nodes_touched += touched;
  return {MutationError::kOk, touched, false, max_dist_, max_load_now_};
}

DynamicEmbedder::MutationResult DynamicEmbedder::try_move_subtree(
    NodeId v, NodeId new_parent) {
  ++stats_.applied;
  const auto reject = [&](MutationError e) {
    ++stats_.rejected;
    return MutationResult{e, 0, false, max_dist_, max_load_now_};
  };
  if (!is_live(v)) return reject(MutationError::kDeadNode);
  if (v == root()) return reject(MutationError::kIsRoot);
  if (!is_live(new_parent)) return reject(MutationError::kInvalidParent);
  if (new_parent == parent_of(v)) {
    ++stats_.repaired;
    return {MutationError::kOk, 0, false, max_dist_, max_load_now_};
  }
  // Destination inside the moved subtree (or the subtree root itself)
  // would detach the subtree from the guest: walk the ancestor chain.
  for (NodeId a = new_parent; a != kInvalidNode; a = parent_of(a)) {
    if (a == v) return reject(MutationError::kWouldCycle);
  }
  if (num_children(new_parent) >= 2)
    return reject(MutationError::kParentSlotsFull);

  const NodeId old_p = parent_of(v);
  remove_edge_metric(old_p, v);
  (left_[static_cast<std::size_t>(old_p)] == v
       ? left_[static_cast<std::size_t>(old_p)]
       : right_[static_cast<std::size_t>(old_p)]) = kInvalidNode;
  auto& slot_ref = left_[static_cast<std::size_t>(new_parent)] == kInvalidNode
                       ? left_[static_cast<std::size_t>(new_parent)]
                       : right_[static_cast<std::size_t>(new_parent)];
  slot_ref = v;
  parent_[static_cast<std::size_t>(v)] = new_parent;
  add_edge_metric(new_parent, v);

  std::int64_t touched = 1;
  bool esc = false;
  if (policy_.max_dilation > 0 &&
      host_.distance(host_of(new_parent), host_of(v)) > policy_.max_dilation) {
    auto& nodes = subtree_scratch_;
    collect_subtree(v, nodes);
    const auto k = static_cast<std::int64_t>(nodes.size());
    bool fixed = false;
    if (k <= policy_.max_repair_nodes) {
      // Local repair: lift the whole subtree and greedily re-place it
      // near its new parent, BFS order so each node lands relative to
      // its (already re-placed) parent image.
      remove_edge_metric(new_parent, v);
      for (const NodeId u : nodes) {
        for (int w = 0; w < 2; ++w) {
          const NodeId c = child_of(u, w);
          if (c != kInvalidNode) remove_edge_metric(u, c);
        }
      }
      for (const NodeId u : nodes) unplace_node(u);
      std::int32_t worst = 0;
      for (const NodeId u : nodes) {
        const NodeId up = parent_of(u);
        const VertexId slot = pick_slot(host_of(up));
        place_node(u, slot);
        add_edge_metric(up, u);
        worst = std::max(worst, host_.distance(host_of(up), slot));
      }
      touched += k;
      fixed = worst <= policy_.max_dilation;
    }
    if (!fixed) {
      const std::int64_t n = escalate();
      stats_.escalate_nodes += n;
      touched += n;
      esc = true;
    }
  }
  esc ? ++stats_.escalated : ++stats_.repaired;
  stats_.nodes_touched += touched;
  return {MutationError::kOk, touched, esc, max_dist_, max_load_now_};
}

const DynamicEmbedder::MutationStats& DynamicEmbedder::mutation_stats() const {
  XT_CHECK_MSG(stats_.applied ==
                   stats_.repaired + stats_.escalated + stats_.rejected,
               "mutation accounting identity broken: applied="
                   << stats_.applied << " repaired=" << stats_.repaired
                   << " escalated=" << stats_.escalated
                   << " rejected=" << stats_.rejected);
  return stats_;
}

// --- escalation -----------------------------------------------------------

XTreeEmbedder::Options DynamicEmbedder::escalation_options(
    NodeId load, std::int32_t height) {
  XTreeEmbedder::Options options;
  options.load = load;
  options.height = height;  // the machine is fixed; never resize it
  return options;
}

std::int64_t DynamicEmbedder::escalate() {
  const DynamicSnapshot snap = snapshot();
  const auto offline = XTreeEmbedder::embed(
      snap.tree, escalation_options(load_, host_.height()));
  for (NodeId c = 0; c < snap.tree.num_nodes(); ++c) {
    assign_[static_cast<std::size_t>(
        snap.stable_of[static_cast<std::size_t>(c)])] =
        offline.embedding.host_of(c);
  }
  rebuild_metrics();
  return num_live_;
}

// --- placement ------------------------------------------------------------

VertexId DynamicEmbedder::pick_slot(VertexId parent_host) const {
  // BFS rings around the parent's image; first collect the nearest
  // free vertices (two rings past the first hit), then prefer one that
  // keeps condition (3'), then the closest.  The visited set is a
  // stamp array: bumping the epoch invalidates every previous mark in
  // O(1), so back-to-back picks reuse the allocation.
  if (seen_stamp_.size() !=
      static_cast<std::size_t>(host_.num_vertices())) {
    seen_stamp_.assign(static_cast<std::size_t>(host_.num_vertices()), 0);
    seen_epoch_ = 0;
  }
  if (++seen_epoch_ == 0) {  // wrapped: stamps from the old cycle would
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);  // alias epoch 0
    seen_epoch_ = 1;
  }
  const std::uint32_t epoch = seen_epoch_;
  auto& queue = bfs_queue_;
  queue.clear();
  queue.emplace_back(parent_host, 0);
  seen_stamp_[static_cast<std::size_t>(parent_host)] = epoch;
  VertexId best = kInvalidVertex;
  std::int64_t best_score = 0;
  std::int32_t stop_depth = -1;
  auto& nbr = nbr_scratch_;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto [x, depth] = queue[head];
    if (stop_depth >= 0 && depth > stop_depth) break;
    if (load_of_[static_cast<std::size_t>(x)] < load_) {
      const std::int64_t score =
          (respects_condition_3prime(host_, parent_host, x) ? 0 : 1000) +
          depth;
      if (best == kInvalidVertex || score < best_score) {
        best = x;
        best_score = score;
      }
      if (stop_depth < 0) stop_depth = depth + 2;
    }
    nbr.clear();
    host_.neighbors(x, nbr);
    for (VertexId y : nbr) {
      if (seen_stamp_[static_cast<std::size_t>(y)] != epoch) {
        seen_stamp_[static_cast<std::size_t>(y)] = epoch;
        queue.emplace_back(y, depth + 1);
      }
    }
  }
  XT_CHECK(best != kInvalidVertex);
  return best;
}

// --- snapshot -------------------------------------------------------------

DynamicEmbedder::DynamicSnapshot DynamicEmbedder::snapshot() const {
  DynamicSnapshot snap;
  const auto n = static_cast<std::size_t>(num_live_);
  snap.stable_of.reserve(n);
  snap.compact_of.assign(static_cast<std::size_t>(num_ids()), kInvalidNode);
  // Preorder DFS assigns compact ids so every parent precedes its
  // children — the invariant BinaryTree::from_soa validates.
  std::vector<NodeId> stack{root()};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    snap.compact_of[static_cast<std::size_t>(v)] =
        static_cast<NodeId>(snap.stable_of.size());
    snap.stable_of.push_back(v);
    const NodeId r = child_of(v, 1);
    const NodeId l = child_of(v, 0);
    if (r != kInvalidNode) stack.push_back(r);
    if (l != kInvalidNode) stack.push_back(l);
  }
  XT_CHECK(snap.stable_of.size() == n);

  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<NodeId> left(n, kInvalidNode);
  std::vector<NodeId> right(n, kInvalidNode);
  const auto compact = [&](NodeId stable) {
    return stable == kInvalidNode
               ? kInvalidNode
               : snap.compact_of[static_cast<std::size_t>(stable)];
  };
  for (std::size_t c = 0; c < n; ++c) {
    const NodeId v = snap.stable_of[c];
    parent[c] = compact(parent_of(v));
    left[c] = compact(child_of(v, 0));
    right[c] = compact(child_of(v, 1));
  }
  snap.tree = BinaryTree::from_soa(std::move(parent), std::move(left),
                                   std::move(right));
  snap.embedding = Embedding(static_cast<NodeId>(n), host_.num_vertices());
  for (std::size_t c = 0; c < n; ++c)
    snap.embedding.place(static_cast<NodeId>(c), host_of(snap.stable_of[c]));
  return snap;
}

}  // namespace xt
