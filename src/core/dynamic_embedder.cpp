#include "core/dynamic_embedder.hpp"

#include <algorithm>

#include "core/nset.hpp"
#include "util/check.hpp"

namespace xt {

DynamicEmbedder::DynamicEmbedder(std::int32_t height, NodeId load)
    : host_(height),
      load_(load),
      guest_(BinaryTree::single()),
      assign_{host_.root()},
      load_of_(static_cast<std::size_t>(host_.num_vertices()), 0) {
  XT_CHECK(load >= 1);
  load_of_[static_cast<std::size_t>(host_.root())] = 1;
}

std::int64_t DynamicEmbedder::free_capacity() const {
  return static_cast<std::int64_t>(load_) * host_.num_vertices() -
         guest_.num_nodes();
}

DynamicEmbedder::GrowthResult DynamicEmbedder::try_add_leaf(NodeId parent) {
  XT_CHECK(parent >= 0 && parent < guest_.num_nodes());
  if (guest_.num_children(parent) >= 2)
    return {kInvalidNode, GrowthError::kParentSlotsFull};
  if (free_capacity() <= 0) return {kInvalidNode, GrowthError::kHostFull};
  const VertexId slot = pick_slot(host_of(parent));
  const NodeId leaf = guest_.add_child(parent);
  assign_.push_back(slot);
  ++load_of_[static_cast<std::size_t>(slot)];
  return {leaf, GrowthError::kOk};
}

std::vector<DynamicEmbedder::GrowthResult> DynamicEmbedder::try_add_leaves(
    std::span<const NodeId> parents) {
  // One-at-a-time semantics by construction: each entry runs the same
  // admission checks and the same pick_slot against the state the
  // previous entries left behind.  The win is in pick_slot's scratch,
  // which stays warm across the batch.
  std::vector<GrowthResult> results;
  results.reserve(parents.size());
  for (const NodeId parent : parents) results.push_back(try_add_leaf(parent));
  return results;
}

NodeId DynamicEmbedder::add_leaf(NodeId parent) {
  const GrowthResult r = try_add_leaf(parent);
  XT_CHECK_MSG(r.error != GrowthError::kHostFull, "machine is full");
  XT_CHECK_MSG(r.ok(), "parent " << parent << " has no free child slot");
  return r.leaf;
}

VertexId DynamicEmbedder::pick_slot(VertexId parent_host) const {
  // BFS rings around the parent's image; first collect the nearest
  // free vertices (two rings past the first hit), then prefer one that
  // keeps condition (3'), then the closest.  The visited set is a
  // stamp array: bumping the epoch invalidates every previous mark in
  // O(1), so back-to-back picks reuse the allocation.
  if (seen_stamp_.size() !=
      static_cast<std::size_t>(host_.num_vertices())) {
    seen_stamp_.assign(static_cast<std::size_t>(host_.num_vertices()), 0);
    seen_epoch_ = 0;
  }
  if (++seen_epoch_ == 0) {  // wrapped: stamps from the old cycle would
    std::fill(seen_stamp_.begin(), seen_stamp_.end(), 0);  // alias epoch 0
    seen_epoch_ = 1;
  }
  const std::uint32_t epoch = seen_epoch_;
  auto& queue = bfs_queue_;
  queue.clear();
  queue.emplace_back(parent_host, 0);
  seen_stamp_[static_cast<std::size_t>(parent_host)] = epoch;
  VertexId best = kInvalidVertex;
  std::int64_t best_score = 0;
  std::int32_t stop_depth = -1;
  auto& nbr = nbr_scratch_;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto [x, depth] = queue[head];
    if (stop_depth >= 0 && depth > stop_depth) break;
    if (load_of_[static_cast<std::size_t>(x)] < load_) {
      const std::int64_t score =
          (respects_condition_3prime(host_, parent_host, x) ? 0 : 1000) +
          depth;
      if (best == kInvalidVertex || score < best_score) {
        best = x;
        best_score = score;
      }
      if (stop_depth < 0) stop_depth = depth + 2;
    }
    nbr.clear();
    host_.neighbors(x, nbr);
    for (VertexId y : nbr) {
      if (seen_stamp_[static_cast<std::size_t>(y)] != epoch) {
        seen_stamp_[static_cast<std::size_t>(y)] = epoch;
        queue.emplace_back(y, depth + 1);
      }
    }
  }
  XT_CHECK(best != kInvalidVertex);
  return best;
}

std::int32_t DynamicEmbedder::current_dilation() const {
  std::int32_t worst = 0;
  for (const auto& [u, v] : guest_.edges())
    worst = std::max(worst, host_.distance(host_of(u), host_of(v)));
  return worst;
}

Embedding DynamicEmbedder::snapshot() const {
  Embedding emb(guest_.num_nodes(), host_.num_vertices());
  for (NodeId v = 0; v < guest_.num_nodes(); ++v) emb.place(v, host_of(v));
  return emb;
}

}  // namespace xt
