// Theorem 4: a bounded-degree universal graph for binary trees.
//
// For n = 2^t - 16 = 16*(2^{r+1} - 1) with r = t - 5, the graph G_n
// has one vertex per (X(r) vertex, slot in 0..15) pair and edges
//
//   * between the 16 slots of one X-tree vertex (15 per vertex), and
//   * between every slot of a and every slot of b whenever b lies in
//     N(a) or a lies in N(b)  (<= 25 * 16 per vertex),
//
// for a degree bound of 25*16 + 15 = 415.  Because the Theorem 1
// embedding satisfies condition (3'), placing a guest tree with it and
// assigning slots injectively realises the tree as a spanning subgraph
// of G_n.
#pragma once

#include <cstdint>

#include "btree/binary_tree.hpp"
#include "embedding/embedding.hpp"
#include "graph/graph.hpp"

namespace xt {

struct UniversalGraph {
  Graph graph;
  std::int32_t xtree_height = 0;  // r
  NodeId num_nodes = 0;           // n = 16*(2^{r+1}-1)

  /// Vertex id of (X-tree vertex, slot).
  [[nodiscard]] VertexId vertex_of(VertexId xtree_vertex,
                                   std::int32_t slot) const {
    return xtree_vertex * 16 + slot;
  }
};

/// Builds G_n for X-tree height r (i.e. n = 2^{r+5} - 16 nodes).
UniversalGraph build_universal_graph(std::int32_t xtree_height);

/// Runs the Theorem 1 embedding of `guest` (which must have exactly
/// universal.num_nodes nodes), assigns slots injectively, and returns
/// the guest -> G_n vertex map.  `edges_outside` receives the number
/// of guest edges NOT realised by G_n edges (0 when the embedding
/// respected condition (3') everywhere).
Embedding universal_spanning_embedding(const BinaryTree& guest,
                                       const UniversalGraph& universal,
                                       std::int64_t* edges_outside);

/// The generalisation the paper leaves as future work ("we have no
/// doubt that one could generalize this result to hold also for
/// arbitrary n"): any binary tree with AT MOST universal.num_nodes
/// nodes embeds injectively into G_n with every guest edge realised
/// (subgraph universality rather than spanning).  Implemented by
/// padding the guest with a pendant chain to the exact size, running
/// the Theorem 1 pipeline, and dropping the padding.
Embedding universal_subgraph_embedding(const BinaryTree& guest,
                                       const UniversalGraph& universal,
                                       std::int64_t* edges_outside);

/// Smallest X-tree height r such that G (of 2^{r+5}-16 nodes) can host
/// a guest of n nodes via universal_subgraph_embedding.
std::int32_t universal_height_for(NodeId n);

}  // namespace xt
