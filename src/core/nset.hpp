// The neighbourhood N(a) of Figure 2: all X-tree vertices reachable
// from a by at most three horizontal edges, or by at most two
// downward edges followed by at most two horizontal edges.
//
// Condition (3') of the Theorem 1 proof promises that the image of a
// guest edge always lands inside N of the shallower endpoint's image;
// §3 turns |N(a) - {a}| <= 20 plus the <= 5 "reverse-only" vertices
// into the degree bound 25*16 + 15 = 415 of the universal graph.
#pragma once

#include <vector>

#include "topology/xtree.hpp"

namespace xt {

/// N(a), including a itself.  |N(a)| <= 21.
std::vector<VertexId> n_set(const XTree& xtree, VertexId a);

/// True iff b is in N(a).
bool in_n_set(const XTree& xtree, VertexId a, VertexId b);

/// The symmetric closure N(a) ∪ N^{-1}(a) \ {a} — the potential images
/// of neighbours of a guest node placed on a; size <= 25.
std::vector<VertexId> n_set_symmetric(const XTree& xtree, VertexId a);

/// Condition (3') of the Theorem 1 proof: for host vertices a, b
/// carrying adjacent guest nodes, the deeper image must lie in N of
/// the shallower one.  Implies X-tree distance <= 3 (but is stricter —
/// this is the relation the universal graph of Theorem 4 wires up).
bool respects_condition_3prime(const XTree& xtree, VertexId a, VertexId b);

}  // namespace xt
