#include "core/lemma3.hpp"

#include "util/check.hpp"

namespace xt {

VertexId lemma3_map(const XTree& xtree, VertexId v) {
  const XCoord c = xtree.coord_of(v);
  const std::int32_t r = xtree.height();
  // a_1..a_l: the vertex string, a_1 most significant bit of pos.
  // chi: b_1 = a_1, b_v = a_v XOR a_{v-1}  ==  pos XOR (pos >> 1).
  const std::int64_t chi = c.pos ^ (c.pos >> 1);
  // Bit string chi(alpha) . 1 . 0^{r - l}, first character most
  // significant in the Q_{r+1} vertex number.
  const std::int64_t word = ((chi << 1) | 1) << (r - c.level);
  XT_CHECK(word >= 0 && word < (std::int64_t{1} << (r + 1)));
  return static_cast<VertexId>(word);
}

}  // namespace xt
