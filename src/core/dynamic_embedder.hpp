// Online embedding: growing a binary tree leaf by leaf on a live
// X-tree machine.
//
// The paper's motivation is divide & conquer, whose recursion tree
// unfolds *during* execution — but Theorem 1 is an offline
// construction.  This extension keeps an embedding valid while the
// guest grows: each new leaf is placed on the free host vertex that
// best respects condition (3') relative to its parent's image
// (greedy; no constant-dilation guarantee — the benches compare the
// online quality against re-running the offline algorithm, which is
// exactly the trade-off a scheduler would face).
#pragma once

#include <cstdint>
#include <vector>

#include "btree/binary_tree.hpp"
#include "embedding/embedding.hpp"
#include "topology/xtree.hpp"

namespace xt {

class DynamicEmbedder {
 public:
  /// An X(height) machine with `load` slots per vertex; the guest
  /// starts as a single root placed on the host root.
  explicit DynamicEmbedder(std::int32_t height, NodeId load = 16);

  [[nodiscard]] const BinaryTree& guest() const { return guest_; }
  [[nodiscard]] const XTree& host() const { return host_; }
  [[nodiscard]] NodeId load_cap() const { return load_; }

  /// Remaining total capacity of the machine.
  [[nodiscard]] std::int64_t free_capacity() const;

  /// Grows the guest by a leaf under `parent` (which must have a free
  /// child slot) and places it.  Throws when the machine is full.
  NodeId add_leaf(NodeId parent);

  [[nodiscard]] VertexId host_of(NodeId v) const {
    return assign_[static_cast<std::size_t>(v)];
  }

  /// Current max host distance over guest edges (exact, O(n)).
  [[nodiscard]] std::int32_t current_dilation() const;

  /// Immutable snapshot of the current assignment.
  [[nodiscard]] Embedding snapshot() const;

 private:
  [[nodiscard]] VertexId pick_slot(VertexId parent_host) const;

  XTree host_;
  NodeId load_;
  BinaryTree guest_;
  std::vector<VertexId> assign_;
  std::vector<NodeId> load_of_;
};

}  // namespace xt
