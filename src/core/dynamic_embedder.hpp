// Online embedding: maintaining a binary tree on a live X-tree
// machine while the tree mutates.
//
// The paper's motivation is divide & conquer, whose recursion tree
// unfolds *during* execution — but Theorem 1 is an offline
// construction.  This extension keeps an embedding valid while the
// guest changes shape:
//
//   * try_add_leaf places each new leaf on the free host vertex that
//     best respects condition (3') relative to its parent's image
//     (greedy; no constant-dilation guarantee);
//   * try_remove_leaf / try_remove_subtree retire nodes, freeing
//     their slots (removals never increase dilation);
//   * try_move_subtree re-hangs a subtree under a new parent with
//     *bounded local repair*: if the new connecting edge violates the
//     policy's dilation bound, the moved subtree is re-placed near
//     its new parent — and when the repair budget is exceeded (or the
//     repair fails to meet the bound) the embedder *escalates*,
//     re-running the offline Theorem 1 algorithm on the whole guest.
//
// Node ids are *stable*: a node keeps its id across other nodes'
// mutations, removed ids are tombstoned and recycled LIFO.  The
// compact preorder projection used by serialization, the offline
// embedder and the certificate chain is produced by snapshot().
//
// Every mutation is accounted: nodes touched, repaired vs escalated
// vs rejected, with the hard identity
//     applied == repaired + escalated + rejected
// checked on every stats read.  Dilation and max load are maintained
// exactly via histograms, so current_dilation() / current_max_load()
// are O(1) after every mutation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "btree/binary_tree.hpp"
#include "core/xtree_embedder.hpp"
#include "embedding/embedding.hpp"
#include "topology/xtree.hpp"

namespace xt {

/// When and how hard the embedder fights dilation decay under
/// mutations.  max_dilation == 0 disables repair entirely: mutations
/// are structural-only plus the greedy placement rule — the legacy
/// growth behaviour, and the baseline the benches compare against.
struct MutationPolicy {
  /// Largest subtree (node count) the local repair pass may re-place;
  /// a move whose subtree is bigger escalates straight away.
  std::int64_t max_repair_nodes = 64;
  /// Dilation bound repair defends (0 = disabled).  An *escalated*
  /// state is accepted as-is even above the bound: the offline
  /// algorithm is the best this machine can do, so its result is the
  /// new truth (docs/sessions.md discusses picking the bound above
  /// the offline envelope).
  std::int32_t max_dilation = 0;
};

class DynamicEmbedder {
 public:
  /// An X(height) machine with `load` slots per vertex; the guest
  /// starts as a single root placed on the host root.
  explicit DynamicEmbedder(std::int32_t height, NodeId load = 16,
                           MutationPolicy policy = {});

  [[nodiscard]] const XTree& host() const { return host_; }
  [[nodiscard]] NodeId load_cap() const { return load_; }
  [[nodiscard]] const MutationPolicy& policy() const { return policy_; }
  void set_policy(const MutationPolicy& policy) { policy_ = policy; }

  // --- structure (stable ids) -------------------------------------------
  [[nodiscard]] NodeId root() const { return 0; }
  /// Size of the id space, *including* tombstoned ids.  Valid stable
  /// ids are [0, num_ids()); probe liveness with is_live.
  [[nodiscard]] NodeId num_ids() const {
    return static_cast<NodeId>(parent_.size());
  }
  /// Live nodes currently in the guest.
  [[nodiscard]] NodeId num_live() const { return num_live_; }
  [[nodiscard]] bool is_live(NodeId v) const {
    return v >= 0 && v < num_ids() && alive_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] NodeId parent_of(NodeId v) const {
    return parent_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] NodeId child_of(NodeId v, int which) const {
    const auto& slots = which == 0 ? left_ : right_;
    return slots[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int num_children(NodeId v) const {
    return (child_of(v, 0) != kInvalidNode) + (child_of(v, 1) != kInvalidNode);
  }
  [[nodiscard]] bool is_leaf(NodeId v) const { return num_children(v) == 0; }
  /// Nodes in the subtree rooted at live node v (O(subtree)).
  [[nodiscard]] NodeId subtree_size(NodeId v) const;

  /// Remaining total capacity of the machine.
  [[nodiscard]] std::int64_t free_capacity() const;

  // --- growth -----------------------------------------------------------

  /// Why try_add_leaf could not grow the guest.
  enum class GrowthError {
    kOk,
    kHostFull,         // no free slot anywhere on the machine
    kParentSlotsFull,  // `parent` already has two children
    kInvalidParent,    // `parent` is out of range or tombstoned
  };

  /// Outcome of try_add_leaf: `leaf` is valid iff ok().
  struct GrowthResult {
    NodeId leaf = kInvalidNode;
    GrowthError error = GrowthError::kOk;
    /// True when the placement escalated to a full offline re-embed
    /// (possible only under an active policy).
    bool escalated = false;
    [[nodiscard]] bool ok() const { return error == GrowthError::kOk; }
  };

  /// Grows the guest by a leaf under `parent` and places it.  On a
  /// full machine, a full parent or a dead parent the embedder state
  /// is untouched and a structured error is returned instead of
  /// throwing — the caller (a scheduler admitting recursion-tree
  /// growth, or a session applying a wire script) decides whether
  /// that is fatal.
  GrowthResult try_add_leaf(NodeId parent);

  /// Batched growth: equivalent to calling try_add_leaf(parents[i]) in
  /// order — identical placements, identical per-entry outcomes
  /// (pinned by dynamic_test) — but the BFS scratch is reused across
  /// the whole batch via epoch stamps, so a bulk admission of k leaves
  /// does O(1) allocations instead of O(k).
  ///
  /// Partial-failure contract: the batch is NOT transactional.
  /// results[i] is computed against the state entries [0, i) left
  /// behind; a failed entry leaves the embedder untouched and does
  /// not stop the batch — later entries may still succeed (and may
  /// name leaves created earlier in the same batch as parents).  An
  /// empty span is a no-op returning an empty vector.
  std::vector<GrowthResult> try_add_leaves(std::span<const NodeId> parents);

  /// Throwing form of try_add_leaf (check_error on any failure).
  NodeId add_leaf(NodeId parent);

  // --- mutation ---------------------------------------------------------

  /// Why a removal / move was rejected.  Rejected mutations leave the
  /// embedder completely untouched.
  enum class MutationError {
    kOk,
    kDeadNode,         // target id out of range or tombstoned
    kIsRoot,           // the root cannot be removed or moved
    kNotLeaf,          // try_remove_leaf on an internal node
    kInvalidParent,    // move destination out of range or tombstoned
    kWouldCycle,       // move destination inside the moved subtree
    kParentSlotsFull,  // move destination already has two children
  };

  /// Per-mutation amortized-cost record.
  struct MutationResult {
    MutationError error = MutationError::kOk;
    /// Nodes whose placement or structure this mutation changed
    /// (repair re-placements and escalation re-embeds included).
    std::int64_t nodes_touched = 0;
    /// True when the mutation fell back to the full offline re-embed.
    bool escalated = false;
    /// Exact guest dilation / max host load after the mutation.
    std::int32_t dilation_after = 0;
    NodeId max_load_after = 0;
    [[nodiscard]] bool ok() const { return error == MutationError::kOk; }
  };

  /// Removes live leaf v (never the root).  Always a local repair:
  /// removals free capacity and cannot increase dilation.
  MutationResult try_remove_leaf(NodeId v);

  /// Removes the whole subtree rooted at live node v (never the
  /// root).  nodes_touched is the subtree size.
  MutationResult try_remove_subtree(NodeId v);

  /// Re-hangs the subtree rooted at v under new_parent (first free
  /// child slot).  new_parent == parent_of(v) is a no-op success.
  /// Under an active policy, if the new connecting edge exceeds
  /// max_dilation the subtree is locally re-placed near its new
  /// parent (greedy BFS order) when its size fits max_repair_nodes;
  /// oversized or still-violating repairs escalate to a full offline
  /// re-embed.
  MutationResult try_move_subtree(NodeId v, NodeId new_parent);

  /// Cumulative accounting across every try_* entry point (growth
  /// included).  The identity applied == repaired + escalated +
  /// rejected is checked on every read.
  struct MutationStats {
    std::int64_t applied = 0;    // mutations attempted
    std::int64_t repaired = 0;   // succeeded via local/greedy placement
    std::int64_t escalated = 0;  // succeeded via full offline re-embed
    std::int64_t rejected = 0;   // structured failure, state untouched
    std::int64_t nodes_touched = 0;   // cumulative MutationResult sum
    std::int64_t escalate_nodes = 0;  // nodes re-placed by escalations
  };
  [[nodiscard]] const MutationStats& mutation_stats() const;

  // --- embedding --------------------------------------------------------

  [[nodiscard]] VertexId host_of(NodeId v) const {
    return assign_[static_cast<std::size_t>(v)];
  }

  /// Current max host distance over guest edges (exact, O(1): the
  /// edge-distance histogram is maintained by every mutation).
  [[nodiscard]] std::int32_t current_dilation() const { return max_dist_; }
  /// Current max guest load on one host vertex (exact, O(1)).
  [[nodiscard]] NodeId current_max_load() const { return max_load_now_; }

  /// The options escalation embeds with — the exact recipe a fresh
  /// offline run must use to be bit-identical (pinned by
  /// tests/mutation_test.cpp).
  [[nodiscard]] static XTreeEmbedder::Options escalation_options(
      NodeId load, std::int32_t height);

  /// Immutable compact projection of the current state: `tree` is the
  /// live guest relabeled to preorder ids (the form every offline
  /// consumer — serializers, XTreeEmbedder, the certificate chain —
  /// expects), `embedding` places compact id c on the host vertex of
  /// its stable node, and the two maps translate between the id
  /// spaces.  Produced by one walk so tree and embedding always
  /// agree.
  struct DynamicSnapshot {
    BinaryTree tree;
    Embedding embedding{0, 0};
    std::vector<NodeId> stable_of;   // compact id -> stable id
    std::vector<NodeId> compact_of;  // stable id -> compact id or kInvalidNode
  };
  [[nodiscard]] DynamicSnapshot snapshot() const;

 private:
  [[nodiscard]] VertexId pick_slot(VertexId parent_host) const;

  // Histogram bookkeeping: every placement / edge change funnels
  // through these so dilation and max load stay exact.
  void place_node(NodeId v, VertexId slot);
  void unplace_node(NodeId v);
  void add_edge_metric(NodeId u, NodeId v);
  void remove_edge_metric(NodeId u, NodeId v);
  void rebuild_metrics();

  /// Collects the subtree of v in BFS order into `out`.
  void collect_subtree(NodeId v, std::vector<NodeId>& out) const;
  /// Frees one node's storage (caller already detached it).
  void retire_node(NodeId v);
  /// Full offline re-embed of the live guest (Theorem 1 recipe);
  /// returns the number of nodes re-placed.
  std::int64_t escalate();

  XTree host_;
  NodeId load_;
  MutationPolicy policy_;

  // Stable-id SoA guest with tombstones.  parent_/left_/right_ mirror
  // BinaryTree's layout; dead ids hold kInvalidNode everywhere, sit
  // on free_ids_ and are recycled LIFO.
  std::vector<NodeId> parent_;
  std::vector<NodeId> left_;
  std::vector<NodeId> right_;
  std::vector<char> alive_;
  std::vector<NodeId> free_ids_;
  NodeId num_live_ = 1;

  std::vector<VertexId> assign_;
  std::vector<NodeId> load_of_;

  // Exact metric histograms: dist_hist_[d] counts live guest edges at
  // host distance d, load_hist_[l] counts host vertices with load l.
  std::vector<std::int64_t> dist_hist_;
  std::vector<std::int64_t> load_hist_;
  std::int32_t max_dist_ = 0;
  NodeId max_load_now_ = 1;

  MutationStats stats_;

  // pick_slot's BFS working set, epoch-stamped so consecutive picks
  // (one try_add_leaves batch, or a long add_leaf run) clear the
  // visited set in O(1) instead of refilling a vector<char> per call.
  // Scratch only — never observable state — hence mutable under the
  // const pick_slot.
  mutable std::vector<std::uint32_t> seen_stamp_;
  mutable std::uint32_t seen_epoch_ = 0;
  mutable std::vector<std::pair<VertexId, std::int32_t>> bfs_queue_;
  mutable std::vector<VertexId> nbr_scratch_;
  std::vector<NodeId> subtree_scratch_;
};

}  // namespace xt
