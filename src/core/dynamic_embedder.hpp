// Online embedding: growing a binary tree leaf by leaf on a live
// X-tree machine.
//
// The paper's motivation is divide & conquer, whose recursion tree
// unfolds *during* execution — but Theorem 1 is an offline
// construction.  This extension keeps an embedding valid while the
// guest grows: each new leaf is placed on the free host vertex that
// best respects condition (3') relative to its parent's image
// (greedy; no constant-dilation guarantee — the benches compare the
// online quality against re-running the offline algorithm, which is
// exactly the trade-off a scheduler would face).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "btree/binary_tree.hpp"
#include "embedding/embedding.hpp"
#include "topology/xtree.hpp"

namespace xt {

class DynamicEmbedder {
 public:
  /// An X(height) machine with `load` slots per vertex; the guest
  /// starts as a single root placed on the host root.
  explicit DynamicEmbedder(std::int32_t height, NodeId load = 16);

  [[nodiscard]] const BinaryTree& guest() const { return guest_; }
  [[nodiscard]] const XTree& host() const { return host_; }
  [[nodiscard]] NodeId load_cap() const { return load_; }

  /// Remaining total capacity of the machine.
  [[nodiscard]] std::int64_t free_capacity() const;

  /// Why try_add_leaf could not grow the guest.
  enum class GrowthError {
    kOk,
    kHostFull,         // no free slot anywhere on the machine
    kParentSlotsFull,  // `parent` already has two children
  };

  /// Outcome of try_add_leaf: `leaf` is valid iff ok().
  struct GrowthResult {
    NodeId leaf = kInvalidNode;
    GrowthError error = GrowthError::kOk;
    [[nodiscard]] bool ok() const { return error == GrowthError::kOk; }
  };

  /// Grows the guest by a leaf under `parent` and places it.  On a
  /// full machine or a full parent the embedder state is untouched and
  /// a structured error is returned instead of throwing — the caller
  /// (a scheduler admitting recursion-tree growth) decides whether
  /// that is fatal.  `parent` must be a valid guest node id (checked).
  GrowthResult try_add_leaf(NodeId parent);

  /// Batched growth: equivalent to calling try_add_leaf(parents[i]) in
  /// order — identical placements, identical per-entry outcomes
  /// (pinned by dynamic_test) — but the BFS scratch is reused across
  /// the whole batch via epoch stamps, so a bulk admission of k leaves
  /// does O(1) allocations instead of O(k).  A failed entry does not
  /// stop the batch; later entries may still succeed (and may name
  /// leaves created earlier in the same batch as parents).
  std::vector<GrowthResult> try_add_leaves(std::span<const NodeId> parents);

  /// Throwing form of try_add_leaf (check_error on either failure).
  NodeId add_leaf(NodeId parent);

  [[nodiscard]] VertexId host_of(NodeId v) const {
    return assign_[static_cast<std::size_t>(v)];
  }

  /// Current max host distance over guest edges (exact, O(n)).
  [[nodiscard]] std::int32_t current_dilation() const;

  /// Immutable snapshot of the current assignment.
  [[nodiscard]] Embedding snapshot() const;

 private:
  [[nodiscard]] VertexId pick_slot(VertexId parent_host) const;

  XTree host_;
  NodeId load_;
  BinaryTree guest_;
  std::vector<VertexId> assign_;
  std::vector<NodeId> load_of_;

  // pick_slot's BFS working set, epoch-stamped so consecutive picks
  // (one try_add_leaves batch, or a long add_leaf run) clear the
  // visited set in O(1) instead of refilling a vector<char> per call.
  // Scratch only — never observable state — hence mutable under the
  // const pick_slot.
  mutable std::vector<std::uint32_t> seen_stamp_;
  mutable std::uint32_t seen_epoch_ = 0;
  mutable std::vector<std::pair<VertexId, std::int32_t>> bfs_queue_;
  mutable std::vector<VertexId> nbr_scratch_;
};

}  // namespace xt
